// Balance metrics over partition plans — the quantities the paper's §2.3
// argues existing systems optimize in isolation ("load balance, at what
// cost?"): token balance (linear modules), FLOP balance (attention), and
// communication volume per rank. Benches and tests use these to show *why*
// a plan is fast, not just that it is.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/partitioner.h"
#include "src/model/cost_model.h"

namespace zeppelin {

struct PlanMetrics {
  // Tokens per rank during attention (before remapping).
  std::vector<int64_t> tokens_per_rank;
  // Attention FLOPs per rank implied by the plan's rings and locals.
  std::vector<double> attention_flops_per_rank;
  // KV bytes each rank ships per ring-attention layer (send side).
  std::vector<int64_t> comm_bytes_per_rank;
  // Of which crossing node boundaries.
  std::vector<int64_t> inter_node_bytes_per_rank;

  // max/mean ratios (1.0 = perfect balance; 0-rank-safe).
  double token_imbalance = 1.0;
  double flop_imbalance = 1.0;

  int64_t total_comm_bytes = 0;
  int64_t total_inter_node_bytes = 0;
};

// Computes the metrics for a plan under the given cost model / cluster.
PlanMetrics ComputePlanMetrics(const PartitionPlan& plan, const CostModel& cost_model);

// Multi-line human-readable description of a plan: per-zone sequence tables
// and the balance metrics. The "explain my placement" debugging view.
std::string DescribePlan(const PartitionPlan& plan, const CostModel& cost_model);

}  // namespace zeppelin

#endif  // SRC_CORE_METRICS_H_
