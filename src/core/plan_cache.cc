#include "src/core/plan_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <utility>

#include "src/common/check.h"
#include "src/model/cost_model.h"
#include "src/topology/path.h"

namespace zeppelin {

namespace {

// The repo's FNV-1a idiom (partitioner.cc StateDigest): mix fixed-width
// values into a running hash; strings are mixed byte-wise.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}

inline uint64_t FnvMixDouble(uint64_t h, double v) {
  return FnvMix(h, std::bit_cast<uint64_t>(v));
}

inline uint64_t FnvMixString(uint64_t h, const std::string& s) {
  h = FnvMix(h, s.size());
  for (unsigned char c : s) {
    h = FnvMix(h, c);
  }
  return h;
}

// Full-avalanche 64-bit finalizer (splitmix64). The commutative batch
// signature sums per-element hashes, and a single FNV step is not enough
// there: (offset ^ len) * prime distributes over the sum, and for lengths
// whose set bits miss the offset's (e.g. multiples of 64) the xor degrades
// to addition — making the sum a function of (count, total tokens) alone.
// Batches are sized to a fixed token budget, so equal totals are the common
// case, not a corner: distinct batches collided constantly. Avalanching
// each length first makes the sum depend on the actual multiset.
inline uint64_t AvalancheMix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t DigestCostModel(const CostModel& cost_model) {
  const TransformerConfig& m = cost_model.model();
  uint64_t h = kFnvOffset;
  h = FnvMixString(h, m.name);
  h = FnvMix(h, static_cast<uint64_t>(m.num_layers));
  h = FnvMix(h, static_cast<uint64_t>(m.hidden_size));
  h = FnvMix(h, static_cast<uint64_t>(m.num_heads));
  h = FnvMix(h, static_cast<uint64_t>(m.num_kv_heads));
  h = FnvMix(h, static_cast<uint64_t>(m.ffn_hidden));
  h = FnvMix(h, static_cast<uint64_t>(m.vocab_size));
  h = FnvMix(h, static_cast<uint64_t>(m.dtype_bytes));
  h = FnvMix(h, static_cast<uint64_t>(m.num_experts));
  h = FnvMix(h, static_cast<uint64_t>(m.experts_per_token));
  h = FnvMix(h, static_cast<uint64_t>(cost_model.tensor_parallel()));
  return h;
}

uint64_t DigestFabric(const FabricResources& fabric) {
  const ClusterSpec& c = fabric.cluster();
  uint64_t h = kFnvOffset;
  h = FnvMixString(h, c.name);
  h = FnvMix(h, static_cast<uint64_t>(c.num_nodes));
  h = FnvMix(h, static_cast<uint64_t>(c.gpus_per_node));
  h = FnvMix(h, static_cast<uint64_t>(c.nics_per_node));
  h = FnvMixDouble(h, c.nic_bandwidth);
  h = FnvMixDouble(h, c.nvswitch_bandwidth);
  h = FnvMixDouble(h, c.intra_latency_us);
  h = FnvMixDouble(h, c.inter_latency_us);
  h = FnvMixDouble(h, c.gpu_effective_tflops);
  h = FnvMixDouble(h, c.kernel_launch_us);
  h = FnvMixDouble(h, c.gpu_memory_bytes);
  h = FnvMixDouble(h, c.hbm_bandwidth);
  h = FnvMix(h, c.gpu_to_nic.size());
  for (int nic : c.gpu_to_nic) {
    h = FnvMix(h, static_cast<uint64_t>(nic));
  }
  // Per-rank speed factors: a straggler or restored rank changes the fabric
  // identity even when the cluster spec is unchanged.
  for (int rank = 0; rank < c.world_size(); ++rank) {
    h = FnvMixDouble(h, fabric.rank_speed(rank));
  }
  return h;
}

uint64_t CanonicalBatchSignature(const Batch& batch) {
  // A commutative digest of the length multiset: each length is avalanched
  // independently and the hashes are summed, so permuting sequence order or
  // renaming slot ids cannot change the signature — no sort needed on the
  // serve hot path — while any length change almost surely must (the
  // per-element mixing avalanches every bit, so compensating edits like
  // {a+1, b-1} or equal-total rearrangements do not cancel; see
  // AvalancheMix for why one FNV step was not enough). A colliding batch is
  // still caught downstream: the exact tier compares the full length vector
  // and the remap tier re-checks multiset equality slot by slot.
  uint64_t sum = 0;
  for (int64_t len : batch.seq_lens) {
    sum += AvalancheMix(static_cast<uint64_t>(len));
  }
  uint64_t h = kFnvOffset;
  h = FnvMix(h, batch.seq_lens.size());
  h = FnvMix(h, sum);
  return h;
}

uint64_t BatchBucketSignature(const Batch& batch) {
  // Sequence count + log2 length histogram: batches in one family have the
  // same slot count (so a pure-resize BatchDelta always exists between them)
  // and a similar length mix (so the patch stays below the churn fallback).
  uint64_t buckets[64] = {};
  for (int64_t len : batch.seq_lens) {
    const int b = len <= 0 ? 0 : std::bit_width(static_cast<uint64_t>(len));
    ++buckets[std::min(b, 63)];
  }
  uint64_t h = kFnvOffset;
  h = FnvMix(h, batch.seq_lens.size());
  for (uint64_t count : buckets) {
    h = FnvMix(h, count);
  }
  return h;
}

namespace {

uint64_t OptionsSignature(const PlanningOptions& options) {
  // Only the options that change the *plan bytes* participate in the key:
  // the engine-selection knobs (fast_path, use_shared_pool) are excluded by
  // the byte-identity contract, and delta_replan_threshold only shapes
  // session fallback policy, not the plan a given batch gets.
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(options.token_capacity));
  h = FnvMix(h, options.hierarchical_partitioning ? 1 : 0);
  h = FnvMix(h, options.zone_aware_thresholds ? 1 : 0);
  return h;
}

}  // namespace

PlanCacheKey ComputePlanCacheKey(const PlanRequest& request) {
  ZCHECK(request.batch != nullptr && request.cost_model != nullptr &&
         request.fabric != nullptr)
      << "ComputePlanCacheKey on an incomplete request";
  PlanCacheKey key;
  key.cost_digest = DigestCostModel(*request.cost_model);
  key.fabric_digest = DigestFabric(*request.fabric);
  key.batch_sig = CanonicalBatchSignature(*request.batch);
  key.options_sig = OptionsSignature(request.options);
  return key;
}

size_t PlanCache::KeyHash::operator()(const PlanCacheKey& key) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, key.cost_digest);
  h = FnvMix(h, key.fabric_digest);
  h = FnvMix(h, key.batch_sig);
  h = FnvMix(h, key.options_sig);
  return static_cast<size_t>(h);
}

size_t PlanCache::FamilyKeyHash::operator()(const FamilyKey& key) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, key.cost_digest);
  h = FnvMix(h, key.fabric_digest);
  h = FnvMix(h, key.bucket_sig);
  h = FnvMix(h, key.options_sig);
  return static_cast<size_t>(h);
}

PlanCache::PlanCache(PlannerService* service, PlanCacheOptions options)
    : service_(service), options_(options) {
  ZCHECK(service_ != nullptr) << "PlanCache without a service";
  options_.capacity = std::max<size_t>(options_.capacity, 1);
  options_.family_capacity = std::max<size_t>(options_.family_capacity, 1);
}

PlanCache::~PlanCache() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, family] : family_lru_) {
    service_->CloseSession(family->stream_id);
  }
}

bool PlanCache::Cacheable(const PlanRequest& request) const {
  return request.stream_id.empty() && request.delta == nullptr &&
         request.topology == nullptr;
}

PlanResponse PlanCache::Plan(const PlanRequest& request) {
  if (!Cacheable(request)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.bypasses;
    }
    PlanResponse response = service_->Plan(request);
    response.stats.cache_outcome = CacheOutcome::kBypass;
    FillCounters(&response.stats);
    return response;
  }
  if (std::optional<PlanResponse> served = TryServe(request)) {
    return *std::move(served);
  }
  return PlanAndInsert(request);
}

std::shared_ptr<const PartitionPlan> PlanCache::RemapPlan(
    const std::vector<int64_t>& cached_lens, const PartitionPlan& cached,
    const Batch& batch) const {
  // Same length multiset, different slot order: pair the cached slots with
  // the request's by (length, slot) — a stable bijection because the
  // multisets are equal — and rewrite every entry's seq id. O(S log S + plan).
  const size_t n = cached_lens.size();
  if (n != batch.seq_lens.size()) {
    return nullptr;  // Signature collision; treat as a miss.
  }
  std::vector<int> cached_order(n), request_order(n);
  std::iota(cached_order.begin(), cached_order.end(), 0);
  std::iota(request_order.begin(), request_order.end(), 0);
  std::sort(cached_order.begin(), cached_order.end(), [&](int a, int b) {
    return std::tie(cached_lens[a], a) < std::tie(cached_lens[b], b);
  });
  std::sort(request_order.begin(), request_order.end(), [&](int a, int b) {
    return std::tie(batch.seq_lens[a], a) < std::tie(batch.seq_lens[b], b);
  });
  std::vector<int> remap(n);
  for (size_t i = 0; i < n; ++i) {
    if (cached_lens[cached_order[i]] != batch.seq_lens[request_order[i]]) {
      return nullptr;  // Signature collision; treat as a miss.
    }
    remap[cached_order[i]] = request_order[i];
  }
  auto plan = std::make_shared<PartitionPlan>(cached);
  for (RingRef& ring : plan->inter_node) {
    ring.seq_id = remap[ring.seq_id];
  }
  for (RingRef& ring : plan->intra_node) {
    ring.seq_id = remap[ring.seq_id];
  }
  for (LocalSequence& seq : plan->local) {
    seq.seq_id = remap[seq.seq_id];
  }
  return plan;
}

std::optional<PlanResponse> PlanCache::TryServe(const PlanRequest& request) {
  if (!Cacheable(request)) {
    return std::nullopt;
  }
  // Covers the whole probe: key derivation, the LRU lookup, the digest
  // check, and (rarely) the remap tier + its certification.
  obs::TraceScope lookup_span(obs::Stage::kCacheLookup);
  const PlanCacheKey key = ComputePlanCacheKey(request);
  std::shared_ptr<const PartitionPlan> stored;
  PlanStats stored_stats;
  uint64_t stored_digest = 0;
  bool stored_verified = false;
  bool exact = false;
  std::vector<int64_t> cached_lens;  // Filled only for the remap tier.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    const Entry& entry = lru_.front();
    stored = entry.plan;
    stored_stats = entry.stats;
    stored_digest = entry.digest;
    stored_verified = entry.verified;
    // The exact-order compare happens under the lock so the hot path never
    // copies the cached length vector; the remap tier (rare) copies it.
    exact = entry.seq_lens == request.batch->seq_lens;
    if (exact) {
      lru_.front().remap_streak = 0;
    } else {
      cached_lens = entry.seq_lens;
    }
  }
  std::shared_ptr<const PartitionPlan> plan;
  uint64_t served_digest = 0;
  bool verified = false;
  if (exact) {
    // Exact-tier serve of the same immutable handle that was certified at
    // insert: re-running the full certifier would re-prove a theorem already
    // on file. A digest check against the digest recorded at certification
    // time detects any content drift (a poisoned entry) at a fraction of
    // VerifyPlan's cost — and a digest match
    // means the served bytes are the certified bytes, so the plan still
    // passes VerifyPlan by referential transparency.
    if (stored->StateDigest() == stored_digest) {
      plan = stored;
      served_digest = stored_digest;
      verified = stored_verified;
    }
  } else {
    plan = RemapPlan(cached_lens, *stored, *request.batch);
    if (plan == nullptr) {
      // A different length multiset behind the same key: a signature
      // collision, not a poisoned entry. Report an ordinary miss —
      // PlanAndInsert replaces the entry under this key — and leave
      // verify_failures for genuine certification faults.
      return std::nullopt;
    }
    if (options_.verify) {
      // A remapped twin is a freshly built object — certify it in full.
      PlanVerifyOptions vopts;
      // The derived capacity is planner guidance, not a per-rank guarantee
      // (engines promise the eps certificate; a long local may sit above the
      // memory-capped derivation) — so clause 6 stays off and clause 7 judges.
      vopts.token_capacity = 0;
      vopts.eps = options_.verify_eps;
      vopts.world = request.fabric->cluster().world_size();
      const PlanVerifyResult verdict = VerifyPlan(*plan, request.batch, nullptr, vopts);
      if (!verdict.ok()) {
        plan = nullptr;  // Poisoned entry: never serve, drop and replan.
      } else {
        verified = true;
      }
    }
    if (plan != nullptr) {
      served_digest = plan->StateDigest();
      if (verified || !options_.verify) {
        // A shape first planted by a permuted request would otherwise pay the
        // remap on every subsequent serve — but re-anchoring eagerly thrashes
        // when two orders alternate. Re-anchor to the order just served only
        // after two consecutive remap serves (an exact serve resets the
        // streak), so the entry converges to the dominant request order. The
        // remapped plan was certified above, keeping the entry's
        // digest/verified markers truthful.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = index_.find(key);
        if (it != index_.end() && it->second->plan == stored) {
          Entry& entry = *it->second;
          if (++entry.remap_streak >= 2) {
            entry.seq_lens = request.batch->seq_lens;
            entry.plan = plan;
            entry.digest = served_digest;
            entry.verified = verified;
            entry.remap_streak = 0;
          }
        }
      }
    }
  }
  if (plan == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.verify_failures;
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    return std::nullopt;
  }

  PlanResponse response;
  response.plan = plan;
  // Hits report the producing call's engine/capacity with zeroed wall times
  // and zeroed stage breakdown: no planning happened, and identical repeats
  // must serve byte-identical responses (the daemon test contract). The
  // lookup's own latency still reaches the daemon's stage histograms and
  // --trace_out through the bound TraceContext.
  response.stats = stored_stats;
  response.stats.partition_time_us = 0;
  response.stats.materialize_time_us = 0;
  response.stats.stage_us = {};
  // Live (not insert-time) session count: the fill is uniform across serve
  // paths, and the daemon test only compares hit responses field-wise.
  response.stats.session_count = service_->session_count();
  response.stats.cache_outcome = CacheOutcome::kHit;
  response.stats.verified = verified;
  response.digest = served_digest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.hits;
    response.stats.cache_hits = counters_.hits;
    response.stats.cache_misses = counters_.misses;
    response.stats.cache_evictions = counters_.evictions;
  }
  return response;
}

std::shared_ptr<PlanCache::Family> PlanCache::FindOrCreateFamily(const FamilyKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = family_index_.find(key);
  if (it != family_index_.end()) {
    family_lru_.splice(family_lru_.begin(), family_lru_, it->second);
    return family_lru_.front().second;
  }
  if (family_lru_.size() >= options_.family_capacity) {
    const auto& [old_key, old_family] = family_lru_.back();
    service_->CloseSession(old_family->stream_id);
    family_index_.erase(old_key);
    family_lru_.pop_back();
    ++counters_.evictions;
  }
  auto family = std::make_shared<Family>();
  family->stream_id = "~cache/" + std::to_string(next_family_id_++);
  family_lru_.emplace_front(key, family);
  family_index_[key] = family_lru_.begin();
  return family;
}

PlanResponse PlanCache::PlanAndInsert(const PlanRequest& request) {
  if (!Cacheable(request)) {
    return Plan(request);
  }
  const PlanCacheKey key = ComputePlanCacheKey(request);
  const bool family_eligible = options_.near_match &&
                               request.options.hierarchical_partitioning &&
                               request.options.planner_fast_path;
  PlanResponse response;
  bool near_match = false;
  if (family_eligible) {
    const FamilyKey fkey{key.cost_digest, key.fabric_digest,
                         BatchBucketSignature(*request.batch), key.options_sig};
    const std::shared_ptr<Family> family = FindOrCreateFamily(fkey);
    // Serialize [delta derivation -> session call -> mirror advance]: the
    // mirror must equal the session's tracked batch when the delta is built.
    std::lock_guard<std::mutex> family_lock(family->mu);
    PlanRequest session_request = request;
    session_request.stream_id = family->stream_id;
    BatchDelta delta;
    bool patched_path = false;
    if (family->based && family->last_batch.size() == request.batch->size() &&
        service_->HasSession(family->stream_id)) {
      for (int slot = 0; slot < request.batch->size(); ++slot) {
        if (family->last_batch.seq_lens[slot] != request.batch->seq_lens[slot]) {
          delta.resized.emplace_back(slot, request.batch->seq_lens[slot]);
        }
      }
      session_request.delta = &delta;
      patched_path = true;
    }
    response = service_->Plan(session_request);
    family->last_batch = *request.batch;
    family->based = true;
    near_match = patched_path &&
                 (response.stats.delta_outcome == DeltaOutcome::kApplied ||
                  response.stats.delta_outcome == DeltaOutcome::kAppliedTopology);
  } else {
    response = service_->Plan(request);
  }

  response.stats.cache_outcome = near_match ? CacheOutcome::kNearMatch : CacheOutcome::kMiss;
  response.stats.verified = false;
  if (options_.verify) {
    PlanVerifyOptions vopts;
    vopts.token_capacity = 0;  // Same reasoning as the hit path: clause 7 judges.
    vopts.eps = options_.verify_eps;
    vopts.world = request.fabric->cluster().world_size();
    const PlanVerifyResult verdict =
        VerifyPlan(*response.plan, request.batch, nullptr, vopts);
    response.stats.verified = verdict.ok();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (near_match) {
      ++counters_.near_matches;
    } else {
      ++counters_.misses;
    }
    if (!options_.verify || response.stats.verified) {
      Entry entry;
      entry.key = key;
      entry.seq_lens = request.batch->seq_lens;
      entry.plan = response.plan;
      entry.stats = response.stats;
      entry.digest = response.digest;
      entry.verified = response.stats.verified;
      InsertLocked(std::move(entry));
    } else {
      ++counters_.verify_failures;
    }
  }
  FillCounters(&response.stats);
  return response;
}

void PlanCache::InsertLocked(Entry entry) {
  auto it = index_.find(entry.key);
  if (it != index_.end()) {
    *it->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
}

PlanCacheCounters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t PlanCache::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return family_lru_.size();
}

void PlanCache::FillCounters(PlanStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  stats->cache_hits = counters_.hits;
  stats->cache_misses = counters_.misses;
  stats->cache_evictions = counters_.evictions;
}

bool PlanCache::PoisonEntryForTest(const PlanRequest& request) {
  const PlanCacheKey key = ComputePlanCacheKey(request);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  // Rebuild the entry's plan with one header dropped (or one declared load
  // inflated when there is no ring to drop) — a single-fault corruption the
  // certifier must catch on the next serve.
  auto poisoned = std::make_shared<PartitionPlan>(*it->second->plan);
  if (!poisoned->intra_node.empty()) {
    poisoned->intra_node.pop_back();
  } else if (!poisoned->inter_node.empty()) {
    poisoned->inter_node.pop_back();
  } else if (!poisoned->local.empty()) {
    poisoned->local.pop_back();
  } else {
    poisoned->tokens_per_rank[0] += 1;
  }
  it->second->plan = std::move(poisoned);
  return true;
}

bool PlanCache::RekeyEntryForTest(const PlanRequest& from, const PlanRequest& to) {
  const PlanCacheKey from_key = ComputePlanCacheKey(from);
  const PlanCacheKey to_key = ComputePlanCacheKey(to);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(from_key);
  if (it == index_.end()) {
    return false;
  }
  auto collided = index_.find(to_key);
  if (collided != index_.end()) {
    lru_.erase(collided->second);
    index_.erase(collided);
    it = index_.find(from_key);
  }
  it->second->key = to_key;
  index_.emplace(to_key, it->second);
  index_.erase(it);
  return true;
}

}  // namespace zeppelin
