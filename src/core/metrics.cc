#include "src/core/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/core/chunking.h"

namespace zeppelin {
namespace {

double MaxOverMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 1.0;
  }
  double total = 0;
  double max_value = 0;
  for (double v : values) {
    total += v;
    max_value = std::max(max_value, v);
  }
  if (total == 0) {
    return 1.0;
  }
  return max_value / (total / static_cast<double>(values.size()));
}

}  // namespace

PlanMetrics ComputePlanMetrics(const PartitionPlan& plan, const CostModel& cost_model) {
  const ClusterSpec& spec = cost_model.cluster();
  const int world = spec.world_size();
  ZCHECK_EQ(plan.tokens_per_rank.size(), static_cast<size_t>(world));

  PlanMetrics metrics;
  metrics.tokens_per_rank = plan.tokens_per_rank;
  metrics.attention_flops_per_rank.assign(world, 0.0);
  metrics.comm_bytes_per_rank.assign(world, 0);
  metrics.inter_node_bytes_per_rank.assign(world, 0);
  const int64_t kv_bytes = cost_model.KvBytesPerToken();

  auto add_ring = [&](const RingView& ring) {
    const int g = ring.group_size();
    const auto assignment = BalancedChunkAssignment(ring.length, g);
    for (int k = 0; k < g; ++k) {
      const int rank = ring.ranks[k];
      metrics.attention_flops_per_rank[rank] +=
          RingTotalFlops(cost_model, assignment, ring.length, k);
      // Each of the g-1 rounds the rank forwards the KV block it holds; the
      // block sizes cycle over all chunk owners, so the aggregate equals the
      // whole sequence's KV minus its own chunk.
      const int64_t sent = (ring.length - assignment[k].tokens()) * kv_bytes;
      metrics.comm_bytes_per_rank[rank] += sent;
      const int next = ring.ranks[(k + 1) % g];
      if (spec.NodeOf(rank) != spec.NodeOf(next)) {
        metrics.inter_node_bytes_per_rank[rank] += sent;
      }
    }
  };
  for (RingView ring : plan.rings(plan.inter_node)) {
    add_ring(ring);
  }
  for (RingView ring : plan.rings(plan.intra_node)) {
    add_ring(ring);
  }
  for (const auto& seq : plan.local) {
    metrics.attention_flops_per_rank[seq.rank] += cost_model.CausalAttentionFlops(seq.length);
  }

  std::vector<double> tokens_d(world);
  for (int r = 0; r < world; ++r) {
    tokens_d[r] = static_cast<double>(metrics.tokens_per_rank[r]);
    metrics.total_comm_bytes += metrics.comm_bytes_per_rank[r];
    metrics.total_inter_node_bytes += metrics.inter_node_bytes_per_rank[r];
  }
  metrics.token_imbalance = MaxOverMean(tokens_d);
  metrics.flop_imbalance = MaxOverMean(metrics.attention_flops_per_rank);
  return metrics;
}

std::string DescribePlan(const PartitionPlan& plan, const CostModel& cost_model) {
  std::ostringstream out;
  const PlanMetrics metrics = ComputePlanMetrics(plan, cost_model);

  Table zones({"zone", "sequences", "tokens", "ring sizes"});
  auto ring_sizes = [](const std::vector<RingRef>& rings) {
    std::ostringstream s;
    for (size_t i = 0; i < rings.size() && i < 8; ++i) {
      if (i > 0) {
        s << ",";
      }
      s << rings[i].group_size();
    }
    if (rings.size() > 8) {
      s << ",...";
    }
    return s.str().empty() ? std::string("-") : s.str();
  };
  int64_t inter_tokens = 0;
  for (const auto& r : plan.inter_node) {
    inter_tokens += r.length;
  }
  int64_t intra_tokens = 0;
  for (const auto& r : plan.intra_node) {
    intra_tokens += r.length;
  }
  int64_t local_tokens = 0;
  for (const auto& s : plan.local) {
    local_tokens += s.length;
  }
  zones.AddRow({"inter-node", Table::Cell(static_cast<int64_t>(plan.inter_node.size())),
                Table::Cell(inter_tokens), ring_sizes(plan.inter_node)});
  zones.AddRow({"intra-node", Table::Cell(static_cast<int64_t>(plan.intra_node.size())),
                Table::Cell(intra_tokens), ring_sizes(plan.intra_node)});
  zones.AddRow({"local", Table::Cell(static_cast<int64_t>(plan.local.size())),
                Table::Cell(local_tokens), "-"});
  out << zones.ToString();

  out << "thresholds: s1=" << plan.threshold_s1 << ", s0 per node = [";
  for (size_t i = 0; i < plan.threshold_s0.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << plan.threshold_s0[i];
  }
  out << "]\n";
  out << "token imbalance " << FormatDouble(metrics.token_imbalance, 3) << ", flop imbalance "
      << FormatDouble(metrics.flop_imbalance, 3) << ", comm "
      << FormatDouble(static_cast<double>(metrics.total_comm_bytes) / (1 << 20), 1) << " MiB ("
      << FormatDouble(static_cast<double>(metrics.total_inter_node_bytes) / (1 << 20), 1)
      << " MiB cross-node)\n";
  return out.str();
}

}  // namespace zeppelin
