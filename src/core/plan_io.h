// Versioned binary wire format for PartitionPlan — how a plan leaves the
// process (plan caching, cross-process distribution, offline inspection).
//
// Layout (spec: docs/PLAN_FORMAT.md, "Wire format"): a fixed preamble
// (magic "ZPLN" + format version), the six section counts, both RingRef
// header queues, the local queue, the single rank-arena blob, the per-rank
// token layout, the thresholds, and a StateDigest trailer. All integers are
// little-endian and fixed-width; there is no padding, so the encoding of a
// plan is a pure function of its bytes — Serialize(Deserialize(b)) == b and
// Deserialize(Serialize(p)) == p field-for-field, including arena offsets
// (the byte-identity currency of the planner contract).
//
// Deserialization is defensive: every section count is bounds-checked
// against the remaining payload before any allocation, ring headers are
// validated against the arena (in-bounds spans, known zone tags), rank
// values against the plan's own rank universe, and the decoded plan's
// StateDigest must match the trailer. A plan that survives LoadPlanFile is
// therefore structurally valid and its *logical content* authenticated:
// corruption of anything a consumer reads — headers, live ring ranks,
// locals, token counts, thresholds — surfaces as a typed PlanIoStatus. The
// digest is deliberately layout/order-invariant (the delta-plan equivalence
// currency), so the mutations it cannot see are exactly those the
// equivalence contract already treats as the same plan: bytes in
// unreferenced arena slack, or within-queue record reorderings that
// preserve the ring/local multisets (these alter emission order, not
// coverage or loads). Callers needing byte-exact transport should compare
// the serialized strings themselves, which the canonical encoding makes
// meaningful.
#ifndef SRC_CORE_PLAN_IO_H_
#define SRC_CORE_PLAN_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/partitioner.h"

namespace zeppelin {

// Current wire-format version. Bump on any layout change; Deserialize
// rejects other versions (kBadVersion) rather than guessing.
inline constexpr uint32_t kPlanFormatVersion = 1;

// First bytes of every serialized plan: 'Z' 'P' 'L' 'N'.
inline constexpr char kPlanMagic[4] = {'Z', 'P', 'L', 'N'};

enum class PlanIoStatus : uint8_t {
  kOk = 0,
  kIoError,          // File read/write failure (Save/Load wrappers only).
  kBadMagic,         // Input does not start with the plan magic.
  kBadVersion,       // Unknown format version.
  kTruncated,        // Input ends before the declared sections/trailer.
  kCorrupt,          // Structural violation: trailing bytes, header span out
                     //   of arena bounds, or an unknown zone tag.
  kDigestMismatch,   // Sections decoded but the StateDigest trailer differs:
                     //   the payload was altered after serialization.
  kRankUniverse,     // The plan is valid but targets more ranks than the
                     //   caller's fabric (`max_world`) — executing it would
                     //   index out of the cluster.
};

const char* PlanIoStatusName(PlanIoStatus status);

struct PlanIoResult {
  PlanIoStatus status = PlanIoStatus::kOk;
  std::string message;  // Human-readable detail; empty on success.

  bool ok() const { return status == PlanIoStatus::kOk; }
};

// Encodes `plan` into the canonical byte string. Never fails: any
// PartitionPlan value (including delta-patched plans whose arena carries
// free-listed slack) has exactly one encoding.
std::string SerializePlan(const PartitionPlan& plan);

// Decodes `bytes` into `*plan`. On failure `*plan` is left in an
// unspecified-but-valid state and the result carries the reason; on success
// the decoded plan is byte-identical to the serialized one. `max_world` > 0
// bounds the plan's rank universe by the target fabric: a plan declaring
// more ranks than the cluster executing it is rejected at load time
// (kRankUniverse) instead of indexing out of the cluster mid-execution.
// 0 accepts any universe (offline inspection tools).
PlanIoResult ParsePlan(std::string_view bytes, PartitionPlan* plan, int max_world = 0);

// File convenience wrappers (binary, whole-file).
PlanIoResult SavePlanFile(const std::string& path, const PartitionPlan& plan);
PlanIoResult LoadPlanFile(const std::string& path, PartitionPlan* plan, int max_world = 0);

}  // namespace zeppelin

#endif  // SRC_CORE_PLAN_IO_H_
