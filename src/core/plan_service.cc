#include "src/core/plan_service.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "src/common/check.h"
#include "src/model/memory.h"

namespace zeppelin {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

}  // namespace

const char* PlanEngineName(PlanEngine engine) {
  switch (engine) {
    case PlanEngine::kNaive:
      return "naive";
    case PlanEngine::kSerialFast:
      return "serial-fast";
    case PlanEngine::kParallelSharded:
      return "parallel-sharded";
    case PlanEngine::kDeltaPatch:
      return "delta-patch";
    case PlanEngine::kGlobalRing:
      return "global-ring";
    case PlanEngine::kAdopted:
      return "adopted";
  }
  return "unknown";
}

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kNearMatch:
      return "near-match";
  }
  return "unknown";
}

PlannerService::PlannerService(PlanServiceOptions options)
    : options_(options), plan_pool_(std::make_shared<PlanPool>()) {
  plan_pool_->limit = std::max(0, options_.plan_pool_limit);
  if (options_.num_planner_threads >= 1) {
    pool_.emplace(std::clamp(options_.num_planner_threads, 1, ThreadPool::kMaxContexts));
  }
}

PlannerService::~PlannerService() = default;

std::shared_ptr<PartitionPlan> PlannerService::AcquirePlan() {
  std::unique_ptr<PartitionPlan> storage;
  {
    std::lock_guard<std::mutex> lock(plan_pool_->mu);
    if (!plan_pool_->free.empty()) {
      storage = std::move(plan_pool_->free.back());
      plan_pool_->free.pop_back();
    }
  }
  if (!storage) {
    storage = std::make_unique<PartitionPlan>();
  }
  // The deleter captures the pool by shared_ptr, so a handle that outlives
  // the service still has somewhere safe to return its storage.
  std::shared_ptr<PlanPool> pool = plan_pool_;
  return std::shared_ptr<PartitionPlan>(storage.release(), [pool](PartitionPlan* plan) {
    std::unique_ptr<PartitionPlan> owned(plan);
    std::lock_guard<std::mutex> lock(pool->mu);
    if (static_cast<int>(pool->free.size()) < pool->limit) {
      pool->free.push_back(std::move(owned));
    }
  });
}

int64_t PlannerService::DeriveCapacity(const Batch& batch, const CostModel& cost_model,
                                       const ClusterSpec& spec,
                                       const PlanningOptions& options) const {
  if (options.token_capacity != 0) {
    return options.token_capacity;
  }
  // L is the per-device *memory* capacity (Alg. 1/2 input). The paper's
  // workloads size the batch to nearly fill memory (4k tokens/GPU), so L
  // sits a modest headroom above the batch average; we model that with a
  // 25% slack, additionally capped by the memory model when it binds.
  const int world = spec.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  int64_t with_slack = average + average / 4;
  const int64_t memory_cap = TokenCapacity(cost_model.model(), spec, world);
  if (memory_cap > 0) {
    with_slack = std::min(with_slack, memory_cap);
  }
  return std::max(average, with_slack);
}

ZoneBoundaries PlannerService::CachedZones(const CostModel& cost_model,
                                           const ClusterSpec& spec) {
  // Keyed by the full (model config, TP, cluster) value — everything the
  // classifier's cost probes depend on, so two CostModels that merely share
  // a model name never alias. The Fig. 5 crossover scan is ~10^4 cost-model
  // probes — pure overhead when repeated for an unchanged key.
  std::lock_guard<std::mutex> lock(zones_mu_);
  for (const ZoneCacheEntry& entry : zone_cache_) {
    if (entry.model == cost_model.model() &&
        entry.tensor_parallel == cost_model.tensor_parallel() && entry.cluster == spec) {
      return entry.zones;
    }
  }
  zone_cache_.push_back({cost_model.model(), cost_model.tensor_parallel(), spec,
                         ZoneClassifier(cost_model).Compute()});
  return zone_cache_.back().zones;
}

PlanResponse PlannerService::Plan(const PlanRequest& request) {
  ZCHECK(request.batch != nullptr) << "PlanRequest without a batch";
  ZCHECK(request.cost_model != nullptr) << "PlanRequest without a cost model";
  ZCHECK(request.fabric != nullptr) << "PlanRequest without fabric resources";
  if (request.stream_id.empty()) {
    return PlanStateless(request);
  }
  return PlanSession(request);
}

PlanResponse PlannerService::PlanStateless(const PlanRequest& request) {
  const Batch& batch = *request.batch;
  const ClusterSpec& spec = request.fabric->cluster();
  const int world = spec.world_size();

  PlanResponse response;
  std::shared_ptr<PartitionPlan> plan = AcquirePlan();

  if (!request.options.hierarchical_partitioning) {
    // Ablation layout: every sequence on one global ring spanning all ranks
    // (the TE CP pattern), so the only Zeppelin component in play downstream
    // is routing.
    const auto start = Clock::now();
    {
      obs::TraceScope plan_span(obs::Stage::kPlan);
      *plan = PartitionPlan{};
      plan->tokens_per_rank.assign(world, 0);
      plan->threshold_s0.assign(spec.num_nodes, 0);
      std::vector<int> all_ranks(world);
      std::iota(all_ranks.begin(), all_ranks.end(), 0);
      for (int id = 0; id < batch.size(); ++id) {
        const int64_t len = batch.seq_lens[id];
        plan->AddRing(plan->inter_node, id, len, Zone::kInterNode, all_ranks);
        for (int r = 0; r < world; ++r) {
          plan->tokens_per_rank[r] += len * (r + 1) / world - len * r / world;
        }
      }
    }
    response.stats.engine = PlanEngine::kGlobalRing;
    response.stats.partition_time_us = ElapsedUs(start);
    response.stats.stage_us[static_cast<int>(obs::Stage::kPlan)] =
        response.stats.partition_time_us;
    response.stats.session_count = session_count();
    response.plan = std::move(plan);
    response.digest = response.plan->StateDigest();
    return response;
  }

  SequencePartitioner::Options popts;
  popts.token_capacity = DeriveCapacity(batch, *request.cost_model, spec, request.options);
  popts.fast_path = request.options.planner_fast_path;
  if (request.options.zone_aware_thresholds) {
    const ZoneBoundaries zones = CachedZones(*request.cost_model, spec);
    popts.max_inter_threshold = zones.intra_max;
    popts.max_local_threshold = zones.local_max;
  }
  const bool pooled =
      pool_.has_value() && request.options.use_shared_pool && request.options.planner_fast_path;
  if (pooled) {
    popts.pool = &*pool_;
  }

  // Check a reusable workspace out of the free list; concurrent stateless
  // requests each get their own, and steady-state traffic reuses them.
  std::unique_ptr<StatelessCtx> ctx;
  {
    std::lock_guard<std::mutex> lock(stateless_mu_);
    if (!stateless_free_.empty()) {
      ctx = std::move(stateless_free_.back());
      stateless_free_.pop_back();
    }
  }
  if (!ctx) {
    ctx = std::make_unique<StatelessCtx>();
  }
  if (!ctx->partitioner || !(ctx->partitioner->cluster() == spec)) {
    ctx->partitioner.emplace(spec, popts);
  } else {
    ctx->partitioner->set_options(popts);
  }

  const auto start = Clock::now();
  {
    obs::TraceScope plan_span(obs::Stage::kPlan);
    // ThreadPool batches admit one caller at a time; every pooled plan in
    // the service serializes here (delta patches never do).
    std::unique_lock<std::mutex> pool_lock;
    if (pooled) {
      pool_lock = std::unique_lock<std::mutex>(pool_mu_);
    }
    ctx->partitioner->Partition(batch, &ctx->scratch, plan.get());
  }
  response.stats.partition_time_us = ElapsedUs(start);
  response.stats.stage_us[static_cast<int>(obs::Stage::kPlan)] =
      response.stats.partition_time_us;
  response.stats.engine = !request.options.planner_fast_path ? PlanEngine::kNaive
                          : pooled ? PlanEngine::kParallelSharded
                                   : PlanEngine::kSerialFast;
  response.stats.token_capacity = popts.token_capacity;
  response.stats.session_count = session_count();

  {
    std::lock_guard<std::mutex> lock(stateless_mu_);
    stateless_free_.push_back(std::move(ctx));
  }

  response.plan = std::move(plan);
  response.digest = response.plan->StateDigest();
  return response;
}

std::shared_ptr<PlannerService::Session> PlannerService::FindOrCreateSession(
    const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::shared_ptr<Session>& slot = sessions_[stream_id];
  if (!slot) {
    slot = std::make_shared<Session>();
  }
  return slot;
}

std::shared_ptr<PlannerService::Session> PlannerService::FindSession(
    const std::string& stream_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(stream_id);
  return it == sessions_.end() ? nullptr : it->second;
}

PlanResponse PlannerService::PlanSession(const PlanRequest& request) {
  ZCHECK(request.options.hierarchical_partitioning && request.options.planner_fast_path)
      << "delta sessions require hierarchical partitioning on the fast path "
         "(stream " << request.stream_id << ")";
  const Batch& batch = *request.batch;
  const ClusterSpec& spec = request.fabric->cluster();
  const std::shared_ptr<Session> session = FindOrCreateSession(request.stream_id);

  PlanResponse response;
  // Requests on the same stream serialize here; distinct streams proceed
  // concurrently (their only shared state is the pool, locked per-rebase).
  std::lock_guard<std::mutex> session_lock(session->mu);

  const auto start = Clock::now();
  obs::TraceContext* tctx = obs::CurrentTrace();
  const double plan_start_us = tctx != nullptr ? obs::NowUs() : 0;
  const bool needs_base = !session->planner || !(session->planner->cluster() == spec) ||
                          !session->planner->has_base() || request.delta == nullptr;
  bool pooled_rebase = false;
  if (needs_base) {
    // (Re)establish the base: capacity pinned from this batch, zone caps
    // from the cached boundaries, and the memory model as the ceiling for
    // automatic capacity raises on later growth.
    DeltaPlannerOptions dopts;
    dopts.token_capacity = DeriveCapacity(batch, *request.cost_model, spec, request.options);
    dopts.capacity_ceiling = TokenCapacity(request.cost_model->model(), spec, spec.world_size());
    if (request.options.zone_aware_thresholds) {
      const ZoneBoundaries zones = CachedZones(*request.cost_model, spec);
      dopts.max_inter_threshold = zones.intra_max;
      dopts.max_local_threshold = zones.local_max;
    }
    dopts.replan_threshold = request.options.delta_replan_threshold;
    dopts.fast_path = true;
    if (pool_.has_value() && request.options.use_shared_pool) {
      dopts.pool = &*pool_;
      dopts.pool_mutex = &pool_mu_;
      pooled_rebase = true;
    }
    if (!session->planner || !(session->planner->cluster() == spec)) {
      session->planner.emplace(spec, dopts);
    } else {
      session->planner->set_options(dopts);
    }
    if (request.topology != nullptr) {
      // The rebase below replans fully anyway; drop the base first so the
      // topology delta only advances the fabric state instead of patching a
      // plan we are about to discard.
      session->planner->Invalidate();
      session->planner->ApplyTopology(*request.topology);
    }
    session->planner->Rebase(batch);
    session->last_outcome = DeltaOutcome::kRebasedNoBase;
  } else {
    pooled_rebase = session->planner->options().pool != nullptr;
    // Fabric churn first (a topology fallback replans against the session's
    // tracked batch), then the batch delta patches on whatever base that
    // left. The reported outcome is the *dominant* one: a topology rebase
    // wins; otherwise a fully-patched iteration with fabric churn reports
    // kAppliedTopology; otherwise the batch outcome stands.
    const bool topo_active = request.topology != nullptr && !request.topology->empty();
    DeltaOutcome topo_outcome = DeltaOutcome::kAppliedTopology;
    if (topo_active) {
      topo_outcome = session->planner->ApplyTopology(*request.topology);
    }
    const DeltaOutcome batch_outcome = session->planner->Apply(*request.delta);
    if (topo_active && topo_outcome != DeltaOutcome::kAppliedTopology) {
      session->last_outcome = topo_outcome;
    } else if (topo_active && batch_outcome == DeltaOutcome::kApplied) {
      session->last_outcome = DeltaOutcome::kAppliedTopology;
    } else {
      session->last_outcome = batch_outcome;
    }
    ZCHECK_EQ(session->planner->batch().size(), batch.size())
        << "stream " << request.stream_id
        << ": request batch does not match the session's tracked batch";
  }
  response.stats.partition_time_us = ElapsedUs(start);
  response.stats.stage_us[static_cast<int>(obs::Stage::kPlan)] =
      response.stats.partition_time_us;
  if (tctx != nullptr) {
    tctx->AddSpan(obs::Stage::kPlan, plan_start_us, response.stats.partition_time_us);
  }
  response.stats.delta_outcome = session->last_outcome;
  const bool patched = session->last_outcome == DeltaOutcome::kApplied ||
                       session->last_outcome == DeltaOutcome::kAppliedTopology;
  // Degraded-fabric rebases run the serial elastic engine, never the pool.
  const bool degraded = session->planner->topology().degraded();
  response.stats.engine = patched ? PlanEngine::kDeltaPatch
                          : (pooled_rebase && !degraded) ? PlanEngine::kParallelSharded
                                                         : PlanEngine::kSerialFast;
  response.stats.token_capacity = session->planner->token_capacity();
  response.stats.session_count = session_count();

  // Materialize the immutable handle: the session's plan keeps evolving with
  // every request, so the response gets its own copy (a few bulk array
  // copies regardless of ring count — the flat-plan dividend).
  const auto copy_start = Clock::now();
  const double copy_start_us = tctx != nullptr ? obs::NowUs() : 0;
  std::shared_ptr<PartitionPlan> plan = AcquirePlan();
  *plan = session->planner->plan();
  response.stats.materialize_time_us = ElapsedUs(copy_start);
  response.stats.stage_us[static_cast<int>(obs::Stage::kMaterialize)] =
      response.stats.materialize_time_us;
  if (tctx != nullptr) {
    tctx->AddSpan(obs::Stage::kMaterialize, copy_start_us,
                  response.stats.materialize_time_us);
  }
  response.plan = std::move(plan);
  response.digest = response.plan->StateDigest();
  return response;
}

bool PlannerService::HasSession(const std::string& stream_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.count(stream_id) > 0;
}

size_t PlannerService::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

bool PlannerService::CloseSession(const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  // In-flight requests that already looked the session up hold their own
  // shared_ptr, so erasing here only unlinks it; the last holder destroys
  // it after releasing its lock.
  return sessions_.erase(stream_id) > 0;
}

void PlannerService::InvalidateSession(const std::string& stream_id) {
  const std::shared_ptr<Session> session = FindSession(stream_id);
  if (!session) {
    return;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (session->planner) {
    session->planner->Invalidate();
  }
}

bool PlannerService::GetSessionStats(const std::string& stream_id, DeltaStats* out) const {
  ZCHECK(out != nullptr);
  const std::shared_ptr<Session> session = FindSession(stream_id);
  if (!session) {
    return false;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (!session->planner) {
    return false;
  }
  *out = session->planner->stats();
  return true;
}

DeltaOutcome PlannerService::SessionLastOutcome(const std::string& stream_id) const {
  const std::shared_ptr<Session> session = FindSession(stream_id);
  if (!session) {
    return DeltaOutcome::kRebasedNoBase;
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  return session->last_outcome;
}

}  // namespace zeppelin
