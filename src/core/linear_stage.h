// Linear-module stage: per-rank token-wise compute (projections, MLP/MoE,
// norms). Cost is linear in the rank's token count — which is exactly why the
// remapping layer wants tokens balanced before this stage runs.
#ifndef SRC_CORE_LINEAR_STAGE_H_
#define SRC_CORE_LINEAR_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/attention_engine.h"
#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

// Emits one linear-module compute task per rank sized by its token count.
// deps[r] gates rank r. Returns the per-rank compute tasks.
std::vector<TaskId> EmitLinearStage(TaskGraph& graph, const CostModel& cost_model,
                                    const FabricResources& fabric,
                                    const std::vector<int64_t>& tokens_per_rank,
                                    Direction direction,
                                    const std::vector<std::vector<TaskId>>& deps,
                                    const std::string& label);

}  // namespace zeppelin

#endif  // SRC_CORE_LINEAR_STAGE_H_
