#include "src/core/plan_io.h"

#include <cstdio>
#include <cstring>
#include <limits>

namespace zeppelin {
namespace {

// Little-endian fixed-width writers. The format is defined byte-wise, so the
// encoder never relies on host struct layout or endianness.
void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(b, 8);
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }
void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

// Cursor-based reader; every Get* checks the remaining length first, so a
// truncated input can never read past the end.
struct Reader {
  const unsigned char* data;
  size_t size;
  size_t pos = 0;

  bool Have(size_t n) const { return size - pos >= n; }
  uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
};

// Per-record wire sizes (see docs/PLAN_FORMAT.md, "Wire format").
constexpr size_t kRingRecordBytes = 4 + 8 + 4 + 4 + 4;  // seq_id, length, zone, offset, count.
constexpr size_t kLocalRecordBytes = 4 + 8 + 4;         // seq_id, length, rank.
constexpr size_t kPreambleBytes = 4 + 4;                // magic + version.
constexpr size_t kCountsBytes = 6 * 8;                  // Six section counts.
constexpr size_t kTrailerBytes = 8;                     // StateDigest.

PlanIoResult Fail(PlanIoStatus status, std::string message) {
  return PlanIoResult{status, std::move(message)};
}

}  // namespace

const char* PlanIoStatusName(PlanIoStatus status) {
  switch (status) {
    case PlanIoStatus::kOk:
      return "ok";
    case PlanIoStatus::kIoError:
      return "io-error";
    case PlanIoStatus::kBadMagic:
      return "bad-magic";
    case PlanIoStatus::kBadVersion:
      return "bad-version";
    case PlanIoStatus::kTruncated:
      return "truncated";
    case PlanIoStatus::kCorrupt:
      return "corrupt";
    case PlanIoStatus::kDigestMismatch:
      return "digest-mismatch";
    case PlanIoStatus::kRankUniverse:
      return "rank-universe";
  }
  return "unknown";
}

std::string SerializePlan(const PartitionPlan& plan) {
  std::string out;
  out.reserve(kPreambleBytes + kCountsBytes + 8 +
              kRingRecordBytes * (plan.inter_node.size() + plan.intra_node.size()) +
              kLocalRecordBytes * plan.local.size() + 4 * plan.rank_arena.size() +
              8 * (plan.tokens_per_rank.size() + plan.threshold_s0.size()) + kTrailerBytes);

  out.append(kPlanMagic, 4);
  PutU32(&out, kPlanFormatVersion);
  PutU64(&out, plan.inter_node.size());
  PutU64(&out, plan.intra_node.size());
  PutU64(&out, plan.local.size());
  PutU64(&out, plan.rank_arena.size());
  PutU64(&out, plan.tokens_per_rank.size());
  PutU64(&out, plan.threshold_s0.size());
  PutI64(&out, plan.threshold_s1);

  auto put_queue = [&out](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      PutI32(&out, ring.seq_id);
      PutI64(&out, ring.length);
      PutU32(&out, static_cast<uint32_t>(ring.zone));
      PutU32(&out, ring.rank_offset);
      PutU32(&out, ring.rank_count);
    }
  };
  put_queue(plan.inter_node);
  put_queue(plan.intra_node);
  for (const LocalSequence& seq : plan.local) {
    PutI32(&out, seq.seq_id);
    PutI64(&out, seq.length);
    PutI32(&out, seq.rank);
  }
  for (int rank : plan.rank_arena) {
    PutI32(&out, rank);
  }
  for (int64_t tokens : plan.tokens_per_rank) {
    PutI64(&out, tokens);
  }
  for (int64_t s0 : plan.threshold_s0) {
    PutI64(&out, s0);
  }
  PutU64(&out, plan.StateDigest());
  return out;
}

PlanIoResult ParsePlan(std::string_view bytes, PartitionPlan* plan, int max_world) {
  Reader in{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
  if (!in.Have(kPreambleBytes)) {
    return Fail(PlanIoStatus::kTruncated, "input shorter than the preamble");
  }
  if (std::memcmp(in.data, kPlanMagic, 4) != 0) {
    return Fail(PlanIoStatus::kBadMagic, "input does not start with the ZPLN magic");
  }
  in.pos += 4;
  const uint32_t version = in.GetU32();
  if (version != kPlanFormatVersion) {
    return Fail(PlanIoStatus::kBadVersion,
                "unsupported plan format version " + std::to_string(version) + " (expected " +
                    std::to_string(kPlanFormatVersion) + ")");
  }
  if (!in.Have(kCountsBytes + 8)) {
    return Fail(PlanIoStatus::kTruncated, "input ends inside the section counts");
  }
  const uint64_t inter_count = in.GetU64();
  const uint64_t intra_count = in.GetU64();
  const uint64_t local_count = in.GetU64();
  const uint64_t arena_count = in.GetU64();
  const uint64_t tokens_count = in.GetU64();
  const uint64_t s0_count = in.GetU64();
  const int64_t threshold_s1 = in.GetI64();

  // Rank-universe gate: a structurally valid, digest-authentic plan for a
  // *bigger* fabric must still be refused before any rank of it reaches the
  // target cluster — checked first, on the declared universe, so even a
  // truncated oversized plan reports the real problem.
  if (max_world > 0 && tokens_count > static_cast<uint64_t>(max_world)) {
    return Fail(PlanIoStatus::kRankUniverse,
                "plan targets " + std::to_string(tokens_count) +
                    " ranks but the fabric has " + std::to_string(max_world));
  }

  // Bound every count before allocating: the payload size is the authority,
  // so a corrupted (huge) count reads as truncation, never as a giant
  // resize. The cap is chosen so the `expected` sum below cannot wrap uint64
  // (6 counts x 24 bytes/record x 2^48 ≈ 2^55.2 << 2^64) — without it,
  // counts near 2^60 could overflow `expected` into exactly `remaining` and
  // reach the resize calls with exabyte element counts.
  const uint64_t remaining = bytes.size() - in.pos;
  constexpr uint64_t kCountCap = uint64_t{1} << 48;
  if (inter_count > kCountCap || intra_count > kCountCap || local_count > kCountCap ||
      arena_count > kCountCap || tokens_count > kCountCap || s0_count > kCountCap) {
    return Fail(PlanIoStatus::kTruncated, "section count exceeds any representable payload");
  }
  const uint64_t expected = kRingRecordBytes * (inter_count + intra_count) +
                            kLocalRecordBytes * local_count + 4 * arena_count +
                            8 * (tokens_count + s0_count) + kTrailerBytes;
  if (remaining < expected) {
    return Fail(PlanIoStatus::kTruncated,
                "sections declare " + std::to_string(expected) + " bytes but only " +
                    std::to_string(remaining) + " remain");
  }
  if (remaining > expected) {
    return Fail(PlanIoStatus::kCorrupt, "input carries " +
                                            std::to_string(remaining - expected) +
                                            " trailing bytes past the trailer");
  }

  *plan = PartitionPlan{};
  plan->threshold_s1 = threshold_s1;
  auto get_queue = [&in, arena_count](std::vector<RingRef>* queue, uint64_t count,
                                      const char* name) -> PlanIoResult {
    queue->resize(count);
    for (RingRef& ring : *queue) {
      ring.seq_id = in.GetI32();
      ring.length = in.GetI64();
      const uint32_t zone = in.GetU32();
      if (zone > static_cast<uint32_t>(Zone::kInterNode)) {
        return Fail(PlanIoStatus::kCorrupt,
                    std::string(name) + " header carries unknown zone tag " +
                        std::to_string(zone));
      }
      ring.zone = static_cast<Zone>(zone);
      ring.rank_offset = in.GetU32();
      ring.rank_count = in.GetU32();
      if (static_cast<uint64_t>(ring.rank_offset) + ring.rank_count > arena_count) {
        return Fail(PlanIoStatus::kCorrupt, std::string(name) + " header span [" +
                                                std::to_string(ring.rank_offset) + ", +" +
                                                std::to_string(ring.rank_count) +
                                                ") exceeds the arena");
      }
    }
    return PlanIoResult{};
  };
  PlanIoResult r = get_queue(&plan->inter_node, inter_count, "inter_node");
  if (!r.ok()) {
    return r;
  }
  r = get_queue(&plan->intra_node, intra_count, "intra_node");
  if (!r.ok()) {
    return r;
  }
  // Rank values must address the rank universe the plan itself declares
  // (tokens_per_rank has one entry per global rank). Without this check a
  // file with a correctly computed digest but bogus ranks would parse as
  // "structurally valid" and drive EmitLayer out of bounds. An empty
  // tokens section (hand-built partial plans) carries no universe to check
  // against.
  const auto rank_in_bounds = [tokens_count](int rank) {
    return tokens_count == 0 ||
           (rank >= 0 && static_cast<uint64_t>(rank) < tokens_count);
  };
  plan->local.resize(local_count);
  for (LocalSequence& seq : plan->local) {
    seq.seq_id = in.GetI32();
    seq.length = in.GetI64();
    seq.rank = in.GetI32();
    if (!rank_in_bounds(seq.rank)) {
      return Fail(PlanIoStatus::kCorrupt, "local sequence rank " + std::to_string(seq.rank) +
                                              " outside the plan's " +
                                              std::to_string(tokens_count) + "-rank universe");
    }
  }
  plan->rank_arena.resize(arena_count);
  for (int& rank : plan->rank_arena) {
    rank = in.GetI32();
    if (!rank_in_bounds(rank)) {
      return Fail(PlanIoStatus::kCorrupt, "arena rank " + std::to_string(rank) +
                                              " outside the plan's " +
                                              std::to_string(tokens_count) + "-rank universe");
    }
  }
  plan->tokens_per_rank.resize(tokens_count);
  for (int64_t& tokens : plan->tokens_per_rank) {
    tokens = in.GetI64();
  }
  plan->threshold_s0.resize(s0_count);
  for (int64_t& s0 : plan->threshold_s0) {
    s0 = in.GetI64();
  }

  const uint64_t stored_digest = in.GetU64();
  const uint64_t actual_digest = plan->StateDigest();
  if (stored_digest != actual_digest) {
    return Fail(PlanIoStatus::kDigestMismatch, "decoded plan digests to a different value than "
                                               "the trailer — the payload was altered");
  }
  return PlanIoResult{};
}

PlanIoResult SavePlanFile(const std::string& path, const PartitionPlan& plan) {
  const std::string bytes = SerializePlan(plan);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Fail(PlanIoStatus::kIoError, "cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return Fail(PlanIoStatus::kIoError, "short write to " + path);
  }
  return PlanIoResult{};
}

PlanIoResult LoadPlanFile(const std::string& path, PartitionPlan* plan, int max_world) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(PlanIoStatus::kIoError, "cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Fail(PlanIoStatus::kIoError, "read error on " + path);
  }
  return ParsePlan(bytes, plan, max_world);
}

// PartitionPlan wire-format members (declared in partitioner.h, implemented
// here so the plan type itself stays free of I/O includes).
std::string PartitionPlan::Serialize() const { return SerializePlan(*this); }

bool PartitionPlan::Deserialize(std::string_view bytes, int max_world) {
  return ParsePlan(bytes, this, max_world).ok();
}

}  // namespace zeppelin
