#include "src/core/zeppelin.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/core/linear_stage.h"

namespace zeppelin {

ZeppelinStrategy::ZeppelinStrategy(ZeppelinOptions options) : options_(std::move(options)) {}

std::string ZeppelinStrategy::name() const {
  std::string n = "Zeppelin";
  if (!options_.hierarchical_partitioning) {
    n += "[global-ring]";
  }
  if (!options_.routing.enabled) {
    n += "[-routing]";
  }
  if (!options_.remapping.enabled) {
    n += "[-remap]";
  }
  return n;
}

PlannerService& ZeppelinStrategy::service() {
  if (options_.service) {
    return *options_.service;
  }
  if (!owned_service_) {
    owned_service_ = std::make_shared<PlannerService>(
        PlanServiceOptions{.num_planner_threads =
                               options_.planner_fast_path ? options_.num_planner_threads : 0});
  }
  return *owned_service_;
}

PlanningOptions ZeppelinStrategy::BuildPlanningOptions() const {
  PlanningOptions popts;
  popts.token_capacity = options_.token_capacity;
  popts.hierarchical_partitioning = options_.hierarchical_partitioning;
  popts.zone_aware_thresholds = options_.zone_aware_thresholds;
  popts.planner_fast_path = options_.planner_fast_path;
  // 0 planner threads historically meant "serial fast path": opt out of
  // whatever pool the service carries.
  popts.use_shared_pool = options_.num_planner_threads >= 1;
  popts.delta_replan_threshold = options_.delta_replan_threshold;
  return popts;
}

const PartitionPlan& ZeppelinStrategy::partition_plan() const {
  ZCHECK(current_plan_ != nullptr) << "no plan yet: call Plan()/PlanDelta()/AdoptPlan() first";
  return *current_plan_;
}

void ZeppelinStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                            const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;

  // Full planning bypasses the incremental session; the next PlanDelta()
  // re-establishes its base with a fresh full partition.
  PlannerService& svc = service();
  svc.InvalidateSession(options_.stream_id);

  PlanRequest request;
  request.batch = &batch;
  request.cost_model = &cost_model;
  request.fabric = &fabric;
  request.options = BuildPlanningOptions();
  PlanResponse response = svc.Plan(request);
  current_plan_ = std::move(response.plan);
  last_stats_ = response.stats;

  FinishPlanning(cost_model, fabric);
}

void ZeppelinStrategy::PlanDelta(const Batch& batch, const BatchDelta& delta,
                                 const CostModel& cost_model, const FabricResources& fabric,
                                 const TopologyDelta* topology) {
  if (!options_.hierarchical_partitioning || !options_.planner_fast_path) {
    // The delta session patches the hierarchical fast-path state; without it
    // streaming degenerates to per-iteration full planning.
    Plan(batch, cost_model, fabric);
    return;
  }
  cost_model_ = &cost_model;
  fabric_ = &fabric;

  PlanRequest request;
  request.batch = &batch;
  request.cost_model = &cost_model;
  request.fabric = &fabric;
  request.options = BuildPlanningOptions();
  request.stream_id = options_.stream_id;
  request.delta = &delta;
  request.topology = topology;
  PlanResponse response = service().Plan(request);
  current_plan_ = std::move(response.plan);
  last_stats_ = response.stats;
  last_delta_outcome_ = response.stats.delta_outcome;

  FinishPlanning(cost_model, fabric);
}

void ZeppelinStrategy::AdoptPlan(std::shared_ptr<const PartitionPlan> plan,
                                 const CostModel& cost_model, const FabricResources& fabric) {
  ZCHECK(plan != nullptr) << "AdoptPlan requires a plan";
  ZCHECK_EQ(static_cast<int>(plan->tokens_per_rank.size()), fabric.cluster().world_size())
      << "adopted plan's rank layout does not match the cluster";
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  service().InvalidateSession(options_.stream_id);
  current_plan_ = std::move(plan);
  // Uniform PlanStats fill (docs/SERVICE_API.md, "PlanStats validity"):
  // adopted plans report a real engine tag, the capacity actually implied by
  // the adopted layout when none was configured, and the live session count,
  // instead of the all-zero struct this path used to leave behind.
  last_stats_ = PlanStats{};
  last_stats_.engine = PlanEngine::kAdopted;
  last_stats_.token_capacity = options_.token_capacity;
  if (last_stats_.token_capacity == 0) {
    for (int64_t tokens : current_plan_->tokens_per_rank) {
      last_stats_.token_capacity = std::max(last_stats_.token_capacity, tokens);
    }
  }
  last_stats_.session_count = service().session_count();
  FinishPlanning(cost_model, fabric);
}

const DeltaStats* ZeppelinStrategy::delta_stats() const {
  PlannerService* svc = options_.service ? options_.service.get() : owned_service_.get();
  if (svc == nullptr || !svc->GetSessionStats(options_.stream_id, &delta_stats_cache_)) {
    return nullptr;
  }
  return &delta_stats_cache_;
}

void ZeppelinStrategy::FinishPlanning(const CostModel& cost_model, const FabricResources& fabric) {
  const int world = fabric.cluster().world_size();
  routing_.emplace(fabric, options_.routing);
  engine_.emplace(cost_model, fabric, *routing_, options_.engine);
  remapping_.emplace(cost_model, fabric, options_.remapping);

  const PartitionPlan& plan = *current_plan_;
  if (options_.remapping.enabled) {
    remapping_->Plan(plan.tokens_per_rank, &remap_scratch_, &remap_solution_);
  } else {
    remap_solution_ = RemapSolution{};
    remap_solution_.transfer.assign(world, std::vector<int64_t>(world, 0));
  }
  linear_tokens_ = plan.tokens_per_rank;
  if (options_.remapping.enabled) {
    for (int i = 0; i < world; ++i) {
      for (int j = 0; j < world; ++j) {
        const int64_t moved = remap_solution_.transfer[i][j];
        linear_tokens_[i] -= moved;
        linear_tokens_[j] += moved;
      }
    }
  }
}

std::vector<TaskId> ZeppelinStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  ZCHECK(current_plan_ != nullptr) << "Plan() must run before EmitLayer()";
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  if (direction == Direction::kForward) {
    // attention -> remap to balanced -> linear modules -> remap back.
    const std::vector<TaskId> attn_done = engine_->Emit(graph, *current_plan_, direction, {}, tag);
    auto to_deps = [](const std::vector<TaskId>& v) {
      std::vector<std::vector<TaskId>> deps(v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        deps[i] = {v[i]};
      }
      return deps;
    };
    const RemappingLayer::EmitResult remap_in = remapping_->Emit(
        graph, current_plan_->tokens_per_rank, remap_solution_, /*inverse=*/false, to_deps(attn_done),
        tag + ".remap_in");
    const std::vector<TaskId> linear_done =
        EmitLinearStage(graph, *cost_model_, *fabric_, remap_in.new_tokens, direction,
                        to_deps(remap_in.done), tag);
    const RemappingLayer::EmitResult remap_out =
        remapping_->Emit(graph, remap_in.new_tokens, remap_solution_, /*inverse=*/true,
                         to_deps(linear_done), tag + ".remap_out");
    return remap_out.done;
  }

  // Backward mirrors the forward dataflow in reverse: gradients arrive in the
  // attention layout, get remapped to the balanced layout for the linear
  // backward, and return to the attention layout for the attention backward.
  auto to_deps = [](const std::vector<TaskId>& v) {
    std::vector<std::vector<TaskId>> deps(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      deps[i] = {v[i]};
    }
    return deps;
  };
  const RemappingLayer::EmitResult remap_in = remapping_->Emit(
      graph, current_plan_->tokens_per_rank, remap_solution_, /*inverse=*/false, {}, "bwd.remap_in");
  const std::vector<TaskId> linear_done =
      EmitLinearStage(graph, *cost_model_, *fabric_, remap_in.new_tokens, direction,
                      to_deps(remap_in.done), "bwd");
  const RemappingLayer::EmitResult remap_out = remapping_->Emit(
      graph, remap_in.new_tokens, remap_solution_, /*inverse=*/true, to_deps(linear_done),
      "bwd.remap_out");
  return engine_->Emit(graph, *current_plan_, direction, to_deps(remap_out.done), "bwd");
}

std::vector<int64_t> ZeppelinStrategy::LinearTokensPerRank() const { return linear_tokens_; }

}  // namespace zeppelin
