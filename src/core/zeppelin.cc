#include "src/core/zeppelin.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/common/check.h"
#include "src/core/linear_stage.h"
#include "src/core/zones.h"
#include "src/model/memory.h"

namespace zeppelin {

ZeppelinStrategy::ZeppelinStrategy(ZeppelinOptions options) : options_(options) {}

std::string ZeppelinStrategy::name() const {
  std::string n = "Zeppelin";
  if (!options_.hierarchical_partitioning) {
    n += "[global-ring]";
  }
  if (!options_.routing.enabled) {
    n += "[-routing]";
  }
  if (!options_.remapping.enabled) {
    n += "[-remap]";
  }
  return n;
}

int64_t ZeppelinStrategy::DeriveCapacity(const Batch& batch, const CostModel& cost_model,
                                         const ClusterSpec& spec) const {
  if (options_.token_capacity != 0) {
    return options_.token_capacity;
  }
  // L is the per-device *memory* capacity (Alg. 1/2 input). The paper's
  // workloads size the batch to nearly fill memory (4k tokens/GPU), so L
  // sits a modest headroom above the batch average; we model that with a
  // 25% slack, additionally capped by the memory model when it binds.
  const int world = spec.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  int64_t with_slack = average + average / 4;
  const int64_t memory_cap = TokenCapacity(cost_model.model(), spec, world);
  if (memory_cap > 0) {
    with_slack = std::min(with_slack, memory_cap);
  }
  return std::max(average, with_slack);
}

const ZoneBoundaries& ZeppelinStrategy::CachedZones(const CostModel& cost_model,
                                                    const ClusterSpec& spec) {
  // Keyed on the cost model's identity and the cluster value: an address
  // alone can be reused by a different model, so the model name and the
  // cluster spec participate in the comparison.
  if (!zone_cache_ || zone_cache_model_ != &cost_model ||
      zone_cache_model_name_ != cost_model.model().name || !(zone_cache_cluster_ == spec)) {
    zone_cache_ = ZoneClassifier(cost_model).Compute();
    zone_cache_model_ = &cost_model;
    zone_cache_model_name_ = cost_model.model().name;
    zone_cache_cluster_ = spec;
  }
  return *zone_cache_;
}

ThreadPool* ZeppelinStrategy::PlannerPool() {
  if (!options_.planner_fast_path || options_.num_planner_threads < 1) {
    return nullptr;
  }
  // Compare against the pool's own clamp so an out-of-range knob does not
  // rebuild the pool on every Plan() call.
  const int contexts = std::clamp(options_.num_planner_threads, 1, ThreadPool::kMaxContexts);
  if (!planner_pool_ || planner_pool_->num_contexts() != contexts) {
    planner_pool_.emplace(contexts);
  }
  return &*planner_pool_;
}

void ZeppelinStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                            const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  const ClusterSpec& spec = fabric.cluster();
  const int world = spec.world_size();

  // Full planning bypasses the incremental state; the next PlanDelta()
  // re-establishes its base with a fresh full partition.
  if (delta_) {
    delta_->Invalidate();
  }
  current_plan_ = &plan_;

  auto start = std::chrono::steady_clock::now();

  if (options_.hierarchical_partitioning) {
    SequencePartitioner::Options popts{.token_capacity = DeriveCapacity(batch, cost_model, spec),
                                       .fast_path = options_.planner_fast_path,
                                       .pool = PlannerPool()};
    if (options_.zone_aware_thresholds) {
      const ZoneBoundaries& zones = CachedZones(cost_model, spec);
      popts.max_inter_threshold = zones.intra_max;
      popts.max_local_threshold = zones.local_max;
    }
    // Rebuild only when the topology actually changed (compared by value:
    // a different fabric can reuse a freed fabric's address).
    if (!partitioner_ || !(partitioner_->cluster() == spec)) {
      partitioner_.emplace(spec, popts);
    } else {
      partitioner_->set_options(popts);
    }
    start = std::chrono::steady_clock::now();  // Time the partitioner itself.
    partitioner_->Partition(batch, &planner_scratch_, &plan_);
    partition_time_us_ = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  } else {
    // Ablation baseline: every sequence on one global ring spanning all ranks
    // (the TE CP layout), so the only Zeppelin component in play is routing.
    plan_ = PartitionPlan{};
    plan_.tokens_per_rank.assign(world, 0);
    plan_.threshold_s0.assign(spec.num_nodes, 0);
    std::vector<int> all_ranks(world);
    std::iota(all_ranks.begin(), all_ranks.end(), 0);
    for (int id = 0; id < batch.size(); ++id) {
      const int64_t len = batch.seq_lens[id];
      plan_.AddRing(plan_.inter_node, id, len, Zone::kInterNode, all_ranks);
      for (int r = 0; r < world; ++r) {
        plan_.tokens_per_rank[r] += len * (r + 1) / world - len * r / world;
      }
    }
    partition_time_us_ = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  }

  FinishPlanning(cost_model, fabric);
}

void ZeppelinStrategy::PlanDelta(const Batch& batch, const BatchDelta& delta,
                                 const CostModel& cost_model, const FabricResources& fabric) {
  if (!options_.hierarchical_partitioning || !options_.planner_fast_path) {
    // The delta planner patches the hierarchical fast-path state; without it
    // streaming degenerates to per-iteration full planning.
    Plan(batch, cost_model, fabric);
    return;
  }
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  const ClusterSpec& spec = fabric.cluster();

  const auto start = std::chrono::steady_clock::now();
  if (!delta_ || !(delta_->cluster() == spec) || !delta_->has_base()) {
    // (Re)establish the base: capacity pinned from this batch, zone caps
    // from the cached boundaries, and the memory model as the ceiling for
    // automatic capacity raises on later growth.
    DeltaPlannerOptions dopts;
    dopts.token_capacity = DeriveCapacity(batch, cost_model, spec);
    dopts.capacity_ceiling = TokenCapacity(cost_model.model(), spec, spec.world_size());
    if (options_.zone_aware_thresholds) {
      const ZoneBoundaries& zones = CachedZones(cost_model, spec);
      dopts.max_inter_threshold = zones.intra_max;
      dopts.max_local_threshold = zones.local_max;
    }
    dopts.replan_threshold = options_.delta_replan_threshold;
    dopts.fast_path = true;
    dopts.pool = PlannerPool();
    if (!delta_ || !(delta_->cluster() == spec)) {
      delta_.emplace(spec, dopts);
    } else {
      delta_->set_options(dopts);
    }
    delta_->Rebase(batch);
    last_delta_outcome_ = DeltaOutcome::kRebasedNoBase;
  } else {
    last_delta_outcome_ = delta_->Apply(delta);
    ZCHECK_EQ(delta_->batch().size(), batch.size())
        << "PlanDelta batch does not match the delta planner's batch";
  }
  partition_time_us_ = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  current_plan_ = &delta_->plan();

  FinishPlanning(cost_model, fabric);
}

void ZeppelinStrategy::FinishPlanning(const CostModel& cost_model, const FabricResources& fabric) {
  const int world = fabric.cluster().world_size();
  routing_.emplace(fabric, options_.routing);
  engine_.emplace(cost_model, fabric, *routing_, options_.engine);
  remapping_.emplace(cost_model, fabric, options_.remapping);

  const PartitionPlan& plan = *current_plan_;
  if (options_.remapping.enabled) {
    remapping_->Plan(plan.tokens_per_rank, &remap_scratch_, &remap_solution_);
  } else {
    remap_solution_ = RemapSolution{};
    remap_solution_.transfer.assign(world, std::vector<int64_t>(world, 0));
  }
  linear_tokens_ = plan.tokens_per_rank;
  if (options_.remapping.enabled) {
    for (int i = 0; i < world; ++i) {
      for (int j = 0; j < world; ++j) {
        const int64_t moved = remap_solution_.transfer[i][j];
        linear_tokens_[i] -= moved;
        linear_tokens_[j] += moved;
      }
    }
  }
}

std::vector<TaskId> ZeppelinStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  if (direction == Direction::kForward) {
    // attention -> remap to balanced -> linear modules -> remap back.
    const std::vector<TaskId> attn_done = engine_->Emit(graph, *current_plan_, direction, {}, tag);
    auto to_deps = [](const std::vector<TaskId>& v) {
      std::vector<std::vector<TaskId>> deps(v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        deps[i] = {v[i]};
      }
      return deps;
    };
    const RemappingLayer::EmitResult remap_in = remapping_->Emit(
        graph, current_plan_->tokens_per_rank, remap_solution_, /*inverse=*/false, to_deps(attn_done),
        tag + ".remap_in");
    const std::vector<TaskId> linear_done =
        EmitLinearStage(graph, *cost_model_, *fabric_, remap_in.new_tokens, direction,
                        to_deps(remap_in.done), tag);
    const RemappingLayer::EmitResult remap_out =
        remapping_->Emit(graph, remap_in.new_tokens, remap_solution_, /*inverse=*/true,
                         to_deps(linear_done), tag + ".remap_out");
    return remap_out.done;
  }

  // Backward mirrors the forward dataflow in reverse: gradients arrive in the
  // attention layout, get remapped to the balanced layout for the linear
  // backward, and return to the attention layout for the attention backward.
  auto to_deps = [](const std::vector<TaskId>& v) {
    std::vector<std::vector<TaskId>> deps(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      deps[i] = {v[i]};
    }
    return deps;
  };
  const RemappingLayer::EmitResult remap_in = remapping_->Emit(
      graph, current_plan_->tokens_per_rank, remap_solution_, /*inverse=*/false, {}, "bwd.remap_in");
  const std::vector<TaskId> linear_done =
      EmitLinearStage(graph, *cost_model_, *fabric_, remap_in.new_tokens, direction,
                      to_deps(remap_in.done), "bwd");
  const RemappingLayer::EmitResult remap_out = remapping_->Emit(
      graph, remap_in.new_tokens, remap_solution_, /*inverse=*/true, to_deps(linear_done),
      "bwd.remap_out");
  return engine_->Emit(graph, *current_plan_, direction, to_deps(remap_out.done), "bwd");
}

std::vector<int64_t> ZeppelinStrategy::LinearTokensPerRank() const { return linear_tokens_; }

}  // namespace zeppelin
