// Strategy interface: how a training system lays out and executes one
// transformer layer for a variable-length batch.
//
// A strategy is planned once per batch (Plan) and then asked to emit the task
// DAG of one representative layer, forward or backward (EmitLayer). The
// trainer simulates that layer and extrapolates the full iteration — layers
// are identical, which is the same reduction the paper's timeline analysis
// (Fig. 12) relies on. Implementations: ZeppelinStrategy (src/core) and the
// baselines TeCpStrategy / LlamaCpStrategy / HybridDpStrategy /
// PackingUlyssesStrategy (src/baselines).
#ifndef SRC_CORE_STRATEGY_H_
#define SRC_CORE_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/attention_engine.h"
#include "src/data/sampler.h"
#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

struct BatchDelta;      // src/data/stream.h
struct TopologyDelta;   // src/data/stream.h
struct PartitionPlan;   // src/core/partitioner.h

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  // Plans the batch layout. Called once per batch, before any EmitLayer.
  virtual void Plan(const Batch& batch, const CostModel& cost_model,
                    const FabricResources& fabric) = 0;

  // Streaming/online form: plans `batch`, which differs from the previously
  // planned batch by exactly `delta` (already applied — `batch` is the new
  // batch; see src/data/stream.h for the slot semantics). The default is the
  // stateless adapter: it re-plans from scratch via Plan() — exactly what a
  // PlannerService request without a stream id does. Strategies with
  // incremental planners (ZeppelinStrategy routes this through a
  // PlannerService delta session, docs/SERVICE_API.md + docs/DELTA_PLANS.md)
  // override it to patch the previous plan instead. Interchangeable with
  // Plan() for correctness: after either call, EmitLayer() emits a valid
  // layout for `batch`.
  // The 4-arg form is the historical batch-churn-only entry point; it
  // forwards to the topology-aware overload with no fabric churn.
  void PlanDelta(const Batch& batch, const BatchDelta& delta, const CostModel& cost_model,
                 const FabricResources& fabric) {
    PlanDelta(batch, delta, cost_model, fabric, nullptr);
  }
  // Elastic form: `topology` (may be null = unchanged fabric) carries rank
  // kills/restores/slowdowns since the previous planning call on this
  // strategy; the strategy must stop scheduling work on dead ranks and
  // rebalance around slowed ones (docs/ELASTIC.md). The default stateless
  // adapter ignores fabric churn it cannot express and re-plans via Plan().
  virtual void PlanDelta(const Batch& batch, const BatchDelta& delta,
                         const CostModel& cost_model, const FabricResources& fabric,
                         const TopologyDelta* topology) {
    (void)delta;
    (void)topology;
    Plan(batch, cost_model, fabric);
  }

  // Immutable handle to the partition plan behind the last Plan()/PlanDelta()
  // call, for strategies that plan through the PlannerService
  // (src/core/plan_service.h). The handle is safe to retain across later
  // planning calls, share between threads, and serialize
  // (src/core/plan_io.h). Strategies that do not produce a PartitionPlan
  // (most baselines build their own execution layout) return null.
  virtual std::shared_ptr<const PartitionPlan> plan_handle() const { return nullptr; }

  // Emits one transformer layer (attention + linear modules + any data
  // movement the strategy needs) into `graph`. Returns one done-task per rank.
  virtual std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) = 0;

  // Token count per rank during the linear stage (reporting/diagnostics).
  virtual std::vector<int64_t> LinearTokensPerRank() const = 0;
};

}  // namespace zeppelin

#endif  // SRC_CORE_STRATEGY_H_
