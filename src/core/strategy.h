// Strategy interface: how a training system lays out and executes one
// transformer layer for a variable-length batch.
//
// A strategy is planned once per batch (Plan) and then asked to emit the task
// DAG of one representative layer, forward or backward (EmitLayer). The
// trainer simulates that layer and extrapolates the full iteration — layers
// are identical, which is the same reduction the paper's timeline analysis
// (Fig. 12) relies on. Implementations: ZeppelinStrategy (src/core) and the
// baselines TeCpStrategy / LlamaCpStrategy / HybridDpStrategy /
// PackingUlyssesStrategy (src/baselines).
#ifndef SRC_CORE_STRATEGY_H_
#define SRC_CORE_STRATEGY_H_

#include <string>
#include <vector>

#include "src/core/attention_engine.h"
#include "src/data/sampler.h"
#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  // Plans the batch layout. Called once per batch, before any EmitLayer.
  virtual void Plan(const Batch& batch, const CostModel& cost_model,
                    const FabricResources& fabric) = 0;

  // Emits one transformer layer (attention + linear modules + any data
  // movement the strategy needs) into `graph`. Returns one done-task per rank.
  virtual std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) = 0;

  // Token count per rank during the linear stage (reporting/diagnostics).
  virtual std::vector<int64_t> LinearTokensPerRank() const = 0;
};

}  // namespace zeppelin

#endif  // SRC_CORE_STRATEGY_H_
