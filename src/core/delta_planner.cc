#include "src/core/delta_planner.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "src/common/check.h"
#include "src/core/partitioner_internal.h"

namespace zeppelin {

using planner_internal::RecordChunkAggregate;

const char* DeltaOutcomeName(DeltaOutcome outcome) {
  switch (outcome) {
    case DeltaOutcome::kApplied:
      return "applied";
    case DeltaOutcome::kRebasedNoBase:
      return "rebased:no-base";
    case DeltaOutcome::kRebasedChurn:
      return "rebased:churn";
    case DeltaOutcome::kRebasedZone:
      return "rebased:zone";
    case DeltaOutcome::kRebasedRefined:
      return "rebased:refined-threshold";
    case DeltaOutcome::kRebasedCapacity:
      return "rebased:capacity";
    case DeltaOutcome::kRebasedImbalance:
      return "rebased:imbalance";
    case DeltaOutcome::kAppliedTopology:
      return "applied:topology";
    case DeltaOutcome::kRebasedTopology:
      return "rebased:topology";
    case DeltaOutcome::kRebasedMigration:
      return "rebased:migration";
  }
  return "unknown";
}

DeltaPlanner::DeltaPlanner(const ClusterSpec& cluster, DeltaPlannerOptions options)
    : cluster_(cluster),
      options_(options),
      partitioner_(cluster,
                   SequencePartitioner::Options{
                       .token_capacity = options.token_capacity,
                       .max_inter_threshold = options.max_inter_threshold,
                       .max_local_threshold = options.max_local_threshold,
                       .fast_path = options.fast_path,
                       .pool = options.pool,
                   }) {
  cluster_.Validate();
  ZCHECK_GT(options_.token_capacity, 0);
  ZCHECK_GE(options_.replan_threshold, 0);
  ZCHECK_GE(options_.migration_budget, 0);
  topo_.Reset(cluster_.world_size());
}

void DeltaPlanner::set_options(DeltaPlannerOptions options) {
  options_ = options;
  ZCHECK_GT(options_.token_capacity, 0);
  ZCHECK_GE(options_.replan_threshold, 0);
  ZCHECK_GE(options_.migration_budget, 0);
  has_base_ = false;  // Thresholds derive from the options; state is stale.
}

void DeltaPlanner::EnsureCapacityFits(int64_t total_tokens) {
  // The fabric the batch must fit is the *alive* device count, not the
  // nominal world: on a degraded fabric the same batch needs more headroom
  // per surviving device.
  const int64_t world = topo_.alive_count();
  ZCHECK_GT(world, 0) << "no alive ranks";
  if (total_tokens <= world * options_.token_capacity) {
    return;
  }
  // Same derivation as ZeppelinStrategy::Plan(): tight average plus 25%
  // headroom, capped by the caller's ceiling when that still fits.
  const int64_t average = (total_tokens + world - 1) / world;
  int64_t raised = average + average / 4;
  if (options_.capacity_ceiling > 0) {
    raised = std::min(raised, options_.capacity_ceiling);
  }
  options_.token_capacity = std::max(raised, average);
}

void DeltaPlanner::Rebase(const Batch& batch) {
  batch_ = batch;
  RebaseInternal();
}

void DeltaPlanner::RebaseInternal() {
  ZCHECK_GT(batch_.size(), 0);
  EnsureCapacityFits(batch_.total_tokens());
  if (topo_.degraded()) {
    // SequencePartitioner assumes a uniform fabric; holes and speed skews go
    // through the elastic from-scratch path (which captures its own state).
    ElasticReplan();
    return;
  }
  partitioner_.set_options(SequencePartitioner::Options{
      .token_capacity = options_.token_capacity,
      .max_inter_threshold = options_.max_inter_threshold,
      .max_local_threshold = options_.max_local_threshold,
      .fast_path = options_.fast_path,
      .pool = options_.pool,
  });
  // Shared pool (PlannerService): one pooled plan at a time, service-wide.
  std::unique_lock<std::mutex> pool_lock;
  if (options_.pool != nullptr && options_.pool_mutex != nullptr) {
    pool_lock = std::unique_lock<std::mutex>(*options_.pool_mutex);
  }
  partitioner_.Partition(batch_, &scratch_, &plan_);
  CaptureState();
}

void DeltaPlanner::CaptureState() {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int n = batch_.size();

  node_capacity_ = static_cast<int64_t>(p) * options_.token_capacity;
  s1_initial_ = node_capacity_;
  if (options_.max_inter_threshold > 0) {
    s1_initial_ = std::min(s1_initial_, options_.max_inter_threshold);
  }
  base_refined_ = plan_.threshold_s1 < s1_initial_;

  // Inter-node chunk aggregates: the fast paths leave them in the scratch;
  // the naive reference leaves per-node chunk lists instead.
  if (options_.fast_path) {
    chunk_whole_ = scratch_.node_chunk_whole;
    chunk_rem_ = scratch_.node_chunk_rem;
  } else {
    chunk_whole_.assign(num_nodes, 0);
    chunk_rem_.assign(static_cast<size_t>(num_nodes) * p, 0);
    for (int node = 0; node < num_nodes; ++node) {
      for (const auto& [seq_id, chunk] : scratch_.assignments[node].inter_chunks) {
        RecordChunkAggregate(node, chunk, p, &chunk_whole_, &chunk_rem_);
      }
    }
  }

  locations_.assign(n, SeqLocation{});
  slot_epoch_.assign(n, 0);
  node_dirty_epoch_.assign(num_nodes, 0);
  epoch_ = 0;
  node_members_.resize(num_nodes);
  for (std::vector<int>& members : node_members_) {
    members.clear();
  }

  for (uint32_t i = 0; i < plan_.inter_node.size(); ++i) {
    SeqLocation& loc = locations_[plan_.inter_node[i].seq_id];
    loc.kind = SeqLocation::Kind::kZ2Ring;
    loc.inter_queue = true;
    loc.pos = i;
  }
  for (uint32_t i = 0; i < plan_.intra_node.size(); ++i) {
    const RingRef& ring = plan_.intra_node[i];
    SeqLocation& loc = locations_[ring.seq_id];
    loc.pos = i;
    loc.node = plan_.rank_arena[ring.rank_offset] / p;
    if (ring.length >= plan_.threshold_s1) {
      // Single-node inter-zone ring (Alg. 1 chunked it to one node bucket):
      // delta-immutable like any z2 sequence, and not a packing member.
      loc.kind = SeqLocation::Kind::kZ2Ring;
      loc.inter_queue = false;
    } else {
      loc.kind = SeqLocation::Kind::kIntraRing;
      loc.member_pos = static_cast<uint32_t>(node_members_[loc.node].size());
      node_members_[loc.node].push_back(ring.seq_id);
    }
  }
  for (uint32_t i = 0; i < plan_.local.size(); ++i) {
    const LocalSequence& seq = plan_.local[i];
    SeqLocation& loc = locations_[seq.seq_id];
    loc.kind = SeqLocation::Kind::kLocal;
    loc.pos = i;
    loc.node = seq.rank / p;
    loc.member_pos = static_cast<uint32_t>(node_members_[loc.node].size());
    node_members_[loc.node].push_back(seq.seq_id);
  }

  loads_buf_.assign(num_nodes, 0);
  for (int r = 0; r < cluster_.world_size(); ++r) {
    loads_buf_[r / p] += plan_.tokens_per_rank[r];
  }
  node_loads_.Restore(loads_buf_);

  live_count_ = 0;
  for (int64_t len : batch_.seq_lens) {
    live_count_ += len > 0 ? 1 : 0;
  }
  free_spans_.clear();
  free_total_ = 0;
  live_ranks_ = plan_.rank_arena.size();
  base_imbalance_ = Imbalance();
  has_base_ = true;
}

double DeltaPlanner::Imbalance() const {
  // Speed-weighted effective loads over the alive ranks: on a clean topology
  // this is exactly max/mean of tokens_per_rank (eff == raw at nominal
  // speed), so the homogeneous guard is unchanged.
  int64_t total = 0;
  int64_t max_load = 0;
  int alive = 0;
  for (size_t r = 0; r < plan_.tokens_per_rank.size(); ++r) {
    if (!topo_.alive[r]) {
      continue;
    }
    const int64_t eff = topo_.EffectiveLoad(static_cast<int>(r), plan_.tokens_per_rank[r]);
    total += eff;
    max_load = std::max(max_load, eff);
    ++alive;
  }
  const double mean = static_cast<double>(total) / std::max(alive, 1);
  return mean > 0 ? static_cast<double>(max_load) / mean : 1.0;
}

void DeltaPlanner::CountOutcome(DeltaOutcome reason) {
  ++stats_.rebased;
  switch (reason) {
    case DeltaOutcome::kRebasedNoBase:
      ++stats_.rebase_no_base;
      break;
    case DeltaOutcome::kRebasedChurn:
      ++stats_.rebase_churn;
      break;
    case DeltaOutcome::kRebasedZone:
      ++stats_.rebase_zone;
      break;
    case DeltaOutcome::kRebasedRefined:
      ++stats_.rebase_refined;
      break;
    case DeltaOutcome::kRebasedCapacity:
      ++stats_.rebase_capacity;
      break;
    case DeltaOutcome::kRebasedImbalance:
      ++stats_.rebase_imbalance;
      break;
    case DeltaOutcome::kRebasedTopology:
      ++stats_.rebase_topology;
      break;
    case DeltaOutcome::kRebasedMigration:
      ++stats_.rebase_migration;
      break;
    case DeltaOutcome::kApplied:
    case DeltaOutcome::kAppliedTopology:
      ZCHECK(false) << "applied outcomes are not rebase outcomes";
  }
}

DeltaOutcome DeltaPlanner::ApplyViaRebase(const BatchDelta& delta, DeltaOutcome reason) {
  ApplyBatchDelta(delta, &batch_);
  RebaseInternal();
  CountOutcome(reason);
  return reason;
}

DeltaOutcome DeltaPlanner::FallBack(DeltaOutcome reason) {
  // The delta already landed in batch_ and the plan/state may be half
  // patched; a full re-plan rebuilds both from the batch alone.
  RebaseInternal();
  CountOutcome(reason);
  return reason;
}

// --- Eviction ---------------------------------------------------------------

void DeltaPlanner::RemoveIntraHeaderAt(uint32_t pos) {
  std::vector<RingRef>& queue = plan_.intra_node;
  const uint32_t last = static_cast<uint32_t>(queue.size()) - 1;
  if (pos != last) {
    queue[pos] = queue[last];
    locations_[queue[pos].seq_id].pos = pos;
  }
  queue.pop_back();
}

void DeltaPlanner::RemoveLocalAt(uint32_t pos) {
  std::vector<LocalSequence>& locals = plan_.local;
  const uint32_t last = static_cast<uint32_t>(locals.size()) - 1;
  if (pos != last) {
    locals[pos] = locals[last];
    locations_[locals[pos].seq_id].pos = pos;
  }
  locals.pop_back();
}

void DeltaPlanner::RemoveMember(int node, uint32_t member_pos) {
  std::vector<int>& members = node_members_[node];
  const uint32_t last = static_cast<uint32_t>(members.size()) - 1;
  if (member_pos != last) {
    members[member_pos] = members[last];
    locations_[members[member_pos]].member_pos = member_pos;
  }
  members.pop_back();
}

void DeltaPlanner::FreeRingSpan(const RingRef& ring) {
  free_spans_.push_back({ring.rank_offset, ring.rank_count});
  free_total_ += ring.rank_count;
  live_ranks_ -= ring.rank_count;
  ++stats_.evicted_rings;
}

void DeltaPlanner::EvictSlot(int slot) {
  ZCHECK(slot >= 0 && slot < batch_.size()) << "delta slot out of range: " << slot;
  SeqLocation& loc = locations_[slot];
  const int64_t old_len = batch_.seq_lens[slot];
  switch (loc.kind) {
    case SeqLocation::Kind::kLocal: {
      const LocalSequence& entry = plan_.local[loc.pos];
      ZCHECK_EQ(entry.seq_id, slot);
      plan_.tokens_per_rank[entry.rank] -= old_len;
      node_loads_.add(loc.node, -old_len);
      RemoveMember(loc.node, loc.member_pos);
      RemoveLocalAt(loc.pos);
      break;
    }
    case SeqLocation::Kind::kIntraRing: {
      const RingRef ring = plan_.intra_node[loc.pos];
      ZCHECK_EQ(ring.seq_id, slot);
      ZCHECK_EQ(ring.length, old_len) << "plan/batch length drift for slot " << slot;
      // Roll the causal-balanced fragment loads back out (the same split
      // arithmetic the intra stage emitted with; cursor 0 because the span
      // itself already encodes the device order).
      planner_internal::ForEachFragment(
          old_len, static_cast<int>(ring.rank_count), 0, static_cast<int>(ring.rank_count),
          [&](int f, int /*device*/, int64_t share) {
            plan_.tokens_per_rank[plan_.rank_arena[ring.rank_offset + f]] -= share;
          });
      node_loads_.add(loc.node, -old_len);
      FreeRingSpan(ring);
      RemoveMember(loc.node, loc.member_pos);
      RemoveIntraHeaderAt(loc.pos);
      // The node's remaining z1 fragmentation was computed against a c_avg
      // that just changed: re-derive the node's intra stage.
      MarkDirty(loc.node);
      break;
    }
    case SeqLocation::Kind::kZ2Ring:
      ZCHECK(false) << "z2 sequence reached the eviction path (slot " << slot << ")";
      break;
    case SeqLocation::Kind::kNone:
    case SeqLocation::Kind::kPending:
      ZCHECK(false) << "duplicate or unplaced slot in delta: " << slot;
      break;
  }
  loc.kind = SeqLocation::Kind::kNone;
  loc.node = -1;
}

// --- Placement --------------------------------------------------------------

void DeltaPlanner::MarkDirty(int node) {
  if (node_dirty_epoch_[node] != epoch_) {
    node_dirty_epoch_[node] = epoch_;
    dirty_nodes_.push_back(node);
  }
}

bool DeltaPlanner::PlaceLocal(int slot, int node) {
  const int p = cluster_.gpus_per_node;
  const int rank_base = node * p;
  const int64_t len = batch_.seq_lens[slot];
  // Least-effective-loaded alive device, ties to the lowest index. On a clean
  // topology effective == raw load and every device is alive, so this is
  // byte-identical to the packing rule every engine shares. p is small (gpus
  // per node); a scan beats a heap here.
  int best = -1;
  int64_t best_eff = 0;
  for (int d = 0; d < p; ++d) {
    if (!topo_.alive[rank_base + d]) {
      continue;
    }
    const int64_t eff = topo_.EffectiveLoad(rank_base + d, plan_.tokens_per_rank[rank_base + d]);
    if (best < 0 || eff < best_eff) {
      best = d;
      best_eff = eff;
    }
  }
  if (best < 0 ||
      plan_.tokens_per_rank[rank_base + best] + len > options_.token_capacity) {
    return false;  // Device overflow: Alg. 2 refinement (dirty re-run) handles it.
  }
  plan_.tokens_per_rank[rank_base + best] += len;
  SeqLocation& loc = locations_[slot];
  loc.kind = SeqLocation::Kind::kLocal;
  loc.pos = static_cast<uint32_t>(plan_.local.size());
  plan_.local.push_back({slot, len, rank_base + best});
  return true;
}

DeltaOutcome DeltaPlanner::Apply(const BatchDelta& delta) {
  if (!has_base_) {
    return ApplyViaRebase(delta, DeltaOutcome::kRebasedNoBase);
  }
  if (delta.empty()) {
    ++stats_.applied;
    return DeltaOutcome::kApplied;
  }
  // Churn fraction counts churned *slots*: a removal refilled by an addition
  // is one replaced slot, not two changes (extra additions open new slots,
  // extra removals tombstone old ones — each counts once either way).
  const size_t churn_slots =
      std::max(delta.removed.size(), delta.added.size()) + delta.resized.size();
  const double churn = static_cast<double>(churn_slots) / std::max(live_count_, 1);
  if (churn > options_.replan_threshold) {
    return ApplyViaRebase(delta, DeltaOutcome::kRebasedChurn);
  }
  if (base_refined_) {
    return ApplyViaRebase(delta, DeltaOutcome::kRebasedRefined);
  }
  // Inter-node-zone churn: every z2 decision (chunk counts via s_avg, node
  // choices) is globally coupled, so any endpoint in z2 forces a re-plan.
  for (int slot : delta.removed) {
    ZCHECK(slot >= 0 && slot < batch_.size()) << "removed slot out of range: " << slot;
    if (batch_.seq_lens[slot] >= s1_initial_) {
      return ApplyViaRebase(delta, DeltaOutcome::kRebasedZone);
    }
  }
  for (const auto& [slot, new_len] : delta.resized) {
    ZCHECK(slot >= 0 && slot < batch_.size()) << "resized slot out of range: " << slot;
    if (batch_.seq_lens[slot] >= s1_initial_ || new_len >= s1_initial_) {
      return ApplyViaRebase(delta, DeltaOutcome::kRebasedZone);
    }
  }
  for (int64_t len : delta.added) {
    if (len >= s1_initial_) {
      return ApplyViaRebase(delta, DeltaOutcome::kRebasedZone);
    }
  }

  // ---- Patch path ----------------------------------------------------------
  ++epoch_;
  dirty_nodes_.clear();

  // Evict while batch_ still holds the old lengths.
  for (int slot : delta.removed) {
    if (batch_.seq_lens[slot] > 0) {
      --live_count_;
    }
    EvictSlot(slot);
  }
  for (const auto& [slot, new_len] : delta.resized) {
    if (batch_.seq_lens[slot] > 0 && new_len == 0) {
      --live_count_;
    } else if (batch_.seq_lens[slot] == 0 && new_len > 0) {
      ++live_count_;
    }
    EvictSlot(slot);
  }

  ApplyBatchDelta(delta, &batch_, &added_slots_);
  locations_.resize(batch_.seq_lens.size());
  slot_epoch_.resize(batch_.seq_lens.size(), 0);
  for (int slot : added_slots_) {
    if (batch_.seq_lens[slot] > 0) {
      ++live_count_;
    }
  }

  // Every churned slot needs a (re)placement: removed slots (refilled or
  // tombstoned), resized slots, and freshly added tail slots. Deduplicate —
  // a removed slot refilled by an add appears in both lists.
  place_.clear();
  auto consider = [&](int slot) {
    if (slot_epoch_[slot] != epoch_) {
      slot_epoch_[slot] = epoch_;
      place_.push_back(slot);
    }
  };
  for (int slot : delta.removed) {
    consider(slot);
  }
  for (const auto& [slot, new_len] : delta.resized) {
    consider(slot);
  }
  for (int slot : added_slots_) {
    consider(slot);
  }
  // Length-descending, id-ascending: the order every packing stage uses.
  std::sort(place_.begin(), place_.end(), [&](int a, int b) {
    const int64_t la = batch_.seq_lens[a];
    const int64_t lb = batch_.seq_lens[b];
    return la != lb ? la > lb : a < b;
  });

  // Node-level packing of the delta set: on a clean fabric, one round-batched
  // GreedyPacker pass seeded from the live node loads (LoadTracker
  // snapshot/restore); on a degraded one, the elastic scan packer (alive
  // capacities, speed-normalized loads).
  const int count = static_cast<int>(place_.size());
  place_node_.resize(count);
  if (topo_.degraded()) {
    RefreshNodeTopology();
    for (int i = 0; i < count; ++i) {
      const int64_t len = batch_.seq_lens[place_[i]];
      const int node = PickNodeElastic(len);
      if (node < 0) {
        return FallBack(DeltaOutcome::kRebasedCapacity);
      }
      node_loads_.add(node, len);
      place_node_[i] = node;
    }
  } else {
    node_loads_.Snapshot(&loads_buf_);
    delta_packer_.Assign(loads_buf_);
    const int packed =
        delta_packer_.Pack(count, node_capacity_,
                           [&](int i) { return batch_.seq_lens[place_[i]]; },
                           [&](int i, int bucket, int64_t) { place_node_[i] = bucket; });
    if (packed < count) {
      return FallBack(DeltaOutcome::kRebasedCapacity);
    }
    delta_packer_.Loads(&loads_buf_);
    node_loads_.Restore(loads_buf_);
  }

  for (int i = 0; i < count; ++i) {
    const int slot = place_[i];
    const int node = place_node_[i];
    SeqLocation& loc = locations_[slot];
    ZCHECK(loc.kind == SeqLocation::Kind::kNone) << "placing a still-placed slot " << slot;
    loc.kind = SeqLocation::Kind::kPending;
    loc.node = node;
    loc.member_pos = static_cast<uint32_t>(node_members_[node].size());
    node_members_[node].push_back(slot);
    if (batch_.seq_lens[slot] >= plan_.threshold_s0[node]) {
      MarkDirty(node);  // z1-length: joins the node's fragmentation stage.
    } else if (!IsDirty(node) && !PlaceLocal(slot, node)) {
      MarkDirty(node);  // Device overflow: let Alg. 2 refinement resolve it.
    }
    // Dirty nodes keep the slot pending; RepackNode places it below.
  }

  for (int node : dirty_nodes_) {
    RepackNodeDispatch(node);
  }
  MaybeCompact();

  const double imbalance = Imbalance();
  if (imbalance > base_imbalance_ + options_.replan_threshold) {
    return FallBack(DeltaOutcome::kRebasedImbalance);
  }
  // Ratchet the drift reference downward when a patch improves balance, so
  // the allowance tracks the best achieved quality rather than a stale base
  // (a full re-plan resets it exactly).
  base_imbalance_ = std::min(base_imbalance_, imbalance);
  ++stats_.applied;
  stats_.patched_sequences += delta.size();
  return DeltaOutcome::kApplied;
}

// --- Dirty-node intra-node re-run (Alg. 2) ----------------------------------

void DeltaPlanner::RepackNode(int node) {
  const int p = cluster_.gpus_per_node;
  const int rank_base = node * p;
  const int64_t capacity = options_.token_capacity;
  std::vector<int>& members = node_members_[node];
  ++stats_.repacked_nodes;

  // Evict every member's current plan entry; pending members have none.
  // Loads need no arithmetic here: the re-run rebuilds this node's device
  // loads from the chunk base, and node membership (hence the node total the
  // inter-node packing sees) is unchanged by an intra re-run.
  for (int slot : members) {
    SeqLocation& loc = locations_[slot];
    switch (loc.kind) {
      case SeqLocation::Kind::kIntraRing:
        FreeRingSpan(plan_.intra_node[loc.pos]);
        RemoveIntraHeaderAt(loc.pos);
        break;
      case SeqLocation::Kind::kLocal:
        RemoveLocalAt(loc.pos);
        break;
      case SeqLocation::Kind::kPending:
        break;
      case SeqLocation::Kind::kZ2Ring:
      case SeqLocation::Kind::kNone:
        ZCHECK(false) << "invalid member state on node " << node;
    }
    loc.kind = SeqLocation::Kind::kPending;
  }

  // Alg. 2 packing order: length-descending, id-ascending.
  std::sort(members.begin(), members.end(), [&](int a, int b) {
    const int64_t la = batch_.seq_lens[a];
    const int64_t lb = batch_.seq_lens[b];
    return la != lb ? la > lb : a < b;
  });
  for (uint32_t i = 0; i < members.size(); ++i) {
    locations_[members[i]].member_pos = i;
  }

  // Device base loads from the persistent inter-chunk aggregates — the same
  // expansion every intra-stage consumer shares.
  planner_internal::ExpandChunkBase(chunk_whole_, chunk_rem_, node, p, &chunk_base_);

  const int n = static_cast<int>(members.size());
  int64_t s0 = capacity;
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  int boundary = static_cast<int>(
      std::partition_point(members.begin(), members.end(),
                           [&](int slot) { return batch_.seq_lens[slot] >= s0; }) -
      members.begin());

  int restarts = 0;
  for (;;) {
    device_tracker_.Assign(chunk_base_);
    ring_buf_.clear();
    z0_buf_.clear();
    z1_buf_.clear();

    // The shared Alg. 2 fragmentation pass (identical cursor progression and
    // fragment counts across every engine and this re-pack).
    planner_internal::FragmentZone1(
        boundary, p, [&](int i) { return batch_.seq_lens[members[i]]; },
        [&](int i, int64_t len, int fragments, int cursor) {
          ring_buf_.push_back({members[i], len, fragments, cursor});
          planner_internal::ForEachFragment(
              len, fragments, cursor, p,
              [&](int /*f*/, int device, int64_t share) { device_tracker_.add(device, share); });
        },
        [&](int i, int64_t len, int device) {
          z1_buf_.push_back({members[i], len, rank_base + device});
          device_tracker_.add(device, len);
        });

    bool overflowed = false;
    for (int i = boundary; i < n; ++i) {
      const int slot = members[i];
      const int64_t len = batch_.seq_lens[slot];
      const int idx = device_tracker_.pack_min(len, capacity);
      if (idx < 0) {
        boundary = planner_internal::AdvanceZoneBoundary(
            n, i, [&](int j) { return batch_.seq_lens[members[j]]; }, &s0);
        overflowed = true;
        break;
      }
      z0_buf_.push_back({slot, len, rank_base + idx});
    }
    if (!overflowed) {
      break;
    }
    ZCHECK_LE(++restarts, n) << "delta intra-node restart chain exceeded its bound";
  }

  // Commit: rings into recycled or tail spans, locals appended (z0 first,
  // then single-fragment z1 conversions — the engines' shared order).
  for (const PendingRing& ring : ring_buf_) {
    const uint32_t offset = AllocSpan(static_cast<uint32_t>(ring.fragments));
    for (int f = 0; f < ring.fragments; ++f) {
      plan_.rank_arena[offset + f] = rank_base + (ring.cursor_start + f) % p;
    }
    SeqLocation& loc = locations_[ring.slot];
    loc.kind = SeqLocation::Kind::kIntraRing;
    loc.pos = static_cast<uint32_t>(plan_.intra_node.size());
    plan_.intra_node.push_back({ring.slot, ring.length, Zone::kIntraNode, offset,
                                static_cast<uint32_t>(ring.fragments)});
    live_ranks_ += static_cast<uint32_t>(ring.fragments);
  }
  auto commit_local = [&](const LocalSequence& seq) {
    SeqLocation& loc = locations_[seq.seq_id];
    loc.kind = SeqLocation::Kind::kLocal;
    loc.pos = static_cast<uint32_t>(plan_.local.size());
    plan_.local.push_back(seq);
  };
  for (const LocalSequence& seq : z0_buf_) {
    commit_local(seq);
  }
  for (const LocalSequence& seq : z1_buf_) {
    commit_local(seq);
  }
  int64_t device_total = 0;
  for (int d = 0; d < p; ++d) {
    const int64_t load = device_tracker_.load(d);
    plan_.tokens_per_rank[rank_base + d] = load;
    device_total += load;
  }
  ZCHECK_EQ(device_total, node_loads_.load(node))
      << "intra re-run must conserve node " << node << " tokens";
  plan_.threshold_s0[node] = s0;
}

// --- Elastic topology patching ------------------------------------------------

void DeltaPlanner::RefreshNodeTopology() {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  node_alive_.assign(num_nodes, 0);
  node_rate_.assign(num_nodes, 0);
  for (int node = 0; node < num_nodes; ++node) {
    for (int d = 0; d < p; ++d) {
      const int rank = node * p + d;
      if (topo_.alive[rank]) {
        ++node_alive_[node];
        node_rate_[node] += topo_.speed_q[rank];
      }
    }
  }
}

int DeltaPlanner::PickNodeElastic(int64_t len) const {
  // Speed-normalized node load: raw tokens rescaled to the full-node nominal
  // rate p * kSpeedScale, so a half-alive or half-speed node looks twice as
  // loaded per token and naturally receives less work. Raw capacity is the
  // alive-device count times L. Deterministic: ties go to the lowest index.
  const int num_nodes = cluster_.num_nodes;
  const int64_t full_rate = static_cast<int64_t>(cluster_.gpus_per_node) * kSpeedScale;
  int best = -1;
  int64_t best_key = 0;
  for (int node = 0; node < num_nodes; ++node) {
    if (node_alive_[node] == 0) {
      continue;
    }
    const int64_t raw = node_loads_.load(node);
    if (raw + len > static_cast<int64_t>(node_alive_[node]) * options_.token_capacity) {
      continue;
    }
    const int64_t key = raw * full_rate / node_rate_[node];
    if (best < 0 || key < best_key) {
      best = node;
      best_key = key;
    }
  }
  return best;
}

bool DeltaPlanner::NodeHasChunks(int node) const {
  // Every recorded chunk lands in exactly one remainder bucket (including
  // r == 0), so the bucket sum is the node's chunk count.
  if (chunk_rem_.empty()) {
    return false;
  }
  const int p = cluster_.gpus_per_node;
  for (int r = 0; r < p; ++r) {
    if (chunk_rem_[static_cast<size_t>(node) * p + r] > 0) {
      return true;
    }
  }
  return false;
}

bool DeltaPlanner::NodeClean(int node) const {
  const int p = cluster_.gpus_per_node;
  for (int d = 0; d < p; ++d) {
    const int rank = node * p + d;
    if (!topo_.alive[rank] || topo_.speed_q[rank] != kSpeedScale) {
      return false;
    }
  }
  return true;
}

void DeltaPlanner::RepackNodeDispatch(int node) {
  if (NodeClean(node)) {
    RepackNode(node);
    return;
  }
  const int p = cluster_.gpus_per_node;
  int alive = 0;
  for (int d = 0; d < p; ++d) {
    alive += topo_.alive[node * p + d] ? 1 : 0;
  }
  if (alive == 0) {
    // Fully-dead nodes own no members or load by the time dirty nodes re-run
    // (ApplyTopology migrated them off before dirtying).
    ZCHECK(node_members_[node].empty()) << "dead node " << node << " still owns members";
    ZCHECK_EQ(node_loads_.load(node), 0) << "dead node " << node << " still owns load";
    return;
  }
  ++stats_.repacked_nodes;
  RepackNodeElastic(node);
}

DeltaOutcome DeltaPlanner::ApplyTopology(const TopologyDelta& delta) {
  // Scale-up detection (before the fold: it compares against the old
  // speeds): rank restores and speed increases add capacity a patch cannot
  // exploit — migration only moves load *off* dead and slowed ranks, and the
  // drift guard's base reference predates the improvement, so a patched
  // plan would leave the new capacity idle while still passing the guard.
  bool fabric_improved = !delta.added_ranks.empty();
  for (const auto& [rank, factor] : delta.speed_factors) {
    if (QuantizeSpeed(factor) > topo_.speed_q[rank]) {
      fabric_improved = true;
      break;
    }
  }
  // The fabric state always advances, even when the plan cannot be patched:
  // every later Rebase/Apply must honor the new topology.
  topo_.Apply(delta);
  if (!has_base_) {
    // Nothing to patch yet; not counted (no planning happened). The next
    // Apply()/Rebase() plans against the recorded fabric.
    return DeltaOutcome::kRebasedNoBase;
  }
  if (delta.empty()) {
    ++stats_.applied_topology;
    return DeltaOutcome::kAppliedTopology;
  }
  if (base_refined_) {
    // Capacity-tight base (refined s1): incremental surgery could silently
    // diverge from what refinement would choose — same rule as Apply().
    return FallBack(DeltaOutcome::kRebasedRefined);
  }
  if (fabric_improved) {
    // Scale-up is structural: re-plan so restored/accelerated ranks take
    // load immediately (docs/ELASTIC.md "Scale-up rebases").
    return FallBack(DeltaOutcome::kRebasedTopology);
  }
  const int p = cluster_.gpus_per_node;
  RefreshNodeTopology();

  // Structural fallbacks. Chunk aggregates are keyed by the alive count they
  // were recorded under, so a liveness change on a chunk-carrying node (which
  // includes every node a z2 ring touches) invalidates them; a surviving
  // node whose raw load exceeds its reduced alive capacity cannot be fixed
  // by an intra re-run alone.
  for (int rank : delta.removed_ranks) {
    if (NodeHasChunks(rank / p)) {
      return FallBack(DeltaOutcome::kRebasedTopology);
    }
  }
  int64_t migrations = 0;
  for (int node = 0; node < cluster_.num_nodes; ++node) {
    if (node_alive_[node] == 0) {
      migrations += static_cast<int64_t>(node_members_[node].size());
    } else if (node_loads_.load(node) >
               static_cast<int64_t>(node_alive_[node]) * options_.token_capacity) {
      return FallBack(DeltaOutcome::kRebasedTopology);
    }
  }
  if (migrations > options_.migration_budget) {
    return FallBack(DeltaOutcome::kRebasedMigration);
  }

  // ---- Patch path ----------------------------------------------------------
  ++epoch_;
  dirty_nodes_.clear();

  // Every surviving node the delta touches re-runs its intra stage: kills
  // change the device set, slowdowns change the effective-load balance
  // within the node (restores never reach here — scale-up rebases above).
  auto touch = [&](int rank) {
    const int node = rank / p;
    if (node_alive_[node] > 0) {
      MarkDirty(node);
    }
  };
  for (int rank : delta.removed_ranks) {
    touch(rank);
  }
  for (const auto& [rank, factor] : delta.speed_factors) {
    touch(rank);
  }

  // Evict the members of fully-dead nodes into the migration set (copy the
  // member list first: EvictSlot swap-erases the list it walks).
  migrate_buf_.clear();
  for (int rank : delta.removed_ranks) {
    const int node = rank / p;
    if (node_alive_[node] > 0 || node_members_[node].empty()) {
      continue;
    }
    const size_t start = migrate_buf_.size();
    migrate_buf_.insert(migrate_buf_.end(), node_members_[node].begin(),
                        node_members_[node].end());
    for (size_t i = start; i < migrate_buf_.size(); ++i) {
      EvictSlot(migrate_buf_[i]);
    }
  }
  stats_.migrated_sequences += static_cast<int64_t>(migrate_buf_.size());

  // Re-pack migrants cross-node, longest first (the shared packing order),
  // through the elastic node packer; then the usual local/dirty split.
  std::sort(migrate_buf_.begin(), migrate_buf_.end(), [&](int a, int b) {
    const int64_t la = batch_.seq_lens[a];
    const int64_t lb = batch_.seq_lens[b];
    return la != lb ? la > lb : a < b;
  });
  for (int slot : migrate_buf_) {
    const int64_t len = batch_.seq_lens[slot];
    const int node = PickNodeElastic(len);
    if (node < 0) {
      return FallBack(DeltaOutcome::kRebasedCapacity);
    }
    node_loads_.add(node, len);
    SeqLocation& loc = locations_[slot];
    loc.kind = SeqLocation::Kind::kPending;
    loc.node = node;
    loc.member_pos = static_cast<uint32_t>(node_members_[node].size());
    node_members_[node].push_back(slot);
    if (len >= plan_.threshold_s0[node]) {
      MarkDirty(node);
    } else if (!IsDirty(node) && !PlaceLocal(slot, node)) {
      MarkDirty(node);
    }
  }

  for (int node : dirty_nodes_) {
    RepackNodeDispatch(node);
  }
  MaybeCompact();

  const double imbalance = Imbalance();
  if (imbalance > base_imbalance_ + options_.replan_threshold) {
    return FallBack(DeltaOutcome::kRebasedImbalance);
  }
  base_imbalance_ = std::min(base_imbalance_, imbalance);
  ++stats_.applied_topology;
  return DeltaOutcome::kAppliedTopology;
}

// --- Elastic intra-node re-run (Alg. 2 over the alive devices) ----------------

void DeltaPlanner::RepackNodeElastic(int node) {
  const int p = cluster_.gpus_per_node;
  const int rank_base = node * p;
  const int64_t capacity = options_.token_capacity;
  alive_buf_.clear();
  for (int d = 0; d < p; ++d) {
    if (topo_.alive[rank_base + d]) {
      alive_buf_.push_back(d);
    }
  }
  const int m = static_cast<int>(alive_buf_.size());
  ZCHECK_GT(m, 0) << "elastic repack on a fully-dead node " << node;
  std::vector<int>& members = node_members_[node];

  // Evict every member's current plan entry; pending members have none.
  for (int slot : members) {
    SeqLocation& loc = locations_[slot];
    switch (loc.kind) {
      case SeqLocation::Kind::kIntraRing:
        FreeRingSpan(plan_.intra_node[loc.pos]);
        RemoveIntraHeaderAt(loc.pos);
        break;
      case SeqLocation::Kind::kLocal:
        RemoveLocalAt(loc.pos);
        break;
      case SeqLocation::Kind::kPending:
        break;
      case SeqLocation::Kind::kZ2Ring:
      case SeqLocation::Kind::kNone:
        ZCHECK(false) << "invalid member state on node " << node;
    }
    loc.kind = SeqLocation::Kind::kPending;
  }

  std::sort(members.begin(), members.end(), [&](int a, int b) {
    const int64_t la = batch_.seq_lens[a];
    const int64_t lb = batch_.seq_lens[b];
    return la != lb ? la > lb : a < b;
  });
  for (uint32_t i = 0; i < members.size(); ++i) {
    locations_[members[i]].member_pos = i;
  }

  // Elastic chunk-base expansion: the aggregates were recorded with divisor
  // m (ApplyTopology falls back before any liveness change on a chunk-
  // carrying node, so the divisor always matches), and device d here is the
  // d-th *alive* device. Buckets at r >= m must therefore be empty.
  chunk_base_.resize(m);
  for (int r = m; r < p; ++r) {
    ZCHECK_EQ(chunk_rem_[static_cast<size_t>(node) * p + r], 0)
        << "chunk aggregate divisor drift on node " << node;
  }
  for (int d = 0; d < m; ++d) {
    int64_t share = chunk_whole_[node];
    for (int r = 1; r < m; ++r) {
      share += chunk_rem_[static_cast<size_t>(node) * p + r] * ((d + 1) * r / m - d * r / m);
    }
    chunk_base_[d] = share;
  }

  const int n = static_cast<int>(members.size());
  int64_t s0 = capacity;
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  int boundary = static_cast<int>(
      std::partition_point(members.begin(), members.end(),
                           [&](int slot) { return batch_.seq_lens[slot] >= s0; }) -
      members.begin());

  int restarts = 0;
  for (;;) {
    dev_raw_.assign(chunk_base_.begin(), chunk_base_.end());
    ring_buf_.clear();
    z0_buf_.clear();
    z1_buf_.clear();

    // The shared Alg. 2 fragmentation pass with p -> m: fragments spread
    // round-robin over the alive devices only.
    planner_internal::FragmentZone1(
        boundary, m, [&](int i) { return batch_.seq_lens[members[i]]; },
        [&](int i, int64_t len, int fragments, int cursor) {
          ring_buf_.push_back({members[i], len, fragments, cursor});
          planner_internal::ForEachFragment(
              len, fragments, cursor, m,
              [&](int /*f*/, int device, int64_t share) { dev_raw_[device] += share; });
        },
        [&](int i, int64_t len, int device) {
          z1_buf_.push_back({members[i], len, rank_base + alive_buf_[device]});
          dev_raw_[device] += len;
        });

    // z0: least *effective*-loaded alive device that still fits the raw
    // capacity. (Differs from the homogeneous argmin-or-overflow pack_min by
    // design: on a skewed fabric the argmin by effective load may be raw-
    // full while another device still fits.)
    bool overflowed = false;
    for (int i = boundary; i < n; ++i) {
      const int slot = members[i];
      const int64_t len = batch_.seq_lens[slot];
      int best = -1;
      int64_t best_eff = 0;
      for (int d = 0; d < m; ++d) {
        if (dev_raw_[d] + len > capacity) {
          continue;
        }
        const int64_t eff = topo_.EffectiveLoad(rank_base + alive_buf_[d], dev_raw_[d]);
        if (best < 0 || eff < best_eff) {
          best = d;
          best_eff = eff;
        }
      }
      if (best < 0) {
        boundary = planner_internal::AdvanceZoneBoundary(
            n, i, [&](int j) { return batch_.seq_lens[members[j]]; }, &s0);
        overflowed = true;
        break;
      }
      dev_raw_[best] += len;
      z0_buf_.push_back({slot, len, rank_base + alive_buf_[best]});
    }
    if (!overflowed) {
      break;
    }
    ZCHECK_LE(++restarts, n) << "elastic intra-node restart chain exceeded its bound";
  }

  for (const PendingRing& ring : ring_buf_) {
    const uint32_t offset = AllocSpan(static_cast<uint32_t>(ring.fragments));
    for (int f = 0; f < ring.fragments; ++f) {
      plan_.rank_arena[offset + f] = rank_base + alive_buf_[(ring.cursor_start + f) % m];
    }
    SeqLocation& loc = locations_[ring.slot];
    loc.kind = SeqLocation::Kind::kIntraRing;
    loc.pos = static_cast<uint32_t>(plan_.intra_node.size());
    plan_.intra_node.push_back({ring.slot, ring.length, Zone::kIntraNode, offset,
                                static_cast<uint32_t>(ring.fragments)});
    live_ranks_ += static_cast<uint32_t>(ring.fragments);
  }
  auto commit_local = [&](const LocalSequence& seq) {
    SeqLocation& loc = locations_[seq.seq_id];
    loc.kind = SeqLocation::Kind::kLocal;
    loc.pos = static_cast<uint32_t>(plan_.local.size());
    plan_.local.push_back(seq);
  };
  for (const LocalSequence& seq : z0_buf_) {
    commit_local(seq);
  }
  for (const LocalSequence& seq : z1_buf_) {
    commit_local(seq);
  }
  int64_t device_total = 0;
  for (int d = 0; d < p; ++d) {
    plan_.tokens_per_rank[rank_base + d] = 0;
  }
  for (int d = 0; d < m; ++d) {
    plan_.tokens_per_rank[rank_base + alive_buf_[d]] = dev_raw_[d];
    device_total += dev_raw_[d];
  }
  ZCHECK_EQ(device_total, node_loads_.load(node))
      << "elastic intra re-run must conserve node " << node << " tokens";
  plan_.threshold_s0[node] = s0;
}

// --- Elastic full re-plan (degraded-fabric Alg. 1 + per-node Alg. 2) ---------

void DeltaPlanner::ElasticReplan() {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int world = cluster_.world_size();
  const int n = batch_.size();
  const int64_t capacity = options_.token_capacity;

  RefreshNodeTopology();
  int alive_nodes = 0;
  int64_t fabric_capacity = 0;
  int64_t max_node_cap = 0;
  for (int node = 0; node < num_nodes; ++node) {
    const int64_t cap = static_cast<int64_t>(node_alive_[node]) * capacity;
    alive_nodes += node_alive_[node] > 0 ? 1 : 0;
    fabric_capacity += cap;
    max_node_cap = std::max(max_node_cap, cap);
  }
  ZCHECK_GT(alive_nodes, 0) << "no alive nodes";
  const int64_t total = batch_.total_tokens();
  ZCHECK_LE(total, fabric_capacity)
      << "batch does not fit the surviving fabric at capacity L=" << capacity;

  node_capacity_ = static_cast<int64_t>(p) * capacity;
  int64_t s1_init = std::min(node_capacity_, std::max<int64_t>(max_node_cap, 1));
  if (options_.max_inter_threshold > 0) {
    s1_init = std::min(s1_init, options_.max_inter_threshold);
  }
  s1_initial_ = s1_init;

  plan_.tokens_per_rank.assign(world, 0);
  plan_.threshold_s0.assign(num_nodes, 0);
  slot_epoch_.assign(n, 0);
  node_dirty_epoch_.assign(num_nodes, 0);
  epoch_ = 0;
  node_members_.resize(num_nodes);
  free_spans_.clear();
  free_total_ = 0;

  // Length-descending, id-ascending order (Alg. 1 line 1).
  order_buf_.resize(n);
  for (int i = 0; i < n; ++i) {
    order_buf_[i] = i;
  }
  std::sort(order_buf_.begin(), order_buf_.end(), [&](int a, int b) {
    const int64_t la = batch_.seq_lens[a];
    const int64_t lb = batch_.seq_lens[b];
    return la != lb ? la > lb : a < b;
  });

  int64_t s1 = s1_init;
  for (bool retry = true; retry;) {
    retry = false;
    plan_.inter_node.clear();
    plan_.intra_node.clear();
    plan_.local.clear();
    plan_.rank_arena.clear();
    live_ranks_ = 0;
    locations_.assign(n, SeqLocation{});
    for (std::vector<int>& members : node_members_) {
      members.clear();
    }
    chunk_whole_.assign(num_nodes, 0);
    chunk_rem_.assign(static_cast<size_t>(num_nodes) * p, 0);
    loads_buf_.assign(num_nodes, 0);

    const int boundary = static_cast<int>(
        std::partition_point(order_buf_.begin(), order_buf_.end(),
                             [&](int id) { return batch_.seq_lens[id] >= s1; }) -
        order_buf_.begin());

    // z2: chunk over the k least speed-normalized-loaded alive nodes
    // (Alg. 1 lines 7-10 with N -> alive node count), spanning only alive
    // devices; grow k when a chunk would overflow a small surviving node.
    int64_t z2_total = 0;
    for (int i = 0; i < boundary; ++i) {
      z2_total += batch_.seq_lens[order_buf_[i]];
    }
    const double s_avg = static_cast<double>(z2_total) / alive_nodes;
    const int64_t full_rate = static_cast<int64_t>(p) * kSpeedScale;
    for (int i = 0; i < boundary; ++i) {
      const int id = order_buf_[i];
      const int64_t len = batch_.seq_lens[id];
      int k = planner_internal::InterNodeChunkCount(len, s_avg, alive_nodes);
      // All alive nodes by (speed-normalized load, index).
      node_sel_.clear();
      for (int node = 0; node < num_nodes; ++node) {
        if (node_alive_[node] > 0) {
          node_sel_.emplace_back(loads_buf_[node] * full_rate / node_rate_[node], node);
        }
      }
      std::sort(node_sel_.begin(), node_sel_.end());
      // Even chunks first, growing k while any chunk overflows its node.
      // Even chunking can be infeasible outright on unevenly-degraded
      // fabrics (len / alive_nodes exceeds a half-dead node's remaining
      // room even though the total fits); then fall back to a
      // capacity-greedy split that fills the least-loaded nodes first.
      bool even = false;
      for (; k <= alive_nodes; ++k) {
        bool fits = true;
        for (int c = 0; c < k; ++c) {
          const int64_t chunk = len * (c + 1) / k - len * c / k;
          const int node = node_sel_[c].second;
          if (loads_buf_[node] + chunk >
              static_cast<int64_t>(node_alive_[node]) * capacity) {
            fits = false;
            break;
          }
        }
        if (fits) {
          even = true;
          break;
        }
      }
      chunk_split_.assign(node_sel_.size(), 0);
      if (even) {
        chunk_split_.resize(k);
        for (int c = 0; c < k; ++c) {
          chunk_split_[c] = len * (c + 1) / k - len * c / k;
        }
      } else {
        int64_t unplaced = len;
        for (size_t c = 0; c < node_sel_.size() && unplaced > 0; ++c) {
          const int node = node_sel_[c].second;
          const int64_t room =
              static_cast<int64_t>(node_alive_[node]) * capacity - loads_buf_[node];
          const int64_t take = std::min(unplaced, std::max<int64_t>(room, 0));
          chunk_split_[c] = take;
          unplaced -= take;
        }
        ZCHECK_EQ(unplaced, 0)
            << "z2 sequence " << id << " does not fit the surviving fabric";
      }

      int span = 0;
      int used_nodes = 0;
      for (size_t c = 0; c < chunk_split_.size(); ++c) {
        if (chunk_split_[c] > 0) {
          span += node_alive_[node_sel_[c].second];
          ++used_nodes;
        }
      }
      const bool inter = used_nodes > 1;
      const uint32_t offset = AllocSpan(static_cast<uint32_t>(span));
      int* out = plan_.rank_arena.data() + offset;
      for (size_t c = 0; c < chunk_split_.size(); ++c) {
        if (chunk_split_[c] == 0) {
          continue;
        }
        const int node = node_sel_[c].second;
        for (int d = 0; d < p; ++d) {
          if (topo_.alive[node * p + d]) {
            *out++ = node * p + d;
          }
        }
      }
      SeqLocation& loc = locations_[id];
      loc.kind = SeqLocation::Kind::kZ2Ring;
      loc.inter_queue = inter;
      std::vector<RingRef>& queue = inter ? plan_.inter_node : plan_.intra_node;
      loc.pos = static_cast<uint32_t>(queue.size());
      loc.node = node_sel_[0].second;
      queue.push_back({id, len, inter ? Zone::kInterNode : Zone::kIntraNode, offset,
                       static_cast<uint32_t>(span)});
      live_ranks_ += static_cast<uint32_t>(span);
      for (size_t c = 0; c < chunk_split_.size(); ++c) {
        const int64_t chunk = chunk_split_[c];
        if (chunk == 0) {
          continue;
        }
        const int node = node_sel_[c].second;
        const int m = node_alive_[node];
        const int64_t q = chunk / m;
        chunk_whole_[node] += q;
        ++chunk_rem_[static_cast<size_t>(node) * p + (chunk - q * m)];
        loads_buf_[node] += chunk;
      }
    }

    // z01 packing onto the best-fitting alive node by speed-normalized load
    // (lines 11-19); an unplaceable sequence promotes the zone boundary.
    for (int i = boundary; i < n; ++i) {
      const int id = order_buf_[i];
      const int64_t len = batch_.seq_lens[id];
      int best = -1;
      int64_t best_key = 0;
      for (int node = 0; node < num_nodes; ++node) {
        if (node_alive_[node] == 0 ||
            loads_buf_[node] + len > static_cast<int64_t>(node_alive_[node]) * capacity) {
          continue;
        }
        const int64_t key = loads_buf_[node] * full_rate / node_rate_[node];
        if (best < 0 || key < best_key) {
          best = node;
          best_key = key;
        }
      }
      if (best < 0) {
        s1 = len;  // len == max remaining: the order is length-descending.
        retry = true;
        break;
      }
      loads_buf_[best] += len;
      SeqLocation& loc = locations_[id];
      loc.kind = SeqLocation::Kind::kPending;
      loc.node = best;
      loc.member_pos = static_cast<uint32_t>(node_members_[best].size());
      node_members_[best].push_back(id);
    }
  }
  plan_.threshold_s1 = s1;
  base_refined_ = s1 < s1_initial_;

  // Intra stage per surviving node (elastic Alg. 2 over the alive devices).
  node_loads_.Restore(loads_buf_);
  int64_t s0_default = capacity;
  if (options_.max_local_threshold > 0) {
    s0_default = std::min(s0_default, options_.max_local_threshold);
  }
  for (int node = 0; node < num_nodes; ++node) {
    plan_.threshold_s0[node] = s0_default;
    if (node_alive_[node] == 0) {
      ZCHECK(node_members_[node].empty()) << "dead node " << node << " was packed";
      continue;
    }
    RepackNodeElastic(node);
  }

  live_count_ = 0;
  for (int64_t len : batch_.seq_lens) {
    live_count_ += len > 0 ? 1 : 0;
  }
  base_imbalance_ = Imbalance();
  has_base_ = true;
}

// --- Arena span management ----------------------------------------------------

uint32_t DeltaPlanner::AllocSpan(uint32_t count) {
  for (size_t i = 0; i < free_spans_.size(); ++i) {
    if (free_spans_[i].count >= count) {
      const uint32_t offset = free_spans_[i].offset;
      free_spans_[i].offset += count;
      free_spans_[i].count -= count;
      if (free_spans_[i].count == 0) {
        free_spans_[i] = free_spans_.back();
        free_spans_.pop_back();
      }
      free_total_ -= count;
      return offset;
    }
  }
  const uint32_t offset = static_cast<uint32_t>(plan_.rank_arena.size());
  plan_.rank_arena.resize(offset + count);
  return offset;
}

void DeltaPlanner::MaybeCompact() {
  // Compact when at least half the arena is dead (amortized O(1) per evicted
  // slot); the floor keeps tiny plans from thrashing.
  if (free_total_ < 64 || free_total_ * 2 <= plan_.rank_arena.size()) {
    return;
  }
  compact_buf_.clear();
  compact_buf_.reserve(live_ranks_);
  auto relocate = [&](std::vector<RingRef>& queue) {
    for (RingRef& ring : queue) {
      const uint32_t new_offset = static_cast<uint32_t>(compact_buf_.size());
      compact_buf_.insert(compact_buf_.end(),
                          plan_.rank_arena.begin() + ring.rank_offset,
                          plan_.rank_arena.begin() + ring.rank_offset + ring.rank_count);
      ring.rank_offset = new_offset;
    }
  };
  relocate(plan_.inter_node);
  relocate(plan_.intra_node);
  ZCHECK_EQ(compact_buf_.size(), live_ranks_) << "compaction lost arena slots";
  plan_.rank_arena.swap(compact_buf_);
  free_spans_.clear();
  free_total_ = 0;
  ++stats_.compactions;
}

// --- Equivalence checking -----------------------------------------------------

namespace {

bool CoverageCounts(const PartitionPlan& plan, int batch_size, std::vector<int>* counts) {
  counts->assign(batch_size, 0);
  auto tally = [&](int seq_id) {
    if (seq_id < 0 || seq_id >= batch_size) {
      return false;
    }
    return ++(*counts)[seq_id] == 1;
  };
  for (const RingRef& ring : plan.inter_node) {
    if (!tally(ring.seq_id)) {
      return false;
    }
  }
  for (const RingRef& ring : plan.intra_node) {
    if (!tally(ring.seq_id)) {
      return false;
    }
  }
  for (const LocalSequence& seq : plan.local) {
    if (!tally(seq.seq_id)) {
      return false;
    }
  }
  for (int c : *counts) {
    if (c != 1) {
      return false;
    }
  }
  return true;
}

// All inter-node-zone rings (length >= s1, from either queue) as
// (seq_id, length, rank list), sorted by sequence.
std::vector<std::tuple<int, int64_t, std::vector<int>>> Z2RingSet(const PartitionPlan& plan) {
  std::vector<std::tuple<int, int64_t, std::vector<int>>> out;
  auto collect = [&](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      if (ring.length >= plan.threshold_s1) {
        const std::span<const int> ranks = plan.ranks(ring);
        out.emplace_back(ring.seq_id, ring.length,
                         std::vector<int>(ranks.begin(), ranks.end()));
      }
    }
  };
  collect(plan.inter_node);
  collect(plan.intra_node);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

DeltaEquivalenceResult CheckDeltaEquivalence(const PartitionPlan& patched,
                                             const PartitionPlan& replan,
                                             const Batch& batch, double eps) {
  DeltaEquivalenceResult result;
  std::vector<int> counts;
  if (!CoverageCounts(patched, batch.size(), &counts)) {
    result.failure = "patched plan does not cover every sequence exactly once";
    return result;
  }
  if (!CoverageCounts(replan, batch.size(), &counts)) {
    result.failure = "replan does not cover every sequence exactly once";
    return result;
  }

  // Arena validity of the patched plan: in-bounds headers, disjoint live
  // spans. (Tightness is not required of delta plans — see docs/DELTA_PLANS.md.)
  std::vector<uint8_t> used(patched.rank_arena.size(), 0);
  auto check_queue = [&](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      if (static_cast<size_t>(ring.rank_offset) + ring.rank_count > patched.rank_arena.size()) {
        return false;
      }
      for (uint32_t f = 0; f < ring.rank_count; ++f) {
        if (used[ring.rank_offset + f]++) {
          return false;
        }
      }
    }
    return true;
  };
  if (!check_queue(patched.inter_node) || !check_queue(patched.intra_node)) {
    result.failure = "patched plan arena spans out of bounds or overlapping";
    return result;
  }

  const int64_t batch_tokens = batch.total_tokens();
  if (patched.total_tokens() != batch_tokens) {
    result.failure = "patched plan does not conserve tokens";
    return result;
  }
  if (replan.total_tokens() != batch_tokens) {
    result.failure = "replan does not conserve tokens";
    return result;
  }

  if (patched.threshold_s1 != replan.threshold_s1) {
    result.failure = "threshold_s1 mismatch (capacity-tight batch refined differently)";
    return result;
  }
  if (Z2RingSet(patched) != Z2RingSet(replan)) {
    result.failure = "inter-node-zone ring sets differ";
    return result;
  }

  int64_t patched_max = 0;
  int64_t replan_max = 0;
  for (int64_t tokens : patched.tokens_per_rank) {
    patched_max = std::max(patched_max, tokens);
  }
  for (int64_t tokens : replan.tokens_per_rank) {
    replan_max = std::max(replan_max, tokens);
  }
  result.max_load_ratio =
      replan_max > 0 ? static_cast<double>(patched_max) / static_cast<double>(replan_max) : 1.0;
  if (static_cast<double>(patched_max) > (1.0 + eps) * static_cast<double>(replan_max)) {
    result.failure = "patched max rank load exceeds the eps bound";
    return result;
  }
  result.ok = true;
  return result;
}

DeltaEquivalenceResult CheckDeltaEquivalence(const PartitionPlan& patched,
                                             const PartitionPlan& replan,
                                             const Batch& batch,
                                             const RankTopology& topology, double eps) {
  if (!topology.degraded()) {
    return CheckDeltaEquivalence(patched, replan, batch, eps);
  }

  // Degraded fabric: the s1-identity and z2-set-identity clauses are dropped
  // (the patched plan legitimately carries pre-failure zone structure the
  // elastic replan would not reproduce); in their place, no plan may touch a
  // dead rank and the eps bound moves to *effective* loads over the
  // surviving ranks.
  DeltaEquivalenceResult result;
  std::vector<int> counts;
  if (!CoverageCounts(patched, batch.size(), &counts)) {
    result.failure = "patched plan does not cover every sequence exactly once";
    return result;
  }
  if (!CoverageCounts(replan, batch.size(), &counts)) {
    result.failure = "replan does not cover every sequence exactly once";
    return result;
  }

  std::vector<uint8_t> used(patched.rank_arena.size(), 0);
  auto check_queue = [&](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      if (static_cast<size_t>(ring.rank_offset) + ring.rank_count > patched.rank_arena.size()) {
        return false;
      }
      for (uint32_t f = 0; f < ring.rank_count; ++f) {
        if (used[ring.rank_offset + f]++) {
          return false;
        }
      }
    }
    return true;
  };
  if (!check_queue(patched.inter_node) || !check_queue(patched.intra_node)) {
    result.failure = "patched plan arena spans out of bounds or overlapping";
    return result;
  }

  const int64_t batch_tokens = batch.total_tokens();
  if (patched.total_tokens() != batch_tokens) {
    result.failure = "patched plan does not conserve tokens";
    return result;
  }
  if (replan.total_tokens() != batch_tokens) {
    result.failure = "replan does not conserve tokens";
    return result;
  }

  const int world = topology.world();
  auto excludes_dead = [&](const PartitionPlan& plan) {
    if (static_cast<int>(plan.tokens_per_rank.size()) != world) {
      return false;
    }
    auto ranks_alive = [&](const std::vector<RingRef>& queue) {
      for (const RingRef& ring : queue) {
        for (int rank : plan.ranks(ring)) {
          if (rank < 0 || rank >= world || !topology.alive[rank]) {
            return false;
          }
        }
      }
      return true;
    };
    if (!ranks_alive(plan.inter_node) || !ranks_alive(plan.intra_node)) {
      return false;
    }
    for (const LocalSequence& seq : plan.local) {
      if (seq.length > 0 &&
          (seq.rank < 0 || seq.rank >= world || !topology.alive[seq.rank])) {
        return false;
      }
    }
    for (int rank = 0; rank < world; ++rank) {
      if (!topology.alive[rank] && plan.tokens_per_rank[rank] != 0) {
        return false;
      }
    }
    return true;
  };
  if (!excludes_dead(patched)) {
    result.failure = "patched plan assigns work to a dead rank";
    return result;
  }
  if (!excludes_dead(replan)) {
    result.failure = "replan assigns work to a dead rank";
    return result;
  }

  int64_t patched_max = 0;
  int64_t replan_max = 0;
  for (int rank = 0; rank < world; ++rank) {
    if (!topology.alive[rank]) {
      continue;
    }
    patched_max =
        std::max(patched_max, topology.EffectiveLoad(rank, patched.tokens_per_rank[rank]));
    replan_max =
        std::max(replan_max, topology.EffectiveLoad(rank, replan.tokens_per_rank[rank]));
  }
  result.max_load_ratio =
      replan_max > 0 ? static_cast<double>(patched_max) / static_cast<double>(replan_max) : 1.0;
  if (static_cast<double>(patched_max) > (1.0 + eps) * static_cast<double>(replan_max)) {
    result.failure = "patched max effective rank load exceeds the eps bound";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace zeppelin
