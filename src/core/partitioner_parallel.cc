// Parallel/sharded planner engine (see the header comment in partitioner.h).
//
// Layout of one Partition() call:
//
//   1. Key build + value radix sort (serial): sequences become packed
//      ((kLenMask - len) << 20 | id) keys; sorting the values directly gives
//      the length-descending, id-ascending order with zero gathers, and the
//      granularity of the lengths (trailing zero bits shared by every length)
//      narrows the digit range — quantized workloads sort in one pass.
//   2. Inter-node stage (serial): Alg. 1. The z2 chunking reuses the
//      LoadTracker (few, long sequences); the z01 packing runs through the
//      round-batched GreedyPacker and emits each sequence's key straight into
//      its node's list — the per-node lists ARE the shard handoff to stage 3.
//      The decision stream is sequential on purpose: greedy list scheduling
//      is P-complete, so an exact parallel z01 does not exist; batching, not
//      threading, is what makes this stage cheap.
//   3. Intra-node stage (parallel): Alg. 2 is independent per node — one pool
//      task per node, per-context scratch slabs, results into per-node
//      RingStores (node-local arena offsets). Static task ownership (node n
//      on context n % T) keeps slab reuse deterministic.
//   4. Merge (parallel over nodes): per-node results copy into the plan's
//      flat arrays — locals, ring headers (offset-shifted), and arena slices
//      (one memcpy per node) — at offsets computed from per-node counts, in
//      node order. Byte-identical to the serial engines' append order at any
//      thread count, with no per-ring allocation anywhere.
#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/core/partitioner.h"
#include "src/core/partitioner_internal.h"

namespace zeppelin {

using planner_internal::AdvanceZoneBoundary;
using planner_internal::EmitRing;
using planner_internal::ExpandChunkBase;
using planner_internal::ForEachFragment;
using planner_internal::FragmentZone1;
using planner_internal::InterNodeChunkCount;

namespace {

// Packed sequence key layout: high 43 bits (kLenMask - len), low 20 bits id.
// Ascending key order == (length descending, id ascending) — the zone order
// of Alg. 1 with the stable-sort tie-break.
constexpr int kIdxBits = 20;
constexpr uint64_t kIdxMask = (uint64_t{1} << kIdxBits) - 1;
constexpr uint64_t kLenMask = (uint64_t{1} << 43) - 1;

inline uint64_t PackKey(int64_t len, int id) {
  return ((kLenMask - static_cast<uint64_t>(len)) << kIdxBits) | static_cast<uint64_t>(id);
}
inline int64_t KeyLen(uint64_t key) { return static_cast<int64_t>(kLenMask - (key >> kIdxBits)); }
inline int KeyId(uint64_t key) { return static_cast<int>(key & kIdxMask); }

// First position in the sorted key array whose length drops below
// `threshold` — the zone boundary index. O(log n).
int KeyBoundary(const std::vector<uint64_t>& keys, int64_t threshold) {
  if (static_cast<uint64_t>(threshold) > kLenMask) {
    return 0;  // No representable length reaches the threshold.
  }
  const uint64_t limit = ((kLenMask - static_cast<uint64_t>(threshold)) << kIdxBits) | kIdxMask;
  return static_cast<int>(std::partition_point(keys.begin(), keys.end(),
                                               [limit](uint64_t k) { return k <= limit; }) -
                          keys.begin());
}

// Builds scratch->keys sorted ascending. Returns the batch's total tokens
// (folded into the same pass over seq_lens). LSD radix over only the bits
// that actually vary: bits below the common granularity and above
// bit_width(max_len) are constant across all keys and need no pass.
int64_t BuildSortedKeys(const Batch& batch, PlannerScratch* s) {
  const int n = batch.size();
  ZCHECK_LE(static_cast<uint64_t>(n), kIdxMask + 1) << "batch too large for packed keys";
  s->keys.resize(n);
  s->keys_tmp.resize(n);

  int64_t total = 0;
  int64_t max_len = 0;
  uint64_t or_acc = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t len = batch.seq_lens[i];
    total += len;
    max_len = std::max(max_len, len);
    or_acc |= static_cast<uint64_t>(len);
    s->keys[i] = PackKey(len, i);
  }
  // One range check for the whole batch: a negative length sets the high bits
  // of or_acc (two's complement), an oversized one exceeds the mask directly.
  ZCHECK_LE(or_acc, kLenMask) << "sequence length out of key range";

  const int lo = or_acc == 0 ? 0 : std::countr_zero(or_acc);
  const int hi = std::bit_width(static_cast<uint64_t>(max_len));
  for (int shift = lo; shift < hi;) {
    const int digit_bits = std::min(16, hi - shift);
    const uint64_t digit_mask = (uint64_t{1} << digit_bits) - 1;
    const int key_shift = kIdxBits + shift;
    s->key_count.assign(size_t{1} << digit_bits, 0);
    for (uint64_t key : s->keys) {
      ++s->key_count[(key >> key_shift) & digit_mask];
    }
    int running = 0;
    for (int& count : s->key_count) {
      const int c = count;
      count = running;
      running += c;
    }
    for (uint64_t key : s->keys) {
      s->keys_tmp[s->key_count[(key >> key_shift) & digit_mask]++] = key;
    }
    s->keys.swap(s->keys_tmp);
    shift += digit_bits;
  }
  return total;
}

}  // namespace

// --- Inter-node stage (Alg. 1), sharded engine --------------------------------

void SequencePartitioner::PartitionInterNodeSharded(const Batch& batch, PartitionPlan* plan,
                                                    PlannerScratch* s, ThreadPool* pool) const {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int64_t node_capacity = static_cast<int64_t>(p) * options_.token_capacity;
  const int n = batch.size();

  const int64_t total = BuildSortedKeys(batch, s);
  s->batch_total = total;
  ZCHECK_LE(total, static_cast<int64_t>(num_nodes) * node_capacity)
      << "batch does not fit the cluster at capacity L=" << options_.token_capacity;

  // Rank-list template per node (single-node rings memcpy it).
  s->node_ranks.resize(num_nodes);
  for (int node = 0; node < num_nodes; ++node) {
    s->node_ranks[node].resize(p);
    std::iota(s->node_ranks[node].begin(), s->node_ranks[node].end(), node * p);
  }

  int64_t s1 = node_capacity;  // Alg. 1 line 2.
  if (options_.max_inter_threshold > 0) {
    s1 = std::min(s1, options_.max_inter_threshold);
  }
  int boundary = KeyBoundary(s->keys, s1);
  // Running sum of the first `boundary` lengths; a restart only advances the
  // boundary, so the total decode work stays O(n) across all restarts.
  int64_t z2_total = 0;
  for (int i = 0; i < boundary; ++i) {
    z2_total += KeyLen(s->keys[i]);
  }
  s->placed_node.resize(n);

  auto record_chunk = [&](int node, int64_t chunk) {
    planner_internal::RecordChunkAggregate(node, chunk, p, &s->node_chunk_whole,
                                           &s->node_chunk_rem);
  };
  auto emit_single_node = [&](int id, int64_t len, int node) {
    int* out = EmitRing(&plan->intra_node, &s->intra_ring_count, &plan->rank_arena,
                        &s->arena_count, id, len, Zone::kIntraNode, p);
    std::memcpy(out, s->node_ranks[node].data(), sizeof(int) * p);
    record_chunk(node, len);
  };

  int restarts = 0;
  // Incremental-restart shortcut, mirroring the serial fast path: when the
  // aborted pass was pure z01 packing (empty z2) and every promoted sequence
  // still chunks to k == 1 under the new s_avg, a full replay would place
  // those very sequences on the very same nodes — so the restart only
  // re-labels them (shard lists -> single-node z2 rings, read back from
  // placed_node) and resumes where the aborted pass stopped.
  int continue_from = -1;
  for (;;) {
    int z2_start = 0;
    if (continue_from >= 0) {
      // Re-label [0, continue_from): ring order matches a replay (it is the
      // key order), chunk aggregates rebuild from zero (z2 was empty), and
      // the packer's loads carry over exactly. The aborted pass emitted no
      // rings, so header slot i and arena slice [i*p, (i+1)*p) are fully
      // determined by the sequence index alone — the pool writes them into
      // pre-reserved plan storage with no synchronization, and the plan
      // bytes are thread-count-invariant; the chunk aggregates accumulate
      // through per-context partials merged with order-free integer adds.
      const size_t relabel_rings = static_cast<size_t>(continue_from);
      if (plan->intra_node.size() < relabel_rings) {
        plan->intra_node.resize(relabel_rings);
      }
      if (plan->rank_arena.size() < relabel_rings * p) {
        plan->rank_arena.resize(relabel_rings * p);
      }
      const int contexts = pool->num_contexts();
      for (int c = 0; c < contexts; ++c) {
        s->intra_slabs[c].relabel_whole.assign(num_nodes, 0);
        s->intra_slabs[c].relabel_rem.assign(static_cast<size_t>(num_nodes) * p, 0);
      }
      pool->ParallelFor(continue_from, [&](int64_t begin, int64_t end, int context) {
        IntraWorkerSlab& slab = s->intra_slabs[context];
        for (int64_t i = begin; i < end; ++i) {
          const uint64_t key = s->keys[i];
          const int node = s->placed_node[i];
          const int64_t len = KeyLen(key);
          RingRef& ring = plan->intra_node[i];
          ring.seq_id = KeyId(key);
          ring.length = len;
          ring.zone = Zone::kIntraNode;
          ring.rank_offset = static_cast<uint32_t>(i) * static_cast<uint32_t>(p);
          ring.rank_count = static_cast<uint32_t>(p);
          std::memcpy(plan->rank_arena.data() + i * p, s->node_ranks[node].data(),
                      sizeof(int) * p);
          planner_internal::RecordChunkAggregate(node, len, p, &slab.relabel_whole,
                                                 &slab.relabel_rem);
        }
      });
      for (int c = 0; c < contexts; ++c) {
        const IntraWorkerSlab& slab = s->intra_slabs[c];
        for (int node = 0; node < num_nodes; ++node) {
          s->node_chunk_whole[node] += slab.relabel_whole[node];
        }
        for (size_t r = 0; r < slab.relabel_rem.size(); ++r) {
          s->node_chunk_rem[r] += slab.relabel_rem[r];
        }
      }
      s->intra_ring_count = relabel_rings;
      s->arena_count = relabel_rings * p;
      s->node_packer.Loads(&s->node_loads_tmp);
      s->node_loads.Assign(s->node_loads_tmp);
      z2_start = continue_from;
      continue_from = -1;
    } else {
      s->node_chunk_whole.assign(num_nodes, 0);
      s->node_chunk_rem.assign(static_cast<size_t>(num_nodes) * p, 0);
      // Rewind all ring emission (headers + arena slots are recycled).
      s->inter_ring_count = 0;
      s->intra_ring_count = 0;
      s->arena_count = 0;
      s->node_loads.Reset(num_nodes);
    }

    // Chunk placement for z2 (lines 7-10), heap-based exactly like the
    // serial fast path: z2 holds few, long sequences.
    const double s_avg = static_cast<double>(z2_total) / num_nodes;
    for (int i = z2_start; i < boundary; ++i) {
      const uint64_t key = s->keys[i];
      const int id = KeyId(key);
      const int64_t len = KeyLen(key);
      const int k = InterNodeChunkCount(len, s_avg, num_nodes);

      if (k == 1) {
        emit_single_node(id, len, s->node_loads.add_min(len));
        continue;
      }

      s->node_loads.k_least(k, &s->least);
      std::sort(s->least.begin(), s->least.end());  // Keep ring order node-ascending.
      int* out = EmitRing(&plan->inter_node, &s->inter_ring_count, &plan->rank_arena,
                          &s->arena_count, id, len, Zone::kInterNode, k * p);
      for (int node : s->least) {
        const int rank_base = node * p;
        for (int local = 0; local < p; ++local) {
          *out++ = rank_base + local;
        }
      }
      int64_t prev_edge = 0;
      for (int c = 0; c < k; ++c) {
        const int64_t edge = len * (c + 1) / k;
        const int64_t chunk = edge - prev_edge;
        prev_edge = edge;
        record_chunk(s->least[c], chunk);
        s->node_loads.add(s->least[c], chunk);
      }
    }

    // Round-batched z01 packing (lines 11-19): bulk-committed placements,
    // sharded straight into per-node key lists.
    s->node_loads_tmp.resize(num_nodes);
    for (int node = 0; node < num_nodes; ++node) {
      s->node_loads_tmp[node] = s->node_loads.load(node);
    }
    s->node_packer.Assign(s->node_loads_tmp);
    const uint64_t* z01 = s->keys.data() + boundary;
    const int count = n - boundary;
    // Packing writes only the placement stream (4 bytes per sequence); the
    // per-node shard lists are built by one scatter pass after the pass
    // succeeds, so an overflow-doomed pass never pays for them.
    int* placed = s->placed_node.data() + boundary;
    const int packed = s->node_packer.Pack(
        count, node_capacity, [z01](int i) { return KeyLen(z01[i]); },
        [&](int i, int node, int64_t /*len*/) { placed[i] = node; });
    if (packed == count) {
      for (int node = 0; node < num_nodes; ++node) {
        s->node_items[node].clear();
      }
      for (int i = 0; i < count; ++i) {
        s->node_items[placed[i]].push_back(z01[i]);
      }
      break;
    }
    // Overflow: shrink s1 to max(z01) = the overflowing length and promote
    // every sequence of length >= it into z2 — a contiguous block, so the
    // boundary just advances (no re-sort, no zone re-split).
    const int nb = AdvanceZoneBoundary(
        n, boundary + packed, [&](int j) { return KeyLen(s->keys[j]); }, &s1);
    for (int i = boundary; i < nb; ++i) {
      z2_total += KeyLen(s->keys[i]);
    }
    // Incremental-continuation test (same as the serial fast path): the
    // aborted pass must have been pure z01 packing, and under the new s_avg
    // even the longest promoted sequence must chunk to a single node. Then
    // the replay is a no-op re-labelling.
    const double next_avg = static_cast<double>(z2_total) / num_nodes;
    if (boundary == 0 &&
        static_cast<double>(KeyLen(s->keys[0])) <= std::max(next_avg, 1.0)) {
      continue_from = packed;
    }
    boundary = nb;
    // The boundary strictly advances on every restart, so more than n
    // restarts means a broken invariant; fall back to the reference greedy
    // once rather than looping.
    if (++restarts > n) {
      ZCHECK(options_.naive_fallback) << "sharded restart chain exceeded its bound";
      // The naive path rewinds the emission cursors itself and re-emits
      // every ring into the recycled plan storage.
      PartitionInterNodeNaive(batch, plan, s);
      // Rebuild the shard lists and chunk aggregates the intra stage reads.
      s->node_chunk_whole.assign(num_nodes, 0);
      s->node_chunk_rem.assign(static_cast<size_t>(num_nodes) * p, 0);
      for (int node = 0; node < num_nodes; ++node) {
        s->node_items[node].clear();
        for (const auto& [seq_id, chunk] : s->assignments[node].inter_chunks) {
          record_chunk(node, chunk);
        }
        for (int id : s->assignments[node].sequences) {
          s->node_items[node].push_back(PackKey(batch.seq_lens[id], id));
        }
      }
      return;
    }
  }
  plan->threshold_s1 = s1;
}

// --- Intra-node stage (Alg. 2), sharded engine --------------------------------

void SequencePartitioner::PartitionIntraNodeSharded(int node, int context,
                                                    PlannerScratch* s) const {
  const int p = cluster_.gpus_per_node;
  const int rank_base = node * p;
  const int64_t capacity = options_.token_capacity;
  IntraWorkerSlab& slab = s->intra_slabs[context];
  NodeIntraResult& res = s->intra_results[node];
  const std::vector<uint64_t>& items = s->node_items[node];
  const int n = static_cast<int>(items.size());

  // Inter-node chunk spreading (lines 4-6) from the aggregates the inter
  // stage recorded; zone-independent, so hoisted out of the restart loop.
  ExpandChunkBase(s->node_chunk_whole, s->node_chunk_rem, node, p, &slab.chunk_base);

  int64_t s0 = capacity;  // Alg. 2 line 1.
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  int boundary = KeyBoundary(items, s0);

  int restarts = 0;
  for (;;) {
    res.rings.Reset();
    res.locals.clear();
    res.locals_z1.clear();
    slab.loads = slab.chunk_base;

    // Quadratic-balanced fragmentation of intra-node sequences (lines 8-12),
    // via the shared pass (cursor progression and fragment counts are
    // equivalence-critical across engines).
    FragmentZone1(
        boundary, p, [&](int i) { return KeyLen(items[i]); },
        [&](int i, int64_t len, int fragments, int cursor) {
          int* out = res.rings.Append(KeyId(items[i]), len, Zone::kIntraNode, fragments);
          ForEachFragment(len, fragments, cursor, p, [&](int f, int device, int64_t share) {
            out[f] = rank_base + device;
            slab.loads[device] += share;
          });
        },
        [&](int i, int64_t len, int device) {
          // A single-fragment "ring" is a local kernel (lands after this
          // node's z0 locals, like the reference path's ring conversion).
          res.locals_z1.push_back({KeyId(items[i]), len, rank_base + device});
          slab.loads[device] += len;
        });

    // Round-batched z0 packing onto least-loaded devices (lines 13-21).
    slab.packer.Assign(slab.loads);
    const uint64_t* z0 = items.data() + boundary;
    const int count = n - boundary;
    const int packed = slab.packer.Pack(
        count, capacity, [z0](int i) { return KeyLen(z0[i]); },
        [&](int i, int device, int64_t len) {
          res.locals.push_back({KeyId(z0[i]), len, rank_base + device});
        });
    if (packed == count) {
      break;
    }
    // Shrink s0 to max(z0) = the overflowing length; promoted sequences form
    // a contiguous block, so the boundary just advances.
    boundary = AdvanceZoneBoundary(
        n, boundary + packed, [&](int j) { return KeyLen(items[j]); }, &s0);
    // The boundary strictly advances on every restart, so the chain is
    // bounded by the node's sequence count.
    ZCHECK_LE(++restarts, n) << "intra-node restart chain exceeded its bound";
  }

  slab.packer.Loads(&res.device_loads);
  res.threshold_s0 = s0;
}

// --- Driver -------------------------------------------------------------------

void SequencePartitioner::PartitionParallel(const Batch& batch, PlannerScratch* scratch,
                                            PartitionPlan* plan, ThreadPool* pool) const {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int contexts = pool->num_contexts();

  if (static_cast<int>(scratch->intra_slabs.size()) < contexts) {
    scratch->intra_slabs.resize(contexts);
  }
  scratch->node_packer.ResetOps();
  for (IntraWorkerSlab& slab : scratch->intra_slabs) {
    slab.packer.ResetOps();
  }
  scratch->node_items.resize(num_nodes);
  scratch->intra_results.resize(num_nodes);

  PartitionInterNodeSharded(batch, plan, scratch, pool);

  // Alg. 2: one task per node; task `node` always runs on context
  // node % contexts, so slab reuse and results are thread-count-invariant.
  pool->RunTasks(num_nodes,
                 [&](int node, int context) { PartitionIntraNodeSharded(node, context, scratch); });

  // Merge per-node results in node order — identical bytes to the serial
  // engines' per-node append order. Locals, ring headers, and arena slices
  // all land at offsets precomputed from per-node counts, so the copy itself
  // fans out over the pool with no synchronization.
  scratch->local_offsets.resize(num_nodes + 1);
  scratch->ring_offsets.resize(num_nodes + 1);
  scratch->rank_offsets.resize(num_nodes + 1);
  size_t total_locals = plan->local.size();
  size_t ring_cursor = scratch->intra_ring_count;
  size_t rank_cursor = scratch->arena_count;
  for (int node = 0; node < num_nodes; ++node) {
    const NodeIntraResult& res = scratch->intra_results[node];
    scratch->local_offsets[node] = total_locals;
    scratch->ring_offsets[node] = ring_cursor;
    scratch->rank_offsets[node] = rank_cursor;
    total_locals += res.locals.size() + res.locals_z1.size();
    ring_cursor += res.rings.ref_count;
    rank_cursor += res.rings.rank_count;
  }
  scratch->local_offsets[num_nodes] = total_locals;
  scratch->ring_offsets[num_nodes] = ring_cursor;
  scratch->rank_offsets[num_nodes] = rank_cursor;
  plan->local.resize(total_locals);
  if (plan->intra_node.size() < ring_cursor) {
    plan->intra_node.resize(ring_cursor);
  }
  if (plan->rank_arena.size() < rank_cursor) {
    plan->rank_arena.resize(rank_cursor);
  }
  pool->RunTasks(num_nodes, [&](int node, int /*context*/) {
    const NodeIntraResult& res = scratch->intra_results[node];
    LocalSequence* dst = plan->local.data() + scratch->local_offsets[node];
    dst = std::copy(res.locals.begin(), res.locals.end(), dst);
    std::copy(res.locals_z1.begin(), res.locals_z1.end(), dst);

    // Headers shift from node-local to plan-arena offsets; ranks are one
    // contiguous slice copy.
    RingRef* headers = plan->intra_node.data() + scratch->ring_offsets[node];
    const uint32_t shift = static_cast<uint32_t>(scratch->rank_offsets[node]);
    for (size_t i = 0; i < res.rings.ref_count; ++i) {
      RingRef ring = res.rings.refs[i];
      ring.rank_offset += shift;
      headers[i] = ring;
    }
    if (res.rings.rank_count > 0) {
      std::memcpy(plan->rank_arena.data() + scratch->rank_offsets[node], res.rings.arena.data(),
                  sizeof(int) * res.rings.rank_count);
    }
  });
  scratch->intra_ring_count = ring_cursor;
  scratch->arena_count = rank_cursor;

  for (int node = 0; node < num_nodes; ++node) {
    const NodeIntraResult& res = scratch->intra_results[node];
    for (int d = 0; d < p; ++d) {
      plan->tokens_per_rank[node * p + d] += res.device_loads[d];
    }
    plan->threshold_s0[node] = res.threshold_s0;
  }

  plan->inter_node.resize(scratch->inter_ring_count);
  plan->intra_node.resize(scratch->intra_ring_count);
  plan->rank_arena.resize(scratch->arena_count);
}

}  // namespace zeppelin
