#include "src/core/routing.h"

#include <algorithm>

#include "src/comm/primitives.h"
#include "src/common/check.h"

namespace zeppelin {

RoutingLayer::RoutingLayer(const FabricResources& fabric, RoutingOptions options)
    : fabric_(&fabric), options_(options) {}

namespace {

// One GPU per distinct NIC on `node`, starting with (and always including)
// `anchor_gpu`'s NIC slot so the anchor's own slice avoids a dispatch hop.
std::vector<int> ProxiesCoveringNics(const ClusterSpec& spec, int node, int anchor_gpu,
                                     int max_count) {
  std::vector<int> proxies;
  std::vector<bool> nic_used(spec.nics_per_node, false);
  auto take = [&](int rank) {
    const int nic = spec.NicOf(rank);
    if (!nic_used[nic]) {
      nic_used[nic] = true;
      proxies.push_back(rank);
    }
  };
  if (spec.NodeOf(anchor_gpu) == node) {
    take(anchor_gpu);
  }
  for (int local = 0; local < spec.gpus_per_node; ++local) {
    take(spec.GlobalRank(node, local));
    if (max_count > 0 && static_cast<int>(proxies.size()) >= max_count) {
      break;
    }
  }
  if (max_count > 0 && static_cast<int>(proxies.size()) > max_count) {
    proxies.resize(max_count);
  }
  return proxies;
}

}  // namespace

std::vector<int> RoutingLayer::SendProxies(int src_gpu, int dst_node) const {
  const ClusterSpec& spec = fabric_->cluster();
  (void)dst_node;
  return ProxiesCoveringNics(spec, spec.NodeOf(src_gpu), src_gpu, options_.max_proxies);
}

std::vector<int> RoutingLayer::RecvProxies(int dst_gpu, int src_node) const {
  const ClusterSpec& spec = fabric_->cluster();
  (void)src_node;
  return ProxiesCoveringNics(spec, spec.NodeOf(dst_gpu), dst_gpu, options_.max_proxies);
}

TaskId RoutingLayer::EmitTransfer(TaskGraph& graph, int src_gpu, int dst_gpu, int64_t bytes,
                                  std::vector<TaskId> deps, const std::string& label) const {
  const ClusterSpec& spec = fabric_->cluster();
  const int src_node = spec.NodeOf(src_gpu);
  const int dst_node = spec.NodeOf(dst_gpu);

  if (!options_.enabled || src_node == dst_node || bytes == 0) {
    return AddP2PAuto(graph, *fabric_, src_gpu, dst_gpu, bytes, std::move(deps), label);
  }

  std::vector<int> send_proxies = SendProxies(src_gpu, dst_node);
  std::vector<int> recv_proxies = RecvProxies(dst_gpu, src_node);
  // Paper's pairing rule: one-to-one matching of senders and receivers.
  const int x = static_cast<int>(std::min(send_proxies.size(), recv_proxies.size()));
  ZCHECK_GT(x, 0);
  if (x == 1) {
    return AddP2PAuto(graph, *fabric_, src_gpu, dst_gpu, bytes, std::move(deps), label);
  }
  send_proxies.resize(x);
  recv_proxies.resize(x);

  std::vector<TaskId> combines;
  combines.reserve(x);
  for (int i = 0; i < x; ++i) {
    const int64_t slice = bytes * (i + 1) / x - bytes * i / x;
    if (slice == 0) {
      continue;
    }
    const int sp = send_proxies[i];
    const int rp = recv_proxies[i];

    // Step 1: dispatch src -> send proxy (skipped when src is its own proxy).
    std::vector<TaskId> transfer_deps = deps;
    if (sp != src_gpu) {
      const TaskId dispatch =
          AddP2P(graph, *fabric_, src_gpu, sp, slice, TaskCategory::kDispatchComm, deps,
                 label + ".dispatch." + std::to_string(i));
      transfer_deps = {dispatch};
    }

    // Step 2: inter-node transfer through the proxy pair's own NICs.
    const TaskId transfer = AddP2P(graph, *fabric_, sp, rp, slice, TaskCategory::kInterComm,
                                   std::move(transfer_deps),
                                   label + ".nic." + std::to_string(i), spec.NicOf(sp),
                                   spec.NicOf(rp));

    // Step 3: combine recv proxy -> dst (skipped when dst is its own proxy).
    if (rp != dst_gpu) {
      combines.push_back(AddP2P(graph, *fabric_, rp, dst_gpu, slice,
                                TaskCategory::kCombineComm, {transfer},
                                label + ".combine." + std::to_string(i)));
    } else {
      combines.push_back(transfer);
    }
  }
  return graph.AddBarrier(std::move(combines), label + ".routed_done");
}

double RoutingLayer::RoutedCostUs(const CostModel& cost_model, int64_t bytes, int x1, int x2) {
  ZCHECK_GT(x1, 0);
  ZCHECK_GT(x2, 0);
  const double n = static_cast<double>(bytes);
  const double dispatch = cost_model.b_intra() * n * (x1 - 1) / x1;
  const double inter = cost_model.b_inter() * std::max(n / x1, n / x2);
  const double combine = cost_model.b_intra() * n * (x2 - 1) / x2;
  return dispatch + inter + combine;
}

double RoutingLayer::DirectCostUs(const CostModel& cost_model, int64_t bytes) {
  return cost_model.b_inter() * static_cast<double>(bytes);
}

}  // namespace zeppelin
