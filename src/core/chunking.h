// Causal-mask-balanced sequence chunking for ring attention (paper §3.2).
//
// With a lower-triangular mask, contiguous equal splits give rank 0 almost no
// work and the last rank nearly double the average. The paper's fix (also
// used by Striped/WLB-LLM): divide the sequence into 2G equal chunks and give
// rank i chunks i and 2G-1-i — every rank then owns one "early" (cheap) and
// one "late" (expensive) chunk, and per-round work is balanced up to one
// chunk's triangle.
#ifndef SRC_CORE_CHUNKING_H_
#define SRC_CORE_CHUNKING_H_

#include <cstdint>
#include <vector>

#include "src/model/cost_model.h"

namespace zeppelin {

struct ChunkPair {
  // Token ranges [lo_begin, lo_end) and [hi_begin, hi_end) within the
  // sequence; the "lo" chunk is chunk i, the "hi" chunk is chunk 2G-1-i.
  int64_t lo_begin = 0;
  int64_t lo_end = 0;
  int64_t hi_begin = 0;
  int64_t hi_end = 0;

  int64_t tokens() const { return (lo_end - lo_begin) + (hi_end - hi_begin); }
};

// Chunk pair owned by each of the G ring positions for a sequence of length
// `s`. Handles non-divisible lengths by spreading remainders over the first
// chunks (every chunk size differs by at most one "granule" of 1 token).
std::vector<ChunkPair> BalancedChunkAssignment(int64_t s, int group_size);

// Naive contiguous split (rank i owns [i*s/G, (i+1)*s/G)) — the comparison
// point for design ablation D3.
std::vector<ChunkPair> ContiguousChunkAssignment(int64_t s, int group_size);

// Allocation-hoisted forms for per-ring hot paths: `out` is resized, not
// reallocated in steady state, and the boundary math is done in closed form
// with no intermediate edge array.
void BalancedChunkAssignmentInto(int64_t s, int group_size, std::vector<ChunkPair>* out);
void ContiguousChunkAssignmentInto(int64_t s, int group_size, std::vector<ChunkPair>* out);

// Forward FLOPs rank `k` executes in ring round `r` for a sequence of length
// `s` split across `group_size` ranks with the given assignment: its query
// chunks against the KV chunks originally owned by rank (k - r) mod G,
// under the causal mask.
double RingRoundFlops(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                      int64_t /*s*/, int k, int r);

// Total FLOPs rank `k` executes across all rounds (its full share).
double RingTotalFlops(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                      int64_t s, int k);

// Load-imbalance of an assignment: max over ranks of total FLOPs divided by
// the mean (1.0 = perfectly balanced).
double AssignmentImbalance(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                           int64_t s);

// --- Striped assignment (Striped Attention, Brandon et al. 2023) ------------
// Rank i owns tokens {i, i+G, i+2G, ...}. Also causally balanced, at a finer
// granularity than the paired-chunk scheme; exposed as an alternative the
// engine can use and as a comparison point in the ablation benches.

// Number of tokens rank `k` owns under striping.
int64_t StripedTokens(int64_t s, int group_size, int k);

// Forward FLOPs rank `k` executes in ring round `r` under striping (closed
// form; its query stripe against the KV stripe originally owned by rank
// (k - r) mod G, causal mask applied token-wise).
double StripedRoundFlops(const CostModel& cost_model, int64_t s, int group_size, int k, int r);

// Total FLOPs for rank `k` across all rounds under striping.
double StripedTotalFlops(const CostModel& cost_model, int64_t s, int group_size, int k);

// Imbalance metric for striping (compare with AssignmentImbalance).
double StripedImbalance(const CostModel& cost_model, int64_t s, int group_size);

// --- Scheme dispatch ----------------------------------------------------------
enum class ChunkScheme : uint8_t {
  kBalancedPairs = 0,  // Paper's 2G chunk-pair scheme (§3.2).
  kContiguous,         // Naive equal split (ablation D3).
  kStriped,            // Token-interleaved stripes.
};

const char* ChunkSchemeName(ChunkScheme scheme);

// Uniform accessors over the three schemes.
double SchemeRoundFlops(const CostModel& cost_model, ChunkScheme scheme, int64_t s,
                        int group_size, int k, int r);
int64_t SchemeTokens(ChunkScheme scheme, int64_t s, int group_size, int k);
double SchemeImbalance(const CostModel& cost_model, ChunkScheme scheme, int64_t s,
                       int group_size);

}  // namespace zeppelin

#endif  // SRC_CORE_CHUNKING_H_
