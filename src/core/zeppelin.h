// ZeppelinStrategy: the paper's system (§3), assembled from the four core
// components — sequence partitioner, attention engine, communication routing
// layer, and remapping layer. Every component can be toggled independently,
// which is how the ablation study (Fig. 11) is reproduced.
#ifndef SRC_CORE_ZEPPELIN_H_
#define SRC_CORE_ZEPPELIN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/attention_engine.h"
#include "src/core/delta_planner.h"
#include "src/core/partitioner.h"
#include "src/core/remapping.h"
#include "src/core/routing.h"
#include "src/core/strategy.h"
#include "src/core/zones.h"

namespace zeppelin {

struct ZeppelinOptions {
  // Token capacity L per device; 0 derives the tight bound
  // ceil(total_tokens / world_size) from each batch (the paper's experiments
  // pin 4k tokens per GPU the same way).
  int64_t token_capacity = 0;

  RoutingOptions routing;        // §3.3; disable for the Fig. 11 "w/o routing" bar.
  RemappingOptions remapping;    // §3.4; disable for "w/o remap".
  AttentionEngineOptions engine; // §3.2; chunking / queue-order ablations.

  // Disables hierarchical partitioning: all sequences are forced into a
  // single global inter-node ring (used for the "routing only" ablation,
  // which applies routing to the TE CP execution pattern).
  bool hierarchical_partitioning = true;

  // Extension (design ablation D6): initialize the partitioner's zone
  // thresholds from the Fig. 5 overlap crossovers instead of raw capacity,
  // so sequences whose communication cannot hide behind compute stay in
  // smaller rings even when memory would allow bigger ones.
  bool zone_aware_thresholds = false;

  // Selects the O((S + P) log P) heap-based planner fast path (bit-identical
  // plans); false forces the reference linear-scan greedy. Exposed so the
  // planner-scaling bench can measure old-vs-new on the same code base.
  bool planner_fast_path = true;

  // Execution contexts for the parallel/sharded planner engine (including
  // the calling thread): 1 runs the sharded engine inline (the default —
  // typically 2-3x the serial fast path at bench scale, though
  // materialization-bound points can tie it), N > 1 adds N-1 pool workers
  // for the per-node intra stage and merges, and 0 opts out, forcing the
  // PR-1 serial fast path (the bench baseline). Plans are bit-identical at
  // every setting.
  int num_planner_threads = 1;

  // Streaming (PlanDelta) fallback knob: the delta planner re-plans from
  // scratch when the churn fraction exceeds this, or when the patched plan's
  // token imbalance drifts more than this above the last full re-plan's
  // (DeltaPlannerOptions::replan_threshold; see docs/DELTA_PLANS.md).
  double delta_replan_threshold = 0.05;
};

class ZeppelinStrategy : public Strategy {
 public:
  explicit ZeppelinStrategy(ZeppelinOptions options = {});

  // Strategy name with the active ablation toggles appended (Fig. 11 bars).
  std::string name() const override;
  // Runs the per-iteration planning pipeline: capacity derivation ->
  // partitioner engine (per options) -> remapping solve. Reuses the
  // partitioner, scratch, and pool across calls (steady-state allocation-free).
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  // Streaming form: patches the previous plan through the delta-planning
  // subsystem (src/core/delta_planner.h) instead of re-partitioning all S
  // sequences, falling back to a full re-plan per the delta_replan_threshold
  // policy. The first call (or any call after Plan(), which invalidates the
  // incremental state) establishes the base plan with a full partition. The
  // token capacity is pinned at the base plan and auto-raised only when the
  // batch outgrows it. Requires hierarchical partitioning + the planner fast
  // path; otherwise falls back to Plan().
  void PlanDelta(const Batch& batch, const BatchDelta& delta, const CostModel& cost_model,
                 const FabricResources& fabric) override;
  // Emits one transformer layer for the planned batch into `graph`:
  // attention queues + remap + linear stage (mirrored in backward). Plan()
  // must have run first.
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  // Post-remap token layout the linear modules see (balanced if remapping on).
  std::vector<int64_t> LinearTokensPerRank() const override;

  // Planning artefacts (for tests, benches, and the Table 3 case study).
  // After PlanDelta() this is the delta planner's patched plan; after Plan()
  // it is the full-partition plan.
  const PartitionPlan& partition_plan() const { return *current_plan_; }
  const RemapSolution& remap_solution() const { return remap_solution_; }
  // Wall time of the sequence-partitioning step in the last Plan()/
  // PlanDelta() call — for PlanDelta, the patch (or fallback re-plan) time.
  double partition_time_us() const { return partition_time_us_; }
  // Delta-planning telemetry (valid after the first PlanDelta() call).
  const DeltaStats* delta_stats() const { return delta_ ? &delta_->stats() : nullptr; }
  DeltaOutcome last_delta_outcome() const { return last_delta_outcome_; }

 private:
  // Per-device token capacity L for `batch` (explicit option, or the tight
  // average + 25% headroom capped by the memory model).
  int64_t DeriveCapacity(const Batch& batch, const CostModel& cost_model,
                         const ClusterSpec& spec) const;
  // Zone boundaries for the zone-aware-thresholds extension, cached across
  // Plan() calls and recomputed only when the cost model or cluster changes
  // (the Fig. 5 crossover scan is ~10^4 cost-model probes — pure overhead
  // when repeated on an unchanged cluster every iteration).
  const ZoneBoundaries& CachedZones(const CostModel& cost_model, const ClusterSpec& spec);
  ThreadPool* PlannerPool();
  // Shared tail of Plan()/PlanDelta(): routing/engine/remapping (re)build,
  // remap solve on the current plan, and the linear-stage token layout.
  void FinishPlanning(const CostModel& cost_model, const FabricResources& fabric);

  ZeppelinOptions options_;
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;

  PartitionPlan plan_;
  const PartitionPlan* current_plan_ = &plan_;
  RemapSolution remap_solution_;
  std::vector<int64_t> linear_tokens_;
  double partition_time_us_ = 0;

  // Reused across Plan() calls so steady-state planning stays free of
  // intermediate allocations (the partitioner is rebuilt only when the
  // fabric changes; options are refreshed per batch).
  std::optional<SequencePartitioner> partitioner_;
  PlannerScratch planner_scratch_;
  RemapScratch remap_scratch_;
  // Lazily built when num_planner_threads >= 1; rebuilt if the count changes.
  std::optional<ThreadPool> planner_pool_;

  // Streaming state (PlanDelta): rebuilt when the cluster changes; holds the
  // patched plan and the persistent planner state between iterations.
  std::optional<DeltaPlanner> delta_;
  DeltaOutcome last_delta_outcome_ = DeltaOutcome::kRebasedNoBase;

  // Zone-boundary cache (zone_aware_thresholds): invalidated only when the
  // cost model or cluster actually changes.
  std::optional<ZoneBoundaries> zone_cache_;
  const CostModel* zone_cache_model_ = nullptr;
  std::string zone_cache_model_name_;
  ClusterSpec zone_cache_cluster_;

  std::optional<RoutingLayer> routing_;
  std::optional<AttentionEngine> engine_;
  std::optional<RemappingLayer> remapping_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_ZEPPELIN_H_
