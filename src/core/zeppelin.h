// ZeppelinStrategy: the paper's system (§3), assembled from the four core
// components — sequence partitioner, attention engine, communication routing
// layer, and remapping layer. Every component can be toggled independently,
// which is how the ablation study (Fig. 11) is reproduced.
//
// Since the PlannerService redesign the strategy is a *thin adapter* over the
// service (src/core/plan_service.h): Plan() issues a stateless request,
// PlanDelta() a session request on `ZeppelinOptions::stream_id`, and the
// partition plan is held as an immutable std::shared_ptr<const PartitionPlan>
// handle — the strategy keeps no mutable planning state of its own beyond
// the routing/engine/remapping layers it emits through. Several strategies
// can share one service (and thus one planning pool and session table) via
// ZeppelinOptions::service.
#ifndef SRC_CORE_ZEPPELIN_H_
#define SRC_CORE_ZEPPELIN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/attention_engine.h"
#include "src/core/delta_planner.h"
#include "src/core/partitioner.h"
#include "src/core/plan_service.h"
#include "src/core/remapping.h"
#include "src/core/routing.h"
#include "src/core/strategy.h"
#include "src/core/zones.h"

namespace zeppelin {

struct ZeppelinOptions {
  // Token capacity L per device; 0 derives the tight bound
  // ceil(total_tokens / world_size) from each batch (the paper's experiments
  // pin 4k tokens per GPU the same way).
  int64_t token_capacity = 0;

  RoutingOptions routing;        // §3.3; disable for the Fig. 11 "w/o routing" bar.
  RemappingOptions remapping;    // §3.4; disable for "w/o remap".
  AttentionEngineOptions engine; // §3.2; chunking / queue-order ablations.

  // Disables hierarchical partitioning: all sequences are forced into a
  // single global inter-node ring (used for the "routing only" ablation,
  // which applies routing to the TE CP execution pattern).
  bool hierarchical_partitioning = true;

  // Extension (design ablation D6): initialize the partitioner's zone
  // thresholds from the Fig. 5 overlap crossovers instead of raw capacity,
  // so sequences whose communication cannot hide behind compute stay in
  // smaller rings even when memory would allow bigger ones.
  bool zone_aware_thresholds = false;

  // Selects the O((S + P) log P) heap-based planner fast path (bit-identical
  // plans); false forces the reference linear-scan greedy. Exposed so the
  // planner-scaling bench can measure old-vs-new on the same code base.
  bool planner_fast_path = true;

  // Execution contexts for the parallel/sharded planner engine (including
  // the calling thread): 1 runs the sharded engine inline (the default —
  // typically 2-3x the serial fast path at bench scale, though
  // materialization-bound points can tie it), N > 1 adds N-1 pool workers
  // for the per-node intra stage and merges, and 0 opts out, forcing the
  // PR-1 serial fast path (the bench baseline). Plans are bit-identical at
  // every setting. Applies to the strategy's private service only; a shared
  // `service` brings its own pool.
  int num_planner_threads = 1;

  // Streaming (PlanDelta) fallback knob: the delta planner re-plans from
  // scratch when the churn fraction exceeds this, or when the patched plan's
  // token imbalance drifts more than this above the last full re-plan's
  // (DeltaPlannerOptions::replan_threshold; see docs/DELTA_PLANS.md).
  double delta_replan_threshold = 0.05;

  // Session key for PlanDelta() on the planner service. Strategies sharing a
  // service must use distinct stream ids or they will share (and fight over)
  // one delta session.
  std::string stream_id = "default";

  // Planner service to plan through. Null = the strategy lazily creates a
  // private service sized by `num_planner_threads`. Supplying a shared
  // service lets many strategies/streams plan through one pool and one
  // session table (see docs/SERVICE_API.md).
  std::shared_ptr<PlannerService> service;

  // Deterministic fault injection (docs/ELASTIC.md). The strategy never runs
  // the injector itself — drivers (zeppelin_cli's stream mode) construct one
  // FaultStream per strategy from these knobs and feed the resulting
  // TopologyDeltas through PlanDelta(). Inline spec form
  // `+faults=RATE[@SEED]`; a spec value wins over the driver's flags.
  double fault_rate = 0.0;   // expected rank kills per iteration / world.
  uint64_t fault_seed = 0;   // 0 = derive from the driver's workload seed.
};

class ZeppelinStrategy : public Strategy {
 public:
  explicit ZeppelinStrategy(ZeppelinOptions options = {});

  // Strategy name with the active ablation toggles appended (Fig. 11 bars).
  std::string name() const override;
  // Runs the per-iteration planning pipeline: stateless PlannerService
  // request (capacity derivation -> partitioner engine per options) ->
  // remapping solve. Invalidates the strategy's delta session, so the next
  // PlanDelta() re-establishes its base with a fresh full partition.
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  // Streaming form: a session request on `options.stream_id` — the service
  // patches the previous plan through the delta-planning subsystem instead
  // of re-partitioning all S sequences, falling back to a full re-plan per
  // the delta_replan_threshold policy. The first call (or any call after
  // Plan()) establishes the base plan with a full partition; the token
  // capacity is pinned at the base plan and auto-raised only when the batch
  // outgrows it. Requires hierarchical partitioning + the planner fast path;
  // otherwise falls back to Plan(). `topology` (null = unchanged fabric)
  // carries rank kills/restores/slowdowns: the session migrates work off
  // dead ranks and rebalances by effective load, falling back to a full
  // elastic re-plan per the migration-budget policy (docs/ELASTIC.md).
  using Strategy::PlanDelta;
  void PlanDelta(const Batch& batch, const BatchDelta& delta, const CostModel& cost_model,
                 const FabricResources& fabric, const TopologyDelta* topology) override;
  // Emits one transformer layer for the planned batch into `graph`:
  // attention queues + remap + linear stage (mirrored in backward). Plan(),
  // PlanDelta(), or AdoptPlan() must have run first.
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  // Post-remap token layout the linear modules see (balanced if remapping on).
  std::vector<int64_t> LinearTokensPerRank() const override;

  // Adopts an externally produced plan — typically one deserialized from the
  // wire format (plan_io.h, `zeppelin_cli --plan_in`) or shared from another
  // process' PlannerService — and rebuilds the routing/engine/remapping
  // layers for it, without re-planning. After this call EmitLayer() executes
  // `plan` exactly; the strategy's delta session is invalidated.
  void AdoptPlan(std::shared_ptr<const PartitionPlan> plan, const CostModel& cost_model,
                 const FabricResources& fabric);

  // Immutable handle to the current plan (null before the first planning
  // call). Stays valid across later Plan()/PlanDelta() calls.
  std::shared_ptr<const PartitionPlan> plan_handle() const override { return current_plan_; }

  // Planning artefacts (for tests, benches, and the Table 3 case study).
  // After PlanDelta() this is the session's patched plan; after Plan() the
  // full-partition plan. Requires a prior planning call.
  const PartitionPlan& partition_plan() const;
  const RemapSolution& remap_solution() const { return remap_solution_; }
  // Wall time of the sequence-partitioning step in the last Plan()/
  // PlanDelta() call — for PlanDelta, the patch (or fallback re-plan) time.
  double partition_time_us() const { return last_stats_.partition_time_us; }
  // Full service-side telemetry of the last planning call (engine used,
  // partition/materialize split, fallback reason, capacity).
  const PlanStats& last_plan_stats() const { return last_stats_; }
  // Delta-planning telemetry (valid after the first PlanDelta() call; null
  // before, or after the session was closed).
  const DeltaStats* delta_stats() const;
  DeltaOutcome last_delta_outcome() const { return last_delta_outcome_; }

  const ZeppelinOptions& options() const { return options_; }
  // The service this strategy plans through (shared or private; created on
  // first use for private instances).
  PlannerService& service();

 private:
  PlanningOptions BuildPlanningOptions() const;
  // Shared tail of Plan()/PlanDelta()/AdoptPlan(): routing/engine/remapping
  // (re)build, remap solve on the current plan, and the linear-stage layout.
  void FinishPlanning(const CostModel& cost_model, const FabricResources& fabric);

  ZeppelinOptions options_;
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;

  // Lazily created when options_.service is null.
  std::shared_ptr<PlannerService> owned_service_;

  std::shared_ptr<const PartitionPlan> current_plan_;
  PlanStats last_stats_;
  DeltaOutcome last_delta_outcome_ = DeltaOutcome::kRebasedNoBase;
  mutable DeltaStats delta_stats_cache_;

  RemapSolution remap_solution_;
  std::vector<int64_t> linear_tokens_;
  RemapScratch remap_scratch_;

  std::optional<RoutingLayer> routing_;
  std::optional<AttentionEngine> engine_;
  std::optional<RemappingLayer> remapping_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_ZEPPELIN_H_
