// PlanCache: the content-addressed plan cache in front of PlannerService
// (docs/PLAN_CACHE.md).
//
// At production traffic most plan requests repeat — same cost model, same
// fabric, same (or near-same) length histogram — yet every request pays the
// full decision kernel. The cache keys each stateless request by
//
//   (cost-model digest, fabric digest, canonicalized batch signature,
//    planning-option signature)
//
// and serves repeats straight from a bounded LRU of immutable plan handles
// (shareable by design, so a hit is zero-copy when the request's slot order
// matches the cached batch, and an O(plan) seq-id remap when the batch is a
// permutation of it — the canonical signature is order- and
// renaming-invariant, see docs/PLAN_CACHE.md "Key derivation").
//
// Near-match tier: requests that miss the exact key but share a *histogram
// bucket signature* (same sequence count, same log2-bucketed length
// histogram) with earlier traffic are served through a per-family delta
// session on the service — a cached plan plus a DeltaPlanner patch over the
// resized slots — instead of a full re-plan. Families are themselves
// LRU-bounded; evicting one closes its service session.
//
// Certification: when `verify` is on (the default), every plan the cache
// serves — hit, miss, or near-match — passes VerifyPlan (plan_verify.h)
// before it is returned. A cached entry that fails (e.g. poisoned storage)
// is dropped and replanned, never served; a freshly planned failure is
// served with stats.verified == false so the caller can apply policy (the
// daemon's verify-before-serve turns it into a typed kInternal).
//
// Thread safety: all public methods are safe to call concurrently. The LRU
// index is guarded by one mutex held only for O(1)/O(size) bookkeeping;
// planning and verification run outside it. Near-match planning serializes
// per family (the family's delta session is stateful), never across
// families.
#ifndef SRC_CORE_PLAN_CACHE_H_
#define SRC_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/plan_service.h"
#include "src/core/plan_verify.h"

namespace zeppelin {

struct PlanCacheOptions {
  // Exact-tier entries resident at once (LRU beyond it).
  size_t capacity = 128;
  // Near-match families resident at once (each owns one service session).
  size_t family_capacity = 32;
  // Enables the histogram-bucketed near-match tier (requires requests with
  // hierarchical fast-path planning — others use the exact tier only).
  bool near_match = true;
  // Run VerifyPlan on every served plan (hit, miss, near-match).
  bool verify = true;
  // Balance slack handed to the certifier (PlanVerifyOptions::eps).
  double verify_eps = 0.25;
};

// Monotonic counters over the cache's lifetime.
struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t near_matches = 0;  // Served via a family delta patch.
  uint64_t evictions = 0;     // Exact entries + families displaced by the LRU.
  uint64_t bypasses = 0;      // Session/delta requests passed straight through.
  uint64_t verify_failures = 0;
};

// The content address of a stateless plan request. Two requests with equal
// keys are served by the same plan (up to a seq-id remap).
struct PlanCacheKey {
  uint64_t cost_digest = 0;    // Model config + tensor parallelism.
  uint64_t fabric_digest = 0;  // Cluster spec + per-rank speed factors.
  uint64_t batch_sig = 0;      // Canonical (order-invariant) length multiset.
  uint64_t options_sig = 0;    // Plan-shape options (capacity, layout knobs).

  bool operator==(const PlanCacheKey&) const = default;
};

// --- Key derivation (exposed for the canonicalization property tests) -------

uint64_t DigestCostModel(const CostModel& cost_model);
uint64_t DigestFabric(const FabricResources& fabric);
// Invariant to sequence order and slot renaming; sensitive to any length
// change (the multiset of lengths, not their arrangement).
uint64_t CanonicalBatchSignature(const Batch& batch);
// The near-match family signature: sequence count + log2-bucketed length
// histogram. Batches with equal bucket signatures are patch-distance
// neighbors by construction.
uint64_t BatchBucketSignature(const Batch& batch);
// The full key for a request (ZCHECKs batch/cost_model/fabric non-null).
PlanCacheKey ComputePlanCacheKey(const PlanRequest& request);

class PlanCache {
 public:
  // `service` is borrowed and must outlive the cache (the cache closes its
  // family sessions on destruction).
  explicit PlanCache(PlannerService* service, PlanCacheOptions options = {});
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // The cache-aware front door: TryServe, else PlanAndInsert. Session/delta
  // requests bypass the cache entirely (kBypass).
  PlanResponse Plan(const PlanRequest& request);

  // Lookup-only: a verified response on an exact-tier hit, nullopt on miss,
  // bypass, or a poisoned entry (which is dropped). Lets callers with their
  // own admission control (the daemon) serve hits without a planning permit.
  std::optional<PlanResponse> TryServe(const PlanRequest& request);

  // Plans through the service (near-match family patch when possible, full
  // plan otherwise) and inserts the result into the exact tier.
  PlanResponse PlanAndInsert(const PlanRequest& request);

  PlanCacheCounters counters() const;
  size_t size() const;
  size_t family_count() const;
  const PlanCacheOptions& options() const { return options_; }

  // Test hook: corrupts the cached plan stored under `request`'s key (drops
  // one ring header), so verify-before-serve paths can be exercised. Returns
  // false when the key has no entry.
  bool PoisonEntryForTest(const PlanRequest& request);

  // Test hook: moves the entry stored under `from`'s key to `to`'s key,
  // simulating a batch-signature collision (two different multisets behind
  // one key). Any entry already at `to`'s key is dropped. Returns false
  // when `from`'s key has no entry.
  bool RekeyEntryForTest(const PlanRequest& from, const PlanRequest& to);

 private:
  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const;
  };
  struct FamilyKey {
    uint64_t cost_digest = 0;
    uint64_t fabric_digest = 0;
    uint64_t bucket_sig = 0;
    uint64_t options_sig = 0;
    bool operator==(const FamilyKey&) const = default;
  };
  struct FamilyKeyHash {
    size_t operator()(const FamilyKey& key) const;
  };
  struct Entry {
    PlanCacheKey key;
    std::vector<int64_t> seq_lens;  // The exact batch the plan covers.
    std::shared_ptr<const PartitionPlan> plan;
    PlanStats stats;    // Engine/capacity of the producing plan call.
    uint64_t digest = 0;    // StateDigest recorded when the plan was certified.
    bool verified = false;  // The stored handle passed VerifyPlan at insert.
    uint8_t remap_streak = 0;  // Consecutive serves that needed the remap tier.
  };
  // One near-match family: a service delta session plus the mirror of its
  // tracked batch. `mu` serializes the [delta derivation -> service call ->
  // mirror advance] critical section so the mirror never drifts from the
  // session's state.
  struct Family {
    std::mutex mu;
    std::string stream_id;
    Batch last_batch;
    bool based = false;
  };

  bool Cacheable(const PlanRequest& request) const;
  // Rebuilds `plan` with seq ids remapped from the cached slot order
  // (`cached_lens`) to the request's. Null on a signature collision (the
  // length multisets differ despite the equal key).
  std::shared_ptr<const PartitionPlan> RemapPlan(const std::vector<int64_t>& cached_lens,
                                                 const PartitionPlan& plan,
                                                 const Batch& batch) const;
  void InsertLocked(Entry entry);
  std::shared_ptr<Family> FindOrCreateFamily(const FamilyKey& key);
  void FillCounters(PlanStats* stats) const;

  PlannerService* service_;
  PlanCacheOptions options_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<PlanCacheKey, std::list<Entry>::iterator, KeyHash> index_;
  std::list<std::pair<FamilyKey, std::shared_ptr<Family>>> family_lru_;
  std::unordered_map<FamilyKey,
                     std::list<std::pair<FamilyKey, std::shared_ptr<Family>>>::iterator,
                     FamilyKeyHash>
      family_index_;
  uint64_t next_family_id_ = 1;
  PlanCacheCounters counters_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_PLAN_CACHE_H_
