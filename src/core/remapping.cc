#include "src/core/remapping.h"

#include "src/comm/collectives.h"
#include "src/common/check.h"

namespace zeppelin {

RemappingLayer::RemappingLayer(const CostModel& cost_model, const FabricResources& fabric,
                               RemappingOptions options)
    : cost_model_(&cost_model), fabric_(&fabric), options_(options) {}

RemapSolution RemappingLayer::Plan(const std::vector<int64_t>& tokens_per_rank) const {
  RemapScratch scratch;
  RemapSolution solution;
  Plan(tokens_per_rank, &scratch, &solution);
  return solution;
}

void RemappingLayer::Plan(const std::vector<int64_t>& tokens_per_rank, RemapScratch* scratch,
                          RemapSolution* solution) const {
  const ClusterSpec& spec = fabric_->cluster();
  ZCHECK_EQ(tokens_per_rank.size(), static_cast<size_t>(spec.world_size()));

  RemapProblem& problem = scratch->problem;
  problem.tokens.assign(tokens_per_rank.begin(), tokens_per_rank.end());
  problem.target.clear();
  problem.node_of.resize(spec.world_size());
  for (int r = 0; r < spec.world_size(); ++r) {
    problem.node_of[r] = spec.NodeOf(r);
  }
  const double bytes_per_token = static_cast<double>(cost_model_->HiddenBytesPerToken());
  problem.b_intra = cost_model_->b_intra() * bytes_per_token;
  problem.b_inter = cost_model_->b_inter() * bytes_per_token;
  if (options_.minimax) {
    SolveMinimaxRemap(problem, scratch, solution);
  } else {
    *solution = SolveMinTotalRemap(problem);
  }
}

RemappingLayer::EmitResult RemappingLayer::Emit(TaskGraph& graph,
                                                const std::vector<int64_t>& tokens_per_rank,
                                                const RemapSolution& solution, bool inverse,
                                                const std::vector<std::vector<TaskId>>& deps,
                                                const std::string& label) const {
  const ClusterSpec& spec = fabric_->cluster();
  const int world = spec.world_size();
  ZCHECK_EQ(tokens_per_rank.size(), static_cast<size_t>(world));

  EmitResult result;
  if (!options_.enabled) {
    result.new_tokens = tokens_per_rank;
    result.done.resize(world);
    for (int k = 0; k < world; ++k) {
      result.done[k] = graph.AddBarrier(deps.empty() ? std::vector<TaskId>{} : deps[k],
                                        label + ".noremap." + std::to_string(k));
    }
    return result;
  }

  const int64_t bytes_per_token = cost_model_->HiddenBytesPerToken();
  std::vector<std::vector<int64_t>> sends(world, std::vector<int64_t>(world, 0));
  result.new_tokens = tokens_per_rank;
  for (int i = 0; i < world; ++i) {
    for (int j = 0; j < world; ++j) {
      const int64_t moved = inverse ? solution.transfer[j][i] : solution.transfer[i][j];
      if (moved == 0) {
        continue;
      }
      sends[i][j] = moved * bytes_per_token;
      result.new_tokens[i] -= moved;
      result.new_tokens[j] += moved;
    }
  }

  std::vector<int> ranks(world);
  for (int r = 0; r < world; ++r) {
    ranks[r] = r;
  }
  const CollectiveResult a2a =
      AllToAllV(graph, *fabric_, ranks, sends, TaskCategory::kRemapComm, deps, label);
  result.done = a2a.done;
  return result;
}

}  // namespace zeppelin
