#include "src/core/autotuner.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/core/registry.h"

namespace zeppelin {

const AutotuneEntry& AutotuneResult::best() const {
  ZCHECK(!ranking.empty());
  return ranking.front();
}

double AutotuneResult::WinningMargin() const {
  if (ranking.size() < 2 || ranking[1].mean_tokens_per_second == 0) {
    return 1.0;
  }
  return ranking[0].mean_tokens_per_second / ranking[1].mean_tokens_per_second;
}

AutotuneResult Autotune(const Trainer& trainer, const std::vector<std::string>& specs,
                        const std::vector<Batch>& batches) {
  ZCHECK(!specs.empty());
  ZCHECK(!batches.empty());

  AutotuneResult result;
  for (const std::string& spec : specs) {
    auto strategy = MakeStrategyByName(spec);
    AutotuneEntry entry;
    entry.spec = spec;
    entry.min_tokens_per_second = std::numeric_limits<double>::infinity();
    double tput_sum = 0;
    double nic_sum = 0;
    for (const Batch& batch : batches) {
      const IterationResult iter = trainer.Run(*strategy, batch);
      tput_sum += iter.tokens_per_second;
      nic_sum += iter.nic_utilization;
      entry.min_tokens_per_second =
          std::min(entry.min_tokens_per_second, iter.tokens_per_second);
    }
    entry.mean_tokens_per_second = tput_sum / static_cast<double>(batches.size());
    entry.nic_utilization = nic_sum / static_cast<double>(batches.size());
    result.ranking.push_back(std::move(entry));
  }
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [](const AutotuneEntry& a, const AutotuneEntry& b) {
                     return a.mean_tokens_per_second > b.mean_tokens_per_second;
                   });
  return result;
}

AutotuneResult Autotune(const Trainer& trainer, const std::vector<std::string>& specs,
                        BatchSampler& sampler, int num_batches) {
  ZCHECK_GT(num_batches, 0);
  std::vector<Batch> batches;
  batches.reserve(num_batches);
  for (int i = 0; i < num_batches; ++i) {
    batches.push_back(sampler.NextBatch());
  }
  return Autotune(trainer, specs, batches);
}

}  // namespace zeppelin
