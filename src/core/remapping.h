// Remapping layer (paper §3.4).
//
// The attention-optimal token layout produced by the partitioner is generally
// token-imbalanced, while linear modules (projections, MLP/MoE, norms) want a
// uniform token count per rank. The remapping layer computes a transfer
// matrix M minimizing the maximum per-rank transfer cost (Eq. 2, solved
// exactly by solver/minimax_remap) and executes it as a dynamic-shape
// all-to-allv before the linear modules, with the inverse transfer (equal
// cost, transposed matrix) afterwards.
#ifndef SRC_CORE_REMAPPING_H_
#define SRC_CORE_REMAPPING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/solver/minimax_remap.h"
#include "src/topology/path.h"

namespace zeppelin {

struct RemappingOptions {
  bool enabled = true;
  // Use the exact minimax solver (true) or the min-total-cost greedy (false)
  // — design ablation D5.
  bool minimax = true;
};

class RemappingLayer {
 public:
  RemappingLayer(const CostModel& cost_model, const FabricResources& fabric,
                 RemappingOptions options);

  // Plans the transfer matrix for the given attention-layout token counts.
  // Token counts are turned into bytes via the hidden-state activation size.
  RemapSolution Plan(const std::vector<int64_t>& tokens_per_rank) const;

  // Allocation-hoisted form: the problem and all solver intermediates live in
  // `scratch`, and `solution`'s transfer-matrix storage is recycled (pass the
  // previous iteration's solution back in). Identical results.
  void Plan(const std::vector<int64_t>& tokens_per_rank, RemapScratch* scratch,
            RemapSolution* solution) const;

  struct EmitResult {
    std::vector<TaskId> done;          // Per rank.
    std::vector<int64_t> new_tokens;   // Token counts after remapping.
  };

  // Emits the all-to-allv for `solution` (or its inverse when
  // `inverse` = true). deps[k] gates rank k's sends. When the layer is
  // disabled, returns barriers and the original token distribution.
  EmitResult Emit(TaskGraph& graph, const std::vector<int64_t>& tokens_per_rank,
                  const RemapSolution& solution, bool inverse,
                  const std::vector<std::vector<TaskId>>& deps, const std::string& label) const;

  bool enabled() const { return options_.enabled; }

 private:
  const CostModel* cost_model_;
  const FabricResources* fabric_;
  RemappingOptions options_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_REMAPPING_H_
