#include "src/core/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/core/chunking.h"

namespace zeppelin {

int64_t PartitionPlan::total_tokens() const {
  return std::accumulate(tokens_per_rank.begin(), tokens_per_rank.end(), int64_t{0});
}

double PartitionPlan::TokenImbalance() const {
  std::vector<double> loads(tokens_per_rank.begin(), tokens_per_rank.end());
  return 1.0 + ImbalanceRatio(loads);
}

SequencePartitioner::SequencePartitioner(const ClusterSpec& cluster, Options options)
    : cluster_(cluster), options_(options) {
  cluster_.Validate();
  ZCHECK_GT(options_.token_capacity, 0);
}

namespace {

// Index of the least-loaded bucket (ties -> lowest index, deterministic).
int ArgMinLoad(const std::vector<int64_t>& loads) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(loads.size()); ++i) {
    if (loads[i] < loads[best]) {
      best = i;
    }
  }
  return best;
}

// Indices of the k least-loaded buckets, ascending by (load, index).
std::vector<int> LeastLoaded(const std::vector<int64_t>& loads, int k) {
  std::vector<int> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return loads[a] < loads[b]; });
  order.resize(k);
  std::sort(order.begin(), order.end());  // Keep ring order node-ascending.
  return order;
}

}  // namespace

std::vector<SequencePartitioner::NodeAssignment> SequencePartitioner::PartitionInterNode(
    const Batch& batch, PartitionPlan* plan) const {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int64_t node_capacity = static_cast<int64_t>(p) * options_.token_capacity;

  // Sort sequence ids by length, descending (Alg. 1 line 1).
  std::vector<int> order(batch.seq_lens.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return batch.seq_lens[a] > batch.seq_lens[b];
  });

  int64_t total = batch.total_tokens();
  ZCHECK_LE(total, static_cast<int64_t>(num_nodes) * node_capacity)
      << "batch does not fit the cluster at capacity L=" << options_.token_capacity;

  int64_t s1 = node_capacity;  // Alg. 1 line 2.
  if (options_.max_inter_threshold > 0) {
    s1 = std::min(s1, options_.max_inter_threshold);
  }
  std::vector<NodeAssignment> assignments;
  for (bool retry = true; retry;) {
    retry = false;
    assignments.assign(num_nodes, NodeAssignment{});
    plan->inter_node.clear();
    plan->intra_node.clear();  // May hold single-node z2 rings from a retry.
    std::vector<int64_t> node_loads(num_nodes, 0);

    // Zone split at the current threshold (lines 5-6).
    std::vector<int> z2;   // |s| >= s1.
    std::vector<int> z01;  // |s| < s1, still sorted descending.
    for (int id : order) {
      (batch.seq_lens[id] >= s1 ? z2 : z01).push_back(id);
    }

    // Chunk inter-node sequences over ceil(|s| / s_avg) node buckets
    // (lines 7-10).
    int64_t z2_total = 0;
    for (int id : z2) {
      z2_total += batch.seq_lens[id];
    }
    if (!z2.empty()) {
      const double s_avg = static_cast<double>(z2_total) / num_nodes;
      for (int id : z2) {
        const int64_t len = batch.seq_lens[id];
        int k = static_cast<int>(
            std::ceil(static_cast<double>(len) / std::max(s_avg, 1.0)));
        k = std::clamp(k, 1, num_nodes);
        const std::vector<int> nodes = LeastLoaded(node_loads, k);

        RingSequence ring;
        ring.seq_id = id;
        ring.length = len;
        // A z2 sequence that lands in a single node bucket (k == 1, e.g. on
        // a one-node cluster) never crosses the network: it is an intra-node
        // ring over that node's devices, not an inter-node one.
        ring.zone = nodes.size() > 1 ? Zone::kInterNode : Zone::kIntraNode;
        for (int n : nodes) {
          for (int local = 0; local < p; ++local) {
            ring.ranks.push_back(cluster_.GlobalRank(n, local));
          }
        }
        // Record per-node chunk loads (even split across the k nodes).
        for (int c = 0; c < k; ++c) {
          const int64_t chunk = len * (c + 1) / k - len * c / k;
          assignments[nodes[c]].inter_chunks.emplace_back(id, chunk);
          node_loads[nodes[c]] += chunk;
        }
        if (ring.zone == Zone::kInterNode) {
          plan->inter_node.push_back(std::move(ring));
        } else {
          plan->intra_node.push_back(std::move(ring));
        }
      }
    }

    // Pack the rest onto least-loaded nodes (lines 11-19).
    for (int id : z01) {
      const int64_t len = batch.seq_lens[id];
      const int idx = ArgMinLoad(node_loads);
      if (len + node_loads[idx] > node_capacity) {
        s1 = len;  // len == max(z01): z01 is sorted descending, and any
                   // earlier sequence was placed successfully.
        retry = true;
        break;
      }
      node_loads[idx] += len;
      assignments[idx].sequences.push_back(id);
    }
  }
  plan->threshold_s1 = s1;
  return assignments;
}

void SequencePartitioner::PartitionIntraNode(const Batch& batch, int node,
                                             const NodeAssignment& assignment,
                                             PartitionPlan* plan) const {
  const int p = cluster_.gpus_per_node;
  const int64_t capacity = options_.token_capacity;

  // Sequence ids on this node, longest first (inherited from Alg. 1 order).
  std::vector<int> seqs = assignment.sequences;
  std::stable_sort(seqs.begin(), seqs.end(), [&](int a, int b) {
    return batch.seq_lens[a] > batch.seq_lens[b];
  });

  int64_t s0 = capacity;  // Alg. 2 line 1.
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  std::vector<RingSequence> intra_rings;
  std::vector<LocalSequence> locals;
  std::vector<int64_t> device_loads;

  for (bool retry = true; retry;) {
    retry = false;
    intra_rings.clear();
    locals.clear();
    device_loads.assign(p, 0);

    // Inter-node chunks are spread evenly over all P devices (lines 4-6).
    for (const auto& [seq_id, chunk_len] : assignment.inter_chunks) {
      for (int d = 0; d < p; ++d) {
        device_loads[d] += chunk_len * (d + 1) / p - chunk_len * d / p;
      }
    }

    // Zone split at the current threshold (line 7).
    std::vector<int> z0;
    std::vector<int> z1;
    for (int id : seqs) {
      (batch.seq_lens[id] >= s0 ? z1 : z0).push_back(id);
    }

    // Quadratic-balanced fragmentation of intra-node sequences (lines 8-12).
    double c_total = 0;
    for (int id : z1) {
      const double len = static_cast<double>(batch.seq_lens[id]);
      c_total += len * len;
    }
    int cursor = 0;  // Round-robin start for fragment placement.
    if (!z1.empty()) {
      const double c_avg = c_total / p;
      for (int id : z1) {
        const double len = static_cast<double>(batch.seq_lens[id]);
        int fragments =
            static_cast<int>(std::ceil(len * len / std::max(c_avg, 1.0)));
        fragments = std::clamp(fragments, 1, p);

        RingSequence ring;
        ring.seq_id = id;
        ring.length = batch.seq_lens[id];
        ring.zone = Zone::kIntraNode;
        for (int f = 0; f < fragments; ++f) {
          const int device = (cursor + f) % p;
          ring.ranks.push_back(cluster_.GlobalRank(node, device));
          device_loads[device] +=
              ring.length * (f + 1) / fragments - ring.length * f / fragments;
        }
        cursor = (cursor + fragments) % p;
        intra_rings.push_back(std::move(ring));
      }
    }

    // Local sequences onto least-loaded devices (lines 13-21).
    for (int id : z0) {
      const int64_t len = batch.seq_lens[id];
      const int idx = ArgMinLoad(device_loads);
      if (len + device_loads[idx] > capacity) {
        s0 = len;  // max(z0): z0 is sorted descending.
        retry = true;
        break;
      }
      device_loads[idx] += len;
      locals.push_back({id, len, cluster_.GlobalRank(node, idx)});
    }
  }

  // Size-1 "rings" need no communication: execute as local kernels.
  for (auto& ring : intra_rings) {
    if (ring.group_size() == 1) {
      locals.push_back({ring.seq_id, ring.length, ring.ranks[0]});
    } else {
      plan->intra_node.push_back(std::move(ring));
    }
  }
  for (auto& local : locals) {
    plan->local.push_back(local);
  }
  for (int d = 0; d < p; ++d) {
    plan->tokens_per_rank[cluster_.GlobalRank(node, d)] += device_loads[d];
  }
  plan->threshold_s0[node] = s0;
}

PartitionPlan SequencePartitioner::Partition(const Batch& batch) const {
  ZCHECK_GT(batch.size(), 0);
  PartitionPlan plan;
  plan.tokens_per_rank.assign(cluster_.world_size(), 0);
  plan.threshold_s0.assign(cluster_.num_nodes, 0);

  const std::vector<NodeAssignment> assignments = PartitionInterNode(batch, &plan);
  for (int node = 0; node < cluster_.num_nodes; ++node) {
    PartitionIntraNode(batch, node, assignments[node], &plan);
  }

  ZCHECK_EQ(plan.total_tokens(), batch.total_tokens())
      << "partitioner must conserve tokens";
  return plan;
}

}  // namespace zeppelin
