#include "src/core/partitioner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/core/chunking.h"
#include "src/core/partitioner_internal.h"

namespace zeppelin {

using planner_internal::EmitRing;
using planner_internal::InterNodeChunkCount;
using planner_internal::IntraNodeFragmentCount;

int64_t PartitionPlan::total_tokens() const {
  return std::accumulate(tokens_per_rank.begin(), tokens_per_rank.end(), int64_t{0});
}

double PartitionPlan::TokenImbalance() const {
  std::vector<double> loads(tokens_per_rank.begin(), tokens_per_rank.end());
  return 1.0 + ImbalanceRatio(loads);
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  // Fold 8 bytes at a time; FNV-1a is defined bytewise but a 64-bit fold
  // keeps the same avalanche quality at 1/8 the multiplies, and the digest
  // only needs to be a stable fingerprint, not the reference constant.
  h ^= v;
  return h * kFnvPrime;
}

}  // namespace

uint64_t PartitionPlan::StateDigest() const {
  // Per-entry hashes combine by addition within each queue (invariant to
  // queue order and arena layout), then the queue digests chain through one
  // final FNV pass (so content cannot migrate between queues unnoticed).
  auto ring_queue_digest = [&](const std::vector<RingRef>& queue) {
    uint64_t sum = 0;
    for (const RingRef& ring : queue) {
      uint64_t h = kFnvOffset;
      h = FnvMix(h, static_cast<uint64_t>(ring.seq_id));
      h = FnvMix(h, static_cast<uint64_t>(ring.length));
      h = FnvMix(h, static_cast<uint64_t>(ring.zone));
      h = FnvMix(h, ring.rank_count);
      for (int rank : ranks(ring)) {
        h = FnvMix(h, static_cast<uint64_t>(rank));
      }
      sum += h;
    }
    return sum;
  };
  uint64_t local_sum = 0;
  for (const LocalSequence& seq : local) {
    uint64_t h = kFnvOffset;
    h = FnvMix(h, static_cast<uint64_t>(seq.seq_id));
    h = FnvMix(h, static_cast<uint64_t>(seq.length));
    h = FnvMix(h, static_cast<uint64_t>(seq.rank));
    local_sum += h;
  }

  uint64_t digest = kFnvOffset;
  digest = FnvMix(digest, ring_queue_digest(inter_node));
  digest = FnvMix(digest, ring_queue_digest(intra_node));
  digest = FnvMix(digest, local_sum);
  for (int64_t tokens : tokens_per_rank) {
    digest = FnvMix(digest, static_cast<uint64_t>(tokens));
  }
  digest = FnvMix(digest, static_cast<uint64_t>(threshold_s1));
  for (int64_t s0 : threshold_s0) {
    digest = FnvMix(digest, static_cast<uint64_t>(s0));
  }
  return digest;
}

void PartitionPlan::AddRing(std::vector<RingRef>& queue, int seq_id, int64_t length, Zone zone,
                            std::span<const int> ring_ranks) {
  ZCHECK(&queue == &inter_node || &queue == &intra_node)
      << "AddRing queue must belong to this plan";
  RingRef& ring = queue.emplace_back();
  ring.seq_id = seq_id;
  ring.length = length;
  ring.zone = zone;
  ring.rank_offset = static_cast<uint32_t>(rank_arena.size());
  ring.rank_count = static_cast<uint32_t>(ring_ranks.size());
  rank_arena.insert(rank_arena.end(), ring_ranks.begin(), ring_ranks.end());
}

int* RingStore::Append(int seq_id, int64_t length, Zone zone, int count) {
  return EmitRing(&refs, &ref_count, &arena, &rank_count, seq_id, length, zone, count);
}

SequencePartitioner::SequencePartitioner(const ClusterSpec& cluster, Options options)
    : cluster_(cluster), options_(options) {
  cluster_.Validate();
  ZCHECK_GT(options_.token_capacity, 0);
}

void SequencePartitioner::set_options(Options options) {
  options_ = options;
  ZCHECK_GT(options_.token_capacity, 0);
}

namespace {

// Index of the least-loaded bucket (ties -> lowest index, deterministic).
int ArgMinLoad(const std::vector<int64_t>& loads) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(loads.size()); ++i) {
    if (loads[i] < loads[best]) {
      best = i;
    }
  }
  return best;
}

// Indices of the k least-loaded buckets, ascending by (load, index); the
// final order is node-ascending to keep rings node-ordered. Selection only
// needs a partial sort; the explicit (load, index) comparator reproduces
// what the seed's stable full sort by load alone would select.
std::vector<int> LeastLoaded(const std::vector<int64_t>& loads, int k) {
  std::vector<int> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int a, int b) { return loads[a] != loads[b] ? loads[a] < loads[b] : a < b; });
  order.resize(k);
  std::sort(order.begin(), order.end());  // Keep ring order node-ascending.
  return order;
}

// Sequence ids by length, descending (Alg. 1 line 1 / Alg. 2 inherited order).
void BuildDescendingOrder(const Batch& batch, std::vector<int>* order) {
  order->resize(batch.seq_lens.size());
  std::iota(order->begin(), order->end(), 0);
  std::stable_sort(order->begin(), order->end(), [&](int a, int b) {
    return batch.seq_lens[a] > batch.seq_lens[b];
  });
}

// Same order, computed by a stable LSD radix sort on the bitwise complement
// of the length (complement-ascending == length-descending, and stability
// gives the same tie-break as the stable comparison sort). O(S) per 16-bit
// digit, with only as many passes as the longest sequence needs — at
// training-realistic lengths (< 4G tokens) that is at most two passes, well
// under the comparison sort's S log S.
void BuildDescendingOrderRadix(const Batch& batch, PlannerScratch* s) {
  const int n = batch.size();
  s->order.resize(n);
  std::iota(s->order.begin(), s->order.end(), 0);

  int64_t max_len = 0;
  for (int64_t len : batch.seq_lens) {
    ZCHECK_GE(len, 0);
    max_len = std::max(max_len, len);
  }
  constexpr int kDigitBits = 16;
  constexpr int64_t kDigitMask = (int64_t{1} << kDigitBits) - 1;
  s->radix_tmp.resize(n);
  s->radix_count.resize(size_t{1} << kDigitBits);
  // Keys only differ below bit_width(max_len); higher complement bits are
  // identical across all keys and need no pass.
  for (int shift = 0; (max_len >> shift) > 0; shift += kDigitBits) {
    std::fill(s->radix_count.begin(), s->radix_count.end(), 0);
    for (int id : s->order) {
      ++s->radix_count[(~batch.seq_lens[id] >> shift) & kDigitMask];
    }
    int running = 0;
    for (int& count : s->radix_count) {
      const int c = count;
      count = running;
      running += c;
    }
    for (int id : s->order) {
      s->radix_tmp[s->radix_count[(~batch.seq_lens[id] >> shift) & kDigitMask]++] = id;
    }
    s->order.swap(s->radix_tmp);
  }
}

// First position in the length-descending `order` whose length drops below
// `threshold` — the zone boundary index. O(log |order|).
int ZoneBoundary(const Batch& batch, const std::vector<int>& order, int64_t threshold) {
  return static_cast<int>(
      std::partition_point(order.begin(), order.end(),
                           [&](int id) { return batch.seq_lens[id] >= threshold; }) -
      order.begin());
}

void ResetAssignments(int num_nodes, std::vector<NodeAssignment>* assignments) {
  assignments->resize(num_nodes);
  for (NodeAssignment& a : *assignments) {
    a.inter_chunks.clear();
    a.sequences.clear();
  }
}

}  // namespace

// --- Inter-node stage (Alg. 1), reference greedy ------------------------------
//
// Structurally the seed implementation: fresh workspaces per pass, zone
// re-splits, and whole-stage restarts on overflow. Kept (modulo the
// partial-sort LeastLoaded and the flat-arena emission every engine shares)
// as the equivalence oracle and the bench baseline.

void SequencePartitioner::PartitionInterNodeNaive(const Batch& batch, PartitionPlan* plan,
                                                  PlannerScratch* s) const {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int64_t node_capacity = static_cast<int64_t>(p) * options_.token_capacity;

  // Sort sequence ids by length, descending (Alg. 1 line 1).
  std::vector<int> order;
  BuildDescendingOrder(batch, &order);

  int64_t total = batch.total_tokens();
  ZCHECK_LE(total, static_cast<int64_t>(num_nodes) * node_capacity)
      << "batch does not fit the cluster at capacity L=" << options_.token_capacity;

  int64_t s1 = node_capacity;  // Alg. 1 line 2.
  if (options_.max_inter_threshold > 0) {
    s1 = std::min(s1, options_.max_inter_threshold);
  }
  for (bool retry = true; retry;) {
    retry = false;
    s->assignments.assign(num_nodes, NodeAssignment{});
    // A retry rewinds every ring emitted so far (including single-node z2
    // rings routed to the intra queue): reset all three cursors.
    s->inter_ring_count = 0;
    s->intra_ring_count = 0;
    s->arena_count = 0;
    std::vector<int64_t> node_loads(num_nodes, 0);

    // Zone split at the current threshold (lines 5-6).
    std::vector<int> z2;   // |s| >= s1.
    std::vector<int> z01;  // |s| < s1, still sorted descending.
    for (int id : order) {
      (batch.seq_lens[id] >= s1 ? z2 : z01).push_back(id);
    }

    // Chunk inter-node sequences over ceil(|s| / s_avg) node buckets
    // (lines 7-10).
    int64_t z2_total = 0;
    for (int id : z2) {
      z2_total += batch.seq_lens[id];
    }
    if (!z2.empty()) {
      const double s_avg = static_cast<double>(z2_total) / num_nodes;
      for (int id : z2) {
        const int64_t len = batch.seq_lens[id];
        const int k = InterNodeChunkCount(len, s_avg, num_nodes);
        const std::vector<int> nodes = LeastLoaded(node_loads, k);

        // A z2 sequence that lands in a single node bucket (k == 1, e.g. on
        // a one-node cluster) never crosses the network: it is an intra-node
        // ring over that node's devices, not an inter-node one.
        const bool inter = nodes.size() > 1;
        int* out = inter ? EmitRing(&plan->inter_node, &s->inter_ring_count, &plan->rank_arena,
                                    &s->arena_count, id, len, Zone::kInterNode,
                                    static_cast<int>(nodes.size()) * p)
                         : EmitRing(&plan->intra_node, &s->intra_ring_count, &plan->rank_arena,
                                    &s->arena_count, id, len, Zone::kIntraNode, p);
        for (int node : nodes) {
          for (int local = 0; local < p; ++local) {
            *out++ = cluster_.GlobalRank(node, local);
          }
        }
        // Record per-node chunk loads (even split across the k nodes).
        for (int c = 0; c < k; ++c) {
          const int64_t chunk = len * (c + 1) / k - len * c / k;
          s->assignments[nodes[c]].inter_chunks.emplace_back(id, chunk);
          node_loads[nodes[c]] += chunk;
        }
      }
    }

    // Pack the rest onto least-loaded nodes (lines 11-19).
    for (int id : z01) {
      const int64_t len = batch.seq_lens[id];
      const int idx = ArgMinLoad(node_loads);
      if (len + node_loads[idx] > node_capacity) {
        s1 = len;  // len == max(z01): z01 is sorted descending, and any
                   // earlier sequence was placed successfully.
        retry = true;
        break;
      }
      node_loads[idx] += len;
      s->assignments[idx].sequences.push_back(id);
    }
  }
  plan->threshold_s1 = s1;
}

// --- Inter-node stage (Alg. 1), heap fast path --------------------------------

void SequencePartitioner::PartitionInterNodeFast(const Batch& batch, PartitionPlan* plan,
                                                 PlannerScratch* s) const {
  const int num_nodes = cluster_.num_nodes;
  const int p = cluster_.gpus_per_node;
  const int64_t node_capacity = static_cast<int64_t>(p) * options_.token_capacity;
  const int n = batch.size();

  BuildDescendingOrderRadix(batch, s);
  s->prefix_lens.resize(n + 1);
  s->prefix_lens[0] = 0;
  for (int i = 0; i < n; ++i) {
    s->prefix_lens[i + 1] = s->prefix_lens[i] + batch.seq_lens[s->order[i]];
  }
  s->placed_node.resize(n);

  // Rank-list template per node: every single-node ring over node b is the
  // identical [b*p, (b+1)*p) span, so rings memcpy it instead of recomputing.
  s->node_ranks.resize(num_nodes);
  for (int node = 0; node < num_nodes; ++node) {
    s->node_ranks[node].resize(p);
    std::iota(s->node_ranks[node].begin(), s->node_ranks[node].end(), node * p);
  }

  ZCHECK_LE(s->prefix_lens[n], static_cast<int64_t>(num_nodes) * node_capacity)
      << "batch does not fit the cluster at capacity L=" << options_.token_capacity;

  int64_t s1 = node_capacity;  // Alg. 1 line 2.
  if (options_.max_inter_threshold > 0) {
    s1 = std::min(s1, options_.max_inter_threshold);
  }
  // Zone boundary: order[0..boundary) is z2, order[boundary..n) is z01. Kept
  // incrementally across overflow restarts — a restart only advances it.
  int boundary = ZoneBoundary(batch, s->order, s1);

  // Records a chunk of `chunk` tokens on `node` in the aggregate form the
  // intra stage consumes (whole shares + remainder histogram).
  auto record_chunk = [&](int node, int64_t chunk) {
    planner_internal::RecordChunkAggregate(node, chunk, p, &s->node_chunk_whole,
                                           &s->node_chunk_rem);
  };

  // Emits the z2 ring + chunk bookkeeping for a sequence chunked over a
  // single node bucket (never crosses the network: an intra-node ring).
  auto emit_single_node = [&](int id, int64_t len, int node) {
    int* out = EmitRing(&plan->intra_node, &s->intra_ring_count, &plan->rank_arena,
                        &s->arena_count, id, len, Zone::kIntraNode, p);
    std::memcpy(out, s->node_ranks[node].data(), sizeof(int) * p);
    record_chunk(node, len);
  };

  int restarts = 0;
  // When the whole aborted pass was plain least-loaded packing (empty z2)
  // and every promoted sequence still chunks to k == 1 under the new s_avg,
  // the replay would reproduce the aborted pass placement for placement:
  // the packing rule and the loads are identical. `continue_from` skips the
  // replay in that case — the placements already made are only re-labelled
  // (z01 bookkeeping -> single-node z2 rings), and placement resumes where
  // the aborted pass stopped.
  int continue_from = -1;
  for (;;) {
    const int64_t z2_total = s->prefix_lens[boundary];
    const double s_avg = static_cast<double>(z2_total) / num_nodes;

    int z2_start = 0;
    if (continue_from >= 0) {
      // Incremental restart: re-label positions [0, continue_from) in place.
      // Ring order, per-node chunk order, and heap loads all match what a
      // full replay would produce, because the aborted pass placed these
      // very sequences with the same (load, index) rule. The aborted pass
      // emitted no rings (empty z2), so the arena cursor starts at zero and
      // ring i's ranks land at arena slot i*p — exactly the replay layout.
      for (int i = 0; i < continue_from; ++i) {
        emit_single_node(s->order[i], batch.seq_lens[s->order[i]], s->placed_node[i]);
      }
      for (NodeAssignment& a : s->assignments) {
        a.sequences.clear();
      }
      z2_start = continue_from;
      continue_from = -1;
    } else {
      ResetAssignments(num_nodes, &s->assignments);
      s->node_chunk_whole.assign(num_nodes, 0);
      s->node_chunk_rem.assign(static_cast<size_t>(num_nodes) * p, 0);
      // Rewind all ring emission (headers + arena slots are recycled).
      s->inter_ring_count = 0;
      s->intra_ring_count = 0;
      s->arena_count = 0;
      s->node_loads.Reset(num_nodes);
    }

    // Chunk placement for z2 (replayed from z2_start; a restart changes
    // s_avg and with it every sequence's chunk count, except in the
    // re-label case handled above).
    for (int i = z2_start; i < boundary; ++i) {
      const int id = s->order[i];
      const int64_t len = batch.seq_lens[id];
      const int k = InterNodeChunkCount(len, s_avg, num_nodes);

      if (k == 1) {
        emit_single_node(id, len, s->node_loads.add_min(len));
        continue;
      }

      s->node_loads.k_least(k, &s->least);
      std::sort(s->least.begin(), s->least.end());  // Keep ring order node-ascending.
      int* out = EmitRing(&plan->inter_node, &s->inter_ring_count, &plan->rank_arena,
                          &s->arena_count, id, len, Zone::kInterNode, k * p);
      for (int node : s->least) {
        const int rank_base = node * p;
        for (int local = 0; local < p; ++local) {
          *out++ = rank_base + local;
        }
      }
      // Per-node chunk loads (even split across the k nodes), one division
      // per boundary instead of two.
      int64_t prev_edge = 0;
      for (int c = 0; c < k; ++c) {
        const int64_t edge = len * (c + 1) / k;
        const int64_t chunk = edge - prev_edge;
        prev_edge = edge;
        record_chunk(s->least[c], chunk);
        s->node_loads.add(s->least[c], chunk);
      }
    }

    // Pack z01 onto least-loaded nodes; each placement is one argmin + one
    // heap update instead of an O(num_nodes) scan.
    const int z01_start = boundary;
    bool overflowed = false;
    for (int i = z01_start; i < n; ++i) {
      const int id = s->order[i];
      const int64_t len = batch.seq_lens[id];
      const int idx = s->node_loads.pack_min(len, node_capacity);
      if (idx < 0) {
        // Shrink s1 to max(z01) = len and promote every sequence of length
        // >= len into z2: they form a contiguous block, so the boundary just
        // advances past it (no re-sort, no zone re-split).
        const int nb = planner_internal::AdvanceZoneBoundary(
            n, i, [&](int j) { return batch.seq_lens[s->order[j]]; }, &s1);
        // Incremental-continuation test: the aborted pass must have been
        // pure z01 packing (z2 empty), and under the new s_avg every
        // promoted sequence must still chunk to a single node (max promoted
        // length = order[0]'s). Then the replay is a no-op re-labelling.
        const double next_avg = static_cast<double>(s->prefix_lens[nb]) / num_nodes;
        if (z01_start == 0 &&
            static_cast<double>(batch.seq_lens[s->order[0]]) <= std::max(next_avg, 1.0)) {
          continue_from = i;
        }
        boundary = nb;
        overflowed = true;
        break;
      }
      s->placed_node[i] = idx;
      s->assignments[idx].sequences.push_back(id);
    }
    if (!overflowed) {
      break;
    }
    // The boundary strictly advances on every restart, so more than n
    // restarts means a broken invariant; fall back to the reference greedy
    // once rather than looping.
    if (++restarts > n) {
      ZCHECK(options_.naive_fallback) << "fast-path restart chain exceeded its bound";
      // The naive path rewinds the emission cursors itself and re-emits
      // every ring into the recycled plan storage.
      PartitionInterNodeNaive(batch, plan, s);
      // Rebuild the chunk aggregates the fast intra stage reads.
      s->node_chunk_whole.assign(num_nodes, 0);
      s->node_chunk_rem.assign(static_cast<size_t>(num_nodes) * p, 0);
      for (int node = 0; node < num_nodes; ++node) {
        for (const auto& [seq_id, chunk] : s->assignments[node].inter_chunks) {
          record_chunk(node, chunk);
        }
      }
      return;
    }
  }
  plan->threshold_s1 = s1;
}

// --- Intra-node stage (Alg. 2), reference greedy -------------------------------

void SequencePartitioner::PartitionIntraNodeNaive(const Batch& batch, int node,
                                                  const NodeAssignment& assignment,
                                                  PartitionPlan* plan,
                                                  PlannerScratch* s) const {
  const int p = cluster_.gpus_per_node;
  const int64_t capacity = options_.token_capacity;

  // Sequence ids on this node, longest first (inherited from Alg. 1 order).
  std::vector<int> seqs = assignment.sequences;
  std::stable_sort(seqs.begin(), seqs.end(), [&](int a, int b) {
    return batch.seq_lens[a] > batch.seq_lens[b];
  });

  int64_t s0 = capacity;  // Alg. 2 line 1.
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  // Emission snapshots: a restart rewinds this node's rings (headers + arena
  // slots), leaving earlier nodes' output untouched; locals buffer in the
  // pass-local vectors below and only reach the plan after the final pass.
  const size_t ring_base = s->intra_ring_count;
  const size_t arena_base = s->arena_count;
  std::vector<LocalSequence> locals;      // z0 locals of the current pass.
  std::vector<LocalSequence> locals_z1;   // Single-fragment z1 conversions.
  std::vector<int64_t> device_loads;

  for (bool retry = true; retry;) {
    retry = false;
    s->intra_ring_count = ring_base;
    s->arena_count = arena_base;
    locals.clear();
    locals_z1.clear();
    device_loads.assign(p, 0);

    // Inter-node chunks are spread evenly over all P devices (lines 4-6).
    for (const auto& [seq_id, chunk_len] : assignment.inter_chunks) {
      for (int d = 0; d < p; ++d) {
        device_loads[d] += chunk_len * (d + 1) / p - chunk_len * d / p;
      }
    }

    // Zone split at the current threshold (line 7).
    std::vector<int> z0;
    std::vector<int> z1;
    for (int id : seqs) {
      (batch.seq_lens[id] >= s0 ? z1 : z0).push_back(id);
    }

    // Quadratic-balanced fragmentation of intra-node sequences (lines 8-12).
    double c_total = 0;
    for (int id : z1) {
      const double len = static_cast<double>(batch.seq_lens[id]);
      c_total += len * len;
    }
    int cursor = 0;  // Round-robin start for fragment placement.
    if (!z1.empty()) {
      const double c_avg = c_total / p;
      for (int id : z1) {
        const int64_t len = batch.seq_lens[id];
        const int fragments = IntraNodeFragmentCount(static_cast<double>(len), c_avg, p);

        if (fragments == 1) {
          // A size-1 "ring" needs no communication: it executes as a local
          // kernel, after this node's z0 locals (the seed's end-of-stage
          // ring conversion, applied at emission time).
          locals_z1.push_back({id, len, cluster_.GlobalRank(node, cursor)});
          device_loads[cursor] += len;
          cursor = (cursor + 1) % p;
          continue;
        }

        int* out = EmitRing(&plan->intra_node, &s->intra_ring_count, &plan->rank_arena,
                            &s->arena_count, id, len, Zone::kIntraNode, fragments);
        for (int f = 0; f < fragments; ++f) {
          const int device = (cursor + f) % p;
          out[f] = cluster_.GlobalRank(node, device);
          device_loads[device] += len * (f + 1) / fragments - len * f / fragments;
        }
        cursor = (cursor + fragments) % p;
      }
    }

    // Local sequences onto least-loaded devices (lines 13-21).
    for (int id : z0) {
      const int64_t len = batch.seq_lens[id];
      const int idx = ArgMinLoad(device_loads);
      if (len + device_loads[idx] > capacity) {
        s0 = len;  // max(z0): z0 is sorted descending.
        retry = true;
        break;
      }
      device_loads[idx] += len;
      locals.push_back({id, len, cluster_.GlobalRank(node, idx)});
    }
  }

  // z0 locals land first, then the single-fragment z1 conversions (matching
  // the seed's locals-then-converted-rings order).
  plan->local.insert(plan->local.end(), locals.begin(), locals.end());
  plan->local.insert(plan->local.end(), locals_z1.begin(), locals_z1.end());
  for (int d = 0; d < p; ++d) {
    plan->tokens_per_rank[cluster_.GlobalRank(node, d)] += device_loads[d];
  }
  plan->threshold_s0[node] = s0;
}

// --- Intra-node stage (Alg. 2), heap fast path ---------------------------------

void SequencePartitioner::PartitionIntraNodeFast(const Batch& batch, int node,
                                                 const NodeAssignment& assignment,
                                                 PartitionPlan* plan, PlannerScratch* s) const {
  const int p = cluster_.gpus_per_node;
  const int rank_base = node * p;
  const int64_t capacity = options_.token_capacity;

  // The inter-node stage packs z01 sequences in length-descending order, so
  // each node's list arrives already sorted the way Alg. 2 wants it — the
  // reference path's per-node re-sort is a structural no-op.
  const std::vector<int>& seqs = assignment.sequences;
  const int n = static_cast<int>(seqs.size());

  int64_t s0 = capacity;  // Alg. 2 line 1.
  if (options_.max_local_threshold > 0) {
    s0 = std::min(s0, options_.max_local_threshold);
  }
  int boundary = ZoneBoundary(batch, seqs, s0);

  // Inter-node chunk spreading (lines 4-6) is zone-independent: hoist it out
  // of the restart loop. The aggregates the inter stage recorded expand to
  // the exact per-device loads in O(p^2) small-integer steps — no chunk
  // list at all.
  std::vector<int64_t>& chunk_base = s->device_base;
  planner_internal::ExpandChunkBase(s->node_chunk_whole, s->node_chunk_rem, node, p, &chunk_base);

  // Rings and z0 locals go straight into the plan; a restart rewinds this
  // node's headers, arena slots, and locals (earlier nodes are untouched).
  const size_t ring_base = s->intra_ring_count;
  const size_t arena_base = s->arena_count;
  const size_t local_base = plan->local.size();

  int restarts = 0;
  for (;;) {
    s->intra_ring_count = ring_base;
    s->arena_count = arena_base;
    s->locals.clear();  // Pending single-fragment z1 sequences.
    plan->local.resize(local_base);
    // Checkpointed chunk loads seed the heap; z1 fragments and z0 packing
    // are replayed on top (a restart changes c_avg, invalidating them).
    s->device_loads.Assign(chunk_base);

    // Quadratic-balanced fragmentation of intra-node sequences (lines 8-12),
    // via the shared pass (cursor progression and fragment counts are
    // equivalence-critical across engines).
    planner_internal::FragmentZone1(
        boundary, p, [&](int i) { return batch.seq_lens[seqs[i]]; },
        [&](int i, int64_t len, int fragments, int cursor) {
          int* out = EmitRing(&plan->intra_node, &s->intra_ring_count, &plan->rank_arena,
                              &s->arena_count, seqs[i], len, Zone::kIntraNode, fragments);
          planner_internal::ForEachFragment(len, fragments, cursor, p,
                                            [&](int f, int device, int64_t share) {
                                              out[f] = rank_base + device;
                                              s->device_loads.add(device, share);
                                            });
        },
        [&](int i, int64_t len, int device) {
          // A single-fragment "ring" is a local kernel; record it directly
          // (it lands after this node's z0 locals, like the reference path's
          // size-1 ring conversion).
          s->locals.push_back({seqs[i], len, rank_base + device});
          s->device_loads.add(device, len);
        });

    // Local sequences onto least-loaded devices (lines 13-21).
    bool overflowed = false;
    for (int i = boundary; i < n; ++i) {
      const int id = seqs[i];
      const int64_t len = batch.seq_lens[id];
      const int idx = s->device_loads.pack_min(len, capacity);
      if (idx < 0) {
        boundary = planner_internal::AdvanceZoneBoundary(
            n, i, [&](int j) { return batch.seq_lens[seqs[j]]; }, &s0);
        overflowed = true;
        break;
      }
      plan->local.push_back({id, len, rank_base + idx});
    }
    if (!overflowed) {
      break;
    }
    // The boundary strictly advances on every restart, so the chain is
    // bounded by the node's sequence count.
    ZCHECK_LE(++restarts, n) << "intra-node restart chain exceeded its bound";
  }

  // Pending single-fragment z1 sequences land after this node's z0 locals
  // (matching the reference path's ring-conversion order); rings are already
  // in the plan arena, and final per-device loads are read off the heap.
  plan->local.insert(plan->local.end(), s->locals.begin(), s->locals.end());
  for (int d = 0; d < p; ++d) {
    plan->tokens_per_rank[rank_base + d] += s->device_loads.load(d);
  }
  plan->threshold_s0[node] = s0;
}

// --- Driver -----------------------------------------------------------------

PartitionPlan SequencePartitioner::Partition(const Batch& batch) const {
  PlannerScratch scratch;
  return Partition(batch, &scratch);
}

PartitionPlan SequencePartitioner::Partition(const Batch& batch, PlannerScratch* scratch) const {
  PartitionPlan plan;
  Partition(batch, scratch, &plan);
  return plan;
}

void SequencePartitioner::Partition(const Batch& batch, PlannerScratch* scratch,
                                    PartitionPlan* plan) const {
  ZCHECK_GT(batch.size(), 0);
  ZCHECK(scratch != nullptr);
  ZCHECK(plan != nullptr);
  scratch->node_loads.ResetOps();
  scratch->device_loads.ResetOps();

  plan->local.clear();
  plan->tokens_per_rank.assign(cluster_.world_size(), 0);
  plan->threshold_s0.assign(cluster_.num_nodes, 0);
  plan->threshold_s1 = 0;

  // Ring headers and arena slots are cursor-managed (storage recycled
  // across calls), then trimmed to the live counts at the end.
  scratch->inter_ring_count = 0;
  scratch->intra_ring_count = 0;
  scratch->arena_count = 0;

  if (options_.fast_path && options_.pool != nullptr) {
    PartitionParallel(batch, scratch, plan, options_.pool);
    // The key-build pass already summed the batch; skip the O(S) re-sum.
    ZCHECK_EQ(plan->total_tokens(), scratch->batch_total)
        << "partitioner must conserve tokens";
    return;
  }
  if (options_.fast_path) {
    PartitionInterNodeFast(batch, plan, scratch);
    for (int node = 0; node < cluster_.num_nodes; ++node) {
      PartitionIntraNodeFast(batch, node, scratch->assignments[node], plan, scratch);
    }
  } else {
    PartitionInterNodeNaive(batch, plan, scratch);
    for (int node = 0; node < cluster_.num_nodes; ++node) {
      PartitionIntraNodeNaive(batch, node, scratch->assignments[node], plan, scratch);
    }
  }
  plan->inter_node.resize(scratch->inter_ring_count);
  plan->intra_node.resize(scratch->intra_ring_count);
  plan->rank_arena.resize(scratch->arena_count);

  ZCHECK_EQ(plan->total_tokens(), batch.total_tokens())
      << "partitioner must conserve tokens";
}

}  // namespace zeppelin
