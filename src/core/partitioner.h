// Hierarchical sequence partitioner (paper §3.1, Algorithms 1 and 2).
//
// Two-level planning executed once per iteration on the global batch:
//
//   Inter-node stage (Alg. 1): determines the boundary s1 between the
//   inter-node zone z2 and everything shorter (z01), chunks each z2 sequence
//   over ceil(|s| / s_avg) node buckets (communication — the bottleneck at
//   this level — is balanced by giving cross-node sequences the coarsest
//   granularity that still fits), then packs z01 sequences into the
//   least-loaded node buckets. If a z01 sequence overflows node capacity P*L,
//   s1 shrinks to max(z01) and the stage repeats.
//
//   Intra-node stage (Alg. 2): per node, spreads that node's inter-node
//   chunks over all P devices, determines the boundary s0 between intra-node
//   z1 and local z0 sequences, splits each z1 sequence into
//   ceil(|s|^2 / c_avg) fragments (quadratic work, the bottleneck at this
//   level, is balanced) placed round-robin, then packs local sequences onto
//   the least-loaded devices, shrinking s0 and repeating on overflow.
//
// The output plan lists, per zone, each sequence's ring group (the ordered
// ranks that share it) — exactly what the attention engine (§3.2) executes.
#ifndef SRC_CORE_PARTITIONER_H_
#define SRC_CORE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "src/core/zones.h"
#include "src/data/sampler.h"
#include "src/topology/cluster.h"

namespace zeppelin {

// A sequence executed as a ring across `ranks` (inter- or intra-node zone).
struct RingSequence {
  int seq_id = 0;
  int64_t length = 0;
  Zone zone = Zone::kIntraNode;
  std::vector<int> ranks;  // Ring order; position i holds chunks i and 2G-1-i.

  int group_size() const { return static_cast<int>(ranks.size()); }
};

// A sequence processed entirely on one device (local zone).
struct LocalSequence {
  int seq_id = 0;
  int64_t length = 0;
  int rank = 0;
};

struct PartitionPlan {
  std::vector<RingSequence> inter_node;  // Queue order for the engine.
  std::vector<RingSequence> intra_node;
  std::vector<LocalSequence> local;

  // Attention-layout token count per rank (input to the remapping layer).
  std::vector<int64_t> tokens_per_rank;

  // Final thresholds after iterative refinement (diagnostics / tests).
  int64_t threshold_s1 = 0;               // Inter-node boundary.
  std::vector<int64_t> threshold_s0;      // Per-node local boundary.

  int64_t total_tokens() const;
  // max/mean of tokens_per_rank (1.0 = perfectly token-balanced).
  double TokenImbalance() const;
};

class SequencePartitioner {
 public:
  struct Options {
    // Token capacity L of each device (Alg. 1/2 input).
    int64_t token_capacity = 0;
    // Optional caps on the initial zone thresholds (0 = use the algorithm's
    // capacity-derived defaults P*L and L). Setting these to the Fig. 5
    // overlap crossovers forces sequences into larger rings earlier — the
    // "zone-aware initialization" extension (design ablation D6); the
    // iterative refinement still only ever shrinks the thresholds.
    int64_t max_inter_threshold = 0;  // Caps s1.
    int64_t max_local_threshold = 0;  // Caps s0.
  };

  SequencePartitioner(const ClusterSpec& cluster, Options options);

  PartitionPlan Partition(const Batch& batch) const;

 private:
  struct NodeAssignment {
    // (seq_id, chunk length at this node) for inter-node sequences.
    std::vector<std::pair<int, int64_t>> inter_chunks;
    // Sequence ids (into batch) of z01 sequences packed on this node.
    std::vector<int> sequences;
  };

  // Alg. 1. Fills `plan->inter_node` and returns per-node assignments.
  std::vector<NodeAssignment> PartitionInterNode(const Batch& batch, PartitionPlan* plan) const;

  // Alg. 2 for one node. Appends to plan->intra_node / plan->local and
  // accumulates plan->tokens_per_rank.
  void PartitionIntraNode(const Batch& batch, int node, const NodeAssignment& assignment,
                          PartitionPlan* plan) const;

  ClusterSpec cluster_;
  Options options_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_PARTITIONER_H_
