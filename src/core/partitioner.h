// Hierarchical sequence partitioner (paper §3.1, Algorithms 1 and 2).
//
// Two-level planning executed once per iteration on the global batch:
//
//   Inter-node stage (Alg. 1): determines the boundary s1 between the
//   inter-node zone z2 and everything shorter (z01), chunks each z2 sequence
//   over ceil(|s| / s_avg) node buckets (communication — the bottleneck at
//   this level — is balanced by giving cross-node sequences the coarsest
//   granularity that still fits), then packs z01 sequences into the
//   least-loaded node buckets. If a z01 sequence overflows node capacity P*L,
//   s1 shrinks to max(z01) and the stage repeats.
//
//   Intra-node stage (Alg. 2): per node, spreads that node's inter-node
//   chunks over all P devices, determines the boundary s0 between intra-node
//   z1 and local z0 sequences, splits each z1 sequence into
//   ceil(|s|^2 / c_avg) fragments (quadratic work, the bottleneck at this
//   level, is balanced) placed round-robin, then packs local sequences onto
//   the least-loaded devices, shrinking s0 and repeating on overflow.
//
// The output plan lists, per zone, each sequence's ring group (the ordered
// ranks that share it) — exactly what the attention engine (§3.2) executes.
//
// Three execution paths produce bit-identical plans:
//
//   Naive path: the reference linear-scan/partial-sort greedy, structurally
//   the seed algorithm. Kept both as the equivalence oracle for tests and as
//   a one-shot fallback should a fast path's restart chain ever exceed its
//   worst-case bound.
//
//   Fast path: packing queries go through an addressable min-heap
//   (LoadTracker), so each placement costs O(log P) instead of an O(P) scan
//   or an O(P log P) sort, and overflow restarts are incremental — the
//   length-descending order, its prefix sums, and the zone boundary index are
//   kept across restarts, so a restart only replays placements (which the
//   boundary shift invalidates wholesale, because s_avg / c_avg change)
//   without re-sorting, re-splitting zones, or reallocating. One full pass is
//   O((S + P) log P). This is the PR-1 engine and the serial baseline the
//   planner-scaling bench compares against.
//
//   Parallel/sharded engine (Options::pool != nullptr): the same algorithm
//   rearchitected for bulk work and a ThreadPool. Sequences are kept as
//   packed (length, id) keys sorted by one value radix sort; the z01 packing
//   runs through the round-batched GreedyPacker (bulk-committing blocks of
//   placements instead of per-sequence heap walks) and shards its output
//   directly into per-node key lists; the per-node intra-node stage (Alg. 2)
//   is embarrassingly parallel and runs as one task per node on the pool with
//   per-worker scratch slabs; plan materialization merges per-node results at
//   precomputed offsets. The z01 *decision stream* itself stays sequential —
//   greedy list scheduling is P-complete, so there is no exact parallel
//   formulation — but everything around it (sorting, sharding, Alg. 2,
//   merges) distributes across the pool.
//
// Determinism contract: all three paths break packing ties identically
// (lowest load, then lowest bucket index), every pool phase uses static task
// ownership and writes to slots derived from node/sequence indices alone, and
// per-node results are merged in node order. Plans are therefore byte-
// identical across paths AND across any thread count — the property
// tests/planner_fastpath_test.cpp and tests/parallel_planner_test.cpp pin.
#ifndef SRC_CORE_PARTITIONER_H_
#define SRC_CORE_PARTITIONER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/greedy_packer.h"
#include "src/common/load_tracker.h"
#include "src/core/zones.h"
#include "src/data/sampler.h"
#include "src/topology/cluster.h"

namespace zeppelin {

class ThreadPool;

// A sequence executed as a ring across `ranks` (inter- or intra-node zone).
struct RingSequence {
  int seq_id = 0;
  int64_t length = 0;
  Zone zone = Zone::kIntraNode;
  std::vector<int> ranks;  // Ring order; position i holds chunks i and 2G-1-i.

  int group_size() const { return static_cast<int>(ranks.size()); }

  bool operator==(const RingSequence&) const = default;
};

// A sequence processed entirely on one device (local zone).
struct LocalSequence {
  int seq_id = 0;
  int64_t length = 0;
  int rank = 0;

  bool operator==(const LocalSequence&) const = default;
};

struct PartitionPlan {
  std::vector<RingSequence> inter_node;  // Queue order for the engine.
  std::vector<RingSequence> intra_node;
  std::vector<LocalSequence> local;

  // Attention-layout token count per rank (input to the remapping layer).
  std::vector<int64_t> tokens_per_rank;

  // Final thresholds after iterative refinement (diagnostics / tests).
  int64_t threshold_s1 = 0;               // Inter-node boundary.
  std::vector<int64_t> threshold_s0;      // Per-node local boundary.

  int64_t total_tokens() const;
  // max/mean of tokens_per_rank (1.0 = perfectly token-balanced).
  double TokenImbalance() const;

  // Byte-identity across planner paths (the fast-path equivalence contract).
  bool operator==(const PartitionPlan&) const = default;
};

// Per-node output of the inter-node stage, input to the intra-node stage.
struct NodeAssignment {
  // (seq_id, chunk length at this node) for inter-node sequences.
  std::vector<std::pair<int, int64_t>> inter_chunks;
  // Ids (into batch) of z01 sequences packed on this node, length-descending
  // (the packing order of Alg. 1).
  std::vector<int> sequences;
};

// Per-node output buffer of the parallel intra-node stage. Every node owns
// exactly one of these, so pool tasks write without synchronization and the
// merge pass concatenates them in node order (the determinism contract).
struct NodeIntraResult {
  std::vector<RingSequence> rings;  // Multi-fragment z1 rings (cursor-recycled).
  size_t ring_count = 0;
  std::vector<LocalSequence> locals;     // z0 locals (truncated on restart).
  std::vector<LocalSequence> locals_z1;  // Single-fragment z1 locals.
  std::vector<int64_t> device_loads;     // Final per-device token loads.
  int64_t threshold_s0 = 0;
};

// Per-worker scratch slab for the parallel intra-node stage: context c of the
// pool always uses slab c (static ownership), so slabs are reused across
// Partition() calls without locking or steady-state allocation.
struct IntraWorkerSlab {
  GreedyPacker packer;              // z0 device packing.
  std::vector<int64_t> loads;       // Plain per-device loads for the z1 phase.
  std::vector<int64_t> chunk_base;  // Inter-node chunk spreading per device.
  // Per-context partial chunk aggregates for the parallel re-label pass;
  // merged (integer adds, order-free) into the global aggregates after.
  std::vector<int64_t> relabel_whole;
  std::vector<int64_t> relabel_rem;
};

// Reusable planning workspace. A planner that keeps one of these across
// iterations (see ZeppelinStrategy) runs Partition() without steady-state
// heap allocations: every intermediate lives here and only grows. The
// contents are meaningless between calls.
struct PlannerScratch {
  // Inter-node stage.
  std::vector<int> order;            // Sequence ids, length-descending.
  std::vector<int> radix_tmp;        // Fast-path radix-sort scatter buffer.
  std::vector<int> radix_count;      // Fast-path radix-sort digit counts.
  std::vector<int64_t> prefix_lens;  // prefix_lens[i] = sum of first i lens.
  LoadTracker node_loads;
  std::vector<int> least;            // k_least() output.
  std::vector<NodeAssignment> assignments;
  std::vector<int> placed_node;      // placed_node[i]: node of z01 seq order[i].
  std::vector<std::vector<int>> node_ranks;  // Per node: its global ranks.
  // Fast-path aggregate of each node's inter-node chunks: the intra stage
  // only needs the per-device spread, which is fully determined by the sum
  // of whole shares floor(chunk/p) and a histogram of remainders chunk%p —
  // so chunks are never materialized as (id, len) lists on the fast path.
  std::vector<int64_t> node_chunk_whole;  // Per node: sum of floor(chunk/p).
  std::vector<int64_t> node_chunk_rem;    // Flat [node*p + r]: count of chunks with chunk%p == r.

  // Intra-node stage.
  LoadTracker device_loads;
  std::vector<int64_t> device_base;  // Chunk loads before z1/z0 packing.
  std::vector<RingSequence> intra_rings;
  std::vector<LocalSequence> locals;

  // Fast-path ring cursors: plan ring vectors are overwritten in place and
  // trimmed once at the end, so ring rank storage survives restarts and
  // whole Partition() calls instead of being freed and reallocated.
  size_t inter_ring_count = 0;
  size_t intra_ring_count = 0;
  size_t scratch_ring_count = 0;

  // Parallel/sharded engine. Sequences travel as packed 64-bit keys
  // ((kLenMask - len) << 20 | id): one value radix sort yields the
  // length-descending, id-ascending order, and the keys themselves are what
  // the z01 packing shards into per-node lists — no gather-heavy id
  // indirection anywhere on the hot path.
  std::vector<uint64_t> keys;            // Sorted ascending == length-descending.
  std::vector<uint64_t> keys_tmp;        // Radix scatter buffer.
  std::vector<int> key_count;            // Radix digit histogram.
  GreedyPacker node_packer;              // z01 packing onto nodes.
  std::vector<int64_t> node_loads_tmp;   // Heap -> packer seed buffer.
  std::vector<std::vector<uint64_t>> node_items;  // Per node: its z01 keys.
  std::vector<NodeIntraResult> intra_results;     // Per node: Alg. 2 output.
  std::vector<IntraWorkerSlab> intra_slabs;       // Per pool context.
  std::vector<size_t> local_offsets;     // Per node: slot in plan->local.
  int64_t batch_total = 0;               // Total tokens, folded into key build.

  // Total LoadTracker ops of the last Partition() (regression guard).
  int64_t heap_ops() const { return node_loads.ops() + device_loads.ops(); }
  // Same guard for the parallel engine's packers (bulk commits keep this
  // near the sequence count instead of S log P).
  int64_t packer_ops() const {
    int64_t total = node_packer.ops();
    for (const IntraWorkerSlab& slab : intra_slabs) {
      total += slab.packer.ops();
    }
    return total;
  }
};

class SequencePartitioner {
 public:
  struct Options {
    // Token capacity L of each device (Alg. 1/2 input).
    int64_t token_capacity = 0;
    // Optional caps on the initial zone thresholds (0 = use the algorithm's
    // capacity-derived defaults P*L and L). Setting these to the Fig. 5
    // overlap crossovers forces sequences into larger rings earlier — the
    // "zone-aware initialization" extension (design ablation D6); the
    // iterative refinement still only ever shrinks the thresholds.
    int64_t max_inter_threshold = 0;  // Caps s1.
    int64_t max_local_threshold = 0;  // Caps s0.
    // Selects the O((S + P) log P) heap-based fast path. Plans are
    // bit-identical either way; false forces the reference greedy.
    bool fast_path = true;
    // Non-owning. When set (and fast_path is true), Partition() runs the
    // parallel/sharded engine on this pool: round-batched z01 packing, one
    // intra-node task per node with per-context scratch slabs, and offset-
    // merged plan materialization. A pool with a single context runs the same
    // engine inline — plans are bit-identical at every thread count and to
    // both serial paths. The pool must outlive the partitioner's calls.
    ThreadPool* pool = nullptr;
    // Escape hatch: if a fast path's restart chain exceeds its worst-case
    // bound (cannot happen unless the invariants are broken), run the naive
    // path once instead of aborting.
    bool naive_fallback = true;
  };

  SequencePartitioner(const ClusterSpec& cluster, Options options);

  // Reuses `options`-compatible state; cheap enough to call per batch when
  // the capacity changes (e.g. capacity derived from batch size).
  void set_options(Options options);
  const Options& options() const { return options_; }
  const ClusterSpec& cluster() const { return cluster_; }

  PartitionPlan Partition(const Batch& batch) const;
  // Allocation-hoisted form: all intermediates live in `scratch`.
  PartitionPlan Partition(const Batch& batch, PlannerScratch* scratch) const;
  // Fully hoisted form: additionally recycles `plan`'s storage (pass the
  // previous iteration's plan back in); `plan` is reset, not appended to.
  void Partition(const Batch& batch, PlannerScratch* scratch, PartitionPlan* plan) const;

 private:
  // Alg. 1. Fills `plan->inter_node` / single-node rings and
  // `scratch->assignments`.
  void PartitionInterNodeFast(const Batch& batch, PartitionPlan* plan,
                              PlannerScratch* scratch) const;
  void PartitionInterNodeNaive(const Batch& batch, PartitionPlan* plan,
                               PlannerScratch* scratch) const;

  // Alg. 2 for one node. Appends to plan->intra_node / plan->local and
  // accumulates plan->tokens_per_rank.
  void PartitionIntraNodeFast(const Batch& batch, int node, const NodeAssignment& assignment,
                              PartitionPlan* plan, PlannerScratch* scratch) const;
  void PartitionIntraNodeNaive(const Batch& batch, int node, const NodeAssignment& assignment,
                               PartitionPlan* plan, PlannerScratch* scratch) const;

  // Parallel/sharded engine (partitioner_parallel.cc). Same plan bytes as the
  // serial paths at any pool size.
  void PartitionParallel(const Batch& batch, PlannerScratch* scratch, PartitionPlan* plan,
                         ThreadPool* pool) const;
  // Alg. 1 with round-batched z01 packing sharded into scratch->node_items;
  // the pool materializes re-labelled single-node rings in parallel.
  void PartitionInterNodeSharded(const Batch& batch, PartitionPlan* plan,
                                 PlannerScratch* scratch, ThreadPool* pool) const;
  // Alg. 2 for one node into scratch->intra_results[node], using the scratch
  // slab owned by pool context `context`.
  void PartitionIntraNodeSharded(int node, int context, PlannerScratch* scratch) const;

  ClusterSpec cluster_;
  Options options_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_PARTITIONER_H_
