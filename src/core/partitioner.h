// Hierarchical sequence partitioner (paper §3.1, Algorithms 1 and 2).
//
// Two-level planning executed once per iteration on the global batch:
//
//   Inter-node stage (Alg. 1): determines the boundary s1 between the
//   inter-node zone z2 and everything shorter (z01), chunks each z2 sequence
//   over ceil(|s| / s_avg) node buckets (communication — the bottleneck at
//   this level — is balanced by giving cross-node sequences the coarsest
//   granularity that still fits), then packs z01 sequences into the
//   least-loaded node buckets. If a z01 sequence overflows node capacity P*L,
//   s1 shrinks to max(z01) and the stage repeats.
//
//   Intra-node stage (Alg. 2): per node, spreads that node's inter-node
//   chunks over all P devices, determines the boundary s0 between intra-node
//   z1 and local z0 sequences, splits each z1 sequence into
//   ceil(|s|^2 / c_avg) fragments (quadratic work, the bottleneck at this
//   level, is balanced) placed round-robin, then packs local sequences onto
//   the least-loaded devices, shrinking s0 and repeating on overflow.
//
// The output plan lists, per zone, each sequence's ring group (the ordered
// ranks that share it) — exactly what the attention engine (§3.2) executes.
// Rings are stored flat: per-ring headers (RingRef) index into one contiguous
// rank arena owned by the plan, so materializing a 64k-ring plan is a handful
// of bulk array writes instead of 64k vector constructions (see
// docs/PLAN_FORMAT.md for the layout and its invariants).
//
// Three execution paths produce byte-identical plans:
//
//   Naive path: the reference linear-scan/partial-sort greedy, structurally
//   the seed algorithm. Kept both as the equivalence oracle for tests and as
//   a one-shot fallback should a fast path's restart chain ever exceed its
//   worst-case bound.
//
//   Fast path: packing queries go through an addressable min-heap
//   (LoadTracker), so each placement costs O(log P) instead of an O(P) scan
//   or an O(P log P) sort, and overflow restarts are incremental — the
//   length-descending order, its prefix sums, and the zone boundary index are
//   kept across restarts, so a restart only replays placements (which the
//   boundary shift invalidates wholesale, because s_avg / c_avg change)
//   without re-sorting, re-splitting zones, or reallocating. One full pass is
//   O((S + P) log P). This is the PR-1 engine and the serial baseline the
//   planner-scaling bench compares against.
//
//   Parallel/sharded engine (Options::pool != nullptr): the same algorithm
//   rearchitected for bulk work and a ThreadPool. Sequences are kept as
//   packed (length, id) keys sorted by one value radix sort; the z01 packing
//   runs through the round-batched GreedyPacker (bulk-committing blocks of
//   placements instead of per-sequence heap walks) and shards its output
//   directly into per-node key lists; the per-node intra-node stage (Alg. 2)
//   is embarrassingly parallel and runs as one task per node on the pool with
//   per-worker scratch slabs; plan materialization merges per-node ring
//   stores and locals into the plan's flat arrays at precomputed offsets.
//   The z01 *decision stream* itself stays sequential — greedy list
//   scheduling is P-complete, so there is no exact parallel formulation —
//   but everything around it (sorting, sharding, Alg. 2, merges) distributes
//   across the pool.
//
// Determinism contract: all three paths break packing ties identically
// (lowest load, then lowest bucket index), rings are emitted in the same
// global order (so arena offsets match), every pool phase uses static task
// ownership and writes to slots derived from node/sequence indices alone, and
// per-node results are merged in node order. Plans are therefore byte-
// identical across paths AND across any thread count — header vectors and
// the rank arena compare equal with the defaulted operator== — the property
// tests/planner_fastpath_test.cpp and tests/parallel_planner_test.cpp pin.
#ifndef SRC_CORE_PARTITIONER_H_
#define SRC_CORE_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/greedy_packer.h"
#include "src/common/load_tracker.h"
#include "src/core/zones.h"
#include "src/data/sampler.h"
#include "src/topology/cluster.h"

namespace zeppelin {

class ThreadPool;

// Non-owning view of one ring: the header fields plus the resolved rank span.
// This is what plan consumers (attention engine, metrics, baselines) execute;
// position i of `ranks` holds chunks i and 2G-1-i of the sequence.
struct RingView {
  int seq_id = 0;
  int64_t length = 0;
  Zone zone = Zone::kIntraNode;
  std::span<const int> ranks;  // Ring order; valid while the owner is alive.

  int group_size() const { return static_cast<int>(ranks.size()); }
};

// Flat ring header: identifies a sequence's ring group as a span
// [rank_offset, rank_offset + rank_count) into the owning container's rank
// arena (PartitionPlan::rank_arena or RingStore::arena). Plain data — the
// byte-identity contract compares these directly.
struct RingRef {
  int seq_id = 0;
  int64_t length = 0;
  Zone zone = Zone::kIntraNode;
  uint32_t rank_offset = 0;  // First rank slot in the arena.
  uint32_t rank_count = 0;   // Ring group size G.

  int group_size() const { return static_cast<int>(rank_count); }

  bool operator==(const RingRef&) const = default;
};

// Owning ring (header + its own rank vector) for producers that build rings
// outside a plan arena: baselines (hybrid DP's CP groups), ablation
// strategies, and tests. Converts implicitly to the RingView the attention
// engine consumes.
struct RingSequence {
  int seq_id = 0;
  int64_t length = 0;
  Zone zone = Zone::kIntraNode;
  std::vector<int> ranks;  // Ring order; position i holds chunks i and 2G-1-i.

  int group_size() const { return static_cast<int>(ranks.size()); }
  operator RingView() const { return {seq_id, length, zone, ranks}; }

  bool operator==(const RingSequence&) const = default;
};

// A sequence processed entirely on one device (local zone).
struct LocalSequence {
  int seq_id = 0;
  int64_t length = 0;
  int rank = 0;

  bool operator==(const LocalSequence&) const = default;
};

// Lazy range adaptor over a ring-header queue: dereferencing yields RingView,
// so range-for over a plan's rings stays ergonomic:
//
//   for (RingView ring : plan.rings(plan.inter_node)) { ... ring.ranks ... }
class RingViewRange {
 public:
  class Iterator {
   public:
    Iterator(const RingRef* ref, const int* arena) : ref_(ref), arena_(arena) {}
    RingView operator*() const {
      return {ref_->seq_id, ref_->length, ref_->zone,
              std::span<const int>(arena_ + ref_->rank_offset, ref_->rank_count)};
    }
    Iterator& operator++() {
      ++ref_;
      return *this;
    }
    bool operator==(const Iterator& other) const { return ref_ == other.ref_; }
    bool operator!=(const Iterator& other) const { return ref_ != other.ref_; }

   private:
    const RingRef* ref_;
    const int* arena_;
  };

  RingViewRange(const std::vector<RingRef>& refs, const std::vector<int>& arena)
      : refs_(&refs), arena_(arena.data()) {}

  Iterator begin() const { return {refs_->data(), arena_}; }
  Iterator end() const { return {refs_->data() + refs_->size(), arena_}; }
  size_t size() const { return refs_->size(); }
  bool empty() const { return refs_->empty(); }

 private:
  const std::vector<RingRef>* refs_;
  const int* arena_;
};

// The planner's output: three sequence queues (two ring queues + locals) in
// engine execution order, the per-rank token layout, and the refined zone
// thresholds. Ring rank lists live in one flat `rank_arena`; headers index
// into it (see docs/PLAN_FORMAT.md). Copying or comparing a plan is therefore
// a few bulk array operations regardless of ring count.
struct PartitionPlan {
  std::vector<RingRef> inter_node;  // Queue order for the engine.
  std::vector<RingRef> intra_node;
  std::vector<LocalSequence> local;

  // All ring rank lists, concatenated in ring emission order. Invariants:
  // spans of live rings are disjoint, gap-free, and cover the arena exactly.
  std::vector<int> rank_arena;

  // Attention-layout token count per rank (input to the remapping layer).
  std::vector<int64_t> tokens_per_rank;

  // Final thresholds after iterative refinement (diagnostics / tests).
  int64_t threshold_s1 = 0;               // Inter-node boundary.
  std::vector<int64_t> threshold_s0;      // Per-node local boundary.

  // Resolves a header of THIS plan to its rank span (valid until the plan's
  // arena is next mutated).
  std::span<const int> ranks(const RingRef& ring) const {
    return {rank_arena.data() + ring.rank_offset, ring.rank_count};
  }
  // Header + span in one view (what EmitRingSequence consumes).
  RingView view(const RingRef& ring) const {
    return {ring.seq_id, ring.length, ring.zone, ranks(ring)};
  }
  // Iteration adaptor over one of THIS plan's header queues.
  RingViewRange rings(const std::vector<RingRef>& queue) const {
    return {queue, rank_arena};
  }

  // Producer API: appends a ring to `queue` (which must be this plan's
  // inter_node or intra_node), copying `ring_ranks` into the arena. Used by
  // external producers (ablation strategies, tests); the planner engines emit
  // through cursor-recycled storage instead (PlannerScratch).
  void AddRing(std::vector<RingRef>& queue, int seq_id, int64_t length, Zone zone,
               std::span<const int> ring_ranks);

  int64_t total_tokens() const;
  // max/mean of tokens_per_rank (1.0 = perfectly token-balanced).
  double TokenImbalance() const;

  // FNV-1a digest of the plan's logical content: ring headers with their
  // resolved rank spans (content-addressed through the arena), locals, the
  // per-rank token layout, and the thresholds. Per-queue entries combine
  // order-independently, so the digest is invariant to arena layout and to
  // queue permutation: two plans digest equal iff they describe the same ring
  // set, local set, rank loads, and thresholds — the equivalence currency of
  // the delta planner, where byte-identity is impossible by design (see
  // docs/DELTA_PLANS.md). O(plan), no materialized copies. Byte-identical
  // plans always digest equal, so full-replan engines can also use it as a
  // cheap identity probe.
  uint64_t StateDigest() const;

  // Versioned binary wire format (src/core/plan_io.{h,cc}; spec in
  // docs/PLAN_FORMAT.md "Wire format"): Serialize() emits the canonical byte
  // string (magic + version + headers + arena + digest trailer; round-trips
  // byte-identically), Deserialize() parses and digest-checks it, returning
  // false on any corruption — plan_io.h exposes the granular status codes.
  // `max_world` > 0 additionally rejects plans whose rank universe exceeds
  // the target fabric (PlanIoStatus::kRankUniverse).
  std::string Serialize() const;
  bool Deserialize(std::string_view bytes, int max_world = 0);

  // Byte-identity across planner paths (the fast-path equivalence contract):
  // headers compare field-wise, the rank arena as one flat array.
  bool operator==(const PartitionPlan&) const = default;
};

// Growable flat ring storage (headers + one rank arena) with cursor-recycled
// slots: Reset() rewinds the cursors without freeing, Append() reuses slots.
// The parallel engine's per-node intra results are RingStores whose contents
// are offset-shifted into the plan arena by the merge pass.
struct RingStore {
  std::vector<RingRef> refs;
  std::vector<int> arena;
  size_t ref_count = 0;   // Live headers; refs beyond this are recycled slots.
  size_t rank_count = 0;  // Live rank slots in `arena`.

  void Reset() {
    ref_count = 0;
    rank_count = 0;
  }
  // Appends a header and reserves `count` rank slots at the cursor; returns
  // the slot pointer (valid until the next Append grows the arena).
  int* Append(int seq_id, int64_t length, Zone zone, int count);
};

// Per-node output of the inter-node stage, input to the intra-node stage.
struct NodeAssignment {
  // (seq_id, chunk length at this node) for inter-node sequences.
  std::vector<std::pair<int, int64_t>> inter_chunks;
  // Ids (into batch) of z01 sequences packed on this node, length-descending
  // (the packing order of Alg. 1).
  std::vector<int> sequences;
};

// Per-node output buffer of the parallel intra-node stage. Every node owns
// exactly one of these, so pool tasks write without synchronization and the
// merge pass copies them into the plan at precomputed offsets, in node order
// (the determinism contract).
struct NodeIntraResult {
  RingStore rings;                       // Multi-fragment z1 rings (node-local offsets).
  std::vector<LocalSequence> locals;     // z0 locals (truncated on restart).
  std::vector<LocalSequence> locals_z1;  // Single-fragment z1 locals.
  std::vector<int64_t> device_loads;     // Final per-device token loads.
  int64_t threshold_s0 = 0;
};

// Per-worker scratch slab for the parallel intra-node stage: context c of the
// pool always uses slab c (static ownership), so slabs are reused across
// Partition() calls without locking or steady-state allocation.
struct IntraWorkerSlab {
  GreedyPacker packer;              // z0 device packing.
  std::vector<int64_t> loads;       // Plain per-device loads for the z1 phase.
  std::vector<int64_t> chunk_base;  // Inter-node chunk spreading per device.
  // Per-context partial chunk aggregates for the parallel re-label pass;
  // merged (integer adds, order-free) into the global aggregates after.
  std::vector<int64_t> relabel_whole;
  std::vector<int64_t> relabel_rem;
};

// Reusable planning workspace. A planner that keeps one of these across
// iterations (see ZeppelinStrategy) runs Partition() without steady-state
// heap allocations: every intermediate lives here and only grows. The
// contents are meaningless between calls.
struct PlannerScratch {
  // Inter-node stage.
  std::vector<int> order;            // Sequence ids, length-descending.
  std::vector<int> radix_tmp;        // Fast-path radix-sort scatter buffer.
  std::vector<int> radix_count;      // Fast-path radix-sort digit counts.
  std::vector<int64_t> prefix_lens;  // prefix_lens[i] = sum of first i lens.
  LoadTracker node_loads;
  std::vector<int> least;            // k_least() output.
  std::vector<NodeAssignment> assignments;
  std::vector<int> placed_node;      // placed_node[i]: node of z01 seq order[i].
  std::vector<std::vector<int>> node_ranks;  // Per node: its global ranks.
  // Fast-path aggregate of each node's inter-node chunks: the intra stage
  // only needs the per-device spread, which is fully determined by the sum
  // of whole shares floor(chunk/p) and a histogram of remainders chunk%p —
  // so chunks are never materialized as (id, len) lists on the fast path.
  std::vector<int64_t> node_chunk_whole;  // Per node: sum of floor(chunk/p).
  std::vector<int64_t> node_chunk_rem;    // Flat [node*p + r]: count of chunks with chunk%p == r.

  // Intra-node stage.
  LoadTracker device_loads;
  std::vector<int64_t> device_base;  // Chunk loads before z1/z0 packing.
  std::vector<LocalSequence> locals;

  // Plan emission cursors: ring headers and arena slots in the plan are
  // overwritten in place and trimmed once at the end, so header and rank
  // storage survives restarts and whole Partition() calls instead of being
  // freed and reallocated. `arena_count` is the live-int cursor into
  // plan->rank_arena, shared by both ring queues (rings consume consecutive
  // slots in emission order — the gap-free arena invariant).
  size_t inter_ring_count = 0;
  size_t intra_ring_count = 0;
  size_t arena_count = 0;

  // Parallel/sharded engine. Sequences travel as packed 64-bit keys
  // ((kLenMask - len) << 20 | id): one value radix sort yields the
  // length-descending, id-ascending order, and the keys themselves are what
  // the z01 packing shards into per-node lists — no gather-heavy id
  // indirection anywhere on the hot path.
  std::vector<uint64_t> keys;            // Sorted ascending == length-descending.
  std::vector<uint64_t> keys_tmp;        // Radix scatter buffer.
  std::vector<int> key_count;            // Radix digit histogram.
  GreedyPacker node_packer;              // z01 packing onto nodes.
  std::vector<int64_t> node_loads_tmp;   // Heap -> packer seed buffer.
  std::vector<std::vector<uint64_t>> node_items;  // Per node: its z01 keys.
  std::vector<NodeIntraResult> intra_results;     // Per node: Alg. 2 output.
  std::vector<IntraWorkerSlab> intra_slabs;       // Per pool context.
  std::vector<size_t> local_offsets;     // Per node: slot in plan->local.
  std::vector<size_t> ring_offsets;      // Per node: header slot in plan->intra_node.
  std::vector<size_t> rank_offsets;      // Per node: rank slot in plan->rank_arena.
  int64_t batch_total = 0;               // Total tokens, folded into key build.

  // Total LoadTracker ops of the last Partition() (regression guard).
  int64_t heap_ops() const { return node_loads.ops() + device_loads.ops(); }
  // Same guard for the parallel engine's packers (bulk commits keep this
  // near the sequence count instead of S log P).
  int64_t packer_ops() const {
    int64_t total = node_packer.ops();
    for (const IntraWorkerSlab& slab : intra_slabs) {
      total += slab.packer.ops();
    }
    return total;
  }
};

// Runs Alg. 1/2 on a batch for a fixed cluster, producing a PartitionPlan.
// Engine selection (naive / fast / parallel) is an Options concern; plans are
// byte-identical across engines (see the header comment).
class SequencePartitioner {
 public:
  struct Options {
    // Token capacity L of each device (Alg. 1/2 input).
    int64_t token_capacity = 0;
    // Optional caps on the initial zone thresholds (0 = use the algorithm's
    // capacity-derived defaults P*L and L). Setting these to the Fig. 5
    // overlap crossovers forces sequences into larger rings earlier — the
    // "zone-aware initialization" extension (design ablation D6); the
    // iterative refinement still only ever shrinks the thresholds.
    int64_t max_inter_threshold = 0;  // Caps s1.
    int64_t max_local_threshold = 0;  // Caps s0.
    // Selects the O((S + P) log P) heap-based fast path. Plans are
    // byte-identical either way; false forces the reference greedy.
    bool fast_path = true;
    // Non-owning. When set (and fast_path is true), Partition() runs the
    // parallel/sharded engine on this pool: round-batched z01 packing, one
    // intra-node task per node with per-context scratch slabs, and offset-
    // merged plan materialization. A pool with a single context runs the same
    // engine inline — plans are byte-identical at every thread count and to
    // both serial paths. The pool must outlive the partitioner's calls.
    ThreadPool* pool = nullptr;
    // Escape hatch: if a fast path's restart chain exceeds its worst-case
    // bound (cannot happen unless the invariants are broken), run the naive
    // path once instead of aborting.
    bool naive_fallback = true;
  };

  SequencePartitioner(const ClusterSpec& cluster, Options options);

  // Reuses `options`-compatible state; cheap enough to call per batch when
  // the capacity changes (e.g. capacity derived from batch size).
  void set_options(Options options);
  const Options& options() const { return options_; }
  const ClusterSpec& cluster() const { return cluster_; }

  // One-shot form: allocates its own scratch and plan.
  PartitionPlan Partition(const Batch& batch) const;
  // Allocation-hoisted form: all intermediates live in `scratch`.
  PartitionPlan Partition(const Batch& batch, PlannerScratch* scratch) const;
  // Fully hoisted form: additionally recycles `plan`'s storage (pass the
  // previous iteration's plan back in); `plan` is reset, not appended to.
  void Partition(const Batch& batch, PlannerScratch* scratch, PartitionPlan* plan) const;

 private:
  // Alg. 1. Emits z2 rings (inter-node and single-node) into the plan arena
  // and fills `scratch->assignments`.
  void PartitionInterNodeFast(const Batch& batch, PartitionPlan* plan,
                              PlannerScratch* scratch) const;
  void PartitionInterNodeNaive(const Batch& batch, PartitionPlan* plan,
                               PlannerScratch* scratch) const;

  // Alg. 2 for one node. Emits intra rings into the plan arena, appends to
  // plan->local, and accumulates plan->tokens_per_rank.
  void PartitionIntraNodeFast(const Batch& batch, int node, const NodeAssignment& assignment,
                              PartitionPlan* plan, PlannerScratch* scratch) const;
  void PartitionIntraNodeNaive(const Batch& batch, int node, const NodeAssignment& assignment,
                               PartitionPlan* plan, PlannerScratch* scratch) const;

  // Parallel/sharded engine (partitioner_parallel.cc). Same plan bytes as the
  // serial paths at any pool size.
  void PartitionParallel(const Batch& batch, PlannerScratch* scratch, PartitionPlan* plan,
                         ThreadPool* pool) const;
  // Alg. 1 with round-batched z01 packing sharded into scratch->node_items;
  // the pool materializes re-labelled single-node rings in parallel, writing
  // headers and ranks into pre-reserved plan slots.
  void PartitionInterNodeSharded(const Batch& batch, PartitionPlan* plan,
                                 PlannerScratch* scratch, ThreadPool* pool) const;
  // Alg. 2 for one node into scratch->intra_results[node], using the scratch
  // slab owned by pool context `context`.
  void PartitionIntraNodeSharded(int node, int context, PlannerScratch* scratch) const;

  ClusterSpec cluster_;
  Options options_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_PARTITIONER_H_
