#include "src/core/linear_stage.h"

#include "src/common/check.h"

namespace zeppelin {

std::vector<TaskId> EmitLinearStage(TaskGraph& graph, const CostModel& cost_model,
                                    const FabricResources& fabric,
                                    const std::vector<int64_t>& tokens_per_rank,
                                    Direction direction,
                                    const std::vector<std::vector<TaskId>>& deps,
                                    const std::string& label) {
  const int world = fabric.cluster().world_size();
  ZCHECK_EQ(tokens_per_rank.size(), static_cast<size_t>(world));
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;

  std::vector<TaskId> out(world, kInvalidTask);
  for (int r = 0; r < world; ++r) {
    std::vector<TaskId> rank_deps;
    if (!deps.empty()) {
      rank_deps = deps[r];
    }
    const double time = cost_model.LinearTime(tokens_per_rank[r]) * scale;
    out[r] = graph.AddCompute(fabric.ComputeLane(r), time, TaskCategory::kLinearCompute,
                              std::move(rank_deps),
                              label + ".linear." + std::to_string(r), r);
  }
  return out;
}

}  // namespace zeppelin
