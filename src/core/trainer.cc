#include "src/core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/sim/trace.h"

namespace zeppelin {

Trainer::Trainer(const TransformerConfig& model, const ClusterSpec& cluster,
                 TrainerOptions options)
    : model_(model),
      logical_cluster_(ApplyTensorParallelism(cluster, options.tensor_parallel)),
      options_(options),
      fabric_(logical_cluster_),
      cost_model_(model, logical_cluster_, options.tensor_parallel) {
  model_.Validate();
}

double Trainer::FixedCostUs(int64_t batch_tokens) const {
  if (!options_.include_fixed_costs) {
    return 0;
  }
  const int world = logical_cluster_.world_size();
  const double params = static_cast<double>(model_.NumParams());
  const double tokens_per_rank = static_cast<double>(batch_tokens) / world;

  // Embedding lookup is cheap; the LM head GEMM is 2*h*vocab per token
  // forward and twice that backward.
  const double head_flops =
      6.0 * static_cast<double>(model_.hidden_size) * model_.vocab_size * tokens_per_rank;
  const double head_us = head_flops / logical_cluster_.flops_per_us();

  // Data-parallel gradient all-reduce (bf16 grads, ring): each rank moves
  // 2*(R-1)/R of the gradient volume through its NIC share. Mostly hidden
  // under backward; only the tail is charged.
  const double grad_bytes = params * model_.dtype_bytes;
  const double nic_share_per_rank = logical_cluster_.nic_bandwidth *
                                    logical_cluster_.nics_per_node /
                                    logical_cluster_.gpus_per_node;
  double allreduce_us = 0;
  if (world > 1) {
    allreduce_us = 2.0 * grad_bytes * (world - 1) / world / nic_share_per_rank;
  }
  const double exposed_allreduce = allreduce_us * (1.0 - options_.grad_allreduce_overlap);

  // ZeRO-1 optimizer: the sharded Adam update is HBM-bound (~30 bytes of
  // state traffic per parameter), followed by the parameter all-gather.
  const double optimizer_us = params * 30.0 / world / logical_cluster_.hbm_bandwidth;
  double allgather_us = 0;
  if (world > 1) {
    allgather_us = grad_bytes * (world - 1) / world / nic_share_per_rank *
                   (1.0 - options_.grad_allreduce_overlap);
  }

  return head_us + exposed_allreduce + optimizer_us + allgather_us;
}

Trainer::ScheduleResult Trainer::RunSchedule(Strategy& strategy, BatchSampler& sampler,
                                             int total_steps, int warmup_steps) const {
  ZCHECK_GT(total_steps, 0);
  ZCHECK_GE(warmup_steps, 0);
  ZCHECK_LT(warmup_steps, total_steps);

  ScheduleResult result;
  double sum = 0;
  double sum_sq = 0;
  result.min_tokens_per_second = std::numeric_limits<double>::infinity();
  for (int step = 0; step < total_steps; ++step) {
    const Batch batch = sampler.NextBatch();
    const IterationResult iter = Run(strategy, batch);
    if (step < warmup_steps) {
      continue;
    }
    const double tput = iter.tokens_per_second;
    result.per_step_tokens_per_second.push_back(tput);
    sum += tput;
    sum_sq += tput * tput;
    result.min_tokens_per_second = std::min(result.min_tokens_per_second, tput);
    result.max_tokens_per_second = std::max(result.max_tokens_per_second, tput);
    result.total_simulated_seconds += iter.iteration_us / 1e6;
  }
  const double n = static_cast<double>(result.per_step_tokens_per_second.size());
  result.mean_tokens_per_second = sum / n;
  const double variance = std::max(0.0, sum_sq / n - result.mean_tokens_per_second *
                                                         result.mean_tokens_per_second);
  result.stddev_tokens_per_second = std::sqrt(variance);
  return result;
}

IterationResult Trainer::Run(Strategy& strategy, const Batch& batch,
                             ChromeTraceWriter* forward_trace,
                             ChromeTraceWriter* backward_trace) const {
  ZCHECK_GT(batch.size(), 0);
  strategy.Plan(batch, cost_model_, fabric_);

  Engine engine(fabric_);

  TaskGraph forward_graph;
  strategy.EmitLayer(forward_graph, Direction::kForward);
  SimResult forward = engine.Run(forward_graph, forward_trace);

  TaskGraph backward_graph;
  strategy.EmitLayer(backward_graph, Direction::kBackward);
  SimResult backward = engine.Run(backward_graph, backward_trace);

  IterationResult result;
  result.strategy = strategy.name();
  result.layer_forward_us = forward.makespan_us;
  result.layer_backward_us = backward.makespan_us;
  result.fixed_us = FixedCostUs(batch.total_tokens());
  result.iteration_us =
      model_.num_layers * (forward.makespan_us + backward.makespan_us) + result.fixed_us;
  result.tokens_per_second =
      static_cast<double>(batch.total_tokens()) / UsToSeconds(result.iteration_us);

  result.attention_compute_us = forward.CategoryBusy(TaskCategory::kAttentionCompute);
  result.linear_compute_us = forward.CategoryBusy(TaskCategory::kLinearCompute);
  result.intra_comm_us = forward.CategoryBusy(TaskCategory::kIntraComm) +
                         forward.CategoryBusy(TaskCategory::kDispatchComm) +
                         forward.CategoryBusy(TaskCategory::kCombineComm);
  result.inter_comm_us = forward.CategoryBusy(TaskCategory::kInterComm);
  result.remap_comm_us = forward.CategoryBusy(TaskCategory::kRemapComm);
  result.nic_utilization = MeanNicUtilization(fabric_, forward);

  result.forward_sim = std::move(forward);
  result.backward_sim = std::move(backward);
  return result;
}

}  // namespace zeppelin
