// Incremental delta-planning subsystem for streaming / online batches.
//
// Motivation: in online training and continuous-batching serving, consecutive
// iterations' batches differ by a handful of sequences, yet a full
// SequencePartitioner::Partition() re-plans all S sequences from scratch
// every iteration. The DeltaPlanner keeps the planner's decision state alive
// between iterations — per-node loads (LoadTracker), per-node membership,
// the inter-node chunk aggregates, the zone thresholds, and the flat
// RingRef/rank_arena plan itself — and applies a BatchDelta by evicting only
// the affected plan entries, re-packing only the changed sequences (through
// the same round-batched GreedyPacker the parallel engine uses), and patching
// headers and arena spans in place. Cost is O(|delta| · log P + dirty-node
// work) instead of O((S + P) log P): ≥10x over a full re-plan at ≤1% churn
// at bench scale (bench/planner_delta.cpp, BENCH_delta.json).
//
// Patch granularity follows the coupling structure of Alg. 1/2:
//
//   z0 locals (the bulk of long-tailed batches) are independent: a removed
//   local is subtracted and swap-erased; an added one packs onto the globally
//   least-loaded node, then that node's least-loaded device. O(log P) each.
//
//   z1 rings are coupled *within a node* through c_avg (the quadratic-work
//   average that sets fragment counts): any churn touching a node's z1 set —
//   a ring evicted, a z1-length sequence added, or a local overflowing device
//   capacity — marks the node dirty, and the node's intra-node stage (Alg. 2)
//   re-runs from its persistent inputs for that node only. Untouched nodes'
//   plan slices are not rewritten.
//
//   z2 sequences are coupled *globally* through s_avg and the shared node
//   loads that all chunk placement reads; any churn touching the inter-node
//   zone falls back to a full re-plan (Rebase). In long-tailed workloads z2
//   churn is rare by construction.
//
// Fallback policy (full re-plan, also exposed in DeltaStats): no base plan
// yet; churn fraction above DeltaPlannerOptions::replan_threshold; delta
// touches the inter-node zone; the base plan's s1 was refined below its
// initial cap (capacity-tight batch — incremental packing could silently
// diverge from what refinement would choose); incremental packing overflows
// node capacity or the batch outgrows the pinned token capacity; or the
// patched plan's token imbalance drifts more than replan_threshold above the
// last full re-plan's. The imbalance guard is what turns the greedy patch
// into a bounded-quality algorithm: a patched plan either stays within the
// drift budget or is replaced by an exact one.
//
// Determinism and equivalence contract: the delta path is deterministic
// (identical delta streams yield identical plans — pinned by StateDigest in
// the soak tests), and a patched plan is *ring-set-equivalent* to a
// from-scratch plan on the same batch at the same capacity: identical
// coverage (every sequence exactly once), identical inter-node (z2) ring set,
// token conservation, and max rank load within ε of the full re-plan's.
// Byte-identity is impossible by design — greedy packing is
// history-dependent, so intra-node assignments legitimately differ — which
// is why the contract is checked through CheckDeltaEquivalence rather than
// operator==. See docs/DELTA_PLANS.md for the state machine and the arena
// patching invariants (a delta plan keeps the in-bounds and disjointness
// invariants of docs/PLAN_FORMAT.md but relaxes tightness: evicted spans are
// recycled through a free list and compacted when the dead fraction grows).
#ifndef SRC_CORE_DELTA_PLANNER_H_
#define SRC_CORE_DELTA_PLANNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/greedy_packer.h"
#include "src/common/load_tracker.h"
#include "src/core/partitioner.h"
#include "src/data/stream.h"
#include "src/topology/cluster.h"

namespace zeppelin {

struct DeltaPlannerOptions {
  // Per-device token capacity L. Required (> 0) and *pinned* across deltas:
  // zone thresholds derive from it, so comparing a patched plan against a
  // full re-plan is only meaningful at a fixed capacity. Rebase raises it
  // automatically (avg + 25% headroom, like ZeppelinStrategy) if the batch
  // outgrows world * L.
  int64_t token_capacity = 0;
  // Optional cap on automatic capacity raises (e.g. the memory model's
  // bound); 0 = uncapped. Ignored when even the cap cannot fit the batch.
  int64_t capacity_ceiling = 0;
  // Caps on the initial zone thresholds, mirroring
  // SequencePartitioner::Options (the zone-aware-initialization extension).
  int64_t max_inter_threshold = 0;
  int64_t max_local_threshold = 0;
  // Fallback knob (ZeppelinOptions::delta_replan_threshold): full re-plan
  // when the churn fraction — churned slots / live sequences, where a
  // removal refilled by an addition is one replaced slot — exceeds this, or
  // when the patched plan's token imbalance (max/mean) drifts more than this
  // above the best imbalance since the last full re-plan.
  double replan_threshold = 0.05;
  // Elastic fallback knob: ApplyTopology() migrates at most this many
  // sequences off dead nodes per delta; past the budget it falls back to a
  // full (elastic) re-plan instead (kRebasedMigration) — patching each
  // migrant individually would cost more than re-planning.
  int64_t migration_budget = 256;
  // Engine selection for full re-plans, as in SequencePartitioner::Options.
  bool fast_path = true;
  ThreadPool* pool = nullptr;  // Non-owning; must outlive the planner.
  // When the pool is shared with other planners (PlannerService hands every
  // session the same pool), this mutex is locked around each pooled full
  // re-plan — ThreadPool batches admit one caller at a time. Delta patches
  // never touch the pool, so they never take it. Null = pool is exclusive.
  std::mutex* pool_mutex = nullptr;
};

// Why the last Apply()/ApplyTopology() patched or fell back (also counted in
// DeltaStats).
enum class DeltaOutcome : uint8_t {
  kApplied = 0,       // Patched incrementally.
  kRebasedNoBase,     // No base plan yet (first call or invalidated state).
  kRebasedChurn,      // Churn fraction above replan_threshold.
  kRebasedZone,       // Delta touches the inter-node zone (len >= s1).
  kRebasedRefined,    // Base plan refined s1 (capacity-tight batch).
  kRebasedCapacity,   // Packing overflow or batch outgrew the capacity.
  kRebasedImbalance,  // Patched imbalance drifted past the threshold.
  kAppliedTopology,   // Topology delta patched incrementally.
  kRebasedTopology,   // Topology change was structural (chunk-carrying node
                      // changed liveness, or a survivor node overloaded).
  kRebasedMigration,  // Dead-node migration exceeded migration_budget.
};

const char* DeltaOutcomeName(DeltaOutcome outcome);

// Cumulative counters over a DeltaPlanner's lifetime.
struct DeltaStats {
  int64_t applied = 0;            // Apply() calls that patched in place.
  int64_t rebased = 0;            // Patch calls that fell back (all reasons).
  int64_t rebase_no_base = 0;
  int64_t rebase_churn = 0;
  int64_t rebase_zone = 0;
  int64_t rebase_refined = 0;
  int64_t rebase_capacity = 0;
  int64_t rebase_imbalance = 0;
  int64_t applied_topology = 0;   // ApplyTopology() calls that patched.
  int64_t rebase_topology = 0;    // Structural topology fallbacks.
  int64_t rebase_migration = 0;   // Migration-budget fallbacks.
  int64_t migrated_sequences = 0;  // Sequences moved off dead nodes in place.
  int64_t patched_sequences = 0;  // Sequences placed by the delta path.
  int64_t evicted_rings = 0;      // Ring spans freed (delta + dirty re-runs).
  int64_t repacked_nodes = 0;     // Dirty-node Alg. 2 re-runs.
  int64_t compactions = 0;        // Arena compaction passes.
};

// Keeps a PartitionPlan and the planner state that produced it alive across
// iterations, patching both in response to BatchDeltas. Not thread-safe; one
// instance per planning thread (the full re-plans it issues may themselves
// use the thread pool, like any Partition() call).
class DeltaPlanner {
 public:
  DeltaPlanner(const ClusterSpec& cluster, DeltaPlannerOptions options);

  // Full re-plan on `batch`: runs the SequencePartitioner and captures the
  // incremental state the delta path needs. Establishes the base plan and
  // the imbalance reference for the drift guard. Does not count in stats
  // (only Apply() outcomes do).
  void Rebase(const Batch& batch);

  // Advances one iteration: applies `delta` to the internal batch and either
  // patches the plan in place or falls back to a full re-plan, per the
  // policy above. Slot ids must be valid and not repeated within one delta.
  DeltaOutcome Apply(const BatchDelta& delta);

  // Folds a topology change (rank kills/restores/slowdowns) into the planner
  // and patches the plan under the surviving fabric. The patch policy mirrors
  // Apply(): migrate only the plan entries touching lost or slowed ranks —
  // a partially-killed or slowed node is re-run through the intra stage on
  // its alive devices; a fully-dead node's members are evicted and re-packed
  // cross-node through the node-packing path — and fall back to a full
  // (elastic, dead-rank-excluding) re-plan when the change is structural:
  //   kRebasedTopology  — the fabric *improved* (a rank restored or sped
  //                       up: patches only move load off dead/slowed ranks,
  //                       so a re-plan is what puts new capacity to work),
  //                       liveness changed on a node carrying inter-node
  //                       chunks (the chunk aggregates are keyed by the alive
  //                       count they were recorded under), or a surviving
  //                       node's load exceeds its reduced alive capacity;
  //   kRebasedMigration — dead-node migration exceeds migration_budget;
  // plus the shared capacity/imbalance guards. The topology state persists
  // across rebases: every subsequent full re-plan excludes dead ranks and
  // balances on speed-weighted effective loads. With no base plan the state
  // is recorded and kRebasedNoBase is returned without planning (uncounted;
  // the next Apply()/Rebase() plans against the new fabric).
  DeltaOutcome ApplyTopology(const TopologyDelta& delta);

  // The fabric state all planning paths currently honor (dead ranks receive
  // no work; slow ranks are balanced by effective load).
  const RankTopology& topology() const { return topo_; }

  // Drops the base plan; the next Apply() rebases (kRebasedNoBase). Called
  // when external planning bypasses this planner.
  void Invalidate() { has_base_ = false; }

  bool has_base() const { return has_base_; }
  // The current batch (after all applied deltas) and its patched plan. The
  // plan reference is stable; its contents change with every Rebase/Apply.
  const Batch& batch() const { return batch_; }
  const PartitionPlan& plan() const { return plan_; }
  const DeltaStats& stats() const { return stats_; }
  const ClusterSpec& cluster() const { return cluster_; }
  // Current pinned capacity (may have been auto-raised by a Rebase).
  int64_t token_capacity() const { return options_.token_capacity; }
  const DeltaPlannerOptions& options() const { return options_; }
  // Dead (recycled but unused) rank slots currently in the arena free list.
  size_t arena_free_slots() const { return free_total_; }

  // Replaces the options; invalidates the base (thresholds derive from
  // capacity, so patched state cannot be reinterpreted under new options).
  void set_options(DeltaPlannerOptions options);

 private:
  struct SeqLocation {
    enum class Kind : uint8_t {
      kNone = 0,   // Not currently placed (default / just evicted).
      kZ2Ring,     // Inter-node-zone ring (either queue); delta-immutable.
      kIntraRing,  // z1 ring in plan_.intra_node.
      kLocal,      // Entry in plan_.local.
      kPending,    // Node member awaiting placement in this Apply().
    };
    Kind kind = Kind::kNone;
    bool inter_queue = false;  // kZ2Ring: which queue holds the header.
    int node = -1;             // Owning node (members and single-node z2).
    uint32_t pos = 0;          // Index into the owning plan queue.
    uint32_t member_pos = 0;   // Index into node_members_[node] (members).
  };
  struct FreeSpan {
    uint32_t offset = 0;
    uint32_t count = 0;
  };
  struct PendingRing {  // Dirty-node re-run: a ring decided but not yet emitted.
    int slot = 0;
    int64_t length = 0;
    int fragments = 0;
    int cursor_start = 0;
  };

  void RebaseInternal();
  void CaptureState();
  void EnsureCapacityFits(int64_t total_tokens);

  // From-scratch plan on a degraded fabric (dead or off-speed ranks), used by
  // every rebase while topology() stays degraded: an elastic Alg. 1 over the
  // alive node capacities (z2 rings span only alive devices, z01 packed onto
  // the node with the lowest speed-normalized load that fits), then the
  // elastic intra stage per alive node. Captures incremental state itself;
  // SequencePartitioner cannot represent holes in the fabric, so this is a
  // separate path — the clean fabric keeps the byte-identical engine path.
  void ElasticReplan();
  // Per-node alive-device list/rate caches (refreshed from topo_ on demand).
  void RefreshNodeTopology();
  // Node with the lowest speed-normalized load whose raw load still fits
  // `len` under its alive capacity; -1 when none fits. Elastic counterpart of
  // the GreedyPacker node-packing (scan-based; only runs on degraded fabrics).
  int PickNodeElastic(int64_t len) const;
  // True when `node` carries inter-node chunk aggregates (z2 chunk counts are
  // keyed by the alive count they were recorded under, so liveness changes on
  // such a node are structural).
  bool NodeHasChunks(int node) const;
  // True when every device of `node` is alive at nominal speed (the node
  // qualifies for the byte-identical homogeneous repack path).
  bool NodeClean(int node) const;
  DeltaOutcome ApplyViaRebase(const BatchDelta& delta, DeltaOutcome reason);
  DeltaOutcome FallBack(DeltaOutcome reason);  // Mid-patch: batch_ already new.
  void CountOutcome(DeltaOutcome reason);

  // Removes `slot`'s current plan entry and rolls its load contributions out
  // of tokens_per_rank / node_loads_. Reads the slot's (old) length from
  // batch_, so it must run before the delta lands in batch_.
  void EvictSlot(int slot);
  void RemoveIntraHeaderAt(uint32_t pos);
  void RemoveLocalAt(uint32_t pos);
  void RemoveMember(int node, uint32_t member_pos);

  // Places `slot` (length < s0, already a member of `node`) as a z0 local on
  // the node's least-loaded device. Returns false on device-capacity
  // overflow (caller marks the node dirty instead).
  bool PlaceLocal(int slot, int node);
  void MarkDirty(int node);
  bool IsDirty(int node) const { return node_dirty_epoch_[node] == epoch_; }

  // Re-runs the intra-node stage (Alg. 2) for one dirty node over its member
  // list: evicts every member's plan entry, re-derives s0 from the pinned
  // capacity, re-fragments z1 and re-packs z0, and emits into recycled or
  // tail arena spans. Mirrors SequencePartitioner::PartitionIntraNodeFast
  // (shared fragment math via partitioner_internal.h).
  void RepackNode(int node);
  // Elastic variant for degraded nodes: fragments and packs over the node's
  // m alive devices only (chunk math with p -> m), balancing z0 placement on
  // speed-weighted effective loads. RepackNodeDispatch routes clean nodes to
  // the byte-identical homogeneous path and skips fully-dead nodes (which by
  // then own no members or load).
  void RepackNodeElastic(int node);
  void RepackNodeDispatch(int node);

  uint32_t AllocSpan(uint32_t count);
  void FreeRingSpan(const RingRef& ring);
  void MaybeCompact();

  double Imbalance() const;

  ClusterSpec cluster_;
  DeltaPlannerOptions options_;
  SequencePartitioner partitioner_;
  PlannerScratch scratch_;
  PartitionPlan plan_;
  Batch batch_;

  bool has_base_ = false;
  RankTopology topo_;          // Fabric state (persists across rebases).
  int64_t node_capacity_ = 0;  // gpus_per_node * token_capacity.
  int64_t s1_initial_ = 0;     // Initial inter-node threshold (pre-refinement).
  bool base_refined_ = false;  // Base plan ended with s1 < s1_initial_.
  double base_imbalance_ = 1.0;
  int live_count_ = 0;         // Non-tombstone sequences in batch_.

  std::vector<SeqLocation> locations_;        // Per slot.
  std::vector<std::vector<int>> node_members_;  // Per node: its z01 slots.
  LoadTracker node_loads_;
  std::vector<int64_t> chunk_whole_;  // Inter-chunk aggregates (see
  std::vector<int64_t> chunk_rem_;    // PlannerScratch::node_chunk_*).

  std::vector<FreeSpan> free_spans_;
  size_t free_total_ = 0;
  size_t live_ranks_ = 0;

  // Apply() scratch (reused, steady-state allocation-free).
  int epoch_ = 0;
  std::vector<int> node_dirty_epoch_;
  std::vector<int> slot_epoch_;
  std::vector<int> dirty_nodes_;
  std::vector<int> added_slots_;
  std::vector<int> place_;       // Slots to (re)place, length-descending.
  std::vector<int> place_node_;  // Node chosen for each placed slot.
  GreedyPacker delta_packer_;
  std::vector<int64_t> loads_buf_;
  LoadTracker device_tracker_;
  std::vector<int64_t> chunk_base_;
  std::vector<PendingRing> ring_buf_;
  std::vector<LocalSequence> z0_buf_;
  std::vector<LocalSequence> z1_buf_;
  std::vector<int> compact_buf_;

  // Elastic scratch (RefreshNodeTopology output + repack/migration buffers).
  std::vector<int> node_alive_;       // Per node: alive device count m.
  std::vector<int64_t> node_rate_;    // Per node: sum of alive speed_q.
  std::vector<int> alive_buf_;        // One node's alive local device list.
  std::vector<int64_t> dev_raw_;      // Per alive device: raw token load.
  std::vector<int> migrate_buf_;      // Slots evicted off dead nodes.
  std::vector<int> order_buf_;        // ElasticReplan sequence order.
  std::vector<std::pair<int64_t, int>> node_sel_;  // ElasticReplan z2 node choice.
  std::vector<int64_t> chunk_split_;  // ElasticReplan per-node chunk sizes.

  DeltaStats stats_;
};

// --- Equivalence checking (delta soak tests + planner-delta bench) ----------

// Executable form of the delta determinism contract: verifies that `patched`
// is ring-set-equivalent to `replan` (a from-scratch plan on the same batch
// at the same capacity) within load tolerance `eps`:
//   1. coverage — every batch sequence appears exactly once in each plan;
//   2. patched arena validity — headers in-bounds, live spans disjoint
//      (tightness is intentionally not required of delta plans);
//   3. token conservation in both plans;
//   4. identical s1 and identical inter-node-zone ring set (sequence, length,
//      exact rank list) across both queues;
//   5. ε-bound — max(patched tokens_per_rank) <= (1+eps) * max(replan's).
struct DeltaEquivalenceResult {
  bool ok = false;
  std::string failure;        // Empty when ok; first violated clause otherwise.
  double max_load_ratio = 0;  // patched max rank load / replan max rank load.
};

DeltaEquivalenceResult CheckDeltaEquivalence(const PartitionPlan& patched,
                                             const PartitionPlan& replan,
                                             const Batch& batch, double eps);

// Topology-aware form for post-failure plans. On a clean topology it is the
// check above. On a degraded one, clauses 4–5 change shape — zone thresholds
// and z2 chunking are load-dependent on the surviving fabric, so s1 identity
// and z2-ring-set identity cannot be required of a patched plan — and the
// contract becomes:
//   4'. dead-rank exclusion in BOTH plans — no ring span contains a dead
//       rank, no live (length > 0) local sits on one, and every dead rank's
//       tokens_per_rank is zero;
//   5'. ε-bound on speed-weighted *effective* loads over the surviving
//       fabric: max alive eff(patched) <= (1+eps) * max alive eff(replan).
DeltaEquivalenceResult CheckDeltaEquivalence(const PartitionPlan& patched,
                                             const PartitionPlan& replan,
                                             const Batch& batch,
                                             const RankTopology& topology,
                                             double eps);

}  // namespace zeppelin

#endif  // SRC_CORE_DELTA_PLANNER_H_
