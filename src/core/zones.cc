#include "src/core/zones.h"

#include "src/common/check.h"

namespace zeppelin {

const char* ZoneName(Zone zone) {
  switch (zone) {
    case Zone::kLocal:
      return "local";
    case Zone::kIntraNode:
      return "intra-node";
    case Zone::kInterNode:
      return "inter-node";
  }
  return "unknown";
}

ZoneClassifier::ZoneClassifier(const CostModel& cost_model) : cost_model_(&cost_model) {}

double ZoneClassifier::AttentionComputeUs(int64_t s) const {
  return cost_model_->CausalAttentionTime(s);
}

double ZoneClassifier::LinearComputeUs(int64_t s) const { return cost_model_->LinearTime(s); }

double ZoneClassifier::IntraSendRecvUs(int64_t s) const {
  return cost_model_->IntraNodeTransferTime(cost_model_->KvBytesPerToken() * s);
}

double ZoneClassifier::InterSendRecvUs(int64_t s) const {
  return cost_model_->InterNodeTransferTime(cost_model_->KvBytesPerToken() * s);
}

ZoneBoundaries ZoneClassifier::Compute(int64_t max_len, int64_t granularity) const {
  ZCHECK_GT(granularity, 0);
  ZoneBoundaries b;
  b.local_max = max_len;
  b.intra_max = max_len;
  bool found_local = false;
  bool found_intra = false;
  for (int64_t s = granularity; s <= max_len; s += granularity) {
    // Splitting across a ring of size 2 halves the per-device quadratic work;
    // the saved compute must exceed the KV ring transfer to be worthwhile.
    const double saved_compute = AttentionComputeUs(s) / 2.0;
    if (!found_local && saved_compute > IntraSendRecvUs(s / 2)) {
      b.local_max = s - granularity;
      found_local = true;
    }
    if (!found_intra && saved_compute > InterSendRecvUs(s / 2)) {
      b.intra_max = s - granularity;
      found_intra = true;
      break;
    }
  }
  ZCHECK_LE(b.local_max, b.intra_max);
  return b;
}

Zone ZoneClassifier::Classify(int64_t length, const ZoneBoundaries& boundaries) {
  if (length <= boundaries.local_max) {
    return Zone::kLocal;
  }
  if (length <= boundaries.intra_max) {
    return Zone::kIntraNode;
  }
  return Zone::kInterNode;
}

}  // namespace zeppelin
