#include "src/core/attention_engine.h"

#include <map>

#include "src/common/check.h"
#include "src/core/chunking.h"

namespace zeppelin {

AttentionEngine::AttentionEngine(const CostModel& cost_model, const FabricResources& fabric,
                                 const RoutingLayer& routing, AttentionEngineOptions options)
    : cost_model_(&cost_model), fabric_(&fabric), routing_(&routing), options_(options) {}

namespace {

std::vector<TaskId> RankDeps(const std::vector<std::vector<TaskId>>& deps, int rank) {
  if (deps.empty()) {
    return {};
  }
  ZCHECK_LT(static_cast<size_t>(rank), deps.size());
  return deps[rank];
}

double DirectionScale(Direction direction) {
  return direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
}

}  // namespace

void AttentionEngine::EmitRingSequence(TaskGraph& graph, const RingView& ring,
                                       Direction direction,
                                       const std::vector<std::vector<TaskId>>& deps,
                                       const std::string& label,
                                       std::vector<std::vector<TaskId>>* last_task_per_rank) const {
  const int g = ring.group_size();
  ZCHECK_GT(g, 1) << "rings of size 1 are local sequences";
  const double scale = DirectionScale(direction);
  const ChunkScheme scheme = options_.chunk_scheme;
  // For the range-based schemes the assignment is materialized once into the
  // recycled scratch; the striped scheme is closed-form and needs no
  // per-ring state.
  std::vector<ChunkPair>& assignment = chunk_scratch_;
  if (scheme == ChunkScheme::kBalancedPairs) {
    BalancedChunkAssignmentInto(ring.length, g, &assignment);
  } else if (scheme == ChunkScheme::kContiguous) {
    ContiguousChunkAssignmentInto(ring.length, g, &assignment);
  }
  auto round_flops = [&](int k, int r) {
    if (scheme == ChunkScheme::kStriped) {
      return StripedRoundFlops(*cost_model_, ring.length, g, k, r);
    }
    return RingRoundFlops(*cost_model_, assignment, ring.length, k, r);
  };
  auto tokens_at = [&](int k) {
    if (scheme == ChunkScheme::kStriped) {
      return StripedTokens(ring.length, g, k);
    }
    return assignment[k].tokens();
  };
  const int64_t kv_bytes_per_token = cost_model_->KvBytesPerToken();

  // recv[k]: arrival of the KV block rank k uses in the *next* round.
  std::vector<TaskId> recv(g, kInvalidTask);
  std::vector<TaskId> last_compute(g, kInvalidTask);
  for (int r = 0; r < g; ++r) {
    // Sends for round r+1 are issued first: ring attention overlaps the
    // forwarding of the currently held KV with computation on it.
    std::vector<TaskId> next_recv(g, kInvalidTask);
    if (r < g - 1) {
      for (int k = 0; k < g; ++k) {
        const int next = (k + 1) % g;
        const int held_owner = ((k - r) % g + g) % g;
        const int64_t bytes = static_cast<int64_t>(
            static_cast<double>(tokens_at(held_owner) * kv_bytes_per_token) * scale);
        std::vector<TaskId> send_deps =
            r == 0 ? RankDeps(deps, ring.ranks[k]) : std::vector<TaskId>{recv[k]};
        next_recv[next] = routing_->EmitTransfer(
            graph, ring.ranks[k], ring.ranks[next], bytes, std::move(send_deps),
            label + ".kv.r" + std::to_string(r) + "." + std::to_string(k));
      }
    }
    for (int k = 0; k < g; ++k) {
      const double flops = round_flops(k, r) * scale;
      std::vector<TaskId> compute_deps;
      if (r == 0) {
        compute_deps = RankDeps(deps, ring.ranks[k]);
      } else {
        compute_deps = {recv[k]};
      }
      const TaskId compute = graph.AddCompute(
          fabric_->ComputeLane(ring.ranks[k]), cost_model_->ComputeTime(flops),
          TaskCategory::kAttentionCompute, std::move(compute_deps),
          label + ".attn.r" + std::to_string(r) + "." + std::to_string(k), ring.ranks[k]);
      last_compute[k] = compute;
    }
    recv = next_recv;
  }
  for (int k = 0; k < g; ++k) {
    (*last_task_per_rank)[ring.ranks[k]].push_back(last_compute[k]);
  }
}

void AttentionEngine::EmitLocals(TaskGraph& graph, const std::vector<LocalSequence>& locals,
                                 Direction direction,
                                 const std::vector<std::vector<TaskId>>& deps,
                                 const std::string& label,
                                 std::vector<std::vector<TaskId>>* last_task_per_rank) const {
  const double scale = DirectionScale(direction);
  // All local sequences of a rank execute as one variable-length kernel.
  std::map<int, double> flops_per_rank;
  std::map<int, int> count_per_rank;
  for (const auto& seq : locals) {
    flops_per_rank[seq.rank] += cost_model_->CausalAttentionFlops(seq.length) * scale;
    ++count_per_rank[seq.rank];
  }
  for (const auto& [rank, flops] : flops_per_rank) {
    const TaskId t = graph.AddCompute(
        fabric_->ComputeLane(rank), cost_model_->ComputeTime(flops),
        TaskCategory::kAttentionCompute, RankDeps(deps, rank),
        label + ".local.varlen_x" + std::to_string(count_per_rank[rank]), rank);
    (*last_task_per_rank)[rank].push_back(t);
  }
}

std::vector<TaskId> AttentionEngine::Emit(TaskGraph& graph, const PartitionPlan& plan,
                                          Direction direction,
                                          const std::vector<std::vector<TaskId>>& deps,
                                          const std::string& label) const {
  const int world = fabric_->cluster().world_size();

  const QueueOrder order = direction == Direction::kForward
                               ? options_.forward_order
                               : (options_.forward_order == QueueOrder::kInterIntraLocal
                                      ? QueueOrder::kLocalIntraInter
                                      : QueueOrder::kInterIntraLocal);

  // `gate[r]` carries the dependency frontier of rank r through the three
  // queue phases: each phase's first tasks wait on the previous phase's last
  // tasks on that rank, which is exactly the §3.2 queue ordering (a device
  // starts its intra-node queue only after its inter-node queue drains).
  std::vector<std::vector<TaskId>> gate(world);
  if (!deps.empty()) {
    gate = deps;
  }

  auto advance = [&](const std::vector<std::vector<TaskId>>& phase_last) {
    for (int r = 0; r < world; ++r) {
      if (!phase_last[r].empty()) {
        gate[r] = phase_last[r];
      }
    }
  };

  auto emit_inter = [&] {
    std::vector<std::vector<TaskId>> phase_last(world);
    for (RingView ring : plan.rings(plan.inter_node)) {
      EmitRingSequence(graph, ring, direction, gate,
                       label + ".inter.s" + std::to_string(ring.seq_id), &phase_last);
    }
    advance(phase_last);
  };
  auto emit_intra = [&] {
    std::vector<std::vector<TaskId>> phase_last(world);
    for (RingView ring : plan.rings(plan.intra_node)) {
      EmitRingSequence(graph, ring, direction, gate,
                       label + ".intra.s" + std::to_string(ring.seq_id), &phase_last);
    }
    advance(phase_last);
  };
  auto emit_local = [&] {
    std::vector<std::vector<TaskId>> phase_last(world);
    EmitLocals(graph, plan.local, direction, gate, label, &phase_last);
    advance(phase_last);
  };

  if (order == QueueOrder::kInterIntraLocal) {
    emit_inter();
    emit_intra();
    emit_local();
  } else {
    emit_local();
    emit_intra();
    emit_inter();
  }

  std::vector<TaskId> done(world);
  for (int r = 0; r < world; ++r) {
    done[r] = graph.AddBarrier(gate[r], label + ".attn_done." + std::to_string(r));
  }
  return done;
}

}  // namespace zeppelin
