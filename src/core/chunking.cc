#include "src/core/chunking.h"

#include <algorithm>

#include "src/common/check.h"

namespace zeppelin {
namespace {

// Boundary i of [0, s) divided into `parts` nearly equal pieces.
int64_t SplitEdge(int64_t s, int parts, int i) { return s * i / parts; }

}  // namespace

void BalancedChunkAssignmentInto(int64_t s, int group_size, std::vector<ChunkPair>* out) {
  ZCHECK_GT(group_size, 0);
  ZCHECK_GE(s, 0);
  const int g = group_size;
  out->resize(g);
  for (int i = 0; i < g; ++i) {
    ChunkPair& pair = (*out)[i];
    pair.lo_begin = SplitEdge(s, 2 * g, i);
    pair.lo_end = SplitEdge(s, 2 * g, i + 1);
    pair.hi_begin = SplitEdge(s, 2 * g, 2 * g - 1 - i);
    pair.hi_end = SplitEdge(s, 2 * g, 2 * g - i);
  }
}

void ContiguousChunkAssignmentInto(int64_t s, int group_size, std::vector<ChunkPair>* out) {
  ZCHECK_GT(group_size, 0);
  ZCHECK_GE(s, 0);
  out->resize(group_size);
  for (int i = 0; i < group_size; ++i) {
    ChunkPair& pair = (*out)[i];
    pair.lo_begin = SplitEdge(s, group_size, i);
    pair.lo_end = SplitEdge(s, group_size, i + 1);
    // hi chunk empty.
    pair.hi_begin = pair.lo_end;
    pair.hi_end = pair.lo_end;
  }
}

std::vector<ChunkPair> BalancedChunkAssignment(int64_t s, int group_size) {
  std::vector<ChunkPair> assignment;
  BalancedChunkAssignmentInto(s, group_size, &assignment);
  return assignment;
}

std::vector<ChunkPair> ContiguousChunkAssignment(int64_t s, int group_size) {
  std::vector<ChunkPair> assignment;
  ContiguousChunkAssignmentInto(s, group_size, &assignment);
  return assignment;
}

double RingRoundFlops(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                      int64_t /*s*/, int k, int r) {
  const int g = static_cast<int>(assignment.size());
  ZCHECK(k >= 0 && k < g) << "k=" << k;
  ZCHECK(r >= 0 && r < g) << "r=" << r;
  // In round r, rank k holds the KV of the chunks originally owned by rank
  // (k - r) mod g (KV travels k -> k+1 each round).
  const int owner = ((k - r) % g + g) % g;
  const ChunkPair& q = assignment[k];
  const ChunkPair& kv = assignment[owner];

  double flops = 0;
  const int64_t q_ranges[2][2] = {{q.lo_begin, q.lo_end}, {q.hi_begin, q.hi_end}};
  const int64_t kv_ranges[2][2] = {{kv.lo_begin, kv.lo_end}, {kv.hi_begin, kv.hi_end}};
  for (const auto& qr : q_ranges) {
    for (const auto& kr : kv_ranges) {
      flops += cost_model.CausalChunkFlops(qr[0], qr[1], kr[0], kr[1]);
    }
  }
  return flops;
}

double RingTotalFlops(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                      int64_t s, int k) {
  const int g = static_cast<int>(assignment.size());
  double total = 0;
  for (int r = 0; r < g; ++r) {
    total += RingRoundFlops(cost_model, assignment, s, k, r);
  }
  return total;
}

double AssignmentImbalance(const CostModel& cost_model, const std::vector<ChunkPair>& assignment,
                           int64_t s) {
  const int g = static_cast<int>(assignment.size());
  ZCHECK_GT(g, 0);
  double max_flops = 0;
  double total = 0;
  for (int k = 0; k < g; ++k) {
    const double f = RingTotalFlops(cost_model, assignment, s, k);
    max_flops = std::max(max_flops, f);
    total += f;
  }
  if (total == 0) {
    return 1.0;
  }
  return max_flops / (total / g);
}

int64_t StripedTokens(int64_t s, int group_size, int k) {
  ZCHECK_GT(group_size, 0);
  ZCHECK(k >= 0 && k < group_size) << "k=" << k;
  if (k >= s) {
    return 0;
  }
  return (s - k - 1) / group_size + 1;
}

double StripedRoundFlops(const CostModel& cost_model, int64_t s, int group_size, int k, int r) {
  const int g = group_size;
  ZCHECK(k >= 0 && k < g) << "k=" << k;
  ZCHECK(r >= 0 && r < g) << "r=" << r;
  const int owner = ((k - r) % g + g) % g;

  // Queries q = k + a*G (a in [0, n_q)), keys kv = owner + b*G (b in [0, n_k)).
  // Causal admits b <= a when owner <= k, else b <= a - 1.
  const int64_t n_q = StripedTokens(s, g, k);
  const int64_t n_k = StripedTokens(s, g, owner);
  double pairs = 0;
  if (n_q > 0 && n_k > 0) {
    if (owner <= k) {
      // sum_{a=0}^{n_q-1} min(n_k, a + 1): a triangle capped at n_k.
      const int64_t tri = std::min(n_q, n_k);
      pairs = 0.5 * static_cast<double>(tri) * static_cast<double>(tri + 1) +
              static_cast<double>(std::max<int64_t>(n_q - n_k, 0)) * static_cast<double>(n_k);
    } else {
      // sum_{a=0}^{n_q-1} min(n_k, a): same triangle, shifted by one.
      const int64_t m = std::min(n_q - 1, n_k);
      pairs = 0.5 * static_cast<double>(m) * static_cast<double>(m + 1) +
              static_cast<double>(std::max<int64_t>(n_q - 1 - n_k, 0)) * static_cast<double>(n_k);
    }
  }
  const double h_eff = static_cast<double>(cost_model.model().num_heads) *
                       static_cast<double>(cost_model.model().head_dim());
  return 4.0 * pairs * h_eff;
}

double StripedTotalFlops(const CostModel& cost_model, int64_t s, int group_size, int k) {
  double total = 0;
  for (int r = 0; r < group_size; ++r) {
    total += StripedRoundFlops(cost_model, s, group_size, k, r);
  }
  return total;
}

double StripedImbalance(const CostModel& cost_model, int64_t s, int group_size) {
  ZCHECK_GT(group_size, 0);
  double max_flops = 0;
  double total = 0;
  for (int k = 0; k < group_size; ++k) {
    const double f = StripedTotalFlops(cost_model, s, group_size, k);
    max_flops = std::max(max_flops, f);
    total += f;
  }
  if (total == 0) {
    return 1.0;
  }
  return max_flops / (total / group_size);
}

const char* ChunkSchemeName(ChunkScheme scheme) {
  switch (scheme) {
    case ChunkScheme::kBalancedPairs:
      return "balanced-pairs";
    case ChunkScheme::kContiguous:
      return "contiguous";
    case ChunkScheme::kStriped:
      return "striped";
  }
  return "unknown";
}

double SchemeRoundFlops(const CostModel& cost_model, ChunkScheme scheme, int64_t s,
                        int group_size, int k, int r) {
  switch (scheme) {
    case ChunkScheme::kBalancedPairs:
      return RingRoundFlops(cost_model, BalancedChunkAssignment(s, group_size), s, k, r);
    case ChunkScheme::kContiguous:
      return RingRoundFlops(cost_model, ContiguousChunkAssignment(s, group_size), s, k, r);
    case ChunkScheme::kStriped:
      return StripedRoundFlops(cost_model, s, group_size, k, r);
  }
  return 0;
}

int64_t SchemeTokens(ChunkScheme scheme, int64_t s, int group_size, int k) {
  switch (scheme) {
    case ChunkScheme::kBalancedPairs:
      return BalancedChunkAssignment(s, group_size)[k].tokens();
    case ChunkScheme::kContiguous:
      return ContiguousChunkAssignment(s, group_size)[k].tokens();
    case ChunkScheme::kStriped:
      return StripedTokens(s, group_size, k);
  }
  return 0;
}

double SchemeImbalance(const CostModel& cost_model, ChunkScheme scheme, int64_t s,
                       int group_size) {
  switch (scheme) {
    case ChunkScheme::kBalancedPairs:
      return AssignmentImbalance(cost_model, BalancedChunkAssignment(s, group_size), s);
    case ChunkScheme::kContiguous:
      return AssignmentImbalance(cost_model, ContiguousChunkAssignment(s, group_size), s);
    case ChunkScheme::kStriped:
      return StripedImbalance(cost_model, s, group_size);
  }
  return 1.0;
}

}  // namespace zeppelin
