// Sequence zone classification (paper §3.1, Fig. 5).
//
// Ring attention hides communication behind computation only when the
// computation of a sequence's shard outweighs the shard's KV transfer. Since
// attention compute grows quadratically and KV volume linearly with sequence
// length, each (model, cluster) pair induces two crossover lengths:
//   - below `local_max`, even intra-node transfers cannot be hidden: process
//     the sequence on a single device (local zone);
//   - between `local_max` and `intra_max`, intra-node transfers hide but
//     inter-node ones do not (intra-node zone);
//   - above `intra_max`, computation is heavy enough to hide inter-node
//     transfers (inter-node zone).
// These analytic zones motivate the hierarchy; the partitioner's operational
// thresholds (s0/s1 in Alg. 1/2) start from device/node token capacity and are
// refined iteratively.
#ifndef SRC_CORE_ZONES_H_
#define SRC_CORE_ZONES_H_

#include <cstdint>

#include "src/model/cost_model.h"

namespace zeppelin {

enum class Zone : uint8_t {
  kLocal = 0,
  kIntraNode = 1,
  kInterNode = 2,
};

const char* ZoneName(Zone zone);

struct ZoneBoundaries {
  // Largest length that should stay on one device.
  int64_t local_max = 0;
  // Largest length that should stay within one node.
  int64_t intra_max = 0;
};

class ZoneClassifier {
 public:
  explicit ZoneClassifier(const CostModel& cost_model);

  // Computes the crossover lengths by scanning sequence lengths (multiples of
  // `granularity` up to `max_len`) and comparing per-round ring-attention
  // compute time against the per-round KV transfer time at ring size G = 2
  // (the smallest ring: the break-even point most favourable to splitting).
  ZoneBoundaries Compute(int64_t max_len = 262144, int64_t granularity = 64) const;

  // Zone of a sequence given boundaries.
  static Zone Classify(int64_t length, const ZoneBoundaries& boundaries);

  // The per-round costs the classifier compares (exposed for the Fig. 5
  // reproduction): compute time of a causal sequence of length s on one GPU,
  // and the send-receive time of its full KV through one intra-node channel /
  // one NIC.
  double AttentionComputeUs(int64_t s) const;
  double LinearComputeUs(int64_t s) const;
  double IntraSendRecvUs(int64_t s) const;
  double InterSendRecvUs(int64_t s) const;

 private:
  const CostModel* cost_model_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_ZONES_H_
