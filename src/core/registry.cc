#include "src/core/registry.h"

#include <algorithm>
#include <sstream>

#include "src/baselines/double_ring.h"
#include "src/baselines/hybrid_dp.h"
#include "src/baselines/llama_cp.h"
#include "src/baselines/packing.h"
#include "src/baselines/te_cp.h"
#include "src/common/check.h"
#include "src/core/zeppelin.h"

namespace zeppelin {
namespace {

std::vector<std::string> SplitSpec(const std::string& spec) {
  // "zeppelin+striped-routing" -> {"zeppelin", "+striped", "-routing"}.
  std::vector<std::string> parts;
  std::string current;
  for (char c : spec) {
    if (c == '+' || c == '-') {
      if (!current.empty()) {
        parts.push_back(current);
      }
      current = std::string(1, c);
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

}  // namespace

std::unique_ptr<Strategy> MakeStrategyByName(const std::string& spec,
                                             const StrategyDefaults& defaults) {
  const std::vector<std::string> parts = SplitSpec(spec);
  ZCHECK(!parts.empty()) << "empty strategy spec";
  const std::string& base = parts[0];

  if (base == "te" && parts.size() >= 2 && parts[1] == "-cp") {
    // "te-cp" splits at '-'; re-join and treat the remainder as modifiers.
    TeCpOptions options;
    for (size_t i = 2; i < parts.size(); ++i) {
      if (parts[i] == "+routing") {
        options.routing.enabled = true;
      } else {
        ZCHECK(false) << "unknown te-cp modifier: " << parts[i];
      }
    }
    return std::make_unique<TeCpStrategy>(options);
  }
  if (base == "llama" || spec == "llama-cp") {
    return std::make_unique<LlamaCpStrategy>();
  }
  if (spec == "double-ring") {
    return std::make_unique<DoubleRingStrategy>();
  }
  if (base == "hybrid" || spec == "hybrid-dp") {
    return std::make_unique<HybridDpStrategy>();
  }
  if (base == "pack" || spec == "pack-ulysses") {
    return std::make_unique<PackingUlyssesStrategy>();
  }
  if (base == "zeppelin") {
    ZeppelinOptions options;
    options.num_planner_threads = defaults.num_planner_threads;
    options.delta_replan_threshold = defaults.delta_replan_threshold;
    for (size_t i = 1; i < parts.size(); ++i) {
      const std::string& mod = parts[i];
      if (mod == "-routing") {
        options.routing.enabled = false;
      } else if (mod == "-remap") {
        options.remapping.enabled = false;
      } else if (mod == "-partition") {
        options.hierarchical_partitioning = false;
      } else if (mod == "+zones") {
        options.zone_aware_thresholds = true;
      } else if (mod == "+striped") {
        options.engine.chunk_scheme = ChunkScheme::kStriped;
      } else if (mod == "+contiguous") {
        options.engine.chunk_scheme = ChunkScheme::kContiguous;
      } else if (mod == "+localfirst") {
        options.engine.forward_order = QueueOrder::kLocalIntraInter;
      } else {
        ZCHECK(false) << "unknown zeppelin modifier: " << mod;
      }
    }
    return std::make_unique<ZeppelinStrategy>(options);
  }
  ZCHECK(false) << "unknown strategy spec: " << spec;
  return nullptr;
}

std::vector<std::string> KnownStrategyNames() {
  return {"te-cp",     "te-cp+routing", "llama-cp", "double-ring",
          "hybrid-dp", "pack-ulysses",  "zeppelin"};
}

ClusterSpec MakeClusterByName(const std::string& name, int num_nodes) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "A") {
    return MakeClusterA(num_nodes);
  }
  if (upper == "B") {
    return MakeClusterB(num_nodes);
  }
  if (upper == "C") {
    return MakeClusterC(num_nodes);
  }
  ZCHECK(false) << "unknown cluster preset: " << name << " (expected A, B, or C)";
  return MakeClusterA(num_nodes);
}

}  // namespace zeppelin
