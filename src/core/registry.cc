#include "src/core/registry.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "src/common/thread_pool.h"

#include "src/baselines/double_ring.h"
#include "src/baselines/hybrid_dp.h"
#include "src/baselines/llama_cp.h"
#include "src/baselines/packing.h"
#include "src/baselines/te_cp.h"
#include "src/common/check.h"
#include "src/core/zeppelin.h"

namespace zeppelin {
namespace {

std::vector<std::string> SplitSpec(const std::string& spec) {
  // "zeppelin+striped-routing" -> {"zeppelin", "+striped", "-routing"}.
  // Once a part contains '=', only '+' terminates it, so knob values may
  // carry '-' ("+stream=decode-7", "+delta=1e-3"); a toggle after a knob
  // therefore needs '+' form or its own spec position.
  std::vector<std::string> parts;
  std::string current;
  for (char c : spec) {
    if (c == '+' || (c == '-' && current.find('=') == std::string::npos)) {
      if (!current.empty()) {
        parts.push_back(current);
      }
      current = std::string(1, c);
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

// Inline knob modifier: "+key=value" -> value when `mod` is "+<key>=...".
bool KnobValue(const std::string& mod, const std::string& key, std::string* value) {
  const std::string prefix = "+" + key + "=";
  if (mod.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  *value = mod.substr(prefix.size());
  ZCHECK(!value->empty()) << "empty value in spec modifier: " << mod;
  return true;
}

int ParseThreads(const std::string& value, const std::string& mod) {
  if (value == "auto" || value == "hw") {
    return ThreadPool::HardwareThreads();
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  // Range-check before narrowing: a silently truncated huge value would
  // select an unintended engine instead of failing the parse.
  ZCHECK(end != nullptr && *end == '\0' && errno != ERANGE && parsed >= 0 &&
         parsed <= std::numeric_limits<int>::max())
      << "bad thread count in spec modifier: " << mod;
  return static_cast<int>(parsed);
}

double ParseDouble(const std::string& value, const std::string& mod) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  ZCHECK(end != nullptr && *end == '\0') << "bad numeric value in spec modifier: " << mod;
  return parsed;
}

}  // namespace

std::unique_ptr<Strategy> MakeStrategyByName(const std::string& spec,
                                             const StrategyDefaults& defaults) {
  const std::vector<std::string> parts = SplitSpec(spec);
  ZCHECK(!parts.empty()) << "empty strategy spec";
  const std::string& base = parts[0];

  if (base == "te" && parts.size() >= 2 && parts[1] == "-cp") {
    // "te-cp" splits at '-'; re-join and treat the remainder as modifiers.
    TeCpOptions options;
    for (size_t i = 2; i < parts.size(); ++i) {
      if (parts[i] == "+routing") {
        options.routing.enabled = true;
      } else {
        ZCHECK(false) << "unknown te-cp modifier: " << parts[i];
      }
    }
    return std::make_unique<TeCpStrategy>(options);
  }
  if (base == "llama" || spec == "llama-cp") {
    return std::make_unique<LlamaCpStrategy>();
  }
  if (spec == "double-ring") {
    return std::make_unique<DoubleRingStrategy>();
  }
  if (base == "hybrid" || spec == "hybrid-dp") {
    return std::make_unique<HybridDpStrategy>();
  }
  if (base == "pack" || spec == "pack-ulysses") {
    return std::make_unique<PackingUlyssesStrategy>();
  }
  if (base == "zeppelin") {
    ZeppelinOptions options;
    // Defaults first; inline knob modifiers below override them.
    options.num_planner_threads = defaults.num_planner_threads;
    options.delta_replan_threshold = defaults.delta_replan_threshold;
    options.service = defaults.service;
    for (size_t i = 1; i < parts.size(); ++i) {
      const std::string& mod = parts[i];
      std::string value;
      if (mod == "-routing") {
        options.routing.enabled = false;
      } else if (mod == "-remap") {
        options.remapping.enabled = false;
      } else if (mod == "-partition") {
        options.hierarchical_partitioning = false;
      } else if (mod == "+zones") {
        options.zone_aware_thresholds = true;
      } else if (mod == "+striped") {
        options.engine.chunk_scheme = ChunkScheme::kStriped;
      } else if (mod == "+contiguous") {
        options.engine.chunk_scheme = ChunkScheme::kContiguous;
      } else if (mod == "+localfirst") {
        options.engine.forward_order = QueueOrder::kLocalIntraInter;
      } else if (KnobValue(mod, "threads", &value)) {
        options.num_planner_threads = ParseThreads(value, mod);
      } else if (KnobValue(mod, "delta", &value)) {
        options.delta_replan_threshold = ParseDouble(value, mod);
      } else if (KnobValue(mod, "capacity", &value)) {
        const double capacity = ParseDouble(value, mod);
        // The upper bound keeps the double -> int64 cast defined (a value
        // past INT64_MAX is UB and lands negative on x86).
        ZCHECK(capacity >= 0 &&
               capacity < static_cast<double>(std::numeric_limits<int64_t>::max()))
            << "capacity out of range in spec modifier: " << mod;
        options.token_capacity = static_cast<int64_t>(capacity);
      } else if (KnobValue(mod, "stream", &value)) {
        options.stream_id = value;
      } else if (KnobValue(mod, "faults", &value)) {
        // "+faults=RATE[@SEED]": fault-injection rate with an optional
        // injector seed (drivers derive one from the workload seed if absent).
        const size_t at = value.find('@');
        options.fault_rate = ParseDouble(value.substr(0, at), mod);
        ZCHECK(options.fault_rate >= 0.0 && options.fault_rate <= 1.0)
            << "fault rate out of [0, 1] in spec modifier: " << mod;
        if (at != std::string::npos) {
          const std::string seed = value.substr(at + 1);
          errno = 0;
          char* end = nullptr;
          const unsigned long long parsed = std::strtoull(seed.c_str(), &end, 10);
          ZCHECK(!seed.empty() && end != nullptr && *end == '\0' && errno != ERANGE)
              << "bad fault seed in spec modifier: " << mod;
          options.fault_seed = static_cast<uint64_t>(parsed);
        }
      } else {
        ZCHECK(false) << "unknown zeppelin modifier: " << mod;
      }
    }
    return std::make_unique<ZeppelinStrategy>(options);
  }
  ZCHECK(false) << "unknown strategy spec: " << spec;
  return nullptr;
}

std::vector<std::string> KnownStrategyNames() {
  return {"te-cp",     "te-cp+routing", "llama-cp", "double-ring",
          "hybrid-dp", "pack-ulysses",  "zeppelin"};
}

ClusterSpec MakeClusterByName(const std::string& name, int num_nodes) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "A") {
    return MakeClusterA(num_nodes);
  }
  if (upper == "B") {
    return MakeClusterB(num_nodes);
  }
  if (upper == "C") {
    return MakeClusterC(num_nodes);
  }
  ZCHECK(false) << "unknown cluster preset: " << name << " (expected A, B, or C)";
  return MakeClusterA(num_nodes);
}

}  // namespace zeppelin
