// Strategy autotuner: simulate candidate systems on a concrete workload and
// rank them. Because the simulator is deterministic and fast (milliseconds
// per candidate), a deployment can afford to re-tune per job — or even per
// length-distribution shift — instead of committing to one system globally.
// This operationalizes the paper's observation that no single balance metric
// wins everywhere (§2.3): on some (cluster, workload) points Hybrid DP or
// LLaMA CP genuinely is the right choice, and the tuner will say so.
#ifndef SRC_CORE_AUTOTUNER_H_
#define SRC_CORE_AUTOTUNER_H_

#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/data/sampler.h"

namespace zeppelin {

struct AutotuneEntry {
  std::string spec;              // Registry spec, e.g. "zeppelin+zones".
  double mean_tokens_per_second = 0;
  double min_tokens_per_second = 0;
  double nic_utilization = 0;    // Mean over evaluated batches.
};

struct AutotuneResult {
  // Sorted best-first by mean throughput.
  std::vector<AutotuneEntry> ranking;

  const AutotuneEntry& best() const;
  // best / runner-up mean throughput; 1.0 means a tie.
  double WinningMargin() const;
};

// Evaluates each registry spec on `batches` and ranks them. Specs must be
// valid for MakeStrategyByName. At least one spec and one batch required.
AutotuneResult Autotune(const Trainer& trainer, const std::vector<std::string>& specs,
                        const std::vector<Batch>& batches);

// Convenience: samples `num_batches` from `sampler` first.
AutotuneResult Autotune(const Trainer& trainer, const std::vector<std::string>& specs,
                        BatchSampler& sampler, int num_batches);

}  // namespace zeppelin

#endif  // SRC_CORE_AUTOTUNER_H_
