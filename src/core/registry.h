// Strategy and cluster registries: build the paper's systems from strings,
// so tools (CLI, sweep scripts) can select configurations without touching
// C++ options structs.
//
// Strategy spec grammar:  name[+modifier]...
//   te-cp            Transformer Engine context parallelism
//   te-cp+routing    TE CP with Zeppelin's routing layer (Fig. 11 ablation)
//   llama-cp         LLaMA-3-style all-gather context parallelism
//   hybrid-dp        FLOP-balanced hybrid data parallelism
//   pack-ulysses     input-balanced packing + Ulysses SP
//   zeppelin         the full system
//   zeppelin+...     modifiers: -routing, -remap, +zones (zone-aware
//                    thresholds), +striped / +contiguous (chunk scheme),
//                    +localfirst (queue-order ablation)
//
// Cluster spec grammar: A|B|C (paper presets), case-insensitive.
#ifndef SRC_CORE_REGISTRY_H_
#define SRC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/topology/cluster.h"

namespace zeppelin {

// Knobs that tools pass alongside a spec string (typically straight from
// command-line flags) and that apply across specs rather than naming a
// variant.
struct StrategyDefaults {
  // ZeppelinOptions::num_planner_threads for zeppelin specs: 0 = serial PR-1
  // fast path, N >= 1 = sharded engine on N contexts. Ignored by baselines.
  int num_planner_threads = 1;
  // ZeppelinOptions::delta_replan_threshold for zeppelin specs: streaming
  // (PlanDelta) fallback knob — full re-plan above this churn fraction or
  // imbalance drift. Ignored by baselines (their PlanDelta re-plans fully).
  double delta_replan_threshold = 0.05;
};

// Creates a strategy from a spec string; aborts (ZCHECK) on unknown specs.
std::unique_ptr<Strategy> MakeStrategyByName(const std::string& spec,
                                             const StrategyDefaults& defaults = {});

// All spec names the registry accepts (base names, without modifiers).
std::vector<std::string> KnownStrategyNames();

// Creates one of the paper's cluster presets ("A", "B", "C") with the given
// node count.
ClusterSpec MakeClusterByName(const std::string& name, int num_nodes);

}  // namespace zeppelin

#endif  // SRC_CORE_REGISTRY_H_
