// Strategy and cluster registries: build the paper's systems from strings,
// so tools (CLI, sweep scripts) can select configurations without touching
// C++ options structs.
//
// Strategy spec grammar:  name[+modifier]...
//   te-cp            Transformer Engine context parallelism
//   te-cp+routing    TE CP with Zeppelin's routing layer (Fig. 11 ablation)
//   llama-cp         LLaMA-3-style all-gather context parallelism
//   hybrid-dp        FLOP-balanced hybrid data parallelism
//   pack-ulysses     input-balanced packing + Ulysses SP
//   zeppelin         the full system
//   zeppelin+...     toggle modifiers: -routing, -remap, +zones (zone-aware
//                    thresholds), +striped / +contiguous (chunk scheme),
//                    +localfirst (queue-order ablation)
//
// Zeppelin specs also accept inline *knob* modifiers (`+key=value`), so a
// single spec string fully describes a configuration without side-channel
// flags:
//   zeppelin+threads=4               planner pool contexts (0 = serial fast
//                                    path; "auto" = hardware concurrency)
//   zeppelin+delta=0.02              delta-replan threshold (PlanDelta)
//   zeppelin+capacity=8192           explicit token capacity L per device
//   zeppelin+stream=decode-7         PlannerService session key (distinct
//                                    ids = independent delta streams)
//   zeppelin+faults=0.01@7           fault-injection rate (and optional
//                                    injector seed) for streaming drivers;
//                                    wins over --fault_rate/--fault_seed
//   zeppelin+threads=4+delta=0.02    modifiers compose left to right
// The corresponding StrategyDefaults fields remain as aliases (typically fed
// from --planner_threads / --delta_threshold flags); inline knobs take
// precedence over defaults.
//
// Cluster spec grammar: A|B|C (paper presets), case-insensitive.
#ifndef SRC_CORE_REGISTRY_H_
#define SRC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/topology/cluster.h"

namespace zeppelin {

class PlannerService;  // src/core/plan_service.h

// Knobs that tools pass alongside a spec string (typically straight from
// command-line flags) and that apply across specs rather than naming a
// variant. Each field is the *alias* of an inline knob modifier (see the
// grammar above); an inline knob on the spec wins over the default.
struct StrategyDefaults {
  // ZeppelinOptions::num_planner_threads for zeppelin specs: 0 = serial PR-1
  // fast path, N >= 1 = sharded engine on N contexts. Ignored by baselines.
  // Inline form: +threads=N.
  int num_planner_threads = 1;
  // ZeppelinOptions::delta_replan_threshold for zeppelin specs: streaming
  // (PlanDelta) fallback knob — full re-plan above this churn fraction or
  // imbalance drift. Ignored by baselines (their PlanDelta re-plans fully).
  // Inline form: +delta=X.
  double delta_replan_threshold = 0.05;
  // Shared PlannerService for zeppelin specs (null = each strategy gets a
  // private service). Tools that drive several concurrent streams pass one
  // service here and give each spec its own +stream=<id> knob.
  std::shared_ptr<PlannerService> service;
};

// Creates a strategy from a spec string; aborts (ZCHECK) on unknown specs.
std::unique_ptr<Strategy> MakeStrategyByName(const std::string& spec,
                                             const StrategyDefaults& defaults = {});

// All spec names the registry accepts (base names, without modifiers).
std::vector<std::string> KnownStrategyNames();

// Creates one of the paper's cluster presets ("A", "B", "C") with the given
// node count.
ClusterSpec MakeClusterByName(const std::string& name, int num_nodes);

}  // namespace zeppelin

#endif  // SRC_CORE_REGISTRY_H_
