#include "src/core/plan_verify.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "src/obs/trace.h"

namespace zeppelin {

namespace {

PlanVerifyResult Reject(PlanVerifyStatus status, const std::string& message) {
  PlanVerifyResult result;
  result.status = status;
  result.message = message;
  return result;
}

// The largest per-rank share a ring of `length` over `group` positions must
// grant somewhere: position i holds chunks i and 2G-1-i, i.e. two chunks of
// at most ceil(length / 2G) tokens each. Used as the indivisible-unit floor
// of the balance certificate (never smaller than the engines' actual max
// position share, so the certificate stays sound for every legal plan).
int64_t RingUnit(int64_t length, uint32_t group) {
  if (group == 0 || length <= 0) {
    return 0;
  }
  const int64_t half = 2 * static_cast<int64_t>(group);
  return 2 * ((length + half - 1) / half);
}

}  // namespace

const char* PlanVerifyStatusName(PlanVerifyStatus status) {
  switch (status) {
    case PlanVerifyStatus::kOk:
      return "ok";
    case PlanVerifyStatus::kMalformed:
      return "malformed";
    case PlanVerifyStatus::kArenaBounds:
      return "arena-bounds";
    case PlanVerifyStatus::kArenaOverlap:
      return "arena-overlap";
    case PlanVerifyStatus::kRankRange:
      return "rank-range";
    case PlanVerifyStatus::kDeadRank:
      return "dead-rank";
    case PlanVerifyStatus::kCoverage:
      return "coverage";
    case PlanVerifyStatus::kLengthMismatch:
      return "length-mismatch";
    case PlanVerifyStatus::kTokenMismatch:
      return "token-mismatch";
    case PlanVerifyStatus::kCapacityOverflow:
      return "capacity-overflow";
    case PlanVerifyStatus::kEpsImbalance:
      return "eps-imbalance";
  }
  return "unknown";
}

PlanVerifyResult VerifyPlan(const PartitionPlan& plan, const Batch* batch,
                            const RankTopology* topology,
                            const PlanVerifyOptions& options) {
  // Every certification site (cache insert/serve, daemon verify-before-serve,
  // client-side verify, --plan_in) shares this one span.
  obs::TraceScope verify_span(obs::Stage::kVerify);
  // --- Clause 1: well-formedness -------------------------------------------
  if (plan.tokens_per_rank.empty()) {
    return Reject(PlanVerifyStatus::kMalformed, "plan declares an empty rank universe");
  }
  const int world = static_cast<int>(plan.tokens_per_rank.size());
  if (options.world > 0 && world != options.world) {
    std::ostringstream msg;
    msg << "plan targets " << world << " ranks but the fabric has " << options.world;
    return Reject(PlanVerifyStatus::kMalformed, msg.str());
  }
  if (topology != nullptr && topology->world() != world) {
    std::ostringstream msg;
    msg << "plan targets " << world << " ranks but the topology tracks "
        << topology->world();
    return Reject(PlanVerifyStatus::kMalformed, msg.str());
  }
  for (int64_t tokens : plan.tokens_per_rank) {
    if (tokens < 0) {
      return Reject(PlanVerifyStatus::kMalformed, "negative declared rank load");
    }
  }
  auto headers_well_formed = [&](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      if (ring.length < 0 || (ring.length > 0 && ring.rank_count == 0)) {
        return false;
      }
    }
    return true;
  };
  if (!headers_well_formed(plan.inter_node) || !headers_well_formed(plan.intra_node)) {
    return Reject(PlanVerifyStatus::kMalformed,
                  "ring with a negative length or an empty rank group");
  }
  for (const LocalSequence& seq : plan.local) {
    if (seq.length < 0) {
      return Reject(PlanVerifyStatus::kMalformed, "local with a negative length");
    }
  }

  // --- Clause 2: arena bounds + disjointness -------------------------------
  // (Tightness is not required — delta-patched plans legally carry slack.)
  std::vector<uint8_t> used(plan.rank_arena.size(), 0);
  PlanVerifyStatus arena_status = PlanVerifyStatus::kOk;
  auto check_arena = [&](const std::vector<RingRef>& queue) {
    for (const RingRef& ring : queue) {
      if (static_cast<size_t>(ring.rank_offset) + ring.rank_count > plan.rank_arena.size()) {
        arena_status = PlanVerifyStatus::kArenaBounds;
        return false;
      }
      for (uint32_t f = 0; f < ring.rank_count; ++f) {
        if (used[ring.rank_offset + f]++) {
          arena_status = PlanVerifyStatus::kArenaOverlap;
          return false;
        }
      }
    }
    return true;
  };
  if (!check_arena(plan.inter_node) || !check_arena(plan.intra_node)) {
    return Reject(arena_status, arena_status == PlanVerifyStatus::kArenaBounds
                                    ? "ring span outside the rank arena"
                                    : "overlapping live ring spans in the arena");
  }

  // --- Clause 3: rank validity + liveness ----------------------------------
  std::vector<uint8_t> touched(world, 0);
  auto check_rank = [&](int rank) {
    if (rank < 0 || rank >= world) {
      return PlanVerifyStatus::kRankRange;
    }
    if (topology != nullptr && !topology->alive[rank]) {
      return PlanVerifyStatus::kDeadRank;
    }
    touched[rank] = 1;
    return PlanVerifyStatus::kOk;
  };
  for (const std::vector<RingRef>* queue : {&plan.inter_node, &plan.intra_node}) {
    for (const RingRef& ring : *queue) {
      for (int rank : plan.ranks(ring)) {
        const PlanVerifyStatus s = check_rank(rank);
        if (s != PlanVerifyStatus::kOk) {
          std::ostringstream msg;
          msg << "ring for sequence " << ring.seq_id << " references rank " << rank;
          return Reject(s, msg.str());
        }
      }
    }
  }
  for (const LocalSequence& seq : plan.local) {
    if (seq.length == 0) {
      continue;  // Tombstone slot: carries no work, rank is vestigial.
    }
    const PlanVerifyStatus s = check_rank(seq.rank);
    if (s != PlanVerifyStatus::kOk) {
      std::ostringstream msg;
      msg << "local sequence " << seq.seq_id << " placed on rank " << seq.rank;
      return Reject(s, msg.str());
    }
  }
  if (topology != nullptr) {
    for (int rank = 0; rank < world; ++rank) {
      if (!topology->alive[rank] && plan.tokens_per_rank[rank] != 0) {
        std::ostringstream msg;
        msg << "dead rank " << rank << " declares " << plan.tokens_per_rank[rank]
            << " tokens";
        return Reject(PlanVerifyStatus::kDeadRank, msg.str());
      }
    }
  }

  // --- Clause 4: coverage + length agreement -------------------------------
  // With a batch: exactly the batch universe, lengths matching. Without:
  // exactly the implied universe [0, max_seq_id], each id once.
  int universe = batch != nullptr ? batch->size() : 0;
  if (batch == nullptr) {
    auto fold_max = [&](int seq_id) { universe = std::max(universe, seq_id + 1); };
    for (const RingRef& ring : plan.inter_node) fold_max(ring.seq_id);
    for (const RingRef& ring : plan.intra_node) fold_max(ring.seq_id);
    for (const LocalSequence& seq : plan.local) fold_max(seq.seq_id);
  }
  std::vector<uint8_t> seen(universe, 0);
  int64_t entry_tokens = 0;
  int64_t unit_max = 0;  // Largest indivisible per-rank share (clause 7).
  PlanVerifyResult verdict;
  auto tally = [&](int seq_id, int64_t length, int64_t unit) {
    if (seq_id < 0 || seq_id >= universe) {
      std::ostringstream msg;
      msg << "sequence " << seq_id << " outside the batch universe [0, " << universe << ")";
      verdict = Reject(PlanVerifyStatus::kCoverage, msg.str());
      return false;
    }
    if (seen[seq_id]++) {
      std::ostringstream msg;
      msg << "sequence " << seq_id << " covered more than once";
      verdict = Reject(PlanVerifyStatus::kCoverage, msg.str());
      return false;
    }
    if (batch != nullptr && length != batch->seq_lens[seq_id]) {
      std::ostringstream msg;
      msg << "sequence " << seq_id << " planned at length " << length
          << " but the batch has " << batch->seq_lens[seq_id];
      verdict = Reject(PlanVerifyStatus::kLengthMismatch, msg.str());
      return false;
    }
    entry_tokens += length;
    unit_max = std::max(unit_max, unit);
    return true;
  };
  for (const RingRef& ring : plan.inter_node) {
    if (!tally(ring.seq_id, ring.length, RingUnit(ring.length, ring.rank_count))) {
      return verdict;
    }
  }
  for (const RingRef& ring : plan.intra_node) {
    if (!tally(ring.seq_id, ring.length, RingUnit(ring.length, ring.rank_count))) {
      return verdict;
    }
  }
  for (const LocalSequence& seq : plan.local) {
    if (!tally(seq.seq_id, seq.length, seq.length)) {
      return verdict;
    }
  }
  for (int seq_id = 0; seq_id < universe; ++seq_id) {
    if (!seen[seq_id]) {
      std::ostringstream msg;
      msg << "sequence " << seq_id << " is not covered by any plan entry";
      return Reject(PlanVerifyStatus::kCoverage, msg.str());
    }
  }

  // --- Clause 5: token conservation ----------------------------------------
  const int64_t expected = batch != nullptr ? batch->total_tokens() : entry_tokens;
  const int64_t declared = plan.total_tokens();
  if (declared != expected || entry_tokens != expected) {
    std::ostringstream msg;
    msg << "declared loads sum to " << declared << ", entries to " << entry_tokens
        << ", batch holds " << expected;
    return Reject(PlanVerifyStatus::kTokenMismatch, msg.str());
  }
  for (int rank = 0; rank < world; ++rank) {
    if (plan.tokens_per_rank[rank] > 0 && !touched[rank]) {
      std::ostringstream msg;
      msg << "rank " << rank << " declares " << plan.tokens_per_rank[rank]
          << " tokens but no entry touches it";
      return Reject(PlanVerifyStatus::kTokenMismatch, msg.str());
    }
  }

  // --- Clause 6: capacity ---------------------------------------------------
  if (options.token_capacity > 0) {
    for (int rank = 0; rank < world; ++rank) {
      if (plan.tokens_per_rank[rank] > options.token_capacity) {
        std::ostringstream msg;
        msg << "rank " << rank << " carries " << plan.tokens_per_rank[rank]
            << " tokens over the capacity " << options.token_capacity;
        return Reject(PlanVerifyStatus::kCapacityOverflow, msg.str());
      }
    }
  }

  // --- Clause 7: eps max-load certificate ----------------------------------
  if (options.eps >= 0 && expected > 0) {
    int64_t speed_sum = 0;
    int64_t max_eff = 0;
    int64_t min_speed = kSpeedScale;
    for (int rank = 0; rank < world; ++rank) {
      if (topology != nullptr) {
        if (!topology->alive[rank]) {
          continue;
        }
        speed_sum += topology->speed_q[rank];
        min_speed = std::min(min_speed, topology->speed_q[rank]);
        max_eff = std::max(max_eff, topology->EffectiveLoad(rank, plan.tokens_per_rank[rank]));
      } else {
        speed_sum += kSpeedScale;
        max_eff = std::max(max_eff, plan.tokens_per_rank[rank]);
      }
    }
    // Perfectly balanced speed-weighted effective load (homogeneous: the
    // plain per-rank average), plus the indivisible-unit floor valued at the
    // slowest surviving rank — together the certificate every greedy engine
    // meets by construction (max <= avg + max_item sits strictly inside).
    const double ideal =
        static_cast<double>(expected) * static_cast<double>(kSpeedScale) /
        static_cast<double>(std::max<int64_t>(speed_sum, 1));
    const double unit_eff = static_cast<double>(unit_max) *
                            static_cast<double>(kSpeedScale) /
                            static_cast<double>(std::max<int64_t>(min_speed, 1));
    const double allowed = (1.0 + options.eps) * ideal + unit_eff;
    verdict.max_load_ratio =
        ideal > 0 ? static_cast<double>(max_eff) / ideal : 0;
    if (static_cast<double>(max_eff) > allowed) {
      std::ostringstream msg;
      msg << "max effective rank load " << max_eff << " exceeds the (1+eps) bound "
          << allowed << " (ideal " << ideal << ", unit " << unit_eff << ")";
      PlanVerifyResult result = Reject(PlanVerifyStatus::kEpsImbalance, msg.str());
      result.max_load_ratio = verdict.max_load_ratio;
      return result;
    }
  }

  verdict.status = PlanVerifyStatus::kOk;
  verdict.message.clear();
  return verdict;
}

PlanVerifyResult VerifyPlan(const PartitionPlan& plan, const Batch& batch,
                            const FabricResources& fabric,
                            const PlanVerifyOptions& options) {
  PlanVerifyOptions opts = options;
  if (opts.world == 0) {
    opts.world = fabric.cluster().world_size();
  }
  if (!fabric.heterogeneous()) {
    return VerifyPlan(plan, &batch, nullptr, opts);
  }
  RankTopology topo;
  topo.Reset(fabric.cluster().world_size());
  for (int rank = 0; rank < topo.world(); ++rank) {
    topo.speed_q[rank] = QuantizeSpeed(fabric.rank_speed(rank));
  }
  return VerifyPlan(plan, &batch, &topo, opts);
}

}  // namespace zeppelin
