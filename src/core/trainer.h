// End-to-end iteration builder and throughput measurement.
//
// Simulates one representative transformer layer (forward and backward) under
// a strategy and extrapolates the training iteration:
//
//   iteration = num_layers * (t_fwd_layer + t_bwd_layer) + t_fixed
//
// where t_fixed covers the costs every strategy shares: embedding/LM-head
// compute, the un-overlapped tail of the data-parallel gradient all-reduce,
// and the (ZeRO-1 sharded) optimizer step. Throughput is reported as
// processed tokens per second, the paper's Fig. 8/9/10 metric.
#ifndef SRC_CORE_TRAINER_H_
#define SRC_CORE_TRAINER_H_

#include <cstdint>
#include <string>

#include "src/common/trace_json.h"
#include "src/core/strategy.h"
#include "src/data/sampler.h"
#include "src/model/cost_model.h"
#include "src/sim/engine.h"
#include "src/topology/cluster.h"

namespace zeppelin {

struct TrainerOptions {
  // Tensor parallelism inside nodes (the paper uses 2 for 13B/30B runs).
  int tensor_parallel = 1;
  // Fraction of the gradient all-reduce hidden under backward compute.
  double grad_allreduce_overlap = 0.9;
  // Include embedding/head/optimizer/grad-sync fixed costs in the iteration.
  bool include_fixed_costs = true;
};

struct IterationResult {
  std::string strategy;
  double layer_forward_us = 0;
  double layer_backward_us = 0;
  double fixed_us = 0;
  double iteration_us = 0;
  double tokens_per_second = 0;

  // Busy-time breakdown of the simulated forward layer (resource-seconds).
  double attention_compute_us = 0;
  double linear_compute_us = 0;
  double intra_comm_us = 0;
  double inter_comm_us = 0;
  double remap_comm_us = 0;

  // Mean NIC directional-channel utilization during the forward layer.
  double nic_utilization = 0;

  SimResult forward_sim;
  SimResult backward_sim;
};

class Trainer {
 public:
  Trainer(const TransformerConfig& model, const ClusterSpec& cluster,
          TrainerOptions options = {});

  // Plans `strategy` on `batch`, simulates one layer in each direction, and
  // assembles the iteration result. Optional writers capture chrome traces of
  // the simulated layers.
  IterationResult Run(Strategy& strategy, const Batch& batch,
                      ChromeTraceWriter* forward_trace = nullptr,
                      ChromeTraceWriter* backward_trace = nullptr) const;

  // Multi-step schedule, matching the paper's measurement protocol: runs
  // `total_steps` sampled iterations and averages throughput over
  // [warmup_steps, total_steps) — §5 reports "tokens per second, averaged
  // over steps 50-150".
  struct ScheduleResult {
    double mean_tokens_per_second = 0;
    double min_tokens_per_second = 0;
    double max_tokens_per_second = 0;
    double stddev_tokens_per_second = 0;
    double total_simulated_seconds = 0;  // Wall time of the measured window.
    std::vector<double> per_step_tokens_per_second;  // Measured window only.
  };
  ScheduleResult RunSchedule(Strategy& strategy, BatchSampler& sampler, int total_steps,
                             int warmup_steps) const;

  const CostModel& cost_model() const { return cost_model_; }
  const FabricResources& fabric() const { return fabric_; }
  const TransformerConfig& model() const { return model_; }

  // Fixed per-iteration cost shared by all strategies (exposed for tests).
  double FixedCostUs(int64_t batch_tokens) const;

 private:
  TransformerConfig model_;
  ClusterSpec logical_cluster_;  // After ApplyTensorParallelism.
  TrainerOptions options_;
  FabricResources fabric_;
  CostModel cost_model_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_TRAINER_H_
