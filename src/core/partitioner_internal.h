// Helpers shared by the serial (partitioner.cc) and parallel
// (partitioner_parallel.cc) planner engines. The chunk/fragment count math
// lives here so the engines cannot drift apart — the bit-identical-plans
// contract depends on every path computing these identically.
#ifndef SRC_CORE_PARTITIONER_INTERNAL_H_
#define SRC_CORE_PARTITIONER_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/partitioner.h"

namespace zeppelin {
namespace planner_internal {

// Number of node buckets a z2 sequence is chunked over (Alg. 1 line 8).
inline int InterNodeChunkCount(int64_t len, double s_avg, int num_nodes) {
  int k = static_cast<int>(std::ceil(static_cast<double>(len) / std::max(s_avg, 1.0)));
  return std::clamp(k, 1, num_nodes);
}

// Number of fragments a z1 sequence is split into (Alg. 2 line 9).
inline int IntraNodeFragmentCount(double len, double c_avg, int p) {
  int fragments = static_cast<int>(std::ceil(len * len / std::max(c_avg, 1.0)));
  return std::clamp(fragments, 1, p);
}

// Records one inter-node chunk of `chunk` tokens on `node` in the aggregate
// form the intra stage consumes: the sum of whole per-device shares
// floor(chunk/p) and a histogram of remainders chunk % p. Both engines (and
// the parallel re-label pass, via per-context partials) must encode chunks
// identically or the bit-identical-plans contract breaks.
inline void RecordChunkAggregate(int node, int64_t chunk, int p, std::vector<int64_t>* whole,
                                 std::vector<int64_t>* rem) {
  const int64_t q = chunk / p;
  (*whole)[node] += q;
  ++(*rem)[node * p + (chunk - q * p)];
}

// Expands `node`'s recorded chunk aggregates into the exact per-device base
// loads (the inter-node chunk spreading of Alg. 2 lines 4-6): the share of a
// chunk q*p + r on device d is q + (floor((d+1)r/p) - floor(dr/p)). Every
// intra-stage consumer (serial fast, sharded, delta re-pack) must expand
// identically.
inline void ExpandChunkBase(const std::vector<int64_t>& whole, const std::vector<int64_t>& rem,
                            int node, int p, std::vector<int64_t>* out) {
  out->resize(p);
  for (int d = 0; d < p; ++d) {
    int64_t share = whole[node];
    for (int r = 1; r < p; ++r) {
      share += rem[node * p + r] * ((d + 1) * r / p - d * r / p);
    }
    (*out)[d] = share;
  }
}

// Causal-balanced fragment split: calls fn(f, device, share) for each of the
// `fragments` fragments of a length-`len` sequence placed round-robin from
// `cursor`. The edge arithmetic len*(f+1)/F - len*f/F is the emission-time
// split every engine (and the delta planner's load roll-back) must mirror.
template <typename Fn>
inline void ForEachFragment(int64_t len, int fragments, int cursor, int p, Fn&& fn) {
  int64_t prev_edge = 0;
  for (int f = 0; f < fragments; ++f) {
    const int64_t edge = len * (f + 1) / fragments;
    fn(f, (cursor + f) % p, edge - prev_edge);
    prev_edge = edge;
  }
}

// One z1 fragmentation pass of Alg. 2 (lines 8-12) over the zone-1 prefix
// [0, boundary): derives c_avg from the quadratic work sum, walks the
// round-robin cursor, and routes each sequence to emit_ring(i, len,
// fragments, cursor) or — for single-fragment sequences, which execute as
// local kernels — emit_local(i, len, device). The cursor progression and
// fragment counts are equivalence-critical; engines supply only storage.
template <typename LenFn, typename EmitRingFn, typename EmitLocalFn>
inline void FragmentZone1(int boundary, int p, LenFn&& len_of, EmitRingFn&& emit_ring,
                          EmitLocalFn&& emit_local) {
  if (boundary <= 0) {
    return;
  }
  double c_total = 0;
  for (int i = 0; i < boundary; ++i) {
    const double len = static_cast<double>(len_of(i));
    c_total += len * len;
  }
  const double c_avg = c_total / p;
  int cursor = 0;
  for (int i = 0; i < boundary; ++i) {
    const int64_t len = len_of(i);
    const int fragments = IntraNodeFragmentCount(static_cast<double>(len), c_avg, p);
    if (fragments == 1) {
      emit_local(i, len, cursor);
      cursor = (cursor + 1) % p;
    } else {
      emit_ring(i, len, fragments, cursor);
      cursor = (cursor + fragments) % p;
    }
  }
}

// The overflow-restart rule shared by every packing stage (Alg. 1 line 15 /
// Alg. 2 line 17): shrink the threshold to the overflowing length and
// advance the zone boundary past the contiguous equal-or-longer block (the
// order is length-descending, so promoted sequences are exactly that block).
template <typename LenFn>
inline int AdvanceZoneBoundary(int n, int overflow_index, LenFn&& len_of, int64_t* threshold) {
  *threshold = len_of(overflow_index);
  int nb = overflow_index + 1;
  while (nb < n && len_of(nb) >= *threshold) {
    ++nb;
  }
  return nb;
}

// Cursor-based ring emission into flat storage: writes a header into the
// recycled slot refs[*ref_count] and reserves `count` rank slots at the arena
// cursor, growing both containers only past their high-water mark (the
// cursor-recycling that keeps steady-state planning allocation-free). Rings
// therefore consume consecutive arena slots in emission order — the gap-free
// arena invariant of docs/PLAN_FORMAT.md. Returns the rank slot pointer,
// valid until the next emission grows the arena.
inline int* EmitRing(std::vector<RingRef>* refs, size_t* ref_count, std::vector<int>* arena,
                     size_t* arena_count, int seq_id, int64_t length, Zone zone, int count) {
  if (*ref_count == refs->size()) {
    refs->emplace_back();
  }
  RingRef& ring = (*refs)[(*ref_count)++];
  ring.seq_id = seq_id;
  ring.length = length;
  ring.zone = zone;
  ring.rank_offset = static_cast<uint32_t>(*arena_count);
  ring.rank_count = static_cast<uint32_t>(count);
  const size_t needed = *arena_count + static_cast<size_t>(count);
  if (arena->size() < needed) {
    arena->resize(needed);
  }
  int* slot = arena->data() + *arena_count;
  *arena_count = needed;
  return slot;
}

}  // namespace planner_internal
}  // namespace zeppelin

#endif  // SRC_CORE_PARTITIONER_INTERNAL_H_
