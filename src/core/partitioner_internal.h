// Helpers shared by the serial (partitioner.cc) and parallel
// (partitioner_parallel.cc) planner engines. The chunk/fragment count math
// lives here so the engines cannot drift apart — the bit-identical-plans
// contract depends on every path computing these identically.
#ifndef SRC_CORE_PARTITIONER_INTERNAL_H_
#define SRC_CORE_PARTITIONER_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/partitioner.h"

namespace zeppelin {
namespace planner_internal {

// Number of node buckets a z2 sequence is chunked over (Alg. 1 line 8).
inline int InterNodeChunkCount(int64_t len, double s_avg, int num_nodes) {
  int k = static_cast<int>(std::ceil(static_cast<double>(len) / std::max(s_avg, 1.0)));
  return std::clamp(k, 1, num_nodes);
}

// Number of fragments a z1 sequence is split into (Alg. 2 line 9).
inline int IntraNodeFragmentCount(double len, double c_avg, int p) {
  int fragments = static_cast<int>(std::ceil(len * len / std::max(c_avg, 1.0)));
  return std::clamp(fragments, 1, p);
}

// Records one inter-node chunk of `chunk` tokens on `node` in the aggregate
// form the intra stage consumes: the sum of whole per-device shares
// floor(chunk/p) and a histogram of remainders chunk % p. Both engines (and
// the parallel re-label pass, via per-context partials) must encode chunks
// identically or the bit-identical-plans contract breaks.
inline void RecordChunkAggregate(int node, int64_t chunk, int p, std::vector<int64_t>* whole,
                                 std::vector<int64_t>* rem) {
  const int64_t q = chunk / p;
  (*whole)[node] += q;
  ++(*rem)[node * p + (chunk - q * p)];
}

// Cursor-based ring emission into flat storage: writes a header into the
// recycled slot refs[*ref_count] and reserves `count` rank slots at the arena
// cursor, growing both containers only past their high-water mark (the
// cursor-recycling that keeps steady-state planning allocation-free). Rings
// therefore consume consecutive arena slots in emission order — the gap-free
// arena invariant of docs/PLAN_FORMAT.md. Returns the rank slot pointer,
// valid until the next emission grows the arena.
inline int* EmitRing(std::vector<RingRef>* refs, size_t* ref_count, std::vector<int>* arena,
                     size_t* arena_count, int seq_id, int64_t length, Zone zone, int count) {
  if (*ref_count == refs->size()) {
    refs->emplace_back();
  }
  RingRef& ring = (*refs)[(*ref_count)++];
  ring.seq_id = seq_id;
  ring.length = length;
  ring.zone = zone;
  ring.rank_offset = static_cast<uint32_t>(*arena_count);
  ring.rank_count = static_cast<uint32_t>(count);
  const size_t needed = *arena_count + static_cast<size_t>(count);
  if (arena->size() < needed) {
    arena->resize(needed);
  }
  int* slot = arena->data() + *arena_count;
  *arena_count = needed;
  return slot;
}

}  // namespace planner_internal
}  // namespace zeppelin

#endif  // SRC_CORE_PARTITIONER_INTERNAL_H_
