// VerifyPlan: the independent plan certifier (docs/PLAN_CACHE.md,
// "Certification contract").
//
// Every expensive plan computation ships with a cheap certificate: before a
// plan from an untrusted or indirect source — the plan cache, a plan_io
// file, a daemon response on the wire — reaches execution, VerifyPlan
// re-checks the full validity contract in O(plan) without re-planning. It is
// the standalone, topology-aware generalization of the clauses
// CheckDeltaEquivalence (src/core/delta_planner.h) applies between a patched
// plan and its replan twin, minus the twin: every clause below is judged
// against the batch, the fabric, and the plan's own declared layout, so no
// second plan is ever computed.
//
// Clauses, in check order (the first violated clause is the typed verdict):
//
//   1. Well-formedness: non-negative lengths and loads, no empty rings, a
//      non-empty rank universe that matches the caller's world when given.
//   2. Arena validity: every ring header's span lies inside the rank arena
//      and live spans are pairwise disjoint (slack from delta-patched plans
//      is legal; overlap never is).
//   3. Rank validity: every referenced rank is inside [0, world), and — when
//      a RankTopology is given — alive. Dead ranks must declare zero load.
//   4. Coverage: with a batch, every batch slot is covered exactly once and
//      every entry's length equals the batch's. Without a batch (structural
//      mode, e.g. a plan file loaded with no workload context), the entries
//      must cover exactly the implied universe [0, max_seq_id] once each.
//   5. Token conservation: the declared per-rank loads sum to the batch
//      total (or the entry total in structural mode), and no rank declares
//      load without any entry touching it.
//   6. Capacity: when `token_capacity` > 0, no rank's raw load exceeds it.
//   7. Eps max-load bound: when `eps` >= 0, the maximum (speed-normalized)
//      rank load may not exceed (1 + eps) * ideal + unit, where ideal is the
//      perfectly balanced speed-weighted load and unit is the largest
//      indivisible per-rank share any placement of this batch must grant (a
//      local's whole length, a ring's per-position chunk pair). Every greedy
//      engine in the repo satisfies this bound by construction (the classic
//      list-scheduling guarantee max <= avg + max_item sits inside it), so a
//      violation means the declared loads do not come from a balanced plan.
//
// What the certificate cannot see: per-rank load accounting that moves
// tokens between two ranks both legitimately touched by entries (the sum
// and touch sets are unchanged). Clauses 6 and 7 bound the damage of
// exactly that mutation, which is why they are part of the contract.
#ifndef SRC_CORE_PLAN_VERIFY_H_
#define SRC_CORE_PLAN_VERIFY_H_

#include <cstdint>
#include <string>

#include "src/core/partitioner.h"
#include "src/data/sampler.h"
#include "src/data/stream.h"
#include "src/topology/path.h"

namespace zeppelin {

// Typed rejection reasons, one per clause. Values are stable (telemetry).
enum class PlanVerifyStatus : uint8_t {
  kOk = 0,
  kMalformed,         // Negative length/load, empty ring, world mismatch.
  kArenaBounds,       // Ring span outside the rank arena.
  kArenaOverlap,      // Two live ring spans share an arena slot.
  kRankRange,         // Referenced rank outside [0, world).
  kDeadRank,          // Work placed on (or declared for) a dead rank.
  kCoverage,          // Sequence missing, duplicated, or out of universe.
  kLengthMismatch,    // Entry length disagrees with the batch.
  kTokenMismatch,     // Declared loads break conservation or touch nothing.
  kCapacityOverflow,  // A rank's raw load exceeds token_capacity.
  kEpsImbalance,      // Max effective load above the (1+eps) certificate.
};

const char* PlanVerifyStatusName(PlanVerifyStatus status);

struct PlanVerifyOptions {
  // > 0: per-rank raw-load ceiling (clause 6); 0 skips the clause.
  int64_t token_capacity = 0;
  // >= 0: slack of the balance certificate (clause 7); negative skips the
  // clause. 0.25 mirrors the service's capacity-derivation headroom.
  double eps = 0.25;
  // > 0: required rank-universe size; 0 accepts the plan's own universe.
  int world = 0;
};

struct PlanVerifyResult {
  PlanVerifyStatus status = PlanVerifyStatus::kOk;
  std::string message;  // Human-readable detail; empty on success.
  // Diagnostic: max effective rank load / balanced ideal (0 when the balance
  // clause never ran).
  double max_load_ratio = 0;

  bool ok() const { return status == PlanVerifyStatus::kOk; }
};

// Certifies `plan` in O(plan). `batch` null = structural mode (clause 4's
// implied universe); `topology` null = homogeneous all-alive fabric.
PlanVerifyResult VerifyPlan(const PartitionPlan& plan, const Batch* batch,
                            const RankTopology* topology,
                            const PlanVerifyOptions& options = {});

// Service-path convenience: world from the fabric's cluster, per-rank speeds
// folded into an all-alive topology when the fabric is heterogeneous.
PlanVerifyResult VerifyPlan(const PartitionPlan& plan, const Batch& batch,
                            const FabricResources& fabric,
                            const PlanVerifyOptions& options = {});

}  // namespace zeppelin

#endif  // SRC_CORE_PLAN_VERIFY_H_
