// PlannerService: the service-oriented planning surface (docs/SERVICE_API.md).
//
// Every planning path in the repo — one-shot full plans, the global-ring
// ablation, and incremental delta streams — is a request/response exchange
// with one PlannerService:
//
//   PlanRequest{batch, cost_model, fabric, options [, stream_id [, delta]]}
//     -> PlanResponse{shared_ptr<const PartitionPlan>, PlanStats, digest}
//
// Plans come back as *immutable handles*: a std::shared_ptr<const
// PartitionPlan> whose contents never change after the response is built, so
// callers can cache plans, hand them to other threads, serialize them
// (src/core/plan_io.h), or keep executing an old plan while a new one is
// being computed — none of which the stateful Strategy::Plan() surface
// allowed (one mutable plan per strategy, overwritten in place). Handle
// storage is recycled through an internal pool once the last reference
// drops, so steady-state planning stays allocation-light.
//
// Sessions. A request with a non-empty `stream_id` addresses a *delta
// session*: the service keeps one DeltaPlanner (docs/DELTA_PLANS.md) per
// stream id in a session table, so many concurrent streaming workloads —
// continuous-batching inference queues, parallel online-training shards —
// coexist in one process, each with its own incremental state and fallback
// policy. The first request on a stream (or any request without a `delta`)
// establishes the session's base plan with a full partition; subsequent
// requests carry the BatchDelta and are patched per the delta-planning
// contract. A session's per-iteration plans are deterministic: identical
// delta streams yield identical per-iteration StateDigests.
//
// Concurrency contract (pinned by tests/plan_service_test.cpp, TSAN-clean):
//   - Requests on *distinct* stream ids (and stateless requests) may be
//     issued concurrently from any threads.
//   - Requests on the *same* stream id serialize on the session's lock
//     (callers need no external synchronization, but see the determinism
//     caveat in docs/SERVICE_API.md: interleaving order is the caller's
//     responsibility).
//   - Full (re)plans share the service's ThreadPool under an internal lock;
//     delta patches never touch the pool, so concurrent streams only
//     contend when one of them falls back to a full re-plan.
//   - Returned handles are immune to later requests; they may outlive the
//     service itself.
#ifndef SRC_CORE_PLAN_SERVICE_H_
#define SRC_CORE_PLAN_SERVICE_H_

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/core/delta_planner.h"
#include "src/core/partitioner.h"
#include "src/core/zones.h"
#include "src/data/sampler.h"
#include "src/data/stream.h"
#include "src/model/cost_model.h"
#include "src/topology/path.h"

namespace zeppelin {

// Per-request planning knobs (the planning-relevant subset of what used to
// live behind ZeppelinStrategy's private state).
struct PlanningOptions {
  // Token capacity L per device; 0 derives the tight bound from the batch
  // (average + 25% headroom, capped by the memory model) exactly as
  // ZeppelinStrategy always has.
  int64_t token_capacity = 0;
  // false = every sequence on one global ring spanning all ranks (the
  // "routing only" ablation layout).
  bool hierarchical_partitioning = true;
  // Zone-aware threshold initialization (design ablation D6); boundaries are
  // computed once per (model, cluster) and cached inside the service.
  bool zone_aware_thresholds = false;
  // false forces the reference linear-scan greedy engine.
  bool planner_fast_path = true;
  // Run on the service's shared ThreadPool when it has one (the
  // parallel/sharded engine); false pins this request to the serial fast
  // path regardless of the service pool. Plans are byte-identical either way.
  bool use_shared_pool = true;
  // Streaming fallback knob (sessions only): full re-plan above this churn
  // fraction or imbalance drift (DeltaPlannerOptions::replan_threshold).
  double delta_replan_threshold = 0.05;
};

// One planning request. `batch`, `cost_model`, and `fabric` are borrowed for
// the duration of the call only.
struct PlanRequest {
  const Batch* batch = nullptr;
  const CostModel* cost_model = nullptr;
  const FabricResources* fabric = nullptr;
  PlanningOptions options;
  // Empty = stateless one-shot plan. Non-empty = the delta session to plan
  // through (created on first use).
  std::string stream_id;
  // Sessions only: the delta between the previously planned batch and
  // `batch` (already applied — `batch` is the new batch). Null forces a full
  // re-plan that (re)bases the session on `batch`.
  const BatchDelta* delta = nullptr;
  // Sessions only: fabric churn since the previous request on this stream
  // (rank kills/restores/slowdowns), applied to the session's topology state
  // *before* the batch delta. The fabric state advances even when the plan
  // cannot be patched incrementally. Stateless requests ignore this field.
  const TopologyDelta* topology = nullptr;
};

// Which engine produced the response's plan.
enum class PlanEngine : uint8_t {
  kNaive = 0,        // Reference linear-scan greedy.
  kSerialFast,       // O((S+P) log P) heap-based serial fast path.
  kParallelSharded,  // Pool-sharded engine (byte-identical at any threads).
  kDeltaPatch,       // Session request patched incrementally.
  kGlobalRing,       // hierarchical_partitioning = false ablation layout.
  kAdopted,          // Externally produced plan adopted without planning
                     //   (ZeppelinStrategy::AdoptPlan, zeppelin_cli --plan_in).
};

const char* PlanEngineName(PlanEngine engine);

// How the plan-cache front end (src/core/plan_cache.h) handled the request.
// kBypass also covers the no-cache path (direct PlannerService calls).
enum class CacheOutcome : uint8_t {
  kBypass = 0,  // Session/delta request, or no cache in front.
  kMiss,        // Full plan computed and inserted.
  kHit,         // Served from the exact tier (zero planning work).
  kNearMatch,   // Served as cached family plan + DeltaPlanner patch.
};

const char* CacheOutcomeName(CacheOutcome outcome);

struct PlanStats {
  PlanEngine engine = PlanEngine::kSerialFast;
  // Wall time of the partitioning step alone (Partition / Apply / Rebase) —
  // the same quantity ZeppelinStrategy::partition_time_us always reported.
  double partition_time_us = 0;
  // Wall time spent materializing the immutable handle: zero when the
  // engine emits straight into the response plan (full plans), the O(plan)
  // bulk copy out of the session's live plan for delta patches.
  double materialize_time_us = 0;
  // Sessions: why the request patched or fell back (kApplied = patched).
  // Stateless requests report kRebasedNoBase (not meaningful).
  DeltaOutcome delta_outcome = DeltaOutcome::kRebasedNoBase;
  // The capacity the plan was computed at (after derivation / auto-raise).
  int64_t token_capacity = 0;
  // Open delta sessions at response time — the daemon-leak telemetry a
  // long-running service watches to confirm CloseSession keeps up with
  // stream churn.
  size_t session_count = 0;
  // Cache disposition of this response (kBypass when no cache is involved).
  CacheOutcome cache_outcome = CacheOutcome::kBypass;
  // True when this plan passed VerifyPlan before being served. False means
  // the certifier did not run (cache off, bypass path) or failed (the cache
  // then refuses to store the plan; the daemon refuses to serve it).
  bool verified = false;
  // Cumulative cache counters at response time (0 without a cache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  // Per-request stage latency breakdown (µs), indexed by obs::Stage. The
  // service fills kPlan/kMaterialize; the daemon overlays its own measured
  // stages (queue wait, decode, validate, cache lookup, verify, encode) on
  // the planned path. Cache-hit repeats carry all-zero stage_us — the
  // byte-identity contract — and kWrite is never in its own response (the
  // socket write happens after encoding); both reach the daemon's histograms
  // and --trace_out instead. See docs/OBSERVABILITY.md, "Span taxonomy".
  std::array<double, obs::kNumStages> stage_us{};
};

struct PlanResponse {
  std::shared_ptr<const PartitionPlan> plan;
  PlanStats stats;
  // plan->StateDigest(): the per-response determinism/equivalence currency
  // (twin streams must produce identical digest sequences) and the value
  // the wire format's trailer authenticates.
  uint64_t digest = 0;
};

struct PlanServiceOptions {
  // Execution contexts of the shared planning pool (including the calling
  // thread): 0 = no pool (every full plan runs the serial fast path), N >= 1
  // = pooled sharded engine for full (re)plans. Same semantics as
  // ZeppelinOptions::num_planner_threads.
  int num_planner_threads = 1;
  // Immutable-plan storage recycled through the internal pool; handles
  // released beyond this cap free normally.
  int plan_pool_limit = 16;
};

// The planning service. Thread-safe per the concurrency contract above.
class PlannerService {
 public:
  explicit PlannerService(PlanServiceOptions options = {});
  ~PlannerService();

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  // Plans one request. Aborts (ZCHECK) on malformed requests: null
  // batch/cost_model/fabric, or a session delta whose batch disagrees with
  // the session's tracked batch.
  PlanResponse Plan(const PlanRequest& request);

  // --- Session management ----------------------------------------------------

  bool HasSession(const std::string& stream_id) const;
  size_t session_count() const;
  // Drops a session and its incremental state entirely. Returns false if the
  // stream id names no session. Plans already handed out stay valid.
  bool CloseSession(const std::string& stream_id);
  // Keeps the session but drops its base plan, forcing the next request on
  // the stream to re-plan fully (kRebasedNoBase) — the "external planning
  // bypassed this stream" hook.
  void InvalidateSession(const std::string& stream_id);
  // Copies the session's cumulative delta telemetry into `*out`. Returns
  // false if the stream id names no session.
  bool GetSessionStats(const std::string& stream_id, DeltaStats* out) const;
  // The session's last outcome (kApplied / kRebased*); kRebasedNoBase if the
  // stream id names no session.
  DeltaOutcome SessionLastOutcome(const std::string& stream_id) const;

  const PlanServiceOptions& options() const { return options_; }

 private:
  // One delta stream's state. `mu` serializes requests on the same stream;
  // everything inside is owned by whoever holds `mu`.
  struct Session {
    std::mutex mu;
    std::optional<DeltaPlanner> planner;
    DeltaOutcome last_outcome = DeltaOutcome::kRebasedNoBase;
  };

  // Reusable workspace for stateless full plans: checked out of a free list
  // per request, so concurrent stateless requests never share scratch while
  // steady-state traffic stays allocation-free.
  struct StatelessCtx {
    std::optional<SequencePartitioner> partitioner;
    PlannerScratch scratch;
  };

  // Storage pool behind the immutable handles. Shared with every handle's
  // deleter so handles may outlive the service.
  struct PlanPool {
    std::mutex mu;
    std::vector<std::unique_ptr<PartitionPlan>> free;
    int limit = 16;
  };

  // Cache key is everything a ZoneClassifier's output depends on: the full
  // model config by value (a name alone is not identity — custom configs
  // may reuse one), the TP degree, and the cluster.
  struct ZoneCacheEntry {
    TransformerConfig model;
    int tensor_parallel = 1;
    ClusterSpec cluster;
    ZoneBoundaries zones;
  };

  // A mutable plan wired to return its storage to plan_pool_ when the last
  // handle drops.
  std::shared_ptr<PartitionPlan> AcquirePlan();

  // Looks up a session, extending its lifetime past any concurrent
  // CloseSession (callers copy the shared_ptr under sessions_mu_, then lock
  // the session's own mutex — never a raw pointer across the gap).
  std::shared_ptr<Session> FindSession(const std::string& stream_id) const;

  PlanResponse PlanStateless(const PlanRequest& request);
  PlanResponse PlanSession(const PlanRequest& request);

  // Capacity derivation (ZeppelinStrategy's historical policy): explicit
  // option, or batch average + 25% headroom capped by the memory model.
  int64_t DeriveCapacity(const Batch& batch, const CostModel& cost_model,
                         const ClusterSpec& spec, const PlanningOptions& options) const;
  ZoneBoundaries CachedZones(const CostModel& cost_model, const ClusterSpec& spec);
  std::shared_ptr<Session> FindOrCreateSession(const std::string& stream_id);

  PlanServiceOptions options_;

  // Declared before the session table: sessions hold DeltaPlanners whose
  // rebases reference the pool, so the pool must be destroyed last.
  std::optional<ThreadPool> pool_;
  // Serializes every use of pool_ (ThreadPool batches are not reentrant and
  // admit one caller at a time). Delta patches never take this.
  std::mutex pool_mu_;

  mutable std::mutex sessions_mu_;
  // shared_ptr values: a session stays alive for any request that looked it
  // up even if CloseSession erases it concurrently (see FindSession).
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;

  std::mutex stateless_mu_;
  std::vector<std::unique_ptr<StatelessCtx>> stateless_free_;

  std::mutex zones_mu_;
  std::vector<ZoneCacheEntry> zone_cache_;

  std::shared_ptr<PlanPool> plan_pool_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_PLAN_SERVICE_H_
