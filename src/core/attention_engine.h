// Attention engine (paper §3.2).
//
// Executes the partitioner's three sequence queues on each device in the
// order inter-node -> intra-node -> local (forward; reversed in backward, as
// the paper's Fig. 12(c) timeline shows). Each ring sequence runs the
// standard ring-attention pattern: G rounds, where every rank computes
// attention for its causal-balanced chunk pair against the KV block it
// currently holds while concurrently forwarding that block to the next rank.
// Inter-node hops are delegated to the routing layer (§3.3); intra-node hops
// are direct NVSwitch sends; local sequences use a single variable-length
// kernel with no communication.
//
// The inter-first ordering matters: inter-node rings span and subsume the
// intra-node groups of their nodes, so finishing them first lets intra-node
// queues start immediately, whereas the reverse order would stall inter-node
// launches on the slowest node (§3.2). This is design ablation D2.
#ifndef SRC_CORE_ATTENTION_ENGINE_H_
#define SRC_CORE_ATTENTION_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/chunking.h"
#include "src/core/partitioner.h"
#include "src/core/routing.h"
#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

enum class Direction : uint8_t { kForward, kBackward };

enum class QueueOrder : uint8_t {
  kInterIntraLocal,  // Paper order (forward).
  kLocalIntraInter,  // Reverse (used in backward; forward variant = D2 ablation).
};

struct AttentionEngineOptions {
  // How ring sequences are sharded across ranks: the paper's causal-balanced
  // 2G chunk pairs, the naive contiguous split (ablation D3), or
  // token-striped (Striped Attention).
  ChunkScheme chunk_scheme = ChunkScheme::kBalancedPairs;
  // Queue order for the *forward* pass; backward always uses the reverse of
  // whatever is configured here.
  QueueOrder forward_order = QueueOrder::kInterIntraLocal;
};

class AttentionEngine {
 public:
  AttentionEngine(const CostModel& cost_model, const FabricResources& fabric,
                  const RoutingLayer& routing, AttentionEngineOptions options);

  // Emits the attention stage of one layer for `plan`. deps[r] gates rank r's
  // first task (pass {} for layer start). Returns one done-task per rank.
  std::vector<TaskId> Emit(TaskGraph& graph, const PartitionPlan& plan, Direction direction,
                           const std::vector<std::vector<TaskId>>& deps,
                           const std::string& label) const;

  // Emits one ring sequence; exposed for baselines and tests. Takes a
  // non-owning view: plan rings resolve via PartitionPlan::view()/rings(),
  // owning RingSequences convert implicitly. Appends each participating
  // rank's final compute task to last_task_per_rank.
  void EmitRingSequence(TaskGraph& graph, const RingView& ring, Direction direction,
                        const std::vector<std::vector<TaskId>>& deps, const std::string& label,
                        std::vector<std::vector<TaskId>>* last_task_per_rank) const;

 private:
  void EmitLocals(TaskGraph& graph, const std::vector<LocalSequence>& locals,
                  Direction direction, const std::vector<std::vector<TaskId>>& deps,
                  const std::string& label,
                  std::vector<std::vector<TaskId>>* last_task_per_rank) const;

  const CostModel* cost_model_;
  const FabricResources* fabric_;
  const RoutingLayer* routing_;
  AttentionEngineOptions options_;
  // Per-ring chunk-assignment workspace, recycled across EmitRingSequence
  // calls (Emit is logically const; the scratch holds no observable state).
  mutable std::vector<ChunkPair> chunk_scratch_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_ATTENTION_ENGINE_H_
