// Communication routing layer (paper §3.3).
//
// A ring-attention send from rank a (node X) to rank b (node Y) normally
// pushes the whole KV block through a's affinity NIC, leaving every other NIC
// of the node idle and the reverse direction unused. The routing layer
// disaggregates GPU-NIC affinity by decomposing the transfer into:
//
//   1. Workload dispatch (intra-node): a scatters its n bytes over x1 send
//      proxy ranks through NVSwitch (n/x1 each);
//   2. Inter-node transfer (multi-NIC): each send proxy ships its slice to a
//      matched receive proxy on Y through its *own* NIC;
//   3. Workload combine (intra-node): the x2 receive proxies forward their
//      slices to b.
//
// Direct cost b_inter * n becomes (Eq. 1):
//   b_intra * n * (x1-1)/x1 + b_inter * max(n/x1, n/x2) + b_intra * n * (x2-1)/x2
//
// Proxy counts follow the paper's pairing rule: x1 = x2 = min(#GPUs usable on
// the sending node, #GPUs usable on the receiving node), additionally capped
// by the number of distinct NICs (extra proxies sharing a NIC add dispatch
// cost without adding inter-node bandwidth — relevant on Cluster A where two
// GPUs share each NIC).
#ifndef SRC_CORE_ROUTING_H_
#define SRC_CORE_ROUTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/cost_model.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

struct RoutingOptions {
  bool enabled = true;
  // Upper bound on proxies per side (0 = no extra cap).
  int max_proxies = 0;
};

class RoutingLayer {
 public:
  RoutingLayer(const FabricResources& fabric, RoutingOptions options);

  // Emits the (possibly routed) transfer of `bytes` from src_gpu to dst_gpu
  // and returns a task id that completes when the data is fully on dst_gpu.
  // Falls back to a direct send when routing is disabled, the transfer is
  // intra-node, or only one proxy pair is available.
  TaskId EmitTransfer(TaskGraph& graph, int src_gpu, int dst_gpu, int64_t bytes,
                      std::vector<TaskId> deps, const std::string& label) const;

  // Proxy ranks (global) the layer would use for a src-node -> dst-node
  // transfer originated by src_gpu. One GPU per distinct NIC, starting from
  // the source GPU itself (its slice skips the dispatch hop).
  std::vector<int> SendProxies(int src_gpu, int dst_node) const;
  std::vector<int> RecvProxies(int dst_gpu, int src_node) const;

  // Analytic Eq. 1 cost (excluding latencies) for n bytes with x1/x2 proxies.
  static double RoutedCostUs(const CostModel& cost_model, int64_t bytes, int x1, int x2);
  // Analytic direct cost for comparison.
  static double DirectCostUs(const CostModel& cost_model, int64_t bytes);

 private:
  const FabricResources* fabric_;
  RoutingOptions options_;
};

}  // namespace zeppelin

#endif  // SRC_CORE_ROUTING_H_
