// Small descriptive-statistics helpers used by benches and tests.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zeppelin {

// Online accumulator for min/max/mean/variance (Welford) plus sum.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  // Sample variance / standard deviation (n - 1 denominator). 0 for n < 2.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Exact percentile (linear interpolation between order statistics).
// `p` in [0, 100]. Input need not be sorted; the function copies.
double Percentile(std::vector<double> values, double p);

// Geometric mean of strictly positive values.
double GeometricMean(const std::vector<double>& values);

// Coefficient of variation max/mean - 1, a common load-imbalance metric:
// 0 means perfectly balanced.
double ImbalanceRatio(const std::vector<double>& loads);

// Formats a double with `digits` significant decimals (helper for tables).
std::string FormatDouble(double v, int digits);

}  // namespace zeppelin

#endif  // SRC_COMMON_STATS_H_
