#include "src/common/table.h"

#include <cstdio>
#include <sstream>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace zeppelin {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ZCHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  ZCHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int decimals) { return FormatDouble(v, decimals); }

std::string Table::Cell(int64_t v) { return std::to_string(v); }

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << "  ";
      }
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << "\n";
  };

  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

}  // namespace zeppelin
