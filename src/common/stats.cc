#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace zeppelin {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0 : mean_; }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  ZCHECK(!values.empty());
  ZCHECK(p >= 0 && p <= 100) << "p=" << p;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  ZCHECK(!values.empty());
  double log_sum = 0;
  for (double v : values) {
    ZCHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double ImbalanceRatio(const std::vector<double>& loads) {
  ZCHECK(!loads.empty());
  RunningStats s;
  for (double l : loads) {
    s.Add(l);
  }
  if (s.mean() == 0) {
    return 0;
  }
  return s.max() / s.mean() - 1.0;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace zeppelin
