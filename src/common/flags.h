// Minimal command-line flag parsing for the bench harnesses and examples.
//
// Supports `--key=value` and bare `--switch` forms; anything else is a
// positional argument. No registration step — callers query by name with a
// default, which keeps one-file tools one file.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zeppelin {

class Flags {
 public:
  Flags(int argc, char** argv);

  // --key=value lookup; returns `fallback` when absent.
  std::string GetString(const std::string& key, const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  // True for `--key` or `--key=true|1|yes`.
  bool GetBool(const std::string& key, bool fallback = false) const;
  // Thread-count flags (e.g. --planner_threads): a non-negative integer
  // passed through as-is (0 keeps its caller-defined meaning), or "auto" /
  // "hw" for the hardware concurrency. The shared convention for every tool
  // that wires a thread knob into the planner.
  int GetThreadCount(const std::string& key, int fallback) const;

  bool Has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags that were never queried — typo detection for tools that call this
  // after reading everything they understand.
  std::vector<std::string> UnusedFlags() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool has_value;
    mutable bool used;
  };
  const Entry* Find(const std::string& key) const;

  std::vector<Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_FLAGS_H_
