#include "src/common/load_tracker.h"

#include <numeric>

#include "src/common/check.h"

namespace zeppelin {

void LoadTracker::Reset(int n) {
  ZCHECK(n >= 0 && static_cast<int64_t>(n) <= kIndexMask + 1) << "n=" << n;
  heap_.resize(n);
  pos_.resize(n);
  // With all loads equal the order is by index alone, so the identity
  // permutation is already a valid heap.
  std::iota(heap_.begin(), heap_.end(), int64_t{0});
  std::iota(pos_.begin(), pos_.end(), 0);
  ++ops_;
}

void LoadTracker::Assign(const std::vector<int64_t>& loads) {
  const int n = static_cast<int>(loads.size());
  ZCHECK(static_cast<int64_t>(n) <= kIndexMask + 1) << "n=" << n;
  heap_.resize(n);
  pos_.resize(n);
  for (int i = 0; i < n; ++i) {
    ZCHECK(loads[i] >= 0 && loads[i] < kMaxLoad) << "load=" << loads[i];
    heap_[i] = (loads[i] << kIndexBits) | i;
    pos_[i] = i;
  }
  for (int p = n / 2 - 1; p >= 0; --p) {
    SiftDownBounded(p, heap_[p], n);
  }
  ++ops_;
}

void LoadTracker::Snapshot(std::vector<int64_t>* out) const {
  const int n = size();
  out->resize(n);
  for (int i = 0; i < n; ++i) {
    (*out)[i] = heap_[pos_[i]] >> kIndexBits;
  }
}

void LoadTracker::k_least(int k, std::vector<int>* out) {
  const int n = size();
  ZCHECK(k >= 0 && k <= n) << "k=" << k << " n=" << n;
  out->clear();
  ++ops_;
  // Pop k minima (ascending (load, index) by construction), then reinsert.
  // The packed key is a strict total order, so any valid heap shape yields
  // the same answers afterwards; popped keys are parked in the heap slots
  // the pops vacate (positions [n-k, n)), so no side storage is needed.
  for (int i = 0; i < k; ++i) {
    const int64_t top = heap_[0];
    out->push_back(static_cast<int>(top & kIndexMask));
    const int live = n - i - 1;  // Heap size after this pop.
    const int64_t last = heap_[live];
    heap_[live] = top;  // Park the popped key; reinserted below.
    if (live > 0) {
      SiftDownBounded(0, last, live);
    }
  }
  for (int i = k - 1; i >= 0; --i) {
    // Reinsert parked keys, largest first: each SiftUp treats its position
    // as the new leaf of the prefix heap growing back to full size.
    const int live = n - i - 1;
    SiftUp(live, heap_[live]);
  }
}

}  // namespace zeppelin
