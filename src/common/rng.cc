#include "src/common/rng.h"

#include "src/common/check.h"

namespace zeppelin {
namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ZCHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` that fits in 64
  // bits, so every residue is equally likely.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  ZCHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    ZCHECK_GE(w, 0.0);
    total += w;
  }
  ZCHECK_GT(total, 0.0) << "NextWeighted requires a positive total weight";
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(weights.size()) - 1;  // Guard against FP round-off.
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace zeppelin
