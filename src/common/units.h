// Unit helpers. All times in the library are microseconds (double), all data
// volumes are bytes (int64_t), and all bandwidths are bytes per microsecond
// (== MB/s * 1e-6... concretely: 1 GB/s == 1e3 bytes/us). Keeping a single
// canonical unit per dimension avoids a whole class of unit bugs; these
// helpers exist so call sites can state intent in natural units.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace zeppelin {

// --- Time ---------------------------------------------------------------
constexpr double kUsPerMs = 1.0e3;
constexpr double kUsPerSecond = 1.0e6;

constexpr double MsToUs(double ms) { return ms * kUsPerMs; }
constexpr double UsToMs(double us) { return us / kUsPerMs; }
constexpr double SecondsToUs(double s) { return s * kUsPerSecond; }
constexpr double UsToSeconds(double us) { return us / kUsPerSecond; }

// --- Data volume ----------------------------------------------------------
constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

// --- Bandwidth --------------------------------------------------------------
// Canonical bandwidth unit: bytes per microsecond. 1 GB/s = 1000 B/us.
constexpr double GBpsToBytesPerUs(double gbps) { return gbps * 1.0e3; }
constexpr double GbpsToBytesPerUs(double gbits_per_s) { return gbits_per_s * 1.0e3 / 8.0; }
constexpr double BytesPerUsToGBps(double bpu) { return bpu / 1.0e3; }

// --- Compute -----------------------------------------------------------------
// Canonical compute rate: FLOPs per microsecond. 1 TFLOP/s = 1e6 FLOP/us.
constexpr double TflopsToFlopsPerUs(double tflops) { return tflops * 1.0e6; }

}  // namespace zeppelin

#endif  // SRC_COMMON_UNITS_H_
