#include "src/common/trace_json.h"

#include <cstdio>
#include <sstream>

namespace zeppelin {
namespace {

// Minimal JSON string escaping: the labels we generate only need quotes,
// backslashes, and control characters handled.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void ChromeTraceWriter::Add(TraceEvent event) { events_.push_back(std::move(event)); }

void ChromeTraceWriter::NameThread(int pid, int tid, const std::string& name) {
  thread_names_.push_back({pid, tid, name});
}

std::string ChromeTraceWriter::ToJson() const {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (const auto& tn : thread_names_) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << R"({"name":"thread_name","ph":"M","pid":)" << tn.pid << R"(,"tid":)" << tn.tid
        << R"(,"args":{"name":")" << Escape(tn.name) << R"("}})";
  }
  for (const auto& e : events_) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << R"({"name":")" << Escape(e.name) << R"(","cat":")" << Escape(e.category)
        << R"(","ph":"X","ts":)" << e.start_us << R"(,"dur":)" << e.duration_us << R"(,"pid":)"
        << e.pid << R"(,"tid":)" << e.tid << "}";
  }
  out << "\n]\n";
  return out.str();
}

bool ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace zeppelin
