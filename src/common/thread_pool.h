// Fixed-size thread pool with deterministic work ownership — the planner's
// parallel substrate.
//
// The pool exists for *deterministic* data parallelism: callers that must
// produce bit-identical results at any thread count (the planner's contract)
// cannot use work stealing, because stealing makes "which context computed
// this" a race. Instead, both batch entry points use static ownership:
//
//   RunTasks(n, fn):    task t runs on context t % num_contexts(), tasks of a
//                       context in increasing t order.
//   ParallelFor(n, fn): [0, n) is cut into num_contexts() contiguous slices;
//                       slice t runs on context t.
//
// Context 0 is always the calling thread (it participates instead of
// blocking), contexts 1..T-1 are the pool's workers. A caller that indexes
// per-context scratch slabs by the context id therefore gets stable slab
// reuse, and any output written to slots derived from the task index alone is
// byte-identical no matter how many threads execute or how they interleave.
//
// Submit()/WaitAll() queue ad-hoc task batches for work whose per-task cost
// is too uneven for static slicing; scheduling of submitted tasks is
// first-come (not deterministic), so submitted tasks must keep determinism
// the same way: write only to slots they own.
//
// The pool is exception-free like the rest of the library (invariant
// violations abort via ZCHECK); task callables must not throw. Batch calls
// are not reentrant: tasks must not call RunTasks/ParallelFor/WaitAll on the
// pool that is running them.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zeppelin {

class ThreadPool {
 public:
  // `num_threads` is the total number of execution contexts INCLUDING the
  // calling thread, clamped to [1, kMaxContexts]; num_threads - 1 workers are
  // spawned. ThreadPool(1) spawns nothing and runs every batch inline. The
  // upper clamp keeps a typo'd flag (--planner_threads=1000000) from driving
  // std::thread construction into std::terminate; oversubscribing a host is
  // still allowed (it is how determinism is exercised on small machines).
  static constexpr int kMaxContexts = 256;
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_contexts() const { return static_cast<int>(workers_.size()) + 1; }

  // std::thread::hardware_concurrency with a floor of 1 (the standard allows
  // it to report 0 when unknown).
  static int HardwareThreads();

  // Runs fn(task, context) for task in [0, num_tasks); task t executes on
  // context t % num_contexts(). Blocks until every task has finished; the
  // calling thread executes context 0's share.
  void RunTasks(int num_tasks, const std::function<void(int task, int context)>& fn);

  // Runs fn(begin, end, context) over num_contexts() contiguous slices of
  // [0, n); slice t executes on context t. Blocks until done.
  void ParallelFor(int64_t n, const std::function<void(int64_t begin, int64_t end, int context)>& fn);

  // Queues one task of an ad-hoc batch. Queued tasks may start immediately on
  // idle workers; WaitAll() drains the queue (the caller participates) and
  // returns once every submitted task has completed.
  void Submit(std::function<void()> fn);
  void WaitAll();

 private:
  struct Batch {
    const std::function<void(int, int)>* fn = nullptr;
    int num_tasks = 0;
  };

  void WorkerLoop(int context);
  void RunBatchShare(const Batch& batch, int context);
  // Pops and runs queued tasks until the queue is empty. Returns with the
  // lock re-held.
  void DrainQueue(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers: new batch / queued task / stop.
  std::condition_variable done_cv_;   // Caller: batch or queue fully done.

  // Batch state (one batch in flight at a time; guarded by mu_).
  Batch batch_;
  uint64_t batch_epoch_ = 0;          // Bumped per RunTasks call.
  int batch_pending_ = 0;             // Contexts that have not finished their share.

  // Ad-hoc queue state (guarded by mu_).
  std::deque<std::function<void()>> queue_;
  int queue_running_ = 0;             // Queued tasks currently executing.

  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_THREAD_POOL_H_
