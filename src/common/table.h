// Plain-text table printer used by the bench harnesses to emit paper-style
// rows. Columns are right-aligned; the first column is left-aligned.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace zeppelin {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given number of decimals.
  static std::string Cell(double v, int decimals = 2);
  static std::string Cell(int64_t v);

  // Renders the table, header first, with a separator rule.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

  // Renders rows as comma-separated values (no alignment), for machine reads.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_TABLE_H_
