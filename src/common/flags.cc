#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/thread_pool.h"

namespace zeppelin {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    Entry entry;
    entry.used = false;
    if (eq == std::string::npos) {
      entry.key = body;
      entry.has_value = false;
    } else {
      entry.key = body.substr(0, eq);
      entry.value = body.substr(eq + 1);
      entry.has_value = true;
    }
    entries_.push_back(std::move(entry));
  }
}

const Flags::Entry* Flags::Find(const std::string& key) const {
  // Last occurrence wins, mirroring common CLI conventions.
  const Entry* found = nullptr;
  for (const Entry& e : entries_) {
    if (e.key == key) {
      e.used = true;
      found = &e;
    }
  }
  return found;
}

std::string Flags::GetString(const std::string& key, const std::string& fallback) const {
  const Entry* e = Find(key);
  if (e == nullptr || !e->has_value) {
    return fallback;
  }
  return e->value;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  const Entry* e = Find(key);
  if (e == nullptr || !e->has_value) {
    return fallback;
  }
  return std::strtoll(e->value.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const Entry* e = Find(key);
  if (e == nullptr || !e->has_value) {
    return fallback;
  }
  return std::strtod(e->value.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  const Entry* e = Find(key);
  if (e == nullptr) {
    return fallback;
  }
  if (!e->has_value) {
    return true;  // Bare --switch.
  }
  return e->value == "true" || e->value == "1" || e->value == "yes";
}

int Flags::GetThreadCount(const std::string& key, int fallback) const {
  const Entry* e = Find(key);
  if (e == nullptr || !e->has_value) {
    return fallback;
  }
  if (e->value == "auto" || e->value == "hw") {
    return ThreadPool::HardwareThreads();
  }
  // Numeric values pass through untouched — 0 keeps its caller-defined
  // meaning (e.g. "serial fast path" for the planner); negatives fall back.
  const int parsed = static_cast<int>(std::strtoll(e->value.c_str(), nullptr, 10));
  return parsed < 0 ? fallback : parsed;
}

bool Flags::Has(const std::string& key) const { return Find(key) != nullptr; }

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (!e.used) {
      out.push_back(e.key);
    }
  }
  return out;
}

}  // namespace zeppelin
