// Deterministic random number generation.
//
// Every stochastic choice in the library (dataset sampling, workload
// generation) flows through an explicitly seeded Rng so that experiments are
// bit-for-bit reproducible. We wrap a SplitMix64-seeded xoshiro256** rather
// than std::mt19937 so that the sequence is stable across standard library
// implementations.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace zeppelin {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextU64();

  // Uniform on [0, bound). bound must be > 0. Uses rejection sampling to avoid
  // modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform on [lo, hi] inclusive; lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // Samples an index from an (unnormalized) non-negative weight vector.
  // At least one weight must be positive.
  int NextWeighted(const std::vector<double>& weights);

  // Derives an independent child generator; useful to give each component its
  // own stream while keeping a single experiment-level seed.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace zeppelin

#endif  // SRC_COMMON_RNG_H_
