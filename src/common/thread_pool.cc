#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace zeppelin {

ThreadPool::ThreadPool(int num_threads) {
  const int contexts = std::clamp(num_threads, 1, kMaxContexts);
  workers_.reserve(contexts - 1);
  for (int c = 1; c < contexts; ++c) {
    workers_.emplace_back([this, c] { WorkerLoop(c); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::RunBatchShare(const Batch& batch, int context) {
  const int contexts = num_contexts();
  for (int t = context; t < batch.num_tasks; t += contexts) {
    (*batch.fn)(t, context);
  }
}

void ThreadPool::RunTasks(int num_tasks, const std::function<void(int, int)>& fn) {
  ZCHECK_GE(num_tasks, 0);
  if (num_tasks == 0) {
    return;
  }
  if (workers_.empty()) {
    Batch batch{&fn, num_tasks};
    RunBatchShare(batch, 0);
    return;
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ZCHECK_EQ(batch_pending_, 0) << "RunTasks is not reentrant";
    batch_.fn = &fn;
    batch_.num_tasks = num_tasks;
    batch_pending_ = num_contexts();
    epoch = ++batch_epoch_;
  }
  work_cv_.notify_all();
  RunBatchShare(batch_, 0);
  std::unique_lock<std::mutex> lock(mu_);
  if (--batch_pending_ == 0) {
    done_cv_.notify_all();
  } else {
    done_cv_.wait(lock, [this, epoch] {
      return batch_pending_ == 0 && batch_epoch_ == epoch;
    });
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t, int)>& fn) {
  ZCHECK_GE(n, 0);
  if (n == 0) {
    return;
  }
  const int64_t contexts = num_contexts();
  const std::function<void(int, int)> slice_fn = [&](int t, int context) {
    const int64_t begin = n * t / contexts;
    const int64_t end = n * (t + 1) / contexts;
    if (begin < end) {
      fn(begin, end, context);
    }
  };
  RunTasks(static_cast<int>(contexts), slice_fn);
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::DrainQueue(std::unique_lock<std::mutex>& lock) {
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++queue_running_;
    lock.unlock();
    task();
    lock.lock();
    if (--queue_running_ == 0 && queue_.empty()) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  DrainQueue(lock);
  done_cv_.wait(lock, [this] { return queue_.empty() && queue_running_ == 0; });
}

void ThreadPool::WorkerLoop(int context) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [this, seen_epoch] {
      return stop_ || batch_epoch_ != seen_epoch || !queue_.empty();
    });
    if (stop_) {
      return;
    }
    if (batch_epoch_ != seen_epoch) {
      seen_epoch = batch_epoch_;
      const Batch batch = batch_;
      lock.unlock();
      RunBatchShare(batch, context);
      lock.lock();
      if (--batch_pending_ == 0) {
        done_cv_.notify_all();
      }
      continue;
    }
    DrainQueue(lock);
  }
}

}  // namespace zeppelin
