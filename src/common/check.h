// Lightweight runtime-check macros used throughout the Zeppelin library.
//
// The library is exception-free in steady state: invariant violations indicate
// programming errors (not recoverable conditions) and abort with a diagnostic,
// following the "catch run-time errors early" guideline. All checks are active
// in every build type; none of them sit on hot paths.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace zeppelin {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[zeppelin] CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream sink that lets ZCHECK(x) << "detail" collect extra context lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace zeppelin

// Aborts with a diagnostic when `condition` is false. Usage:
//   ZCHECK(rank < world_size) << "rank=" << rank;
#define ZCHECK(condition)                                                       \
  if (condition) {                                                              \
  } else /* NOLINT */                                                           \
    ::zeppelin::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define ZCHECK_GE(a, b) ZCHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ZCHECK_GT(a, b) ZCHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ZCHECK_LE(a, b) ZCHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ZCHECK_LT(a, b) ZCHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ZCHECK_EQ(a, b) ZCHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ZCHECK_NE(a, b) ZCHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)

#endif  // SRC_COMMON_CHECK_H_
