// Round-batched exact greedy packer — the planner's bulk packing kernel.
//
// Both packing loops of the planner (Alg. 1 z01 onto nodes, Alg. 2 z0 onto
// devices) are the same process: a non-increasing weight stream placed
// greedily on the least-loaded bucket, ties broken by lowest index. The
// LoadTracker heap answers each placement in O(log n), but at S=64k that is
// still ~6 dependent cache hops per sequence and dominates Plan().
//
// This class computes the *identical* placement sequence in bulk. It keeps
// the packed (load << 20 | index) keys as a sorted array and exploits a
// provable property of descending-weight greedy: if every weight in a block
// of m consecutive items exceeds the gaps it competes with, the block's
// placements are exactly the m least-loaded buckets in (load, index) order.
// Formally, item j of the block goes to the bucket of the j-th smallest key
// k_(j) iff
//
//     k_(j) < min_{i < j} (k_(i) + (w_i << 20))        for all j in [0, m),
//
// i.e. no earlier placement of the block re-descends below the j-th key (the
// comparison is on packed keys, so the (load, index) tie-break is exact).
// Checking the condition is one prefix-min sweep; a committed block costs
// O(m) instead of O(m log n). Two fast sub-cases make the common workloads
// nearly free:
//
//   - Equal-weight blocks (lengths are granularity-quantized, so descending
//     order is full of long equal runs): the condition collapses to one
//     comparison, spread < w, and the key array stays sorted after the bulk
//     add — no merge at all.
//   - Mixed blocks: the largest valid prefix is committed and the updated
//     prefix is merged back (nearly-sorted insertion sort + one allocation-
//     free forward merge, O(m + inversions + n)).
//
// When blocks stop committing (weights far below the load spread — the
// "valley filling" regime after a cliff in the length distribution), the
// packer drops into a LoadTracker heap for a stretch and retries rounds
// after; the heap is the exact same (load, index) order, so the output is
// identical placement-for-placement either way. An op counter analogous to
// LoadTracker::ops() lets tests pin the bulk behavior.
#ifndef SRC_COMMON_GREEDY_PACKER_H_
#define SRC_COMMON_GREEDY_PACKER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/load_tracker.h"

namespace zeppelin {

class GreedyPacker {
 public:
  GreedyPacker() = default;
  explicit GreedyPacker(int n) { Reset(n); }

  // Re-initializes to n buckets with zero loads. Reuses storage.
  void Reset(int n);
  // Re-initializes from explicit non-negative loads.
  void Assign(const std::vector<int64_t>& loads);

  int size() const { return num_buckets_; }
  // Reads the current per-bucket loads back (overwrites `out`). O(n).
  void Loads(std::vector<int64_t>* out) const;

  // Work counter: ~1 per placed item plus the merge/heap traffic. A caller
  // that expects bulk commits can assert ops() stays near the item count.
  int64_t ops() const { return ops_ + heap_.ops(); }
  void ResetOps() {
    ops_ = 0;
    heap_.ResetOps();
  }

  // Places items [0, count) with non-increasing weights weight(i) >= 0 on the
  // least-loaded bucket each, exactly like LoadTracker::pack_min(w, cap)
  // would, calling emit(i, bucket, weight(i)) per placement in stream order
  // (the weight is passed along so callers need not re-decode it). Returns
  // `count` when everything fits, otherwise the index of the first item whose
  // greedy bucket would exceed `cap` (that item and its successors are not
  // placed; earlier placements remain applied, matching the sequential
  // semantics the overflow-restart logic depends on). After an overflow
  // return the internal key order is unspecified but Loads() stays exact —
  // reseed with Reset() or Assign() before packing again, which is exactly
  // what the planner's restart loops do.
  template <typename WeightFn, typename EmitFn>
  int Pack(int count, int64_t cap, WeightFn&& weight, EmitFn&& emit) {
    if (count > 0) {
      ZCHECK_GT(num_buckets_, 0) << "Pack() on an empty packer";
    }
    int i = 0;
    int bad_streak = 0;
    while (i < count) {
      if (heap_mode_) {
        // Ride the heap for up to one block, then try rounds again.
        const int stop = std::min(count, i + num_buckets_);
        while (i < stop) {
          const int64_t w = weight(i);
          const int bucket = heap_.pack_min(w, cap);
          if (bucket < 0) {
            return i;
          }
          emit(i, bucket, w);
          ++i;
        }
        ExitHeapMode();
        bad_streak = 0;
        continue;
      }
      int m = std::min(num_buckets_, count - i);
      const int64_t w_first = weight(i);
      ops_ += m;
      // Length of the equal-weight run at the block head (weights are
      // non-increasing, so one backward probe + a short scan finds it).
      int run = m;
      if (w_first != weight(i + m - 1)) {
        run = 1;
        while (run < m && weight(i + run) == w_first) {
          ++run;
        }
      }
      if (run >= m || run >= kMinUniformRun) {
        // Equal-weight block: placements are keys_[0..run) in order, and the
        // bulk add keeps the prefix sorted — full blocks need no merge.
        m = run;
        const int64_t wk = w_first << kIndexBits;
        if (keys_[m - 1] < keys_[0] + wk) {
          if ((keys_[m - 1] >> kIndexBits) + w_first > cap) {
            // Loads ascend with j, so the first overflow stops the stream
            // (and j = m-1 overflows, so this loop always returns).
            for (int j = 0; j < m; ++j) {
              if ((keys_[j] >> kIndexBits) + w_first > cap) {
                return i + j;
              }
              emit(i + j, static_cast<int>(keys_[j] & kIndexMask), w_first);
              keys_[j] += wk;
            }
          }
          if (m == num_buckets_) {
            for (int j = 0; j < m; ++j) {
              emit(i + j, static_cast<int>(keys_[j] & kIndexMask), w_first);
              keys_[j] += wk;
            }
          } else {
            for (int j = 0; j < m; ++j) {
              emit(i + j, static_cast<int>(keys_[j] & kIndexMask), w_first);
              tmp_[j] = keys_[j] + wk;
            }
            MergeTmpPrefix(m);
          }
          i += m;
          bad_streak = 0;
          continue;
        }
      }
      m = std::min(num_buckets_, count - i);
      // Mixed block: commit the longest prefix that satisfies the round
      // condition, then restore sortedness with one merge.
      int64_t prefix_min = INT64_MAX;
      int q = 0;
      for (int j = 0; j < m; ++j) {
        if (keys_[j] >= prefix_min) {
          break;  // An earlier placement re-descended below this key.
        }
        const int64_t w = weight(i + j);
        if ((keys_[j] >> kIndexBits) + w > cap) {
          if (j == 0) {
            return i;  // The true argmin overflows: sequential stop.
          }
          break;  // Re-examined by the next attempt against merged keys.
        }
        const int64_t new_key = keys_[j] + (w << kIndexBits);
        prefix_min = std::min(prefix_min, new_key);
        tmp_[j] = new_key;
        emit(i + j, static_cast<int>(keys_[j] & kIndexMask), w);
        ++q;
      }
      // The updated keys are nearly sorted (ascending keys plus descending
      // weights); insertion sort then one forward merge, allocation-free.
      for (int a = 1; a < q; ++a) {
        const int64_t key = tmp_[a];
        int b = a;
        while (b > 0 && tmp_[b - 1] > key) {
          tmp_[b] = tmp_[b - 1];
          --b;
        }
        tmp_[b] = key;
      }
      MergeTmpPrefix(q);
      i += q;
      if (q < m / 4) {
        if (++bad_streak >= 2) {
          EnterHeapMode();
          bad_streak = 0;
        }
      } else {
        bad_streak = 0;
      }
    }
    if (heap_mode_) {
      ExitHeapMode();
    }
    return count;
  }

 private:
  // Same packed-key layout as LoadTracker: (load << 20) | bucket index.
  static constexpr int kIndexBits = 20;
  static constexpr int64_t kIndexMask = (int64_t{1} << kIndexBits) - 1;
  static constexpr int64_t kMaxLoad = int64_t{1} << (62 - kIndexBits);
  // Shorter equal-weight runs go through the mixed path, which amortizes its
  // merge over up to a whole block of heterogeneous weights.
  static constexpr int kMinUniformRun = 8;

  void EnterHeapMode();
  void ExitHeapMode();

  // Forward merge of the staged sorted prefix tmp_[0..q) with the untouched
  // sorted suffix keys_[q..n) into keys_[0..n). Allocation-free and safe: the
  // destination cursor d = a + b - q never passes the suffix read cursor b,
  // and the prefix region it overwrites is already staged in tmp_. Once the
  // staged prefix is exhausted the remaining suffix is already in place.
  void MergeTmpPrefix(int q) {
    ops_ += num_buckets_;
    int a = 0;
    int b = q;
    int d = 0;
    while (a < q && b < num_buckets_) {
      keys_[d++] = tmp_[a] < keys_[b] ? tmp_[a++] : keys_[b++];
    }
    while (a < q) {
      keys_[d++] = tmp_[a++];
    }
  }

  int num_buckets_ = 0;
  std::vector<int64_t> keys_;  // Sorted ascending (round mode).
  std::vector<int64_t> tmp_;
  LoadTracker heap_;           // Valley-regime fallback engine.
  bool heap_mode_ = false;
  mutable std::vector<int64_t> loads_tmp_;
  int64_t ops_ = 0;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_GREEDY_PACKER_H_
