// Indexed addressable min-heap over per-bucket loads — the planner's packing
// primitive (paper §3.1, Algorithms 1-2).
//
// Greedy packing repeatedly asks "which bucket is least loaded?" and "which k
// buckets are least loaded?" while loads change one bucket at a time. A plain
// linear scan answers in O(n) per sequence and a sort in O(n log n); this
// tracker answers argmin() in O(1), add() in O(log n), and k_least() in
// O(k log n), which turns the whole per-iteration Plan() into
// O((S + P) log P).
//
// Ordering is the strict total order (load, bucket index): ties always break
// toward the lowest index. That is exactly the tie-break of the reference
// linear-scan packing, so heap-based plans are bit-identical to naive ones.
//
// Representation: each heap slot holds the packed key (load << 20) | index,
// so the lexicographic (load, index) comparison is a single int64 compare —
// measurably faster than a two-field comparator at planner bucket counts
// (tens of nodes / a few devices). The packing bounds buckets to 2^20 and
// loads to 2^43 tokens per bucket; both are checked and far beyond any
// cluster the planner targets.
#ifndef SRC_COMMON_LOAD_TRACKER_H_
#define SRC_COMMON_LOAD_TRACKER_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace zeppelin {

class LoadTracker {
 public:
  LoadTracker() = default;
  explicit LoadTracker(int n) { Reset(n); }

  // Re-initializes to `n` buckets, all loads zero. O(n); reuses storage, so a
  // tracker held in a scratch arena allocates only when `n` grows.
  void Reset(int n);

  // Re-initializes from explicit non-negative loads (heapify, O(n)).
  void Assign(const std::vector<int64_t>& loads);

  int size() const { return static_cast<int>(heap_.size()); }
  int64_t load(int i) const { return heap_[pos_[i]] >> kIndexBits; }

  // Bucket with the smallest (load, index). O(1).
  int argmin() const { return static_cast<int>(heap_[0] & kIndexMask); }
  int64_t min_load() const { return heap_[0] >> kIndexBits; }

  // Adds `delta` (may be negative; the load must stay >= 0) to bucket `i`'s
  // load. O(log n). Defined inline: this is the planner's innermost loop,
  // and a cross-TU call here costs as much as the sift itself.
  void add(int i, int64_t delta) {
    const int p = pos_[i];
    const int64_t key = heap_[p] + (delta << kIndexBits);
    // A negative key catches both a load driven below zero and (via the sign
    // bit) a load grown past kMaxLoad.
    ZCHECK_GE(key, 0) << "load out of range, bucket=" << i;
    ++ops_;
    if (delta >= 0) {
      SiftDownBounded(p, key, size());
    } else {
      SiftUp(p, key);
    }
  }

  // Fused argmin() + add(argmin, delta): places `delta` (>= 0) on the
  // least-loaded bucket and returns it. Skips the position lookup a generic
  // add needs (the root's position is 0 by invariant). O(log n).
  int add_min(int64_t delta) {
    const int64_t top = heap_[0];
    const int64_t key = top + (delta << kIndexBits);
    ZCHECK_GE(key, 0) << "load out of range";
    ++ops_;
    SiftDownBounded(0, key, size());
    return static_cast<int>(top & kIndexMask);
  }

  // Capacity-checked add_min: packs `delta` (>= 0) onto the least-loaded
  // bucket if the result stays within `cap`, returning the bucket; returns
  // -1 (and changes nothing) on overflow. The packing loops' innermost op.
  int pack_min(int64_t delta, int64_t cap) {
    const int64_t top = heap_[0];
    if ((top >> kIndexBits) + delta > cap) {
      return -1;
    }
    ++ops_;
    SiftDownBounded(0, top + (delta << kIndexBits), size());
    return static_cast<int>(top & kIndexMask);
  }

  // The k buckets with the smallest (load, index), ascending in that order
  // (pop k, then reinsert). O(k log n). `out` is overwritten, not reallocated
  // in steady state.
  void k_least(int k, std::vector<int>* out);

  // State snapshot/restore for planners that keep tracker state across
  // planning calls (the delta planner persists per-node loads between
  // iterations this way). Snapshot() exports the per-bucket loads in bucket
  // order (overwrites `out`, allocation-free in steady state); Restore()
  // rebuilds the heap from a snapshot. Restore(Snapshot()) round-trips to an
  // observationally identical tracker: same loads, same (load, index) order,
  // so every subsequent operation sequence behaves identically. O(n) each.
  void Snapshot(std::vector<int64_t>* out) const;
  void Restore(const std::vector<int64_t>& loads) { Assign(loads); }

  // Heap-operation counter (one tick per public call plus one per level a
  // sift traverses). Lets tests assert the planner stays O((S + P) log P):
  // a reintroduced linear scan shows up as an op count explosion.
  int64_t ops() const { return ops_; }
  void ResetOps() { ops_ = 0; }

 private:
  static constexpr int kIndexBits = 20;
  static constexpr int64_t kIndexMask = (int64_t{1} << kIndexBits) - 1;
  static constexpr int64_t kMaxLoad = int64_t{1} << (62 - kIndexBits);

  // Sifts `key` from `pos` toward the root / the leaves until the heap
  // property holds, maintaining pos_. The bounded form operates on the
  // logical prefix heap [0, n) (used while k_least temporarily shrinks).
  void SiftUp(int pos, int64_t key) {
    while (pos > 0) {
      const int parent = (pos - 1) / 2;
      if (heap_[parent] < key) {
        break;
      }
      heap_[pos] = heap_[parent];
      pos_[heap_[pos] & kIndexMask] = pos;
      pos = parent;
      ++ops_;
    }
    heap_[pos] = key;
    pos_[key & kIndexMask] = pos;
  }
  void SiftDownBounded(int pos, int64_t key, int n) {
    for (;;) {
      int child = 2 * pos + 1;
      if (child >= n) {
        break;
      }
      if (child + 1 < n && heap_[child + 1] < heap_[child]) {
        ++child;
      }
      if (heap_[child] > key) {
        break;
      }
      heap_[pos] = heap_[child];
      pos_[heap_[pos] & kIndexMask] = pos;
      pos = child;
      ++ops_;
    }
    heap_[pos] = key;
    pos_[key & kIndexMask] = pos;
  }

  std::vector<int64_t> heap_;  // heap_[pos] = (load << kIndexBits) | bucket.
  std::vector<int> pos_;       // pos_[bucket] = heap position.
  int64_t ops_ = 0;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_LOAD_TRACKER_H_
