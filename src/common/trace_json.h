// Chrome-trace ("catapult") JSON writer. The simulator emits execution
// timelines in this format so runs can be inspected in chrome://tracing or
// Perfetto — the reproduction of the paper's Fig. 12 timeline analysis.
#ifndef SRC_COMMON_TRACE_JSON_H_
#define SRC_COMMON_TRACE_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zeppelin {

struct TraceEvent {
  std::string name;       // Human label, e.g. "ring round 3 kv send".
  std::string category;   // e.g. "compute", "inter_comm".
  double start_us = 0;
  double duration_us = 0;
  int pid = 0;            // Process lane: we use node index.
  int tid = 0;            // Thread lane: we use resource index within node.
};

class ChromeTraceWriter {
 public:
  void Add(TraceEvent event);
  // Names a (pid, tid) lane; emitted as chrome metadata events.
  void NameThread(int pid, int tid, const std::string& name);

  // Serializes to chrome trace JSON (array-of-events form).
  std::string ToJson() const;

  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  size_t event_count() const { return events_.size(); }

 private:
  struct ThreadName {
    int pid;
    int tid;
    std::string name;
  };
  std::vector<TraceEvent> events_;
  std::vector<ThreadName> thread_names_;
};

}  // namespace zeppelin

#endif  // SRC_COMMON_TRACE_JSON_H_
