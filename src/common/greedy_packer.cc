#include "src/common/greedy_packer.h"

#include <numeric>

namespace zeppelin {

void GreedyPacker::Reset(int n) {
  ZCHECK(n >= 0 && static_cast<int64_t>(n) <= kIndexMask + 1) << "n=" << n;
  num_buckets_ = n;
  keys_.resize(n);
  tmp_.resize(n);
  // All loads equal: ascending index order is the sorted key order.
  std::iota(keys_.begin(), keys_.end(), int64_t{0});
  heap_mode_ = false;
  ++ops_;
}

void GreedyPacker::Assign(const std::vector<int64_t>& loads) {
  const int n = static_cast<int>(loads.size());
  ZCHECK(static_cast<int64_t>(n) <= kIndexMask + 1) << "n=" << n;
  num_buckets_ = n;
  keys_.resize(n);
  tmp_.resize(n);
  for (int i = 0; i < n; ++i) {
    ZCHECK(loads[i] >= 0 && loads[i] < kMaxLoad) << "load=" << loads[i];
    keys_[i] = (loads[i] << kIndexBits) | i;
  }
  std::sort(keys_.begin(), keys_.end());
  heap_mode_ = false;
  ops_ += n;
}

void GreedyPacker::Loads(std::vector<int64_t>* out) const {
  out->resize(num_buckets_);
  if (heap_mode_) {
    // Only reachable after an overflow return mid-heap-stretch; the loads of
    // every committed placement are still exact.
    for (int i = 0; i < num_buckets_; ++i) {
      (*out)[i] = heap_.load(i);
    }
    return;
  }
  for (int i = 0; i < num_buckets_; ++i) {
    (*out)[keys_[i] & kIndexMask] = keys_[i] >> kIndexBits;
  }
}

void GreedyPacker::EnterHeapMode() {
  Loads(&loads_tmp_);  // heap_mode_ is false here: decodes from keys_.
  heap_.Assign(loads_tmp_);
  heap_mode_ = true;
}

void GreedyPacker::ExitHeapMode() {
  for (int i = 0; i < num_buckets_; ++i) {
    keys_[i] = (heap_.load(i) << kIndexBits) | i;
  }
  std::sort(keys_.begin(), keys_.end());
  ops_ += num_buckets_;
  heap_mode_ = false;
}

}  // namespace zeppelin
