#include "src/topology/path.h"

#include <limits>
#include <sstream>

#include "src/common/check.h"

namespace zeppelin {

FabricResources::FabricResources(const ClusterSpec& spec) : spec_(spec) {
  spec_.Validate();
  const int gpus = spec_.world_size();
  const int nics = spec_.num_nodes * spec_.nics_per_node;
  compute_base_ = 0;
  egress_base_ = compute_base_ + gpus;
  ingress_base_ = egress_base_ + gpus;
  nic_tx_base_ = ingress_base_ + gpus;
  nic_rx_base_ = nic_tx_base_ + nics;
  num_resources_ = nic_rx_base_ + nics;
  rank_speed_.assign(gpus, 1.0);
}

double FabricResources::rank_speed(int gpu) const {
  ZCHECK(gpu >= 0 && gpu < spec_.world_size()) << "gpu=" << gpu;
  return rank_speed_[gpu];
}

void FabricResources::set_rank_speed(int gpu, double factor) {
  ZCHECK(gpu >= 0 && gpu < spec_.world_size()) << "gpu=" << gpu;
  ZCHECK(factor > 0) << "speed factor must be positive: " << factor;
  rank_speed_[gpu] = factor;
}

void FabricResources::ResetRankSpeeds() {
  rank_speed_.assign(spec_.world_size(), 1.0);
}

bool FabricResources::heterogeneous() const {
  for (double s : rank_speed_) {
    if (s != 1.0) {
      return true;
    }
  }
  return false;
}

ResourceId FabricResources::ComputeLane(int gpu) const {
  ZCHECK(gpu >= 0 && gpu < spec_.world_size()) << "gpu=" << gpu;
  return compute_base_ + gpu;
}

ResourceId FabricResources::NvswitchEgress(int gpu) const {
  ZCHECK(gpu >= 0 && gpu < spec_.world_size()) << "gpu=" << gpu;
  return egress_base_ + gpu;
}

ResourceId FabricResources::NvswitchIngress(int gpu) const {
  ZCHECK(gpu >= 0 && gpu < spec_.world_size()) << "gpu=" << gpu;
  return ingress_base_ + gpu;
}

ResourceId FabricResources::NicTx(int node, int nic) const {
  ZCHECK(node >= 0 && node < spec_.num_nodes) << "node=" << node;
  ZCHECK(nic >= 0 && nic < spec_.nics_per_node) << "nic=" << nic;
  return nic_tx_base_ + node * spec_.nics_per_node + nic;
}

ResourceId FabricResources::NicRx(int node, int nic) const {
  ZCHECK(node >= 0 && node < spec_.num_nodes) << "node=" << node;
  ZCHECK(nic >= 0 && nic < spec_.nics_per_node) << "nic=" << nic;
  return nic_rx_base_ + node * spec_.nics_per_node + nic;
}

std::string FabricResources::ResourceName(ResourceId id) const {
  ZCHECK(id >= 0 && id < num_resources_) << "id=" << id;
  std::ostringstream out;
  if (id < egress_base_) {
    const int gpu = id - compute_base_;
    out << "n" << spec_.NodeOf(gpu) << ".g" << spec_.LocalOf(gpu) << ".compute";
  } else if (id < ingress_base_) {
    const int gpu = id - egress_base_;
    out << "n" << spec_.NodeOf(gpu) << ".g" << spec_.LocalOf(gpu) << ".nvl_out";
  } else if (id < nic_tx_base_) {
    const int gpu = id - ingress_base_;
    out << "n" << spec_.NodeOf(gpu) << ".g" << spec_.LocalOf(gpu) << ".nvl_in";
  } else if (id < nic_rx_base_) {
    const int idx = id - nic_tx_base_;
    out << "n" << idx / spec_.nics_per_node << ".nic" << idx % spec_.nics_per_node << ".tx";
  } else {
    const int idx = id - nic_rx_base_;
    out << "n" << idx / spec_.nics_per_node << ".nic" << idx % spec_.nics_per_node << ".rx";
  }
  return out.str();
}

int FabricResources::ResourceNode(ResourceId id) const {
  ZCHECK(id >= 0 && id < num_resources_) << "id=" << id;
  if (id < nic_tx_base_) {
    // GPU-owned resources repeat every world_size().
    const int gpu = id % spec_.world_size();
    return spec_.NodeOf(gpu);
  }
  const int idx = (id - nic_tx_base_) % (spec_.num_nodes * spec_.nics_per_node);
  return idx / spec_.nics_per_node;
}

TransferPath FabricResources::Resolve(int src_gpu, int dst_gpu, int src_nic, int dst_nic) const {
  ZCHECK(src_gpu >= 0 && src_gpu < spec_.world_size()) << "src=" << src_gpu;
  ZCHECK(dst_gpu >= 0 && dst_gpu < spec_.world_size()) << "dst=" << dst_gpu;

  TransferPath path;
  if (src_gpu == dst_gpu) {
    // Same-device move: free (tensor stays in HBM).
    path.bandwidth = std::numeric_limits<double>::infinity();
    path.latency_us = 0;
    return path;
  }

  const int src_node = spec_.NodeOf(src_gpu);
  const int dst_node = spec_.NodeOf(dst_gpu);
  if (src_node == dst_node) {
    path.resources = {NvswitchEgress(src_gpu), NvswitchIngress(dst_gpu)};
    path.bandwidth = spec_.nvswitch_bandwidth;
    path.latency_us = spec_.intra_latency_us;
    return path;
  }

  if (src_nic < 0) {
    src_nic = spec_.NicOf(src_gpu);
  }
  if (dst_nic < 0) {
    dst_nic = spec_.NicOf(dst_gpu);
  }
  ZCHECK(src_nic >= 0 && src_nic < spec_.nics_per_node) << "src_nic=" << src_nic;
  ZCHECK(dst_nic >= 0 && dst_nic < spec_.nics_per_node) << "dst_nic=" << dst_nic;

  // Cross-node traffic reaches the NIC over PCIe (GPUDirect RDMA), which
  // does not contend with the NVSwitch fabric — so the path serializes only
  // on the two NIC directional channels. This is what lets the routing
  // layer's intra-node dispatch overlap with in-flight inter-node transfers.
  path.resources = {NicTx(src_node, src_nic), NicRx(dst_node, dst_nic)};
  path.bandwidth = spec_.nic_bandwidth;
  path.latency_us = spec_.inter_latency_us;
  path.crosses_node = true;
  return path;
}

}  // namespace zeppelin
