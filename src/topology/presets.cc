// Cluster presets mirroring the paper's evaluation hardware (§5).
//
// Bandwidth/compute figures are *effective* numbers (what NCCL send/recv and
// FlashAttention actually sustain) rather than datasheet peaks; they are
// calibrated so the absolute per-round times in the paper's Fig. 12 timeline
// land in the right regime (e.g. a 52 MB KV block crossing nodes on one
// 200 Gb/s NIC takes ~2.1 ms, matching the paper's 2.18 ms measurement).
#include "src/common/units.h"
#include "src/topology/cluster.h"

namespace zeppelin {

ClusterSpec MakeClusterA(int num_nodes) {
  ClusterSpec spec;
  spec.name = "ClusterA(A800)";
  spec.num_nodes = num_nodes;
  spec.gpus_per_node = 8;
  spec.nics_per_node = 4;
  // 200 Gb/s RoCE per NIC; ~24 GB/s achievable per direction.
  spec.nic_bandwidth = GbpsToBytesPerUs(200.0) * 0.96;
  // A800 NVSwitch: 400 GB/s nominal; ~160 GB/s sustained for p2p send/recv.
  spec.nvswitch_bandwidth = GBpsToBytesPerUs(160.0);
  // A800 bf16 tensor peak 312 TFLOP/s; ~45% sustained on attention/GEMM mix.
  spec.gpu_effective_tflops = 140.0;
  spec.intra_latency_us = 6.0;
  spec.inter_latency_us = 18.0;
  spec.kernel_launch_us = 3.0;
  spec.gpu_memory_bytes = 80.0 * kGiB;
  spec.hbm_bandwidth = 1.9e6;  // ~1.9 TB/s HBM2e.
  // Each NIC shared by two adjacent GPUs through a PCIe switch.
  spec.gpu_to_nic = {0, 0, 1, 1, 2, 2, 3, 3};
  spec.Validate();
  return spec;
}

ClusterSpec MakeClusterB(int num_nodes) {
  ClusterSpec spec;
  spec.name = "ClusterB(H800)";
  spec.num_nodes = num_nodes;
  spec.gpus_per_node = 8;
  spec.nics_per_node = 8;
  spec.nic_bandwidth = GbpsToBytesPerUs(200.0) * 0.96;
  // H800 NVLink is capped (~400 GB/s nominal); ~160 GB/s sustained p2p.
  spec.nvswitch_bandwidth = GBpsToBytesPerUs(160.0);
  // Hopper bf16 tensor peak ~990 TFLOP/s; ~40% sustained.
  spec.gpu_effective_tflops = 400.0;
  spec.intra_latency_us = 5.0;
  spec.inter_latency_us = 18.0;
  spec.kernel_launch_us = 3.0;
  spec.gpu_memory_bytes = 80.0 * kGiB;
  spec.hbm_bandwidth = 3.2e6;  // ~3.2 TB/s HBM3.
  spec.gpu_to_nic = {0, 1, 2, 3, 4, 5, 6, 7};
  spec.Validate();
  return spec;
}

ClusterSpec MakeClusterC(int num_nodes) {
  ClusterSpec spec;
  spec.name = "ClusterC(H200)";
  spec.num_nodes = num_nodes;
  spec.gpus_per_node = 8;
  spec.nics_per_node = 8;
  // 400 Gb/s CX7, one per GPU.
  spec.nic_bandwidth = GbpsToBytesPerUs(400.0) * 0.96;
  // H200 NVSwitch 900 GB/s nominal; ~360 GB/s sustained p2p.
  spec.nvswitch_bandwidth = GBpsToBytesPerUs(360.0);
  spec.gpu_effective_tflops = 430.0;
  spec.intra_latency_us = 4.0;
  spec.inter_latency_us = 15.0;
  spec.kernel_launch_us = 3.0;
  spec.gpu_memory_bytes = 141.0 * kGiB;
  spec.hbm_bandwidth = 4.6e6;  // ~4.8 TB/s HBM3e.
  spec.gpu_to_nic = {0, 1, 2, 3, 4, 5, 6, 7};
  spec.Validate();
  return spec;
}

}  // namespace zeppelin
