#include "src/topology/cluster.h"

#include <sstream>

#include "src/common/check.h"
#include "src/common/units.h"

namespace zeppelin {

int ClusterSpec::NodeOf(int rank) const {
  ZCHECK(rank >= 0 && rank < world_size()) << "rank=" << rank;
  return rank / gpus_per_node;
}

int ClusterSpec::LocalOf(int rank) const {
  ZCHECK(rank >= 0 && rank < world_size()) << "rank=" << rank;
  return rank % gpus_per_node;
}

int ClusterSpec::GlobalRank(int node, int local) const {
  ZCHECK(node >= 0 && node < num_nodes) << "node=" << node;
  ZCHECK(local >= 0 && local < gpus_per_node) << "local=" << local;
  return node * gpus_per_node + local;
}

int ClusterSpec::NicOf(int rank) const { return gpu_to_nic[LocalOf(rank)]; }

std::vector<int> ClusterSpec::RanksOnNic(int node, int nic) const {
  std::vector<int> out;
  for (int local = 0; local < gpus_per_node; ++local) {
    if (gpu_to_nic[local] == nic) {
      out.push_back(GlobalRank(node, local));
    }
  }
  return out;
}

double ClusterSpec::flops_per_us() const { return TflopsToFlopsPerUs(gpu_effective_tflops); }

void ClusterSpec::Validate() const {
  ZCHECK_GT(num_nodes, 0);
  ZCHECK_GT(gpus_per_node, 0);
  ZCHECK_GT(nics_per_node, 0);
  ZCHECK_GT(nic_bandwidth, 0.0);
  ZCHECK_GT(nvswitch_bandwidth, 0.0);
  ZCHECK_GT(gpu_effective_tflops, 0.0);
  ZCHECK_EQ(gpu_to_nic.size(), static_cast<size_t>(gpus_per_node));
  for (int nic : gpu_to_nic) {
    ZCHECK(nic >= 0 && nic < nics_per_node) << "nic=" << nic;
  }
}

ClusterSpec ApplyTensorParallelism(const ClusterSpec& spec, int tp) {
  ZCHECK_GE(tp, 1);
  if (tp == 1) {
    return spec;
  }
  ZCHECK_EQ(spec.gpus_per_node % tp, 0) << "TP must divide GPUs per node";
  ClusterSpec derived = spec;
  derived.name = spec.name + "/tp" + std::to_string(tp);
  derived.gpus_per_node = spec.gpus_per_node / tp;
  derived.gpu_effective_tflops = spec.gpu_effective_tflops * tp;
  // TP members transfer their activation shards in parallel through their own
  // NVSwitch ports.
  derived.nvswitch_bandwidth = spec.nvswitch_bandwidth * tp;
  derived.gpu_memory_bytes = spec.gpu_memory_bytes * tp;
  derived.hbm_bandwidth = spec.hbm_bandwidth * tp;
  derived.gpu_to_nic.clear();
  for (int logical = 0; logical < derived.gpus_per_node; ++logical) {
    derived.gpu_to_nic.push_back(spec.gpu_to_nic[logical * tp]);
  }
  derived.Validate();
  return derived;
}

std::string DescribeCluster(const ClusterSpec& spec) {
  std::ostringstream out;
  out << spec.name << ": " << spec.num_nodes << " nodes x " << spec.gpus_per_node << " GPUs, "
      << spec.nics_per_node << " NICs/node @ " << BytesPerUsToGBps(spec.nic_bandwidth)
      << " GB/s, NVSwitch " << BytesPerUsToGBps(spec.nvswitch_bandwidth) << " GB/s, GPU "
      << spec.gpu_effective_tflops << " effective TFLOP/s";
  return out.str();
}

}  // namespace zeppelin
