// Cluster topology model.
//
// Reproduces the hardware substrate of the paper's evaluation (§5): multi-node
// GPU clusters where each node has P GPUs on an NVSwitch fabric and a set of
// NICs with a fixed GPU->NIC affinity (e.g. Cluster A shares one 200 Gb/s NIC
// between two GPUs; Cluster C maps one 400 Gb/s NIC per GPU). All the
// imbalance phenomena the paper studies — the ~10x inter/intra bandwidth gap,
// NIC sharing, unidirectional ring under-utilization — are functions of these
// parameters.
#ifndef SRC_TOPOLOGY_CLUSTER_H_
#define SRC_TOPOLOGY_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zeppelin {

struct ClusterSpec {
  std::string name;

  int num_nodes = 1;
  int gpus_per_node = 8;
  int nics_per_node = 4;

  // Effective (achievable, not peak-datasheet) bandwidths in bytes/us.
  // inter: per NIC, per direction. intra: per GPU NVSwitch port, per direction.
  double nic_bandwidth = 0;
  double nvswitch_bandwidth = 0;

  // Per-message fixed latencies (us).
  double intra_latency_us = 5.0;
  double inter_latency_us = 15.0;

  // GPU compute. `gpu_effective_tflops` already folds in kernel efficiency; it
  // is what a well-tuned FlashAttention / GEMM achieves, not the datasheet max.
  double gpu_effective_tflops = 0;
  double kernel_launch_us = 3.0;

  // HBM capacity per GPU (bytes) — used by the memory model.
  double gpu_memory_bytes = 80.0 * 1024 * 1024 * 1024;
  // HBM bandwidth (bytes/us) — prices memory-bound fixed costs (optimizer).
  double hbm_bandwidth = 1.9e6;

  // gpu_to_nic[local_gpu] = local NIC index serving that GPU.
  std::vector<int> gpu_to_nic;

  // --- Derived helpers -------------------------------------------------------
  int world_size() const { return num_nodes * gpus_per_node; }
  int NodeOf(int rank) const;
  int LocalOf(int rank) const;
  int GlobalRank(int node, int local) const;
  // Local NIC index serving a global rank (its affinity NIC).
  int NicOf(int rank) const;
  // Global ranks whose affinity NIC is (node, nic).
  std::vector<int> RanksOnNic(int node, int nic) const;

  // GPU compute rate in FLOPs per microsecond.
  double flops_per_us() const;

  // Validates invariants (positive sizes, affinity table shape). Aborts via
  // ZCHECK on violation; call after hand-constructing a spec.
  void Validate() const;

  // Structural equality (used to detect topology changes between plans).
  bool operator==(const ClusterSpec&) const = default;
};

// Human-readable one-line summary, e.g. for bench headers.
std::string DescribeCluster(const ClusterSpec& spec);

// --- Presets matching the paper's evaluation clusters (§5) -----------------
// Cluster A: 8x A800-80G per node, NVSwitch, 4x 200 Gb/s RoCE NICs, each NIC
//            shared by 2 GPUs.
ClusterSpec MakeClusterA(int num_nodes);
// Cluster B: 8x H800 per node, 8x 200 Gb/s RoCE NICs, one NIC per GPU.
ClusterSpec MakeClusterB(int num_nodes);
// Cluster C: 8x H200 per node, 8x 400 Gb/s CX7 NICs, one NIC per GPU.
ClusterSpec MakeClusterC(int num_nodes);

// Derives the logical cluster seen by a CP/DP rank when tensor parallelism of
// size `tp` is applied within nodes: TP groups fuse into "fat" logical
// devices with tp-fold compute and NVSwitch bandwidth, and the group's
// traffic uses the first member's NIC (on Cluster A with tp = 2 this removes
// the 2-GPUs-per-NIC sharing — the effect the paper credits for the 13B
// configuration's larger speedups).
ClusterSpec ApplyTensorParallelism(const ClusterSpec& spec, int tp);

}  // namespace zeppelin

#endif  // SRC_TOPOLOGY_CLUSTER_H_
