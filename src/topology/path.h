// Fabric resource enumeration and transfer-path resolution.
//
// The discrete-event simulator serializes work on *resources*. FabricResources
// assigns a dense ResourceId space for a cluster:
//   - one compute lane per GPU (kernels on a GPU serialize),
//   - one NVSwitch egress + ingress channel per GPU (intra-node p2p),
//   - one tx + rx channel per NIC (inter-node p2p; duplex, so the two
//     directions are independent — this is what lets Zeppelin's routing layer
//     exploit the direction a plain ring leaves idle).
//
// Resolve() maps a (src GPU, dst GPU, optional NIC override) transfer onto the
// ordered set of channels it occupies plus its bottleneck bandwidth/latency.
// A NIC shared by two GPUs (Cluster A) is naturally modelled: both GPUs'
// inter-node transfers serialize on the same tx/rx channels.
#ifndef SRC_TOPOLOGY_PATH_H_
#define SRC_TOPOLOGY_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/cluster.h"

namespace zeppelin {

using ResourceId = int32_t;

struct TransferPath {
  // Channels the transfer occupies for its whole duration, in hop order.
  std::vector<ResourceId> resources;
  // Bottleneck bandwidth in bytes/us; +inf for a same-GPU no-op "transfer".
  double bandwidth = 0;
  double latency_us = 0;
  bool crosses_node = false;
};

class FabricResources {
 public:
  explicit FabricResources(const ClusterSpec& spec);

  const ClusterSpec& cluster() const { return spec_; }

  int num_resources() const { return num_resources_; }

  ResourceId ComputeLane(int gpu) const;
  ResourceId NvswitchEgress(int gpu) const;
  ResourceId NvswitchIngress(int gpu) const;
  ResourceId NicTx(int node, int nic) const;
  ResourceId NicRx(int node, int nic) const;

  // Debug/trace name for a resource, e.g. "n0.g3.compute" or "n1.nic2.tx".
  std::string ResourceName(ResourceId id) const;
  // Node that owns a resource (trace lane grouping).
  int ResourceNode(ResourceId id) const;

  // Path for moving `bytes` from src_gpu to dst_gpu. For cross-node transfers
  // src_nic/dst_nic select the NICs (local indices); -1 uses each GPU's
  // affinity NIC. NIC choices are ignored for intra-node transfers.
  TransferPath Resolve(int src_gpu, int dst_gpu, int src_nic = -1, int dst_nic = -1) const;

  // --- Per-rank speed factors (heterogeneous fabrics) ------------------------
  // Relative compute rate of a rank (1.0 = nominal; 0.5 = a straggler at half
  // speed). The speed-aware CostModel overloads consume these; the elastic
  // planner quantizes them separately (see RankTopology in src/data/stream.h)
  // so planning stays integer-deterministic.
  double rank_speed(int gpu) const;
  void set_rank_speed(int gpu, double factor);
  // Restores every rank to nominal speed.
  void ResetRankSpeeds();
  // True when any rank is off nominal speed.
  bool heterogeneous() const;

 private:
  ClusterSpec spec_;
  std::vector<double> rank_speed_;
  int compute_base_ = 0;
  int egress_base_ = 0;
  int ingress_base_ = 0;
  int nic_tx_base_ = 0;
  int nic_rx_base_ = 0;
  int num_resources_ = 0;
};

}  // namespace zeppelin

#endif  // SRC_TOPOLOGY_PATH_H_
