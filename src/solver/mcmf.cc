#include "src/solver/mcmf.h"

#include <limits>
#include <queue>

#include "src/common/check.h"

namespace zeppelin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Slack for floating-point comparisons in Dijkstra relaxation.
constexpr double kEps = 1e-12;
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes) : num_nodes_(num_nodes), adjacency_(num_nodes) {
  ZCHECK_GT(num_nodes, 0);
}

int MinCostFlow::AddEdge(int from, int to, int64_t capacity, double cost) {
  ZCHECK(from >= 0 && from < num_nodes_) << "from=" << from;
  ZCHECK(to >= 0 && to < num_nodes_) << "to=" << to;
  ZCHECK_GE(capacity, 0);
  ZCHECK_GE(cost, 0.0);
  ZCHECK(!solved_) << "graph is frozen after Solve()";

  const int fwd_index = static_cast<int>(adjacency_[from].size());
  const int rev_index = static_cast<int>(adjacency_[to].size());
  adjacency_[from].push_back({to, capacity, cost, rev_index});
  adjacency_[to].push_back({from, 0, -cost, fwd_index});
  edge_handles_.emplace_back(from, fwd_index);
  initial_capacity_.push_back(capacity);
  return static_cast<int>(edge_handles_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::Solve(int source, int sink) {
  ZCHECK(source >= 0 && source < num_nodes_);
  ZCHECK(sink >= 0 && sink < num_nodes_);
  ZCHECK_NE(source, sink);
  ZCHECK(!solved_);
  solved_ = true;

  Result result;
  std::vector<double> potential(num_nodes_, 0.0);  // All costs >= 0, so valid initially.
  std::vector<double> dist(num_nodes_);
  std::vector<int> prev_node(num_nodes_);
  std::vector<int> prev_edge(num_nodes_);

  for (;;) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[source] = 0;
    using QItem = std::pair<double, int>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + kEps) {
        continue;
      }
      for (int ei = 0; ei < static_cast<int>(adjacency_[u].size()); ++ei) {
        const Edge& e = adjacency_[u][ei];
        if (e.capacity <= 0) {
          continue;
        }
        const double nd = d + e.cost + potential[u] - potential[e.to];
        if (nd + kEps < dist[e.to]) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = ei;
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[sink] == kInf) {
      break;  // No augmenting path remains.
    }
    for (int v = 0; v < num_nodes_; ++v) {
      if (dist[v] < kInf) {
        potential[v] += dist[v];
      }
    }
    // Bottleneck along the path.
    int64_t push = std::numeric_limits<int64_t>::max();
    for (int v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, adjacency_[prev_node[v]][prev_edge[v]].capacity);
    }
    for (int v = sink; v != source; v = prev_node[v]) {
      Edge& e = adjacency_[prev_node[v]][prev_edge[v]];
      e.capacity -= push;
      adjacency_[e.to][e.rev].capacity += push;
      result.total_cost += e.cost * static_cast<double>(push);
    }
    result.max_flow += push;
  }
  return result;
}

int64_t MinCostFlow::Flow(int edge_handle) const {
  ZCHECK(edge_handle >= 0 && edge_handle < static_cast<int>(edge_handles_.size()));
  ZCHECK(solved_);
  const auto [node, index] = edge_handles_[edge_handle];
  return initial_capacity_[edge_handle] - adjacency_[node][index].capacity;
}

}  // namespace zeppelin
