// Exact solver for the paper's remapping optimization (Eq. 2).
//
//   arg min_M || (T * M) 1 ||_inf
//   s.t. row sums   = surplus_i  (ranks only ship what they have in excess)
//        column sums = deficit_j (deficits are exactly filled)
//        M >= 0
//
// where T_ij = b_inter when ranks i and j are on different nodes, b_intra
// otherwise. The structure of T (two cost levels, determined solely by node
// co-location) makes an exact combinatorial solution possible:
//   1. only surplus rows have nonzero cost, so the objective is the max
//      sender cost;
//   2. the cross-node volume each node must export is fixed by per-node
//      imbalance (intra-node transfers cannot change node totals);
//   3. a sender's cost depends only on how many of its surplus tokens cross
//      nodes: cost_i = b_intra * s_i + (b_inter - b_intra) * e_i;
//   4. distributing the mandatory node export among its surplus ranks to
//      minimize the max cost is a water-filling problem.
// The solution provably meets the analytic lower bound (see
// MinimaxLowerBound), up to integer rounding of token counts.
#ifndef SRC_SOLVER_MINIMAX_REMAP_H_
#define SRC_SOLVER_MINIMAX_REMAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/solver/transport.h"

namespace zeppelin {

struct RemapProblem {
  std::vector<int64_t> tokens;  // Current token count per rank.
  std::vector<int64_t> target;  // Desired per rank. Empty => balanced target.
  std::vector<int> node_of;     // Node id per rank.
  double b_intra = 0;           // Cost per token moved within a node.
  double b_inter = 0;           // Cost per token moved across nodes; >= b_intra.
};

struct RemapSolution {
  std::vector<std::vector<int64_t>> transfer;  // transfer[i][j] tokens i -> j.
  double max_row_cost = 0;                     // Eq. 2 objective value.
  double total_cost = 0;
};

// Per-node imbalance workspace (internal to the solver; exposed only so a
// RemapScratch can own and recycle the nested vectors).
struct RemapNodeScratch {
  std::vector<int> surplus_ranks;
  std::vector<int> deficit_ranks;
  int64_t surplus_total = 0;
  int64_t deficit_total = 0;
  int64_t export_tokens = 0;  // Cross-node tokens this node must send.
  int64_t import_tokens = 0;  // Cross-node tokens this node must receive.
};

// Reusable solver workspace. A planner that calls SolveMinimaxRemap once per
// iteration with the same scratch (and recycles the previous RemapSolution)
// solves Eq. 2 without steady-state allocations. Contents are unspecified
// between calls.
struct RemapScratch {
  RemapProblem problem;  // For callers that also rebuild the problem per call.
  std::vector<int64_t> target;
  std::vector<int64_t> surplus;   // Per rank, >= 0.
  std::vector<int64_t> deficit;   // Per rank, >= 0.
  std::vector<RemapNodeScratch> nodes;
  std::vector<int64_t> surpluses;  // Water-filling inputs for one node.
  std::vector<int64_t> exports;    // Water-filling outputs for one node.
  std::vector<std::pair<int, int64_t>> cross_senders;    // (rank, amount).
  std::vector<std::pair<int, int64_t>> cross_receivers;  // (rank, amount).
  TransportScratch transport;  // Edge bookkeeping for the min-total path (D5).
};

// Balanced target: floor(total/d) everywhere, the remainder spread over the
// lowest-indexed ranks (keeps every |target_i - target_j| <= 1).
std::vector<int64_t> BalancedTarget(const std::vector<int64_t>& tokens);

// Exact minimax solution (water-filling construction above).
RemapSolution SolveMinimaxRemap(const RemapProblem& problem);

// Allocation-hoisted form: intermediates live in `scratch`, and the transfer
// matrix reuses `solution`'s existing storage (pass the previous iteration's
// solution back in to recycle it). Results are identical to the value form.
void SolveMinimaxRemap(const RemapProblem& problem, RemapScratch* scratch,
                       RemapSolution* solution);

// Comparator: minimizes *total* cost instead (greedy intra-first); generally
// worse on the minimax objective. Design-choice ablation D5.
RemapSolution SolveMinTotalRemap(const RemapProblem& problem);

// Analytic lower bound on the optimum of Eq. 2 (continuous relaxation);
// SolveMinimaxRemap is within one token's cost of this value.
double MinimaxLowerBound(const RemapProblem& problem);

}  // namespace zeppelin

#endif  // SRC_SOLVER_MINIMAX_REMAP_H_
