// Min-cost max-flow via successive shortest paths with Johnson potentials.
//
// Stands in for the paper's use of Gurobi (§3.4): the remapping problem
// (Eq. 2) is a small transport LP over d <= a few hundred ranks, comfortably
// in range for an exact combinatorial solver. Costs are doubles (inverse
// bandwidths), capacities are int64 token counts.
#ifndef SRC_SOLVER_MCMF_H_
#define SRC_SOLVER_MCMF_H_

#include <cstdint>
#include <vector>

namespace zeppelin {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  // Adds a directed edge; returns an edge handle for Flow(). cost >= 0.
  int AddEdge(int from, int to, int64_t capacity, double cost);

  struct Result {
    int64_t max_flow = 0;
    double total_cost = 0;
  };

  // Computes the min-cost max-flow from `source` to `sink`. May be called
  // once per instance.
  Result Solve(int source, int sink);

  // Flow routed on the edge returned by the i-th AddEdge call (post-Solve).
  int64_t Flow(int edge_handle) const;

 private:
  struct Edge {
    int to;
    int64_t capacity;
    double cost;
    int rev;  // Index of the reverse edge in adjacency[to].
  };

  int num_nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  // (node, index into adjacency_[node]) for each AddEdge call.
  std::vector<std::pair<int, int>> edge_handles_;
  std::vector<int64_t> initial_capacity_;
  bool solved_ = false;
};

}  // namespace zeppelin

#endif  // SRC_SOLVER_MCMF_H_
