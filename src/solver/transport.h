// Transport problems: move supplies to demands at minimum cost.
//
// The classic (total-cost) transport problem is solved exactly with min-cost
// flow; it serves as the greedy comparator for the paper's minimax objective
// (Eq. 2) and as a test oracle.
#ifndef SRC_SOLVER_TRANSPORT_H_
#define SRC_SOLVER_TRANSPORT_H_

#include <cstdint>
#include <vector>

namespace zeppelin {

struct TransportProblem {
  std::vector<int64_t> supply;               // Per source; >= 0.
  std::vector<int64_t> demand;               // Per sink; >= 0; sums must match.
  std::vector<std::vector<double>> cost;     // cost[i][j] per unit from i to j.
};

struct TransportSolution {
  // flow[i][j] units shipped from source i to sink j.
  std::vector<std::vector<int64_t>> flow;
  double total_cost = 0;
  // max over sources i of sum_j cost[i][j] * flow[i][j] — the Eq. 2 objective.
  double max_row_cost = 0;
};

// Reusable workspace for SolveTransportMinTotalCost (the RemapScratch idiom):
// the sparse edge list and the compacted source/sink index sets live here and
// only grow, so repeated solves (one per remap plan, e.g. ablation D5) stay
// free of per-edge allocations. Contents are meaningless between calls.
struct TransportScratch {
  std::vector<int> sources;       // Indices with supply > 0.
  std::vector<int> sinks;         // Indices with demand > 0.
  // Flat CSR-style edge list over (nonzero supply) x (nonzero demand) pairs:
  // row r covers handles [row_start[r], row_start[r+1]) in AddEdge order,
  // with edge_sink[e] the demand index of edge e. Zero supply/demand pairs
  // have no edge at all — the dense ns x nd handle matrix this replaces was
  // the solver's dominant allocation on sparse instances.
  std::vector<int> row_start;
  std::vector<int> edge_sink;
  std::vector<int> edge_handle;
};

// Exact minimum *total* cost solution (min-cost flow).
TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem);
// Allocation-hoisted form: edge bookkeeping lives in `scratch`. Results are
// identical to the value form.
TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem,
                                             TransportScratch* scratch);

// Recomputes solution metrics from a flow matrix (validation helper).
TransportSolution EvaluateFlow(const TransportProblem& problem,
                               std::vector<std::vector<int64_t>> flow);

}  // namespace zeppelin

#endif  // SRC_SOLVER_TRANSPORT_H_
