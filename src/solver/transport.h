// Transport problems: move supplies to demands at minimum cost.
//
// The classic (total-cost) transport problem is solved exactly with min-cost
// flow; it serves as the greedy comparator for the paper's minimax objective
// (Eq. 2) and as a test oracle.
#ifndef SRC_SOLVER_TRANSPORT_H_
#define SRC_SOLVER_TRANSPORT_H_

#include <cstdint>
#include <vector>

namespace zeppelin {

struct TransportProblem {
  std::vector<int64_t> supply;               // Per source; >= 0.
  std::vector<int64_t> demand;               // Per sink; >= 0; sums must match.
  std::vector<std::vector<double>> cost;     // cost[i][j] per unit from i to j.
};

struct TransportSolution {
  // flow[i][j] units shipped from source i to sink j.
  std::vector<std::vector<int64_t>> flow;
  double total_cost = 0;
  // max over sources i of sum_j cost[i][j] * flow[i][j] — the Eq. 2 objective.
  double max_row_cost = 0;
};

// Exact minimum *total* cost solution (min-cost flow).
TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem);

// Recomputes solution metrics from a flow matrix (validation helper).
TransportSolution EvaluateFlow(const TransportProblem& problem,
                               std::vector<std::vector<int64_t>> flow);

}  // namespace zeppelin

#endif  // SRC_SOLVER_TRANSPORT_H_
