#include "src/solver/minimax_remap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.h"
#include "src/solver/transport.h"

namespace zeppelin {
namespace {

void ValidateProblem(const RemapProblem& problem, const std::vector<int64_t>& target) {
  const size_t d = problem.tokens.size();
  ZCHECK_GT(d, 0u);
  ZCHECK_EQ(problem.node_of.size(), d);
  ZCHECK_EQ(target.size(), d);
  ZCHECK_GT(problem.b_intra, 0.0);
  ZCHECK_GE(problem.b_inter, problem.b_intra) << "inter-node must not be cheaper than intra";
  int64_t total_tokens = 0;
  int64_t total_target = 0;
  for (size_t i = 0; i < d; ++i) {
    ZCHECK_GE(problem.tokens[i], 0);
    ZCHECK_GE(target[i], 0);
    ZCHECK_GE(problem.node_of[i], 0);
    total_tokens += problem.tokens[i];
    total_target += target[i];
  }
  ZCHECK_EQ(total_tokens, total_target) << "target must conserve tokens";
}

// The balanced-target fill rule; the single definition both the value API
// (BalancedTarget) and the scratch path share.
void BalancedTargetInto(const std::vector<int64_t>& tokens, std::vector<int64_t>* target) {
  ZCHECK(!tokens.empty());
  const int d = static_cast<int>(tokens.size());
  const int64_t total = std::accumulate(tokens.begin(), tokens.end(), int64_t{0});
  target->assign(d, total / d);
  const int64_t remainder = total % d;
  for (int64_t i = 0; i < remainder; ++i) {
    ++(*target)[i];
  }
}

// Resolves the effective target into scratch->target (copy or balanced fill).
const std::vector<int64_t>& ResolveTarget(const RemapProblem& problem, RemapScratch* scratch) {
  if (!problem.target.empty()) {
    return problem.target;
  }
  BalancedTargetInto(problem.tokens, &scratch->target);
  return scratch->target;
}

// Fills scratch->{surplus, deficit, nodes} from tokens vs target.
void ComputeImbalance(const RemapProblem& problem, const std::vector<int64_t>& target,
                      RemapScratch* scratch) {
  const int d = static_cast<int>(problem.tokens.size());
  const int num_nodes = *std::max_element(problem.node_of.begin(), problem.node_of.end()) + 1;

  scratch->surplus.assign(d, 0);
  scratch->deficit.assign(d, 0);
  scratch->nodes.resize(num_nodes);
  for (RemapNodeScratch& node : scratch->nodes) {
    node.surplus_ranks.clear();
    node.deficit_ranks.clear();
    node.surplus_total = 0;
    node.deficit_total = 0;
    node.export_tokens = 0;
    node.import_tokens = 0;
  }
  for (int i = 0; i < d; ++i) {
    const int node = problem.node_of[i];
    const int64_t delta = problem.tokens[i] - target[i];
    if (delta > 0) {
      scratch->surplus[i] = delta;
      scratch->nodes[node].surplus_ranks.push_back(i);
      scratch->nodes[node].surplus_total += delta;
    } else if (delta < 0) {
      scratch->deficit[i] = -delta;
      scratch->nodes[node].deficit_ranks.push_back(i);
      scratch->nodes[node].deficit_total += -delta;
    }
  }
  for (RemapNodeScratch& node : scratch->nodes) {
    const int64_t matched = std::min(node.surplus_total, node.deficit_total);
    node.export_tokens = node.surplus_total - matched;
    node.import_tokens = node.deficit_total - matched;
  }
}

// Water-filling: distribute `export_total` among surplus ranks (capacities
// s_i) to minimize max_i (b_intra * s_i + delta * e_i). Fills `exports`.
// Continuous level + integral fix-up; exact up to one token per rank.
void WaterfillExports(const std::vector<int64_t>& surpluses, int64_t export_total,
                      double b_intra, double delta, std::vector<int64_t>* exports) {
  const int n = static_cast<int>(surpluses.size());
  exports->assign(n, 0);
  if (export_total == 0) {
    return;
  }
  int64_t capacity = 0;
  for (int64_t s : surpluses) {
    capacity += s;
  }
  ZCHECK_LE(export_total, capacity);

  if (delta <= 0) {
    // Degenerate (b_inter == b_intra): any split is optimal; fill greedily.
    int64_t remaining = export_total;
    for (int i = 0; i < n && remaining > 0; ++i) {
      const int64_t take = std::min(surpluses[i], remaining);
      (*exports)[i] = take;
      remaining -= take;
    }
    return;
  }

  // Binary search the water level lambda such that
  //   sum_i clamp((lambda - b_intra * s_i) / delta, 0, s_i) >= export_total.
  auto filled_at = [&](double lambda) {
    double total = 0;
    for (int i = 0; i < n; ++i) {
      const double base = b_intra * static_cast<double>(surpluses[i]);
      const double e = (lambda - base) / delta;
      total += std::clamp(e, 0.0, static_cast<double>(surpluses[i]));
    }
    return total;
  };
  double lo = 0;
  double hi = 0;
  for (int i = 0; i < n; ++i) {
    const double worst =
        b_intra * static_cast<double>(surpluses[i]) + delta * static_cast<double>(surpluses[i]);
    hi = std::max(hi, worst);
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (filled_at(mid) >= static_cast<double>(export_total)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double lambda = hi;

  // Integral assignment under the level, then fix the remainder greedily.
  int64_t assigned = 0;
  for (int i = 0; i < n; ++i) {
    const double base = b_intra * static_cast<double>(surpluses[i]);
    const double e = std::clamp((lambda - base) / delta, 0.0, static_cast<double>(surpluses[i]));
    (*exports)[i] = std::min<int64_t>(static_cast<int64_t>(e), surpluses[i]);
    assigned += (*exports)[i];
  }
  int64_t remainder = export_total - assigned;
  ZCHECK_GE(remainder, 0);
  // Each fix-up adds at most one token per pass; remainder <= n after
  // flooring, so a couple of passes suffice.
  while (remainder > 0) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if ((*exports)[i] >= surpluses[i]) {
        continue;
      }
      const double cost = b_intra * static_cast<double>(surpluses[i]) +
                          delta * static_cast<double>((*exports)[i] + 1);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    ZCHECK_GE(best, 0) << "waterfill ran out of capacity";
    ++(*exports)[best];
    --remainder;
  }
}

// Resets `solution` for a d-rank problem, recycling the transfer matrix
// storage when dimensions match (the steady-state planner case).
void ResetSolution(int d, RemapSolution* solution) {
  solution->transfer.resize(d);
  for (std::vector<int64_t>& row : solution->transfer) {
    row.assign(d, 0);
  }
  solution->max_row_cost = 0;
  solution->total_cost = 0;
}

// Prices solution->transfer and fills the cost metrics.
void ComputeSolutionMetrics(const RemapProblem& problem, RemapSolution* solution) {
  const int d = static_cast<int>(problem.tokens.size());
  solution->max_row_cost = 0;
  solution->total_cost = 0;
  for (int i = 0; i < d; ++i) {
    double row_cost = 0;
    for (int j = 0; j < d; ++j) {
      const int64_t f = solution->transfer[i][j];
      if (f == 0) {
        continue;
      }
      const double unit =
          problem.node_of[i] == problem.node_of[j] ? problem.b_intra : problem.b_inter;
      row_cost += unit * static_cast<double>(f);
    }
    solution->total_cost += row_cost;
    solution->max_row_cost = std::max(solution->max_row_cost, row_cost);
  }
}

}  // namespace

std::vector<int64_t> BalancedTarget(const std::vector<int64_t>& tokens) {
  std::vector<int64_t> target;
  BalancedTargetInto(tokens, &target);
  return target;
}

void SolveMinimaxRemap(const RemapProblem& problem, RemapScratch* scratch,
                       RemapSolution* solution) {
  const std::vector<int64_t>& target = ResolveTarget(problem, scratch);
  ValidateProblem(problem, target);
  const int d = static_cast<int>(problem.tokens.size());
  const double delta = problem.b_inter - problem.b_intra;

  ComputeImbalance(problem, target, scratch);
  ResetSolution(d, solution);
  std::vector<std::vector<int64_t>>& transfer = solution->transfer;

  // Per-node: decide each surplus rank's cross-node share by water-filling,
  // then satisfy local deficits with the remaining (intra) share.
  scratch->cross_senders.clear();
  scratch->cross_receivers.clear();

  for (RemapNodeScratch& node : scratch->nodes) {
    std::vector<int64_t>& surpluses = scratch->surpluses;
    surpluses.clear();
    for (int r : node.surplus_ranks) {
      surpluses.push_back(scratch->surplus[r]);
    }
    WaterfillExports(surpluses, node.export_tokens, problem.b_intra, delta, &scratch->exports);
    const std::vector<int64_t>& exports = scratch->exports;

    for (size_t k = 0; k < node.surplus_ranks.size(); ++k) {
      if (exports[k] > 0) {
        scratch->cross_senders.emplace_back(node.surplus_ranks[k], exports[k]);
      }
    }

    // Intra matching: remaining surplus shares -> node deficits, two-pointer.
    size_t di = 0;
    int64_t deficit_left =
        node.deficit_ranks.empty() ? 0 : scratch->deficit[node.deficit_ranks[0]];
    for (size_t k = 0; k < node.surplus_ranks.size(); ++k) {
      int64_t intra_left = surpluses[k] - exports[k];
      while (intra_left > 0) {
        ZCHECK_LT(di, node.deficit_ranks.size());
        const int64_t moved = std::min(intra_left, deficit_left);
        transfer[node.surplus_ranks[k]][node.deficit_ranks[di]] += moved;
        intra_left -= moved;
        deficit_left -= moved;
        if (deficit_left == 0) {
          ++di;
          deficit_left =
              di < node.deficit_ranks.size() ? scratch->deficit[node.deficit_ranks[di]] : 0;
        }
      }
    }

    // Whatever local deficit is left must be filled from remote nodes.
    while (di < node.deficit_ranks.size()) {
      if (deficit_left > 0) {
        scratch->cross_receivers.emplace_back(node.deficit_ranks[di], deficit_left);
      }
      ++di;
      deficit_left = di < node.deficit_ranks.size() ? scratch->deficit[node.deficit_ranks[di]] : 0;
    }
  }

  // Cross-node matching: any pairing costs the sender b_inter per token, so a
  // two-pointer sweep is optimal.
  size_t ri = 0;
  int64_t recv_left = scratch->cross_receivers.empty() ? 0 : scratch->cross_receivers[0].second;
  for (const auto& [sender_rank, amount] : scratch->cross_senders) {
    int64_t send_left = amount;
    while (send_left > 0) {
      ZCHECK_LT(ri, scratch->cross_receivers.size());
      const int64_t moved = std::min(send_left, recv_left);
      transfer[sender_rank][scratch->cross_receivers[ri].first] += moved;
      send_left -= moved;
      recv_left -= moved;
      if (recv_left == 0) {
        ++ri;
        recv_left = ri < scratch->cross_receivers.size() ? scratch->cross_receivers[ri].second : 0;
      }
    }
  }

  ComputeSolutionMetrics(problem, solution);
}

RemapSolution SolveMinimaxRemap(const RemapProblem& problem) {
  RemapScratch scratch;
  RemapSolution solution;
  SolveMinimaxRemap(problem, &scratch, &solution);
  return solution;
}

RemapSolution SolveMinTotalRemap(const RemapProblem& problem) {
  RemapScratch scratch;
  const std::vector<int64_t>& target = ResolveTarget(problem, &scratch);
  ValidateProblem(problem, target);
  const int d = static_cast<int>(problem.tokens.size());

  ComputeImbalance(problem, target, &scratch);
  // Dense transport over surplus/deficit ranks only.
  std::vector<int> sources;
  std::vector<int> sinks;
  for (int i = 0; i < d; ++i) {
    if (scratch.surplus[i] > 0) {
      sources.push_back(i);
    }
    if (scratch.deficit[i] > 0) {
      sinks.push_back(i);
    }
  }
  RemapSolution solution;
  ResetSolution(d, &solution);
  if (sources.empty()) {
    ComputeSolutionMetrics(problem, &solution);
    return solution;
  }
  TransportProblem tp;
  for (int i : sources) {
    tp.supply.push_back(scratch.surplus[i]);
  }
  for (int j : sinks) {
    tp.demand.push_back(scratch.deficit[j]);
  }
  tp.cost.resize(sources.size(), std::vector<double>(sinks.size(), 0));
  for (size_t a = 0; a < sources.size(); ++a) {
    for (size_t b = 0; b < sinks.size(); ++b) {
      tp.cost[a][b] = problem.node_of[sources[a]] == problem.node_of[sinks[b]]
                          ? problem.b_intra
                          : problem.b_inter;
    }
  }
  const TransportSolution ts = SolveTransportMinTotalCost(tp, &scratch.transport);
  for (size_t a = 0; a < sources.size(); ++a) {
    for (size_t b = 0; b < sinks.size(); ++b) {
      solution.transfer[sources[a]][sinks[b]] = ts.flow[a][b];
    }
  }
  ComputeSolutionMetrics(problem, &solution);
  return solution;
}

double MinimaxLowerBound(const RemapProblem& problem) {
  RemapScratch scratch;
  const std::vector<int64_t>& target = ResolveTarget(problem, &scratch);
  ValidateProblem(problem, target);
  ComputeImbalance(problem, target, &scratch);
  const double delta = problem.b_inter - problem.b_intra;

  double bound = 0;
  // Any sender pays at least b_intra per surplus token.
  for (size_t i = 0; i < scratch.surplus.size(); ++i) {
    bound = std::max(bound, problem.b_intra * static_cast<double>(scratch.surplus[i]));
  }
  // Each node's mandatory export, distributed as favourably as possible,
  // forces at least the continuous water level.
  for (RemapNodeScratch& node : scratch.nodes) {
    if (node.export_tokens == 0) {
      continue;
    }
    std::vector<int64_t>& surpluses = scratch.surpluses;
    surpluses.clear();
    for (int r : node.surplus_ranks) {
      surpluses.push_back(scratch.surplus[r]);
    }
    WaterfillExports(surpluses, node.export_tokens, problem.b_intra, delta, &scratch.exports);
    double level = 0;
    for (size_t k = 0; k < surpluses.size(); ++k) {
      // The *continuous* level is bounded below by the discrete one minus one
      // token; use the discrete assignment minus delta as a safe bound.
      const double cost = problem.b_intra * static_cast<double>(surpluses[k]) +
                          delta * static_cast<double>(scratch.exports[k]);
      level = std::max(level, cost - delta);
    }
    bound = std::max(bound, level);
  }
  return bound;
}

}  // namespace zeppelin
