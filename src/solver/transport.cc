#include "src/solver/transport.h"

#include "src/common/check.h"
#include "src/solver/mcmf.h"

namespace zeppelin {
namespace {

void ValidateProblem(const TransportProblem& problem) {
  ZCHECK(!problem.supply.empty());
  ZCHECK(!problem.demand.empty());
  ZCHECK_EQ(problem.cost.size(), problem.supply.size());
  int64_t total_supply = 0;
  int64_t total_demand = 0;
  for (int64_t s : problem.supply) {
    ZCHECK_GE(s, 0);
    total_supply += s;
  }
  for (int64_t d : problem.demand) {
    ZCHECK_GE(d, 0);
    total_demand += d;
  }
  ZCHECK_EQ(total_supply, total_demand) << "unbalanced transport problem";
  for (const auto& row : problem.cost) {
    ZCHECK_EQ(row.size(), problem.demand.size());
  }
}

}  // namespace

TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem) {
  ValidateProblem(problem);
  const int ns = static_cast<int>(problem.supply.size());
  const int nd = static_cast<int>(problem.demand.size());

  // Node layout: 0 = source, 1..ns = supplies, ns+1..ns+nd = demands, last = sink.
  MinCostFlow flow_net(ns + nd + 2);
  const int source = 0;
  const int sink = ns + nd + 1;
  for (int i = 0; i < ns; ++i) {
    flow_net.AddEdge(source, 1 + i, problem.supply[i], 0.0);
  }
  std::vector<std::vector<int>> handles(ns, std::vector<int>(nd, -1));
  for (int i = 0; i < ns; ++i) {
    if (problem.supply[i] == 0) {
      continue;
    }
    for (int j = 0; j < nd; ++j) {
      if (problem.demand[j] == 0) {
        continue;
      }
      handles[i][j] = flow_net.AddEdge(1 + i, ns + 1 + j, problem.supply[i], problem.cost[i][j]);
    }
  }
  for (int j = 0; j < nd; ++j) {
    flow_net.AddEdge(ns + 1 + j, sink, problem.demand[j], 0.0);
  }

  const auto result = flow_net.Solve(source, sink);
  int64_t total_supply = 0;
  for (int64_t s : problem.supply) {
    total_supply += s;
  }
  ZCHECK_EQ(result.max_flow, total_supply) << "transport problem infeasible";

  std::vector<std::vector<int64_t>> flow(ns, std::vector<int64_t>(nd, 0));
  for (int i = 0; i < ns; ++i) {
    for (int j = 0; j < nd; ++j) {
      if (handles[i][j] >= 0) {
        flow[i][j] = flow_net.Flow(handles[i][j]);
      }
    }
  }
  return EvaluateFlow(problem, std::move(flow));
}

TransportSolution EvaluateFlow(const TransportProblem& problem,
                               std::vector<std::vector<int64_t>> flow) {
  ValidateProblem(problem);
  const int ns = static_cast<int>(problem.supply.size());
  const int nd = static_cast<int>(problem.demand.size());
  ZCHECK_EQ(flow.size(), problem.supply.size());

  TransportSolution solution;
  solution.flow = std::move(flow);
  std::vector<int64_t> received(nd, 0);
  for (int i = 0; i < ns; ++i) {
    ZCHECK_EQ(solution.flow[i].size(), problem.demand.size());
    int64_t sent = 0;
    double row_cost = 0;
    for (int j = 0; j < nd; ++j) {
      const int64_t f = solution.flow[i][j];
      ZCHECK_GE(f, 0);
      sent += f;
      received[j] += f;
      row_cost += problem.cost[i][j] * static_cast<double>(f);
    }
    ZCHECK_EQ(sent, problem.supply[i]) << "row " << i << " violates supply";
    solution.total_cost += row_cost;
    solution.max_row_cost = std::max(solution.max_row_cost, row_cost);
  }
  for (int j = 0; j < nd; ++j) {
    ZCHECK_EQ(received[j], problem.demand[j]) << "column " << j << " violates demand";
  }
  return solution;
}

}  // namespace zeppelin
