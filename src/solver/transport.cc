#include "src/solver/transport.h"

#include <utility>

#include "src/common/check.h"
#include "src/solver/mcmf.h"

namespace zeppelin {
namespace {

void ValidateProblem(const TransportProblem& problem) {
  ZCHECK(!problem.supply.empty());
  ZCHECK(!problem.demand.empty());
  ZCHECK_EQ(problem.cost.size(), problem.supply.size());
  int64_t total_supply = 0;
  int64_t total_demand = 0;
  for (int64_t s : problem.supply) {
    ZCHECK_GE(s, 0);
    total_supply += s;
  }
  for (int64_t d : problem.demand) {
    ZCHECK_GE(d, 0);
    total_demand += d;
  }
  ZCHECK_EQ(total_supply, total_demand) << "unbalanced transport problem";
  for (const auto& row : problem.cost) {
    ZCHECK_EQ(row.size(), problem.demand.size());
  }
}

// Metric computation shared by EvaluateFlow (which validates a caller-made
// problem first) and the solver (whose problem was just validated — no
// second pass).
TransportSolution BuildSolution(const TransportProblem& problem,
                                std::vector<std::vector<int64_t>> flow) {
  const int ns = static_cast<int>(problem.supply.size());
  const int nd = static_cast<int>(problem.demand.size());
  ZCHECK_EQ(flow.size(), problem.supply.size());

  TransportSolution solution;
  solution.flow = std::move(flow);
  std::vector<int64_t> received(nd, 0);
  for (int i = 0; i < ns; ++i) {
    ZCHECK_EQ(solution.flow[i].size(), problem.demand.size());
    int64_t sent = 0;
    double row_cost = 0;
    for (int j = 0; j < nd; ++j) {
      const int64_t f = solution.flow[i][j];
      ZCHECK_GE(f, 0);
      sent += f;
      received[j] += f;
      row_cost += problem.cost[i][j] * static_cast<double>(f);
    }
    ZCHECK_EQ(sent, problem.supply[i]) << "row " << i << " violates supply";
    solution.total_cost += row_cost;
    solution.max_row_cost = std::max(solution.max_row_cost, row_cost);
  }
  for (int j = 0; j < nd; ++j) {
    ZCHECK_EQ(received[j], problem.demand[j]) << "column " << j << " violates demand";
  }
  return solution;
}

}  // namespace

TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem) {
  TransportScratch scratch;
  return SolveTransportMinTotalCost(problem, &scratch);
}

TransportSolution SolveTransportMinTotalCost(const TransportProblem& problem,
                                             TransportScratch* scratch) {
  ValidateProblem(problem);
  const int ns = static_cast<int>(problem.supply.size());
  const int nd = static_cast<int>(problem.demand.size());

  // Compact away zero supplies/demands: they can carry no flow, so neither
  // their source/sink edges nor their ns x nd pair edges need to exist.
  scratch->sources.clear();
  scratch->sinks.clear();
  int64_t total_supply = 0;
  for (int i = 0; i < ns; ++i) {
    if (problem.supply[i] > 0) {
      scratch->sources.push_back(i);
      total_supply += problem.supply[i];
    }
  }
  for (int j = 0; j < nd; ++j) {
    if (problem.demand[j] > 0) {
      scratch->sinks.push_back(j);
    }
  }

  // Node layout: 0 = source, 1..ns = supplies, ns+1..ns+nd = demands, last =
  // sink (kept dense — node ids are cheap, edges are not).
  MinCostFlow flow_net(ns + nd + 2);
  const int source = 0;
  const int sink = ns + nd + 1;
  for (int i : scratch->sources) {
    flow_net.AddEdge(source, 1 + i, problem.supply[i], 0.0);
  }
  scratch->row_start.clear();
  scratch->edge_sink.clear();
  scratch->edge_handle.clear();
  for (int i : scratch->sources) {
    scratch->row_start.push_back(static_cast<int>(scratch->edge_handle.size()));
    const double* cost_row = problem.cost[i].data();
    for (int j : scratch->sinks) {
      scratch->edge_sink.push_back(j);
      scratch->edge_handle.push_back(
          flow_net.AddEdge(1 + i, ns + 1 + j, problem.supply[i], cost_row[j]));
    }
  }
  scratch->row_start.push_back(static_cast<int>(scratch->edge_handle.size()));
  for (int j : scratch->sinks) {
    flow_net.AddEdge(ns + 1 + j, sink, problem.demand[j], 0.0);
  }

  const auto result = flow_net.Solve(source, sink);
  ZCHECK_EQ(result.max_flow, total_supply) << "transport problem infeasible";

  std::vector<std::vector<int64_t>> flow(ns, std::vector<int64_t>(nd, 0));
  for (size_t r = 0; r < scratch->sources.size(); ++r) {
    std::vector<int64_t>& flow_row = flow[scratch->sources[r]];
    for (int e = scratch->row_start[r]; e < scratch->row_start[r + 1]; ++e) {
      flow_row[scratch->edge_sink[e]] = flow_net.Flow(scratch->edge_handle[e]);
    }
  }
  // The problem was validated above; BuildSolution's flow checks double as
  // solver postconditions.
  return BuildSolution(problem, std::move(flow));
}

TransportSolution EvaluateFlow(const TransportProblem& problem,
                               std::vector<std::vector<int64_t>> flow) {
  ValidateProblem(problem);
  return BuildSolution(problem, std::move(flow));
}

}  // namespace zeppelin
