#include "src/data/distribution.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace zeppelin {

LengthDistribution::LengthDistribution(std::string name, std::vector<LengthBin> bins)
    : name_(std::move(name)), bins_(std::move(bins)) {
  ZCHECK(!bins_.empty());
  for (const auto& b : bins_) {
    ZCHECK_GT(b.hi, b.lo);
    ZCHECK_GE(b.lo, 0);
    ZCHECK_GE(b.weight, 0.0);
    total_weight_ += b.weight;
  }
  ZCHECK_GT(total_weight_, 0.0) << "distribution " << name_ << " has no mass";
}

int64_t LengthDistribution::Sample(Rng& rng, int64_t granularity) const {
  ZCHECK_GT(granularity, 0);
  std::vector<double> weights(bins_.size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    weights[i] = bins_[i].weight;
  }
  const auto& bin = bins_[rng.NextWeighted(weights)];
  // Log-uniform within the bin captures the long-tailed within-bin shape.
  const double lo = std::max<double>(static_cast<double>(bin.lo), 1.0);
  const double hi = static_cast<double>(bin.hi);
  const double log_len = std::log(lo) + rng.NextDouble() * (std::log(hi) - std::log(lo));
  int64_t len = static_cast<int64_t>(std::exp(log_len));
  // Round to granularity, clamping inside the bin.
  len = (len / granularity) * granularity;
  len = std::clamp<int64_t>(len, std::max<int64_t>(granularity, bin.lo), bin.hi - 1);
  // Final clamp can leave a non-multiple at bin.hi - 1; round down once more
  // but never below granularity.
  len = std::max<int64_t>((len / granularity) * granularity, granularity);
  return len;
}

double LengthDistribution::MassInRange(int64_t lo, int64_t hi) const {
  double mass = 0;
  for (const auto& b : bins_) {
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    if (ohi <= olo) {
      continue;
    }
    const double frac = static_cast<double>(ohi - olo) / static_cast<double>(b.hi - b.lo);
    mass += b.weight * frac;
  }
  return mass / total_weight_;
}

double LengthDistribution::TokenShareInRange(int64_t lo, int64_t hi) const {
  // Expected tokens from a bin ~ weight * midpoint (uniform-midpoint
  // approximation is adequate for reporting shares).
  double in_range = 0;
  double total = 0;
  for (const auto& b : bins_) {
    const double mid = 0.5 * static_cast<double>(b.lo + b.hi);
    total += b.weight * mid;
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    if (ohi <= olo) {
      continue;
    }
    const double frac = static_cast<double>(ohi - olo) / static_cast<double>(b.hi - b.lo);
    const double omid = 0.5 * static_cast<double>(olo + ohi);
    in_range += b.weight * frac * omid;
  }
  ZCHECK_GT(total, 0.0);
  return in_range / total;
}

double LengthDistribution::MeanLength() const {
  double acc = 0;
  for (const auto& b : bins_) {
    acc += b.weight * 0.5 * static_cast<double>(b.lo + b.hi);
  }
  return acc / total_weight_;
}

int64_t LengthDistribution::MaxLength() const {
  int64_t max_len = 0;
  for (const auto& b : bins_) {
    if (b.weight > 0) {
      max_len = std::max(max_len, b.hi - 1);
    }
  }
  return max_len;
}

std::vector<int64_t> StandardBinEdges() {
  return {0, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144};
}

std::string BinLabel(int64_t lo, int64_t hi) {
  auto k = [](int64_t v) { return std::to_string(v / 1024) + "k"; };
  if (lo == 0) {
    return "<" + k(hi);
  }
  return std::to_string(lo / 1024) + "-" + k(hi);
}

}  // namespace zeppelin
