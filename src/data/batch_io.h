// Batch serialization: save/load workloads as plain text so experiments can
// be replayed exactly across machines and runs (one batch per line,
// comma-separated sequence lengths, '#' comments).
#ifndef SRC_DATA_BATCH_IO_H_
#define SRC_DATA_BATCH_IO_H_

#include <string>
#include <vector>

#include "src/data/sampler.h"

namespace zeppelin {

// Serializes batches, one per line: "4096,1024,512".
std::string BatchesToText(const std::vector<Batch>& batches);

// Parses the format above. Ignores blank lines and '#' comments. Aborts
// (ZCHECK) on malformed input (non-numeric tokens, non-positive lengths).
std::vector<Batch> BatchesFromText(const std::string& text);

// File convenience wrappers; return false on I/O failure.
bool SaveBatches(const std::string& path, const std::vector<Batch>& batches);
bool LoadBatches(const std::string& path, std::vector<Batch>* batches);

}  // namespace zeppelin

#endif  // SRC_DATA_BATCH_IO_H_
