#include "src/data/sampler.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/check.h"

namespace zeppelin {

int64_t Batch::total_tokens() const {
  int64_t total = 0;
  for (int64_t s : seq_lens) {
    total += s;
  }
  return total;
}

int64_t Batch::max_len() const {
  int64_t m = 0;
  for (int64_t s : seq_lens) {
    m = std::max(m, s);
  }
  return m;
}

BatchSampler::BatchSampler(LengthDistribution dist, int64_t total_tokens, uint64_t seed,
                           int64_t granularity)
    : dist_(std::move(dist)),
      total_tokens_(total_tokens),
      granularity_(granularity),
      rng_(seed) {
  ZCHECK_GT(total_tokens_, 0);
  ZCHECK_GT(granularity_, 0);
  ZCHECK_EQ(total_tokens_ % granularity_, 0)
      << "batch size must be a multiple of the granularity";
}

Batch BatchSampler::NextBatch() {
  Batch batch;
  int64_t remaining = total_tokens_;
  while (remaining > 0) {
    int64_t len = dist_.Sample(rng_, granularity_);
    len = std::min(len, remaining);
    batch.seq_lens.push_back(len);
    remaining -= len;
  }
  ZCHECK_EQ(batch.total_tokens(), total_tokens_);
  return batch;
}

Batch MakeBalancedBatch(int64_t total_tokens) {
  // One representative sequence per Table-2 bin (midpoint lengths), repeated
  // to fill the budget, largest first.
  const std::vector<int64_t> reps = {512, 1536, 3072, 6144, 12288, 24576, 49152};
  Batch batch;
  int64_t remaining = total_tokens;
  // Round-robin over representatives from long to short until filled.
  while (remaining > 0) {
    bool added = false;
    for (auto it = reps.rbegin(); it != reps.rend(); ++it) {
      if (*it <= remaining) {
        batch.seq_lens.push_back(*it);
        remaining -= *it;
        added = true;
        break;
      }
    }
    if (!added) {
      batch.seq_lens.push_back(remaining);
      remaining = 0;
    }
  }
  ZCHECK_EQ(batch.total_tokens(), total_tokens);
  return batch;
}

Batch MakeSkewedBatch(int64_t total_tokens) {
  // One dominant sequence (3/4 of the budget) plus short 1k fillers.
  Batch batch;
  const int64_t long_len = total_tokens / 4 * 3;
  batch.seq_lens.push_back(long_len);
  int64_t remaining = total_tokens - long_len;
  while (remaining > 0) {
    const int64_t len = std::min<int64_t>(1024, remaining);
    batch.seq_lens.push_back(len);
    remaining -= len;
  }
  ZCHECK_EQ(batch.total_tokens(), total_tokens);
  return batch;
}

std::string DescribeBatch(const Batch& batch) {
  std::map<int64_t, int> counts;
  for (int64_t s : batch.seq_lens) {
    ++counts[s];
  }
  std::ostringstream out;
  bool first = true;
  for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
    if (!first) {
      out << " + ";
    }
    first = false;
    out << it->second << "x" << it->first;
  }
  return out.str();
}

}  // namespace zeppelin
