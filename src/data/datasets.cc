#include "src/data/datasets.h"

#include "src/common/check.h"

namespace zeppelin {
namespace {

// Builds bins over the standard edges from a weight list (one per bin).
LengthDistribution FromStandardBins(std::string name, const std::vector<double>& weights) {
  const std::vector<int64_t> edges = StandardBinEdges();
  ZCHECK_EQ(weights.size(), edges.size() - 1);
  std::vector<LengthBin> bins;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      bins.push_back({edges[i], edges[i + 1], weights[i]});
    }
  }
  return LengthDistribution(std::move(name), std::move(bins));
}

}  // namespace

// Proportions below are Table 2 of the paper, bins:
// <1k, 1-2k, 2-4k, 4-8k, 8-16k, 16-32k, 32-64k, 64-128k, 128-256k.
LengthDistribution MakeArxivDistribution() {
  return FromStandardBins("arxiv", {0.032, 0.03, 0.08, 0.219, 0.338, 0.224, 0.077, 0.0, 0.0});
}

LengthDistribution MakeGithubDistribution() {
  return FromStandardBins("github",
                          {0.0, 0.34, 0.095, 0.104, 0.107, 0.102, 0.088, 0.064, 0.045});
}

LengthDistribution MakeProlong64kDistribution() {
  return FromStandardBins("prolong64k",
                          {0.231, 0.042, 0.021, 0.012, 0.013, 0.008, 0.673, 0.0, 0.0});
}

// The web corpora of Fig. 1 are dominated by short documents. Shapes below
// follow the figure qualitatively: FineWeb(-Edu) mostly <2k, OpenWebMath
// short-to-medium, StackExchange overwhelmingly <1k.
LengthDistribution MakeFinewebDistribution() {
  return FromStandardBins("fineweb", {0.62, 0.21, 0.10, 0.045, 0.018, 0.005, 0.002, 0.0, 0.0});
}

LengthDistribution MakeFinewebEduDistribution() {
  return FromStandardBins("fineweb_edu",
                          {0.55, 0.25, 0.12, 0.05, 0.02, 0.008, 0.002, 0.0, 0.0});
}

LengthDistribution MakeOpenWebMathDistribution() {
  return FromStandardBins("openwebmath", {0.48, 0.27, 0.15, 0.07, 0.02, 0.008, 0.002, 0.0, 0.0});
}

LengthDistribution MakeStackExchangeDistribution() {
  return FromStandardBins("stackexchange",
                          {0.78, 0.14, 0.05, 0.02, 0.007, 0.002, 0.001, 0.0, 0.0});
}

std::vector<LengthDistribution> EvaluationDatasets() {
  return {MakeArxivDistribution(), MakeGithubDistribution(), MakeProlong64kDistribution()};
}

std::vector<LengthDistribution> AllDatasets() {
  return {MakeArxivDistribution(),      MakeGithubDistribution(),
          MakeProlong64kDistribution(), MakeFinewebDistribution(),
          MakeFinewebEduDistribution(), MakeOpenWebMathDistribution(),
          MakeStackExchangeDistribution()};
}

LengthDistribution DatasetByName(const std::string& name) {
  for (auto& d : AllDatasets()) {
    if (d.name() == name) {
      return d;
    }
  }
  ZCHECK(false) << "unknown dataset: " << name;
  return MakeArxivDistribution();
}

}  // namespace zeppelin
