#include "src/data/mixture.h"

#include "src/common/check.h"
#include "src/data/datasets.h"

namespace zeppelin {

LengthDistribution MakeMixtureDistribution(const std::string& name,
                                           const std::vector<MixtureComponent>& components) {
  ZCHECK(!components.empty());
  std::vector<LengthBin> bins;
  for (const auto& component : components) {
    ZCHECK_GE(component.weight, 0.0);
    const LengthDistribution d = DatasetByName(component.dataset);
    double total = 0;
    for (const auto& b : d.bins()) {
      total += b.weight;
    }
    for (const auto& b : d.bins()) {
      bins.push_back({b.lo, b.hi, component.weight * b.weight / total});
    }
  }
  return LengthDistribution(name, std::move(bins));
}

LengthDistribution MakePretrainMixture() {
  return MakeMixtureDistribution("pretrain-mixture", {
                                                         {"fineweb", 0.45},
                                                         {"fineweb_edu", 0.15},
                                                         {"stackexchange", 0.10},
                                                         {"openwebmath", 0.08},
                                                         {"github", 0.12},
                                                         {"arxiv", 0.06},
                                                         {"prolong64k", 0.04},
                                                     });
}

}  // namespace zeppelin
