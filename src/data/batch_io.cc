#include "src/data/batch_io.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/check.h"

namespace zeppelin {

std::string BatchesToText(const std::vector<Batch>& batches) {
  std::ostringstream out;
  out << "# zeppelin batch file: one batch per line, comma-separated lengths\n";
  for (const Batch& batch : batches) {
    for (size_t i = 0; i < batch.seq_lens.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << batch.seq_lens[i];
    }
    out << "\n";
  }
  return out.str();
}

std::vector<Batch> BatchesFromText(const std::string& text) {
  std::vector<Batch> batches;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    // Trim whitespace.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;
    }
    line = line.substr(first, line.find_last_not_of(" \t\r") - first + 1);

    Batch batch;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, ',')) {
      // Trim the field before strtoll so "128, 256" parses.
      const size_t begin = field.find_first_not_of(" \t");
      ZCHECK(begin != std::string::npos)
          << "empty length field on line " << line_number;
      field = field.substr(begin, field.find_last_not_of(" \t") - begin + 1);
      char* end = nullptr;
      const int64_t len = std::strtoll(field.c_str(), &end, 10);
      ZCHECK(end == field.c_str() + field.size())
          << "malformed length '" << field << "' on line " << line_number;
      ZCHECK_GT(len, 0) << "non-positive length on line " << line_number;
      batch.seq_lens.push_back(len);
    }
    ZCHECK(!batch.seq_lens.empty()) << "empty batch on line " << line_number;
    batches.push_back(std::move(batch));
  }
  return batches;
}

bool SaveBatches(const std::string& path, const std::vector<Batch>& batches) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text = BatchesToText(batches);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

bool LoadBatches(const std::string& path, std::vector<Batch>* batches) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  *batches = BatchesFromText(text);
  return true;
}

}  // namespace zeppelin
