// Batch sampling: turns a length distribution into concrete training batches.
//
// Mirrors the paper's workload generation: a global batch targets a fixed
// total context length (e.g. 64k-256k tokens = 4k per GPU), with individual
// sequence lengths sampled from the dataset distribution. Also provides the
// hand-built Balanced / Skewed batches of Table 3.
#ifndef SRC_DATA_SAMPLER_H_
#define SRC_DATA_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/distribution.h"

namespace zeppelin {

struct Batch {
  std::vector<int64_t> seq_lens;

  int64_t total_tokens() const;
  int64_t max_len() const;
  // Number of sequences.
  int size() const { return static_cast<int>(seq_lens.size()); }
};

class BatchSampler {
 public:
  // `total_tokens`: the global context length of each batch. Sequences are
  // drawn from `dist` until the target is met; the final sequence is trimmed
  // so every batch has exactly `total_tokens` tokens (sequence lengths stay
  // multiples of `granularity`).
  BatchSampler(LengthDistribution dist, int64_t total_tokens, uint64_t seed,
               int64_t granularity = 64);

  Batch NextBatch();

  const LengthDistribution& distribution() const { return dist_; }
  int64_t total_tokens() const { return total_tokens_; }

 private:
  LengthDistribution dist_;
  int64_t total_tokens_;
  int64_t granularity_;
  Rng rng_;
};

// Table 3 batches (7B model, 128k total context):
// Balanced samples one sequence from every Table-2 bin of the dataset mix;
// Skewed is one very long sequence plus several short ones.
Batch MakeBalancedBatch(int64_t total_tokens);
Batch MakeSkewedBatch(int64_t total_tokens);

// Splits `batch` deterministically for quick inspection, e.g. "3x4096 + 1x512".
std::string DescribeBatch(const Batch& batch);

}  // namespace zeppelin

#endif  // SRC_DATA_SAMPLER_H_
