#include "src/data/stream.h"

#include <algorithm>

#include "src/common/check.h"

namespace zeppelin {

void ApplyBatchDelta(const BatchDelta& delta, Batch* batch,
                     std::vector<int>* added_slots) {
  ZCHECK(batch != nullptr);
  if (added_slots != nullptr) {
    added_slots->clear();
  }

  // Resizes are direct slot writes.
  for (const auto& [slot, new_len] : delta.resized) {
    ZCHECK(slot >= 0 && slot < batch->size()) << "resize slot out of range: " << slot;
    ZCHECK_GE(new_len, 0);
    batch->seq_lens[slot] = new_len;
  }

  // Freed slots are refilled by additions in ascending slot order, so the
  // add -> slot mapping is a pure function of the delta (the determinism the
  // planner-side mirroring depends on).
  std::vector<int> freed = delta.removed;
  std::sort(freed.begin(), freed.end());
  size_t next_free = 0;
  for (int64_t len : delta.added) {
    ZCHECK_GE(len, 0);
    int slot;
    if (next_free < freed.size()) {
      slot = freed[next_free++];
      ZCHECK(slot >= 0 && slot < batch->size()) << "removed slot out of range: " << slot;
    } else {
      slot = batch->size();
      batch->seq_lens.push_back(0);
    }
    batch->seq_lens[slot] = len;
    if (added_slots != nullptr) {
      added_slots->push_back(slot);
    }
  }
  // Surplus removals become zero-length tombstones: the slot stays, carrying
  // no tokens, so every other slot id remains stable.
  for (; next_free < freed.size(); ++next_free) {
    const int slot = freed[next_free];
    ZCHECK(slot >= 0 && slot < batch->size()) << "removed slot out of range: " << slot;
    batch->seq_lens[slot] = 0;
  }
}

WorkloadStream::WorkloadStream(LengthDistribution dist, Batch initial,
                               StreamOptions options, uint64_t seed)
    : dist_(std::move(dist)), batch_(std::move(initial)), options_(std::move(options)), rng_(seed) {
  stream_id_ =
      options_.stream_id.empty() ? "stream-" + std::to_string(seed) : options_.stream_id;
  ZCHECK_GT(batch_.size(), 0);
  ZCHECK(options_.churn_fraction >= 0 && options_.churn_fraction <= 1.0);
  ZCHECK(options_.resize_fraction >= 0 && options_.resize_fraction <= 1.0);
  ZCHECK(options_.drop_fraction >= 0 && options_.drop_fraction <= 1.0);
}

BatchDelta WorkloadStream::Next() {
  const int n = batch_.size();
  int live = 0;
  for (int64_t len : batch_.seq_lens) {
    live += len > 0 ? 1 : 0;
  }
  int churn = static_cast<int>(options_.churn_fraction * live + 0.5);
  churn = std::clamp(churn, live > 0 ? 1 : 0, live);

  // Distinct live slots, chosen by partial Fisher-Yates over the slot ids.
  pick_buf_.resize(n);
  int live_count = 0;
  for (int slot = 0; slot < n; ++slot) {
    if (batch_.seq_lens[slot] > 0) {
      pick_buf_[live_count++] = slot;
    }
  }
  BatchDelta delta;
  // Tombstones from the previous iteration revive first (a dropped
  // replacement is withheld for exactly one iteration), keeping the live
  // count stationary under drop churn.
  for (int slot : pending_revive_) {
    delta.resized.emplace_back(slot, dist_.Sample(rng_, options_.granularity));
  }
  pending_revive_.clear();
  for (int i = 0; i < churn; ++i) {
    const int j = i + static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(live_count - i)));
    std::swap(pick_buf_[i], pick_buf_[j]);
    const int slot = pick_buf_[i];
    if (rng_.NextDouble() < options_.resize_fraction) {
      delta.resized.emplace_back(slot, dist_.Sample(rng_, options_.granularity));
    } else {
      delta.removed.push_back(slot);
      if (rng_.NextDouble() >= options_.drop_fraction) {
        delta.added.push_back(dist_.Sample(rng_, options_.granularity));
      }
    }
  }
  ApplyBatchDelta(delta, &batch_);
  // The slots that actually became tombstones are the surplus removals —
  // the highest freed slots, since additions refill in ascending order (not
  // necessarily the slots whose replacements were withheld). Queue exactly
  // those for next iteration's revival.
  if (delta.removed.size() > delta.added.size()) {
    std::vector<int> freed = delta.removed;
    std::sort(freed.begin(), freed.end());
    pending_revive_.assign(freed.begin() + delta.added.size(), freed.end());
  }
  return delta;
}

}  // namespace zeppelin
