#include "src/data/stream.h"

#include <algorithm>

#include "src/common/check.h"

namespace zeppelin {

void ApplyBatchDelta(const BatchDelta& delta, Batch* batch,
                     std::vector<int>* added_slots) {
  ZCHECK(batch != nullptr);
  if (added_slots != nullptr) {
    added_slots->clear();
  }

  // Resizes are direct slot writes.
  for (const auto& [slot, new_len] : delta.resized) {
    ZCHECK(slot >= 0 && slot < batch->size()) << "resize slot out of range: " << slot;
    ZCHECK_GE(new_len, 0);
    batch->seq_lens[slot] = new_len;
  }

  // Freed slots are refilled by additions in ascending slot order, so the
  // add -> slot mapping is a pure function of the delta (the determinism the
  // planner-side mirroring depends on).
  std::vector<int> freed = delta.removed;
  std::sort(freed.begin(), freed.end());
  size_t next_free = 0;
  for (int64_t len : delta.added) {
    ZCHECK_GE(len, 0);
    int slot;
    if (next_free < freed.size()) {
      slot = freed[next_free++];
      ZCHECK(slot >= 0 && slot < batch->size()) << "removed slot out of range: " << slot;
    } else {
      slot = batch->size();
      batch->seq_lens.push_back(0);
    }
    batch->seq_lens[slot] = len;
    if (added_slots != nullptr) {
      added_slots->push_back(slot);
    }
  }
  // Surplus removals become zero-length tombstones: the slot stays, carrying
  // no tokens, so every other slot id remains stable.
  for (; next_free < freed.size(); ++next_free) {
    const int slot = freed[next_free];
    ZCHECK(slot >= 0 && slot < batch->size()) << "removed slot out of range: " << slot;
    batch->seq_lens[slot] = 0;
  }
}

int64_t QuantizeSpeed(double factor) {
  ZCHECK_GT(factor, 0.0) << "speed factor must be positive";
  const double scaled = factor * static_cast<double>(kSpeedScale) + 0.5;
  const int64_t q = static_cast<int64_t>(scaled);
  return std::clamp<int64_t>(q, 1, 64 * kSpeedScale);
}

void RankTopology::Reset(int world) {
  ZCHECK_GT(world, 0);
  alive.assign(world, 1);
  speed_q.assign(world, kSpeedScale);
}

void RankTopology::Apply(const TopologyDelta& delta) {
  for (int rank : delta.removed_ranks) {
    ZCHECK(rank >= 0 && rank < world()) << "removed rank out of range: " << rank;
    ZCHECK(alive[rank]) << "removed rank already dead: " << rank;
    alive[rank] = 0;
  }
  for (int rank : delta.added_ranks) {
    ZCHECK(rank >= 0 && rank < world()) << "added rank out of range: " << rank;
    ZCHECK(!alive[rank]) << "added rank already alive: " << rank;
    alive[rank] = 1;
  }
  for (const auto& [rank, factor] : delta.speed_factors) {
    ZCHECK(rank >= 0 && rank < world()) << "speed rank out of range: " << rank;
    speed_q[rank] = QuantizeSpeed(factor);
  }
}

int RankTopology::alive_count() const {
  int count = 0;
  for (uint8_t a : alive) {
    count += a ? 1 : 0;
  }
  return count;
}

bool RankTopology::degraded() const {
  for (uint8_t a : alive) {
    if (!a) {
      return true;
    }
  }
  for (int64_t q : speed_q) {
    if (q != kSpeedScale) {
      return true;
    }
  }
  return false;
}

FaultStream::FaultStream(int world, FaultStreamOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  topo_.Reset(world);
  ZCHECK(options_.fault_rate >= 0 && options_.fault_rate <= 1.0);
  ZCHECK(options_.slowdown_rate >= 0 && options_.slowdown_rate <= 1.0);
  ZCHECK(options_.min_speed > 0 && options_.min_speed <= 1.0);
  ZCHECK_GE(options_.restore_after, 0);
  ZCHECK(options_.min_alive >= 1 && options_.min_alive <= world);
}

TopologyDelta FaultStream::Next() {
  TopologyDelta delta;

  // Restores due this iteration come first (FIFO by due time; pending_restore_
  // is appended in kill order, so it is already sorted by due iteration).
  size_t due = 0;
  while (due < pending_restore_.size() && pending_restore_[due].first <= iter_) {
    delta.added_ranks.push_back(pending_restore_[due].second);
    ++due;
  }
  pending_restore_.erase(pending_restore_.begin(), pending_restore_.begin() + due);

  // Kill victims are drawn from the ranks alive *before* the restores above,
  // so one delta never removes and adds the same rank.
  const int world = topo_.world();
  pick_buf_.clear();
  for (int rank = 0; rank < world; ++rank) {
    if (topo_.alive[rank]) {
      pick_buf_.push_back(rank);
    }
  }
  const int alive = static_cast<int>(pick_buf_.size());
  const int alive_after_restores = alive + static_cast<int>(delta.added_ranks.size());

  // Fractional kill expectations accumulate so sub-1-per-iteration rates
  // still fire deterministically.
  kill_accum_ += options_.fault_rate * alive;
  int kills = static_cast<int>(kill_accum_);
  kills = std::clamp(kills, 0, std::max(0, alive_after_restores - options_.min_alive));
  kills = std::min(kills, alive);
  kill_accum_ -= kills;

  for (int i = 0; i < kills; ++i) {
    const int j = i + static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(alive - i)));
    std::swap(pick_buf_[i], pick_buf_[j]);
    const int rank = pick_buf_[i];
    delta.removed_ranks.push_back(rank);
    if (options_.restore_after > 0) {
      pending_restore_.emplace_back(iter_ + options_.restore_after, rank);
    }
  }

  // Slowdowns re-rate survivors (alive before restores, not killed above).
  slow_accum_ += options_.slowdown_rate * (alive - kills);
  int slows = static_cast<int>(slow_accum_);
  slows = std::clamp(slows, 0, alive - kills);
  slow_accum_ -= slows;
  for (int i = 0; i < slows; ++i) {
    const int j =
        kills + i + static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(alive - kills - i)));
    std::swap(pick_buf_[kills + i], pick_buf_[j]);
    const int rank = pick_buf_[kills + i];
    const double factor =
        options_.min_speed + (1.0 - options_.min_speed) * rng_.NextDouble();
    delta.speed_factors.emplace_back(rank, factor);
  }

  topo_.Apply(delta);
  ++iter_;
  return delta;
}

WorkloadStream::WorkloadStream(LengthDistribution dist, Batch initial,
                               StreamOptions options, uint64_t seed)
    : dist_(std::move(dist)), batch_(std::move(initial)), options_(std::move(options)), rng_(seed) {
  stream_id_ =
      options_.stream_id.empty() ? "stream-" + std::to_string(seed) : options_.stream_id;
  ZCHECK_GT(batch_.size(), 0);
  ZCHECK(options_.churn_fraction >= 0 && options_.churn_fraction <= 1.0);
  ZCHECK(options_.resize_fraction >= 0 && options_.resize_fraction <= 1.0);
  ZCHECK(options_.drop_fraction >= 0 && options_.drop_fraction <= 1.0);
}

BatchDelta WorkloadStream::Next() {
  const int n = batch_.size();
  int live = 0;
  for (int64_t len : batch_.seq_lens) {
    live += len > 0 ? 1 : 0;
  }
  int churn = static_cast<int>(options_.churn_fraction * live + 0.5);
  churn = std::clamp(churn, live > 0 ? 1 : 0, live);

  // Distinct live slots, chosen by partial Fisher-Yates over the slot ids.
  pick_buf_.resize(n);
  int live_count = 0;
  for (int slot = 0; slot < n; ++slot) {
    if (batch_.seq_lens[slot] > 0) {
      pick_buf_[live_count++] = slot;
    }
  }
  BatchDelta delta;
  // Tombstones from the previous iteration revive first (a dropped
  // replacement is withheld for exactly one iteration), keeping the live
  // count stationary under drop churn.
  for (int slot : pending_revive_) {
    delta.resized.emplace_back(slot, dist_.Sample(rng_, options_.granularity));
  }
  pending_revive_.clear();
  for (int i = 0; i < churn; ++i) {
    const int j = i + static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(live_count - i)));
    std::swap(pick_buf_[i], pick_buf_[j]);
    const int slot = pick_buf_[i];
    if (rng_.NextDouble() < options_.resize_fraction) {
      delta.resized.emplace_back(slot, dist_.Sample(rng_, options_.granularity));
    } else {
      delta.removed.push_back(slot);
      if (rng_.NextDouble() >= options_.drop_fraction) {
        delta.added.push_back(dist_.Sample(rng_, options_.granularity));
      }
    }
  }
  ApplyBatchDelta(delta, &batch_);
  // The slots that actually became tombstones are the surplus removals —
  // the highest freed slots, since additions refill in ascending order (not
  // necessarily the slots whose replacements were withheld). Queue exactly
  // those for next iteration's revival.
  if (delta.removed.size() > delta.added.size()) {
    std::vector<int> freed = delta.removed;
    std::sort(freed.begin(), freed.end());
    pending_revive_.assign(freed.begin() + delta.added.size(), freed.end());
  }
  return delta;
}

}  // namespace zeppelin
