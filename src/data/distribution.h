// Sequence-length distributions.
//
// Training batches in the paper are synthetic: sequence lengths are sampled
// proportionally to the length histogram of a reference dataset (§5, Table 2).
// A LengthDistribution is exactly such a histogram: a set of [lo, hi) bins
// with sampling weights; lengths within a bin are drawn log-uniformly, which
// matches the long-tailed shapes in Fig. 1.
#ifndef SRC_DATA_DISTRIBUTION_H_
#define SRC_DATA_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace zeppelin {

struct LengthBin {
  int64_t lo = 0;        // Inclusive.
  int64_t hi = 0;        // Exclusive.
  double weight = 0;     // Probability mass (need not be normalized).
};

class LengthDistribution {
 public:
  LengthDistribution(std::string name, std::vector<LengthBin> bins);

  const std::string& name() const { return name_; }
  const std::vector<LengthBin>& bins() const { return bins_; }

  // Draws one sequence length. Lengths are rounded to a multiple of
  // `granularity` (tokenizer/packing granularity; 64 matches common practice)
  // and clamped to the bin.
  int64_t Sample(Rng& rng, int64_t granularity = 64) const;

  // Probability mass of sequences falling in [lo, hi).
  double MassInRange(int64_t lo, int64_t hi) const;

  // Expected token contribution of sequences in [lo, hi) relative to the
  // overall expected tokens (token-mass share rather than count share).
  double TokenShareInRange(int64_t lo, int64_t hi) const;

  // Expected sequence length under the distribution.
  double MeanLength() const;

  // Largest representable length.
  int64_t MaxLength() const;

 private:
  std::string name_;
  std::vector<LengthBin> bins_;
  double total_weight_ = 0;
};

// The standard bin edges used throughout the paper's figures:
// <1k, 1-2k, 2-4k, ..., 128-256k.
std::vector<int64_t> StandardBinEdges();

// Human label for a [lo, hi) standard bin, e.g. "<1k" or "16-32k".
std::string BinLabel(int64_t lo, int64_t hi);

}  // namespace zeppelin

#endif  // SRC_DATA_DISTRIBUTION_H_
