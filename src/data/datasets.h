// Dataset presets.
//
// Table 2 of the paper gives exact per-bin proportions for the three
// evaluation datasets (ArXiv, GitHub, ProLong64k); those are reproduced
// verbatim. The four additional Fig. 1 corpora (FineWeb, FineWeb-Edu,
// OpenWebMath, StackExchange) are modelled from the shapes shown in Fig. 1 —
// web/QA corpora dominated by sub-4k documents.
#ifndef SRC_DATA_DATASETS_H_
#define SRC_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "src/data/distribution.h"

namespace zeppelin {

// --- Evaluation datasets (Table 2) -----------------------------------------
LengthDistribution MakeArxivDistribution();
LengthDistribution MakeGithubDistribution();
LengthDistribution MakeProlong64kDistribution();

// --- Additional Fig. 1 corpora ----------------------------------------------
LengthDistribution MakeFinewebDistribution();
LengthDistribution MakeFinewebEduDistribution();
LengthDistribution MakeOpenWebMathDistribution();
LengthDistribution MakeStackExchangeDistribution();

// The three Table-2 datasets in paper order.
std::vector<LengthDistribution> EvaluationDatasets();
// All seven Fig.-1 corpora.
std::vector<LengthDistribution> AllDatasets();

// Lookup by name ("arxiv", "github", "prolong64k", "fineweb", ...).
LengthDistribution DatasetByName(const std::string& name);

}  // namespace zeppelin

#endif  // SRC_DATA_DATASETS_H_
