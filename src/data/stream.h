// Streaming / online-batch workload model: deltas between consecutive
// iterations' batches, and a deterministic churn generator that produces them.
//
// In online training and continuous-batching serving, the batch of iteration
// t+1 is mostly the batch of iteration t: a handful of sequences finish
// (removed), new requests arrive (added), and some running sequences change
// length (resized, e.g. incremental decoding or re-chunked documents). A
// BatchDelta captures exactly that difference; the delta planner
// (src/core/delta_planner.h) consumes it to patch the previous PartitionPlan
// instead of re-partitioning all S sequences from scratch.
//
// Slot semantics: a Batch is treated as an array of sequence *slots* whose
// ids stay stable across deltas (a slot id is a seq_id everywhere in the
// planner). ApplyBatchDelta fills freed slots with added sequences first (in
// ascending slot order), appends any surplus additions as new tail slots, and
// turns surplus removals into zero-length tombstone slots. Tombstones remain
// valid sequences (zero tokens, packed as no-op locals) so slot ids never
// shift. ApplyBatchDelta itself only refills slots freed within the same
// delta; re-filling an older tombstone is a `resized` entry on that slot
// (that is how WorkloadStream revives the tombstones it creates).
#ifndef SRC_DATA_STREAM_H_
#define SRC_DATA_STREAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/data/distribution.h"
#include "src/data/sampler.h"

namespace zeppelin {

// The difference between two consecutive batches. Slot ids in `removed` and
// `resized` refer to the batch the delta is applied to; `added` sequences get
// their slots assigned by ApplyBatchDelta (freed slots first, then the tail).
struct BatchDelta {
  std::vector<int> removed;                       // Slot ids to free.
  std::vector<std::pair<int, int64_t>> resized;   // (slot id, new length).
  std::vector<int64_t> added;                     // New sequence lengths.

  // Number of changed sequences (the churn count).
  int size() const {
    return static_cast<int>(removed.size() + resized.size() + added.size());
  }
  bool empty() const { return size() == 0; }
};

// Applies `delta` to `batch` in place under the slot semantics above. If
// `added_slots` is non-null it is overwritten with the slot id assigned to
// each `delta.added[i]`, in order — the mapping the delta planner needs to
// mirror the same placement in its own state. Slot ids must be in range and
// not repeated across removed/resized within one delta.
void ApplyBatchDelta(const BatchDelta& delta, Batch* batch,
                     std::vector<int>* added_slots = nullptr);

// Churn-generation knobs for WorkloadStream.
struct StreamOptions {
  // Identifies this stream to planning-side consumers: drivers that feed a
  // PlannerService (src/core/plan_service.h) use it as the delta-session key,
  // so concurrent streams get independent incremental state. Empty = the
  // stream synthesizes "stream-<seed>" (deterministic, collision-free across
  // distinct seeds).
  std::string stream_id = {};
  // Fraction of live (non-tombstone) slots changed per Next() call; at least
  // one sequence changes when the batch is non-empty.
  double churn_fraction = 0.01;
  // Of the churned slots, the fraction resized in place (re-sampled length);
  // the rest are removed and replaced by freshly sampled sequences.
  double resize_fraction = 0.5;
  // Probability that a replacement is withheld, leaving a tombstone for one
  // iteration — the stream revives it (as a `resized` entry with a freshly
  // sampled length) on the next Next(), so the live sequence count stays
  // stationary (exercises shrink/grow churn; 0 keeps the size constant).
  double drop_fraction = 0.0;
  // Sequence-length granularity for sampling (matches BatchSampler).
  int64_t granularity = 64;
};

// Deterministic workload-churn generator: owns the evolving Batch and emits
// the BatchDelta of each step. Two streams built from the same distribution,
// initial batch, options, and seed produce bit-identical delta sequences —
// the reproducibility contract the delta-planner soak tests and the
// planner-delta bench rely on.
class WorkloadStream {
 public:
  WorkloadStream(LengthDistribution dist, Batch initial, StreamOptions options,
                 uint64_t seed);

  // The current batch (after all deltas emitted so far).
  const Batch& batch() const { return batch_; }

  // The stream's planning-session key (StreamOptions::stream_id, or the
  // seed-derived default).
  const std::string& stream_id() const { return stream_id_; }

  // Advances one iteration: picks churned slots, applies the changes to the
  // internal batch, and returns the delta it just applied.
  BatchDelta Next();

  const StreamOptions& options() const { return options_; }

 private:
  LengthDistribution dist_;
  Batch batch_;
  StreamOptions options_;
  std::string stream_id_;
  Rng rng_;
  std::vector<int> pick_buf_;       // Scratch for distinct-slot selection.
  std::vector<int> pending_revive_;  // Tombstones created by the last Next().
};

}  // namespace zeppelin

#endif  // SRC_DATA_STREAM_H_
