// Streaming / online-batch workload model: deltas between consecutive
// iterations' batches, and a deterministic churn generator that produces them.
//
// In online training and continuous-batching serving, the batch of iteration
// t+1 is mostly the batch of iteration t: a handful of sequences finish
// (removed), new requests arrive (added), and some running sequences change
// length (resized, e.g. incremental decoding or re-chunked documents). A
// BatchDelta captures exactly that difference; the delta planner
// (src/core/delta_planner.h) consumes it to patch the previous PartitionPlan
// instead of re-partitioning all S sequences from scratch.
//
// Slot semantics: a Batch is treated as an array of sequence *slots* whose
// ids stay stable across deltas (a slot id is a seq_id everywhere in the
// planner). ApplyBatchDelta fills freed slots with added sequences first (in
// ascending slot order), appends any surplus additions as new tail slots, and
// turns surplus removals into zero-length tombstone slots. Tombstones remain
// valid sequences (zero tokens, packed as no-op locals) so slot ids never
// shift. ApplyBatchDelta itself only refills slots freed within the same
// delta; re-filling an older tombstone is a `resized` entry on that slot
// (that is how WorkloadStream revives the tombstones it creates).
#ifndef SRC_DATA_STREAM_H_
#define SRC_DATA_STREAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/data/distribution.h"
#include "src/data/sampler.h"

namespace zeppelin {

// The difference between two consecutive batches. Slot ids in `removed` and
// `resized` refer to the batch the delta is applied to; `added` sequences get
// their slots assigned by ApplyBatchDelta (freed slots first, then the tail).
struct BatchDelta {
  std::vector<int> removed;                       // Slot ids to free.
  std::vector<std::pair<int, int64_t>> resized;   // (slot id, new length).
  std::vector<int64_t> added;                     // New sequence lengths.

  // Number of changed sequences (the churn count).
  int size() const {
    return static_cast<int>(removed.size() + resized.size() + added.size());
  }
  bool empty() const { return size() == 0; }
};

// Applies `delta` to `batch` in place under the slot semantics above. If
// `added_slots` is non-null it is overwritten with the slot id assigned to
// each `delta.added[i]`, in order — the mapping the delta planner needs to
// mirror the same placement in its own state. Slot ids must be in range and
// not repeated across removed/resized within one delta.
void ApplyBatchDelta(const BatchDelta& delta, Batch* batch,
                     std::vector<int>* added_slots = nullptr);

// --- Topology churn ---------------------------------------------------------
//
// Production clusters churn *topology* as well as batches: a GPU drops
// mid-run, a preempted node rejoins, a straggler runs slow. A TopologyDelta is
// the fabric-side sibling of BatchDelta: the difference between two
// consecutive fabric states, expressed against a fixed rank universe (ranks
// never renumber; a dead rank is a hole, not a shift — the same stability
// contract tombstone slots give sequences).

// Fixed-point scale for rank speed factors. Speeds are quantized once at the
// delta boundary so every consumer (planner, equivalence checker, cost model
// callers) sees the identical integer and load comparisons stay deterministic.
inline constexpr int64_t kSpeedScale = 1024;

// Quantizes a relative speed factor (1.0 = nominal) to kSpeedScale fixed
// point. factor must be > 0; results clamp to [1, 64 * kSpeedScale].
int64_t QuantizeSpeed(double factor);

// The difference between two consecutive fabric states. Ranks in
// `removed_ranks` must be alive, ranks in `added_ranks` must be dead; a rank
// may not appear in both within one delta. `speed_factors` entries re-rate a
// rank (alive or dead — a dead rank's factor sticks and applies on restore).
struct TopologyDelta {
  std::vector<int> removed_ranks;                    // Ranks killed.
  std::vector<int> added_ranks;                      // Ranks restored.
  std::vector<std::pair<int, double>> speed_factors;  // (rank, new factor).

  int size() const {
    return static_cast<int>(removed_ranks.size() + added_ranks.size() +
                            speed_factors.size());
  }
  bool empty() const { return size() == 0; }
};

// The running fabric state a consumer folds TopologyDeltas into: per-rank
// liveness plus quantized speed. Value type, cheap to copy/compare.
struct RankTopology {
  std::vector<uint8_t> alive;    // 1 = rank accepts work.
  std::vector<int64_t> speed_q;  // Quantized speed, kSpeedScale = nominal.

  // (Re)initializes to `world` ranks, all alive at nominal speed.
  void Reset(int world);
  // Folds one delta in. ZCHECKs the liveness preconditions above.
  void Apply(const TopologyDelta& delta);

  int world() const { return static_cast<int>(alive.size()); }
  int alive_count() const;
  // True when any rank is dead or off nominal speed — the planner's trigger
  // for heterogeneous-aware paths (the clean fabric keeps byte-identical
  // plans through the homogeneous code path).
  bool degraded() const;
  double speed(int rank) const {
    return static_cast<double>(speed_q[rank]) / static_cast<double>(kSpeedScale);
  }
  // Load of `tokens` on `rank` in speed-normalized units: tokens at nominal
  // speed, proportionally more on slow ranks. Integer and exact at nominal
  // speed so homogeneous comparisons are unchanged.
  int64_t EffectiveLoad(int rank, int64_t tokens) const {
    return tokens * kSpeedScale / speed_q[rank];
  }

  bool operator==(const RankTopology&) const = default;
};

// Fault-injection knobs for FaultStream.
struct FaultStreamOptions {
  // Expected fraction of currently-alive ranks killed per Next(). Fractional
  // expectations accumulate across iterations (0.001 on 64 ranks kills one
  // rank roughly every 16 calls), so low rates still fire.
  double fault_rate = 0.01;
  // Iterations a killed rank stays dead before the stream restores it.
  // 0 = killed ranks never come back.
  int restore_after = 4;
  // Expected fraction of alive ranks whose speed factor is re-drawn per
  // Next() (stragglers). Accumulates like fault_rate.
  double slowdown_rate = 0.0;
  // Re-drawn factors are uniform on [min_speed, 1.0].
  double min_speed = 0.5;
  // Kills never take the alive count below this floor.
  int min_alive = 1;
};

// Deterministic fault injector: owns the evolving RankTopology and emits the
// TopologyDelta of each step — kill/restore/slowdown schedules in the
// WorkloadStream style. Two streams with the same world, options, and seed
// produce bit-identical delta sequences (the twin-stream soak contract).
class FaultStream {
 public:
  FaultStream(int world, FaultStreamOptions options, uint64_t seed);

  // The current fabric state (after all deltas emitted so far).
  const RankTopology& topology() const { return topo_; }

  // Advances one iteration: restores due ranks, kills and slows fresh
  // victims, folds the changes into the internal topology, and returns the
  // delta it just applied.
  TopologyDelta Next();

  const FaultStreamOptions& options() const { return options_; }

 private:
  RankTopology topo_;
  FaultStreamOptions options_;
  Rng rng_;
  int iter_ = 0;
  double kill_accum_ = 0.0;
  double slow_accum_ = 0.0;
  std::vector<std::pair<int, int>> pending_restore_;  // (due iteration, rank).
  std::vector<int> pick_buf_;  // Scratch for distinct-rank selection.
};

// Churn-generation knobs for WorkloadStream.
struct StreamOptions {
  // Identifies this stream to planning-side consumers: drivers that feed a
  // PlannerService (src/core/plan_service.h) use it as the delta-session key,
  // so concurrent streams get independent incremental state. Empty = the
  // stream synthesizes "stream-<seed>" (deterministic, collision-free across
  // distinct seeds).
  std::string stream_id = {};
  // Fraction of live (non-tombstone) slots changed per Next() call; at least
  // one sequence changes when the batch is non-empty.
  double churn_fraction = 0.01;
  // Of the churned slots, the fraction resized in place (re-sampled length);
  // the rest are removed and replaced by freshly sampled sequences.
  double resize_fraction = 0.5;
  // Probability that a replacement is withheld, leaving a tombstone for one
  // iteration — the stream revives it (as a `resized` entry with a freshly
  // sampled length) on the next Next(), so the live sequence count stays
  // stationary (exercises shrink/grow churn; 0 keeps the size constant).
  double drop_fraction = 0.0;
  // Sequence-length granularity for sampling (matches BatchSampler).
  int64_t granularity = 64;
};

// Deterministic workload-churn generator: owns the evolving Batch and emits
// the BatchDelta of each step. Two streams built from the same distribution,
// initial batch, options, and seed produce bit-identical delta sequences —
// the reproducibility contract the delta-planner soak tests and the
// planner-delta bench rely on.
class WorkloadStream {
 public:
  WorkloadStream(LengthDistribution dist, Batch initial, StreamOptions options,
                 uint64_t seed);

  // The current batch (after all deltas emitted so far).
  const Batch& batch() const { return batch_; }

  // The stream's planning-session key (StreamOptions::stream_id, or the
  // seed-derived default).
  const std::string& stream_id() const { return stream_id_; }

  // Advances one iteration: picks churned slots, applies the changes to the
  // internal batch, and returns the delta it just applied.
  BatchDelta Next();

  const StreamOptions& options() const { return options_; }

 private:
  LengthDistribution dist_;
  Batch batch_;
  StreamOptions options_;
  std::string stream_id_;
  Rng rng_;
  std::vector<int> pick_buf_;       // Scratch for distinct-slot selection.
  std::vector<int> pending_revive_;  // Tombstones created by the last Next().
};

}  // namespace zeppelin

#endif  // SRC_DATA_STREAM_H_
