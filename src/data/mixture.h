// Weighted dataset mixtures — "typical LLM training involves a mixture of
// datasets with diverse and often long-tailed sequence length distributions"
// (paper §1, Fig. 1). A mixture is itself a LengthDistribution, so samplers,
// zone analysis, and benches consume it unchanged.
#ifndef SRC_DATA_MIXTURE_H_
#define SRC_DATA_MIXTURE_H_

#include <string>
#include <vector>

#include "src/data/distribution.h"

namespace zeppelin {

struct MixtureComponent {
  std::string dataset;  // Name resolvable by DatasetByName().
  double weight = 0;    // Relative sampling weight (need not normalize).
};

// Blends the components' (normalized) bins by weight.
LengthDistribution MakeMixtureDistribution(const std::string& name,
                                           const std::vector<MixtureComponent>& components);

// A representative pretraining mixture: mostly web text, meaningful code /
// math / long-context slices (weights follow open recipes).
LengthDistribution MakePretrainMixture();

}  // namespace zeppelin

#endif  // SRC_DATA_MIXTURE_H_
