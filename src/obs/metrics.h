// Lock-cheap metrics primitives + a named registry (docs/OBSERVABILITY.md).
//
// The request path must be observable without becoming slower: every
// primitive here is a handful of relaxed atomics on the hot path, with no
// allocation, no locking, and no sample storage. The registry hands out
// stable pointers (get-or-create under a mutex — registration-time only, so
// instruments are looked up once at construction and then incremented lock
// free), and Snapshot() reads every instrument into one plain struct that
// serializes to a stable JSON schema ("zeppelin.metrics.v1") — the payload
// of the daemon's kStats wire request and the zeppelin_served exit report.
//
// Histograms are fixed-boundary log2 histograms: value v lands in bucket
// bit_width(v), i.e. bucket 0 holds {0} and bucket i >= 1 holds
// [2^(i-1), 2^i - 1]. p50/p99/max are derivable from the bucket counts alone
// (no samples kept): Quantile() answers the *upper bound* of the bucket
// holding the q-th value, so the estimate never under-reports and is within
// a factor of 2 of the exact order statistic (pinned by
// tests/obs_metrics_test.cpp against Percentile() from src/common/stats.h).
//
// Thread safety: Inc/Add/Set/Record are safe from any thread (relaxed
// atomics — counts are exact, cross-instrument consistency is best-effort by
// design). Snapshot() may run concurrently with writers.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zeppelin {
namespace obs {

// Monotonic event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, open sessions, mirrored counters).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

inline constexpr int kHistogramBuckets = 64;

// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  // Upper bound of the bucket holding the ceil(q * count)-th smallest value
  // (q in [0, 1]); 0 when empty. At most 2x the exact order statistic and
  // never below it, except that the answer is additionally clamped to the
  // observed max.
  uint64_t Quantile(double q) const;
  double mean() const { return count == 0 ? 0 : static_cast<double>(sum) / count; }
};

// Fixed-boundary log2 histogram; see the header comment for the boundaries.
class Histogram {
 public:
  void Record(uint64_t v);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// One whole registry, read at a single point in time. Entries are sorted by
// name so the serialized form is stable across runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Serializes a snapshot to the stable "zeppelin.metrics.v1" JSON schema:
//   {"schema":"zeppelin.metrics.v1",
//    "counters":{name:value,...}, "gauges":{name:value,...},
//    "histograms":{name:{"count":..,"sum":..,"max":..,"mean":..,
//                        "p50":..,"p90":..,"p99":..,
//                        "buckets":{"<index>":count,...}},...}}
// Bucket keys are bucket indices; only non-empty buckets are emitted.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

// Named instrument registry. Get-or-create takes a mutex (registration is a
// construction-time event); the returned pointers are stable for the
// registry's lifetime and are incremented without any registry involvement.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // deques: stable element addresses across growth.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace obs
}  // namespace zeppelin

#endif  // SRC_OBS_METRICS_H_
