#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace zeppelin {
namespace obs {

namespace {

int BucketIndex(uint64_t v) {
  // bit_width(0) == 0, bit_width(1) == 1, ... — bucket 0 = {0}, bucket
  // i >= 1 = [2^(i-1), 2^i - 1]. 64-bit values cannot exceed index 64 - 1
  // after the clamp (bit_width(UINT64_MAX) == 64).
  return std::min(static_cast<int>(std::bit_width(v)), kHistogramBuckets - 1);
}

// Inclusive upper bound of bucket `i` (the quantile estimate the snapshot
// reports for values landing there).
uint64_t BucketUpperBound(int i) {
  if (i <= 0) {
    return 0;
  }
  if (i >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << i) - 1;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

}  // namespace

void Histogram::Record(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  // Bucket counts first: a racing Record has bumped its bucket before (or
  // concurrently with) count_, so summing buckets read *before* count_ keeps
  // cumulative-rank arithmetic internally consistent with the buckets field.
  for (int i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // The rank of the q-th value, 1-based: ceil(q * count), floored at 1.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.999999));
  uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::min(BucketUpperBound(i), max == 0 ? BucketUpperBound(i) : max);
    }
  }
  return max;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) {
      return &c;
    }
  }
  counters_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return &counters_.back().second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) {
      return &g;
    }
  }
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return &gauges_.back().second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      return &h;
    }
  }
  histograms_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return &histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      out.counters.emplace_back(name, counter.value());
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      out.gauges.emplace_back(name, gauge.value());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      out.histograms.emplace_back(name, histogram.Snapshot());
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema\":\"zeppelin.metrics.v1\",\"counters\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), "\":%llu", static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(value));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf),
                  "\":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"mean\":%.6g",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max), h.mean());
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%llu,\"p90\":%llu,\"p99\":%llu",
                  static_cast<unsigned long long>(h.Quantile(0.50)),
                  static_cast<unsigned long long>(h.Quantile(0.90)),
                  static_cast<unsigned long long>(h.Quantile(0.99)));
    out += buf;
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) {
        continue;
      }
      if (!first_bucket) out += ',';
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "\"%d\":%llu", i,
                    static_cast<unsigned long long>(h.buckets[i]));
      out += buf;
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace zeppelin
