#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace zeppelin {
namespace obs {

namespace {

thread_local TraceContext* g_current = nullptr;

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kDecode:
      return "decode";
    case Stage::kValidate:
      return "validate";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kPlan:
      return "plan";
    case Stage::kMaterialize:
      return "materialize";
    case Stage::kVerify:
      return "verify";
    case Stage::kEncode:
      return "encode";
    case Stage::kWrite:
      return "write";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceContext::AddSpan(Stage stage, double start_us, double duration_us) {
  stage_us[static_cast<int>(stage)] += duration_us;
  if (span_count < kMaxSpans) {
    spans[span_count++] = Span{stage, start_us, duration_us};
  } else {
    ++dropped_spans;
  }
}

TraceContext* CurrentTrace() { return g_current; }

TraceBinding::TraceBinding(TraceContext* ctx) : prev_(g_current) { g_current = ctx; }

TraceBinding::~TraceBinding() { g_current = prev_; }

TraceScope::TraceScope(Stage stage) : ctx_(g_current), stage_(stage) {
  if (ctx_ != nullptr) {
    start_us_ = NowUs();
  }
}

TraceScope::~TraceScope() {
  if (ctx_ != nullptr) {
    ctx_->AddSpan(stage_, start_us_, NowUs() - start_us_);
  }
}

TraceSink::TraceSink(std::string path) : path_(std::move(path)) {}

void TraceSink::Drain(const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < ctx.span_count; ++i) {
    const TraceContext::Span& span = ctx.spans[i];
    TraceEvent event;
    event.name = StageName(span.stage);
    event.category = "request";
    event.start_us = span.start_us;
    event.duration_us = span.duration_us;
    event.pid = 0;
    event.tid = ctx.lane;
    writer_.Add(std::move(event));
  }
}

bool TraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_.WriteFile(path_);
}

size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_.event_count();
}

SlowRequestLog::SlowRequestLog(double threshold_us, size_t capacity)
    : threshold_us_(threshold_us), capacity_(capacity == 0 ? 1 : capacity) {}

void SlowRequestLog::Observe(const TraceContext& ctx, double total_us) {
  if (total_us < threshold_us_) {
    return;
  }
  Entry entry;
  entry.request_id = ctx.request_id;
  entry.total_us = total_us;
  for (int i = 0; i < kNumStages; ++i) {
    if (ctx.stage_us[i] > entry.slowest_stage_us) {
      entry.slowest_stage_us = ctx.stage_us[i];
      entry.slowest_stage = static_cast<Stage>(i);
    }
  }
  bool log_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++observed_;
    if (ring_.size() < capacity_) {
      ring_.push_back(entry);
    } else {
      ring_[next_] = entry;
    }
    next_ = (next_ + 1) % capacity_;
    const double now_us = NowUs();
    if (now_us - last_log_us_ >= 1e6) {
      last_log_us_ = now_us;
      log_now = true;
    } else {
      ++suppressed_;
    }
  }
  if (log_now) {
    std::fprintf(stderr,
                 "zeppelin: slow request id=%llu total=%.0fus slowest=%s (%.0fus) "
                 "threshold=%.0fus\n",
                 static_cast<unsigned long long>(entry.request_id), entry.total_us,
                 StageName(entry.slowest_stage), entry.slowest_stage_us, threshold_us_);
  }
}

std::vector<SlowRequestLog::Entry> SlowRequestLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t SlowRequestLog::observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

uint64_t SlowRequestLog::suppressed_logs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace obs
}  // namespace zeppelin
