// Request-path tracing: per-request stage spans with zero hot-path
// allocation (docs/OBSERVABILITY.md).
//
// A request entering the daemon gets one stack-allocated TraceContext bound
// to the handling thread (TraceBinding). Every layer the request crosses —
// decode, validation, the cache tiers, the planning engines, the certifier,
// encode, the socket write — opens a TraceScope naming its Stage; the scope
// measures wall time on destruction and accumulates it into the context's
// fixed-size span array and per-stage totals. Deep layers (PlannerService,
// PlanCache, VerifyPlan) never see a context parameter: TraceScope reads the
// thread-local binding and is a no-op (one TLS load, no clock read) when no
// request is being traced, which is what keeps the instrumentation
// compiled-in-but-cheap for direct library callers.
//
// The per-stage totals travel back to the client inside PlanStats::stage_us
// (wire v3); the spans optionally drain into a TraceSink wrapping the
// existing ChromeTraceWriter (src/common/trace_json.h), so a daemon run
// under --trace_out opens in Perfetto next to the fig12 simulator timelines.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/trace_json.h"

namespace zeppelin {
namespace obs {

// The request-stage taxonomy, in request-lifecycle order. Values are
// wire-stable: PlanStats::stage_us is indexed by Stage on the wire (v3).
enum class Stage : uint8_t {
  kQueueWait = 0,    // Admission wait (daemon gate).
  kDecode,           // Wire payload -> WireRequest structural parse.
  kValidate,         // Semantic validation against the session mirror.
  kCacheLookup,      // PlanCache::TryServe (exact tier probe + digest check).
  kPlan,             // Partition / delta Apply / Rebase (the decision kernel).
  kMaterialize,      // Session-plan bulk copy into the immutable handle.
  kVerify,           // VerifyPlan certification.
  kEncode,           // SerializePlan -> plan bytes.
  kWrite,            // Response frame encode + socket write.
  kCount,
};

inline constexpr int kNumStages = static_cast<int>(Stage::kCount);

const char* StageName(Stage stage);

// Monotonic microseconds (steady clock); the time base of every span.
double NowUs();

// One request's accumulated trace. Fixed-size everything: binding, scoping,
// and recording allocate nothing.
struct TraceContext {
  struct Span {
    Stage stage = Stage::kQueueWait;
    double start_us = 0;
    double duration_us = 0;
  };
  static constexpr int kMaxSpans = 32;

  uint64_t request_id = 0;
  // Chrome-trace lane (tid) the request's spans render on; the daemon uses
  // the connection id so concurrent connections stack visually.
  int lane = 0;
  std::array<double, kNumStages> stage_us{};
  std::array<Span, kMaxSpans> spans;
  int span_count = 0;
  int dropped_spans = 0;  // Spans beyond kMaxSpans (stage_us still summed).

  void AddSpan(Stage stage, double start_us, double duration_us);
};

// The thread's bound context, or nullptr when the thread is not handling a
// traced request.
TraceContext* CurrentTrace();

// RAII thread-local binding; restores the previous binding on destruction
// (bindings nest).
class TraceBinding {
 public:
  explicit TraceBinding(TraceContext* ctx);
  ~TraceBinding();

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceContext* prev_;
};

// RAII span: measures construction-to-destruction wall time into the
// thread's bound context. No-op (no clock read) when nothing is bound.
class TraceScope {
 public:
  explicit TraceScope(Stage stage);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* ctx_;
  Stage stage_;
  double start_us_ = 0;
};

// Collects drained request contexts into a ChromeTraceWriter and writes the
// Perfetto-loadable JSON on Flush. Thread-safe; Drain is off the per-span
// hot path (once per request, only when tracing to a file is enabled).
class TraceSink {
 public:
  explicit TraceSink(std::string path);

  void Drain(const TraceContext& ctx);
  // Writes the accumulated trace to the path; returns false on I/O failure.
  bool Flush();
  size_t event_count() const;

 private:
  std::string path_;
  mutable std::mutex mu_;
  ChromeTraceWriter writer_;
};

// Typed, rate-limited log of requests whose total latency crossed a
// threshold. Keeps the most recent `capacity` entries in a ring
// (entries() for tests/introspection) and emits at most one stderr line per
// second — a daemon drowning in slow requests must not also drown in log
// I/O; the suppressed count says how many lines the limiter ate.
class SlowRequestLog {
 public:
  struct Entry {
    uint64_t request_id = 0;
    double total_us = 0;
    Stage slowest_stage = Stage::kQueueWait;
    double slowest_stage_us = 0;
  };

  SlowRequestLog(double threshold_us, size_t capacity = 64);

  // Records (and maybe logs) the request if total_us >= threshold.
  void Observe(const TraceContext& ctx, double total_us);

  std::vector<Entry> entries() const;  // Oldest first.
  uint64_t observed() const;
  uint64_t suppressed_logs() const;
  double threshold_us() const { return threshold_us_; }

 private:
  const double threshold_us_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Entry> ring_;
  size_t next_ = 0;
  uint64_t observed_ = 0;
  uint64_t suppressed_ = 0;
  double last_log_us_ = -1e18;
};

}  // namespace obs
}  // namespace zeppelin

#endif  // SRC_OBS_TRACE_H_
