// Transformer model descriptions (the paper's §2.1 architecture model).
//
// A model is a stack of identical layers, each containing one causal
// self-attention module (quadratic in sequence length) and a set of "linear
// modules" (QKV/out projections, gated MLP or MoE experts, norms) whose cost
// is token-wise. The evaluation configurations (3B/7B/13B/30B dense and
// 8x550M MoE LLaMA variants, §5) are provided as presets.
#ifndef SRC_MODEL_TRANSFORMER_H_
#define SRC_MODEL_TRANSFORMER_H_

#include <cstdint>
#include <string>

namespace zeppelin {

struct TransformerConfig {
  std::string name;
  int num_layers = 0;
  int hidden_size = 0;
  int num_heads = 0;
  int num_kv_heads = 0;   // == num_heads for MHA; < num_heads for GQA.
  int ffn_hidden = 0;     // Per-expert FFN width for MoE models.
  int vocab_size = 32000;
  int dtype_bytes = 2;    // bf16 activations / weights.

  // Mixture-of-Experts. Dense models keep num_experts == 1.
  int num_experts = 1;
  int experts_per_token = 1;

  bool is_moe() const { return num_experts > 1; }
  int head_dim() const { return hidden_size / num_heads; }
  // Width of the K/V projection output (GQA-aware).
  int kv_hidden() const { return num_kv_heads * head_dim(); }

  // Total parameter count (embeddings + layers + head).
  int64_t NumParams() const;
  // Parameters in one layer.
  int64_t ParamsPerLayer() const;

  void Validate() const;

  // Value identity — two configs with equal fields cost identically (used by
  // caches keyed on the model, e.g. the PlannerService zone cache; a name
  // alone is not identity, custom configs may reuse one).
  bool operator==(const TransformerConfig&) const = default;
};

// --- Presets used in the paper's evaluation (§5) ---------------------------
TransformerConfig MakeLlama3B();
TransformerConfig MakeLlama7B();
TransformerConfig MakeLlama13B();
TransformerConfig MakeLlama30B();
TransformerConfig MakeMoe8x550M();
// Extension beyond the paper's table: a LLaMA-3-style 8B with grouped-query
// attention (8 KV heads) — GQA shrinks the KV activations ring attention
// ships by 4x, shifting every zone boundary.
TransformerConfig MakeLlama8BGqa();

// Look up a preset by short name ("3B", "7B", "13B", "30B", "8x550M",
// "8B-GQA").
TransformerConfig ModelByName(const std::string& name);

}  // namespace zeppelin

#endif  // SRC_MODEL_TRANSFORMER_H_
