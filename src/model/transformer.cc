#include "src/model/transformer.h"

#include "src/common/check.h"

namespace zeppelin {

int64_t TransformerConfig::ParamsPerLayer() const {
  const int64_t h = hidden_size;
  const int64_t kvh = kv_hidden();
  const int64_t f = ffn_hidden;
  // Attention: Q (h*h), K+V (h*kvh each), out (h*h).
  const int64_t attn = h * h + 2 * h * kvh + h * h;
  // Gated MLP (SwiGLU): three h x f matrices, per expert.
  const int64_t mlp_per_expert = 3 * h * f;
  const int64_t router = is_moe() ? h * num_experts : 0;
  return attn + mlp_per_expert * num_experts + router;
}

int64_t TransformerConfig::NumParams() const {
  const int64_t embed = static_cast<int64_t>(vocab_size) * hidden_size;
  // Tied head counted once more (separate unembedding).
  return 2 * embed + static_cast<int64_t>(num_layers) * ParamsPerLayer();
}

void TransformerConfig::Validate() const {
  ZCHECK_GT(num_layers, 0);
  ZCHECK_GT(hidden_size, 0);
  ZCHECK_GT(num_heads, 0);
  ZCHECK_GT(num_kv_heads, 0);
  ZCHECK_LE(num_kv_heads, num_heads);
  ZCHECK_EQ(hidden_size % num_heads, 0);
  ZCHECK_GT(ffn_hidden, 0);
  ZCHECK_GE(num_experts, 1);
  ZCHECK_GE(experts_per_token, 1);
  ZCHECK_LE(experts_per_token, num_experts);
}

TransformerConfig MakeLlama3B() {
  TransformerConfig c;
  c.name = "LLaMA-3B";
  c.num_layers = 26;
  c.hidden_size = 3200;
  c.num_heads = 32;
  c.num_kv_heads = 32;
  c.ffn_hidden = 8640;
  c.Validate();
  return c;
}

TransformerConfig MakeLlama7B() {
  TransformerConfig c;
  c.name = "LLaMA-7B";
  c.num_layers = 32;
  c.hidden_size = 4096;
  c.num_heads = 32;
  c.num_kv_heads = 32;
  c.ffn_hidden = 11008;
  c.Validate();
  return c;
}

TransformerConfig MakeLlama13B() {
  TransformerConfig c;
  c.name = "LLaMA-13B";
  c.num_layers = 40;
  c.hidden_size = 5120;
  c.num_heads = 40;
  c.num_kv_heads = 40;
  c.ffn_hidden = 13824;
  c.Validate();
  return c;
}

TransformerConfig MakeLlama30B() {
  TransformerConfig c;
  c.name = "LLaMA-30B";
  c.num_layers = 60;
  c.hidden_size = 6656;
  c.num_heads = 52;
  c.num_kv_heads = 52;
  c.ffn_hidden = 17920;
  c.Validate();
  return c;
}

TransformerConfig MakeMoe8x550M() {
  TransformerConfig c;
  c.name = "MoE-8x550M";
  c.num_layers = 24;
  c.hidden_size = 2048;
  c.num_heads = 16;
  c.num_kv_heads = 16;
  c.ffn_hidden = 3584;
  c.num_experts = 8;
  c.experts_per_token = 2;
  c.Validate();
  return c;
}

TransformerConfig MakeLlama8BGqa() {
  TransformerConfig c;
  c.name = "LLaMA-8B-GQA";
  c.num_layers = 32;
  c.hidden_size = 4096;
  c.num_heads = 32;
  c.num_kv_heads = 8;
  c.ffn_hidden = 14336;
  c.vocab_size = 128256;
  c.Validate();
  return c;
}

TransformerConfig ModelByName(const std::string& name) {
  if (name == "3B") {
    return MakeLlama3B();
  }
  if (name == "7B") {
    return MakeLlama7B();
  }
  if (name == "13B") {
    return MakeLlama13B();
  }
  if (name == "30B") {
    return MakeLlama30B();
  }
  if (name == "8x550M") {
    return MakeMoe8x550M();
  }
  if (name == "8B-GQA") {
    return MakeLlama8BGqa();
  }
  ZCHECK(false) << "unknown model preset: " << name;
  return {};
}

}  // namespace zeppelin
