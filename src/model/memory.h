// GPU memory model: how many tokens fit on one device.
//
// The paper's partitioning algorithms (Alg. 1/2) take a per-device token
// capacity L as input. In the paper's experiments L is set by the workload
// ("4k tokens per GPU"); this model additionally derives the *memory-feasible*
// L for a model/cluster pair, which Hybrid DP uses to decide when short
// sequences must be chunked into extra micro-batches.
#ifndef SRC_MODEL_MEMORY_H_
#define SRC_MODEL_MEMORY_H_

#include <cstdint>

#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {

struct MemoryBreakdown {
  double weights_bytes = 0;
  double optimizer_bytes = 0;   // Adam moments + fp32 master weights (ZeRO-1 sharded).
  double gradient_bytes = 0;
  double per_token_bytes = 0;   // Activations per token across all layers.
  double available_for_activations = 0;
  int64_t token_capacity = 0;
};

// Computes the activation-memory token capacity of one GPU when the model is
// replicated per rank (data parallelism) with ZeRO-1 optimizer sharding over
// `world_size` ranks.
MemoryBreakdown ComputeMemoryBreakdown(const TransformerConfig& model, const ClusterSpec& cluster,
                                       int world_size);

// Convenience: just the token capacity (0 if the model does not even fit).
int64_t TokenCapacity(const TransformerConfig& model, const ClusterSpec& cluster, int world_size);

}  // namespace zeppelin

#endif  // SRC_MODEL_MEMORY_H_
