#include "src/model/cost_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace zeppelin {

CostModel::CostModel(const TransformerConfig& model, const ClusterSpec& cluster,
                     int tensor_parallel)
    : model_(model), cluster_(cluster), tensor_parallel_(tensor_parallel) {
  model_.Validate();
  cluster_.Validate();
  ZCHECK_GE(tensor_parallel_, 1);
}

double CostModel::AttentionFlopsRect(int64_t q_tokens, int64_t kv_tokens) const {
  ZCHECK_GE(q_tokens, 0);
  ZCHECK_GE(kv_tokens, 0);
  // QK^T and PV are each 2*q*kv*(heads*head_dim) multiply-accumulates.
  const double h_eff = static_cast<double>(model_.num_heads) * model_.head_dim();
  return 4.0 * static_cast<double>(q_tokens) * static_cast<double>(kv_tokens) * h_eff;
}

double CostModel::CausalAttentionFlops(int64_t s) const {
  ZCHECK_GE(s, 0);
  // Lower triangle incl. diagonal: s*(s+1)/2 query-key pairs.
  const double pairs = 0.5 * static_cast<double>(s) * static_cast<double>(s + 1);
  const double h_eff = static_cast<double>(model_.num_heads) * model_.head_dim();
  return 4.0 * pairs * h_eff;
}

double CostModel::CausalChunkFlops(int64_t q_begin, int64_t q_end, int64_t k_begin,
                                   int64_t k_end) const {
  ZCHECK_LE(q_begin, q_end);
  ZCHECK_LE(k_begin, k_end);
  // Pairs (q, k) with q in [q_begin, q_end), k in [k_begin, k_end), k <= q,
  // in closed form. For q <= k_end - 1 the admissible count is q - k_begin + 1
  // (a ramp); beyond that it saturates at k_end - k_begin (a plateau).
  double pairs = 0;
  if (q_end > q_begin && k_end > k_begin) {
    const int64_t ramp_lo = std::max(q_begin, k_begin);
    const int64_t ramp_hi = std::min(q_end - 1, k_end - 1);
    if (ramp_hi >= ramp_lo) {
      const double n = static_cast<double>(ramp_hi - ramp_lo + 1);
      const double q_sum = 0.5 * static_cast<double>(ramp_lo + ramp_hi) * n;
      pairs += q_sum - n * static_cast<double>(k_begin - 1);
    }
    const int64_t plateau_lo = std::max(ramp_hi + 1, std::max(q_begin, k_end));
    if (plateau_lo <= q_end - 1) {
      pairs += static_cast<double>(q_end - plateau_lo) * static_cast<double>(k_end - k_begin);
    }
  }
  const double h_eff = static_cast<double>(model_.num_heads) * model_.head_dim();
  return 4.0 * pairs * h_eff;
}

double CostModel::LinearFlopsPerToken() const {
  const double h = model_.hidden_size;
  const double kvh = model_.kv_hidden();
  const double f = model_.ffn_hidden;
  // 2 FLOPs per parameter touched. Q/K/V/out projections:
  const double attn_proj = 2.0 * (h * h + 2.0 * h * kvh + h * h);
  // Gated MLP: 3 matrices per active expert.
  const double active_experts = model_.is_moe() ? model_.experts_per_token : 1;
  const double mlp = 2.0 * 3.0 * h * f * active_experts;
  const double router = model_.is_moe() ? 2.0 * h * model_.num_experts : 0.0;
  return attn_proj + mlp + router;
}

int64_t CostModel::KvBytesPerToken() const {
  return static_cast<int64_t>(2) * model_.kv_hidden() * model_.dtype_bytes;
}

int64_t CostModel::HiddenBytesPerToken() const {
  return static_cast<int64_t>(model_.hidden_size) * model_.dtype_bytes;
}

double CostModel::ComputeTime(double flops) const { return ComputeTime(flops, 1.0); }

double CostModel::ComputeTime(double flops, double speed) const {
  ZCHECK_GE(flops, 0.0);
  ZCHECK_GT(speed, 0.0);
  if (flops == 0) {
    return 0;
  }
  return flops / (cluster_.flops_per_us() * speed) + cluster_.kernel_launch_us;
}

double CostModel::CausalAttentionTime(int64_t s) const {
  return CausalAttentionTime(s, 1.0);
}

double CostModel::CausalAttentionTime(int64_t s, double speed) const {
  return ComputeTime(CausalAttentionFlops(s), speed);
}

double CostModel::LinearTime(int64_t tokens) const { return LinearTime(tokens, 1.0); }

double CostModel::LinearTime(int64_t tokens, double speed) const {
  if (tokens == 0) {
    return 0;
  }
  double time = ComputeTime(LinearFlopsPerToken() * static_cast<double>(tokens), speed);
  if (model_.is_moe()) {
    // Expert parallelism within the node: every token's hidden state is
    // dispatched to its experts and combined back, an all-to-all pair over
    // NVSwitch. (EP group = min(experts, GPUs per node); the (EP-1)/EP share
    // leaves the rank.)
    const double ep = std::min(model_.num_experts, cluster_.gpus_per_node);
    if (ep > 1) {
      const double bytes = 2.0 * model_.experts_per_token *
                           static_cast<double>(HiddenBytesPerToken()) *
                           static_cast<double>(tokens) * (ep - 1.0) / ep;
      time += bytes / cluster_.nvswitch_bandwidth;
    }
  }
  if (tensor_parallel_ > 1) {
    // Megatron TP: two activation all-reduces per layer (after attention and
    // after the MLP), each moving 2*(tp-1)/tp of the hidden state per token
    // over NVSwitch within the TP group.
    const double tp = tensor_parallel_;
    const double bytes = 2.0 * 2.0 * (tp - 1.0) / tp *
                         static_cast<double>(HiddenBytesPerToken()) *
                         static_cast<double>(tokens);
    time += bytes / cluster_.nvswitch_bandwidth;
  }
  return time;
}

double CostModel::IntraNodeTransferTime(int64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return static_cast<double>(bytes) / cluster_.nvswitch_bandwidth + cluster_.intra_latency_us;
}

double CostModel::InterNodeTransferTime(int64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return static_cast<double>(bytes) / cluster_.nic_bandwidth + cluster_.inter_latency_us;
}

}  // namespace zeppelin
