// Analytic FLOPs / bytes / time model for transformer training.
//
// This is the quantitative core behind every scheduling decision in the paper:
//  - attention scales quadratically with sequence length,
//  - linear modules scale linearly (token-wise),
//  - distributed-attention communication scales linearly (KV activations),
// so the computation-to-communication ratio of ring attention grows linearly
// with sequence length (Fig. 5). The cost model exposes exactly these curves,
// and the simulator prices every task through it.
#ifndef SRC_MODEL_COST_MODEL_H_
#define SRC_MODEL_COST_MODEL_H_

#include <cstdint>

#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {

// Multiplier applied to forward FLOPs/bytes for the backward pass. The paper's
// Fig. 12 observes "both computation and communication roughly double" in
// backward; FlashAttention backward recomputes the forward, giving ~2x.
inline constexpr double kBackwardMultiplier = 2.0;

class CostModel {
 public:
  // `tensor_parallel` > 1 models a TP group as one logical device (pair the
  // cost model with a cluster derived by ApplyTensorParallelism): compute
  // rate is already scaled in the cluster; this class adds the per-layer
  // activation all-reduce overhead TP incurs inside linear modules.
  CostModel(const TransformerConfig& model, const ClusterSpec& cluster, int tensor_parallel = 1);

  const TransformerConfig& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }

  // --- FLOPs (forward, one layer) -------------------------------------------
  // Attention between q_tokens queries and kv_tokens keys/values with no mask
  // (the full rectangle): QK^T plus PV.
  double AttentionFlopsRect(int64_t q_tokens, int64_t kv_tokens) const;
  // Causal self-attention over a contiguous sequence of `s` tokens (the lower
  // triangle including the diagonal).
  double CausalAttentionFlops(int64_t s) const;
  // Causal attention of a query chunk [q_begin, q_end) against a key chunk
  // [k_begin, k_end) of the same sequence: only pairs with k <= q count.
  double CausalChunkFlops(int64_t q_begin, int64_t q_end, int64_t k_begin, int64_t k_end) const;
  // Token-wise ("linear module") FLOPs per token for one layer: projections +
  // gated MLP (active experts only for MoE).
  double LinearFlopsPerToken() const;

  // --- Activation sizes -------------------------------------------------------
  // Bytes of K+V activations per token (what ring attention ships around).
  int64_t KvBytesPerToken() const;
  // Bytes of one hidden-state activation per token (what remapping ships).
  int64_t HiddenBytesPerToken() const;

  // --- Times (us) -------------------------------------------------------------
  // Compute time for `flops` on one GPU, including one kernel launch.
  double ComputeTime(double flops) const;
  // Attention compute time for the causal self-attention of `s` tokens.
  double CausalAttentionTime(int64_t s) const;
  // Linear-module compute time for `tokens` tokens (one layer).
  double LinearTime(int64_t tokens) const;

  // Speed-aware variants for heterogeneous fabrics: `speed` is the rank's
  // relative compute rate (1.0 = nominal, 0.5 = a straggler at half speed;
  // see FabricResources::rank_speed). Compute scales by 1/speed; kernel
  // launch overhead and communication terms do not.
  double ComputeTime(double flops, double speed) const;
  double CausalAttentionTime(int64_t s, double speed) const;
  double LinearTime(int64_t tokens, double speed) const;
  // Point-to-point transfer times for `bytes` (one hop, effective bandwidth).
  double IntraNodeTransferTime(int64_t bytes) const;
  double InterNodeTransferTime(int64_t bytes) const;

  // Inverse bandwidth costs b_intra / b_inter (us per byte) from Table 1.
  double b_intra() const { return 1.0 / cluster_.nvswitch_bandwidth; }
  double b_inter() const { return 1.0 / cluster_.nic_bandwidth; }

  int tensor_parallel() const { return tensor_parallel_; }

 private:
  TransformerConfig model_;
  ClusterSpec cluster_;
  int tensor_parallel_ = 1;
};

}  // namespace zeppelin

#endif  // SRC_MODEL_COST_MODEL_H_
