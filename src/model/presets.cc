// Memory model implementation (see src/model/memory.h).
#include <algorithm>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/model/memory.h"

namespace zeppelin {

MemoryBreakdown ComputeMemoryBreakdown(const TransformerConfig& model, const ClusterSpec& cluster,
                                       int world_size) {
  ZCHECK_GT(world_size, 0);
  MemoryBreakdown mem;
  const double params = static_cast<double>(model.NumParams());

  mem.weights_bytes = params * model.dtype_bytes;
  mem.gradient_bytes = params * model.dtype_bytes;
  // Adam: two fp32 moments + fp32 master copy = 12 bytes/param, ZeRO-1 sharded.
  mem.optimizer_bytes = params * 12.0 / world_size;

  // Activations per token with selective recomputation: the attention softmax
  // is recomputed in backward (FlashAttention), so per layer we keep the
  // layer input, QKV, attention output, and MLP intermediates. A widely used
  // approximation is ~34 * hidden bytes per token per layer at bf16 with
  // selective recompute; MoE adds the expert intermediate for active experts.
  const double h = model.hidden_size;
  const double moe_factor =
      model.is_moe() ? 1.0 + 0.5 * model.experts_per_token : 1.0;
  mem.per_token_bytes = 34.0 * h * model.num_layers * moe_factor;

  const double reserved = 4.0 * kGiB;  // CUDA context, NCCL buffers, fragmentation.
  mem.available_for_activations = cluster.gpu_memory_bytes - reserved - mem.weights_bytes -
                                  mem.gradient_bytes - mem.optimizer_bytes;
  mem.token_capacity =
      mem.available_for_activations <= 0
          ? 0
          : static_cast<int64_t>(mem.available_for_activations / mem.per_token_bytes);
  return mem;
}

int64_t TokenCapacity(const TransformerConfig& model, const ClusterSpec& cluster, int world_size) {
  return ComputeMemoryBreakdown(model, cluster, world_size).token_capacity;
}

}  // namespace zeppelin
