// Length-prefixed framing for the planner daemon protocol (docs/DAEMON.md).
//
// Every message on a daemon connection is one frame:
//
//   offset  size  field
//   0       4     magic 'Z' 'F' 'R' 'M'
//   4       1     frame type (FrameType)
//   5       3     reserved, must be zero
//   8       4     payload length (u32 LE)
//   12      n     payload (wire.h request/response encoding)
//
// The framing layer is the first thing genuinely untrusted bytes hit, so it
// follows the plan_io.h discipline: every violation maps to a typed
// FrameStatus (never a crash, never an allocation driven by unvalidated
// sizes), and the payload-length field is checked against a hard cap before
// any buffering decision is made from it. A framing error is not recoverable
// on a byte stream — the decoder cannot know where the next frame begins —
// so the decoder latches the error (poisoned()) and the daemon/client close
// the connection after sending/seeing one typed error frame.
#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace zeppelin {
namespace net {

// First bytes of every frame: 'Z' 'F' 'R' 'M'.
inline constexpr char kFrameMagic[4] = {'Z', 'F', 'R', 'M'};
inline constexpr size_t kFrameHeaderBytes = 12;

// Protocol ceiling on payload size; no endpoint may accept more regardless
// of configuration. Daemons usually run with the tighter default below.
inline constexpr uint32_t kFrameHardCap = 64u << 20;
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,   // wire.h EncodeRequest payload.
  kResponse = 2,  // wire.h EncodeResponse payload (success).
  kError = 3,     // wire.h EncodeResponse payload (typed error).
};

enum class FrameStatus : uint8_t {
  kOk = 0,        // A complete frame was extracted.
  kIncomplete,    // No error; more bytes are needed.
  kBadMagic,      // Stream does not start with the frame magic.
  kBadType,       // Unknown FrameType value.
  kBadReserved,   // Reserved header bytes are non-zero.
  kOversized,     // Declared payload exceeds the decoder's cap.
};

const char* FrameStatusName(FrameStatus status);

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

// Appends one complete frame (header + payload) to `*out`. The caller is
// responsible for keeping payloads under the peer's frame cap.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

// Incremental frame decoder over a TCP byte stream. Feed() raw bytes in any
// chunking; Next() yields complete frames until kIncomplete. Any framing
// violation poisons the decoder permanently: further Next() calls return the
// same error and further Feed() calls drop their bytes (the stream position
// is undefined after a violation, and buffering unbounded garbage would be
// its own denial-of-service vector).
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Feed(const char* data, size_t size);
  void Feed(std::string_view bytes) { Feed(bytes.data(), bytes.size()); }

  // kOk fills `*frame`; kIncomplete means feed more bytes; anything else is
  // the latched framing error.
  FrameStatus Next(Frame* frame);

  bool poisoned() const { return error_ != FrameStatus::kOk; }
  size_t buffered() const { return buffer_.size() - consumed_; }
  uint32_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Bytes of buffer_ already handed out as frames.
  FrameStatus error_ = FrameStatus::kOk;
};

}  // namespace net
}  // namespace zeppelin

#endif  // SRC_NET_FRAME_H_
