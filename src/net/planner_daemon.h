// PlannerDaemon: the hardened TCP front door of the PlannerService
// (docs/DAEMON.md).
//
// One daemon owns one PlannerService for one (model, cluster, TP) and serves
// it over the framed protocol in src/net/frame.h + src/net/wire.h. The
// design goal is robustness against untrusted clients and overload, not just
// reachability:
//
//   - *Typed rejection, never a crash.* The planner library ZCHECK-aborts on
//     contract violations, so no byte a client sends may reach it
//     unvalidated. The daemon keeps a per-session mirror of the state the
//     service tracks (the batch, the rank topology) and fully validates
//     every request — frame, structure, and semantics — before touching the
//     service; failures return a typed WireStatus and leave both the mirror
//     and the service exactly as they were (no partially-applied session
//     mutation).
//   - *Bounded admission.* At most `max_concurrent_plans` requests plan at
//     once; at most `queue_limit` more may wait. Anything beyond is shed
//     immediately with kOverloaded instead of queueing unboundedly, so
//     admitted-request latency stays bounded under any offered load.
//   - *Per-request deadlines.* A request carrying deadline_ms is dropped
//     with kDeadlineExceeded if it is still waiting for admission when the
//     deadline passes; planning never starts on an expired request.
//   - *Session hygiene.* Session keys are namespaced per connection, so
//     streams are private to the connection that opened them and can never
//     collide or be hijacked across clients. When a connection closes — EOF,
//     error, idle timeout, or daemon shutdown — every session it owns is
//     CloseSession()ed, so PlanStats::session_count cannot leak across
//     disconnects.
//   - *Graceful drain.* BeginDrain() stops accepting connections and rejects
//     new requests with kShuttingDown while letting in-flight (admitted or
//     queued) requests finish; Stop() then joins everything. The
//     zeppelin_served binary wires SIGTERM to exactly this sequence.
//
// Threading model: one acceptor thread, one reaper thread (idle-connection
// timeouts + finished-thread joining), and one reader thread per connection
// that decodes, validates, plans (gated by the admission permits), and
// replies in order. Requests on one connection therefore execute in arrival
// order — which is what makes per-connection session mirrors race-free —
// while distinct connections plan concurrently up to the admission limit.
#ifndef SRC_NET_PLANNER_DAEMON_H_
#define SRC_NET_PLANNER_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/plan_cache.h"
#include "src/core/plan_service.h"
#include "src/model/transformer.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/topology/cluster.h"
#include "src/topology/path.h"

namespace zeppelin {
namespace net {

struct DaemonOptions {
  // TCP port to listen on; 0 binds an ephemeral port (read it back with
  // port() after Start — the test/bench pattern).
  int port = 0;
  std::string bind_address = "127.0.0.1";
  // Tensor parallelism inside nodes (Trainer semantics: the served cluster
  // is ApplyTensorParallelism(cluster, tp)).
  int tensor_parallel = 1;
  // PlanServiceOptions::num_planner_threads of the owned service.
  int planner_threads = 1;
  // Admission permits: requests planning at once across all connections.
  int max_concurrent_plans = 2;
  // Bounded waiting room behind the permits; a request arriving with the
  // queue full is shed immediately (kOverloaded).
  int queue_limit = 64;
  // Frame payload cap (also the decoder cap); clamped to kFrameHardCap.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Connections idle longer than this are closed and their sessions reaped.
  // 0 disables idle reaping.
  int idle_timeout_ms = 0;
  // Accept cap; connections beyond it are closed immediately.
  int max_connections = 256;
  // Test/bench hook: hold the admission permit this long before planning,
  // simulating a slow plan so queue/deadline behavior is observable.
  int debug_plan_delay_ms = 0;
  // Content-addressed plan cache in front of the service
  // (src/core/plan_cache.h). Exact-tier hits serve without an admission
  // permit (no planning happens) and repeat byte-identically.
  bool plan_cache = true;
  size_t plan_cache_capacity = 128;
  // Near-match tier (cached family plan + delta patch). Off by default in
  // the daemon: each family holds a service session open, which shifts the
  // session_count telemetry operators watch for leaks.
  bool cache_near_match = false;
  // Refuse to serve any plan that fails VerifyPlan (kInternal instead of a
  // corrupt plan). Covers cached, fresh, and session plans.
  bool verify_before_serve = true;
  // Non-empty: drain every request's stage spans into a Chrome-trace JSON
  // file at this path (written on Stop; Perfetto-loadable). Empty disables
  // the sink; the per-stage histograms stay on either way.
  std::string trace_out;
  // > 0: requests whose total handling latency crosses this threshold enter
  // the typed, rate-limited slow-request log (obs::SlowRequestLog). 0
  // disables it.
  double slow_request_us = 0;
};

// Point-in-time snapshot of the daemon's lifetime counters (telemetry + test
// hooks). Backed by the lock-free obs::MetricsRegistry the daemon owns —
// readable at any moment, not just at shutdown; counters() and StatsJson()
// are two views of the same instruments.
struct DaemonCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;
  uint64_t requests_ok = 0;
  uint64_t shed_overload = 0;
  uint64_t shed_deadline = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t malformed_frames = 0;  // Framing violations (connection closed).
  uint64_t malformed_requests = 0;
  uint64_t bad_requests = 0;      // Semantic rejections (incl. kBadDelta).
  uint64_t sessions_reaped = 0;   // Sessions closed on disconnect/idle/drain.
  // Plan-cache telemetry (merged from the owned PlanCache at read time).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_near_matches = 0;
  uint64_t cache_evictions = 0;
  // Plans refused by verify-before-serve (cache-detected + daemon-detected).
  uint64_t verify_failures = 0;
};

class PlannerDaemon {
 public:
  PlannerDaemon(const TransformerConfig& model, const ClusterSpec& cluster,
                DaemonOptions options = {});
  ~PlannerDaemon();

  PlannerDaemon(const PlannerDaemon&) = delete;
  PlannerDaemon& operator=(const PlannerDaemon&) = delete;

  // Binds, listens, and spawns the acceptor/reaper. False (with `*error`
  // filled) if the socket setup fails; the daemon is then inert.
  bool Start(std::string* error = nullptr);

  // Stops accepting connections and rejects new requests (kShuttingDown);
  // in-flight and already-queued requests finish. Idempotent.
  void BeginDrain();

  // BeginDrain, then unblock every connection, join all threads, and close
  // all sockets (reaping their sessions). Idempotent; called by ~.
  void Stop();

  // True once Stop() has completed (or Start() was never called).
  bool stopped() const;

  // The bound port (after Start with port 0, the ephemeral port).
  int port() const { return port_; }

  // Owned service telemetry: tests assert session_count returns to baseline
  // after disconnects.
  PlannerService& service() { return *service_; }
  // The plan cache, or nullptr when options.plan_cache is false. Exposed for
  // telemetry and the poisoned-entry test hook.
  PlanCache* cache() { return cache_.get(); }
  const ClusterSpec& cluster() const { return logical_cluster_; }

  DaemonCounters counters() const;
  size_t connection_count() const;

  // The full metrics snapshot as "zeppelin.metrics.v1" JSON: daemon
  // counters, cache tiers, admission gauges, per-stage histograms. The same
  // payload kStats requests return over the wire; safe to call while the
  // daemon serves traffic.
  std::string StatsJson();
  // The slow-request log, or nullptr when options.slow_request_us is 0.
  const obs::SlowRequestLog* slow_log() const { return slow_log_.get(); }
  // The trace sink, or nullptr when options.trace_out is empty.
  const obs::TraceSink* trace_sink() const { return trace_.get(); }

 private:
  struct AdmissionGate;
  struct Connection;

  void AcceptLoop();
  void ReaperLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  // Handles one decoded frame; false closes the connection.
  bool HandleFrame(Connection& conn, const Frame& frame);
  void HandlePlan(Connection& conn, WireRequest& request,
                  std::chrono::steady_clock::time_point received);
  // Closes every session the connection owns (service + mirror).
  void ReapSessions(Connection& conn);
  bool SendResponse(Connection& conn, const WireResponse& response);
  void SendError(Connection& conn, uint64_t request_id, WireStatus status,
                 std::string message);
  // End-of-request telemetry: total + per-stage histograms, the slow-request
  // log, and the --trace_out sink.
  void ObserveRequest(const obs::TraceContext& ctx, double total_us);

  TransformerConfig model_;
  ClusterSpec logical_cluster_;
  FabricResources fabric_;
  CostModel cost_model_;
  DaemonOptions options_;
  // Declared before everything that holds instrument pointers into it.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<PlannerService> service_;
  // Declared after service_ so the cache is destroyed first (it closes its
  // near-match family sessions against the still-live service).
  std::unique_ptr<PlanCache> cache_;
  std::unique_ptr<AdmissionGate> gate_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{true};

  std::thread acceptor_;
  std::thread reaper_;
  mutable std::mutex conns_mu_;
  std::condition_variable reaper_cv_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  // Lock-free instruments (registered once at construction; incremented
  // without any lock — the shutdown-only counters_mu_ dump is gone).
  obs::Counter* c_connections_accepted_ = nullptr;
  obs::Counter* c_connections_refused_ = nullptr;
  obs::Counter* c_requests_ok_ = nullptr;
  obs::Counter* c_shed_overload_ = nullptr;
  obs::Counter* c_shed_deadline_ = nullptr;
  obs::Counter* c_rejected_shutdown_ = nullptr;
  obs::Counter* c_malformed_frames_ = nullptr;
  obs::Counter* c_malformed_requests_ = nullptr;
  obs::Counter* c_bad_requests_ = nullptr;
  obs::Counter* c_sessions_reaped_ = nullptr;
  obs::Counter* c_verify_failures_ = nullptr;  // Daemon-detected only.
  obs::Counter* c_stats_requests_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;   // Admission waiting room occupancy.
  obs::Gauge* g_active_plans_ = nullptr;  // Admission permits in use.
  obs::Gauge* g_connections_ = nullptr;
  obs::Gauge* g_sessions_ = nullptr;
  // Mirrors of the owned PlanCache's monotonic counters, refreshed at
  // snapshot time (the cache keeps its own lock-guarded truth).
  obs::Gauge* g_cache_hits_ = nullptr;
  obs::Gauge* g_cache_misses_ = nullptr;
  obs::Gauge* g_cache_near_matches_ = nullptr;
  obs::Gauge* g_cache_evictions_ = nullptr;
  obs::Gauge* g_cache_verify_failures_ = nullptr;
  std::array<obs::Histogram*, obs::kNumStages> h_stage_{};
  obs::Histogram* h_request_us_ = nullptr;

  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::SlowRequestLog> slow_log_;
};

}  // namespace net
}  // namespace zeppelin

#endif  // SRC_NET_PLANNER_DAEMON_H_
