#include "src/net/plan_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/core/plan_io.h"
#include "src/core/plan_verify.h"

namespace zeppelin {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

bool SendAll(int fd, const char* data, size_t size, Clock::time_point deadline) {
  size_t sent = 0;
  while (sent < size) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      return false;  // Timed out.
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

int RetryBackoffMs(int attempt, const PlanClientOptions& options) {
  // Saturating shift: once initial << attempt would pass the cap, stop
  // shifting instead of overflowing.
  int64_t backoff = options.backoff_initial_ms > 0 ? options.backoff_initial_ms : 1;
  for (int i = 0; i < attempt && backoff < options.backoff_max_ms; ++i) {
    backoff <<= 1;
  }
  if (backoff > options.backoff_max_ms) backoff = options.backoff_max_ms;
  return static_cast<int>(backoff);
}

PlanClient::PlanClient(std::string host, int port, PlanClientOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

PlanClient::~PlanClient() { Close(); }

void PlanClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool PlanClient::Connect(std::string* error) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Non-blocking connect so the timeout is ours, not the kernel's.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address: " + host_;
    ::close(fd);
    return false;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
    if (ready <= 0) {
      if (error) *error = "connect timeout to " + host_;
      ::close(fd);
      return false;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    rc = so_error == 0 ? 0 : -1;
    errno = so_error;
  }
  if (rc < 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;  // Left non-blocking; all I/O polls first.
  return true;
}

PlanClientResult PlanClient::Attempt(const WireRequest& request) {
  PlanClientResult result;
  std::string error;
  if (fd_ < 0 && !Connect(&error)) {
    result.status = WireStatus::kTransport;
    result.message = error;
    return result;
  }
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options_.request_timeout_ms);

  std::string out;
  AppendRequestFrame(request, &out);
  if (!SendAll(fd_, out.data(), out.size(), deadline)) {
    Close();
    result.status = WireStatus::kTransport;
    result.message = "send failed or timed out";
    return result;
  }

  FrameDecoder decoder(options_.max_frame_bytes);
  Frame frame;
  char buf[16384];
  for (;;) {
    const FrameStatus status = decoder.Next(&frame);
    if (status == FrameStatus::kOk) {
      break;
    }
    if (status != FrameStatus::kIncomplete) {
      Close();
      result.status = WireStatus::kTransport;
      result.message = std::string("response framing: ") + FrameStatusName(status);
      return result;
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      Close();
      result.status = WireStatus::kTransport;
      result.message = "request timed out awaiting response";
      return result;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      Close();
      result.status = WireStatus::kTransport;
      result.message = std::string("poll: ") + std::strerror(errno);
      return result;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      result.status = WireStatus::kTransport;
      result.message = "connection closed by daemon";
      return result;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Close();
      result.status = WireStatus::kTransport;
      result.message = std::string("recv: ") + std::strerror(errno);
      return result;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
  }

  WireResponse response;
  std::string parse_error;
  const WireStatus parsed =
      ParseResponse(frame.type, frame.payload, &response, &parse_error);
  result.rtt_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  if (parsed != WireStatus::kOk) {
    Close();
    result.status = WireStatus::kTransport;
    result.message = "response parse: " + parse_error;
    return result;
  }
  // Error frames may carry id 0 when the daemon could not decode the request
  // far enough to learn its id (framing violations); those are addressed to
  // whatever was in flight — us. Anything else mismatched means the stream
  // is out of sync, and the only safe recovery is a fresh connection.
  const bool wildcard_error =
      frame.type == FrameType::kError && response.request_id == 0;
  if (response.request_id != request.request_id && !wildcard_error) {
    Close();
    result.status = WireStatus::kTransport;
    result.message = "response id mismatch";
    return result;
  }
  result.status = response.status;
  result.message = std::move(response.message);
  result.stats = response.stats;
  result.queue_wait_us = response.queue_wait_us;
  result.digest = response.digest;
  result.plan_bytes = std::move(response.plan_bytes);
  result.stats_json = std::move(response.stats_json);
  if (result.status == WireStatus::kOk && !result.plan_bytes.empty()) {
    auto plan = std::make_shared<PartitionPlan>();
    const PlanIoResult io =
        ParsePlan(result.plan_bytes, plan.get(), options_.max_world);
    if (!io.ok()) {
      result.status = WireStatus::kPlanRejected;
      result.message = "plan bytes rejected: " + io.message;
      return result;
    }
    if (options_.verify_plans && request.kind == RequestKind::kPlan) {
      PlanVerifyOptions vopts;
      vopts.token_capacity = 0;
      vopts.eps = -1;
      vopts.world = options_.max_world;
      const PlanVerifyResult verdict =
          VerifyPlan(*plan, &request.batch, nullptr, vopts);
      if (!verdict.ok()) {
        result.status = WireStatus::kPlanRejected;
        result.message = std::string("plan failed certification: ") +
                         PlanVerifyStatusName(verdict.status) +
                         (verdict.message.empty() ? "" : ": " + verdict.message);
        return result;
      }
    }
    result.plan = std::move(plan);
  }
  return result;
}

PlanClientResult PlanClient::Roundtrip(WireRequest request) {
  request.request_id = next_request_id_++;
  // Idempotency rule: a session *plan* mutates daemon state exactly once, so
  // it must never be blind-resent. Everything else is safe to retry.
  const bool retryable =
      request.kind != RequestKind::kPlan || request.stream_id.empty();
  PlanClientResult result;
  int attempts = 0;
  for (int attempt = 0;; ++attempt) {
    ++attempts;
    result = Attempt(request);
    result.attempts = attempts;
    const bool transient = result.status == WireStatus::kTransport ||
                           result.status == WireStatus::kOverloaded;
    if (!transient || !retryable || attempt >= options_.max_retries) {
      return result;
    }
    Close();
    options_.sleep_ms(RetryBackoffMs(attempt, options_));
  }
}

PlanClientResult PlanClient::Plan(WireRequest request) {
  request.kind = RequestKind::kPlan;
  return Roundtrip(std::move(request));
}

PlanClientResult PlanClient::Ping() {
  WireRequest request;
  request.kind = RequestKind::kPing;
  return Roundtrip(std::move(request));
}

PlanClientResult PlanClient::Stats() {
  WireRequest request;
  request.kind = RequestKind::kStats;
  return Roundtrip(std::move(request));
}

PlanClientResult PlanClient::CloseSession(const std::string& stream_id) {
  WireRequest request;
  request.kind = RequestKind::kCloseSession;
  request.stream_id = stream_id;
  return Roundtrip(std::move(request));
}

}  // namespace net
}  // namespace zeppelin
