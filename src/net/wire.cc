#include "src/net/wire.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace zeppelin {
namespace net {
namespace {

// Little-endian fixed-width writers (the plan_io.cc idiom: the format is
// defined byte-wise and never relies on host layout).
void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) { PutU64(out, std::bit_cast<uint64_t>(v)); }

// Cursor-based reader; every Get* checks remaining length first, so a
// truncated or lying payload can never read past the end.
struct Reader {
  const unsigned char* data;
  size_t size;
  size_t pos = 0;

  bool Have(size_t n) const { return size - pos >= n; }
  uint8_t GetU8() { return data[pos++]; }
  uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double GetF64() { return std::bit_cast<double>(GetU64()); }
};

// Largest value accepted for any token count crossing the wire; keeps every
// downstream int64 sum far from overflow (kMaxWireSeqs * this < 2^63).
constexpr uint64_t kMaxWireTokens = uint64_t{1} << 56;
constexpr uint32_t kMaxMessageBytes = 4096;

constexpr uint8_t kOptHierarchical = 1u << 0;
constexpr uint8_t kOptZoneAware = 1u << 1;
constexpr uint8_t kOptFastPath = 1u << 2;
constexpr uint8_t kOptSharedPool = 1u << 3;
constexpr uint8_t kOptKnownMask =
    kOptHierarchical | kOptZoneAware | kOptFastPath | kOptSharedPool;

WireStatus Malformed(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = what;
  }
  return WireStatus::kMalformedRequest;
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kMalformedFrame:
      return "malformed-frame";
    case WireStatus::kOversizedFrame:
      return "oversized-frame";
    case WireStatus::kMalformedRequest:
      return "malformed-request";
    case WireStatus::kBadRequest:
      return "bad-request";
    case WireStatus::kBadDelta:
      return "bad-delta";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case WireStatus::kShuttingDown:
      return "shutting-down";
    case WireStatus::kPlanRejected:
      return "plan-rejected";
    case WireStatus::kTransport:
      return "transport";
    case WireStatus::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  out.reserve(64 + request.stream_id.size() + 8 * request.batch.seq_lens.size());
  PutU32(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(request.kind));
  PutU64(&out, request.request_id);
  PutU32(&out, request.deadline_ms);
  PutU32(&out, static_cast<uint32_t>(request.stream_id.size()));
  out.append(request.stream_id);

  uint8_t flags = 0;
  if (request.options.hierarchical_partitioning) flags |= kOptHierarchical;
  if (request.options.zone_aware_thresholds) flags |= kOptZoneAware;
  if (request.options.planner_fast_path) flags |= kOptFastPath;
  if (request.options.use_shared_pool) flags |= kOptSharedPool;
  PutU8(&out, flags);
  PutU64(&out, static_cast<uint64_t>(request.options.token_capacity));
  PutF64(&out, request.options.delta_replan_threshold);

  PutU32(&out, static_cast<uint32_t>(request.batch.seq_lens.size()));
  for (int64_t len : request.batch.seq_lens) {
    PutU64(&out, static_cast<uint64_t>(len));
  }

  PutU8(&out, request.delta.has_value() ? 1 : 0);
  if (request.delta.has_value()) {
    const BatchDelta& d = *request.delta;
    PutU32(&out, static_cast<uint32_t>(d.removed.size()));
    for (int slot : d.removed) {
      PutU32(&out, static_cast<uint32_t>(slot));
    }
    PutU32(&out, static_cast<uint32_t>(d.resized.size()));
    for (const auto& [slot, len] : d.resized) {
      PutU32(&out, static_cast<uint32_t>(slot));
      PutU64(&out, static_cast<uint64_t>(len));
    }
    PutU32(&out, static_cast<uint32_t>(d.added.size()));
    for (int64_t len : d.added) {
      PutU64(&out, static_cast<uint64_t>(len));
    }
  }

  PutU8(&out, request.topology.has_value() ? 1 : 0);
  if (request.topology.has_value()) {
    const TopologyDelta& t = *request.topology;
    PutU32(&out, static_cast<uint32_t>(t.removed_ranks.size()));
    for (int rank : t.removed_ranks) {
      PutU32(&out, static_cast<uint32_t>(rank));
    }
    PutU32(&out, static_cast<uint32_t>(t.added_ranks.size()));
    for (int rank : t.added_ranks) {
      PutU32(&out, static_cast<uint32_t>(rank));
    }
    PutU32(&out, static_cast<uint32_t>(t.speed_factors.size()));
    for (const auto& [rank, factor] : t.speed_factors) {
      PutU32(&out, static_cast<uint32_t>(rank));
      PutF64(&out, factor);
    }
  }
  return out;
}

WireStatus ParseRequest(std::string_view payload, WireRequest* request,
                        std::string* error) {
  *request = WireRequest{};
  Reader in{reinterpret_cast<const unsigned char*>(payload.data()), payload.size()};

  if (!in.Have(4 + 1 + 8 + 4 + 4)) {
    return Malformed(error, "request truncated before the fixed header");
  }
  const uint32_t version = in.GetU32();
  if (version < kMinWireVersion || version > kWireVersion) {
    return Malformed(error, "unknown request version");
  }
  const uint8_t kind = in.GetU8();
  if (kind != static_cast<uint8_t>(RequestKind::kPlan) &&
      kind != static_cast<uint8_t>(RequestKind::kCloseSession) &&
      kind != static_cast<uint8_t>(RequestKind::kPing) &&
      kind != static_cast<uint8_t>(RequestKind::kStats)) {
    return Malformed(error, "unknown request kind");
  }
  if (kind == static_cast<uint8_t>(RequestKind::kStats) && version < 3) {
    return Malformed(error, "stats requests require wire v3");
  }
  request->kind = static_cast<RequestKind>(kind);
  request->request_id = in.GetU64();
  request->deadline_ms = in.GetU32();

  const uint32_t id_len = in.GetU32();
  if (id_len > kMaxStreamIdBytes) {
    return Malformed(error, "stream id too long");
  }
  if (!in.Have(id_len)) {
    return Malformed(error, "request truncated inside the stream id");
  }
  request->stream_id.assign(reinterpret_cast<const char*>(in.data) + in.pos, id_len);
  in.pos += id_len;

  if (!in.Have(1 + 8 + 8)) {
    return Malformed(error, "request truncated before the options");
  }
  const uint8_t flags = in.GetU8();
  if ((flags & ~kOptKnownMask) != 0) {
    return Malformed(error, "unknown option flag bits");
  }
  request->options.hierarchical_partitioning = (flags & kOptHierarchical) != 0;
  request->options.zone_aware_thresholds = (flags & kOptZoneAware) != 0;
  request->options.planner_fast_path = (flags & kOptFastPath) != 0;
  request->options.use_shared_pool = (flags & kOptSharedPool) != 0;
  const uint64_t capacity = in.GetU64();
  // Tighter than the response-side cap: a *requested* per-device capacity
  // above the max sequence length is meaningless and would let capacity
  // products overflow downstream.
  if (capacity > static_cast<uint64_t>(kMaxWireSeqLen)) {
    return Malformed(error, "token capacity out of range");
  }
  request->options.token_capacity = static_cast<int64_t>(capacity);
  request->options.delta_replan_threshold = in.GetF64();

  if (!in.Have(4)) {
    return Malformed(error, "request truncated before the batch");
  }
  const uint32_t num_seqs = in.GetU32();
  if (num_seqs > kMaxWireSeqs) {
    return Malformed(error, "batch sequence count out of range");
  }
  if (!in.Have(size_t{num_seqs} * 8)) {
    return Malformed(error, "request truncated inside the batch");
  }
  request->batch.seq_lens.reserve(num_seqs);
  for (uint32_t i = 0; i < num_seqs; ++i) {
    const uint64_t len = in.GetU64();
    if (len > static_cast<uint64_t>(kMaxWireSeqLen)) {
      return Malformed(error, "sequence length out of range");
    }
    request->batch.seq_lens.push_back(static_cast<int64_t>(len));
  }

  if (!in.Have(1)) {
    return Malformed(error, "request truncated before the delta marker");
  }
  const uint8_t has_delta = in.GetU8();
  if (has_delta > 1) {
    return Malformed(error, "bad delta marker");
  }
  if (has_delta == 1) {
    BatchDelta delta;
    if (!in.Have(4)) {
      return Malformed(error, "request truncated inside the delta");
    }
    const uint32_t removed_n = in.GetU32();
    if (removed_n > kMaxWireDeltaEntries || !in.Have(size_t{removed_n} * 4)) {
      return Malformed(error, "delta removed section out of range");
    }
    delta.removed.reserve(removed_n);
    for (uint32_t i = 0; i < removed_n; ++i) {
      const uint32_t slot = in.GetU32();
      if (slot > static_cast<uint32_t>(INT32_MAX)) {
        return Malformed(error, "delta slot out of range");
      }
      delta.removed.push_back(static_cast<int>(slot));
    }
    if (!in.Have(4)) {
      return Malformed(error, "request truncated inside the delta");
    }
    const uint32_t resized_n = in.GetU32();
    if (resized_n > kMaxWireDeltaEntries || !in.Have(size_t{resized_n} * 12)) {
      return Malformed(error, "delta resized section out of range");
    }
    delta.resized.reserve(resized_n);
    for (uint32_t i = 0; i < resized_n; ++i) {
      const uint32_t slot = in.GetU32();
      const uint64_t len = in.GetU64();
      if (slot > static_cast<uint32_t>(INT32_MAX) ||
          len > static_cast<uint64_t>(kMaxWireSeqLen)) {
        return Malformed(error, "delta resize entry out of range");
      }
      delta.resized.emplace_back(static_cast<int>(slot), static_cast<int64_t>(len));
    }
    if (!in.Have(4)) {
      return Malformed(error, "request truncated inside the delta");
    }
    const uint32_t added_n = in.GetU32();
    if (added_n > kMaxWireDeltaEntries || !in.Have(size_t{added_n} * 8)) {
      return Malformed(error, "delta added section out of range");
    }
    delta.added.reserve(added_n);
    for (uint32_t i = 0; i < added_n; ++i) {
      const uint64_t len = in.GetU64();
      if (len > static_cast<uint64_t>(kMaxWireSeqLen)) {
        return Malformed(error, "delta added length out of range");
      }
      delta.added.push_back(static_cast<int64_t>(len));
    }
    request->delta = std::move(delta);
  }

  if (!in.Have(1)) {
    return Malformed(error, "request truncated before the topology marker");
  }
  const uint8_t has_topology = in.GetU8();
  if (has_topology > 1) {
    return Malformed(error, "bad topology marker");
  }
  if (has_topology == 1) {
    TopologyDelta topo;
    auto read_ranks = [&](std::vector<int>* out) {
      if (!in.Have(4)) {
        return false;
      }
      const uint32_t n = in.GetU32();
      if (n > kMaxWireTopoEntries || !in.Have(size_t{n} * 4)) {
        return false;
      }
      out->reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t rank = in.GetU32();
        if (rank > static_cast<uint32_t>(INT32_MAX)) {
          return false;
        }
        out->push_back(static_cast<int>(rank));
      }
      return true;
    };
    if (!read_ranks(&topo.removed_ranks) || !read_ranks(&topo.added_ranks)) {
      return Malformed(error, "topology rank section out of range");
    }
    if (!in.Have(4)) {
      return Malformed(error, "request truncated inside the topology");
    }
    const uint32_t speeds_n = in.GetU32();
    if (speeds_n > kMaxWireTopoEntries || !in.Have(size_t{speeds_n} * 12)) {
      return Malformed(error, "topology speed section out of range");
    }
    topo.speed_factors.reserve(speeds_n);
    for (uint32_t i = 0; i < speeds_n; ++i) {
      const uint32_t rank = in.GetU32();
      if (rank > static_cast<uint32_t>(INT32_MAX)) {
        return Malformed(error, "topology speed rank out of range");
      }
      topo.speed_factors.emplace_back(static_cast<int>(rank), in.GetF64());
    }
    request->topology = std::move(topo);
  }

  if (in.pos != in.size) {
    return Malformed(error, "trailing bytes after the request");
  }
  return WireStatus::kOk;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  out.reserve(96 + response.message.size() + response.plan_bytes.size());
  PutU32(&out, kWireVersion);
  PutU64(&out, response.request_id);
  PutU8(&out, static_cast<uint8_t>(response.status));
  const uint32_t msg_len = static_cast<uint32_t>(
      std::min<size_t>(response.message.size(), kMaxMessageBytes));
  PutU32(&out, msg_len);
  out.append(response.message.data(), msg_len);
  if (response.status != WireStatus::kOk) {
    return out;
  }
  PutU8(&out, static_cast<uint8_t>(response.stats.engine));
  PutF64(&out, response.stats.partition_time_us);
  PutF64(&out, response.stats.materialize_time_us);
  PutU8(&out, static_cast<uint8_t>(response.stats.delta_outcome));
  PutU64(&out, static_cast<uint64_t>(response.stats.token_capacity));
  PutU64(&out, response.stats.session_count);
  // v2: cache disposition + certification marker. The cumulative cache
  // counters deliberately stay off the wire — repeated identical requests
  // must yield byte-identical responses (the cache-hit contract).
  PutU8(&out, static_cast<uint8_t>(response.stats.cache_outcome));
  PutU8(&out, response.stats.verified ? 1 : 0);
  PutF64(&out, response.queue_wait_us);
  PutU64(&out, response.digest);
  PutU64(&out, response.plan_bytes.size());
  out.append(response.plan_bytes);
  // v3: the per-stage latency block (bounds-checked on parse exactly like
  // cache_outcome) and the stats-JSON section (kStats responses only).
  PutU8(&out, static_cast<uint8_t>(obs::kNumStages));
  for (double stage : response.stats.stage_us) {
    PutF64(&out, stage);
  }
  const uint32_t stats_len = static_cast<uint32_t>(
      std::min<size_t>(response.stats_json.size(), kMaxWireStatsJsonBytes));
  PutU32(&out, stats_len);
  out.append(response.stats_json.data(), stats_len);
  return out;
}

void AppendRequestFrame(const WireRequest& request, std::string* out) {
  AppendFrame(FrameType::kRequest, EncodeRequest(request), out);
}

void AppendResponseFrame(const WireResponse& response, std::string* out) {
  AppendFrame(response.status == WireStatus::kOk ? FrameType::kResponse : FrameType::kError,
              EncodeResponse(response), out);
}

WireStatus ParseResponse(FrameType type, std::string_view payload,
                         WireResponse* response, std::string* error) {
  *response = WireResponse{};
  Reader in{reinterpret_cast<const unsigned char*>(payload.data()), payload.size()};
  if (!in.Have(4 + 8 + 1 + 4)) {
    return Malformed(error, "response truncated before the fixed header");
  }
  const uint32_t version = in.GetU32();
  if (version < kMinWireVersion || version > kWireVersion) {
    return Malformed(error, "unknown response version");
  }
  response->request_id = in.GetU64();
  const uint8_t status = in.GetU8();
  if (status > static_cast<uint8_t>(WireStatus::kInternal)) {
    return Malformed(error, "unknown response status");
  }
  response->status = static_cast<WireStatus>(status);
  const uint32_t msg_len = in.GetU32();
  if (msg_len > kMaxMessageBytes || !in.Have(msg_len)) {
    return Malformed(error, "response truncated inside the message");
  }
  response->message.assign(reinterpret_cast<const char*>(in.data) + in.pos, msg_len);
  in.pos += msg_len;

  // Error responses carry a success marker mismatch: kOk on the frame type
  // kError (or vice versa) is a protocol violation the caller detects.
  const bool is_error_frame = type == FrameType::kError;
  if (is_error_frame != (response->status != WireStatus::kOk)) {
    return Malformed(error, "frame type disagrees with the response status");
  }
  if (response->status != WireStatus::kOk) {
    if (in.pos != in.size) {
      return Malformed(error, "trailing bytes after the error response");
    }
    return WireStatus::kOk;
  }

  if (!in.Have(1 + 8 + 8 + 1 + 8 + 8 + 1 + 1 + 8 + 8 + 8)) {
    return Malformed(error, "response truncated inside the stats");
  }
  const uint8_t engine = in.GetU8();
  if (engine > static_cast<uint8_t>(PlanEngine::kAdopted)) {
    return Malformed(error, "unknown plan engine");
  }
  response->stats.engine = static_cast<PlanEngine>(engine);
  response->stats.partition_time_us = in.GetF64();
  response->stats.materialize_time_us = in.GetF64();
  const uint8_t outcome = in.GetU8();
  if (outcome > static_cast<uint8_t>(DeltaOutcome::kRebasedMigration)) {
    return Malformed(error, "unknown delta outcome");
  }
  response->stats.delta_outcome = static_cast<DeltaOutcome>(outcome);
  const uint64_t capacity = in.GetU64();
  if (capacity > kMaxWireTokens) {
    return Malformed(error, "token capacity out of range");
  }
  response->stats.token_capacity = static_cast<int64_t>(capacity);
  response->stats.session_count = in.GetU64();
  const uint8_t cache_outcome = in.GetU8();
  if (cache_outcome > static_cast<uint8_t>(CacheOutcome::kNearMatch)) {
    return Malformed(error, "unknown cache outcome");
  }
  response->stats.cache_outcome = static_cast<CacheOutcome>(cache_outcome);
  const uint8_t verified = in.GetU8();
  if (verified > 1) {
    return Malformed(error, "bad verified marker");
  }
  response->stats.verified = verified == 1;
  response->queue_wait_us = in.GetF64();
  response->digest = in.GetU64();
  const uint64_t plan_len = in.GetU64();
  if (!in.Have(plan_len)) {
    return Malformed(error, "response truncated inside the plan bytes");
  }
  response->plan_bytes.assign(reinterpret_cast<const char*>(in.data) + in.pos,
                              static_cast<size_t>(plan_len));
  in.pos += static_cast<size_t>(plan_len);

  if (version >= 3) {
    // v3 stage block: bounds-checked like cache_outcome — a count over the
    // cap or a non-finite/negative latency is a malformed response, never a
    // silently-poisoned stat. Stages beyond obs::kNumStages (a future
    // daemon) are validated and dropped.
    if (!in.Have(1)) {
      return Malformed(error, "response truncated before the stage block");
    }
    const uint8_t stage_count = in.GetU8();
    if (stage_count > kMaxWireStages) {
      return Malformed(error, "stage count out of range");
    }
    if (!in.Have(size_t{stage_count} * 8)) {
      return Malformed(error, "response truncated inside the stage block");
    }
    for (uint8_t i = 0; i < stage_count; ++i) {
      const double stage_us = in.GetF64();
      if (!std::isfinite(stage_us) || stage_us < 0) {
        return Malformed(error, "stage latency out of range");
      }
      if (i < static_cast<uint8_t>(obs::kNumStages)) {
        response->stats.stage_us[i] = stage_us;
      }
    }
    if (!in.Have(4)) {
      return Malformed(error, "response truncated before the stats json");
    }
    const uint32_t stats_len = in.GetU32();
    if (stats_len > kMaxWireStatsJsonBytes || !in.Have(stats_len)) {
      return Malformed(error, "stats json section out of range");
    }
    response->stats_json.assign(reinterpret_cast<const char*>(in.data) + in.pos,
                                stats_len);
    in.pos += stats_len;
  }

  if (in.pos != in.size) {
    return Malformed(error, "trailing bytes after the response");
  }
  return WireStatus::kOk;
}

}  // namespace net
}  // namespace zeppelin
