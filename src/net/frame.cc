#include "src/net/frame.h"

#include <algorithm>
#include <cstring>

namespace zeppelin {
namespace net {

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kIncomplete:
      return "incomplete";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kBadType:
      return "bad-type";
    case FrameStatus::kBadReserved:
      return "bad-reserved";
    case FrameStatus::kOversized:
      return "oversized";
  }
  return "unknown";
}

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  out->append(kFrameMagic, 4);
  out->push_back(static_cast<char>(type));
  out->append(3, '\0');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  out->append(payload.data(), payload.size());
}

FrameDecoder::FrameDecoder(uint32_t max_frame_bytes)
    : max_frame_bytes_(std::min(max_frame_bytes, kFrameHardCap)) {}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (poisoned()) {
    return;
  }
  // Compact before growing: consumed bytes are dead weight, and dropping
  // them keeps the buffer bounded by (header + one frame cap + one read).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameStatus FrameDecoder::Next(Frame* frame) {
  if (poisoned()) {
    return error_;
  }
  const size_t available = buffer_.size() - consumed_;
  // Validate the header prefix as soon as its bytes exist — a bad magic or
  // type is reportable before the full header arrives.
  const unsigned char* head =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const size_t magic_have = std::min<size_t>(available, 4);
  if (std::memcmp(head, kFrameMagic, magic_have) != 0) {
    return error_ = FrameStatus::kBadMagic;
  }
  if (available < kFrameHeaderBytes) {
    return FrameStatus::kIncomplete;
  }
  const uint8_t type = head[4];
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse) &&
      type != static_cast<uint8_t>(FrameType::kError)) {
    return error_ = FrameStatus::kBadType;
  }
  if (head[5] != 0 || head[6] != 0 || head[7] != 0) {
    return error_ = FrameStatus::kBadReserved;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(head[8 + i]) << (8 * i);
  }
  // The length field is attacker-controlled: cap it before it can drive any
  // buffering or allocation decision.
  if (payload_len > max_frame_bytes_) {
    return error_ = FrameStatus::kOversized;
  }
  if (available < kFrameHeaderBytes + payload_len) {
    return FrameStatus::kIncomplete;
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return FrameStatus::kOk;
}

}  // namespace net
}  // namespace zeppelin
