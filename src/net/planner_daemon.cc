#include "src/net/planner_daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/core/plan_io.h"
#include "src/core/plan_verify.h"

namespace zeppelin {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::string SessionKey(uint64_t conn_id, const std::string& stream_id) {
  return "c" + std::to_string(conn_id) + "/" + stream_id;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// Bounded two-stage admission: `permits` requests plan concurrently, at most
// `queue_limit` more wait behind them, everything else is shed immediately.
// Waiters honor their request deadline — a queued request whose deadline
// passes is dropped without ever starting to plan.
struct PlannerDaemon::AdmissionGate {
  enum class Result { kAdmitted, kOverloaded, kDeadline, kShutdown };

  // The two gauges mirror `active`/`waiting` so the admission state is
  // visible in every metrics snapshot; they are updated under `mu` at each
  // transition, so the mirrored levels can never drift from the truth.
  AdmissionGate(int permits_in, int queue_limit_in, obs::Gauge* active_gauge,
                obs::Gauge* waiting_gauge)
      : permits(std::max(1, permits_in)),
        queue_limit(std::max(0, queue_limit_in)),
        g_active(active_gauge),
        g_waiting(waiting_gauge) {}

  void Admit() {
    ++active;
    g_active->Add(1);
  }
  void StartWaiting() {
    ++waiting;
    g_waiting->Add(1);
  }
  void StopWaiting() {
    --waiting;
    g_waiting->Sub(1);
  }

  Result Acquire(Clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu);
    if (shutdown) {
      return Result::kShutdown;
    }
    if (active < permits) {
      Admit();
      return Result::kAdmitted;
    }
    if (waiting >= queue_limit) {
      return Result::kOverloaded;
    }
    StartWaiting();
    while (true) {
      if (deadline == Clock::time_point::max()) {
        cv.wait(lock);
      } else if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One last chance: a permit freed in the same instant still wins.
        if (!shutdown && active < permits) {
          StopWaiting();
          Admit();
          return Result::kAdmitted;
        }
        StopWaiting();
        return shutdown ? Result::kShutdown : Result::kDeadline;
      }
      if (shutdown) {
        StopWaiting();
        return Result::kShutdown;
      }
      if (active < permits) {
        StopWaiting();
        Admit();
        return Result::kAdmitted;
      }
    }
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active;
      g_active->Sub(1);
    }
    cv.notify_one();
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    cv.notify_all();
  }

  std::mutex mu;
  std::condition_variable cv;
  int active = 0;
  int waiting = 0;
  const int permits;
  const int queue_limit;
  obs::Gauge* const g_active;
  obs::Gauge* const g_waiting;
  bool shutdown = false;
};

// One client connection. Owned jointly by the connection map and the reader
// thread; `sessions` (the per-stream mirrors) is touched only by the reader
// thread, so it needs no lock.
struct PlannerDaemon::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::thread thread;
  std::mutex write_mu;
  std::atomic<int64_t> last_active_us{0};
  std::atomic<bool> done{false};

  // The daemon-side mirror of a session's service state: the batch the
  // service tracks and the fabric topology it has folded in. Every delta in
  // an incoming request is validated against this mirror *before* the
  // service sees it — the service ZCHECK-aborts on contract violations, so
  // nothing unvalidated may cross that line — and the mirror advances only
  // after the service call returns, keeping the two in lockstep.
  struct SessionMirror {
    Batch batch;
    RankTopology topo;
    bool has_base = false;
  };
  std::unordered_map<std::string, SessionMirror> sessions;
};

namespace {

// Semantic validation of a structurally-valid plan request against the
// daemon's cluster and the session mirror (`prev_batch`/`prev_topo` null for
// stateless requests or first contact). Returns kOk, kBadRequest, or
// kBadDelta; on failure nothing may be applied anywhere. Mirrors every
// ZCHECK precondition reachable from PlannerService::Plan (docs/DAEMON.md,
// "Request validation").
WireStatus ValidatePlan(const WireRequest& request, const Batch* prev_batch,
                        const RankTopology* prev_topo, const ClusterSpec& spec,
                        std::string* why) {
  const int world = spec.world_size();
  const Batch& batch = request.batch;
  if (batch.size() == 0) {
    *why = "empty batch";
    return WireStatus::kBadRequest;
  }
  int64_t total = 0;
  for (int64_t len : batch.seq_lens) {
    total += len;  // Each term <= kMaxWireSeqLen (parse), so no overflow
    if (total > kMaxWireTotalTokens) {  // before this cap trips.
      *why = "batch exceeds the total-token cap";
      return WireStatus::kBadRequest;
    }
  }
  if (total == 0) {
    *why = "batch has no tokens (all sequences empty)";
    return WireStatus::kBadRequest;
  }
  const double threshold = request.options.delta_replan_threshold;
  if (!std::isfinite(threshold) || threshold < 0) {
    *why = "delta_replan_threshold must be finite and non-negative";
    return WireStatus::kBadRequest;
  }
  if (request.options.token_capacity > 0) {
    // The partitioner requires total <= world * L; reject infeasible
    // explicit capacities instead of letting the planner abort.
    const int64_t needed = (total + world - 1) / world;
    if (request.options.token_capacity < needed) {
      *why = "token_capacity below ceil(total_tokens / world)";
      return WireStatus::kBadRequest;
    }
  }

  const bool is_session = !request.stream_id.empty();
  if (!is_session) {
    if (request.delta.has_value() || request.topology.has_value()) {
      *why = "batch/topology deltas require a session (non-empty stream id)";
      return WireStatus::kBadRequest;
    }
    return WireStatus::kOk;
  }
  if (!request.options.hierarchical_partitioning || !request.options.planner_fast_path) {
    *why = "sessions require hierarchical fast-path planning";
    return WireStatus::kBadRequest;
  }

  // Topology delta: liveness preconditions against the mirrored fabric
  // state (fresh = all alive), plus a floor of one surviving rank.
  if (request.topology.has_value()) {
    const TopologyDelta& topo = *request.topology;
    std::vector<uint8_t> alive;
    if (prev_topo != nullptr && prev_topo->world() == world) {
      alive = prev_topo->alive;
    } else {
      alive.assign(world, 1);
    }
    int alive_count = 0;
    for (uint8_t a : alive) {
      alive_count += a;
    }
    std::vector<uint8_t> touched(world, 0);
    for (int rank : topo.removed_ranks) {
      if (rank < 0 || rank >= world || !alive[rank] || touched[rank]) {
        *why = "topology removes an out-of-range, dead, or repeated rank";
        return WireStatus::kBadDelta;
      }
      touched[rank] = 1;
      alive[rank] = 0;
      --alive_count;
    }
    for (int rank : topo.added_ranks) {
      if (rank < 0 || rank >= world || alive[rank] || touched[rank]) {
        *why = "topology restores an out-of-range, alive, or repeated rank";
        return WireStatus::kBadDelta;
      }
      touched[rank] = 1;
      alive[rank] = 1;
      ++alive_count;
    }
    for (const auto& [rank, factor] : topo.speed_factors) {
      if (rank < 0 || rank >= world || !std::isfinite(factor) || factor <= 0) {
        *why = "topology speed factor out of range";
        return WireStatus::kBadDelta;
      }
    }
    if (alive_count < 1) {
      *why = "topology would leave no alive ranks";
      return WireStatus::kBadDelta;
    }
  }

  // Batch delta: slot validity against the mirrored batch, then the
  // PlanRequest contract — applying the delta to the previous batch must
  // reproduce the request batch exactly. Only checked when the service will
  // actually consume the delta (it rebases from scratch on first contact).
  if (prev_batch != nullptr && request.delta.has_value()) {
    const BatchDelta& delta = *request.delta;
    const int prev_size = prev_batch->size();
    std::vector<uint8_t> seen(prev_size, 0);
    for (int slot : delta.removed) {
      if (slot < 0 || slot >= prev_size || seen[slot]) {
        *why = "delta removes an out-of-range or repeated slot";
        return WireStatus::kBadDelta;
      }
      seen[slot] = 1;
    }
    for (const auto& [slot, len] : delta.resized) {
      if (slot < 0 || slot >= prev_size || seen[slot] || len < 0) {
        *why = "delta resizes an out-of-range or repeated slot";
        return WireStatus::kBadDelta;
      }
      seen[slot] = 1;
    }
    Batch patched = *prev_batch;
    ApplyBatchDelta(delta, &patched);
    if (patched.seq_lens != batch.seq_lens) {
      *why = "delta applied to the session's tracked batch does not produce "
             "the request batch";
      return WireStatus::kBadDelta;
    }
  }
  return WireStatus::kOk;
}

}  // namespace

PlannerDaemon::PlannerDaemon(const TransformerConfig& model, const ClusterSpec& cluster,
                             DaemonOptions options)
    : model_(model),
      logical_cluster_(ApplyTensorParallelism(cluster, options.tensor_parallel)),
      fabric_(logical_cluster_),
      cost_model_(model, logical_cluster_, options.tensor_parallel),
      options_(options) {
  options_.max_frame_bytes = std::min(options_.max_frame_bytes, kFrameHardCap);
  service_ = std::make_unique<PlannerService>(
      PlanServiceOptions{.num_planner_threads = options_.planner_threads});
  if (options_.plan_cache) {
    PlanCacheOptions cache_options;
    cache_options.capacity = options_.plan_cache_capacity;
    cache_options.near_match = options_.cache_near_match;
    cache_options.verify = options_.verify_before_serve;
    cache_ = std::make_unique<PlanCache>(service_.get(), cache_options);
  }
  // Instrument registration is a construction-time event: the request path
  // only ever touches the returned pointers (relaxed atomics, no registry
  // lock). The names are the "zeppelin.metrics.v1" catalog
  // (docs/OBSERVABILITY.md).
  c_connections_accepted_ = metrics_.GetCounter("daemon.connections_accepted");
  c_connections_refused_ = metrics_.GetCounter("daemon.connections_refused");
  c_requests_ok_ = metrics_.GetCounter("daemon.requests_ok");
  c_shed_overload_ = metrics_.GetCounter("daemon.shed_overload");
  c_shed_deadline_ = metrics_.GetCounter("daemon.shed_deadline");
  c_rejected_shutdown_ = metrics_.GetCounter("daemon.rejected_shutdown");
  c_malformed_frames_ = metrics_.GetCounter("daemon.malformed_frames");
  c_malformed_requests_ = metrics_.GetCounter("daemon.malformed_requests");
  c_bad_requests_ = metrics_.GetCounter("daemon.bad_requests");
  c_sessions_reaped_ = metrics_.GetCounter("daemon.sessions_reaped");
  c_verify_failures_ = metrics_.GetCounter("daemon.verify_failures");
  c_stats_requests_ = metrics_.GetCounter("daemon.stats_requests");
  g_queue_depth_ = metrics_.GetGauge("daemon.queue_depth");
  g_active_plans_ = metrics_.GetGauge("daemon.active_plans");
  g_connections_ = metrics_.GetGauge("daemon.connections");
  g_sessions_ = metrics_.GetGauge("daemon.sessions");
  g_cache_hits_ = metrics_.GetGauge("cache.hits");
  g_cache_misses_ = metrics_.GetGauge("cache.misses");
  g_cache_near_matches_ = metrics_.GetGauge("cache.near_matches");
  g_cache_evictions_ = metrics_.GetGauge("cache.evictions");
  g_cache_verify_failures_ = metrics_.GetGauge("cache.verify_failures");
  for (int i = 0; i < obs::kNumStages; ++i) {
    h_stage_[i] = metrics_.GetHistogram(
        std::string("stage_us.") + obs::StageName(static_cast<obs::Stage>(i)));
  }
  h_request_us_ = metrics_.GetHistogram("request.total_us");
  gate_ = std::make_unique<AdmissionGate>(options_.max_concurrent_plans,
                                          options_.queue_limit, g_active_plans_,
                                          g_queue_depth_);
  if (!options_.trace_out.empty()) {
    trace_ = std::make_unique<obs::TraceSink>(options_.trace_out);
  }
  if (options_.slow_request_us > 0) {
    slow_log_ = std::make_unique<obs::SlowRequestLog>(options_.slow_request_us);
  }
}

PlannerDaemon::~PlannerDaemon() { Stop(); }

bool PlannerDaemon::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  ZCHECK(!started_.load()) << "PlannerDaemon::Start called twice";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return fail("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    return fail("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  started_ = true;
  stopped_ = false;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  reaper_ = std::thread([this] { ReaperLoop(); });
  return true;
}

void PlannerDaemon::BeginDrain() { draining_ = true; }

void PlannerDaemon::Stop() {
  if (!started_.load() || stopped_.load()) {
    return;
  }
  draining_ = true;
  stopping_ = true;
  // Wake queued requests (they reply kShuttingDown) and both service
  // threads; the accept/reaper loops poll stopping_ on a short period.
  gate_->Shutdown();
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  reaper_cv_.notify_all();
  reaper_.join();

  // Unblock every reader (shutdown wakes recv with EOF), then join. Readers
  // reap their own sessions on the way out.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (auto& [id, conn] : conns_) {
      conns.push_back(conn);
    }
    conns_.clear();
  }
  for (auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    ::close(conn->fd);
  }
  // All readers are joined: no request is still writing spans, so the trace
  // file this writes is complete.
  if (trace_ != nullptr) {
    trace_->Flush();
  }
  stopped_ = true;
}

bool PlannerDaemon::stopped() const { return stopped_.load(); }

DaemonCounters PlannerDaemon::counters() const {
  DaemonCounters out;
  out.connections_accepted = c_connections_accepted_->value();
  out.connections_refused = c_connections_refused_->value();
  out.requests_ok = c_requests_ok_->value();
  out.shed_overload = c_shed_overload_->value();
  out.shed_deadline = c_shed_deadline_->value();
  out.rejected_shutdown = c_rejected_shutdown_->value();
  out.malformed_frames = c_malformed_frames_->value();
  out.malformed_requests = c_malformed_requests_->value();
  out.bad_requests = c_bad_requests_->value();
  out.sessions_reaped = c_sessions_reaped_->value();
  out.verify_failures = c_verify_failures_->value();
  if (cache_ != nullptr) {
    const PlanCacheCounters cache = cache_->counters();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_near_matches = cache.near_matches;
    out.cache_evictions = cache.evictions;
    out.verify_failures += cache.verify_failures;
  }
  return out;
}

std::string PlannerDaemon::StatsJson() {
  // Refresh the snapshot-time mirrors first: connection/session levels and
  // the cache's lock-guarded counters. Everything else is already live in
  // the instruments themselves.
  g_connections_->Set(static_cast<int64_t>(connection_count()));
  g_sessions_->Set(static_cast<int64_t>(service_->session_count()));
  if (cache_ != nullptr) {
    const PlanCacheCounters cache = cache_->counters();
    g_cache_hits_->Set(static_cast<int64_t>(cache.hits));
    g_cache_misses_->Set(static_cast<int64_t>(cache.misses));
    g_cache_near_matches_->Set(static_cast<int64_t>(cache.near_matches));
    g_cache_evictions_->Set(static_cast<int64_t>(cache.evictions));
    g_cache_verify_failures_->Set(static_cast<int64_t>(cache.verify_failures));
  }
  return obs::MetricsToJson(metrics_.Snapshot());
}

size_t PlannerDaemon::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void PlannerDaemon::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) {
      break;
    }
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    bool refuse = draining_.load();
    if (!refuse) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      refuse = conns_.size() >= static_cast<size_t>(options_.max_connections);
    }
    if (refuse) {
      ::close(fd);
      c_connections_refused_->Inc();
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_active_us = NowUs();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    c_connections_accepted_->Inc();
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void PlannerDaemon::ReaperLoop() {
  std::unique_lock<std::mutex> lock(conns_mu_);
  while (!stopping_.load()) {
    reaper_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (stopping_.load()) {
      break;
    }
    // Idle reaping: shut the socket down; the reader wakes with EOF, reaps
    // its sessions, and marks itself done.
    if (options_.idle_timeout_ms > 0) {
      const int64_t now_us = NowUs();
      for (auto& [id, conn] : conns_) {
        if (!conn->done.load() &&
            now_us - conn->last_active_us.load() >
                int64_t{options_.idle_timeout_ms} * 1000) {
          ::shutdown(conn->fd, SHUT_RDWR);
        }
      }
    }
    // Join and release finished connections.
    std::vector<std::shared_ptr<Connection>> finished;
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->done.load()) {
        finished.push_back(it->second);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (!finished.empty()) {
      lock.unlock();
      for (auto& conn : finished) {
        if (conn->thread.joinable()) {
          conn->thread.join();
        }
        ::close(conn->fd);
      }
      lock.lock();
    }
  }
}

void PlannerDaemon::ServeConnection(const std::shared_ptr<Connection>& conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  std::vector<char> buf(64 << 10);
  bool close_conn = false;
  while (!close_conn && !stopping_.load()) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // EOF, error, or a shutdown() wakeup.
    }
    conn->last_active_us = NowUs();
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Frame frame;
    FrameStatus status;
    while ((status = decoder.Next(&frame)) == FrameStatus::kOk) {
      if (!HandleFrame(*conn, frame)) {
        close_conn = true;
        break;
      }
    }
    if (!close_conn && status != FrameStatus::kIncomplete) {
      // Framing violation: the stream position is gone. One typed error
      // frame, then close.
      c_malformed_frames_->Inc();
      SendError(*conn, 0,
                status == FrameStatus::kOversized ? WireStatus::kOversizedFrame
                                                  : WireStatus::kMalformedFrame,
                std::string("framing error: ") + FrameStatusName(status));
      close_conn = true;
    }
  }
  ReapSessions(*conn);
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done = true;
  reaper_cv_.notify_all();
}

void PlannerDaemon::ReapSessions(Connection& conn) {
  if (conn.sessions.empty()) {
    return;
  }
  uint64_t reaped = 0;
  for (const auto& [stream_id, mirror] : conn.sessions) {
    if (service_->CloseSession(SessionKey(conn.id, stream_id))) {
      ++reaped;
    }
  }
  conn.sessions.clear();
  c_sessions_reaped_->Inc(reaped);
}

bool PlannerDaemon::SendResponse(Connection& conn, const WireResponse& response) {
  // kWrite covers response framing + the socket write. It necessarily lands
  // *after* the response's own stats were encoded, so it reaches the stage
  // histograms and --trace_out but never its own response's stage_us.
  obs::TraceScope write_span(obs::Stage::kWrite);
  std::string out;
  AppendResponseFrame(response, &out);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  const bool ok = SendAll(conn.fd, out);
  if (ok) {
    conn.last_active_us = NowUs();
  }
  return ok;
}

void PlannerDaemon::SendError(Connection& conn, uint64_t request_id, WireStatus status,
                              std::string message) {
  WireResponse response;
  response.request_id = request_id;
  response.status = status;
  response.message = std::move(message);
  SendResponse(conn, response);
}

bool PlannerDaemon::HandleFrame(Connection& conn, const Frame& frame) {
  const auto received = Clock::now();
  if (frame.type != FrameType::kRequest) {
    c_malformed_frames_->Inc();
    return false;  // Clients never send response frames; desynced peer.
  }
  // One stack-allocated trace per request, bound to this reader thread for
  // the request's whole lifetime: every TraceScope below — including the
  // ones inside PlanCache / PlannerService / VerifyPlan, which never see a
  // context parameter — accumulates here.
  obs::TraceContext tctx;
  tctx.lane = static_cast<int>(conn.id);
  obs::TraceBinding binding(&tctx);
  const double start_us = obs::NowUs();

  WireRequest request;
  std::string parse_error;
  WireStatus parsed;
  {
    obs::TraceScope decode_span(obs::Stage::kDecode);
    parsed = ParseRequest(frame.payload, &request, &parse_error);
  }
  tctx.request_id = request.request_id;
  if (parsed != WireStatus::kOk) {
    c_malformed_requests_->Inc();
    // The framing layer is still in sync — reject the request, keep the
    // connection. Session state was never touched.
    SendError(conn, request.request_id, WireStatus::kMalformedRequest, parse_error);
    return true;
  }
  if (draining_.load() || stopping_.load()) {
    c_rejected_shutdown_->Inc();
    SendError(conn, request.request_id, WireStatus::kShuttingDown,
              "daemon is draining");
    return true;
  }
  switch (request.kind) {
    case RequestKind::kPing: {
      WireResponse response;
      response.request_id = request.request_id;
      return SendResponse(conn, response);
    }
    case RequestKind::kCloseSession: {
      service_->CloseSession(SessionKey(conn.id, request.stream_id));
      conn.sessions.erase(request.stream_id);
      WireResponse response;
      response.request_id = request.request_id;
      response.stats.session_count = service_->session_count();
      return SendResponse(conn, response);
    }
    case RequestKind::kStats: {
      // Live introspection: no admission permit (the snapshot only reads
      // atomics + the cache counter mutex), so stats stay answerable while
      // every planning permit is busy.
      c_stats_requests_->Inc();
      WireResponse response;
      response.request_id = request.request_id;
      response.stats.session_count = service_->session_count();
      response.stats_json = StatsJson();
      return SendResponse(conn, response);
    }
    case RequestKind::kPlan: {
      HandlePlan(conn, request, received);
      // End-of-request telemetry covers every outcome (served, shed,
      // rejected): the histograms describe offered load, not just successes.
      ObserveRequest(tctx, obs::NowUs() - start_us);
      return true;
    }
  }
  return false;
}

void PlannerDaemon::ObserveRequest(const obs::TraceContext& ctx, double total_us) {
  h_request_us_->Record(static_cast<uint64_t>(std::max(0.0, total_us)));
  for (int i = 0; i < obs::kNumStages; ++i) {
    if (ctx.stage_us[i] > 0) {
      h_stage_[i]->Record(static_cast<uint64_t>(ctx.stage_us[i]));
    }
  }
  if (slow_log_ != nullptr) {
    slow_log_->Observe(ctx, total_us);
  }
  if (trace_ != nullptr) {
    trace_->Drain(ctx);
  }
}

void PlannerDaemon::HandlePlan(Connection& conn, WireRequest& request,
                               std::chrono::steady_clock::time_point received) {
  const Connection::SessionMirror* mirror = nullptr;
  if (!request.stream_id.empty()) {
    auto it = conn.sessions.find(request.stream_id);
    if (it != conn.sessions.end()) {
      mirror = &it->second;
    }
  }
  const bool mirror_based = mirror != nullptr && mirror->has_base;
  std::string why;
  WireStatus valid;
  {
    obs::TraceScope validate_span(obs::Stage::kValidate);
    valid = ValidatePlan(request, mirror_based ? &mirror->batch : nullptr,
                         mirror != nullptr ? &mirror->topo : nullptr,
                         logical_cluster_, &why);
  }
  if (valid != WireStatus::kOk) {
    c_bad_requests_->Inc();
    SendError(conn, request.request_id, valid, why);
    return;
  }

  const bool is_session = !request.stream_id.empty();
  // Exact-tier cache hits are served before (and without) an admission
  // permit: no planning happens, so a hit costs no planner capacity — and a
  // permit-free path keeps repeated responses byte-identical (zero queue
  // wait) under any load. TryServe drops + replans poisoned entries itself.
  if (!is_session && cache_ != nullptr) {
    PlanRequest probe;
    probe.batch = &request.batch;
    probe.cost_model = &cost_model_;
    probe.fabric = &fabric_;
    probe.options = request.options;
    if (std::optional<PlanResponse> served = cache_->TryServe(probe)) {
      WireResponse response;
      response.request_id = request.request_id;
      response.stats = served->stats;
      response.queue_wait_us = 0;
      response.digest = served->digest;
      {
        obs::TraceScope encode_span(obs::Stage::kEncode);
        response.plan_bytes = SerializePlan(*served->plan);
      }
      c_requests_ok_->Inc();
      SendResponse(conn, response);
      return;
    }
  }

  const auto deadline = request.deadline_ms == 0
                            ? Clock::time_point::max()
                            : received + std::chrono::milliseconds(request.deadline_ms);
  switch (gate_->Acquire(deadline)) {
    case AdmissionGate::Result::kOverloaded: {
      c_shed_overload_->Inc();
      SendError(conn, request.request_id, WireStatus::kOverloaded,
                "admission queue full");
      return;
    }
    case AdmissionGate::Result::kDeadline: {
      c_shed_deadline_->Inc();
      SendError(conn, request.request_id, WireStatus::kDeadlineExceeded,
                "deadline expired while queued");
      return;
    }
    case AdmissionGate::Result::kShutdown: {
      c_rejected_shutdown_->Inc();
      SendError(conn, request.request_id, WireStatus::kShuttingDown,
                "daemon is draining");
      return;
    }
    case AdmissionGate::Result::kAdmitted:
      break;
  }
  const double queue_wait_us = ElapsedUs(received);
  if (obs::TraceContext* tctx = obs::CurrentTrace()) {
    // Admission wait measured from frame receipt; the span is backdated so
    // it renders in its true position on the request's timeline.
    tctx->AddSpan(obs::Stage::kQueueWait, obs::NowUs() - queue_wait_us,
                  queue_wait_us);
  }
  if (options_.debug_plan_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.debug_plan_delay_ms));
  }
  // Deadlines gate the *start* of planning: a request that expired while
  // queued is dropped here; once planning begins it always completes (a
  // session mutation must never be half-reported).
  if (deadline != Clock::time_point::max() && Clock::now() > deadline) {
    gate_->Release();
    c_shed_deadline_->Inc();
    SendError(conn, request.request_id, WireStatus::kDeadlineExceeded,
              "deadline expired before planning started");
    return;
  }

  PlanRequest plan_request;
  plan_request.batch = &request.batch;
  plan_request.cost_model = &cost_model_;
  plan_request.fabric = &fabric_;
  plan_request.options = request.options;
  if (is_session) {
    plan_request.stream_id = SessionKey(conn.id, request.stream_id);
    // The service rebases from scratch when the session has no base; only
    // pass the delta when it will actually be consumed (mirror in lockstep).
    if (mirror_based && request.delta.has_value()) {
      plan_request.delta = &*request.delta;
    }
    if (request.topology.has_value()) {
      plan_request.topology = &*request.topology;
    }
  }
  PlanResponse planned = !is_session && cache_ != nullptr
                             ? cache_->PlanAndInsert(plan_request)
                             : service_->Plan(plan_request);
  gate_->Release();

  if (is_session) {
    // Advance the mirror exactly as the service advanced: batch tracked,
    // topology folded in (the fabric state advances even on fallback).
    Connection::SessionMirror& m = conn.sessions[request.stream_id];
    if (m.topo.world() != logical_cluster_.world_size()) {
      m.topo.Reset(logical_cluster_.world_size());
    }
    if (request.topology.has_value()) {
      m.topo.Apply(*request.topology);
    }
    m.batch = std::move(request.batch);
    m.has_base = true;
  }

  if (options_.verify_before_serve && !planned.stats.verified) {
    // Certify the paths the cache did not (sessions, cache off, or a fresh
    // plan the cache refused to store). Sessions verify against the mirror's
    // topology with the balance clause off: degraded/heterogeneous session
    // plans balance *effective* load under state the certifier should not
    // re-derive here, but coverage, conservation, arena and dead-rank
    // placement are all still enforced.
    const Connection::SessionMirror* m =
        is_session ? &conn.sessions[request.stream_id] : nullptr;
    PlanVerifyOptions vopts;
    vopts.token_capacity = 0;
    vopts.eps = -1;
    vopts.world = logical_cluster_.world_size();
    const PlanVerifyResult verdict =
        VerifyPlan(*planned.plan, is_session ? &m->batch : &request.batch,
                   is_session ? &m->topo : nullptr, vopts);
    planned.stats.verified = verdict.ok();
    if (!verdict.ok()) {
      c_verify_failures_->Inc();
      SendError(conn, request.request_id, WireStatus::kInternal,
                "plan failed certification: " + verdict.message);
      return;
    }
  }

  WireResponse response;
  response.request_id = request.request_id;
  response.stats = planned.stats;
  response.queue_wait_us = queue_wait_us;
  response.digest = planned.digest;
  {
    obs::TraceScope encode_span(obs::Stage::kEncode);
    response.plan_bytes = SerializePlan(*planned.plan);
  }
  // Overlay the daemon-side stages (queue wait, decode, validate, encode —
  // plus plan/materialize/verify recorded by the layers below) onto the
  // planned response. kWrite cannot appear in its own response: the write
  // happens after these stats are encoded (histograms/--trace_out only).
  if (const obs::TraceContext* tctx = obs::CurrentTrace()) {
    response.stats.stage_us = tctx->stage_us;
  }
  c_requests_ok_->Inc();
  SendResponse(conn, response);
}

}  // namespace net
}  // namespace zeppelin
