// Request/response payload encoding for the planner daemon protocol.
//
// A WireRequest is everything a remote client may say to the daemon: a plan
// request (batch + planning options + optional session delta/topology), an
// explicit session close, or a ping. A WireResponse is either a success
// (PlanStats + digest + the plan_io bytes) or a typed error. Payloads ride
// inside frames (src/net/frame.h); the daemon's cost model and fabric are
// fixed at startup, so neither crosses the wire.
//
// Parsing follows the plan_io.h defensive discipline: little-endian
// fixed-width fields, every count bounds-checked against the remaining
// payload before any allocation, explicit caps on element values, trailing
// bytes rejected. ParseRequest establishes *structural* validity only; the
// daemon separately validates request *semantics* (capacity feasibility,
// delta consistency against the session's tracked batch, topology liveness
// preconditions) before any planner state is touched — see
// docs/DAEMON.md, "Request validation".
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/plan_service.h"
#include "src/data/sampler.h"
#include "src/data/stream.h"
#include "src/net/frame.h"

namespace zeppelin {
namespace net {

// Wire payload encoding version. v2 added the cache_outcome and verified
// stats bytes to kOk responses. v3 added the kStats request kind, the
// per-stage latency block, and the stats-JSON section to kOk responses.
// Endpoints emit v3; parsers also accept v2 (a v2 response simply ends after
// the plan bytes — stage_us and stats_json decode as empty), so a v3 client
// interoperates with a v2 daemon and vice versa. Other versions are
// rejected rather than guessed at.
inline constexpr uint32_t kWireVersion = 3;
inline constexpr uint32_t kMinWireVersion = 2;

// Structural caps enforced by ParseRequest (beyond the frame-size cap):
// stream ids are short tokens, sequence lengths and counts are bounded so
// totals can never overflow int64 arithmetic anywhere in the planner.
inline constexpr uint32_t kMaxStreamIdBytes = 256;
inline constexpr uint32_t kMaxWireSeqs = 1u << 24;
inline constexpr int64_t kMaxWireSeqLen = int64_t{1} << 40;
// A whole batch may not exceed this many tokens (checked by the daemon's
// semantic validation): keeps every downstream product — speed-quantized
// effective loads (x kSpeedScale), node-capacity sums — inside int64.
inline constexpr int64_t kMaxWireTotalTokens = int64_t{1} << 47;
inline constexpr uint32_t kMaxWireDeltaEntries = kMaxWireSeqs;
inline constexpr uint32_t kMaxWireTopoEntries = 1u << 20;
// v3 response caps: the per-stage latency block may carry at most this many
// entries (today obs::kNumStages = 9; headroom for future stages), and the
// stats-JSON section is bounded so a lying daemon cannot force a huge
// client-side allocation.
inline constexpr uint32_t kMaxWireStages = 32;
inline constexpr uint32_t kMaxWireStatsJsonBytes = 1u << 20;

// Every way a request can fail, plus the client-side transport failures —
// the daemon's equivalent of PlanIoStatus. Values are wire-stable.
enum class WireStatus : uint8_t {
  kOk = 0,
  kMalformedFrame = 1,    // Framing violation; the connection closes.
  kOversizedFrame = 2,    // Frame over the size cap; the connection closes.
  kMalformedRequest = 3,  // Request payload failed structural parsing.
  kBadRequest = 4,        // Semantic validation failed (empty batch,
                          //   infeasible capacity, bad options, ...).
  kBadDelta = 5,          // Delta/topology disagrees with the session's
                          //   tracked state; nothing was applied.
  kOverloaded = 6,        // Admission queue full; request shed unprocessed.
  kDeadlineExceeded = 7,  // Deadline expired before planning started.
  kShuttingDown = 8,      // Daemon is draining; request rejected.
  kPlanRejected = 9,      // Client side: response plan bytes failed ParsePlan.
  kTransport = 10,        // Client side: connect/send/recv failure.
  kInternal = 11,         // Daemon-side invariant failure (should not happen).
};

const char* WireStatusName(WireStatus status);

enum class RequestKind : uint8_t {
  kPlan = 1,
  kCloseSession = 2,  // Ends `stream_id`'s session; idempotent.
  kPing = 3,          // Liveness probe; returns an empty success.
  kStats = 4,         // Live introspection: returns the daemon's full metrics
                      //   snapshot as stats_json; idempotent, served without
                      //   an admission permit (v3).
};

struct WireRequest {
  RequestKind kind = RequestKind::kPlan;
  // Echoed verbatim in the response so clients can match replies.
  uint64_t request_id = 0;
  // Per-request deadline in milliseconds from daemon receipt; 0 = none. The
  // daemon sheds the request (kDeadlineExceeded) if it is still waiting for
  // admission when the deadline passes — see docs/DAEMON.md, "Deadlines".
  uint32_t deadline_ms = 0;
  // Empty = stateless one-shot plan. Non-empty = delta session, private to
  // this connection (the daemon namespaces session keys per connection).
  std::string stream_id;
  PlanningOptions options;
  // kPlan only: the *new* batch (post-delta, PlanRequest semantics).
  Batch batch;
  // kPlan sessions only: the delta from the session's previous batch.
  std::optional<BatchDelta> delta;
  // kPlan sessions only: fabric churn since the previous request.
  std::optional<TopologyDelta> topology;
};

struct WireResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;  // Human-readable error detail; empty on success.
  PlanStats stats;      // Success only.
  // Microseconds the request waited for admission (daemon-side telemetry).
  double queue_wait_us = 0;
  uint64_t digest = 0;      // plan->StateDigest(); authenticates plan_bytes.
  std::string plan_bytes;   // SerializePlan() image; empty for close/ping.
  // v3, kStats responses: the "zeppelin.metrics.v1" snapshot JSON
  // (docs/OBSERVABILITY.md). Empty on every other kind.
  std::string stats_json;
};

// --- Encoding ---------------------------------------------------------------

std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

// Frames in one step: request -> kRequest frame; response -> kResponse frame
// when status == kOk, kError frame otherwise.
void AppendRequestFrame(const WireRequest& request, std::string* out);
void AppendResponseFrame(const WireResponse& response, std::string* out);

// --- Parsing ----------------------------------------------------------------

// Structural parse of a kRequest frame payload. Returns kOk or
// kMalformedRequest; on failure `*request` still carries any request id that
// was decodable, so the daemon can address its error reply.
WireStatus ParseRequest(std::string_view payload, WireRequest* request,
                        std::string* error);

// Structural parse of a kResponse/kError frame payload (client side).
WireStatus ParseResponse(FrameType type, std::string_view payload,
                         WireResponse* response, std::string* error);

}  // namespace net
}  // namespace zeppelin

#endif  // SRC_NET_WIRE_H_
