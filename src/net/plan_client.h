// PlanClient: the C++ client of the planner daemon (docs/DAEMON.md).
//
// One client owns one TCP connection to one daemon and issues framed
// requests synchronously. Robustness mirrors the daemon's: connect and
// per-request timeouts, typed failures (WireStatus, never an exception or a
// crash), ParsePlan validation of every received plan (a daemon cannot hand
// back bytes that fail the plan_io digest check), and capped
// exponential-backoff retry with a strict idempotency rule:
//
//   - Stateless plans (empty stream_id), pings, and session closes (the
//     daemon's CloseSession is idempotent) are retried on kTransport and
//     kOverloaded, reconnecting between attempts, with
//     RetryBackoffMs(attempt) sleeps in between.
//   - Session plan requests (non-empty stream_id) are NEVER auto-retried:
//     after a transport error the client cannot know whether the daemon
//     applied the delta, so a blind resend could double-apply it. The error
//     surfaces to the caller, who re-establishes the stream (the daemon
//     rebases a session on the next full request).
//
// Deadline failures (kDeadlineExceeded) and every validation failure are
// terminal by definition — retrying them would just miss the deadline again
// or resend the same bad bytes.
#ifndef SRC_NET_PLAN_CLIENT_H_
#define SRC_NET_PLAN_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/partitioner.h"
#include "src/net/wire.h"

namespace zeppelin {
namespace net {

struct PlanClientOptions {
  int connect_timeout_ms = 2000;
  // Whole-request budget: send + wait for the response frame.
  int request_timeout_ms = 5000;
  // Extra attempts beyond the first, for idempotent requests only.
  int max_retries = 2;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  // Decoder cap for response frames (clamped to kFrameHardCap).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // ParsePlan rank-universe gate for received plans; 0 accepts any.
  int max_world = 0;
  // Run VerifyPlan on every received plan against the request's batch
  // (coverage, arena, conservation — the balance clause stays off; the
  // client cannot see the daemon's topology state). Failures surface as
  // kPlanRejected, exactly like corrupt plan bytes.
  bool verify_plans = true;
  // Test seam: the backoff sleep. Defaults to a real sleep; tests install a
  // recorder to assert the schedule without waiting it out.
  std::function<void(int)> sleep_ms;
};

// The capped exponential backoff schedule: backoff_initial_ms << attempt,
// saturating at backoff_max_ms. `attempt` counts completed failed attempts
// (0 = sleep before the first retry). Exposed for direct unit testing.
int RetryBackoffMs(int attempt, const PlanClientOptions& options);

struct PlanClientResult {
  WireStatus status = WireStatus::kTransport;
  std::string message;
  PlanStats stats;          // Success only.
  double queue_wait_us = 0; // Daemon-side admission wait (telemetry).
  uint64_t digest = 0;
  // The raw SerializePlan image as received — the byte-identity currency
  // tests compare against an in-process SerializePlan.
  std::string plan_bytes;
  // ParsePlan-validated decode of plan_bytes (null for ping/close).
  std::shared_ptr<const PartitionPlan> plan;
  // Stats() only: the daemon's "zeppelin.metrics.v1" snapshot JSON.
  std::string stats_json;
  int attempts = 0;         // Total attempts made (1 = no retry).
  double rtt_us = 0;        // Last attempt's round-trip time.

  bool ok() const { return status == WireStatus::kOk; }
};

class PlanClient {
 public:
  PlanClient(std::string host, int port, PlanClientOptions options = {});
  ~PlanClient();

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  // Explicit connect (optional — requests auto-connect). False with `*error`
  // filled on failure; the client may be retried.
  bool Connect(std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Issues a plan request. `request.kind` is forced to kPlan and
  // `request.request_id` is assigned by the client.
  PlanClientResult Plan(WireRequest request);

  // Liveness probe; idempotent, retried.
  PlanClientResult Ping();

  // Live introspection (wire v3): the daemon's full metrics snapshot in
  // PlanClientResult::stats_json. Idempotent, retried.
  PlanClientResult Stats();

  // Ends `stream_id`'s session on the daemon; idempotent, retried.
  PlanClientResult CloseSession(const std::string& stream_id);

 private:
  // One send+recv attempt on the current connection (connecting if needed).
  PlanClientResult Attempt(const WireRequest& request);
  // Retry loop around Attempt per the idempotency rule above.
  PlanClientResult Roundtrip(WireRequest request);

  std::string host_;
  int port_;
  PlanClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace zeppelin

#endif  // SRC_NET_PLAN_CLIENT_H_
