// LLaMA-3-style context parallelism baseline (§5 "LLaMA CP").
//
// Instead of a ring, every rank all-gathers the full KV activations before
// attention (WLB-LLM / LLaMA 3 recipe). The collective uses every NIC of
// every node (NCCL bulk all-gather), which is why it beats TE CP's
// single-boundary-NIC ring, but it sits on the critical path (no overlap
// with attention) and its volume grows linearly with total sequence length.
#ifndef SRC_BASELINES_LLAMA_CP_H_
#define SRC_BASELINES_LLAMA_CP_H_

#include <vector>

#include "src/core/strategy.h"

namespace zeppelin {

class LlamaCpStrategy : public Strategy {
 public:
  std::string name() const override { return "LLaMA-CP"; }
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  std::vector<int64_t> LinearTokensPerRank() const override;

 private:
  // Emits the bulk all-gather as one aggregate transfer per node occupying
  // all of that node's NIC channels (or NVSwitch channels on a single node).
  // Returns a barrier gating all ranks.
  TaskId EmitAllGather(TaskGraph& graph, double scale, const std::vector<TaskId>& deps,
                       const std::string& label) const;

  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;
  Batch batch_;
  std::vector<double> attention_flops_per_rank_;
  std::vector<int64_t> tokens_per_rank_;
  int64_t total_kv_bytes_ = 0;
};

}  // namespace zeppelin

#endif  // SRC_BASELINES_LLAMA_CP_H_
