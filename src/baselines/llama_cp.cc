#include "src/baselines/llama_cp.h"

#include "src/common/check.h"
#include "src/core/chunking.h"
#include "src/core/linear_stage.h"

namespace zeppelin {

void LlamaCpStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                           const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  batch_ = batch;
  const int world = fabric.cluster().world_size();

  attention_flops_per_rank_.assign(world, 0.0);
  tokens_per_rank_.assign(world, 0);
  total_kv_bytes_ = batch.total_tokens() * cost_model.KvBytesPerToken();

  // Same causal-balanced chunk ownership as the ring variants; with the full
  // KV local, each rank's work is simply its chunks against all prior keys.
  for (int64_t len : batch.seq_lens) {
    const std::vector<ChunkPair> assignment = BalancedChunkAssignment(len, world);
    for (int k = 0; k < world; ++k) {
      attention_flops_per_rank_[k] += RingTotalFlops(cost_model, assignment, len, k);
      tokens_per_rank_[k] += assignment[k].tokens();
    }
  }
}

TaskId LlamaCpStrategy::EmitAllGather(TaskGraph& graph, double scale,
                                      const std::vector<TaskId>& deps,
                                      const std::string& label) const {
  const ClusterSpec& spec = fabric_->cluster();
  const double volume = static_cast<double>(total_kv_bytes_) * scale;
  const int world = spec.world_size();
  const double gathered_fraction = world > 1 ? (world - 1.0) / world : 0.0;

  std::vector<TaskId> parts;
  if (spec.num_nodes > 1) {
    // Cross-node bulk all-gather: every node both sends and receives
    // ~(N-1)/N of the volume through all its NICs in parallel.
    const double node_bw = spec.nic_bandwidth * spec.nics_per_node;
    const double duration = volume * gathered_fraction / node_bw + spec.inter_latency_us;
    for (int node = 0; node < spec.num_nodes; ++node) {
      Task t;
      t.duration_us = duration;
      t.category = TaskCategory::kInterComm;
      t.deps = deps;
      t.bytes = static_cast<int64_t>(volume * gathered_fraction);
      t.gpu = spec.GlobalRank(node, 0);
      t.label = label + ".allgather.n" + std::to_string(node);
      for (int nic = 0; nic < spec.nics_per_node; ++nic) {
        t.resources.push_back(fabric_->NicTx(node, nic));
        t.resources.push_back(fabric_->NicRx(node, nic));
      }
      parts.push_back(graph.AddTransferLike(std::move(t)));
    }
  } else {
    // Single node: NVSwitch all-gather, each GPU's ingress receives the rest.
    const double duration =
        volume * gathered_fraction / (spec.nvswitch_bandwidth * spec.gpus_per_node) +
        spec.intra_latency_us;
    Task t;
    t.duration_us = duration;
    t.category = TaskCategory::kIntraComm;
    t.deps = deps;
    t.bytes = static_cast<int64_t>(volume * gathered_fraction);
    t.gpu = 0;
    t.label = label + ".allgather";
    for (int g = 0; g < world; ++g) {
      t.resources.push_back(fabric_->NvswitchEgress(g));
      t.resources.push_back(fabric_->NvswitchIngress(g));
    }
    parts.push_back(graph.AddTransferLike(std::move(t)));
  }
  return graph.AddBarrier(std::move(parts), label + ".allgather_done");
}

std::vector<TaskId> LlamaCpStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const int world = fabric_->cluster().world_size();
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  auto to_deps = [&](const std::vector<TaskId>& v) {
    std::vector<std::vector<TaskId>> deps(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      deps[i] = {v[i]};
    }
    return deps;
  };

  if (direction == Direction::kForward) {
    const TaskId gathered = EmitAllGather(graph, scale, {}, tag);
    std::vector<TaskId> attn(world);
    for (int k = 0; k < world; ++k) {
      attn[k] = graph.AddCompute(fabric_->ComputeLane(k),
                                 cost_model_->ComputeTime(attention_flops_per_rank_[k] * scale),
                                 TaskCategory::kAttentionCompute, {gathered},
                                 tag + ".attn." + std::to_string(k), k);
    }
    return EmitLinearStage(graph, *cost_model_, *fabric_, tokens_per_rank_, direction,
                           to_deps(attn), tag);
  }

  // Backward: linear grad, then the KV gradient exchange (all-gather-sized
  // reduce-scatter + the recomputation gather, folded into the 2x scale),
  // then attention backward.
  const std::vector<TaskId> linear =
      EmitLinearStage(graph, *cost_model_, *fabric_, tokens_per_rank_, direction, {}, tag);
  const TaskId gathered =
      EmitAllGather(graph, scale, {graph.AddBarrier(linear, tag + ".linear_done")}, tag);
  std::vector<TaskId> attn(world);
  for (int k = 0; k < world; ++k) {
    attn[k] = graph.AddCompute(fabric_->ComputeLane(k),
                               cost_model_->ComputeTime(attention_flops_per_rank_[k] * scale),
                               TaskCategory::kAttentionCompute, {gathered},
                               tag + ".attn." + std::to_string(k), k);
  }
  return attn;
}

std::vector<int64_t> LlamaCpStrategy::LinearTokensPerRank() const { return tokens_per_rank_; }

}  // namespace zeppelin
