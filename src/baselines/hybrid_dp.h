// FLOP-balanced hybrid data parallelism baseline (§5 "Hybrid DP",
// ByteScale/FlexSP family).
//
// Long sequences get dedicated context-parallel rank groups sized so each
// group's per-rank FLOPs match the global budget; short sequences are
// scattered whole onto the least-FLOP-loaded ranks as plain data parallelism.
// Because short sequences carry far fewer FLOPs per token, DP ranks
// accumulate more tokens than fit in memory and must split their work into
// extra micro-batches — lowering compute intensity and leaving their NICs
// idle, the imbalance the paper's Fig. 2(c) highlights.
#ifndef SRC_BASELINES_HYBRID_DP_H_
#define SRC_BASELINES_HYBRID_DP_H_

#include <cstdint>
#include <vector>

#include "src/core/partitioner.h"
#include "src/core/routing.h"
#include "src/core/strategy.h"

namespace zeppelin {

struct HybridDpOptions {
  // Token capacity per rank; 0 derives ceil(total/world) from the batch.
  int64_t token_capacity = 0;
  // A sequence becomes context-parallel when its FLOPs exceed this multiple
  // of the per-rank budget.
  double cp_threshold = 1.0;
};

class HybridDpStrategy : public Strategy {
 public:
  explicit HybridDpStrategy(HybridDpOptions options = {});

  std::string name() const override { return "Hybrid-DP"; }
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  std::vector<int64_t> LinearTokensPerRank() const override;

  // Planning diagnostics.
  int num_cp_groups() const { return static_cast<int>(cp_rings_.size()); }
  int num_micro_batches() const;

 private:
  HybridDpOptions options_;
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;

  std::vector<RingSequence> cp_rings_;
  // micro_batches_[rank] = list of micro-batches, each a list of seq lengths.
  std::vector<std::vector<std::vector<int64_t>>> micro_batches_;
  std::vector<int64_t> tokens_per_rank_;
};

}  // namespace zeppelin

#endif  // SRC_BASELINES_HYBRID_DP_H_
