// Double-ring context parallelism (LoongTrain-style, the paper's related
// work [23]) — an extension baseline beyond the paper's three comparators.
//
// Like TE CP, every sequence is split evenly over all ranks with causal-
// balanced chunk pairs. Unlike TE CP's single flat ring — where only the two
// node-boundary GPUs ever touch a NIC — the rotation is hierarchical:
//   - P-1 *inner* rounds rotate KV blocks within each node over NVSwitch;
//   - then one *outer* hop ships every rank's block to the peer rank of the
//     next node simultaneously, using every NIC of the node in parallel.
// This fixes the NIC under-utilization differently from Zeppelin: by
// restructuring the ring itself rather than by re-routing a flat ring's
// boundary hop. It still pays communication proportional to total sequence
// length for every sequence, short or long — the inefficiency Zeppelin's
// hierarchical partitioning removes.
#ifndef SRC_BASELINES_DOUBLE_RING_H_
#define SRC_BASELINES_DOUBLE_RING_H_

#include <vector>

#include "src/core/strategy.h"

namespace zeppelin {

class DoubleRingStrategy : public Strategy {
 public:
  std::string name() const override { return "DoubleRing-CP"; }
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  std::vector<int64_t> LinearTokensPerRank() const override;

 private:
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;
  std::vector<std::vector<double>> round_flops_;   // [round][rank].
  std::vector<std::vector<int64_t>> round_bytes_;  // [round][rank].
  std::vector<int64_t> tokens_per_rank_;
};

}  // namespace zeppelin

#endif  // SRC_BASELINES_DOUBLE_RING_H_
