// Input-balanced packing + Ulysses sequence parallelism (Fig. 2(a) family:
// the Qwen / DeepSeek recipe), plus the analytic cost decomposition behind
// the paper's Fig. 3.
//
// Sequences are packed first-fit-decreasing into R equal-token buffers; each
// buffer's attention runs over the packed context with a plain causal mask,
// so tokens attend across sequence boundaries — computation the model does
// not need ("redundant computation"). Distributed execution uses
// DeepSpeed-Ulysses all-to-alls to switch between sequence- and head-sharded
// layouts around the attention.
#ifndef SRC_BASELINES_PACKING_H_
#define SRC_BASELINES_PACKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/data/distribution.h"

namespace zeppelin {

struct PackingPlanInfo {
  std::vector<std::vector<int64_t>> packs;  // Per rank: packed sequence lengths.
  double redundant_flops = 0;               // Cross-sequence attention FLOPs.
  double useful_flops = 0;                  // Within-sequence causal FLOPs.
};

// First-fit-decreasing packing of `seq_lens` into `num_packs` buffers of
// `pack_capacity` tokens; oversized sequences are chunked.
PackingPlanInfo PackSequences(const std::vector<int64_t>& seq_lens, int num_packs,
                              int64_t pack_capacity, const CostModel& cost_model);

// Ulysses constraint (§2.2): the sequence-parallel group size must divide the
// attention head count, so the SP group is gcd(world, heads) and the cluster
// splits into world/g data-parallel replicas of it.
int UlyssesGroupSize(int world_size, int num_heads);

class PackingUlyssesStrategy : public Strategy {
 public:
  std::string name() const override { return "Pack+Ulysses"; }
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  std::vector<int64_t> LinearTokensPerRank() const override;

  const PackingPlanInfo& plan_info() const { return info_; }
  int ulysses_group_size() const { return group_size_; }

 private:
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;
  PackingPlanInfo info_;
  std::vector<int64_t> tokens_per_rank_;
  int group_size_ = 1;
};

// --- Fig. 3 reproduction -----------------------------------------------------
// Per-length-bin attention cost decomposition for a dataset, normalized to
// the dataset's total attention cost. Costs are expressed in time units
// through the cost model, with communication priced at the inter-node NIC
// bandwidth (the paper's 2-node setting).
struct AttentionCostBin {
  int64_t lo = 0;
  int64_t hi = 0;
  double computation = 0;    // Useful attention compute share.
  double communication = 0;  // Distributed-attention communication share.
  double redundant = 0;      // Cross-sequence (packing only) share.
};

// Fig. 3(a): packing + Ulysses SP.
std::vector<AttentionCostBin> AnalyzePackingCosts(const LengthDistribution& dist,
                                                  const CostModel& cost_model, int world_size,
                                                  int64_t batch_tokens, int num_batches,
                                                  uint64_t seed);

// Fig. 3(b): even split + ring CP.
std::vector<AttentionCostBin> AnalyzeEvenSplitCosts(const LengthDistribution& dist,
                                                    const CostModel& cost_model, int world_size,
                                                    int64_t batch_tokens, int num_batches,
                                                    uint64_t seed);

}  // namespace zeppelin

#endif  // SRC_BASELINES_PACKING_H_
