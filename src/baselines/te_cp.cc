#include "src/baselines/te_cp.h"

#include "src/comm/primitives.h"
#include "src/common/check.h"
#include "src/core/chunking.h"
#include "src/core/linear_stage.h"

namespace zeppelin {

void TeCpStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                        const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  batch_ = batch;
  routing_.emplace(fabric, options_.routing);
  const int world = fabric.cluster().world_size();
  const int64_t kv_bytes = cost_model.KvBytesPerToken();

  round_flops_.assign(world, std::vector<double>(world, 0.0));
  round_bytes_.assign(world, std::vector<int64_t>(world, 0));
  tokens_per_rank_.assign(world, 0);

  // All sequences share the one global ring; per round each rank runs one
  // fused kernel over every sequence's chunk pair and forwards one fused KV
  // buffer (this is how TE batches variable-length inputs).
  for (int64_t len : batch.seq_lens) {
    const std::vector<ChunkPair> assignment = BalancedChunkAssignment(len, world);
    for (int r = 0; r < world; ++r) {
      for (int k = 0; k < world; ++k) {
        round_flops_[r][k] += RingRoundFlops(cost_model, assignment, len, k, r);
        const int held_owner = ((k - r) % world + world) % world;
        round_bytes_[r][k] += assignment[held_owner].tokens() * kv_bytes;
      }
    }
    for (int k = 0; k < world; ++k) {
      tokens_per_rank_[k] += assignment[k].tokens();
    }
  }
}

std::vector<TaskId> TeCpStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const int world = fabric_->cluster().world_size();
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  auto to_deps = [&](const std::vector<TaskId>& v) {
    std::vector<std::vector<TaskId>> deps(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      deps[i] = {v[i]};
    }
    return deps;
  };

  std::vector<std::vector<TaskId>> linear_gate;  // Per-rank deps for linear.
  std::vector<TaskId> attn_last(world, kInvalidTask);

  auto emit_attention = [&](const std::vector<std::vector<TaskId>>& gate) {
    std::vector<TaskId> recv(world, kInvalidTask);
    for (int r = 0; r < world; ++r) {
      std::vector<TaskId> next_recv(world, kInvalidTask);
      if (r < world - 1) {
        for (int k = 0; k < world; ++k) {
          const int next = (k + 1) % world;
          std::vector<TaskId> send_deps;
          if (r == 0) {
            send_deps = gate.empty() ? std::vector<TaskId>{} : gate[k];
          } else {
            send_deps = {recv[k]};
          }
          const int64_t bytes =
              static_cast<int64_t>(static_cast<double>(round_bytes_[r][k]) * scale);
          next_recv[next] = routing_->EmitTransfer(
              graph, k, next, bytes, std::move(send_deps),
              tag + ".kv.r" + std::to_string(r) + "." + std::to_string(k));
        }
      }
      for (int k = 0; k < world; ++k) {
        std::vector<TaskId> deps;
        if (r == 0) {
          deps = gate.empty() ? std::vector<TaskId>{} : gate[k];
        } else {
          deps = {recv[k]};
        }
        attn_last[k] = graph.AddCompute(
            fabric_->ComputeLane(k), cost_model_->ComputeTime(round_flops_[r][k] * scale),
            TaskCategory::kAttentionCompute, std::move(deps),
            tag + ".attn.r" + std::to_string(r) + "." + std::to_string(k), k);
      }
      recv = next_recv;
    }
  };

  if (direction == Direction::kForward) {
    emit_attention({});
    const std::vector<TaskId> linear = EmitLinearStage(
        graph, *cost_model_, *fabric_, tokens_per_rank_, direction, to_deps(attn_last), tag);
    return linear;
  }
  const std::vector<TaskId> linear = EmitLinearStage(graph, *cost_model_, *fabric_,
                                                     tokens_per_rank_, direction, {}, tag);
  emit_attention(to_deps(linear));
  return attn_last;
}

std::vector<int64_t> TeCpStrategy::LinearTokensPerRank() const { return tokens_per_rank_; }

}  // namespace zeppelin
