#include "src/baselines/packing.h"

#include <algorithm>
#include <numeric>

#include "src/comm/collectives.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/linear_stage.h"
#include "src/data/sampler.h"

namespace zeppelin {

PackingPlanInfo PackSequences(const std::vector<int64_t>& seq_lens, int num_packs,
                              int64_t pack_capacity, const CostModel& cost_model) {
  ZCHECK_GT(num_packs, 0);
  ZCHECK_GT(pack_capacity, 0);

  std::vector<int64_t> pieces;
  for (int64_t len : seq_lens) {
    int64_t remaining = len;
    while (remaining > 0) {
      const int64_t piece = std::min(remaining, pack_capacity);
      pieces.push_back(piece);
      remaining -= piece;
    }
  }
  std::sort(pieces.rbegin(), pieces.rend());

  PackingPlanInfo info;
  info.packs.assign(num_packs, {});
  std::vector<int64_t> loads(num_packs, 0);
  for (int64_t piece : pieces) {
    // First-fit decreasing with least-loaded fallback keeps packs near-equal.
    int target = -1;
    for (int p = 0; p < num_packs; ++p) {
      if (loads[p] + piece <= pack_capacity) {
        target = p;
        break;
      }
    }
    if (target < 0) {
      target = static_cast<int>(std::min_element(loads.begin(), loads.end()) - loads.begin());
    }
    info.packs[target].push_back(piece);
    loads[target] += piece;
  }

  for (const auto& pack : info.packs) {
    const int64_t pack_tokens = std::accumulate(pack.begin(), pack.end(), int64_t{0});
    double useful = 0;
    for (int64_t len : pack) {
      useful += cost_model.CausalAttentionFlops(len);
    }
    info.useful_flops += useful;
    info.redundant_flops += cost_model.CausalAttentionFlops(pack_tokens) - useful;
  }
  return info;
}

int UlyssesGroupSize(int world_size, int num_heads) {
  // Largest group that divides both: gcd.
  int a = world_size;
  int b = num_heads;
  while (b != 0) {
    const int t = a % b;
    a = b;
    b = t;
  }
  return std::max(1, a);
}

void PackingUlyssesStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                                  const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  const int world = fabric.cluster().world_size();
  group_size_ = UlyssesGroupSize(world, cost_model.model().num_heads);
  const int64_t capacity = (batch.total_tokens() + world - 1) / world;
  info_ = PackSequences(batch.seq_lens, world, capacity, cost_model);
  tokens_per_rank_.assign(world, 0);
  for (int r = 0; r < world; ++r) {
    tokens_per_rank_[r] =
        std::accumulate(info_.packs[r].begin(), info_.packs[r].end(), int64_t{0});
  }
}

std::vector<TaskId> PackingUlyssesStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const ClusterSpec& spec = fabric_->cluster();
  const int world = spec.world_size();
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  // Ulysses runs inside groups of `group_size_` consecutive ranks; the
  // groups are independent data-parallel replicas.
  const int g = group_size_;
  const int64_t qkv_bytes_per_token =
      static_cast<int64_t>(cost_model_->model().hidden_size +
                           2 * cost_model_->model().kv_hidden()) *
      cost_model_->model().dtype_bytes;

  auto to_deps = [&](const std::vector<TaskId>& v) {
    std::vector<std::vector<TaskId>> deps(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      deps[i] = {v[i]};
    }
    return deps;
  };

  std::vector<TaskId> a2a_out_done(world, kInvalidTask);
  for (int base = 0; base < world; base += g) {
    std::vector<int> ranks(g);
    std::iota(ranks.begin(), ranks.end(), base);

    auto uniform_sends = [&](int64_t bytes_per_token) {
      std::vector<std::vector<int64_t>> sends(g, std::vector<int64_t>(g, 0));
      for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
          if (i != j) {
            const double share = static_cast<double>(tokens_per_rank_[base + i]) / g;
            sends[i][j] =
                static_cast<int64_t>(share * static_cast<double>(bytes_per_token) * scale);
          }
        }
      }
      return sends;
    };

    // All-to-all #1: switch from sequence- to head-sharding of Q/K/V.
    const CollectiveResult a2a_in =
        AllToAllV(graph, *fabric_, ranks, uniform_sends(qkv_bytes_per_token),
                  TaskCategory::kInterComm, {},
                  tag + ".ulysses_in.g" + std::to_string(base / g));

    // Packed attention with a plain causal mask over each buffer (useful +
    // redundant flops together).
    std::vector<TaskId> attn(g);
    for (int i = 0; i < g; ++i) {
      const int rank = base + i;
      const int64_t pack_tokens = tokens_per_rank_[rank];
      const double flops = cost_model_->CausalAttentionFlops(pack_tokens) * scale;
      attn[i] = graph.AddCompute(fabric_->ComputeLane(rank), cost_model_->ComputeTime(flops),
                                 TaskCategory::kAttentionCompute, {a2a_in.done[i]},
                                 tag + ".packed_attn." + std::to_string(rank), rank);
    }

    // All-to-all #2: restore sequence sharding of the outputs.
    const CollectiveResult a2a_out =
        AllToAllV(graph, *fabric_, ranks, uniform_sends(cost_model_->HiddenBytesPerToken()),
                  TaskCategory::kInterComm, to_deps(attn),
                  tag + ".ulysses_out.g" + std::to_string(base / g));
    for (int i = 0; i < g; ++i) {
      a2a_out_done[base + i] = a2a_out.done[i];
    }
  }

  return EmitLinearStage(graph, *cost_model_, *fabric_, tokens_per_rank_, direction,
                         to_deps(a2a_out_done), tag);
}

std::vector<int64_t> PackingUlyssesStrategy::LinearTokensPerRank() const {
  return tokens_per_rank_;
}

namespace {

std::vector<AttentionCostBin> MakeStandardBins() {
  const std::vector<int64_t> edges = StandardBinEdges();
  std::vector<AttentionCostBin> bins;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    bins.push_back({edges[i], edges[i + 1], 0, 0, 0});
  }
  return bins;
}

int BinIndex(const std::vector<AttentionCostBin>& bins, int64_t len) {
  for (size_t i = 0; i < bins.size(); ++i) {
    if (len >= bins[i].lo && len < bins[i].hi) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(bins.size()) - 1;
}

void NormalizeBins(std::vector<AttentionCostBin>* bins) {
  double total = 0;
  for (const auto& b : *bins) {
    total += b.computation + b.communication + b.redundant;
  }
  if (total == 0) {
    return;
  }
  for (auto& b : *bins) {
    b.computation /= total;
    b.communication /= total;
    b.redundant /= total;
  }
}

}  // namespace

std::vector<AttentionCostBin> AnalyzePackingCosts(const LengthDistribution& dist,
                                                  const CostModel& cost_model, int world_size,
                                                  int64_t batch_tokens, int num_batches,
                                                  uint64_t seed) {
  std::vector<AttentionCostBin> bins = MakeStandardBins();
  BatchSampler sampler(dist, batch_tokens, seed);
  const double flops_rate = cost_model.cluster().flops_per_us();
  const double b_inter = cost_model.b_inter();
  const int64_t capacity = batch_tokens / world_size;

  for (int bi = 0; bi < num_batches; ++bi) {
    const Batch batch = sampler.NextBatch();
    // Pack per batch, then attribute each pack's costs to its sequences.
    const PackingPlanInfo info =
        PackSequences(batch.seq_lens, world_size, capacity, cost_model);
    for (const auto& pack : info.packs) {
      int64_t before = 0;  // Tokens preceding the sequence inside the pack.
      for (int64_t len : pack) {
        auto& bin = bins[BinIndex(bins, len)];
        bin.computation += cost_model.CausalAttentionFlops(len) / flops_rate;
        // Cross-sequence attention of this sequence against everything packed
        // before it — pure waste under a full causal mask.
        bin.redundant += cost_model.AttentionFlopsRect(len, before) / flops_rate;
        // Ulysses all-to-alls: Q+K+V in, hidden out, (g-1)/g leaves the rank
        // (g = SP group size, capped by the head count).
        const int g = UlyssesGroupSize(world_size, cost_model.model().num_heads);
        const int64_t a2a_bytes =
            (static_cast<int64_t>(cost_model.model().hidden_size) +
             2 * cost_model.model().kv_hidden() + cost_model.model().hidden_size) *
            cost_model.model().dtype_bytes * len;
        bin.communication += static_cast<double>(a2a_bytes) * (g - 1) / g * b_inter;
        before += len;
      }
    }
  }
  NormalizeBins(&bins);
  return bins;
}

std::vector<AttentionCostBin> AnalyzeEvenSplitCosts(const LengthDistribution& dist,
                                                    const CostModel& cost_model, int world_size,
                                                    int64_t batch_tokens, int num_batches,
                                                    uint64_t seed) {
  std::vector<AttentionCostBin> bins = MakeStandardBins();
  BatchSampler sampler(dist, batch_tokens, seed);
  const double flops_rate = cost_model.cluster().flops_per_us();
  const double b_inter = cost_model.b_inter();

  for (int bi = 0; bi < num_batches; ++bi) {
    const Batch batch = sampler.NextBatch();
    for (int64_t len : batch.seq_lens) {
      auto& bin = bins[BinIndex(bins, len)];
      bin.computation += cost_model.CausalAttentionFlops(len) / flops_rate;
      // Ring CP: each of the R ranks forwards its KV shard R-1 times; the
      // sequence's aggregate ring traffic is (R-1)/R * len * kv_bytes per
      // rank, serialized over the rounds at NIC bandwidth.
      const double ring_bytes = static_cast<double>(cost_model.KvBytesPerToken()) *
                                static_cast<double>(len) * (world_size - 1) / world_size;
      bin.communication += ring_bytes * b_inter;
    }
  }
  NormalizeBins(&bins);
  return bins;
}

}  // namespace zeppelin
