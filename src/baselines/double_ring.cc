#include "src/baselines/double_ring.h"

#include "src/comm/primitives.h"
#include "src/common/check.h"
#include "src/core/chunking.h"

namespace zeppelin {
namespace {

// Successor of `rank` in the hierarchical rotation at round `t`: inner
// rotation within the node for P-1 rounds, then an outer hop to the same
// local slot of the next node.
int Successor(const ClusterSpec& spec, int rank, int round) {
  const int p = spec.gpus_per_node;
  const bool outer = (round + 1) % p == 0 && spec.num_nodes > 1;
  const int node = spec.NodeOf(rank);
  const int local = spec.LocalOf(rank);
  if (outer) {
    return spec.GlobalRank((node + 1) % spec.num_nodes, local);
  }
  return spec.GlobalRank(node, (local + 1) % p);
}

}  // namespace

void DoubleRingStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                              const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  const ClusterSpec& spec = fabric.cluster();
  const int world = spec.world_size();
  const int64_t kv_bytes = cost_model.KvBytesPerToken();

  round_flops_.assign(world, std::vector<double>(world, 0.0));
  round_bytes_.assign(world, std::vector<int64_t>(world, 0));
  tokens_per_rank_.assign(world, 0);

  // Track which rank's original KV block each rank holds at each round by
  // simulating the rotation (the inverse permutation of Successor).
  std::vector<int> held(world);  // held[rank] = original owner of the block.
  for (int r = 0; r < world; ++r) {
    held[r] = r;
  }
  for (int64_t len : batch.seq_lens) {
    const std::vector<ChunkPair> assignment = BalancedChunkAssignment(len, world);
    std::vector<int> holder = held;  // Reset per sequence (same schedule).
    for (int t = 0; t < world; ++t) {
      for (int rank = 0; rank < world; ++rank) {
        const int owner = holder[rank];
        // Compute this round against the held block; forward it afterwards.
        const ChunkPair& q = assignment[rank];
        const ChunkPair& kv = assignment[owner];
        const int64_t q_ranges[2][2] = {{q.lo_begin, q.lo_end}, {q.hi_begin, q.hi_end}};
        const int64_t kv_ranges[2][2] = {{kv.lo_begin, kv.lo_end}, {kv.hi_begin, kv.hi_end}};
        double flops = 0;
        for (const auto& qr : q_ranges) {
          for (const auto& kr : kv_ranges) {
            flops += cost_model.CausalChunkFlops(qr[0], qr[1], kr[0], kr[1]);
          }
        }
        round_flops_[t][rank] += flops;
        if (t < world - 1) {
          round_bytes_[t][rank] += assignment[owner].tokens() * kv_bytes;
        }
      }
      // Rotate: every rank's block moves to its successor.
      std::vector<int> next(world);
      for (int rank = 0; rank < world; ++rank) {
        next[Successor(spec, rank, t)] = holder[rank];
      }
      holder = next;
    }
    for (int rank = 0; rank < world; ++rank) {
      tokens_per_rank_[rank] += assignment[rank].tokens();
    }
  }
}

std::vector<TaskId> DoubleRingStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const ClusterSpec& spec = fabric_->cluster();
  const int world = spec.world_size();
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  std::vector<TaskId> recv(world, kInvalidTask);
  std::vector<TaskId> last_compute(world, kInvalidTask);
  std::vector<TaskId> linear_first(world, kInvalidTask);

  auto emit_attention = [&](const std::vector<TaskId>& gate) {
    for (int t = 0; t < world; ++t) {
      std::vector<TaskId> next_recv(world, kInvalidTask);
      if (t < world - 1) {
        for (int rank = 0; rank < world; ++rank) {
          const int next = Successor(spec, rank, t);
          std::vector<TaskId> deps;
          if (t == 0) {
            if (gate[rank] != kInvalidTask) {
              deps = {gate[rank]};
            }
          } else {
            deps = {recv[rank]};
          }
          const int64_t bytes =
              static_cast<int64_t>(static_cast<double>(round_bytes_[t][rank]) * scale);
          next_recv[next] =
              AddP2PAuto(graph, *fabric_, rank, next, bytes, std::move(deps),
                         tag + ".dr.r" + std::to_string(t) + "." + std::to_string(rank));
        }
      }
      for (int rank = 0; rank < world; ++rank) {
        std::vector<TaskId> deps;
        if (t == 0) {
          if (gate[rank] != kInvalidTask) {
            deps = {gate[rank]};
          }
        } else {
          deps = {recv[rank]};
        }
        last_compute[rank] = graph.AddCompute(
            fabric_->ComputeLane(rank),
            cost_model_->ComputeTime(round_flops_[t][rank] * scale),
            TaskCategory::kAttentionCompute, std::move(deps),
            tag + ".dr.attn.r" + std::to_string(t) + "." + std::to_string(rank), rank);
      }
      recv = next_recv;
    }
  };

  if (direction == Direction::kForward) {
    emit_attention(std::vector<TaskId>(world, kInvalidTask));
    std::vector<TaskId> done(world);
    for (int rank = 0; rank < world; ++rank) {
      done[rank] = graph.AddCompute(fabric_->ComputeLane(rank),
                                    cost_model_->LinearTime(tokens_per_rank_[rank]) * scale,
                                    TaskCategory::kLinearCompute, {last_compute[rank]},
                                    tag + ".linear." + std::to_string(rank), rank);
    }
    return done;
  }

  for (int rank = 0; rank < world; ++rank) {
    linear_first[rank] = graph.AddCompute(
        fabric_->ComputeLane(rank), cost_model_->LinearTime(tokens_per_rank_[rank]) * scale,
        TaskCategory::kLinearCompute, {}, tag + ".linear." + std::to_string(rank), rank);
  }
  emit_attention(linear_first);
  return last_compute;
}

std::vector<int64_t> DoubleRingStrategy::LinearTokensPerRank() const { return tokens_per_rank_; }

}  // namespace zeppelin
