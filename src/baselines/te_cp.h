// Transformer Engine context parallelism baseline (§5 "TE CP").
//
// Every sequence is split evenly across *all* ranks on a single global ring
// with causal-balanced chunk pairs, and ring attention runs R rounds, each
// overlapping local attention with the KV send to the next rank. The node
// boundary hops cross the network through each boundary GPU's single affinity
// NIC — the bottleneck the paper's Fig. 12(a) measures at 2.18 ms per round —
// and the ring's reverse direction stays idle.
#ifndef SRC_BASELINES_TE_CP_H_
#define SRC_BASELINES_TE_CP_H_

#include <optional>
#include <vector>

#include "src/core/routing.h"
#include "src/core/strategy.h"

namespace zeppelin {

struct TeCpOptions {
  // When enabled, the node-boundary ring hops go through Zeppelin's
  // communication routing layer — the paper's Fig. 11 "w/ Routing" ablation
  // (routing applied to the TE CP execution pattern).
  RoutingOptions routing{.enabled = false};
};

class TeCpStrategy : public Strategy {
 public:
  explicit TeCpStrategy(TeCpOptions options = {}) : options_(options) {}

  std::string name() const override {
    return options_.routing.enabled ? "TE-CP[+routing]" : "TE-CP";
  }
  void Plan(const Batch& batch, const CostModel& cost_model,
            const FabricResources& fabric) override;
  std::vector<TaskId> EmitLayer(TaskGraph& graph, Direction direction) override;
  std::vector<int64_t> LinearTokensPerRank() const override;

 private:
  TeCpOptions options_;
  std::optional<RoutingLayer> routing_;
  const CostModel* cost_model_ = nullptr;
  const FabricResources* fabric_ = nullptr;
  Batch batch_;
  // Per (round, rank): attention FLOPs; per (round, rank): KV bytes to send.
  std::vector<std::vector<double>> round_flops_;
  std::vector<std::vector<int64_t>> round_bytes_;
  std::vector<int64_t> tokens_per_rank_;
};

}  // namespace zeppelin

#endif  // SRC_BASELINES_TE_CP_H_
