#include "src/baselines/hybrid_dp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/core/attention_engine.h"
#include "src/model/memory.h"

namespace zeppelin {

HybridDpStrategy::HybridDpStrategy(HybridDpOptions options) : options_(options) {}

int HybridDpStrategy::num_micro_batches() const {
  int total = 0;
  for (const auto& rank_mbs : micro_batches_) {
    total += static_cast<int>(rank_mbs.size());
  }
  return total;
}

void HybridDpStrategy::Plan(const Batch& batch, const CostModel& cost_model,
                            const FabricResources& fabric) {
  cost_model_ = &cost_model;
  fabric_ = &fabric;
  const ClusterSpec& spec = fabric.cluster();
  const int world = spec.world_size();
  const int p = spec.gpus_per_node;

  int64_t capacity = options_.token_capacity;
  if (capacity == 0) {
    // Same memory-headroom capacity rule as Zeppelin's partitioner.
    const int64_t average = (batch.total_tokens() + world - 1) / world;
    int64_t with_slack = average + average / 4;
    const int64_t memory_cap = TokenCapacity(cost_model.model(), spec, world);
    if (memory_cap > 0) {
      with_slack = std::min(with_slack, memory_cap);
    }
    capacity = std::max(average, with_slack);
  }

  auto seq_flops = [&](int64_t len) {
    return cost_model.CausalAttentionFlops(len) +
           cost_model.LinearFlopsPerToken() * static_cast<double>(len);
  };

  double total_flops = 0;
  for (int64_t len : batch.seq_lens) {
    total_flops += seq_flops(len);
  }
  const double budget = total_flops / world;

  std::vector<int> order(batch.seq_lens.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return batch.seq_lens[a] > batch.seq_lens[b]; });

  cp_rings_.clear();
  micro_batches_.assign(world, {});
  tokens_per_rank_.assign(world, 0);
  std::vector<double> rank_flops(world, 0.0);
  std::vector<std::vector<int64_t>> rank_seqs(world);  // DP sequences per rank.

  int cp_cursor = 0;  // Next rank offset for CP group placement.
  for (int id : order) {
    const int64_t len = batch.seq_lens[id];
    const double flops = seq_flops(len);
    if (flops > options_.cp_threshold * budget && world > 1) {
      // Context-parallel group, node-aligned: round the group size up to a
      // multiple of P when it crosses nodes (coarse model-level parallelism).
      int g = static_cast<int>(std::ceil(flops / budget));
      g = std::clamp(g, 2, world);
      if (g > p) {
        g = std::min(world, ((g + p - 1) / p) * p);
        cp_cursor = (cp_cursor + p - 1) / p * p % world;  // Node-align start.
      }
      RingSequence ring;
      ring.seq_id = id;
      ring.length = len;
      for (int i = 0; i < g; ++i) {
        ring.ranks.push_back((cp_cursor + i) % world);
      }
      ring.zone = spec.NodeOf(ring.ranks.front()) == spec.NodeOf(ring.ranks.back())
                      ? Zone::kIntraNode
                      : Zone::kInterNode;
      for (int i = 0; i < g; ++i) {
        const int rank = ring.ranks[i];
        rank_flops[rank] += flops / g;
        tokens_per_rank_[rank] += len * (i + 1) / g - len * i / g;
      }
      cp_cursor = (cp_cursor + g) % world;
      cp_rings_.push_back(std::move(ring));
    } else {
      // Plain DP: whole sequence onto the least-FLOP-loaded rank.
      const int rank = static_cast<int>(
          std::min_element(rank_flops.begin(), rank_flops.end()) - rank_flops.begin());
      rank_flops[rank] += flops;
      tokens_per_rank_[rank] += len;
      rank_seqs[rank].push_back(len);
    }
  }

  // Chunk each rank's DP sequences into micro-batches of <= capacity tokens.
  for (int rank = 0; rank < world; ++rank) {
    std::vector<int64_t> current;
    int64_t current_tokens = 0;
    for (int64_t len : rank_seqs[rank]) {
      // An individual DP sequence longer than capacity is itself chunked
      // (attention context resets per chunk — the accuracy cost the paper
      // attributes to chunking; we only model the performance side).
      int64_t remaining = len;
      while (remaining > 0) {
        const int64_t piece = std::min(remaining, capacity);
        if (current_tokens + piece > capacity && current_tokens > 0) {
          micro_batches_[rank].push_back(std::move(current));
          current = {};
          current_tokens = 0;
        }
        current.push_back(piece);
        current_tokens += piece;
        remaining -= piece;
      }
    }
    if (!current.empty()) {
      micro_batches_[rank].push_back(std::move(current));
    }
  }
}

std::vector<TaskId> HybridDpStrategy::EmitLayer(TaskGraph& graph, Direction direction) {
  ZCHECK(cost_model_ != nullptr) << "Plan() must run before EmitLayer()";
  const ClusterSpec& spec = fabric_->cluster();
  const int world = spec.world_size();
  const double scale = direction == Direction::kBackward ? kBackwardMultiplier : 1.0;
  const std::string tag = direction == Direction::kForward ? "fwd" : "bwd";

  // CP rings use plain ring attention (no routing layer — that is Zeppelin's
  // contribution).
  const RoutingLayer direct(*fabric_, RoutingOptions{.enabled = false});
  const AttentionEngine engine(*cost_model_, *fabric_, direct, AttentionEngineOptions{});

  std::vector<std::vector<TaskId>> last(world);
  for (const auto& ring : cp_rings_) {
    engine.EmitRingSequence(graph, ring, direction, {}, tag + ".cp.s" + std::to_string(ring.seq_id),
                            &last);
  }
  // CP ranks run their linear stage on their shard tokens.
  std::vector<TaskId> done(world, kInvalidTask);
  std::vector<int64_t> cp_tokens(world, 0);
  for (const auto& ring : cp_rings_) {
    const int g = ring.group_size();
    for (int i = 0; i < g; ++i) {
      cp_tokens[ring.ranks[i]] += ring.length * (i + 1) / g - ring.length * i / g;
    }
  }

  for (int rank = 0; rank < world; ++rank) {
    std::vector<TaskId> rank_tail = last[rank];
    if (cp_tokens[rank] > 0) {
      const TaskId gate = graph.AddBarrier(rank_tail, tag + ".cp_gate." + std::to_string(rank));
      rank_tail = {graph.AddCompute(fabric_->ComputeLane(rank),
                                    cost_model_->LinearTime(cp_tokens[rank]) * scale,
                                    TaskCategory::kLinearCompute, {gate},
                                    tag + ".cp_linear." + std::to_string(rank), rank)};
    }
    // DP micro-batches run serially after the CP share: attention kernel over
    // the micro-batch's packed sequences, then its linear modules.
    for (size_t mb = 0; mb < micro_batches_[rank].size(); ++mb) {
      double attn_flops = 0;
      int64_t mb_tokens = 0;
      for (int64_t len : micro_batches_[rank][mb]) {
        attn_flops += cost_model_->CausalAttentionFlops(len);
        mb_tokens += len;
      }
      const TaskId attn = graph.AddCompute(
          fabric_->ComputeLane(rank), cost_model_->ComputeTime(attn_flops * scale),
          TaskCategory::kAttentionCompute, rank_tail,
          tag + ".dp_attn.mb" + std::to_string(mb) + "." + std::to_string(rank), rank);
      const TaskId linear = graph.AddCompute(
          fabric_->ComputeLane(rank), cost_model_->LinearTime(mb_tokens) * scale,
          TaskCategory::kLinearCompute, {attn},
          tag + ".dp_linear.mb" + std::to_string(mb) + "." + std::to_string(rank), rank);
      rank_tail = {linear};
    }
    done[rank] = graph.AddBarrier(std::move(rank_tail), tag + ".done." + std::to_string(rank));
  }
  return done;
}

std::vector<int64_t> HybridDpStrategy::LinearTokensPerRank() const { return tokens_per_rank_; }

}  // namespace zeppelin
