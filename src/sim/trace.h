// Post-run schedule analysis: per-category summaries, NIC utilization, and a
// textual timeline report. Backs the reproduction of Fig. 12 (timeline
// analysis) and the NIC-utilization claims of §3.3.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <array>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

struct CategorySummary {
  int task_count = 0;
  double total_us = 0;  // Sum of task durations (not resource-seconds).
  double mean_us = 0;
  double max_us = 0;
};

// One summary per TaskCategory, indexed by static_cast<int>(category).
std::array<CategorySummary, kNumTaskCategories> SummarizeByCategory(const TaskGraph& graph,
                                                                    const SimResult& result);

struct NicUtilization {
  int node = 0;
  int nic = 0;
  double tx_busy_us = 0;
  double rx_busy_us = 0;
  double tx_utilization = 0;  // Busy / makespan.
  double rx_utilization = 0;
};

std::vector<NicUtilization> ComputeNicUtilization(const FabricResources& fabric,
                                                  const SimResult& result);

// Mean utilization over all NIC directional channels — the paper's
// "fully utilize all NICs" metric (1.0 = every NIC busy both ways, always).
double MeanNicUtilization(const FabricResources& fabric, const SimResult& result);

// Multi-line human-readable report: makespan, category table, NIC table.
std::string FormatTimelineReport(const TaskGraph& graph, const FabricResources& fabric,
                                 const SimResult& result);

}  // namespace zeppelin

#endif  // SRC_SIM_TRACE_H_
