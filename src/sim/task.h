// Task model for the discrete-event cluster simulator.
//
// A training step is expressed as a DAG of tasks. Each task occupies a set of
// fabric resources (compute lanes, NVSwitch channels, NIC channels) for its
// whole duration; resources serialize tasks FIFO in program order, which is
// how CUDA streams and NCCL channels behave. The simulator executes the DAG
// and reports the makespan plus per-resource utilization — the schedule-level
// quantities all of the paper's comparisons are about.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/path.h"

namespace zeppelin {

using TaskId = int32_t;
inline constexpr TaskId kInvalidTask = -1;

enum class TaskCategory : uint8_t {
  kAttentionCompute = 0,
  kLinearCompute,
  kOtherCompute,
  kIntraComm,     // NVSwitch point-to-point.
  kInterComm,     // NIC point-to-point.
  kDispatchComm,  // Routing layer step 1 (intra-node scatter to proxies).
  kCombineComm,   // Routing layer step 3 (intra-node gather from proxies).
  kRemapComm,     // Remapping layer all-to-allv traffic.
  kBarrier,
};
inline constexpr int kNumTaskCategories = 9;

const char* TaskCategoryName(TaskCategory category);

// True for the communication categories (anything that moves bytes).
bool IsCommCategory(TaskCategory category);

struct Task {
  double duration_us = 0;
  TaskCategory category = TaskCategory::kBarrier;
  // Resources occupied for the full duration (empty => pure scheduling node).
  std::vector<ResourceId> resources;
  std::vector<TaskId> deps;
  int64_t bytes = 0;  // For transfers.
  int gpu = -1;       // Owning GPU (compute) or source GPU (transfers).
  std::string label;
};

}  // namespace zeppelin

#endif  // SRC_SIM_TASK_H_
