#include "src/sim/validate.h"

#include <algorithm>
#include <sstream>

namespace zeppelin {
namespace {

constexpr double kEps = 1e-9;

std::string Describe(const TaskGraph& graph, TaskId id) {
  std::ostringstream out;
  out << "task " << id;
  if (!graph.task(id).label.empty()) {
    out << " ('" << graph.task(id).label << "')";
  }
  return out.str();
}

}  // namespace

std::vector<ScheduleViolation> ValidateSchedule(const TaskGraph& graph, const SimResult& result,
                                                int num_resources) {
  std::vector<ScheduleViolation> violations;
  const int n = graph.size();

  if (static_cast<int>(result.start_us.size()) != n ||
      static_cast<int>(result.finish_us.size()) != n) {
    violations.push_back({kInvalidTask, "result arrays do not match graph size"});
    return violations;
  }

  // 1. Completion and duration consistency.
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = graph.task(id);
    if (result.start_us[id] < 0 || result.finish_us[id] < 0) {
      violations.push_back({id, Describe(graph, id) + " never ran"});
      continue;
    }
    const double expected = result.start_us[id] + t.duration_us;
    if (std::abs(result.finish_us[id] - expected) > kEps) {
      violations.push_back({id, Describe(graph, id) + " finish != start + duration"});
    }
  }

  // 2. Dependencies.
  for (TaskId id = 0; id < n; ++id) {
    for (TaskId dep : graph.task(id).deps) {
      if (result.start_us[id] + kEps < result.finish_us[dep]) {
        violations.push_back(
            {id, Describe(graph, id) + " started before dependency " + std::to_string(dep)});
      }
    }
  }

  // 3. Resource exclusivity: collect per-resource intervals and sort.
  std::vector<std::vector<std::pair<double, TaskId>>> intervals(num_resources);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = graph.task(id);
    if (t.duration_us <= 0) {
      continue;  // Zero-length tasks cannot overlap anything.
    }
    for (ResourceId r : t.resources) {
      if (r < 0 || r >= num_resources) {
        violations.push_back({id, Describe(graph, id) + " uses out-of-range resource"});
        continue;
      }
      intervals[r].emplace_back(result.start_us[id], id);
    }
  }
  for (int r = 0; r < num_resources; ++r) {
    auto& slots = intervals[r];
    std::sort(slots.begin(), slots.end());
    for (size_t i = 1; i < slots.size(); ++i) {
      const TaskId prev = slots[i - 1].second;
      const double prev_end = result.finish_us[prev];
      if (slots[i].first + kEps < prev_end) {
        violations.push_back({slots[i].second,
                              Describe(graph, slots[i].second) + " overlaps task " +
                                  std::to_string(prev) + " on resource " + std::to_string(r)});
      }
    }
  }

  // 4. Weak FIFO: for two tasks sharing a resource with a < b (program
  // order), if b started strictly before a *and* a was already ready (all
  // deps finished) at b's start, the engine jumped the queue.
  for (int r = 0; r < num_resources; ++r) {
    const auto& slots = intervals[r];
    for (size_t i = 0; i < slots.size(); ++i) {
      for (size_t j = 0; j < slots.size(); ++j) {
        const TaskId a = slots[i].second;
        const TaskId b = slots[j].second;
        if (a >= b || result.start_us[b] + kEps >= result.start_us[a]) {
          continue;  // Need a < b (program order) with b starting first.
        }
        double a_ready = 0;
        for (TaskId dep : graph.task(a).deps) {
          a_ready = std::max(a_ready, result.finish_us[dep]);
        }
        if (a_ready + kEps < result.start_us[b]) {
          // `a` was ready and waiting, but only matters if it was actually
          // admissible: multi-resource tasks may legitimately wait on another
          // resource. Only flag single-resource tasks, where admission is
          // unambiguous.
          if (graph.task(a).resources.size() == 1) {
            violations.push_back({b, Describe(graph, b) + " overtook ready task " +
                                         std::to_string(a) + " on resource " +
                                         std::to_string(r)});
          }
        }
      }
    }
  }

  return violations;
}

bool IsLegalSchedule(const TaskGraph& graph, const SimResult& result, int num_resources) {
  return ValidateSchedule(graph, result, num_resources).empty();
}

}  // namespace zeppelin
