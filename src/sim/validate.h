// Schedule validation: checks that a SimResult is a *legal* execution of its
// TaskGraph. Used by the property/fuzz tests and available to users as a
// debugging aid when building custom strategies.
//
// A legal schedule satisfies:
//   1. every task ran (start/finish recorded, finish = start + duration);
//   2. no task started before all of its dependencies finished;
//   3. no two tasks overlap on any resource (resources are exclusive);
//   4. per-resource admission is FIFO in program order among tasks that were
//      ready when the resource chose (weak FIFO: a task may not start while
//      an earlier-id task on the same resource is ready-and-waiting).
#ifndef SRC_SIM_VALIDATE_H_
#define SRC_SIM_VALIDATE_H_

#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/graph.h"

namespace zeppelin {

struct ScheduleViolation {
  TaskId task = kInvalidTask;
  std::string description;
};

// Returns all violations found (empty = legal schedule).
std::vector<ScheduleViolation> ValidateSchedule(const TaskGraph& graph, const SimResult& result,
                                                int num_resources);

// Convenience: true when ValidateSchedule finds nothing.
bool IsLegalSchedule(const TaskGraph& graph, const SimResult& result, int num_resources);

}  // namespace zeppelin

#endif  // SRC_SIM_VALIDATE_H_
