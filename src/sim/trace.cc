#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

#include "src/common/stats.h"
#include "src/common/table.h"

namespace zeppelin {

std::array<CategorySummary, kNumTaskCategories> SummarizeByCategory(const TaskGraph& graph,
                                                                    const SimResult& result) {
  std::array<CategorySummary, kNumTaskCategories> out{};
  (void)result;
  for (const Task& t : graph.tasks()) {
    auto& s = out[static_cast<int>(t.category)];
    ++s.task_count;
    s.total_us += t.duration_us;
    s.max_us = std::max(s.max_us, t.duration_us);
  }
  for (auto& s : out) {
    if (s.task_count > 0) {
      s.mean_us = s.total_us / s.task_count;
    }
  }
  return out;
}

std::vector<NicUtilization> ComputeNicUtilization(const FabricResources& fabric,
                                                  const SimResult& result) {
  const ClusterSpec& spec = fabric.cluster();
  std::vector<NicUtilization> out;
  for (int node = 0; node < spec.num_nodes; ++node) {
    for (int nic = 0; nic < spec.nics_per_node; ++nic) {
      NicUtilization u;
      u.node = node;
      u.nic = nic;
      u.tx_busy_us = result.ResourceBusy(fabric.NicTx(node, nic));
      u.rx_busy_us = result.ResourceBusy(fabric.NicRx(node, nic));
      if (result.makespan_us > 0) {
        u.tx_utilization = u.tx_busy_us / result.makespan_us;
        u.rx_utilization = u.rx_busy_us / result.makespan_us;
      }
      out.push_back(u);
    }
  }
  return out;
}

double MeanNicUtilization(const FabricResources& fabric, const SimResult& result) {
  const auto nics = ComputeNicUtilization(fabric, result);
  if (nics.empty()) {
    return 0;
  }
  double total = 0;
  for (const auto& u : nics) {
    total += 0.5 * (u.tx_utilization + u.rx_utilization);
  }
  return total / static_cast<double>(nics.size());
}

std::string FormatTimelineReport(const TaskGraph& graph, const FabricResources& fabric,
                                 const SimResult& result) {
  std::ostringstream out;
  out << "makespan: " << FormatDouble(result.makespan_us, 1) << " us over " << graph.size()
      << " tasks\n";

  Table cat_table({"category", "tasks", "total_ms", "mean_us", "max_us"});
  const auto cats = SummarizeByCategory(graph, result);
  for (int c = 0; c < kNumTaskCategories; ++c) {
    if (cats[c].task_count == 0) {
      continue;
    }
    cat_table.AddRow({TaskCategoryName(static_cast<TaskCategory>(c)),
                      Table::Cell(static_cast<int64_t>(cats[c].task_count)),
                      Table::Cell(cats[c].total_us / 1000.0, 3), Table::Cell(cats[c].mean_us, 1),
                      Table::Cell(cats[c].max_us, 1)});
  }
  out << cat_table.ToString();

  Table nic_table({"nic", "tx_util", "rx_util"});
  for (const auto& u : ComputeNicUtilization(fabric, result)) {
    nic_table.AddRow({"n" + std::to_string(u.node) + ".nic" + std::to_string(u.nic),
                      Table::Cell(u.tx_utilization, 3), Table::Cell(u.rx_utilization, 3)});
  }
  out << nic_table.ToString();
  return out.str();
}

}  // namespace zeppelin
