#include "src/sim/engine.h"

#include <algorithm>
#include <queue>
#include <set>

#include "src/common/check.h"

namespace zeppelin {

double SimResult::CategoryBusy(TaskCategory category) const {
  double total = 0;
  for (const auto& u : usage) {
    total += u.by_category[static_cast<int>(category)];
  }
  return total;
}

double SimResult::ResourceBusy(ResourceId id) const {
  ZCHECK(id >= 0 && static_cast<size_t>(id) < usage.size());
  return usage[id].busy_us;
}

double SimResult::Utilization(ResourceId id) const {
  if (makespan_us == 0) {
    return 0;
  }
  return ResourceBusy(id) / makespan_us;
}

SimResult Engine::Run(const TaskGraph& graph, ChromeTraceWriter* trace) const {
  const int n = graph.size();
  const int num_resources = fabric_->num_resources();

  SimResult result;
  result.start_us.assign(n, -1.0);
  result.finish_us.assign(n, -1.0);
  result.usage.assign(num_resources, ResourceUsage{});

  std::vector<int> remaining_deps(n, 0);
  std::vector<std::vector<TaskId>> dependents(n);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = graph.task(id);
    remaining_deps[id] = static_cast<int>(t.deps.size());
    for (TaskId dep : t.deps) {
      dependents[dep].push_back(id);
    }
  }

  // Waiting queues in program order — the FIFO admission discipline.
  std::vector<std::set<TaskId>> waiting(num_resources);
  std::vector<bool> busy(num_resources, false);

  // Completion events: (time, task). Ties resolved by task id for determinism.
  using Event = std::pair<double, TaskId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> completions;

  // Resources that might be able to admit a task.
  std::vector<ResourceId> dirty;
  dirty.reserve(64);

  auto schedule_completion = [&](TaskId id, double start) {
    const Task& t = graph.task(id);
    result.start_us[id] = start;
    const double finish = start + t.duration_us;
    completions.emplace(finish, id);
  };

  auto make_ready = [&](TaskId id, double now) {
    const Task& t = graph.task(id);
    if (t.resources.empty()) {
      schedule_completion(id, now);  // Barrier / free transfer: runs instantly.
      return;
    }
    for (ResourceId r : t.resources) {
      ZCHECK(r >= 0 && r < num_resources) << "resource=" << r;
      waiting[r].insert(id);
      dirty.push_back(r);
    }
  };

  auto try_start = [&](double now) {
    while (!dirty.empty()) {
      const ResourceId r = dirty.back();
      dirty.pop_back();
      if (busy[r] || waiting[r].empty()) {
        continue;
      }
      const TaskId head = *waiting[r].begin();
      const Task& t = graph.task(head);
      bool can_start = true;
      for (ResourceId tr : t.resources) {
        if (busy[tr] || waiting[tr].empty() || *waiting[tr].begin() != head) {
          can_start = false;
          break;
        }
      }
      if (!can_start) {
        continue;
      }
      for (ResourceId tr : t.resources) {
        busy[tr] = true;
        waiting[tr].erase(waiting[tr].begin());
        result.usage[tr].busy_us += t.duration_us;
        result.usage[tr].by_category[static_cast<int>(t.category)] += t.duration_us;
        if (trace != nullptr && t.duration_us > 0) {
          TraceEvent ev;
          ev.name = t.label.empty() ? TaskCategoryName(t.category) : t.label;
          ev.category = TaskCategoryName(t.category);
          ev.start_us = now;
          ev.duration_us = t.duration_us;
          ev.pid = fabric_->ResourceNode(tr);
          ev.tid = tr;
          trace->Add(ev);
        }
      }
      schedule_completion(head, now);
      // Freed queue heads may unblock other tasks on these resources later;
      // nothing to re-check until completion. (Start consumed the heads.)
    }
  };

  // Seed: tasks with no dependencies are ready at t = 0.
  int completed = 0;
  for (TaskId id = 0; id < n; ++id) {
    if (remaining_deps[id] == 0) {
      make_ready(id, 0.0);
    }
  }
  try_start(0.0);

  while (!completions.empty()) {
    const double now = completions.top().first;
    // Drain all completions at `now` before admitting new work, so admission
    // sees a consistent resource picture.
    while (!completions.empty() && completions.top().first == now) {
      const TaskId id = completions.top().second;
      completions.pop();
      const Task& t = graph.task(id);
      result.finish_us[id] = now;
      result.makespan_us = std::max(result.makespan_us, now);
      ++completed;
      for (ResourceId r : t.resources) {
        busy[r] = false;
        dirty.push_back(r);
      }
      for (TaskId dep : dependents[id]) {
        if (--remaining_deps[dep] == 0) {
          make_ready(dep, now);
        }
      }
    }
    try_start(now);
  }

  ZCHECK_EQ(completed, n) << "deadlock or dangling dependency: " << (n - completed)
                          << " tasks never ran";
  if (trace != nullptr) {
    for (ResourceId r = 0; r < num_resources; ++r) {
      trace->NameThread(fabric_->ResourceNode(r), r, fabric_->ResourceName(r));
    }
  }
  return result;
}

}  // namespace zeppelin
