#include "src/sim/graph.h"

#include <limits>

#include "src/common/check.h"

namespace zeppelin {

const char* TaskCategoryName(TaskCategory category) {
  switch (category) {
    case TaskCategory::kAttentionCompute:
      return "attention_compute";
    case TaskCategory::kLinearCompute:
      return "linear_compute";
    case TaskCategory::kOtherCompute:
      return "other_compute";
    case TaskCategory::kIntraComm:
      return "intra_comm";
    case TaskCategory::kInterComm:
      return "inter_comm";
    case TaskCategory::kDispatchComm:
      return "dispatch_comm";
    case TaskCategory::kCombineComm:
      return "combine_comm";
    case TaskCategory::kRemapComm:
      return "remap_comm";
    case TaskCategory::kBarrier:
      return "barrier";
  }
  return "unknown";
}

bool IsCommCategory(TaskCategory category) {
  switch (category) {
    case TaskCategory::kIntraComm:
    case TaskCategory::kInterComm:
    case TaskCategory::kDispatchComm:
    case TaskCategory::kCombineComm:
    case TaskCategory::kRemapComm:
      return true;
    default:
      return false;
  }
}

TaskId TaskGraph::Push(Task task) {
  ZCHECK_GE(task.duration_us, 0.0);
  for (TaskId dep : task.deps) {
    ZCHECK(dep >= 0 && dep < size()) << "dep=" << dep << " out of range (forward deps only)";
  }
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskId TaskGraph::AddCompute(ResourceId lane, double duration_us, TaskCategory category,
                             std::vector<TaskId> deps, std::string label, int gpu) {
  Task t;
  t.duration_us = duration_us;
  t.category = category;
  t.resources = {lane};
  t.deps = std::move(deps);
  t.gpu = gpu;
  t.label = std::move(label);
  return Push(std::move(t));
}

TaskId TaskGraph::AddTransfer(const TransferPath& path, int64_t bytes, TaskCategory category,
                              std::vector<TaskId> deps, std::string label, int src_gpu) {
  ZCHECK_GE(bytes, 0);
  Task t;
  t.category = category;
  t.resources = path.resources;
  t.deps = std::move(deps);
  t.bytes = bytes;
  t.gpu = src_gpu;
  t.label = std::move(label);
  if (path.resources.empty()) {
    t.duration_us = 0;  // Same-device: free.
  } else {
    ZCHECK_GT(path.bandwidth, 0.0);
    t.duration_us = static_cast<double>(bytes) / path.bandwidth + path.latency_us;
  }
  return Push(std::move(t));
}

TaskId TaskGraph::AddBarrier(std::vector<TaskId> deps, std::string label) {
  Task t;
  t.category = TaskCategory::kBarrier;
  t.deps = std::move(deps);
  t.label = std::move(label);
  return Push(std::move(t));
}

const Task& TaskGraph::task(TaskId id) const {
  ZCHECK(id >= 0 && id < size()) << "task id=" << id;
  return tasks_[id];
}

}  // namespace zeppelin
