// Discrete-event execution engine.
//
// Executes a TaskGraph against the fabric resources of a cluster:
//  - a task becomes *ready* when all its dependencies have finished;
//  - ready tasks wait on every resource they occupy; each resource admits
//    waiting tasks in program order (task id), FIFO like a CUDA stream;
//  - a task *starts* when it is at the head of all its resources' queues and
//    all of them are idle, and occupies them for its whole duration.
//
// The policy is deterministic: identical graphs produce identical schedules.
// Head-of-line blocking across resources is intentional — it is exactly the
// behaviour of NCCL channels and of kernels queued on a stream, and it is
// what produces the idle "bubbles" the paper's Fig. 12 discusses.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <array>
#include <vector>

#include "src/common/trace_json.h"
#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

struct ResourceUsage {
  double busy_us = 0;
  std::array<double, kNumTaskCategories> by_category{};
};

struct SimResult {
  double makespan_us = 0;
  std::vector<double> start_us;   // Per task.
  std::vector<double> finish_us;  // Per task.
  std::vector<ResourceUsage> usage;  // Per resource.

  // Total busy time across all resources for a category (resource-seconds).
  double CategoryBusy(TaskCategory category) const;
  // Busy time of one resource.
  double ResourceBusy(ResourceId id) const;
  // Fraction of makespan the resource was busy.
  double Utilization(ResourceId id) const;
};

class Engine {
 public:
  explicit Engine(const FabricResources& fabric) : fabric_(&fabric) {}

  // Runs the whole graph from t = 0. If `trace` is non-null, emits one
  // chrome-trace slice per (task, resource) occupancy, lanes grouped by node.
  SimResult Run(const TaskGraph& graph, ChromeTraceWriter* trace = nullptr) const;

 private:
  const FabricResources* fabric_;
};

}  // namespace zeppelin

#endif  // SRC_SIM_ENGINE_H_
