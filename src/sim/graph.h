// TaskGraph: builder for simulator DAGs.
//
// Program order matters: when several tasks wait on the same resource, the
// one added first runs first (FIFO, like work issued to a CUDA stream).
// Strategies therefore emit tasks in their intended per-resource execution
// order — e.g. Zeppelin's attention engine adds the inter-node queue before
// the intra-node queue before the local queue (§3.2).
#ifndef SRC_SIM_GRAPH_H_
#define SRC_SIM_GRAPH_H_

#include <string>
#include <vector>

#include "src/sim/task.h"
#include "src/topology/path.h"

namespace zeppelin {

class TaskGraph {
 public:
  // Compute kernel occupying a single lane.
  TaskId AddCompute(ResourceId lane, double duration_us, TaskCategory category,
                    std::vector<TaskId> deps, std::string label, int gpu);

  // Point-to-point transfer along a resolved path. Duration is
  // bytes / path.bandwidth + path.latency. A same-GPU path (no resources)
  // completes instantly and merely propagates dependencies.
  TaskId AddTransfer(const TransferPath& path, int64_t bytes, TaskCategory category,
                     std::vector<TaskId> deps, std::string label, int src_gpu);

  // Zero-duration scheduling node; handy for fan-in/fan-out points.
  TaskId AddBarrier(std::vector<TaskId> deps, std::string label = "barrier");

  // Escape hatch for composite operations (e.g. a bulk collective occupying
  // many channels at once): the caller fills the Task fields directly.
  TaskId AddTransferLike(Task task) { return Push(std::move(task)); }

  const Task& task(TaskId id) const;
  int size() const { return static_cast<int>(tasks_.size()); }
  const std::vector<Task>& tasks() const { return tasks_; }

 private:
  TaskId Push(Task task);

  std::vector<Task> tasks_;
};

}  // namespace zeppelin

#endif  // SRC_SIM_GRAPH_H_
