#include "src/comm/collectives.h"

#include "src/comm/primitives.h"
#include "src/common/check.h"

namespace zeppelin {
namespace {

std::vector<TaskId> DepsFor(const std::vector<std::vector<TaskId>>& deps, size_t k) {
  if (deps.empty()) {
    return {};
  }
  ZCHECK_LT(k, deps.size());
  return deps[k];
}

}  // namespace

CollectiveResult RingAllGather(TaskGraph& graph, const FabricResources& fabric,
                               const std::vector<int>& ranks,
                               const std::vector<int64_t>& bytes_per_rank,
                               TaskCategory category, const std::vector<std::vector<TaskId>>& deps,
                               const std::string& label) {
  const int r = static_cast<int>(ranks.size());
  ZCHECK_GT(r, 0);
  ZCHECK_EQ(bytes_per_rank.size(), ranks.size());

  CollectiveResult result;
  result.done.resize(r, kInvalidTask);
  if (r == 1) {
    result.done[0] = graph.AddBarrier(DepsFor(deps, 0), label + ".done");
    return result;
  }

  // In round t, rank k forwards the chunk originally contributed by rank
  // (k - t) mod r to rank (k + 1) mod r. After r-1 rounds everyone has all
  // chunks. prev_recv[k] is the transfer whose arrival rank k forwards next.
  std::vector<TaskId> prev_recv(r, kInvalidTask);
  std::vector<std::vector<TaskId>> recvs(r);
  for (int t = 0; t < r - 1; ++t) {
    std::vector<TaskId> this_recv(r, kInvalidTask);
    for (int k = 0; k < r; ++k) {
      const int next = (k + 1) % r;
      const int chunk_owner = ((k - t) % r + r) % r;
      std::vector<TaskId> send_deps;
      if (t == 0) {
        send_deps = DepsFor(deps, k);
      } else {
        send_deps = {prev_recv[k]};
      }
      const TaskId xfer = AddP2P(graph, fabric, ranks[k], ranks[next],
                                 bytes_per_rank[chunk_owner], category, std::move(send_deps),
                                 label + ".ag.r" + std::to_string(t) + "." + std::to_string(k) +
                                     "->" + std::to_string(next));
      this_recv[next] = xfer;
      recvs[next].push_back(xfer);
    }
    prev_recv = this_recv;
  }
  for (int k = 0; k < r; ++k) {
    std::vector<TaskId> all = recvs[k];
    for (TaskId d : DepsFor(deps, k)) {
      all.push_back(d);
    }
    result.done[k] = graph.AddBarrier(std::move(all), label + ".done." + std::to_string(k));
  }
  return result;
}

CollectiveResult AllToAllV(TaskGraph& graph, const FabricResources& fabric,
                           const std::vector<int>& ranks,
                           const std::vector<std::vector<int64_t>>& sends, TaskCategory category,
                           const std::vector<std::vector<TaskId>>& deps,
                           const std::string& label) {
  const int r = static_cast<int>(ranks.size());
  ZCHECK_GT(r, 0);
  ZCHECK_EQ(sends.size(), ranks.size());

  std::vector<std::vector<TaskId>> incoming(r);
  for (int i = 0; i < r; ++i) {
    ZCHECK_EQ(sends[i].size(), ranks.size());
    for (int j = 0; j < r; ++j) {
      if (i == j || sends[i][j] == 0) {
        continue;
      }
      const TaskId xfer = AddP2P(graph, fabric, ranks[i], ranks[j], sends[i][j], category,
                                 DepsFor(deps, i),
                                 label + ".a2a." + std::to_string(i) + "->" + std::to_string(j));
      incoming[j].push_back(xfer);
    }
  }
  CollectiveResult result;
  result.done.resize(r, kInvalidTask);
  for (int k = 0; k < r; ++k) {
    std::vector<TaskId> all = incoming[k];
    for (TaskId d : DepsFor(deps, k)) {
      all.push_back(d);
    }
    result.done[k] = graph.AddBarrier(std::move(all), label + ".done." + std::to_string(k));
  }
  return result;
}

CollectiveResult RingAllReduce(TaskGraph& graph, const FabricResources& fabric,
                               const std::vector<int>& ranks, int64_t bytes,
                               TaskCategory category, const std::vector<std::vector<TaskId>>& deps,
                               const std::string& label) {
  const int r = static_cast<int>(ranks.size());
  ZCHECK_GT(r, 0);
  CollectiveResult result;
  result.done.resize(r, kInvalidTask);
  if (r == 1) {
    result.done[0] = graph.AddBarrier(DepsFor(deps, 0), label + ".done");
    return result;
  }

  const int64_t chunk = (bytes + r - 1) / r;
  std::vector<TaskId> prev(r, kInvalidTask);
  // Reduce-scatter then all-gather: 2(r-1) uniform ring steps.
  for (int t = 0; t < 2 * (r - 1); ++t) {
    std::vector<TaskId> this_recv(r, kInvalidTask);
    for (int k = 0; k < r; ++k) {
      const int next = (k + 1) % r;
      std::vector<TaskId> send_deps;
      if (t == 0) {
        send_deps = DepsFor(deps, k);
      } else {
        send_deps = {prev[k]};
      }
      const TaskId xfer =
          AddP2P(graph, fabric, ranks[k], ranks[next], chunk, category, std::move(send_deps),
                 label + ".ar.r" + std::to_string(t) + "." + std::to_string(k));
      this_recv[next] = xfer;
    }
    prev = this_recv;
  }
  for (int k = 0; k < r; ++k) {
    result.done[k] = graph.AddBarrier({prev[k]}, label + ".done." + std::to_string(k));
  }
  return result;
}

}  // namespace zeppelin
