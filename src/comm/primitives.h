// Point-to-point communication primitives on the simulated fabric.
//
// Thin helpers that resolve a (src GPU, dst GPU, optional NIC override) into a
// fabric path and append the transfer to a TaskGraph. The NIC override is the
// hook the routing layer (§3.3) uses to disaggregate GPU->NIC affinity:
// a proxy rank can push traffic through *its* NIC on behalf of another GPU.
#ifndef SRC_COMM_PRIMITIVES_H_
#define SRC_COMM_PRIMITIVES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

// Category automatically derived from the path (intra vs inter) when the
// caller passes TaskCategory::kBarrier as a sentinel... callers should be
// explicit; use DefaultCommCategory for the common case.
TaskCategory DefaultCommCategory(const TransferPath& path);

// Adds a point-to-point copy of `bytes` from src_gpu to dst_gpu.
// Returns the transfer task id (dependency handle for the receive side).
TaskId AddP2P(TaskGraph& graph, const FabricResources& fabric, int src_gpu, int dst_gpu,
              int64_t bytes, TaskCategory category, std::vector<TaskId> deps, std::string label,
              int src_nic = -1, int dst_nic = -1);

// Same, but picks the category from the resolved path.
TaskId AddP2PAuto(TaskGraph& graph, const FabricResources& fabric, int src_gpu, int dst_gpu,
                  int64_t bytes, std::vector<TaskId> deps, std::string label, int src_nic = -1,
                  int dst_nic = -1);

}  // namespace zeppelin

#endif  // SRC_COMM_PRIMITIVES_H_
