// Collective communication built from point-to-point transfers.
//
// These are the collectives the baselines and the remapping layer rely on:
//  - RingAllGather: LLaMA CP's KV all-gather (§5 baseline: "KV activations
//    are all-gathered across devices prior to attention computation").
//  - AllToAllV: the remapping layer's dynamic-shape exchange (§3.4) and
//    Ulysses-style head/sequence switches.
//  - RingAllReduce: data-parallel gradient synchronization.
// All of them return one "done" dependency handle per participating rank.
#ifndef SRC_COMM_COLLECTIVES_H_
#define SRC_COMM_COLLECTIVES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/graph.h"
#include "src/topology/path.h"

namespace zeppelin {

struct CollectiveResult {
  // done[k]: task that completes when ranks[k] holds its final data.
  std::vector<TaskId> done;
};

// Ring all-gather: after completion every rank holds all ranks' chunks.
// bytes_per_rank[k] is the chunk contributed by ranks[k]; deps[k] gates the
// first send from ranks[k] (pass {} when data is ready at t=0).
CollectiveResult RingAllGather(TaskGraph& graph, const FabricResources& fabric,
                               const std::vector<int>& ranks,
                               const std::vector<int64_t>& bytes_per_rank,
                               TaskCategory category, const std::vector<std::vector<TaskId>>& deps,
                               const std::string& label);

// Pairwise all-to-allv: sends[i][j] bytes move from ranks[i] to ranks[j].
// All pairs are issued concurrently; fabric channels serialize them.
CollectiveResult AllToAllV(TaskGraph& graph, const FabricResources& fabric,
                           const std::vector<int>& ranks,
                           const std::vector<std::vector<int64_t>>& sends, TaskCategory category,
                           const std::vector<std::vector<TaskId>>& deps, const std::string& label);

// Ring all-reduce of `bytes` (reduce-scatter + all-gather, 2(R-1) steps of
// bytes/R chunks).
CollectiveResult RingAllReduce(TaskGraph& graph, const FabricResources& fabric,
                               const std::vector<int>& ranks, int64_t bytes,
                               TaskCategory category, const std::vector<std::vector<TaskId>>& deps,
                               const std::string& label);

}  // namespace zeppelin

#endif  // SRC_COMM_COLLECTIVES_H_
