#include "src/comm/primitives.h"

namespace zeppelin {

TaskCategory DefaultCommCategory(const TransferPath& path) {
  return path.crosses_node ? TaskCategory::kInterComm : TaskCategory::kIntraComm;
}

TaskId AddP2P(TaskGraph& graph, const FabricResources& fabric, int src_gpu, int dst_gpu,
              int64_t bytes, TaskCategory category, std::vector<TaskId> deps, std::string label,
              int src_nic, int dst_nic) {
  const TransferPath path = fabric.Resolve(src_gpu, dst_gpu, src_nic, dst_nic);
  return graph.AddTransfer(path, bytes, category, std::move(deps), std::move(label), src_gpu);
}

TaskId AddP2PAuto(TaskGraph& graph, const FabricResources& fabric, int src_gpu, int dst_gpu,
                  int64_t bytes, std::vector<TaskId> deps, std::string label, int src_nic,
                  int dst_nic) {
  const TransferPath path = fabric.Resolve(src_gpu, dst_gpu, src_nic, dst_nic);
  return graph.AddTransfer(path, bytes, DefaultCommCategory(path), std::move(deps),
                           std::move(label), src_gpu);
}

}  // namespace zeppelin
