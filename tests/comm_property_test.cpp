// Property sweeps over the collective library: volume conservation, schedule
// legality, and duplex independence across cluster shapes and rank subsets.
#include <gtest/gtest.h>

#include <numeric>

#include "src/comm/collectives.h"
#include "src/common/rng.h"
#include "src/sim/validate.h"

namespace zeppelin {
namespace {

int64_t CategoryBytes(const TaskGraph& g) {
  int64_t total = 0;
  for (const Task& t : g.tasks()) {
    if (IsCommCategory(t.category)) {
      total += t.bytes;
    }
  }
  return total;
}

class CollectivePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivePropertyTest, AllGatherVolumeAndLegality) {
  Rng rng(GetParam());
  const int nodes = 1 + static_cast<int>(rng.NextBounded(3));
  const FabricResources fabric(MakeClusterA(nodes));
  const Engine engine(fabric);

  // Random rank subset of size >= 1.
  const int world = fabric.cluster().world_size();
  const int r = 1 + static_cast<int>(rng.NextBounded(std::min(world, 8)));
  std::vector<int> ranks;
  std::vector<bool> used(world, false);
  while (static_cast<int>(ranks.size()) < r) {
    const int candidate = static_cast<int>(rng.NextBounded(world));
    if (!used[candidate]) {
      used[candidate] = true;
      ranks.push_back(candidate);
    }
  }
  std::vector<int64_t> bytes(r);
  int64_t total = 0;
  for (auto& b : bytes) {
    b = 1 + static_cast<int64_t>(rng.NextBounded(1 << 22));
    total += b;
  }

  TaskGraph g;
  const auto result =
      RingAllGather(g, fabric, ranks, bytes, TaskCategory::kIntraComm, {}, "ag");
  ASSERT_EQ(result.done.size(), static_cast<size_t>(r));
  // Ring all-gather ships each chunk r-1 times.
  EXPECT_EQ(CategoryBytes(g), (r - 1) * total);

  const SimResult sim = engine.Run(g);
  EXPECT_TRUE(IsLegalSchedule(g, sim, fabric.num_resources()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectivePropertyTest, ::testing::Range(1, 21));

class AllToAllPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllToAllPropertyTest, MatrixVolumesConserved) {
  Rng rng(GetParam() + 100);
  const FabricResources fabric(MakeClusterB(2));
  const Engine engine(fabric);
  const int r = 2 + static_cast<int>(rng.NextBounded(10));
  std::vector<int> ranks(r);
  std::iota(ranks.begin(), ranks.end(), 0);

  std::vector<std::vector<int64_t>> sends(r, std::vector<int64_t>(r, 0));
  int64_t expected = 0;
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      if (i != j && rng.NextBounded(2) == 0) {
        sends[i][j] = static_cast<int64_t>(rng.NextBounded(1 << 20));
        expected += sends[i][j];
      }
    }
  }
  TaskGraph g;
  AllToAllV(g, fabric, ranks, sends, TaskCategory::kRemapComm, {}, "a2a");
  EXPECT_EQ(CategoryBytes(g), expected);
  const SimResult sim = engine.Run(g);
  EXPECT_TRUE(IsLegalSchedule(g, sim, fabric.num_resources()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllToAllPropertyTest, ::testing::Range(1, 16));

TEST(CommPropertyTest, AllReduceVolumeScalesWithRing) {
  const FabricResources fabric(MakeClusterA(1));
  for (const int r : {2, 4, 8}) {
    std::vector<int> ranks(r);
    std::iota(ranks.begin(), ranks.end(), 0);
    TaskGraph g;
    const int64_t bytes = 1 << 20;
    RingAllReduce(g, fabric, ranks, bytes, TaskCategory::kIntraComm, {}, "ar");
    // 2(r-1) rounds x r ranks x bytes/r chunks = 2(r-1) * bytes.
    EXPECT_NEAR(static_cast<double>(CategoryBytes(g)), 2.0 * (r - 1) * bytes,
                2.0 * r /* per-chunk rounding */)
        << "r=" << r;
  }
}

TEST(CommPropertyTest, CounterRotatingRingsContendOnNvswitchEgress) {
  // NVSwitch egress is a per-GPU port: a counter-rotating intra-node ring
  // shares every port with the forward ring and roughly doubles the time.
  // (NIC tx/rx are independent directions — covered by the duplex test in
  // sim_engine_test — but NVSwitch ports are not direction-paired per peer.)
  const FabricResources fabric(MakeClusterA(1));
  const Engine engine(fabric);
  const std::vector<int> fwd = {0, 1, 2, 3};
  const std::vector<int> rev = {3, 2, 1, 0};
  const std::vector<int64_t> bytes(4, 1 << 22);

  TaskGraph one;
  RingAllGather(one, fabric, fwd, bytes, TaskCategory::kIntraComm, {}, "f");
  const double single = engine.Run(one).makespan_us;

  TaskGraph both;
  RingAllGather(both, fabric, fwd, bytes, TaskCategory::kIntraComm, {}, "f");
  RingAllGather(both, fabric, rev, bytes, TaskCategory::kIntraComm, {}, "r");
  const double dual = engine.Run(both).makespan_us;
  EXPECT_GT(dual, 1.8 * single);
  EXPECT_LT(dual, 2.2 * single);
}

TEST(CommPropertyTest, SameDirectionRingsSerialize) {
  const FabricResources fabric(MakeClusterA(1));
  const Engine engine(fabric);
  const std::vector<int> ranks = {0, 1, 2, 3};
  const std::vector<int64_t> bytes(4, 1 << 22);
  TaskGraph one;
  RingAllGather(one, fabric, ranks, bytes, TaskCategory::kIntraComm, {}, "a");
  const double single = engine.Run(one).makespan_us;
  TaskGraph both;
  RingAllGather(both, fabric, ranks, bytes, TaskCategory::kIntraComm, {}, "a");
  RingAllGather(both, fabric, ranks, bytes, TaskCategory::kIntraComm, {}, "b");
  const double dual = engine.Run(both).makespan_us;
  // Same channels, same direction: roughly double (pipelining saves a bit).
  EXPECT_GT(dual, 1.5 * single);
}

}  // namespace
}  // namespace zeppelin
