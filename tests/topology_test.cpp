#include <gtest/gtest.h>

#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

TEST(ClusterTest, RankMath) {
  const ClusterSpec spec = MakeClusterA(3);
  EXPECT_EQ(spec.world_size(), 24);
  EXPECT_EQ(spec.NodeOf(0), 0);
  EXPECT_EQ(spec.NodeOf(7), 0);
  EXPECT_EQ(spec.NodeOf(8), 1);
  EXPECT_EQ(spec.LocalOf(13), 5);
  EXPECT_EQ(spec.GlobalRank(2, 3), 19);
  for (int r = 0; r < spec.world_size(); ++r) {
    EXPECT_EQ(spec.GlobalRank(spec.NodeOf(r), spec.LocalOf(r)), r);
  }
}

TEST(ClusterTest, ClusterANicSharing) {
  const ClusterSpec spec = MakeClusterA(1);
  EXPECT_EQ(spec.nics_per_node, 4);
  // GPUs 0 and 1 share NIC 0.
  EXPECT_EQ(spec.NicOf(0), 0);
  EXPECT_EQ(spec.NicOf(1), 0);
  EXPECT_EQ(spec.NicOf(7), 3);
  EXPECT_EQ(spec.RanksOnNic(0, 0), (std::vector<int>{0, 1}));
}

TEST(ClusterTest, ClusterBAndCOneToOneAffinity) {
  for (const ClusterSpec& spec : {MakeClusterB(2), MakeClusterC(2)}) {
    EXPECT_EQ(spec.nics_per_node, 8);
    for (int local = 0; local < spec.gpus_per_node; ++local) {
      EXPECT_EQ(spec.gpu_to_nic[local], local);
      EXPECT_EQ(spec.RanksOnNic(1, local).size(), 1u);
    }
  }
}

TEST(ClusterTest, ClusterCHasHigherCrossNodeBandwidth) {
  const ClusterSpec a = MakeClusterA(1);
  const ClusterSpec c = MakeClusterC(1);
  EXPECT_GT(c.nic_bandwidth * c.nics_per_node, 2 * a.nic_bandwidth * a.nics_per_node);
}

TEST(ClusterTest, InterIntraBandwidthGapRoughlyTenX) {
  // The paper's motivating ratio: intra-node is ~an order of magnitude
  // faster than one NIC.
  const ClusterSpec a = MakeClusterA(1);
  const double ratio = a.nvswitch_bandwidth / a.nic_bandwidth;
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(ClusterTest, FlopsPerUs) {
  ClusterSpec spec = MakeClusterA(1);
  spec.gpu_effective_tflops = 100.0;
  EXPECT_DOUBLE_EQ(spec.flops_per_us(), 1e8);
}

TEST(ClusterTest, DescribeMentionsName) {
  const std::string d = DescribeCluster(MakeClusterB(4));
  EXPECT_NE(d.find("ClusterB"), std::string::npos);
  EXPECT_NE(d.find("4 nodes"), std::string::npos);
}

TEST(TensorParallelTest, Tp1IsIdentity) {
  const ClusterSpec spec = MakeClusterA(2);
  const ClusterSpec derived = ApplyTensorParallelism(spec, 1);
  EXPECT_EQ(derived.gpus_per_node, spec.gpus_per_node);
  EXPECT_EQ(derived.name, spec.name);
}

TEST(TensorParallelTest, Tp2FusesDevices) {
  const ClusterSpec spec = MakeClusterA(2);
  const ClusterSpec derived = ApplyTensorParallelism(spec, 2);
  EXPECT_EQ(derived.gpus_per_node, 4);
  EXPECT_EQ(derived.world_size(), 8);
  EXPECT_DOUBLE_EQ(derived.gpu_effective_tflops, 2 * spec.gpu_effective_tflops);
  EXPECT_DOUBLE_EQ(derived.nvswitch_bandwidth, 2 * spec.nvswitch_bandwidth);
}

TEST(TensorParallelTest, Tp2OnClusterARemovesNicSharing) {
  // Two GPUs per NIC + TP2 => one logical rank per NIC (the paper's 13B
  // observation).
  const ClusterSpec derived = ApplyTensorParallelism(MakeClusterA(1), 2);
  for (int l = 0; l < derived.gpus_per_node; ++l) {
    EXPECT_EQ(derived.gpu_to_nic[l], l);
    EXPECT_EQ(derived.RanksOnNic(0, l).size(), 1u);
  }
}

}  // namespace
}  // namespace zeppelin
