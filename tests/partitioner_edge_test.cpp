// Edge cases and adversarial shapes for the hierarchical partitioner —
// cluster geometries and batches the main property suite does not reach.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/core/partitioner.h"
#include "src/data/datasets.h"

namespace zeppelin {
namespace {

Batch MakeBatch(std::vector<int64_t> lens) {
  Batch b;
  b.seq_lens = std::move(lens);
  return b;
}

// A cluster with few GPUs per node (common in PCIe boxes).
ClusterSpec TinyNodes(int num_nodes, int gpus_per_node) {
  ClusterSpec spec = MakeClusterA(num_nodes);
  spec.gpus_per_node = gpus_per_node;
  spec.nics_per_node = 1;
  spec.gpu_to_nic.assign(gpus_per_node, 0);
  spec.Validate();
  return spec;
}

TEST(PartitionerEdgeTest, SingleNodeClusterNeverGoesInterNode) {
  SequencePartitioner partitioner(MakeClusterA(1), {.token_capacity = 8192});
  BatchSampler sampler(MakeGithubDistribution(), 65536, 3);
  for (int i = 0; i < 5; ++i) {
    const PartitionPlan plan = partitioner.Partition(sampler.NextBatch());
    EXPECT_TRUE(plan.inter_node.empty());
  }
}

TEST(PartitionerEdgeTest, SingleGpuNodes) {
  // 4 nodes x 1 GPU: no intra-node rings are possible; everything is local
  // or inter-node.
  const ClusterSpec spec = TinyNodes(4, 1);
  SequencePartitioner partitioner(spec, {.token_capacity = 16384});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({32768, 8192, 8192, 8192}));
  EXPECT_TRUE(plan.intra_node.empty());
  EXPECT_EQ(plan.total_tokens(), 57344);
  for (const auto& ring : plan.inter_node) {
    EXPECT_GT(ring.group_size(), 1);
  }
}

TEST(PartitionerEdgeTest, SingleSequenceExactlyFillsCluster) {
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 4096});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({65536}));
  ASSERT_EQ(plan.inter_node.size(), 1u);
  EXPECT_EQ(plan.inter_node[0].group_size(), 16);
}

TEST(PartitionerEdgeTest, ManyIdenticalSequences) {
  // 16 sequences of exactly L: the argmin packer must place one per device.
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 4096});
  const PartitionPlan plan = partitioner.Partition(MakeBatch(std::vector<int64_t>(16, 4096)));
  EXPECT_EQ(plan.intra_node.size() + plan.local.size(), 16u);
  for (int64_t t : plan.tokens_per_rank) {
    EXPECT_EQ(t, 4096);
  }
}

TEST(PartitionerEdgeTest, OneTokenSequences) {
  const ClusterSpec spec = MakeClusterA(1);
  SequencePartitioner partitioner(spec, {.token_capacity = 64});
  std::vector<int64_t> lens(64, 1);
  const PartitionPlan plan = partitioner.Partition(MakeBatch(lens));
  EXPECT_EQ(plan.total_tokens(), 64);
  EXPECT_EQ(plan.local.size(), 64u);
}

TEST(PartitionerEdgeTest, ThresholdCascadeTerminates) {
  // Adversarial: node capacity 4*1024, sequences just over half capacity so
  // at most one fits per node; the rest must cascade into the inter-node
  // zone through repeated threshold shrinks.
  const ClusterSpec spec = TinyNodes(2, 4);
  SequencePartitioner partitioner(spec, {.token_capacity = 1024});
  const PartitionPlan plan =
      partitioner.Partition(MakeBatch({2400, 2300, 2200, 1292}));  // = 8192 total.
  EXPECT_EQ(plan.total_tokens(), 8192);
  // The cascade forced at least one sequence out of the local zone into a
  // ring (single-node z2 rings are classified intra-node).
  EXPECT_FALSE(plan.inter_node.empty() && plan.intra_node.empty());
  EXPECT_LT(plan.threshold_s1, 4096);
}

TEST(PartitionerEdgeTest, ZoneLabelsMatchStructure) {
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 8192});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({65536, 12288, 1024, 1024,
                                                              1024, 1024}));
  for (RingView ring : plan.rings(plan.inter_node)) {
    EXPECT_EQ(ring.zone, Zone::kInterNode);
    std::set<int> nodes;
    for (int r : ring.ranks) {
      nodes.insert(spec.NodeOf(r));
    }
    EXPECT_GT(nodes.size(), 1u);
  }
  for (RingView ring : plan.rings(plan.intra_node)) {
    EXPECT_EQ(ring.zone, Zone::kIntraNode);
    std::set<int> nodes;
    for (int r : ring.ranks) {
      nodes.insert(spec.NodeOf(r));
    }
    EXPECT_EQ(nodes.size(), 1u);
  }
}

TEST(PartitionerEdgeTest, CapacityMuchLargerThanBatch) {
  // Huge L: everything fits anywhere; all sequences should stay local (no
  // communication needed at all).
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 1 << 20});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({8192, 8192, 4096, 4096}));
  EXPECT_TRUE(plan.inter_node.empty());
  EXPECT_TRUE(plan.intra_node.empty());
  EXPECT_EQ(plan.local.size(), 4u);
}

TEST(PartitionerEdgeTest, ThresholdCapsComposeWithCascade) {
  // Caps below the capacity defaults interact with the shrink loop: the
  // final thresholds can only be <= the caps.
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner::Options opts;
  opts.token_capacity = 8192;
  opts.max_inter_threshold = 20000;
  opts.max_local_threshold = 3000;
  SequencePartitioner partitioner(spec, opts);
  BatchSampler sampler(MakeArxivDistribution(), 98304, 11);
  for (int i = 0; i < 5; ++i) {
    const PartitionPlan plan = partitioner.Partition(sampler.NextBatch());
    EXPECT_LE(plan.threshold_s1, 20000);
    for (int64_t s0 : plan.threshold_s0) {
      EXPECT_LE(s0, 3000);
    }
  }
}

// --- Flat rank-arena invariants (docs/PLAN_FORMAT.md) -------------------------

// Every live ring's span must lie inside the arena, spans must be disjoint
// and gap-free, and the trimmed arena must hold exactly the live ranks.
void ExpectArenaTight(const PartitionPlan& plan) {
  std::vector<bool> covered(plan.rank_arena.size(), false);
  size_t total = 0;
  for (const std::vector<RingRef>* queue : {&plan.inter_node, &plan.intra_node}) {
    for (const RingRef& ring : *queue) {
      ASSERT_LE(static_cast<size_t>(ring.rank_offset) + ring.rank_count,
                plan.rank_arena.size());
      for (uint32_t i = ring.rank_offset; i < ring.rank_offset + ring.rank_count; ++i) {
        EXPECT_FALSE(covered[i]) << "overlapping ring spans at arena slot " << i;
        covered[i] = true;
      }
      total += ring.rank_count;
    }
  }
  EXPECT_EQ(total, plan.rank_arena.size()) << "arena not trimmed to the live rank count";
}

TEST(PartitionerArenaTest, LocalOnlyPlanHasEmptyArena) {
  // Huge L: no rings at all, so both header queues and the arena trim to
  // empty — the "empty plan" shape downstream consumers must tolerate.
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 1 << 20});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({4096, 2048, 1024}));
  EXPECT_TRUE(plan.inter_node.empty());
  EXPECT_TRUE(plan.intra_node.empty());
  EXPECT_TRUE(plan.rank_arena.empty());
  EXPECT_TRUE(plan.rings(plan.inter_node).empty());
  ExpectArenaTight(plan);
}

TEST(PartitionerArenaTest, SingleLocalOnlySequence) {
  const ClusterSpec spec = MakeClusterA(1);
  SequencePartitioner partitioner(spec, {.token_capacity = 8192});
  const PartitionPlan plan = partitioner.Partition(MakeBatch({1024}));
  ASSERT_EQ(plan.local.size(), 1u);
  EXPECT_TRUE(plan.rank_arena.empty());
  ExpectArenaTight(plan);
}

TEST(PartitionerArenaTest, ArenaTightAcrossShapes) {
  // Mixed-zone batches on every engine: the trimmed arena must stay exactly
  // the concatenation of the live ring spans.
  const ClusterSpec spec = MakeClusterA(2);
  BatchSampler sampler(MakeGithubDistribution(), 16 * 8192, 17);
  for (bool fast : {false, true}) {
    SequencePartitioner partitioner(spec, {.token_capacity = 8192, .fast_path = fast});
    for (int i = 0; i < 3; ++i) {
      const PartitionPlan plan = partitioner.Partition(sampler.NextBatch());
      ExpectArenaTight(plan);
    }
  }
}

TEST(PartitionerArenaTest, ForcedRestartRecyclesArena) {
  // Zero-slack capacity forces overflow restarts, which rewind the arena
  // cursor mid-stage; the recycled slots must leave no stale ranks behind.
  const ClusterSpec spec = TinyNodes(2, 4);
  SequencePartitioner partitioner(spec, {.token_capacity = 1024});
  PlannerScratch scratch;
  PartitionPlan plan;
  const Batch batch = MakeBatch({2400, 2300, 2200, 1292});
  partitioner.Partition(batch, &scratch, &plan);
  ExpectArenaTight(plan);
  const PartitionPlan first = plan;  // Deep copy (headers + flat arrays).
  // Re-plan through the same scratch and recycled plan storage: the restart
  // chain replays into reused slots and must reproduce identical bytes.
  partitioner.Partition(batch, &scratch, &plan);
  ExpectArenaTight(plan);
  EXPECT_TRUE(plan == first);
}

TEST(PartitionerArenaTest, SpansStableAcrossPlanCallsWithScratchReuse) {
  // Interleave batches of very different ring footprints through one scratch
  // and one recycled plan: header counts and arena offsets must depend only
  // on the batch, never on what a previous call left in the recycled storage.
  const ClusterSpec spec = MakeClusterA(2);
  SequencePartitioner partitioner(spec, {.token_capacity = 8192});
  PlannerScratch scratch;
  PartitionPlan plan;
  const Batch big = MakeBatch({65536, 12288, 12288, 12288, 12288, 8192, 2048, 2048});
  const Batch small = MakeBatch({1024, 512});

  partitioner.Partition(big, &scratch, &plan);
  ExpectArenaTight(plan);
  const PartitionPlan big_first = plan;
  // Record the resolved rank lists through the span accessor.
  std::vector<std::vector<int>> big_ranks;
  for (RingView ring : plan.rings(plan.inter_node)) {
    big_ranks.emplace_back(ring.ranks.begin(), ring.ranks.end());
  }

  partitioner.Partition(small, &scratch, &plan);
  ExpectArenaTight(plan);
  EXPECT_TRUE(plan.inter_node.empty());

  partitioner.Partition(big, &scratch, &plan);
  ExpectArenaTight(plan);
  EXPECT_TRUE(plan == big_first) << "recycled storage leaked into the plan bytes";
  size_t i = 0;
  for (RingView ring : plan.rings(plan.inter_node)) {
    EXPECT_EQ(std::vector<int>(ring.ranks.begin(), ring.ranks.end()), big_ranks[i]) << "ring " << i;
    ++i;
  }
}

// Wider random geometry sweep: nodes x gpus_per_node x capacity.
class GeometryTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryTest, InvariantsAcrossGeometries) {
  Rng rng(GetParam());
  ClusterSpec spec = MakeClusterA(1);
  spec.num_nodes = 1 + static_cast<int>(rng.NextBounded(5));
  spec.gpus_per_node = 1 << rng.NextBounded(4);  // 1, 2, 4, 8.
  spec.nics_per_node = 1;
  spec.gpu_to_nic.assign(spec.gpus_per_node, 0);
  spec.Validate();

  const int64_t capacity = 2048 << rng.NextBounded(3);
  SequencePartitioner partitioner(spec, {.token_capacity = capacity});
  const int64_t budget = capacity * spec.world_size();

  // Random batch within budget.
  Batch batch;
  int64_t remaining = budget - budget / 8;  // Keep headroom.
  while (remaining > 0) {
    const int64_t len = std::min<int64_t>(remaining, 64 + rng.NextBounded(capacity * 2));
    batch.seq_lens.push_back(len);
    remaining -= len;
  }
  const PartitionPlan plan = partitioner.Partition(batch);
  EXPECT_EQ(plan.total_tokens(), batch.total_tokens());
  for (const auto& ring : plan.inter_node) {
    EXPECT_EQ(ring.group_size() % spec.gpus_per_node, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryTest, ::testing::Range(1, 31));

}  // namespace
}  // namespace zeppelin
