// PlanClient (src/net/plan_client.h) failure handling without a real daemon:
// the deterministic capped-exponential backoff schedule, retry behavior
// against injected connection failures (dead port, accept-then-close, and
// accept-then-stall servers), and the idempotency rule — stateless requests
// retry up to the cap with recorded backoff sleeps, session plan requests
// surface the first transport error with no retry and no sleep.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/net/plan_client.h"
#include "src/net/wire.h"
#include "src/obs/trace.h"

namespace zeppelin {
namespace net {
namespace {

// A server that accepts connections and then misbehaves on purpose.
class EvilServer {
 public:
  enum class Mode { kCloseImmediately, kStall };

  explicit EvilServer(Mode mode) : mode_(mode) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 16);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Loop(); });
  }

  ~EvilServer() {
    stop_ = true;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
    for (int fd : held_) {
      ::close(fd);
    }
  }

  int port() const { return port_; }
  int accepted() const { return accepted_.load(); }

 private:
  void Loop() {
    while (!stop_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        break;
      }
      ++accepted_;
      if (mode_ == Mode::kCloseImmediately) {
        ::close(fd);
      } else {
        held_.push_back(fd);  // Never respond; the client must time out.
      }
    }
  }

  Mode mode_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> accepted_{0};
  std::thread thread_;
  std::vector<int> held_;
};

// Grabs a port that is guaranteed closed (bound, then released).
int DeadPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

PlanClientOptions RecordingOptions(std::vector<int>* sleeps, int max_retries) {
  PlanClientOptions options;
  options.connect_timeout_ms = 200;
  options.request_timeout_ms = 200;
  options.max_retries = max_retries;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 1000;
  options.sleep_ms = [sleeps](int ms) { sleeps->push_back(ms); };
  return options;
}

TEST(PlanClientTest, BackoffScheduleIsCappedExponential) {
  PlanClientOptions options;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 1000;
  const int expected[] = {10, 20, 40, 80, 160, 320, 640, 1000, 1000, 1000};
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(RetryBackoffMs(attempt, options), expected[attempt]) << attempt;
  }
  // Degenerate initial values clamp to a 1 ms floor and never overflow.
  options.backoff_initial_ms = 0;
  EXPECT_EQ(RetryBackoffMs(0, options), 1);
  EXPECT_EQ(RetryBackoffMs(62, options), 1000);
}

TEST(PlanClientTest, ConnectFailureRetriesStatelessWithBackoff) {
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", DeadPort(), RecordingOptions(&sleeps, 3));
  const PlanClientResult result = client.Ping();
  EXPECT_EQ(result.status, WireStatus::kTransport);
  EXPECT_EQ(result.attempts, 4);  // 1 try + 3 retries.
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20, 40}));
}

TEST(PlanClientTest, SessionPlanIsNeverAutoRetried) {
  EvilServer server(EvilServer::Mode::kCloseImmediately);
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", server.port(), RecordingOptions(&sleeps, 3));

  WireRequest session;
  session.stream_id = "stream-a";
  session.batch.seq_lens = {100, 200, 300};
  const PlanClientResult result = client.Plan(std::move(session));
  EXPECT_EQ(result.status, WireStatus::kTransport);
  // Exactly one attempt, no backoff sleeps: the client cannot know whether
  // the daemon applied the session mutation, so a blind resend is forbidden.
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(PlanClientTest, StatelessPlanRetriesToTheCap) {
  EvilServer server(EvilServer::Mode::kCloseImmediately);
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", server.port(), RecordingOptions(&sleeps, 2));

  WireRequest stateless;
  stateless.batch.seq_lens = {100, 200, 300};
  const PlanClientResult result = client.Plan(std::move(stateless));
  EXPECT_EQ(result.status, WireStatus::kTransport);
  EXPECT_EQ(result.attempts, 3);  // 1 try + 2 retries, each a fresh connect.
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20}));
  EXPECT_GE(server.accepted(), 3);
}

TEST(PlanClientTest, CloseSessionIsIdempotentAndRetried) {
  EvilServer server(EvilServer::Mode::kCloseImmediately);
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", server.port(), RecordingOptions(&sleeps, 2));
  const PlanClientResult result = client.CloseSession("stream-a");
  EXPECT_EQ(result.status, WireStatus::kTransport);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20}));
}

TEST(PlanClientTest, RequestTimeoutSurfacesAsTransport) {
  EvilServer server(EvilServer::Mode::kStall);
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", server.port(), RecordingOptions(&sleeps, 1));
  const PlanClientResult result = client.Ping();
  EXPECT_EQ(result.status, WireStatus::kTransport);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(sleeps, (std::vector<int>{10}));
}

TEST(PlanClientTest, StatsIsIdempotentAndRetried) {
  // kStats carries no stream state, so like Ping it retries through
  // transport failures instead of surfacing the first one.
  EvilServer server(EvilServer::Mode::kCloseImmediately);
  std::vector<int> sleeps;
  PlanClient client("127.0.0.1", server.port(), RecordingOptions(&sleeps, 2));
  const PlanClientResult result = client.Stats();
  EXPECT_EQ(result.status, WireStatus::kTransport);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20}));
}

// --- wire v2 backward compatibility ------------------------------------------
//
// A v3 parser must still decode frames from a v2 peer: same layout up through
// the plan bytes, no stage block, no stats-JSON section. Downgrade real v3
// encodes by rewriting the little-endian version word and (for responses)
// truncating the v3 tail, which for an empty message and 4-byte plan starts
// at byte 81 = 17 (header) + 34 (engine..sessions) + 2 (cache_outcome,
// verified) + 8 (queue_wait) + 8 (digest) + 8 (plan_len) + 4 (plan).

void PatchVersion(std::string* payload, uint32_t version) {
  for (int i = 0; i < 4; ++i) {
    (*payload)[i] = static_cast<char>((version >> (8 * i)) & 0xff);
  }
}

TEST(WireCompatTest, V2ResponseDecodesWithEmptyStageBlock) {
  WireResponse ok;
  ok.request_id = 21;
  ok.status = WireStatus::kOk;
  ok.digest = 0xfeed;
  ok.plan_bytes = "plan";
  for (int i = 0; i < obs::kNumStages; ++i) {
    ok.stats.stage_us[i] = 5.0 * (i + 1);
  }
  ok.stats_json = "{\"schema\":\"zeppelin.metrics.v1\"}";
  std::string payload = EncodeResponse(ok);
  const size_t v3_tail_at = 81;
  ASSERT_GT(payload.size(), v3_tail_at);
  PatchVersion(&payload, 2);
  payload.resize(v3_tail_at);

  WireResponse parsed;
  std::string error;
  ASSERT_EQ(ParseResponse(FrameType::kResponse, payload, &parsed, &error),
            WireStatus::kOk)
      << error;
  EXPECT_EQ(parsed.request_id, 21u);
  EXPECT_EQ(parsed.digest, 0xfeedu);
  EXPECT_EQ(parsed.plan_bytes, "plan");
  // v2 carries no stage block and no stats JSON: both decode as empty.
  for (int i = 0; i < obs::kNumStages; ++i) {
    EXPECT_DOUBLE_EQ(parsed.stats.stage_us[i], 0.0) << i;
  }
  EXPECT_TRUE(parsed.stats_json.empty());

  // The same truncated payload with a v3 version word is corrupt, not legacy.
  std::string v3_truncated = payload;
  PatchVersion(&v3_truncated, 3);
  WireResponse rejected;
  EXPECT_EQ(ParseResponse(FrameType::kResponse, v3_truncated, &rejected, &error),
            WireStatus::kMalformedRequest);
}

TEST(WireCompatTest, V2RequestStillParsesAndV2StatsIsRejected) {
  WireRequest plan;
  plan.request_id = 22;
  plan.batch.seq_lens = {128, 256, 512};
  std::string payload = EncodeRequest(plan);
  PatchVersion(&payload, 2);
  WireRequest parsed;
  std::string error;
  ASSERT_EQ(ParseRequest(payload, &parsed, &error), WireStatus::kOk) << error;
  EXPECT_EQ(parsed.request_id, 22u);
  EXPECT_EQ(parsed.batch.seq_lens.size(), 3u);

  // kStats did not exist before v3: a v2 frame claiming it is malformed.
  WireRequest stats;
  stats.request_id = 23;
  stats.kind = RequestKind::kStats;
  std::string stats_payload = EncodeRequest(stats);
  PatchVersion(&stats_payload, 2);
  WireRequest out;
  EXPECT_EQ(ParseRequest(stats_payload, &out, &error),
            WireStatus::kMalformedRequest);
  EXPECT_NE(error.find("stats requests require wire v3"), std::string::npos)
      << error;
}

}  // namespace
}  // namespace net
}  // namespace zeppelin
