// Integration tests validating the paper-level *shapes*: who wins on which
// workload, how components compose, and that the benchmark harness logic is
// sound. These are the same comparisons Figs. 8/9/11 make, at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/hybrid_dp.h"
#include "src/baselines/llama_cp.h"
#include "src/baselines/te_cp.h"
#include "src/core/trainer.h"
#include "src/core/zeppelin.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"

namespace zeppelin {
namespace {

double Throughput(const Trainer& trainer, Strategy& strategy, const Batch& batch) {
  return trainer.Run(strategy, batch).tokens_per_second;
}

// Mean throughput over a few sampled batches — the steps 50-150 averaging of
// the paper, shrunk for test time.
double MeanThroughput(const Trainer& trainer, Strategy& strategy,
                      const LengthDistribution& dist, int64_t total_tokens, int batches) {
  BatchSampler sampler(dist, total_tokens, /*seed=*/12345);
  double sum = 0;
  for (int i = 0; i < batches; ++i) {
    sum += Throughput(trainer, strategy, sampler.NextBatch());
  }
  return sum / batches;
}

TEST(EndToEndTest, ZeppelinWinsOnAllThreeEvaluationDatasets) {
  const Trainer trainer(MakeLlama7B(), MakeClusterA(2));
  const int64_t total = 65536;  // 4k per GPU x 16 GPUs.
  for (const auto& dist : EvaluationDatasets()) {
    TeCpStrategy te;
    LlamaCpStrategy llama;
    HybridDpStrategy hybrid;
    ZeppelinStrategy zep;
    const double te_tput = MeanThroughput(trainer, te, dist, total, 3);
    const double llama_tput = MeanThroughput(trainer, llama, dist, total, 3);
    const double hybrid_tput = MeanThroughput(trainer, hybrid, dist, total, 3);
    const double zep_tput = MeanThroughput(trainer, zep, dist, total, 3);
    EXPECT_GT(zep_tput, te_tput) << dist.name();
    EXPECT_GT(zep_tput, llama_tput) << dist.name();
    EXPECT_GT(zep_tput, hybrid_tput) << dist.name();
    // And the headline: a clear speedup over the TE baseline.
    EXPECT_GT(zep_tput / te_tput, 1.3) << dist.name();
  }
}

TEST(EndToEndTest, LlamaCpBeatsTeCp) {
  // The paper's consistent ordering: the bulk all-gather outruns the
  // boundary-bottlenecked ring.
  const Trainer trainer(MakeLlama7B(), MakeClusterA(2));
  TeCpStrategy te;
  LlamaCpStrategy llama;
  const auto dist = MakeArxivDistribution();
  EXPECT_GT(MeanThroughput(trainer, llama, dist, 65536, 3),
            MeanThroughput(trainer, te, dist, 65536, 3));
}

TEST(EndToEndTest, TeCpThroughputStaysFlatWithScale) {
  // Fig. 9: TE CP barely scales (inter-node ring bottleneck), Zeppelin does.
  const auto dist = MakeArxivDistribution();
  double te_small = 0;
  double te_large = 0;
  double zep_small = 0;
  double zep_large = 0;
  {
    const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
    TeCpStrategy te;
    ZeppelinStrategy zep;
    te_small = MeanThroughput(trainer, te, dist, 16 * 4096, 2);
    zep_small = MeanThroughput(trainer, zep, dist, 16 * 4096, 2);
  }
  {
    const Trainer trainer(MakeLlama3B(), MakeClusterA(8));
    TeCpStrategy te;
    ZeppelinStrategy zep;
    te_large = MeanThroughput(trainer, te, dist, 64 * 4096, 2);
    zep_large = MeanThroughput(trainer, zep, dist, 64 * 4096, 2);
  }
  const double te_scaling = te_large / te_small;
  const double zep_scaling = zep_large / zep_small;
  EXPECT_GT(zep_scaling, te_scaling);
  EXPECT_LT(te_scaling, 2.0);  // 4x GPUs, far from 4x throughput.
}

TEST(EndToEndTest, AblationMonotonicity) {
  // Fig. 11 ladder: TE CP < TE CP + routing < full Zeppelin.
  const Trainer trainer(MakeLlama3B(), MakeClusterA(4));
  BatchSampler sampler(MakeArxivDistribution(), 32 * 4096, 777);
  const Batch batch = sampler.NextBatch();

  TeCpStrategy te;
  TeCpStrategy te_routed({.routing = {.enabled = true}});
  ZeppelinStrategy full;
  const double t_te = Throughput(trainer, te, batch);
  const double t_routed = Throughput(trainer, te_routed, batch);
  const double t_full = Throughput(trainer, full, batch);
  EXPECT_GT(t_routed, t_te);
  EXPECT_GT(t_full, t_routed);
}

TEST(EndToEndTest, ClusterBIsFasterButSpeedupIsLargerOnA) {
  // Fig. 10: Cluster B's Hopper GPUs raise absolute throughput everywhere,
  // while Cluster A's lower compute-to-NIC bandwidth ratio leaves more
  // communication exposed for Zeppelin to hide, so the *relative* speedup is
  // larger on A.
  const auto dist = MakeGithubDistribution();
  double tput_te_a = 0;
  double tput_zep_a = 0;
  double tput_te_b = 0;
  double tput_zep_b = 0;
  {
    const Trainer trainer(MakeLlama3B(), MakeClusterA(4));
    TeCpStrategy te;
    ZeppelinStrategy zep;
    tput_te_a = MeanThroughput(trainer, te, dist, 131072, 3);
    tput_zep_a = MeanThroughput(trainer, zep, dist, 131072, 3);
  }
  {
    const Trainer trainer(MakeLlama3B(), MakeClusterB(4));
    TeCpStrategy te;
    ZeppelinStrategy zep;
    tput_te_b = MeanThroughput(trainer, te, dist, 131072, 3);
    tput_zep_b = MeanThroughput(trainer, zep, dist, 131072, 3);
  }
  EXPECT_GT(tput_zep_b, tput_zep_a);  // Absolute: B is the faster cluster.
  const double ratio_a = tput_zep_a / tput_te_a;
  const double ratio_b = tput_zep_b / tput_te_b;
  EXPECT_GT(ratio_a, 1.5);
  EXPECT_GT(ratio_b, 1.5);
  // The paper reports near-identical relative speedups (3.51x on A vs 3.28x
  // on B, within ~7%); assert the same "similar band" property rather than a
  // strict direction, which is sensitive to effective-bandwidth calibration.
  EXPECT_LT(std::abs(ratio_a - ratio_b) / ratio_b, 0.25);
}

TEST(EndToEndTest, SkewedBatchCostsMoreThanBalanced) {
  // Table 3: the skewed distribution's long sequence dominates attention and
  // stretches the iteration.
  const Trainer trainer(MakeLlama7B(), MakeClusterC(4));
  ZeppelinStrategy a;
  ZeppelinStrategy b;
  const IterationResult balanced = trainer.Run(a, MakeBalancedBatch(131072));
  const IterationResult skewed = trainer.Run(b, MakeSkewedBatch(131072));
  EXPECT_GT(skewed.iteration_us, balanced.iteration_us);
  EXPECT_GT(skewed.layer_backward_us, skewed.layer_forward_us);
}

TEST(EndToEndTest, MoEShortContextFavorsLlamaCpLongContextFavorsZeppelin) {
  // Fig. 8 MoE row: at short contexts expert compute dominates and the
  // balanced LLaMA CP leads; at long contexts attention dominates and
  // Zeppelin's attention optimizations win.
  const auto dist = MakeProlong64kDistribution();
  double zep_over_llama_short = 0;
  double zep_over_llama_long = 0;
  {
    const Trainer trainer(MakeMoe8x550M(), MakeClusterA(2));
    LlamaCpStrategy llama;
    ZeppelinStrategy zep;
    zep_over_llama_short = MeanThroughput(trainer, zep, dist, 65536, 6) /
                           MeanThroughput(trainer, llama, dist, 65536, 6);
  }
  {
    const Trainer trainer(MakeMoe8x550M(), MakeClusterA(8));
    LlamaCpStrategy llama;
    ZeppelinStrategy zep;
    zep_over_llama_long = MeanThroughput(trainer, zep, dist, 262144, 6) /
                          MeanThroughput(trainer, llama, dist, 262144, 6);
  }
  // Allow a small tolerance: our MoE cost model omits the expert-parallel
  // all-to-all, which shifts the absolute crossover point.
  EXPECT_GT(zep_over_llama_long, zep_over_llama_short * 0.93);
  EXPECT_GT(zep_over_llama_short, 0.8);
}

}  // namespace
}  // namespace zeppelin
