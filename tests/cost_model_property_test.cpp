// Property sweeps over the cost model: scaling laws, additivity, and
// cross-configuration relations that every strategy's accounting relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/model/cost_model.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

// Additivity: any partition of [0, s) into chunks must tile the causal
// triangle exactly, for random chunk grids.
class ChunkGridTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkGridTest, RandomGridsTileTheTriangle) {
  Rng rng(GetParam());
  const CostModel cm(MakeLlama7B(), MakeClusterA(1));
  const int64_t s = 500 + static_cast<int64_t>(rng.NextBounded(3000));
  // Random edges.
  std::vector<int64_t> edges = {0, s};
  const int cuts = 1 + static_cast<int>(rng.NextBounded(6));
  for (int i = 0; i < cuts; ++i) {
    edges.push_back(rng.NextInt(0, s));
  }
  std::sort(edges.begin(), edges.end());
  double total = 0;
  for (size_t qi = 0; qi + 1 < edges.size(); ++qi) {
    for (size_t ki = 0; ki + 1 < edges.size(); ++ki) {
      total += cm.CausalChunkFlops(edges[qi], edges[qi + 1], edges[ki], edges[ki + 1]);
    }
  }
  EXPECT_NEAR(total / cm.CausalAttentionFlops(s), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkGridTest, ::testing::Range(1, 21));

TEST(CostModelPropertyTest, QuadraticScalingExponent) {
  const CostModel cm(MakeLlama13B(), MakeClusterB(1));
  // log-log slope of causal attention flops should approach 2.
  const double f1 = cm.CausalAttentionFlops(16384);
  const double f2 = cm.CausalAttentionFlops(65536);
  const double slope = std::log(f2 / f1) / std::log(4.0);
  EXPECT_NEAR(slope, 2.0, 0.01);
}

TEST(CostModelPropertyTest, TransferTimesMonotoneInBytes) {
  const CostModel cm(MakeLlama7B(), MakeClusterA(2));
  double prev_intra = -1;
  double prev_inter = -1;
  for (int64_t bytes = 1; bytes < (1 << 28); bytes *= 4) {
    const double intra = cm.IntraNodeTransferTime(bytes);
    const double inter = cm.InterNodeTransferTime(bytes);
    EXPECT_GT(intra, prev_intra);
    EXPECT_GT(inter, prev_inter);
    EXPECT_GT(inter, intra);  // Inter always slower at equal volume.
    prev_intra = intra;
    prev_inter = inter;
  }
}

TEST(CostModelPropertyTest, RectSymmetricInQAndKv) {
  const CostModel cm(MakeLlama7B(), MakeClusterA(1));
  EXPECT_DOUBLE_EQ(cm.AttentionFlopsRect(100, 700), cm.AttentionFlopsRect(700, 100));
}

TEST(CostModelPropertyTest, GqaScalesKvNotCompute) {
  // Reducing KV heads shrinks KV bytes proportionally but leaves attention
  // FLOPs (score computation over all query heads) unchanged.
  TransformerConfig base = MakeLlama7B();
  for (const int kv_heads : {32, 16, 8, 4}) {
    TransformerConfig gqa = base;
    gqa.num_kv_heads = kv_heads;
    const CostModel cm(gqa, MakeClusterA(1));
    const CostModel ref(base, MakeClusterA(1));
    EXPECT_DOUBLE_EQ(cm.CausalAttentionFlops(4096), ref.CausalAttentionFlops(4096))
        << kv_heads;
    EXPECT_EQ(cm.KvBytesPerToken() * 32, ref.KvBytesPerToken() * kv_heads) << kv_heads;
  }
}

TEST(CostModelPropertyTest, TensorParallelScalingAcrossDegrees) {
  // More TP always shortens the linear stage for the same token count
  // (rate grows faster than the all-reduce overhead at these scales).
  const ClusterSpec base = MakeClusterB(2);
  double prev = 1e18;
  for (const int tp : {1, 2, 4}) {
    const ClusterSpec derived = ApplyTensorParallelism(base, tp);
    const CostModel cm(MakeLlama30B(), derived, tp);
    const double t = cm.LinearTime(8192);
    EXPECT_LT(t, prev) << "tp=" << tp;
    prev = t;
  }
}

TEST(CostModelPropertyTest, MoeDispatchGrowsWithEpGroup) {
  // Bigger EP groups (more GPUs per node hosting experts) exchange a larger
  // share of tokens.
  const TransformerConfig moe = MakeMoe8x550M();
  ClusterSpec two = MakeClusterA(1);
  two.gpus_per_node = 2;
  two.gpu_to_nic = {0, 0};
  ClusterSpec eight = MakeClusterA(1);
  const CostModel cm2(moe, two);
  const CostModel cm8(moe, eight);
  EXPECT_LT(cm2.LinearTime(8192), cm8.LinearTime(8192));
}

TEST(CostModelPropertyTest, ParamsMonotoneAcrossPresets) {
  EXPECT_LT(MakeLlama3B().NumParams(), MakeLlama7B().NumParams());
  EXPECT_LT(MakeLlama7B().NumParams(), MakeLlama13B().NumParams());
  EXPECT_LT(MakeLlama13B().NumParams(), MakeLlama30B().NumParams());
}

TEST(CostModelPropertyTest, ComputeTimeLinearInFlops) {
  const CostModel cm(MakeLlama7B(), MakeClusterA(1));
  const double launch = cm.cluster().kernel_launch_us;
  const double t1 = cm.ComputeTime(1e9) - launch;
  const double t4 = cm.ComputeTime(4e9) - launch;
  EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
}

}  // namespace
}  // namespace zeppelin
