#include <gtest/gtest.h>

#include "src/core/autotuner.h"
#include "src/core/registry.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"

namespace zeppelin {
namespace {

TEST(AutotunerTest, RanksAllCandidates) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  BatchSampler sampler(MakeGithubDistribution(), 65536, 5);
  const auto result =
      Autotune(trainer, {"te-cp", "llama-cp", "zeppelin"}, sampler, /*num_batches=*/3);
  ASSERT_EQ(result.ranking.size(), 3u);
  // Sorted best-first.
  EXPECT_GE(result.ranking[0].mean_tokens_per_second,
            result.ranking[1].mean_tokens_per_second);
  EXPECT_GE(result.ranking[1].mean_tokens_per_second,
            result.ranking[2].mean_tokens_per_second);
}

TEST(AutotunerTest, ZeppelinWinsItsHomeTurf) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  BatchSampler sampler(MakeGithubDistribution(), 65536, 5);
  const auto result = Autotune(trainer, KnownStrategyNames(), sampler, 3);
  EXPECT_EQ(result.best().spec, "zeppelin");
  EXPECT_GT(result.WinningMargin(), 1.0);
}

TEST(AutotunerTest, WorksOnExplicitBatches) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  Batch batch;
  batch.seq_lens = {32768, 16384, 8192, 8192};
  const auto result = Autotune(trainer, {"te-cp", "zeppelin"}, {batch});
  ASSERT_EQ(result.ranking.size(), 2u);
  EXPECT_EQ(result.best().spec, "zeppelin");
  EXPECT_GT(result.best().min_tokens_per_second, 0);
}

TEST(AutotunerTest, DeterministicRanking) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  Batch batch;
  batch.seq_lens = {16384, 16384, 16384, 16384};
  const auto a = Autotune(trainer, {"te-cp", "llama-cp", "hybrid-dp", "zeppelin"}, {batch});
  const auto b = Autotune(trainer, {"te-cp", "llama-cp", "hybrid-dp", "zeppelin"}, {batch});
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].spec, b.ranking[i].spec);
    EXPECT_DOUBLE_EQ(a.ranking[i].mean_tokens_per_second,
                     b.ranking[i].mean_tokens_per_second);
  }
}

TEST(AutotunerTest, SingleCandidateMarginIsOne) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(1));
  Batch batch;
  batch.seq_lens = {8192};
  const auto result = Autotune(trainer, {"zeppelin"}, {batch});
  EXPECT_DOUBLE_EQ(result.WinningMargin(), 1.0);
}

}  // namespace
}  // namespace zeppelin
