#include <gtest/gtest.h>

#include "src/baselines/double_ring.h"
#include "src/baselines/te_cp.h"
#include "src/core/trainer.h"
#include "src/core/zeppelin.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"
#include "src/sim/validate.h"

namespace zeppelin {
namespace {

class DoubleRingTest : public ::testing::Test {
 protected:
  DoubleRingTest()
      : fabric_(MakeClusterA(2)),
        cost_model_(MakeLlama7B(), fabric_.cluster()),
        engine_(fabric_) {}

  static Batch MakeBatch(std::vector<int64_t> lens) {
    Batch b;
    b.seq_lens = std::move(lens);
    return b;
  }

  FabricResources fabric_;
  CostModel cost_model_;
  Engine engine_;
};

TEST_F(DoubleRingTest, RotationVisitsEveryBlockExactlyOnce) {
  // If the hierarchical rotation is a proper tour, the summed per-round
  // FLOPs reproduce the full causal triangle — no block skipped or repeated.
  const Batch batch = MakeBatch({32768});
  DoubleRingStrategy dr;
  dr.Plan(batch, cost_model_, fabric_);
  TaskGraph g;
  dr.EmitLayer(g, Direction::kForward);
  double attn_time = 0;
  int kernels = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kAttentionCompute) {
      attn_time += t.duration_us;
      ++kernels;
    }
  }
  const double expected =
      cost_model_.CausalAttentionFlops(32768) / fabric_.cluster().flops_per_us();
  EXPECT_NEAR(attn_time - kernels * fabric_.cluster().kernel_launch_us, expected,
              expected * 1e-6);
}

TEST_F(DoubleRingTest, OuterHopsUseAllNicsInParallel) {
  const Batch batch = MakeBatch({65536});
  DoubleRingStrategy dr;
  dr.Plan(batch, cost_model_, fabric_);
  TaskGraph g;
  dr.EmitLayer(g, Direction::kForward);
  const SimResult sim = engine_.Run(g);
  for (int nic = 0; nic < 4; ++nic) {
    EXPECT_GT(sim.ResourceBusy(fabric_.NicTx(0, nic)), 0.0) << "nic " << nic;
  }
}

TEST_F(DoubleRingTest, MostRoundsAreIntraNode) {
  const Batch batch = MakeBatch({65536});
  DoubleRingStrategy dr;
  dr.Plan(batch, cost_model_, fabric_);
  TaskGraph g;
  dr.EmitLayer(g, Direction::kForward);
  int intra = 0;
  int inter = 0;
  for (const Task& t : g.tasks()) {
    intra += t.category == TaskCategory::kIntraComm;
    inter += t.category == TaskCategory::kInterComm;
  }
  // 15 rounds of 16 transfers: rounds 7 and 15... round 15 does not exist
  // (R-1 = 15 send rounds, outer at t=7 only -> 16 inter sends).
  EXPECT_EQ(inter, 16);
  EXPECT_EQ(intra, 14 * 16);
}

TEST_F(DoubleRingTest, BeatsTeCpOnLongSequences) {
  // Same volume, but the boundary hop is parallelized across NICs: strictly
  // better than the flat ring on inter-node workloads.
  const Batch batch = MakeBatch({65536});
  DoubleRingStrategy dr;
  TeCpStrategy te;
  dr.Plan(batch, cost_model_, fabric_);
  te.Plan(batch, cost_model_, fabric_);
  TaskGraph g_dr;
  dr.EmitLayer(g_dr, Direction::kForward);
  TaskGraph g_te;
  te.EmitLayer(g_te, Direction::kForward);
  EXPECT_LT(engine_.Run(g_dr).makespan_us, engine_.Run(g_te).makespan_us);
}

TEST_F(DoubleRingTest, LosesToZeppelinOnShortSequences) {
  // Double ring still ships KV for every sequence; Zeppelin keeps shorts
  // local and pays nothing.
  std::vector<int64_t> lens(32, 2048);
  const Batch batch = MakeBatch(lens);
  DoubleRingStrategy dr;
  ZeppelinStrategy zep;
  dr.Plan(batch, cost_model_, fabric_);
  zep.Plan(batch, cost_model_, fabric_);
  TaskGraph g_dr;
  dr.EmitLayer(g_dr, Direction::kForward);
  TaskGraph g_zep;
  zep.EmitLayer(g_zep, Direction::kForward);
  EXPECT_LT(engine_.Run(g_zep).makespan_us, engine_.Run(g_dr).makespan_us);
}

TEST_F(DoubleRingTest, SchedulesAreLegal) {
  BatchSampler sampler(MakeGithubDistribution(), 65536, 13);
  DoubleRingStrategy dr;
  dr.Plan(sampler.NextBatch(), cost_model_, fabric_);
  for (const Direction d : {Direction::kForward, Direction::kBackward}) {
    TaskGraph g;
    dr.EmitLayer(g, d);
    const SimResult sim = engine_.Run(g);
    EXPECT_TRUE(IsLegalSchedule(g, sim, fabric_.num_resources()));
  }
}

TEST_F(DoubleRingTest, SingleNodeDegeneratesToInnerRing) {
  const FabricResources one_node(MakeClusterA(1));
  const CostModel cm(MakeLlama7B(), one_node.cluster());
  DoubleRingStrategy dr;
  dr.Plan(MakeBatch({16384}), cm, one_node);
  TaskGraph g;
  dr.EmitLayer(g, Direction::kForward);
  for (const Task& t : g.tasks()) {
    EXPECT_NE(t.category, TaskCategory::kInterComm);
  }
}

TEST_F(DoubleRingTest, TokensConserved) {
  BatchSampler sampler(MakeArxivDistribution(), 65536, 4);
  const Batch batch = sampler.NextBatch();
  DoubleRingStrategy dr;
  dr.Plan(batch, cost_model_, fabric_);
  int64_t total = 0;
  for (int64_t t : dr.LinearTokensPerRank()) {
    total += t;
  }
  EXPECT_EQ(total, batch.total_tokens());
}

}  // namespace
}  // namespace zeppelin
