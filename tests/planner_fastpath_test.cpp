// Fast-path planner equivalence and complexity guards.
//
// The heap-based planner fast path must produce byte-identical plans to the
// reference greedy (same zones, ring groups, rank loads, and thresholds) for
// every batch — including batches that force overflow restarts — and must do
// so in O((S + P) log P) heap operations. These tests pin both properties.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/load_tracker.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/partitioner.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

SequencePartitioner::Options FastOptions(int64_t capacity) {
  return {.token_capacity = capacity, .fast_path = true};
}

SequencePartitioner::Options NaiveOptions(int64_t capacity) {
  return {.token_capacity = capacity, .fast_path = false};
}

// Full byte-level plan comparison with readable failure context: per-ring
// headers first (so a divergence names the ring), then the rank arena as one
// flat compare — the byte-identity definition of docs/PLAN_FORMAT.md.
void ExpectPlansIdentical(const PartitionPlan& fast, const PartitionPlan& naive,
                          const std::string& context) {
  ASSERT_EQ(fast.inter_node.size(), naive.inter_node.size()) << context;
  for (size_t i = 0; i < fast.inter_node.size(); ++i) {
    EXPECT_EQ(fast.inter_node[i].seq_id, naive.inter_node[i].seq_id) << context << " ring " << i;
    EXPECT_TRUE(fast.inter_node[i] == naive.inter_node[i]) << context << " ring " << i;
  }
  ASSERT_EQ(fast.intra_node.size(), naive.intra_node.size()) << context;
  for (size_t i = 0; i < fast.intra_node.size(); ++i) {
    EXPECT_EQ(fast.intra_node[i].seq_id, naive.intra_node[i].seq_id) << context << " ring " << i;
    EXPECT_TRUE(fast.intra_node[i] == naive.intra_node[i]) << context << " ring " << i;
  }
  EXPECT_EQ(fast.rank_arena, naive.rank_arena) << context;
  ASSERT_EQ(fast.local.size(), naive.local.size()) << context;
  EXPECT_EQ(fast.tokens_per_rank, naive.tokens_per_rank) << context;
  EXPECT_EQ(fast.threshold_s1, naive.threshold_s1) << context;
  EXPECT_EQ(fast.threshold_s0, naive.threshold_s0) << context;
  // The defaulted operator== covers every remaining field byte-for-byte.
  EXPECT_TRUE(fast == naive) << context;
}

void CheckEquivalence(const ClusterSpec& cluster, const Batch& batch, int64_t capacity,
                      const std::string& context) {
  SequencePartitioner fast(cluster, FastOptions(capacity));
  SequencePartitioner naive(cluster, NaiveOptions(capacity));
  PlannerScratch scratch;  // Shared between paths: contents must not leak.
  PartitionPlan fast_plan;
  fast.Partition(batch, &scratch, &fast_plan);
  PartitionPlan naive_plan;
  naive.Partition(batch, &scratch, &naive_plan);
  ExpectPlansIdentical(fast_plan, naive_plan, context);

  // The parallel/sharded engine extends the same contract (exhaustive
  // thread-count sweeps live in tests/parallel_planner_test.cpp).
  ThreadPool pool(3);
  SequencePartitioner::Options popts = FastOptions(capacity);
  popts.pool = &pool;
  SequencePartitioner parallel(cluster, popts);
  PartitionPlan parallel_plan;
  parallel.Partition(batch, &scratch, &parallel_plan);
  ExpectPlansIdentical(parallel_plan, naive_plan, context + " [parallel]");
}

// --- Randomized equivalence across Table 2 distributions and clusters --------

TEST(PlannerFastPathTest, EquivalentOnEvaluationDatasets) {
  const std::vector<ClusterSpec> clusters = {MakeClusterA(2), MakeClusterA(8), MakeClusterC(4)};
  for (const auto& dist : EvaluationDatasets()) {
    for (const ClusterSpec& cluster : clusters) {
      const int world = cluster.num_nodes * cluster.gpus_per_node;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        BatchSampler sampler(dist, static_cast<int64_t>(world) * 4096, seed);
        const Batch batch = sampler.NextBatch();
        // Paper-style 4k tokens/GPU capacity: exercises all three zones.
        CheckEquivalence(cluster, batch, 4096,
                         dist.name() + " " + cluster.name + " seed " + std::to_string(seed));
      }
    }
  }
}

// Zero-slack capacity (L = ceil(total/world)) forces the packing loops to
// overflow and the thresholds to shrink — the restart paths must still match
// the reference exactly, including the incremental-continuation shortcut.
TEST(PlannerFastPathTest, EquivalentUnderForcedOverflowRestarts) {
  const std::vector<ClusterSpec> clusters = {MakeClusterA(4), MakeClusterC(8)};
  for (const auto& dist : EvaluationDatasets()) {
    for (const ClusterSpec& cluster : clusters) {
      const int world = cluster.num_nodes * cluster.gpus_per_node;
      for (uint64_t seed = 11; seed <= 14; ++seed) {
        BatchSampler sampler(dist, static_cast<int64_t>(world) * 8192, seed);
        const Batch batch = sampler.NextBatch();
        const int64_t tight = (batch.total_tokens() + world - 1) / world;
        SequencePartitioner probe(cluster, NaiveOptions(tight));
        const PartitionPlan plan = probe.Partition(batch);
        // The zero-slack capacity must actually shrink a threshold somewhere,
        // otherwise this test is not exercising restarts.
        const int64_t node_capacity = tight * cluster.gpus_per_node;
        bool restarted = plan.threshold_s1 < node_capacity;
        for (int64_t s0 : plan.threshold_s0) {
          restarted = restarted || (s0 > 0 && s0 < tight);
        }
        EXPECT_TRUE(restarted) << dist.name() << " seed " << seed;
        CheckEquivalence(cluster, batch, tight,
                         dist.name() + " tight " + cluster.name + " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(PlannerFastPathTest, EquivalentWithZoneThresholdCaps) {
  // Capped initial thresholds (the zone-aware D6 extension) force nonempty
  // z2 / z1 zones with multi-node rings and multi-fragment splits.
  const ClusterSpec cluster = MakeClusterA(4);
  for (const auto& dist : EvaluationDatasets()) {
    BatchSampler sampler(dist, 32 * 8192, 99);
    const Batch batch = sampler.NextBatch();
    for (int64_t inter_cap : {int64_t{8192}, int64_t{32768}}) {
      SequencePartitioner::Options fast_opts{.token_capacity = 8192,
                                             .max_inter_threshold = inter_cap,
                                             .max_local_threshold = 2048,
                                             .fast_path = true};
      SequencePartitioner::Options naive_opts = fast_opts;
      naive_opts.fast_path = false;
      PartitionPlan fast_plan = SequencePartitioner(cluster, fast_opts).Partition(batch);
      PartitionPlan naive_plan = SequencePartitioner(cluster, naive_opts).Partition(batch);
      ExpectPlansIdentical(fast_plan, naive_plan, dist.name() + " capped");
      // With a finite inter threshold below max_len, long sequences must
      // actually be chunked (multi-node rings, or single-node rings when
      // s_avg lets a sequence fit one bucket).
      if (inter_cap <= batch.max_len()) {
        EXPECT_FALSE(fast_plan.inter_node.empty() && fast_plan.intra_node.empty())
            << dist.name();
      }
    }
  }
}

TEST(PlannerFastPathTest, EquivalentOnEdgeBatches) {
  const ClusterSpec one_node = MakeClusterA(1);
  const ClusterSpec cluster = MakeClusterA(2);
  auto make = [](std::vector<int64_t> lens) {
    Batch b;
    b.seq_lens = std::move(lens);
    return b;
  };
  // Single sequence filling the cluster exactly.
  CheckEquivalence(cluster, make({16 * 4096}), 4096, "single full");
  // All-equal lengths (pure tie-breaking).
  CheckEquivalence(cluster, make(std::vector<int64_t>(64, 1024)), 4096, "uniform");
  // Duplicate lengths around the promotion boundary (41k tokens on a 64k
  // cluster at L=4096 -> tight enough to promote, loose enough to fit).
  CheckEquivalence(cluster, make({8192, 8192, 8192, 4096, 4096, 4096, 4096, 64, 64, 64}), 4096,
                   "duplicates");
  // One-node cluster: every z2 sequence is a single-node ring.
  CheckEquivalence(one_node, make({16384, 8192, 2048, 512, 512}), 4096, "one node");
}

// --- Operation-count regression guard ----------------------------------------

// Plan() on S = 8k sequences, P = 256 GPUs must stay within O((S+P) log P)
// heap operations. A reintroduced linear scan or per-sequence re-sort blows
// past this bound by an order of magnitude (S*P/8 alone is ~260k single ops).
TEST(PlannerFastPathTest, HeapOperationCountStaysLogarithmic) {
  const int kSeqs = 8192;
  const ClusterSpec cluster = MakeClusterA(32);  // P = 256.
  const int world = cluster.num_nodes * cluster.gpus_per_node;
  ASSERT_EQ(world, 256);
  const double log_p = std::log2(256.0);
  const int64_t bound = static_cast<int64_t>(2.0 * (kSeqs + world) * log_p);

  for (const auto& dist : EvaluationDatasets()) {
    Rng rng(7);
    Batch batch;
    for (int i = 0; i < kSeqs; ++i) {
      batch.seq_lens.push_back(dist.Sample(rng));
    }
    for (int slack_pct : {0, 25}) {
      const int64_t average = (batch.total_tokens() + world - 1) / world;
      const int64_t capacity = average + average * slack_pct / 100;
      SequencePartitioner partitioner(cluster, FastOptions(capacity));
      PlannerScratch scratch;
      const PartitionPlan plan = partitioner.Partition(batch, &scratch);
      EXPECT_EQ(plan.total_tokens(), batch.total_tokens());
      EXPECT_GT(scratch.heap_ops(), 0) << "fast path must route through LoadTracker";
      EXPECT_LE(scratch.heap_ops(), bound)
          << dist.name() << " slack " << slack_pct << "%: heap op count suggests a "
          << "linear scan crept back into the packing loops";
    }
  }
}

// --- LoadTracker unit behavior -----------------------------------------------

// Reference implementation: plain array with linear scans.
struct ReferenceLoads {
  std::vector<int64_t> loads;
  int argmin() const {
    int best = 0;
    for (int i = 1; i < static_cast<int>(loads.size()); ++i) {
      if (loads[i] < loads[best]) {
        best = i;
      }
    }
    return best;
  }
  std::vector<int> k_least(int k) const {
    std::vector<int> order(loads.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return loads[a] < loads[b]; });
    order.resize(k);
    return order;
  }
};

TEST(PlannerFastPathTest, LoadTrackerMatchesLinearReference) {
  Rng rng(1234);
  for (int n : {1, 2, 7, 8, 64, 200}) {
    LoadTracker tracker(n);
    ReferenceLoads ref;
    ref.loads.assign(n, 0);
    std::vector<int> k_out;
    for (int step = 0; step < 2000; ++step) {
      const int op = static_cast<int>(rng.NextBounded(3));
      if (op == 0) {
        ASSERT_EQ(tracker.argmin(), ref.argmin()) << "n=" << n << " step=" << step;
        ASSERT_EQ(tracker.min_load(), ref.loads[ref.argmin()]);
      } else if (op == 1) {
        const int i = static_cast<int>(rng.NextBounded(n));
        int64_t delta = static_cast<int64_t>(rng.NextBounded(10000));
        if (rng.NextBounded(4) == 0) {
          delta = -std::min(delta, ref.loads[i]);  // Loads must stay >= 0.
        }
        tracker.add(i, delta);
        ref.loads[i] += delta;
        ASSERT_EQ(tracker.load(i), ref.loads[i]);
      } else {
        const int k = 1 + static_cast<int>(rng.NextBounded(n));
        tracker.k_least(k, &k_out);
        ASSERT_EQ(k_out, ref.k_least(k)) << "n=" << n << " step=" << step << " k=" << k;
        // k_least must not perturb subsequent queries.
        ASSERT_EQ(tracker.argmin(), ref.argmin());
      }
    }
  }
}

}  // namespace
}  // namespace zeppelin
