// PlanCache (src/core/plan_cache.h): the cache-key canonicalization
// properties (randomized + seeded, twin-checked — permuting sequences or
// renaming slots never changes the key, any semantic change always does),
// exact-tier hit semantics (zero-copy repeats, seq-id remap for permuted
// batches, every served plan certified), LRU eviction, the near-match
// family tier, the poisoned-entry hook, and a concurrent hammer (the TSAN
// target together with plan_service_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/plan_cache.h"
#include "src/core/plan_service.h"
#include "src/core/plan_verify.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

Batch SampleBatch(int num_seqs, uint64_t seed) {
  const LengthDistribution dist = DatasetByName("github");
  Rng rng(seed);
  Batch batch;
  batch.seq_lens.reserve(num_seqs);
  for (int i = 0; i < num_seqs; ++i) {
    batch.seq_lens.push_back(dist.Sample(rng));
  }
  return batch;
}

Batch Permuted(const Batch& batch, uint64_t seed) {
  Batch out = batch;
  Rng rng(seed);
  // Fisher-Yates with the repo Rng: a uniformly random slot renaming.
  for (size_t i = out.seq_lens.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(out.seq_lens[i - 1], out.seq_lens[j]);
  }
  return out;
}

struct Rig {
  ClusterSpec cluster = MakeClusterA(2);
  FabricResources fabric{cluster};
  CostModel cost_model{MakeLlama3B(), cluster};

  PlanRequest Request(const Batch& batch) const {
    PlanRequest request;
    request.batch = &batch;
    request.cost_model = &cost_model;
    request.fabric = &fabric;
    return request;
  }
};

TEST(PlanCacheKeyTest, PermutationAndRenamingAreCanonical) {
  Rig rig;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const Batch batch = SampleBatch(64, seed);
    const Batch shuffled = Permuted(batch, seed * 977);
    const PlanCacheKey a = ComputePlanCacheKey(rig.Request(batch));
    const PlanCacheKey b = ComputePlanCacheKey(rig.Request(shuffled));
    EXPECT_EQ(a, b) << "seed " << seed;  // Order/renaming never changes the key.
    // Twin check: the unpermuted request keeps producing the same key.
    EXPECT_EQ(a, ComputePlanCacheKey(rig.Request(batch)));
  }
}

TEST(PlanCacheKeyTest, AnySemanticChangeSplitsTheKey) {
  Rig rig;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Batch batch = SampleBatch(64, seed);
    const PlanCacheKey base = ComputePlanCacheKey(rig.Request(batch));
    Rng rng(seed * 31);

    // Any single length change (including a swap-breaking one).
    Batch longer = batch;
    longer.seq_lens[rng.NextBounded(longer.seq_lens.size())] += 1;
    EXPECT_NE(base, ComputePlanCacheKey(rig.Request(longer)));

    // Adding or dropping a sequence.
    Batch grown = batch;
    grown.seq_lens.push_back(batch.seq_lens.front());
    EXPECT_NE(base, ComputePlanCacheKey(rig.Request(grown)));
    Batch shrunk = batch;
    shrunk.seq_lens.pop_back();
    EXPECT_NE(base, ComputePlanCacheKey(rig.Request(shrunk)));

    // A different model config.
    Rig other_model;
    other_model.cost_model = CostModel{MakeLlama13B(), other_model.cluster};
    EXPECT_NE(base, ComputePlanCacheKey(other_model.Request(batch)));

    // A different cluster shape.
    Rig other_cluster;
    other_cluster.cluster = MakeClusterA(4);
    other_cluster.fabric = FabricResources{other_cluster.cluster};
    other_cluster.cost_model = CostModel{MakeLlama3B(), other_cluster.cluster};
    EXPECT_NE(base, ComputePlanCacheKey(other_cluster.Request(batch)));

    // A topology change surfaced through the fabric: one straggler rank.
    Rig slowed;
    slowed.fabric.set_rank_speed(static_cast<int>(rng.NextBounded(16)), 0.5);
    EXPECT_NE(base, ComputePlanCacheKey(slowed.Request(batch)));

    // A planning-option change that alters the plan bytes.
    PlanRequest optioned = rig.Request(batch);
    optioned.options.token_capacity = 1 << 20;
    EXPECT_NE(base, ComputePlanCacheKey(optioned));
    PlanRequest flat = rig.Request(batch);
    flat.options.hierarchical_partitioning = false;
    EXPECT_NE(base, ComputePlanCacheKey(flat));

    // Twin check: recomputing the unchanged request still matches.
    EXPECT_EQ(base, ComputePlanCacheKey(rig.Request(batch)));
  }
}

TEST(PlanCacheKeyTest, EqualTotalMultisetsSplitTheKey) {
  // Regression: batches are sized to a fixed token budget, so distinct
  // batches routinely share (count, total tokens). The summed per-element
  // mix must still separate them — a single FNV step degraded to a function
  // of count + total for 64-aligned lengths, and these two real sampler
  // outputs collided.
  Batch a, b;
  a.seq_lens = {1280, 15488, 48768};
  b.seq_lens = {30080, 14720, 20736};
  EXPECT_NE(CanonicalBatchSignature(a), CanonicalBatchSignature(b));

  // Randomized: 64-aligned partitions of one total must get pairwise
  // distinct signatures whenever their multisets differ (and equal ones
  // when they do not).
  Rng rng(0x70741);
  std::vector<std::pair<std::vector<int64_t>, uint64_t>> seen;
  for (int trial = 0; trial < 64; ++trial) {
    Batch batch;
    int64_t remaining = 65536;
    while (remaining > 0) {
      const int64_t units = remaining / 64;
      const int64_t take =
          64 * (1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(units))));
      batch.seq_lens.push_back(take);
      remaining -= take;
    }
    const uint64_t sig = CanonicalBatchSignature(batch);
    std::vector<int64_t> sorted = batch.seq_lens;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [lens, other_sig] : seen) {
      if (lens == sorted) {
        EXPECT_EQ(sig, other_sig);
      } else {
        EXPECT_NE(sig, other_sig);
      }
    }
    seen.emplace_back(std::move(sorted), sig);
  }
}

TEST(PlanCacheTest, ExactHitIsZeroCopyAndCertified) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service);
  const Batch batch = SampleBatch(256, 0xcac4e);

  const PlanResponse miss = cache.Plan(rig.Request(batch));
  ASSERT_NE(miss.plan, nullptr);
  EXPECT_EQ(miss.stats.cache_outcome, CacheOutcome::kMiss);
  EXPECT_TRUE(miss.stats.verified);

  const PlanResponse hit = cache.Plan(rig.Request(batch));
  EXPECT_EQ(hit.stats.cache_outcome, CacheOutcome::kHit);
  EXPECT_TRUE(hit.stats.verified);
  EXPECT_EQ(hit.plan.get(), miss.plan.get());  // Shared immutable handle.
  EXPECT_EQ(hit.digest, miss.digest);
  EXPECT_EQ(hit.stats.partition_time_us, 0);
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(PlanCacheTest, PermutedBatchHitsWithARemappedPlan) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service);
  const Batch batch = SampleBatch(256, 0x9e9);
  const Batch shuffled = Permuted(batch, 0x41);

  const PlanResponse miss = cache.Plan(rig.Request(batch));
  const PlanResponse hit = cache.Plan(rig.Request(shuffled));
  EXPECT_EQ(hit.stats.cache_outcome, CacheOutcome::kHit);
  ASSERT_NE(hit.plan, nullptr);
  EXPECT_NE(hit.plan.get(), miss.plan.get());  // Remapped copy, not the handle.
  EXPECT_TRUE(hit.stats.verified);

  // The remap must be a *correct* plan for the permuted batch, not just a
  // cache artifact — certify it independently and line up the loads.
  PlanVerifyOptions opts;
  opts.world = rig.cluster.world_size();
  const PlanVerifyResult verdict = VerifyPlan(*hit.plan, &shuffled, nullptr, opts);
  EXPECT_TRUE(verdict.ok()) << verdict.message;
  EXPECT_EQ(hit.plan->tokens_per_rank, miss.plan->tokens_per_rank);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  Rig rig;
  PlannerService service;
  PlanCacheOptions options;
  options.capacity = 2;
  options.near_match = false;
  PlanCache cache(&service, options);

  const Batch a = SampleBatch(64, 1), b = SampleBatch(64, 2), c = SampleBatch(64, 3);
  cache.Plan(rig.Request(a));
  cache.Plan(rig.Request(b));
  cache.Plan(rig.Request(a));  // Refresh a; b is now coldest.
  cache.Plan(rig.Request(c));  // Evicts b.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.Plan(rig.Request(a)).stats.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.Plan(rig.Request(b)).stats.cache_outcome, CacheOutcome::kMiss);
}

TEST(PlanCacheTest, NearMatchServesAPatchedPlan) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service);
  Batch batch = SampleBatch(256, 0x7a7);

  const PlanResponse first = cache.Plan(rig.Request(batch));
  EXPECT_EQ(first.stats.cache_outcome, CacheOutcome::kMiss);

  // Nudge a few lengths without leaving their log2 buckets: a different
  // exact key, the same family bucket — the near-match tier's home turf.
  // Shrinks, not grows: growth can outgrow the family's derived capacity,
  // which legally rebases (and then counts as a miss, not a near-match).
  Batch nudged = batch;
  for (int slot : {3, 57, 200}) {
    nudged.seq_lens[slot] -= 1;
  }
  ASSERT_EQ(BatchBucketSignature(batch), BatchBucketSignature(nudged));
  const PlanResponse near = cache.Plan(rig.Request(nudged));
  ASSERT_NE(near.plan, nullptr);
  EXPECT_EQ(near.stats.cache_outcome, CacheOutcome::kNearMatch);
  EXPECT_TRUE(near.stats.verified);
  EXPECT_EQ(cache.counters().near_matches, 1u);

  // The patched plan covers the nudged batch exactly.
  PlanVerifyOptions opts;
  opts.world = rig.cluster.world_size();
  const PlanVerifyResult verdict = VerifyPlan(*near.plan, &nudged, nullptr, opts);
  EXPECT_TRUE(verdict.ok()) << verdict.message;

  // An exact repeat of the nudged batch is now a plain hit.
  EXPECT_EQ(cache.Plan(rig.Request(nudged)).stats.cache_outcome, CacheOutcome::kHit);
}

TEST(PlanCacheTest, FamilyEvictionClosesItsSession) {
  Rig rig;
  PlannerService service;
  PlanCacheOptions options;
  options.family_capacity = 1;
  PlanCache cache(&service, options);

  cache.Plan(rig.Request(SampleBatch(64, 11)));
  EXPECT_EQ(service.session_count(), 1u);
  cache.Plan(rig.Request(SampleBatch(128, 12)));  // New family; old one evicted.
  EXPECT_EQ(cache.family_count(), 1u);
  EXPECT_EQ(service.session_count(), 1u);  // The evicted session was closed.
}

TEST(PlanCacheTest, PoisonedEntryIsNeverServed) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service);
  const Batch batch = SampleBatch(256, 0xbad);

  const PlanResponse miss = cache.Plan(rig.Request(batch));
  ASSERT_TRUE(cache.PoisonEntryForTest(rig.Request(batch)));

  // The poisoned entry is caught by the certifier, dropped, and replanned —
  // the caller still receives a correct (and certified) plan. The replan
  // rides the already-based family session (an empty-delta patch), so it
  // surfaces as a near-match; only never as a hit of the poisoned bytes.
  const PlanResponse replanned = cache.Plan(rig.Request(batch));
  EXPECT_NE(replanned.stats.cache_outcome, CacheOutcome::kHit);
  EXPECT_TRUE(replanned.stats.verified);
  EXPECT_EQ(replanned.digest, miss.digest);
  EXPECT_EQ(cache.counters().verify_failures, 1u);

  // And the replanned insert restored a healthy entry.
  EXPECT_EQ(cache.Plan(rig.Request(batch)).stats.cache_outcome, CacheOutcome::kHit);
}

TEST(PlanCacheTest, SignatureCollisionIsAMissNotAVerifyFailure) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service, {.near_match = false});
  const Batch planted = SampleBatch(256, 0xc0111);
  const Batch other = SampleBatch(256, 0xd1ff);

  ASSERT_EQ(cache.Plan(rig.Request(planted)).stats.cache_outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(cache.RekeyEntryForTest(rig.Request(planted), rig.Request(other)));

  // `other` now finds an entry holding a different length multiset — a
  // simulated signature collision. That is not a poisoned entry: it must be
  // served as an ordinary miss with a correct plan, without touching the
  // verify-failure counter, and the replacement entry must hit afterwards.
  const PlanResponse miss = cache.Plan(rig.Request(other));
  EXPECT_EQ(miss.stats.cache_outcome, CacheOutcome::kMiss);
  EXPECT_TRUE(miss.stats.verified);
  EXPECT_EQ(cache.counters().verify_failures, 0u);

  const PlanResponse hit = cache.Plan(rig.Request(other));
  EXPECT_EQ(hit.stats.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(hit.digest, miss.digest);
  EXPECT_EQ(cache.counters().verify_failures, 0u);
}

TEST(PlanCacheTest, SessionRequestsBypassTheCache) {
  Rig rig;
  PlannerService service;
  PlanCache cache(&service);
  const Batch batch = SampleBatch(64, 0x5e5);
  PlanRequest request = rig.Request(batch);
  request.stream_id = "stream";
  const PlanResponse response = cache.Plan(request);
  EXPECT_EQ(response.stats.cache_outcome, CacheOutcome::kBypass);
  EXPECT_EQ(cache.counters().bypasses, 1u);
  EXPECT_EQ(cache.size(), 0u);
  service.CloseSession("stream");
}

TEST(PlanCacheTest, ConcurrentMixedTrafficIsSafe) {
  Rig rig;
  PlannerService service;
  PlanCacheOptions options;
  options.capacity = 8;
  PlanCache cache(&service, options);
  std::vector<Batch> batches;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    batches.push_back(SampleBatch(128, 0xc0 + seed));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xf00 + t);
      for (int i = 0; i < 40; ++i) {
        const Batch& batch = batches[rng.NextBounded(batches.size())];
        const PlanResponse response = cache.Plan(rig.Request(batch));
        ASSERT_NE(response.plan, nullptr);
        ASSERT_TRUE(response.stats.verified);
        ASSERT_EQ(response.plan->total_tokens(), batch.total_tokens());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const PlanCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits + counters.misses + counters.near_matches, 160u);
  EXPECT_LE(cache.size(), 8u);
}

}  // namespace
}  // namespace zeppelin
