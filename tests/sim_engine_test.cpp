#include <gtest/gtest.h>

#include "src/common/trace_json.h"
#include "src/sim/engine.h"
#include "src/sim/graph.h"
#include "src/sim/trace.h"
#include "src/topology/path.h"

namespace zeppelin {
namespace {

class SimEngineTest : public ::testing::Test {
 protected:
  SimEngineTest() : fabric_(MakeClusterA(2)), engine_(fabric_) {}
  FabricResources fabric_;
  Engine engine_;
};

TEST_F(SimEngineTest, SerializesTasksOnOneResource) {
  TaskGraph g;
  const ResourceId lane = fabric_.ComputeLane(0);
  g.AddCompute(lane, 10.0, TaskCategory::kAttentionCompute, {}, "a", 0);
  g.AddCompute(lane, 5.0, TaskCategory::kAttentionCompute, {}, "b", 0);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.makespan_us, 15.0);
  EXPECT_DOUBLE_EQ(r.start_us[1], 10.0);
}

TEST_F(SimEngineTest, ParallelOnDistinctResources) {
  TaskGraph g;
  g.AddCompute(fabric_.ComputeLane(0), 10.0, TaskCategory::kAttentionCompute, {}, "a", 0);
  g.AddCompute(fabric_.ComputeLane(1), 8.0, TaskCategory::kAttentionCompute, {}, "b", 1);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.makespan_us, 10.0);
  EXPECT_DOUBLE_EQ(r.start_us[1], 0.0);
}

TEST_F(SimEngineTest, DependenciesGateStart) {
  TaskGraph g;
  const TaskId a = g.AddCompute(fabric_.ComputeLane(0), 7.0, TaskCategory::kAttentionCompute,
                                {}, "a", 0);
  g.AddCompute(fabric_.ComputeLane(1), 3.0, TaskCategory::kAttentionCompute, {a}, "b", 1);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.start_us[1], 7.0);
  EXPECT_DOUBLE_EQ(r.makespan_us, 10.0);
}

TEST_F(SimEngineTest, TransferOccupiesWholePath) {
  TaskGraph g;
  const TransferPath path = fabric_.Resolve(0, 8);  // Cross-node, 4 channels.
  const int64_t bytes = 1 << 20;
  g.AddTransfer(path, bytes, TaskCategory::kInterComm, {}, "x", 0);
  // A second transfer on the same NIC serializes even though the source GPU
  // differs (GPUs 0 and 1 share NIC 0 on Cluster A).
  const TransferPath path2 = fabric_.Resolve(1, 9);
  g.AddTransfer(path2, bytes, TaskCategory::kInterComm, {}, "y", 1);
  const SimResult r = engine_.Run(g);
  const double one = bytes / fabric_.cluster().nic_bandwidth +
                     fabric_.cluster().inter_latency_us;
  EXPECT_NEAR(r.makespan_us, 2 * one, 1e-6);
}

TEST_F(SimEngineTest, OppositeNicDirectionsDoNotContend) {
  TaskGraph g;
  const int64_t bytes = 1 << 20;
  g.AddTransfer(fabric_.Resolve(0, 8), bytes, TaskCategory::kInterComm, {}, "fwd", 0);
  g.AddTransfer(fabric_.Resolve(8, 0), bytes, TaskCategory::kInterComm, {}, "rev", 8);
  const SimResult r = engine_.Run(g);
  const double one = bytes / fabric_.cluster().nic_bandwidth +
                     fabric_.cluster().inter_latency_us;
  EXPECT_NEAR(r.makespan_us, one, 1e-6);  // Full duplex.
}

TEST_F(SimEngineTest, BarriersAreFree) {
  TaskGraph g;
  const TaskId a = g.AddCompute(fabric_.ComputeLane(0), 4.0, TaskCategory::kAttentionCompute,
                                {}, "a", 0);
  const TaskId bar = g.AddBarrier({a});
  g.AddCompute(fabric_.ComputeLane(1), 4.0, TaskCategory::kAttentionCompute, {bar}, "b", 1);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.makespan_us, 8.0);
  EXPECT_DOUBLE_EQ(r.finish_us[bar], 4.0);
}

TEST_F(SimEngineTest, ZeroDurationChainResolvesInstantly) {
  TaskGraph g;
  TaskId prev = g.AddBarrier({});
  for (int i = 0; i < 50; ++i) {
    prev = g.AddBarrier({prev});
  }
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.makespan_us, 0.0);
}

TEST_F(SimEngineTest, ProgramOrderIsFifoPerResource) {
  TaskGraph g;
  const ResourceId lane = fabric_.ComputeLane(0);
  // Task 0 long, task 1 short: short one must still wait (FIFO, no EDF).
  g.AddCompute(lane, 100.0, TaskCategory::kAttentionCompute, {}, "long", 0);
  g.AddCompute(lane, 1.0, TaskCategory::kAttentionCompute, {}, "short", 0);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.start_us[1], 100.0);
}

TEST_F(SimEngineTest, MultiResourceTaskWaitsForAll) {
  TaskGraph g;
  const ResourceId r0 = fabric_.NvswitchEgress(0);
  const ResourceId r1 = fabric_.NvswitchIngress(1);
  // Occupy r1 first.
  Task blocker;
  blocker.duration_us = 20.0;
  blocker.category = TaskCategory::kIntraComm;
  blocker.resources = {r1};
  blocker.label = "blocker";
  g.AddTransferLike(std::move(blocker));
  // Multi-resource task needs both r0 and r1.
  Task both;
  both.duration_us = 5.0;
  both.category = TaskCategory::kIntraComm;
  both.resources = {r0, r1};
  both.label = "both";
  const TaskId both_id = g.AddTransferLike(std::move(both));
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.start_us[both_id], 20.0);
}

TEST_F(SimEngineTest, NoDeadlockOnInterleavedMultiResourceTasks) {
  TaskGraph g;
  const ResourceId a = fabric_.NvswitchEgress(0);
  const ResourceId b = fabric_.NvswitchIngress(1);
  for (int i = 0; i < 20; ++i) {
    Task t;
    t.duration_us = 1.0;
    t.category = TaskCategory::kIntraComm;
    t.resources = (i % 2 == 0) ? std::vector<ResourceId>{a, b} : std::vector<ResourceId>{b, a};
    t.label = "t" + std::to_string(i);
    g.AddTransferLike(std::move(t));
  }
  const SimResult r = engine_.Run(g);  // ZCHECK inside fails on deadlock.
  EXPECT_DOUBLE_EQ(r.makespan_us, 20.0);
}

TEST_F(SimEngineTest, CategoryAccounting) {
  TaskGraph g;
  g.AddCompute(fabric_.ComputeLane(0), 10.0, TaskCategory::kAttentionCompute, {}, "a", 0);
  g.AddCompute(fabric_.ComputeLane(0), 4.0, TaskCategory::kLinearCompute, {}, "l", 0);
  const SimResult r = engine_.Run(g);
  EXPECT_DOUBLE_EQ(r.CategoryBusy(TaskCategory::kAttentionCompute), 10.0);
  EXPECT_DOUBLE_EQ(r.CategoryBusy(TaskCategory::kLinearCompute), 4.0);
  EXPECT_DOUBLE_EQ(r.Utilization(fabric_.ComputeLane(0)), 1.0);
  EXPECT_DOUBLE_EQ(r.Utilization(fabric_.ComputeLane(1)), 0.0);
}

TEST_F(SimEngineTest, DeterministicAcrossRuns) {
  TaskGraph g;
  for (int i = 0; i < 200; ++i) {
    g.AddCompute(fabric_.ComputeLane(i % 16), 1.0 + i % 7, TaskCategory::kAttentionCompute,
                 i > 0 ? std::vector<TaskId>{static_cast<TaskId>(i / 2)} : std::vector<TaskId>{},
                 "t", i % 16);
  }
  const SimResult r1 = engine_.Run(g);
  const SimResult r2 = engine_.Run(g);
  EXPECT_EQ(r1.start_us, r2.start_us);
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
}

TEST_F(SimEngineTest, TraceCapturesEvents) {
  TaskGraph g;
  g.AddCompute(fabric_.ComputeLane(0), 10.0, TaskCategory::kAttentionCompute, {}, "k", 0);
  g.AddTransfer(fabric_.Resolve(0, 1), 1 << 20, TaskCategory::kIntraComm, {}, "x", 0);
  ChromeTraceWriter trace;
  engine_.Run(g, &trace);
  // 1 compute slice + 2 path-channel slices.
  EXPECT_EQ(trace.event_count(), 3u);
  EXPECT_NE(trace.ToJson().find("\"k\""), std::string::npos);
}

TEST_F(SimEngineTest, TimelineReportMentionsCategories) {
  TaskGraph g;
  g.AddCompute(fabric_.ComputeLane(0), 10.0, TaskCategory::kAttentionCompute, {}, "k", 0);
  const SimResult r = engine_.Run(g);
  const std::string report = FormatTimelineReport(g, fabric_, r);
  EXPECT_NE(report.find("attention_compute"), std::string::npos);
  EXPECT_NE(report.find("makespan"), std::string::npos);
}

TEST_F(SimEngineTest, NicUtilizationComputed) {
  TaskGraph g;
  g.AddTransfer(fabric_.Resolve(0, 8), 1 << 24, TaskCategory::kInterComm, {}, "x", 0);
  const SimResult r = engine_.Run(g);
  const auto nics = ComputeNicUtilization(fabric_, r);
  ASSERT_EQ(nics.size(), 8u);  // 2 nodes x 4 NICs.
  EXPECT_GT(nics[0].tx_utilization, 0.9);  // n0.nic0 busy nearly the whole run.
  EXPECT_DOUBLE_EQ(nics[1].tx_utilization, 0.0);
  EXPECT_GT(MeanNicUtilization(fabric_, r), 0.0);
}

}  // namespace
}  // namespace zeppelin
