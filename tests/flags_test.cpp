#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace zeppelin {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(FlagsTest, StringIntDouble) {
  const Flags f = Make({"--model=7B", "--nodes=4", "--ratio=0.5"});
  EXPECT_EQ(f.GetString("model", "x"), "7B");
  EXPECT_EQ(f.GetInt("nodes", 0), 4);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0), 0.5);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags f = Make({});
  EXPECT_EQ(f.GetString("model", "3B"), "3B");
  EXPECT_EQ(f.GetInt("nodes", 7), 7);
  EXPECT_FALSE(f.GetBool("quick"));
}

TEST(FlagsTest, BoolForms) {
  const Flags f = Make({"--quick", "--verbose=true", "--color=0", "--x=yes"});
  EXPECT_TRUE(f.GetBool("quick"));
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("color"));
  EXPECT_TRUE(f.GetBool("x"));
}

TEST(FlagsTest, LastOccurrenceWins) {
  const Flags f = Make({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = Make({"run", "--n=1", "file.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "file.txt");
}

TEST(FlagsTest, UnusedFlagDetection) {
  const Flags f = Make({"--used=1", "--typo=2"});
  EXPECT_EQ(f.GetInt("used", 0), 1);
  const auto unused = f.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, HasDistinguishesPresence) {
  const Flags f = Make({"--a"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_FALSE(f.Has("b"));
}

}  // namespace
}  // namespace zeppelin
