// ThreadPool unit behavior: deterministic static ownership, batch
// completeness, ad-hoc Submit/WaitAll batches, and reuse across batches.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/common/thread_pool.h"

namespace zeppelin {
namespace {

TEST(ThreadPoolTest, RunTasksCoversEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.num_contexts(), threads);
    for (int num_tasks : {0, 1, 5, 64, 200}) {
      std::vector<std::atomic<int>> hits(num_tasks);
      pool.RunTasks(num_tasks, [&](int task, int /*context*/) { ++hits[task]; });
      for (int t = 0; t < num_tasks; ++t) {
        EXPECT_EQ(hits[t].load(), 1) << "threads=" << threads << " task=" << t;
      }
    }
  }
}

TEST(ThreadPoolTest, RunTasksOwnershipIsStatic) {
  // Task t must run on context t % T — the contract per-context scratch
  // slabs rely on. Recording the observed context per task slot is race-free
  // because each slot has exactly one writer.
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const int num_tasks = 97;
    std::vector<int> context_of(num_tasks, -1);
    pool.RunTasks(num_tasks, [&](int task, int context) { context_of[task] = context; });
    for (int t = 0; t < num_tasks; ++t) {
      EXPECT_EQ(context_of[t], t % threads) << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, RunTasksRunsTasksOfAContextInOrder) {
  ThreadPool pool(3);
  const int num_tasks = 60;
  std::vector<std::vector<int>> per_context(pool.num_contexts());
  pool.RunTasks(num_tasks,
                [&](int task, int context) { per_context[context].push_back(task); });
  for (int c = 0; c < pool.num_contexts(); ++c) {
    for (size_t i = 1; i < per_context[c].size(); ++i) {
      EXPECT_LT(per_context[c][i - 1], per_context[c][i]) << "context " << c;
    }
  }
}

TEST(ThreadPoolTest, ParallelForSlicesPartitionTheRange) {
  for (int threads : {1, 2, 5}) {
    ThreadPool pool(threads);
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](int64_t begin, int64_t end, int /*context*/) {
        for (int64_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SubmitWaitAllRunsEveryTask) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int64_t> sum{0};
    const int batch = 100;
    for (int t = 0; t < batch; ++t) {
      pool.Submit([&sum, t] { sum += t; });
    }
    pool.WaitAll();
    EXPECT_EQ(sum.load(), batch * (batch - 1) / 2);
    // WaitAll with an empty queue returns immediately.
    pool.WaitAll();
  }
}

TEST(ThreadPoolTest, BatchesAreReusableBackToBack) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunTasks(17, [&](int task, int /*context*/) { total += task; });
  }
  EXPECT_EQ(total.load(), 50 * (17 * 16 / 2));
}

}  // namespace
}  // namespace zeppelin
