#include <gtest/gtest.h>

#include "src/model/memory.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

TEST(MemoryTest, SevenBFitsOnA800WithHeadroom) {
  const auto mem = ComputeMemoryBreakdown(MakeLlama7B(), MakeClusterA(2), 16);
  EXPECT_GT(mem.available_for_activations, 0);
  // Must comfortably hold the paper's 4k tokens/GPU working set.
  EXPECT_GT(mem.token_capacity, 4096);
}

TEST(MemoryTest, LargerModelsHaveSmallerCapacity) {
  const ClusterSpec cluster = MakeClusterA(4);
  const int64_t cap7 = TokenCapacity(MakeLlama7B(), cluster, 32);
  const int64_t cap13 = TokenCapacity(MakeLlama13B(), cluster, 32);
  EXPECT_GT(cap7, cap13);
}

TEST(MemoryTest, ThirtyBNeedsTensorParallelOnA800) {
  // 30B replicated per-rank does not fit an 80 GB GPU; with TP2 (160 GB
  // logical) it does.
  const ClusterSpec base = MakeClusterA(4);
  EXPECT_EQ(TokenCapacity(MakeLlama30B(), base, 32), 0);
  const ClusterSpec tp2 = ApplyTensorParallelism(base, 2);
  EXPECT_GT(TokenCapacity(MakeLlama30B(), tp2, 16), 0);
}

TEST(MemoryTest, ZeroOneShardingScalesWithWorldSize) {
  const ClusterSpec cluster = MakeClusterA(4);
  const auto mem8 = ComputeMemoryBreakdown(MakeLlama7B(), cluster, 8);
  const auto mem64 = ComputeMemoryBreakdown(MakeLlama7B(), cluster, 64);
  EXPECT_GT(mem64.token_capacity, mem8.token_capacity);
  EXPECT_LT(mem64.optimizer_bytes, mem8.optimizer_bytes);
}

TEST(MemoryTest, MoeActivationsCostMore) {
  const ClusterSpec cluster = MakeClusterB(2);
  const auto moe = ComputeMemoryBreakdown(MakeMoe8x550M(), cluster, 16);
  TransformerConfig dense = MakeMoe8x550M();
  dense.num_experts = 1;
  dense.experts_per_token = 1;
  const auto dense_mem = ComputeMemoryBreakdown(dense, cluster, 16);
  EXPECT_GT(moe.per_token_bytes, dense_mem.per_token_bytes);
}

}  // namespace
}  // namespace zeppelin
