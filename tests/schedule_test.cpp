#include <gtest/gtest.h>

#include "src/baselines/te_cp.h"
#include "src/core/trainer.h"
#include "src/core/zeppelin.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"

namespace zeppelin {
namespace {

TEST(ScheduleTest, AveragesOverMeasuredWindowOnly) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  ZeppelinStrategy zep;
  BatchSampler sampler(MakeArxivDistribution(), 65536, 5);
  const auto result = trainer.RunSchedule(zep, sampler, /*total_steps=*/12, /*warmup_steps=*/4);
  EXPECT_EQ(result.per_step_tokens_per_second.size(), 8u);
  EXPECT_GT(result.mean_tokens_per_second, 0);
  EXPECT_LE(result.min_tokens_per_second, result.mean_tokens_per_second);
  EXPECT_GE(result.max_tokens_per_second, result.mean_tokens_per_second);
  EXPECT_GT(result.total_simulated_seconds, 0);
}

TEST(ScheduleTest, DeterministicForSameSeed) {
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  ZeppelinStrategy a;
  ZeppelinStrategy b;
  BatchSampler sampler_a(MakeGithubDistribution(), 65536, 9);
  BatchSampler sampler_b(MakeGithubDistribution(), 65536, 9);
  const auto ra = trainer.RunSchedule(a, sampler_a, 6, 2);
  const auto rb = trainer.RunSchedule(b, sampler_b, 6, 2);
  EXPECT_EQ(ra.per_step_tokens_per_second, rb.per_step_tokens_per_second);
}

TEST(ScheduleTest, VarianceReflectsWorkloadSpread) {
  // ProLong's bimodal lengths produce spikier iterations than ArXiv's.
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  TeCpStrategy te_a;
  TeCpStrategy te_b;
  BatchSampler arxiv(MakeArxivDistribution(), 65536, 7);
  BatchSampler prolong(MakeProlong64kDistribution(), 65536, 7);
  const auto ra = trainer.RunSchedule(te_a, arxiv, 15, 3);
  const auto rp = trainer.RunSchedule(te_b, prolong, 15, 3);
  // Both have nonzero spread; the relative spread of the mean is bounded.
  EXPECT_GE(ra.stddev_tokens_per_second, 0);
  EXPECT_GE(rp.stddev_tokens_per_second, 0);
  EXPECT_LT(ra.stddev_tokens_per_second / ra.mean_tokens_per_second, 0.5);
}

TEST(ScheduleTest, ZeppelinWinsOnScheduleAverage) {
  // The Fig. 8 measurement protocol end-to-end, at test scale.
  const Trainer trainer(MakeLlama3B(), MakeClusterA(2));
  TeCpStrategy te;
  ZeppelinStrategy zep;
  BatchSampler sampler_te(MakeGithubDistribution(), 65536, 21);
  BatchSampler sampler_zep(MakeGithubDistribution(), 65536, 21);
  const auto r_te = trainer.RunSchedule(te, sampler_te, 10, 2);
  const auto r_zep = trainer.RunSchedule(zep, sampler_zep, 10, 2);
  EXPECT_GT(r_zep.mean_tokens_per_second, 1.3 * r_te.mean_tokens_per_second);
}

}  // namespace
}  // namespace zeppelin
