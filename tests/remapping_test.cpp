#include <gtest/gtest.h>

#include <numeric>

#include "src/core/remapping.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"

namespace zeppelin {
namespace {

class RemappingTest : public ::testing::Test {
 protected:
  RemappingTest()
      : fabric_(MakeClusterA(2)),
        cost_model_(MakeLlama7B(), fabric_.cluster()),
        engine_(fabric_) {}

  FabricResources fabric_;
  CostModel cost_model_;
  Engine engine_;
};

TEST_F(RemappingTest, PlanBalancesTokens) {
  const RemappingLayer layer(cost_model_, fabric_, {});
  std::vector<int64_t> tokens(16, 4096);
  tokens[0] = 8192;
  tokens[1] = 0;
  const RemapSolution sol = layer.Plan(tokens);
  // Rank 0 ships 4096 tokens to rank 1 (same node => intra cost).
  EXPECT_EQ(sol.transfer[0][1], 4096);
  EXPECT_GT(sol.max_row_cost, 0);
}

TEST_F(RemappingTest, EmitConservesTokens) {
  const RemappingLayer layer(cost_model_, fabric_, {});
  std::vector<int64_t> tokens(16, 0);
  tokens[0] = 32768;
  tokens[8] = 32768;
  const RemapSolution sol = layer.Plan(tokens);
  TaskGraph g;
  const auto result = layer.Emit(g, tokens, sol, /*inverse=*/false, {}, "remap");
  EXPECT_EQ(std::accumulate(result.new_tokens.begin(), result.new_tokens.end(), int64_t{0}),
            65536);
  for (int64_t t : result.new_tokens) {
    EXPECT_EQ(t, 4096);  // Balanced target.
  }
  const SimResult sim = engine_.Run(g);
  EXPECT_GT(sim.CategoryBusy(TaskCategory::kRemapComm), 0);
}

TEST_F(RemappingTest, InverseRestoresOriginalLayout) {
  const RemappingLayer layer(cost_model_, fabric_, {});
  std::vector<int64_t> tokens = {9000, 100, 4000, 4096, 4096, 4096, 4096, 4096,
                                 4096, 4096, 4096, 4096, 4096, 4096, 4096, 7480};
  const RemapSolution sol = layer.Plan(tokens);
  TaskGraph g;
  const auto forward = layer.Emit(g, tokens, sol, /*inverse=*/false, {}, "in");
  const auto backward = layer.Emit(g, forward.new_tokens, sol, /*inverse=*/true, {}, "out");
  EXPECT_EQ(backward.new_tokens, tokens);
}

TEST_F(RemappingTest, DisabledLayerIsPassthrough) {
  const RemappingLayer layer(cost_model_, fabric_, {.enabled = false});
  std::vector<int64_t> tokens(16, 1000);
  tokens[3] = 5000;
  TaskGraph g;
  RemapSolution empty;
  empty.transfer.assign(16, std::vector<int64_t>(16, 0));
  const auto result = layer.Emit(g, tokens, empty, false, {}, "noop");
  EXPECT_EQ(result.new_tokens, tokens);
  const SimResult sim = engine_.Run(g);
  EXPECT_DOUBLE_EQ(sim.makespan_us, 0.0);
}

TEST_F(RemappingTest, EmittedBytesMatchSolutionVolume) {
  const RemappingLayer layer(cost_model_, fabric_, {});
  std::vector<int64_t> tokens(16, 4096);
  tokens[0] += 2000;
  tokens[9] -= 2000;
  const RemapSolution sol = layer.Plan(tokens);
  TaskGraph g;
  layer.Emit(g, tokens, sol, false, {}, "remap");
  int64_t moved_tokens = 0;
  for (const auto& row : sol.transfer) {
    for (int64_t f : row) {
      moved_tokens += f;
    }
  }
  int64_t emitted_bytes = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kRemapComm) {
      emitted_bytes += t.bytes;
    }
  }
  EXPECT_EQ(emitted_bytes, moved_tokens * cost_model_.HiddenBytesPerToken());
}

TEST_F(RemappingTest, MinimaxOptionChangesObjective) {
  // A node-internal imbalance with a heavily loaded rank: minimax spreads
  // the cross-node exports, greedy min-total does not care.
  std::vector<int64_t> tokens(16, 4096);
  tokens[0] = 4096 + 3000;
  tokens[1] = 4096 + 3000;
  tokens[8] = 4096 - 3000;
  tokens[9] = 4096 - 3000;
  const RemappingLayer minimax(cost_model_, fabric_, {.enabled = true, .minimax = true});
  const RemappingLayer greedy(cost_model_, fabric_, {.enabled = true, .minimax = false});
  EXPECT_LE(minimax.Plan(tokens).max_row_cost, greedy.Plan(tokens).max_row_cost + 1e-9);
}

TEST_F(RemappingTest, AlreadyBalancedEmitsNoTraffic) {
  const RemappingLayer layer(cost_model_, fabric_, {});
  const std::vector<int64_t> tokens(16, 4096);
  const RemapSolution sol = layer.Plan(tokens);
  TaskGraph g;
  layer.Emit(g, tokens, sol, false, {}, "noop");
  const SimResult sim = engine_.Run(g);
  EXPECT_DOUBLE_EQ(sim.CategoryBusy(TaskCategory::kRemapComm), 0.0);
}

}  // namespace
}  // namespace zeppelin
