#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/trace_json.h"
#include "src/common/units.h"

namespace zeppelin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit over 1000 draws.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1);
  }
}

TEST(RngTest, WeightedApproximatesProportions) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    count1 += rng.NextWeighted(weights) == 1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({5.0}), 5.0, 1e-12);
}

TEST(StatsTest, ImbalanceRatioZeroWhenUniform) {
  EXPECT_DOUBLE_EQ(ImbalanceRatio({3.0, 3.0, 3.0}), 0.0);
  EXPECT_NEAR(ImbalanceRatio({1.0, 3.0}), 0.5, 1e-12);
}

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1.00"});
  t.AddRow({"b", "23.50"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23.50"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TraceJsonTest, EscapesAndSerializes) {
  ChromeTraceWriter w;
  w.Add({.name = "task \"x\"", .category = "compute", .start_us = 1.5, .duration_us = 2.0,
         .pid = 0, .tid = 3});
  const std::string json = w.ToJson();
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(w.event_count(), 1u);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(MsToUs(2.0), 2000.0);
  EXPECT_DOUBLE_EQ(GBpsToBytesPerUs(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(GbpsToBytesPerUs(200.0), 25000.0);
  EXPECT_DOUBLE_EQ(TflopsToFlopsPerUs(1.0), 1e6);
  EXPECT_DOUBLE_EQ(UsToSeconds(2.5e6), 2.5);
}

}  // namespace
}  // namespace zeppelin
