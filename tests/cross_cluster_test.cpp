// Cross-cluster integration sweep: every strategy on every paper cluster
// (A/B/C) and every evaluation dataset, asserting the invariants that must
// hold regardless of topology — schedules legal, tokens conserved, Zeppelin
// never behind TE CP, throughput monotone in cluster capability.
#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/core/trainer.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"
#include "src/sim/validate.h"

namespace zeppelin {
namespace {

struct Combo {
  char cluster;
  const char* dataset;
};

class CrossClusterTest : public ::testing::TestWithParam<int> {
 protected:
  static Combo Pick(int index) {
    static const char clusters[] = {'A', 'B', 'C'};
    static const char* datasets[] = {"arxiv", "github", "prolong64k"};
    return {clusters[index / 3], datasets[index % 3]};
  }
};

TEST_P(CrossClusterTest, AllStrategiesHealthyOnThisCombo) {
  const Combo combo = Pick(GetParam());
  const ClusterSpec cluster = MakeClusterByName(std::string(1, combo.cluster), 2);
  const Trainer trainer(MakeLlama3B(), cluster);
  BatchSampler sampler(DatasetByName(combo.dataset), 65536, 17);
  const Batch batch = sampler.NextBatch();

  double te_tput = 0;
  double zeppelin_tput = 0;
  for (const std::string& spec : KnownStrategyNames()) {
    auto strategy = MakeStrategyByName(spec);
    const IterationResult result = trainer.Run(*strategy, batch);
    EXPECT_GT(result.tokens_per_second, 0) << spec;

    // Token conservation through every strategy's linear stage.
    int64_t total = 0;
    for (int64_t t : strategy->LinearTokensPerRank()) {
      total += t;
    }
    EXPECT_EQ(total, batch.total_tokens()) << spec;

    // Legality of both directions' schedules.
    for (const Direction d : {Direction::kForward, Direction::kBackward}) {
      TaskGraph g;
      strategy->EmitLayer(g, d);
      const Engine engine(trainer.fabric());
      const SimResult sim = engine.Run(g);
      EXPECT_TRUE(IsLegalSchedule(g, sim, trainer.fabric().num_resources())) << spec;
    }

    if (spec == "te-cp") {
      te_tput = result.tokens_per_second;
    }
    if (spec == "zeppelin") {
      zeppelin_tput = result.tokens_per_second;
    }
  }
  EXPECT_GT(zeppelin_tput, te_tput) << "cluster " << combo.cluster << " / " << combo.dataset;
}

INSTANTIATE_TEST_SUITE_P(Combos, CrossClusterTest, ::testing::Range(0, 9));

TEST(CrossClusterTest, ThroughputOrderedByClusterCapability) {
  // C (H200 + 400G NICs) >= B (H800 + 200G) >= A (A800 + shared 200G) for
  // the same workload and strategy.
  BatchSampler sampler(MakeGithubDistribution(), 65536, 23);
  const Batch batch = sampler.NextBatch();
  double previous = 0;
  for (const char cluster_tag : {'A', 'B', 'C'}) {
    const Trainer trainer(MakeLlama3B(), MakeClusterByName(std::string(1, cluster_tag), 2));
    auto zeppelin = MakeStrategyByName("zeppelin");
    const double tput = trainer.Run(*zeppelin, batch).tokens_per_second;
    EXPECT_GT(tput, previous) << cluster_tag;
    previous = tput;
  }
}

TEST(CrossClusterTest, TensorParallelRunsOnAllClusters) {
  BatchSampler sampler(MakeArxivDistribution(), 65536, 29);
  const Batch batch = sampler.NextBatch();
  for (const char cluster_tag : {'A', 'B', 'C'}) {
    const Trainer trainer(MakeLlama13B(), MakeClusterByName(std::string(1, cluster_tag), 2),
                          {.tensor_parallel = 2});
    auto zeppelin = MakeStrategyByName("zeppelin");
    EXPECT_GT(trainer.Run(*zeppelin, batch).tokens_per_second, 0) << cluster_tag;
    EXPECT_EQ(trainer.fabric().cluster().world_size(), 8);
  }
}

}  // namespace
}  // namespace zeppelin
