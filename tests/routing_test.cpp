#include <gtest/gtest.h>

#include <set>

#include "src/core/routing.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"

namespace zeppelin {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : fabric_(MakeClusterA(2)),
        cost_model_(MakeLlama7B(), fabric_.cluster()),
        engine_(fabric_) {}

  FabricResources fabric_;
  CostModel cost_model_;
  Engine engine_;
};

TEST_F(RoutingTest, Eq1FormulaExact) {
  const int64_t n = 1 << 20;
  const double cost = RoutingLayer::RoutedCostUs(cost_model_, n, 4, 4);
  const double expected = cost_model_.b_intra() * n * 3.0 / 4.0 +
                          cost_model_.b_inter() * n / 4.0 +
                          cost_model_.b_intra() * n * 3.0 / 4.0;
  EXPECT_NEAR(cost, expected, 1e-9);
}

TEST_F(RoutingTest, RoutedBeatsDirectWithTypicalGap) {
  // With a ~7x intra/inter gap, 4 proxies cut the cost substantially.
  const int64_t n = 64 << 20;
  EXPECT_LT(RoutingLayer::RoutedCostUs(cost_model_, n, 4, 4),
            0.6 * RoutingLayer::DirectCostUs(cost_model_, n));
}

TEST_F(RoutingTest, OneProxyEqualsDirect) {
  const int64_t n = 1 << 20;
  EXPECT_DOUBLE_EQ(RoutingLayer::RoutedCostUs(cost_model_, n, 1, 1),
                   RoutingLayer::DirectCostUs(cost_model_, n));
}

TEST_F(RoutingTest, SendProxiesCoverDistinctNics) {
  const RoutingLayer layer(fabric_, {});
  const std::vector<int> proxies = layer.SendProxies(/*src_gpu=*/3, /*dst_node=*/1);
  EXPECT_EQ(proxies.size(), 4u);  // Cluster A: 4 NICs.
  std::set<int> nics;
  for (int p : proxies) {
    nics.insert(fabric_.cluster().NicOf(p));
  }
  EXPECT_EQ(nics.size(), 4u);
  // The anchor GPU is always its own proxy.
  EXPECT_EQ(proxies[0], 3);
}

TEST_F(RoutingTest, MaxProxiesCapRespected) {
  const RoutingLayer layer(fabric_, {.enabled = true, .max_proxies = 2});
  EXPECT_EQ(layer.SendProxies(0, 1).size(), 2u);
}

TEST_F(RoutingTest, EmitUsesAllNicsOfTheNode) {
  const RoutingLayer layer(fabric_, {});
  TaskGraph g;
  layer.EmitTransfer(g, /*src=*/0, /*dst=*/8, 32 << 20, {}, "kv");
  const SimResult sim = engine_.Run(g);
  // All four NIC tx channels on node 0 saw traffic.
  for (int nic = 0; nic < 4; ++nic) {
    EXPECT_GT(sim.ResourceBusy(fabric_.NicTx(0, nic)), 0) << "nic " << nic;
  }
}

TEST_F(RoutingTest, RoutedFasterThanDirectInSimulation) {
  const int64_t bytes = 64 << 20;
  TaskGraph direct_graph;
  const RoutingLayer disabled(fabric_, {.enabled = false});
  disabled.EmitTransfer(direct_graph, 0, 8, bytes, {}, "direct");
  const double direct_time = engine_.Run(direct_graph).makespan_us;

  TaskGraph routed_graph;
  const RoutingLayer enabled(fabric_, {});
  enabled.EmitTransfer(routed_graph, 0, 8, bytes, {}, "routed");
  const double routed_time = engine_.Run(routed_graph).makespan_us;

  EXPECT_LT(routed_time, 0.6 * direct_time);
}

TEST_F(RoutingTest, IntraNodeTransfersBypassRouting) {
  const RoutingLayer layer(fabric_, {});
  TaskGraph g;
  layer.EmitTransfer(g, 0, 5, 1 << 20, {}, "local");
  // Single direct transfer, no dispatch/combine tasks.
  int dispatch = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kDispatchComm ||
        t.category == TaskCategory::kCombineComm) {
      ++dispatch;
    }
  }
  EXPECT_EQ(dispatch, 0);
}

TEST_F(RoutingTest, StepStructureIsDispatchTransferCombine) {
  const RoutingLayer layer(fabric_, {});
  TaskGraph g;
  layer.EmitTransfer(g, 0, 8, 32 << 20, {}, "kv");
  int dispatch = 0;
  int inter = 0;
  int combine = 0;
  for (const Task& t : g.tasks()) {
    switch (t.category) {
      case TaskCategory::kDispatchComm:
        ++dispatch;
        break;
      case TaskCategory::kInterComm:
        ++inter;
        break;
      case TaskCategory::kCombineComm:
        ++combine;
        break;
      default:
        break;
    }
  }
  // 4 proxies: src is its own proxy (3 dispatches), dst its own (3 combines).
  EXPECT_EQ(dispatch, 3);
  EXPECT_EQ(inter, 4);
  EXPECT_EQ(combine, 3);
}

TEST_F(RoutingTest, ByteConservationThroughSteps) {
  const RoutingLayer layer(fabric_, {});
  TaskGraph g;
  const int64_t bytes = (32 << 20) + 12345;  // Non-divisible on purpose.
  layer.EmitTransfer(g, 0, 8, bytes, {}, "kv");
  int64_t inter_bytes = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kInterComm) {
      inter_bytes += t.bytes;
    }
  }
  EXPECT_EQ(inter_bytes, bytes);
}

TEST_F(RoutingTest, SingleNicClusterFallsBackToDirect) {
  // A cluster with one NIC has only one proxy pair: routing degenerates.
  ClusterSpec spec = MakeClusterA(2);
  spec.nics_per_node = 1;
  spec.gpu_to_nic = {0, 0, 0, 0, 0, 0, 0, 0};
  const FabricResources fabric(spec);
  const RoutingLayer layer(fabric, {});
  TaskGraph g;
  layer.EmitTransfer(g, 0, 8, 1 << 20, {}, "kv");
  EXPECT_EQ(g.size(), 1);  // One direct transfer, no barrier scaffolding.
}

}  // namespace
}  // namespace zeppelin
