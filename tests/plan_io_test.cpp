// Plan wire format (src/core/plan_io.h): byte-identical round trips across
// all three planner engines, digest authentication, and defensive rejection
// of malformed inputs (bad magic/version, truncation anywhere, corrupted
// headers, altered payloads, trailing garbage).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/delta_planner.h"
#include "src/core/partitioner.h"
#include "src/core/plan_io.h"
#include "src/data/datasets.h"
#include "src/data/stream.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

Batch SampleBatch(int num_seqs, uint64_t seed) {
  const LengthDistribution dist = DatasetByName("github");
  Rng rng(seed);
  Batch batch;
  batch.seq_lens.reserve(num_seqs);
  for (int i = 0; i < num_seqs; ++i) {
    batch.seq_lens.push_back(dist.Sample(rng));
  }
  return batch;
}

// Small S on a large cluster puts github's 64-256k tail above the local
// threshold, and the two explicit multi-node-length heads above node
// capacity — so the plan carries inter-node AND intra-node rings (not just
// locals), exercising every wire section.
Batch RingHeavyBatch(int num_seqs, uint64_t seed) {
  Batch batch = SampleBatch(num_seqs, seed);
  batch.seq_lens.insert(batch.seq_lens.begin(), {1500000, 1400000});
  return batch;
}

PartitionPlan MakePlan(const Batch& batch, const ClusterSpec& cluster, bool fast_path,
                       ThreadPool* pool) {
  const int64_t world = cluster.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  SequencePartitioner partitioner(
      cluster, SequencePartitioner::Options{
                   .token_capacity = average + average / 4, .fast_path = fast_path, .pool = pool});
  return partitioner.Partition(batch);
}

// Round-trip contract: Deserialize(Serialize(p)) == p (operator==, i.e.
// byte-identity including arena offsets), the digest survives, and
// re-serialization reproduces the exact byte string.
void CheckRoundTrip(const PartitionPlan& plan) {
  const std::string bytes = plan.Serialize();
  PartitionPlan decoded;
  const PlanIoResult result = ParsePlan(bytes, &decoded);
  ASSERT_TRUE(result.ok()) << PlanIoStatusName(result.status) << ": " << result.message;
  EXPECT_TRUE(decoded == plan);
  EXPECT_EQ(decoded.StateDigest(), plan.StateDigest());
  EXPECT_EQ(decoded.Serialize(), bytes);
}

TEST(PlanIoTest, RoundTripAcrossAllThreeEngines) {
  const ClusterSpec cluster = MakeClusterA(16);
  const Batch batch = RingHeavyBatch(512, 0x5eed);

  const PartitionPlan naive = MakePlan(batch, cluster, /*fast_path=*/false, nullptr);
  const PartitionPlan fast = MakePlan(batch, cluster, /*fast_path=*/true, nullptr);
  ThreadPool pool(3);
  const PartitionPlan parallel = MakePlan(batch, cluster, /*fast_path=*/true, &pool);

  // The engines agree (the planner contract), so one wire image serves all.
  ASSERT_TRUE(naive == fast);
  ASSERT_TRUE(naive == parallel);
  CheckRoundTrip(naive);
  CheckRoundTrip(fast);
  CheckRoundTrip(parallel);
  EXPECT_EQ(naive.Serialize(), parallel.Serialize());
}

TEST(PlanIoTest, RoundTripEmptyAndTinyPlans) {
  CheckRoundTrip(PartitionPlan{});

  PartitionPlan tiny;
  tiny.tokens_per_rank = {128, 0};
  tiny.threshold_s1 = 4096;
  tiny.threshold_s0 = {512};
  tiny.local.push_back({0, 128, 0});
  const std::vector<int> ring = {0, 1};
  tiny.AddRing(tiny.intra_node, 1, 96, Zone::kIntraNode, ring);
  CheckRoundTrip(tiny);
}

TEST(PlanIoTest, RoundTripDeltaPatchedPlanWithArenaSlack) {
  // Delta-patched plans relax the tight-arena invariant (free-listed spans);
  // the wire format must carry them verbatim all the same.
  const ClusterSpec cluster = MakeClusterA(2);
  Batch batch = SampleBatch(1024, 0xabc);
  const int64_t world = cluster.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  DeltaPlanner dp(cluster,
                  DeltaPlannerOptions{.token_capacity = average + average / 4,
                                      .replan_threshold = 0.5});
  dp.Rebase(batch);
  WorkloadStream stream(DatasetByName("github"), batch, StreamOptions{.churn_fraction = 0.02},
                        0xfeed);
  bool patched = false;
  for (int i = 0; i < 20; ++i) {
    patched = dp.Apply(stream.Next()) == DeltaOutcome::kApplied || patched;
  }
  ASSERT_TRUE(patched);
  CheckRoundTrip(dp.plan());
}

TEST(PlanIoTest, RejectsBadMagicAndVersion) {
  const PartitionPlan plan = MakePlan(SampleBatch(256, 1), MakeClusterA(2), true, nullptr);
  std::string bytes = plan.Serialize();
  PartitionPlan decoded;

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_EQ(ParsePlan(wrong_magic, &decoded).status, PlanIoStatus::kBadMagic);

  std::string wrong_version = bytes;
  wrong_version[4] = static_cast<char>(kPlanFormatVersion + 1);
  EXPECT_EQ(ParsePlan(wrong_version, &decoded).status, PlanIoStatus::kBadVersion);

  EXPECT_EQ(ParsePlan(std::string_view(), &decoded).status, PlanIoStatus::kTruncated);
  EXPECT_EQ(ParsePlan("ZP", &decoded).status, PlanIoStatus::kTruncated);
}

TEST(PlanIoTest, RejectsTruncationAtEveryBoundary) {
  const PartitionPlan plan = MakePlan(SampleBatch(512, 2), MakeClusterA(2), true, nullptr);
  const std::string bytes = plan.Serialize();
  PartitionPlan decoded;
  // Chop inside the counts, inside the headers, inside the arena, and just
  // before the trailer — every prefix must read as truncation, never OOB.
  for (const size_t keep : {size_t{12}, size_t{40}, size_t{80}, bytes.size() / 2,
                            bytes.size() - 9, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    EXPECT_EQ(ParsePlan(std::string_view(bytes).substr(0, keep), &decoded).status,
              PlanIoStatus::kTruncated)
        << "prefix of " << keep << " bytes";
  }
}

TEST(PlanIoTest, RejectsCorruptedHeaderSpan) {
  const PartitionPlan plan = MakePlan(RingHeavyBatch(512, 3), MakeClusterA(16), true, nullptr);
  ASSERT_FALSE(plan.intra_node.empty());
  std::string bytes = plan.Serialize();
  // First intra_node header's rank_offset lives right after the inter_node
  // queue: preamble(8) + counts(48) + s1(8) + inter headers, then
  // seq_id(4) + length(8) + zone(4) = offset 16 into the record.
  const size_t ring_record = 24;
  const size_t offset_pos = 8 + 48 + 8 + plan.inter_node.size() * ring_record + 16;
  const uint32_t huge = 0x7fffffff;
  std::memcpy(bytes.data() + offset_pos, &huge, sizeof(huge));
  PartitionPlan decoded;
  const PlanIoResult result = ParsePlan(bytes, &decoded);
  EXPECT_EQ(result.status, PlanIoStatus::kCorrupt);
  EXPECT_NE(result.message.find("exceeds the arena"), std::string::npos) << result.message;
}

TEST(PlanIoTest, RejectsAlteredPayloadViaDigest) {
  const PartitionPlan plan = MakePlan(RingHeavyBatch(512, 4), MakeClusterA(16), true, nullptr);
  ASSERT_FALSE(plan.rank_arena.empty());
  std::string bytes = plan.Serialize();
  // Flip one arena rank (structurally valid — ranks are not bounds-checked
  // against the world size by the parser): only the digest trailer can
  // catch it.
  const size_t ring_record = 24;
  const size_t local_record = 16;
  const size_t arena_pos = 8 + 48 + 8 +
                           (plan.inter_node.size() + plan.intra_node.size()) * ring_record +
                           plan.local.size() * local_record;
  bytes[arena_pos] = static_cast<char>(bytes[arena_pos] ^ 0x1);
  PartitionPlan decoded;
  EXPECT_EQ(ParsePlan(bytes, &decoded).status, PlanIoStatus::kDigestMismatch);

  // Same for a token count deep in the payload.
  std::string bytes2 = plan.Serialize();
  bytes2[bytes2.size() - 9 - 8 * plan.threshold_s0.size()] ^= 0x40;
  EXPECT_EQ(ParsePlan(bytes2, &decoded).status, PlanIoStatus::kDigestMismatch);
}

TEST(PlanIoTest, RejectsOutOfUniverseRanks) {
  // Not tampering: the producer re-serializes after planting a bogus rank,
  // so the digest trailer matches — only the rank-universe check (against
  // the plan's own tokens_per_rank count) can reject it before it drives
  // EmitLayer out of bounds.
  PartitionPlan plan = MakePlan(RingHeavyBatch(512, 9), MakeClusterA(16), true, nullptr);
  ASSERT_FALSE(plan.rank_arena.empty());
  PartitionPlan decoded;

  PartitionPlan bad_arena = plan;
  bad_arena.rank_arena[0] = 9999;
  PlanIoResult result = ParsePlan(bad_arena.Serialize(), &decoded);
  EXPECT_EQ(result.status, PlanIoStatus::kCorrupt);
  EXPECT_NE(result.message.find("rank universe"), std::string::npos) << result.message;

  PartitionPlan bad_local = plan;
  ASSERT_FALSE(bad_local.local.empty());
  bad_local.local[0].rank = -1;
  EXPECT_EQ(ParsePlan(bad_local.Serialize(), &decoded).status, PlanIoStatus::kCorrupt);
}

TEST(PlanIoTest, RejectsTrailingGarbage) {
  const PartitionPlan plan = MakePlan(SampleBatch(256, 5), MakeClusterA(2), true, nullptr);
  std::string bytes = plan.Serialize();
  bytes += "extra";
  PartitionPlan decoded;
  EXPECT_EQ(ParsePlan(bytes, &decoded).status, PlanIoStatus::kCorrupt);
}

TEST(PlanIoTest, RejectsHugeCountsWithoutAllocating) {
  // A corrupted count field must read as truncation (payload is the
  // authority), not drive a giant resize.
  std::string bytes = MakePlan(SampleBatch(64, 6), MakeClusterA(1), true, nullptr).Serialize();
  const uint64_t huge = ~uint64_t{0} / 4;
  std::memcpy(bytes.data() + 8 + 24, &huge, sizeof(huge));  // arena_count slot.
  PartitionPlan decoded;
  EXPECT_EQ(ParsePlan(bytes, &decoded).status, PlanIoStatus::kTruncated);
}

TEST(PlanIoTest, FileRoundTripAndIoErrors) {
  const PartitionPlan plan = MakePlan(SampleBatch(512, 7), MakeClusterB(2), true, nullptr);
  const std::string path = ::testing::TempDir() + "/plan_io_test.zpln";
  ASSERT_TRUE(SavePlanFile(path, plan).ok());
  PartitionPlan loaded;
  const PlanIoResult result = LoadPlanFile(path, &loaded);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_TRUE(loaded == plan);
  std::remove(path.c_str());

  EXPECT_EQ(LoadPlanFile(path + ".does-not-exist", &loaded).status, PlanIoStatus::kIoError);
}

TEST(PlanIoTest, DeserializeMemberMirrorsParse) {
  const PartitionPlan plan = MakePlan(SampleBatch(256, 8), MakeClusterA(2), true, nullptr);
  PartitionPlan decoded;
  EXPECT_TRUE(decoded.Deserialize(plan.Serialize()));
  EXPECT_TRUE(decoded == plan);
  EXPECT_FALSE(decoded.Deserialize("not a plan"));
}

}  // namespace
}  // namespace zeppelin
