// Tests for the striped (token-interleaved) chunking scheme and the unified
// scheme dispatch layer.
#include <gtest/gtest.h>

#include "src/core/chunking.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

CostModel Make7B() { return CostModel(MakeLlama7B(), MakeClusterA(2)); }

// Brute-force striped pair count: queries of stripe k vs keys of stripe o.
double BruteForceStripedPairs(int64_t s, int g, int k, int o) {
  double pairs = 0;
  for (int64_t q = k; q < s; q += g) {
    for (int64_t key = o; key < s; key += g) {
      if (key <= q) {
        pairs += 1;
      }
    }
  }
  return pairs;
}

TEST(StripedTest, TokensPartitionTheSequence) {
  for (const int64_t s : {1, 63, 64, 1000, 65536}) {
    for (const int g : {1, 2, 3, 8, 16}) {
      int64_t total = 0;
      for (int k = 0; k < g; ++k) {
        total += StripedTokens(s, g, k);
      }
      EXPECT_EQ(total, s) << "s=" << s << " g=" << g;
    }
  }
}

TEST(StripedTest, ClosedFormMatchesBruteForce) {
  const CostModel cm = Make7B();
  const double h_eff = 4.0 * cm.model().num_heads * cm.model().head_dim();
  for (const int64_t s : {17, 100, 257}) {
    for (const int g : {2, 3, 5, 8}) {
      for (int k = 0; k < g; ++k) {
        for (int r = 0; r < g; ++r) {
          const int o = ((k - r) % g + g) % g;
          const double expected = BruteForceStripedPairs(s, g, k, o) * h_eff;
          EXPECT_DOUBLE_EQ(StripedRoundFlops(cm, s, g, k, r), expected)
              << "s=" << s << " g=" << g << " k=" << k << " r=" << r;
        }
      }
    }
  }
}

class StripedConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(StripedConservationTest, RoundsTileTheTriangle) {
  const CostModel cm = Make7B();
  const int g = GetParam();
  for (const int64_t s : {512, 4097, 16384}) {
    double total = 0;
    for (int k = 0; k < g; ++k) {
      total += StripedTotalFlops(cm, s, g, k);
    }
    EXPECT_NEAR(total / cm.CausalAttentionFlops(s), 1.0, 1e-9) << "g=" << g << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, StripedConservationTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(StripedTest, StripingIsWellBalanced) {
  const CostModel cm = Make7B();
  for (const int g : {4, 8, 16}) {
    // Token-level interleaving balances even better than 2G chunk pairs.
    EXPECT_LT(StripedImbalance(cm, 65536, g), 1.01) << "g=" << g;
  }
}

TEST(SchemeDispatchTest, NamesAndConsistency) {
  EXPECT_STREQ(ChunkSchemeName(ChunkScheme::kBalancedPairs), "balanced-pairs");
  EXPECT_STREQ(ChunkSchemeName(ChunkScheme::kContiguous), "contiguous");
  EXPECT_STREQ(ChunkSchemeName(ChunkScheme::kStriped), "striped");

  const CostModel cm = Make7B();
  const int64_t s = 8192;
  const int g = 4;
  // Dispatch must agree with the direct APIs.
  EXPECT_DOUBLE_EQ(SchemeRoundFlops(cm, ChunkScheme::kStriped, s, g, 1, 2),
                   StripedRoundFlops(cm, s, g, 1, 2));
  EXPECT_EQ(SchemeTokens(ChunkScheme::kStriped, s, g, 3), StripedTokens(s, g, 3));
  const auto pairs = BalancedChunkAssignment(s, g);
  EXPECT_DOUBLE_EQ(SchemeRoundFlops(cm, ChunkScheme::kBalancedPairs, s, g, 1, 2),
                   RingRoundFlops(cm, pairs, s, 1, 2));
}

TEST(SchemeDispatchTest, ImbalanceOrdering) {
  const CostModel cm = Make7B();
  const int64_t s = 65536;
  const int g = 8;
  const double striped = SchemeImbalance(cm, ChunkScheme::kStriped, s, g);
  const double balanced = SchemeImbalance(cm, ChunkScheme::kBalancedPairs, s, g);
  const double contiguous = SchemeImbalance(cm, ChunkScheme::kContiguous, s, g);
  // Both causal-balanced schemes are within a hair of perfect; contiguous is
  // badly skewed.
  EXPECT_LT(striped, 1.001);
  EXPECT_LT(balanced, 1.001);
  EXPECT_GT(contiguous, 1.5);
}

TEST(StripedTest, DegenerateGroups) {
  const CostModel cm = Make7B();
  EXPECT_DOUBLE_EQ(StripedTotalFlops(cm, 5000, 1, 0), cm.CausalAttentionFlops(5000));
  EXPECT_EQ(StripedTokens(3, 8, 5), 0);  // More ranks than tokens.
  EXPECT_EQ(StripedTokens(3, 8, 2), 1);
}

}  // namespace
}  // namespace zeppelin
