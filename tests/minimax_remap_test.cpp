#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/solver/minimax_remap.h"

namespace zeppelin {
namespace {

constexpr double kBIntra = 1.0;
constexpr double kBInter = 8.0;

RemapProblem MakeProblem(std::vector<int64_t> tokens, std::vector<int> node_of) {
  RemapProblem p;
  p.tokens = std::move(tokens);
  p.node_of = std::move(node_of);
  p.b_intra = kBIntra;
  p.b_inter = kBInter;
  return p;
}

void CheckFeasible(const RemapProblem& problem, const RemapSolution& sol) {
  const int d = static_cast<int>(problem.tokens.size());
  const std::vector<int64_t> target =
      problem.target.empty() ? BalancedTarget(problem.tokens) : problem.target;
  std::vector<int64_t> result = problem.tokens;
  for (int i = 0; i < d; ++i) {
    int64_t sent = 0;
    for (int j = 0; j < d; ++j) {
      ASSERT_GE(sol.transfer[i][j], 0);
      sent += sol.transfer[i][j];
      result[i] -= sol.transfer[i][j];
      result[j] += sol.transfer[i][j];
    }
    // Only surplus may leave (Eq. 2 first constraint).
    ASSERT_LE(sent, std::max<int64_t>(problem.tokens[i] - target[i], 0));
  }
  EXPECT_EQ(result, target);
}

TEST(BalancedTargetTest, SplitsEvenlyWithRemainder) {
  EXPECT_EQ(BalancedTarget({10, 0, 0}), (std::vector<int64_t>{4, 3, 3}));
  EXPECT_EQ(BalancedTarget({6, 6}), (std::vector<int64_t>{6, 6}));
}

TEST(MinimaxRemapTest, AlreadyBalancedIsFree) {
  const auto p = MakeProblem({5, 5, 5, 5}, {0, 0, 1, 1});
  const auto sol = SolveMinimaxRemap(p);
  EXPECT_DOUBLE_EQ(sol.max_row_cost, 0.0);
  EXPECT_DOUBLE_EQ(sol.total_cost, 0.0);
}

TEST(MinimaxRemapTest, IntraNodeOnlyWhenNodesBalanced) {
  // Node totals already equal: no token should cross nodes.
  const auto p = MakeProblem({10, 0, 10, 0}, {0, 0, 1, 1});
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
  EXPECT_DOUBLE_EQ(sol.transfer[0][2] + sol.transfer[0][3] + sol.transfer[2][0] +
                       sol.transfer[2][1],
                   0.0);
  // Each sender ships 5 tokens intra-node.
  EXPECT_DOUBLE_EQ(sol.max_row_cost, 5 * kBIntra);
}

TEST(MinimaxRemapTest, CrossNodeWhenNodeImbalanced) {
  const auto p = MakeProblem({8, 8, 0, 0}, {0, 0, 1, 1});
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
  // Each surplus rank exports 4 tokens cross-node; waterfill splits evenly.
  EXPECT_DOUBLE_EQ(sol.max_row_cost, 4 * kBInter);
}

TEST(MinimaxRemapTest, WaterfillBeatsSingleSender) {
  // One big surplus + one small surplus on the same node, all deficits
  // remote: minimax should offload most cross-node tokens onto the small
  // sender... no — exports go where they raise the max least. Verify against
  // the analytic bound.
  const auto p = MakeProblem({12, 4, 0, 0}, {0, 0, 1, 1});
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
  const double bound = MinimaxLowerBound(p);
  EXPECT_LE(sol.max_row_cost, bound + (kBInter - kBIntra) + 1e-9);
  EXPECT_GE(sol.max_row_cost, bound - 1e-9);
}

TEST(MinimaxRemapTest, MinimaxNoWorseThanGreedyEverywhere) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(3));
    const int per_node = 2 + static_cast<int>(rng.NextBounded(3));
    std::vector<int64_t> tokens;
    std::vector<int> node_of;
    for (int n = 0; n < nodes; ++n) {
      for (int g = 0; g < per_node; ++g) {
        tokens.push_back(rng.NextInt(0, 2000));
        node_of.push_back(n);
      }
    }
    const auto p = MakeProblem(tokens, node_of);
    const auto minimax = SolveMinimaxRemap(p);
    const auto greedy = SolveMinTotalRemap(p);
    CheckFeasible(p, minimax);
    CheckFeasible(p, greedy);
    EXPECT_LE(minimax.max_row_cost, greedy.max_row_cost + 1e-6) << "trial " << trial;
    // Greedy is optimal on total cost by construction.
    EXPECT_GE(minimax.total_cost, greedy.total_cost - 1e-6) << "trial " << trial;
  }
}

// Property sweep: the solution always meets the analytic lower bound within
// one token's worth of rounding.
class MinimaxOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimaxOptimalityTest, MeetsLowerBound) {
  Rng rng(GetParam());
  const int nodes = 2 + static_cast<int>(rng.NextBounded(4));
  const int per_node = 1 + static_cast<int>(rng.NextBounded(4));
  std::vector<int64_t> tokens;
  std::vector<int> node_of;
  for (int n = 0; n < nodes; ++n) {
    for (int g = 0; g < per_node; ++g) {
      tokens.push_back(rng.NextInt(0, 10000));
      node_of.push_back(n);
    }
  }
  const auto p = MakeProblem(tokens, node_of);
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
  const double bound = MinimaxLowerBound(p);
  EXPECT_GE(sol.max_row_cost, bound - 1e-6);
  EXPECT_LE(sol.max_row_cost, bound + (kBInter - kBIntra) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimaxOptimalityTest, ::testing::Range(1, 41));

TEST(MinimaxRemapTest, ExplicitTargetHonored) {
  RemapProblem p = MakeProblem({10, 2, 0, 0}, {0, 0, 1, 1});
  p.target = {1, 1, 5, 5};
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
}

TEST(MinimaxRemapTest, SingleRankNoOp) {
  const auto p = MakeProblem({42}, {0});
  const auto sol = SolveMinimaxRemap(p);
  EXPECT_DOUBLE_EQ(sol.total_cost, 0.0);
}

TEST(MinimaxRemapTest, DegenerateEqualBandwidths) {
  RemapProblem p = MakeProblem({9, 3, 0, 0}, {0, 0, 1, 1});
  p.b_inter = p.b_intra;
  const auto sol = SolveMinimaxRemap(p);
  CheckFeasible(p, sol);
}

}  // namespace
}  // namespace zeppelin
