#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/distribution.h"

namespace zeppelin {
namespace {

TEST(DistributionTest, SamplesStayInsideBins) {
  const LengthDistribution dist("test", {{1024, 2048, 1.0}});
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int64_t len = dist.Sample(rng);
    EXPECT_GE(len, 1024);
    EXPECT_LT(len, 2048);
    EXPECT_EQ(len % 64, 0);
  }
}

TEST(DistributionTest, GranularityRespected) {
  const LengthDistribution dist("test", {{0, 262144, 1.0}});
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(dist.Sample(rng, 128) % 128, 0);
  }
}

TEST(DistributionTest, MassInRangeSumsToOne) {
  for (const auto& dist : AllDatasets()) {
    double total = 0;
    const auto edges = StandardBinEdges();
    for (size_t i = 0; i + 1 < edges.size(); ++i) {
      total += dist.MassInRange(edges[i], edges[i + 1]);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << dist.name();
  }
}

TEST(DistributionTest, TokenShareSumsToOne) {
  const auto dist = MakeGithubDistribution();
  double total = 0;
  const auto edges = StandardBinEdges();
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    total += dist.TokenShareInRange(edges[i], edges[i + 1]);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DatasetsTest, Table2ProportionsReproduced) {
  // Spot-check the exact Table 2 values. The printed rows do not all sum to
  // exactly 1 (GitHub sums to 0.945), so compare normalized proportions.
  const auto arxiv = MakeArxivDistribution();
  const double arxiv_sum = 0.032 + 0.03 + 0.08 + 0.219 + 0.338 + 0.224 + 0.077;
  EXPECT_NEAR(arxiv.MassInRange(8192, 16384), 0.338 / arxiv_sum, 1e-9);
  EXPECT_NEAR(arxiv.MassInRange(65536, 262144), 0.0, 1e-9);

  const auto github = MakeGithubDistribution();
  const double github_sum = 0.34 + 0.095 + 0.104 + 0.107 + 0.102 + 0.088 + 0.064 + 0.045;
  EXPECT_NEAR(github.MassInRange(1024, 2048), 0.34 / github_sum, 1e-9);
  EXPECT_NEAR(github.MassInRange(131072, 262144), 0.045 / github_sum, 1e-9);

  const auto prolong = MakeProlong64kDistribution();
  const double prolong_sum = 0.231 + 0.042 + 0.021 + 0.012 + 0.013 + 0.008 + 0.673;
  EXPECT_NEAR(prolong.MassInRange(32768, 65536), 0.673 / prolong_sum, 1e-9);
  EXPECT_NEAR(prolong.MassInRange(0, 1024), 0.231 / prolong_sum, 1e-9);
}

TEST(DatasetsTest, GithubHasTheLongestTail) {
  EXPECT_EQ(MakeGithubDistribution().MaxLength(), 262143);
  EXPECT_EQ(MakeArxivDistribution().MaxLength(), 65535);
}

TEST(DatasetsTest, WebCorporaAreShortDominated) {
  for (const auto& name : {"fineweb", "fineweb_edu", "openwebmath", "stackexchange"}) {
    const auto dist = DatasetByName(name);
    EXPECT_GT(dist.MassInRange(0, 4096), 0.8) << name;
  }
}

TEST(DatasetsTest, LookupByNameRoundTrips) {
  for (const auto& dist : AllDatasets()) {
    EXPECT_EQ(DatasetByName(dist.name()).name(), dist.name());
  }
}

TEST(DistributionTest, MeanLengthOrdering) {
  // ProLong64k (73% mass in 32-64k) has a much larger mean than
  // StackExchange (78% below 1k).
  EXPECT_GT(MakeProlong64kDistribution().MeanLength(),
            10 * MakeStackExchangeDistribution().MeanLength());
}

TEST(DistributionTest, BinLabels) {
  EXPECT_EQ(BinLabel(0, 1024), "<1k");
  EXPECT_EQ(BinLabel(16384, 32768), "16-32k");
}

}  // namespace
}  // namespace zeppelin
