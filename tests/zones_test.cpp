#include <gtest/gtest.h>

#include "src/core/zones.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

TEST(ZonesTest, BoundariesAreOrdered) {
  const CostModel cm(MakeLlama7B(), MakeClusterA(2));
  const ZoneClassifier classifier(cm);
  const ZoneBoundaries b = classifier.Compute();
  EXPECT_GT(b.local_max, 0);
  EXPECT_LE(b.local_max, b.intra_max);
}

TEST(ZonesTest, ClassifyRespectsBoundaries) {
  ZoneBoundaries b{.local_max = 1024, .intra_max = 8192};
  EXPECT_EQ(ZoneClassifier::Classify(512, b), Zone::kLocal);
  EXPECT_EQ(ZoneClassifier::Classify(1024, b), Zone::kLocal);
  EXPECT_EQ(ZoneClassifier::Classify(4096, b), Zone::kIntraNode);
  EXPECT_EQ(ZoneClassifier::Classify(65536, b), Zone::kInterNode);
}

TEST(ZonesTest, CostCurvesCrossAsInFig5) {
  // Attention compute is quadratic, send-recv linear: below the crossover
  // communication dominates, above it computation does.
  const CostModel cm(MakeLlama7B(), MakeClusterA(2));
  const ZoneClassifier classifier(cm);
  EXPECT_LT(classifier.AttentionComputeUs(256), classifier.InterSendRecvUs(256));
  EXPECT_GT(classifier.AttentionComputeUs(131072), classifier.InterSendRecvUs(131072));
  EXPECT_LT(classifier.IntraSendRecvUs(8192), classifier.InterSendRecvUs(8192));
}

TEST(ZonesTest, FasterNicsShrinkTheInterNodeThreshold) {
  // With everything else fixed, doubling NIC bandwidth lets shorter
  // sequences hide inter-node communication: the intra-node zone shrinks.
  ClusterSpec slow_nic = MakeClusterA(2);
  ClusterSpec fast_nic = slow_nic;
  fast_nic.nic_bandwidth *= 2;
  const ZoneBoundaries bs = ZoneClassifier(CostModel(MakeLlama7B(), slow_nic)).Compute();
  const ZoneBoundaries bf = ZoneClassifier(CostModel(MakeLlama7B(), fast_nic)).Compute();
  EXPECT_LE(bf.intra_max, bs.intra_max);
  EXPECT_LT(bf.intra_max, bs.intra_max + 1);
}

TEST(ZonesTest, FasterGpuGrowsZones) {
  // More compute throughput means less time to hide communication behind:
  // zones shift upward.
  ClusterSpec slow = MakeClusterA(2);
  ClusterSpec fast = slow;
  fast.gpu_effective_tflops *= 4;
  const ZoneBoundaries bs = ZoneClassifier(CostModel(MakeLlama7B(), slow)).Compute();
  const ZoneBoundaries bf = ZoneClassifier(CostModel(MakeLlama7B(), fast)).Compute();
  EXPECT_GE(bf.intra_max, bs.intra_max);
  EXPECT_GE(bf.local_max, bs.local_max);
}

TEST(ZonesTest, ZoneNames) {
  EXPECT_STREQ(ZoneName(Zone::kLocal), "local");
  EXPECT_STREQ(ZoneName(Zone::kIntraNode), "intra-node");
  EXPECT_STREQ(ZoneName(Zone::kInterNode), "inter-node");
}

}  // namespace
}  // namespace zeppelin
