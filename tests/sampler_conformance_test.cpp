// Statistical conformance: sampled workloads must actually follow the
// distributions the benches claim to reproduce. Catches silent sampler
// regressions that would skew every experiment downstream.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/mixture.h"
#include "src/data/sampler.h"

namespace zeppelin {
namespace {

// Empirical per-bin frequency over many raw draws (not batch-truncated).
std::vector<double> EmpiricalBinFrequencies(const LengthDistribution& dist, int draws,
                                            uint64_t seed) {
  const auto edges = StandardBinEdges();
  std::vector<double> counts(edges.size() - 1, 0.0);
  Rng rng(seed);
  for (int i = 0; i < draws; ++i) {
    const int64_t len = dist.Sample(rng);
    for (size_t b = 0; b + 1 < edges.size(); ++b) {
      if (len >= edges[b] && len < edges[b + 1]) {
        counts[b] += 1;
        break;
      }
    }
  }
  for (auto& c : counts) {
    c /= draws;
  }
  return counts;
}

class ConformanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConformanceTest, EmpiricalFrequenciesMatchBinMasses) {
  const LengthDistribution dist = DatasetByName(GetParam());
  const auto empirical = EmpiricalBinFrequencies(dist, 20000, 12345);
  const auto edges = StandardBinEdges();
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    const double expected = dist.MassInRange(edges[b], edges[b + 1]);
    // Binomial standard error at n = 20000 is < 0.4pp; allow 4 sigma + eps.
    EXPECT_NEAR(empirical[b], expected, 0.016)
        << GetParam() << " bin " << BinLabel(edges[b], edges[b + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, ConformanceTest,
                         ::testing::Values("arxiv", "github", "prolong64k", "fineweb",
                                           "stackexchange"));

TEST(ConformanceTest, BatchTruncationBiasIsBounded) {
  // Batch sampling trims the last sequence to hit the token target, which
  // slightly over-represents short lengths. The effect must stay small for
  // the batch sizes the benches use (>= 64k tokens).
  const LengthDistribution dist = MakeArxivDistribution();
  BatchSampler sampler(dist, 131072, 77);
  std::map<bool, int64_t> tokens_by_origin;
  double truncated = 0;
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    const Batch batch = sampler.NextBatch();
    total += batch.size();
    ++truncated;  // Exactly one (the last) sequence per batch may be cut.
  }
  EXPECT_LT(truncated / total, 0.15);  // < 15% of sequences affected.
}

TEST(ConformanceTest, MixtureEmpiricalMatchesComponents) {
  const LengthDistribution mix = MakePretrainMixture();
  const auto empirical = EmpiricalBinFrequencies(mix, 20000, 99);
  const auto edges = StandardBinEdges();
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    EXPECT_NEAR(empirical[b], mix.MassInRange(edges[b], edges[b + 1]), 0.016);
  }
}

TEST(ConformanceTest, SampleMeanTracksAnalyticMean) {
  // Log-uniform within-bin sampling pulls the mean below the bin midpoint;
  // the analytic MeanLength uses midpoints, so allow a generous band but
  // require the right order of magnitude and ordering between datasets.
  Rng rng(5);
  const auto arxiv = MakeArxivDistribution();
  const auto stack = MakeStackExchangeDistribution();
  double arxiv_mean = 0;
  double stack_mean = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    arxiv_mean += static_cast<double>(arxiv.Sample(rng));
    stack_mean += static_cast<double>(stack.Sample(rng));
  }
  arxiv_mean /= n;
  stack_mean /= n;
  EXPECT_GT(arxiv_mean, 3 * stack_mean);
  EXPECT_GT(arxiv_mean, 0.3 * arxiv.MeanLength());
  EXPECT_LT(arxiv_mean, 1.2 * arxiv.MeanLength());
}

}  // namespace
}  // namespace zeppelin
