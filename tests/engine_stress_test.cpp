// Stress and semantics tests for the discrete-event engine at scale.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/engine.h"
#include "src/sim/validate.h"

namespace zeppelin {
namespace {

TEST(EngineStressTest, FiftyThousandTaskChainExact) {
  const FabricResources fabric(MakeClusterA(1));
  const Engine engine(fabric);
  TaskGraph g;
  TaskId prev = kInvalidTask;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    std::vector<TaskId> deps;
    if (prev != kInvalidTask) {
      deps.push_back(prev);
    }
    prev = g.AddCompute(fabric.ComputeLane(i % 8), 1.0, TaskCategory::kOtherCompute,
                        std::move(deps), "", i % 8);
  }
  const SimResult result = engine.Run(g);
  EXPECT_DOUBLE_EQ(result.makespan_us, static_cast<double>(n));
}

TEST(EngineStressTest, WideFanOutFanIn) {
  const FabricResources fabric(MakeClusterA(2));
  const Engine engine(fabric);
  TaskGraph g;
  const TaskId root = g.AddBarrier({}, "root");
  std::vector<TaskId> leaves;
  const int width = 2000;
  for (int i = 0; i < width; ++i) {
    leaves.push_back(g.AddCompute(fabric.ComputeLane(i % 16), 1.0,
                                  TaskCategory::kOtherCompute, {root}, "", i % 16));
  }
  const TaskId sink = g.AddBarrier(std::move(leaves), "sink");
  const SimResult result = engine.Run(g);
  // 2000 unit tasks over 16 lanes: exactly 125 per lane.
  EXPECT_DOUBLE_EQ(result.finish_us[sink], 125.0);
}

TEST(EngineStressTest, RandomLayeredDagThroughput) {
  // A large random layered DAG must simulate quickly and legally. This also
  // guards against accidental quadratic blowups in the admission loop.
  Rng rng(4242);
  const FabricResources fabric(MakeClusterA(2));
  const Engine engine(fabric);
  TaskGraph g;
  std::vector<TaskId> prev_layer;
  for (int layer = 0; layer < 60; ++layer) {
    std::vector<TaskId> this_layer;
    for (int i = 0; i < 100; ++i) {
      std::vector<TaskId> deps;
      if (!prev_layer.empty()) {
        deps.push_back(prev_layer[rng.NextBounded(prev_layer.size())]);
        if (rng.NextBounded(2) == 0) {
          deps.push_back(prev_layer[rng.NextBounded(prev_layer.size())]);
        }
      }
      const int gpu = static_cast<int>(rng.NextBounded(16));
      this_layer.push_back(g.AddCompute(fabric.ComputeLane(gpu),
                                        1.0 + static_cast<double>(rng.NextBounded(10)),
                                        TaskCategory::kOtherCompute, std::move(deps), "", gpu));
    }
    prev_layer = std::move(this_layer);
  }
  const SimResult result = engine.Run(g);
  EXPECT_GT(result.makespan_us, 0);
  EXPECT_TRUE(IsLegalSchedule(g, result, fabric.num_resources()));
}

TEST(EngineStressTest, MakespanLowerBoundsHold) {
  // Makespan >= max per-resource busy time, and >= the critical path.
  Rng rng(7);
  const FabricResources fabric(MakeClusterA(1));
  const Engine engine(fabric);
  TaskGraph g;
  std::vector<TaskId> all;
  for (int i = 0; i < 500; ++i) {
    std::vector<TaskId> deps;
    if (!all.empty() && rng.NextBounded(3) > 0) {
      deps.push_back(all[rng.NextBounded(all.size())]);
    }
    const int gpu = static_cast<int>(rng.NextBounded(8));
    all.push_back(g.AddCompute(fabric.ComputeLane(gpu),
                               1.0 + static_cast<double>(rng.NextBounded(20)),
                               TaskCategory::kOtherCompute, std::move(deps), "", gpu));
  }
  const SimResult result = engine.Run(g);
  for (int r = 0; r < fabric.num_resources(); ++r) {
    EXPECT_GE(result.makespan_us + 1e-9, result.ResourceBusy(r));
  }
  // Critical path via longest-path DP.
  std::vector<double> path(g.size(), 0);
  double critical = 0;
  for (TaskId id = 0; id < g.size(); ++id) {
    double start = 0;
    for (TaskId dep : g.task(id).deps) {
      start = std::max(start, path[dep]);
    }
    path[id] = start + g.task(id).duration_us;
    critical = std::max(critical, path[id]);
  }
  EXPECT_GE(result.makespan_us + 1e-9, critical);
}

TEST(EngineStressTest, UtilizationNeverExceedsOne) {
  Rng rng(13);
  const FabricResources fabric(MakeClusterB(2));
  const Engine engine(fabric);
  TaskGraph g;
  for (int i = 0; i < 300; ++i) {
    const int src = static_cast<int>(rng.NextBounded(16));
    const int dst = static_cast<int>(rng.NextBounded(16));
    g.AddTransfer(fabric.Resolve(src, dst), 1 + rng.NextBounded(1 << 20),
                  TaskCategory::kIntraComm, {}, "", src);
  }
  const SimResult result = engine.Run(g);
  for (int r = 0; r < fabric.num_resources(); ++r) {
    EXPECT_LE(result.Utilization(r), 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace zeppelin
