#include <gtest/gtest.h>

#include <cstdio>

#include "src/data/batch_io.h"
#include "src/data/datasets.h"

namespace zeppelin {
namespace {

TEST(BatchIoTest, RoundTripsThroughText) {
  std::vector<Batch> batches(2);
  batches[0].seq_lens = {4096, 1024, 512};
  batches[1].seq_lens = {65536};
  const std::string text = BatchesToText(batches);
  const std::vector<Batch> parsed = BatchesFromText(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq_lens, batches[0].seq_lens);
  EXPECT_EQ(parsed[1].seq_lens, batches[1].seq_lens);
}

TEST(BatchIoTest, IgnoresCommentsAndBlankLines) {
  const std::string text = "# header\n\n100,200\n   \n# tail\n300\n";
  const std::vector<Batch> parsed = BatchesFromText(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq_lens, (std::vector<int64_t>{100, 200}));
  EXPECT_EQ(parsed[1].seq_lens, (std::vector<int64_t>{300}));
}

TEST(BatchIoTest, InlineCommentsStripped) {
  const auto parsed = BatchesFromText("128,256 # two small seqs\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].total_tokens(), 384);
}

TEST(BatchIoTest, MalformedInputAborts) {
  EXPECT_DEATH(BatchesFromText("12,abc\n"), "malformed");
  EXPECT_DEATH(BatchesFromText("0\n"), "non-positive");
}

TEST(BatchIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/zeppelin_batches.txt";
  BatchSampler sampler(MakeGithubDistribution(), 65536, 5);
  std::vector<Batch> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(sampler.NextBatch());
  }
  ASSERT_TRUE(SaveBatches(path, batches));
  std::vector<Batch> loaded;
  ASSERT_TRUE(LoadBatches(path, &loaded));
  ASSERT_EQ(loaded.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(loaded[i].seq_lens, batches[i].seq_lens);
  }
  std::remove(path.c_str());
}

TEST(BatchIoTest, MissingFileReturnsFalse) {
  std::vector<Batch> batches;
  EXPECT_FALSE(LoadBatches("/nonexistent/path/batches.txt", &batches));
}

}  // namespace
}  // namespace zeppelin
