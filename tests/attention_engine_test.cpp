#include <gtest/gtest.h>

#include "src/core/attention_engine.h"
#include "src/core/chunking.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"

namespace zeppelin {
namespace {

class AttentionEngineTest : public ::testing::Test {
 protected:
  AttentionEngineTest()
      : fabric_(MakeClusterA(2)),
        cost_model_(MakeLlama7B(), fabric_.cluster()),
        routing_(fabric_, {}),
        engine_(cost_model_, fabric_, routing_, {}),
        sim_(fabric_) {}

  PartitionPlan MakePlanWithRing(std::vector<int> ranks, int64_t length, Zone zone) {
    PartitionPlan plan;
    plan.tokens_per_rank.assign(fabric_.cluster().world_size(), 0);
    plan.AddRing(plan.inter_node, /*seq_id=*/0, length, zone, ranks);
    return plan;
  }

  FabricResources fabric_;
  CostModel cost_model_;
  RoutingLayer routing_;
  AttentionEngine engine_;
  Engine sim_;
};

TEST_F(AttentionEngineTest, RingComputeCoversFullTriangle) {
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 16384, Zone::kIntraNode);
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kForward, {}, "t");
  double attn_flops_time = 0;
  int computes = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kAttentionCompute) {
      attn_flops_time += t.duration_us;
      ++computes;
    }
  }
  EXPECT_EQ(computes, 16);  // G rounds x G ranks.
  // Sum of compute times ~= full causal time + launch overheads.
  const double expected =
      cost_model_.CausalAttentionFlops(16384) / fabric_.cluster().flops_per_us() +
      16 * fabric_.cluster().kernel_launch_us;
  EXPECT_NEAR(attn_flops_time, expected, 1.0);
}

TEST_F(AttentionEngineTest, RingSendsGMinusOneRoundsPerRank) {
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 16384, Zone::kIntraNode);
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kForward, {}, "t");
  int transfers = 0;
  int64_t bytes = 0;
  for (const Task& t : g.tasks()) {
    if (t.category == TaskCategory::kIntraComm) {
      ++transfers;
      bytes += t.bytes;
    }
  }
  EXPECT_EQ(transfers, 12);  // (G-1) rounds x G ranks.
  // Each round ships each rank's held KV (1/G of the sequence).
  EXPECT_EQ(bytes, 3 * 16384 * cost_model_.KvBytesPerToken());
}

TEST_F(AttentionEngineTest, BackwardDoublesComputeAndComm) {
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 16384, Zone::kIntraNode);
  TaskGraph fg;
  engine_.Emit(fg, plan, Direction::kForward, {}, "f");
  TaskGraph bg;
  engine_.Emit(bg, plan, Direction::kBackward, {}, "b");
  const SimResult fr = sim_.Run(fg);
  const SimResult br = sim_.Run(bg);
  const double f_busy = fr.CategoryBusy(TaskCategory::kAttentionCompute);
  const double b_busy = br.CategoryBusy(TaskCategory::kAttentionCompute);
  EXPECT_NEAR(b_busy / f_busy, kBackwardMultiplier, 0.05);
}

TEST_F(AttentionEngineTest, InterNodeRingUsesRoutingLayer) {
  std::vector<int> ranks(16);
  for (int i = 0; i < 16; ++i) {
    ranks[i] = i;
  }
  const PartitionPlan plan = MakePlanWithRing(ranks, 65536, Zone::kInterNode);
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kForward, {}, "t");
  int dispatch = 0;
  for (const Task& t : g.tasks()) {
    dispatch += t.category == TaskCategory::kDispatchComm;
  }
  EXPECT_GT(dispatch, 0);  // Node-boundary hops are decomposed.
}

TEST_F(AttentionEngineTest, LocalSequencesFuseIntoOneKernelPerRank) {
  PartitionPlan plan;
  plan.tokens_per_rank.assign(16, 0);
  plan.local = {{0, 1024, 3}, {1, 2048, 3}, {2, 512, 5}};
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kForward, {}, "t");
  int computes = 0;
  for (const Task& t : g.tasks()) {
    computes += t.category == TaskCategory::kAttentionCompute;
  }
  EXPECT_EQ(computes, 2);  // Ranks 3 and 5.
}

TEST_F(AttentionEngineTest, ForwardOrderRunsInterBeforeLocal) {
  // Rank 0 participates in an inter-node ring AND holds a local sequence:
  // its local kernel must start after its ring work (§3.2 ordering).
  std::vector<int> ranks(16);
  for (int i = 0; i < 16; ++i) {
    ranks[i] = i;
  }
  PartitionPlan plan = MakePlanWithRing(ranks, 65536, Zone::kInterNode);
  plan.local = {{1, 2048, 0}};
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kForward, {}, "t");
  const SimResult r = sim_.Run(g);

  double local_start = -1;
  double last_ring_compute_start = -1;
  for (TaskId id = 0; id < g.size(); ++id) {
    const Task& t = g.task(id);
    if (t.category != TaskCategory::kAttentionCompute || t.gpu != 0) {
      continue;
    }
    if (t.label.find("local") != std::string::npos) {
      local_start = r.start_us[id];
    } else {
      last_ring_compute_start = std::max(last_ring_compute_start, r.start_us[id]);
    }
  }
  ASSERT_GE(local_start, 0.0);
  EXPECT_GT(local_start, last_ring_compute_start);
}

TEST_F(AttentionEngineTest, BackwardOrderRunsLocalFirst) {
  std::vector<int> ranks(16);
  for (int i = 0; i < 16; ++i) {
    ranks[i] = i;
  }
  PartitionPlan plan = MakePlanWithRing(ranks, 65536, Zone::kInterNode);
  plan.local = {{1, 2048, 0}};
  TaskGraph g;
  engine_.Emit(g, plan, Direction::kBackward, {}, "t");
  const SimResult r = sim_.Run(g);
  double local_start = -1;
  double first_ring_start = 1e18;
  for (TaskId id = 0; id < g.size(); ++id) {
    const Task& t = g.task(id);
    if (t.category != TaskCategory::kAttentionCompute || t.gpu != 0) {
      continue;
    }
    if (t.label.find("local") != std::string::npos) {
      local_start = r.start_us[id];
    } else {
      first_ring_start = std::min(first_ring_start, r.start_us[id]);
    }
  }
  ASSERT_GE(local_start, 0.0);
  EXPECT_LT(local_start, first_ring_start);
}

TEST_F(AttentionEngineTest, DepsGateFirstRound) {
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 8192, Zone::kIntraNode);
  TaskGraph g;
  const TaskId gate =
      g.AddCompute(fabric_.ComputeLane(0), 100.0, TaskCategory::kOtherCompute, {}, "gate", 0);
  std::vector<std::vector<TaskId>> deps(16);
  deps[0] = {gate};
  const std::vector<TaskId> done = engine_.Emit(g, plan, Direction::kForward, deps, "t");
  const SimResult r = sim_.Run(g);
  // Rank 0's attention cannot finish before the gate.
  EXPECT_GT(r.finish_us[done[0]], 100.0);
}

TEST_F(AttentionEngineTest, IdleRanksGetImmediateBarrier) {
  const PartitionPlan plan = MakePlanWithRing({0, 1}, 8192, Zone::kIntraNode);
  TaskGraph g;
  const std::vector<TaskId> done = engine_.Emit(g, plan, Direction::kForward, {}, "t");
  const SimResult r = sim_.Run(g);
  EXPECT_DOUBLE_EQ(r.finish_us[done[15]], 0.0);
  EXPECT_GT(r.finish_us[done[0]], 0.0);
}

TEST_F(AttentionEngineTest, ContiguousChunkingOptionChangesBalance) {
  AttentionEngineOptions opts;
  opts.chunk_scheme = ChunkScheme::kContiguous;
  const AttentionEngine naive(cost_model_, fabric_, routing_, opts);
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 32768, Zone::kIntraNode);
  TaskGraph balanced_graph;
  engine_.Emit(balanced_graph, plan, Direction::kForward, {}, "b");
  TaskGraph naive_graph;
  naive.Emit(naive_graph, plan, Direction::kForward, {}, "n");
  // The causally-balanced engine finishes earlier (D3 ablation).
  EXPECT_LT(sim_.Run(balanced_graph).makespan_us, sim_.Run(naive_graph).makespan_us);
}

TEST_F(AttentionEngineTest, StripedSchemeMatchesBalancedWork) {
  AttentionEngineOptions opts;
  opts.chunk_scheme = ChunkScheme::kStriped;
  const AttentionEngine striped(cost_model_, fabric_, routing_, opts);
  const PartitionPlan plan = MakePlanWithRing({0, 1, 2, 3}, 32768, Zone::kIntraNode);
  TaskGraph striped_graph;
  striped.Emit(striped_graph, plan, Direction::kForward, {}, "s");
  TaskGraph balanced_graph;
  engine_.Emit(balanced_graph, plan, Direction::kForward, {}, "b");
  // Both balanced schemes cover the same total work and land within a few
  // percent of each other end to end.
  const double t_striped = sim_.Run(striped_graph).makespan_us;
  const double t_balanced = sim_.Run(balanced_graph).makespan_us;
  EXPECT_NEAR(t_striped / t_balanced, 1.0, 0.1);
}

}  // namespace
}  // namespace zeppelin
