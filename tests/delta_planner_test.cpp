// Delta-planning subsystem (src/core/delta_planner.h): correctness of the
// incremental patch path and its equivalence/fallback contract.
//
// The contract (docs/DELTA_PLANS.md): a patched plan is ring-set-equivalent
// to a from-scratch plan on the same batch at the same capacity — identical
// coverage, identical inter-node-zone ring set, token conservation, arena
// validity — with the max rank load within eps of the full re-plan's; and
// the delta path itself is deterministic (identical streams yield identical
// plans). Fallbacks must rebase to plans byte-identical to a direct full
// partition.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/load_tracker.h"
#include "src/core/delta_planner.h"
#include "src/core/trainer.h"
#include "src/core/zeppelin.h"
#include "src/data/datasets.h"
#include "src/data/stream.h"
#include "src/model/transformer.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

constexpr double kThreshold = 0.08;
// The tested eps budget: the imbalance-guard allowance plus the documented
// stationarity margin (docs/DELTA_PLANS.md).
constexpr double kEps = kThreshold + 0.05;

Batch SampleBatch(const LengthDistribution& dist, int num_seqs, uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  batch.seq_lens.reserve(num_seqs);
  for (int i = 0; i < num_seqs; ++i) {
    batch.seq_lens.push_back(dist.Sample(rng));
  }
  return batch;
}

int64_t SlackCapacity(const Batch& batch, const ClusterSpec& cluster) {
  const int64_t world = cluster.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  return average + average / 4;
}

DeltaPlannerOptions MakeOptions(const Batch& batch, const ClusterSpec& cluster,
                                double threshold = kThreshold) {
  DeltaPlannerOptions options;
  options.token_capacity = SlackCapacity(batch, cluster);
  options.replan_threshold = threshold;
  return options;
}

// Full re-plan at the delta planner's (possibly auto-raised) capacity — the
// comparison side of the equivalence contract.
void FullReplan(const DeltaPlanner& dp, SequencePartitioner* ref, PlannerScratch* scratch,
                PartitionPlan* plan) {
  ref->set_options(SequencePartitioner::Options{.token_capacity = dp.token_capacity()});
  ref->Partition(dp.batch(), scratch, plan);
}

// --- LoadTracker snapshot/restore ---------------------------------------------

TEST(LoadTrackerSnapshotTest, RoundTripPreservesLoadsAndOrder) {
  LoadTracker tracker(8);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    tracker.add(static_cast<int>(rng.NextBounded(8)), static_cast<int64_t>(rng.NextBounded(1000)));
  }
  std::vector<int64_t> snapshot;
  tracker.Snapshot(&snapshot);
  ASSERT_EQ(snapshot.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(snapshot[i], tracker.load(i));
  }

  LoadTracker restored;
  restored.Restore(snapshot);
  // Observationally identical: same loads and the same (load, index) pop
  // order under an identical operation sequence.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.load(i), tracker.load(i));
  }
  for (int i = 0; i < 50; ++i) {
    const int64_t w = 64 * (1 + static_cast<int64_t>(rng.NextBounded(32)));
    EXPECT_EQ(tracker.add_min(w), restored.add_min(w)) << "divergence at op " << i;
  }
}

// --- StateDigest ---------------------------------------------------------------

TEST(StateDigestTest, EqualPlansDigestEqualAndContentChangesDigest) {
  const ClusterSpec cluster = MakeClusterA(2);
  const Batch batch = SampleBatch(DatasetByName("github"), 128, 0xfeed);
  SequencePartitioner partitioner(
      cluster, SequencePartitioner::Options{.token_capacity = SlackCapacity(batch, cluster)});
  const PartitionPlan a = partitioner.Partition(batch);
  const PartitionPlan b = partitioner.Partition(batch);
  ASSERT_EQ(a, b);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());

  // Digest is layout-invariant but content-sensitive.
  PartitionPlan c = a;
  ASSERT_FALSE(c.local.empty());
  c.tokens_per_rank[c.local.front().rank] -= c.local.front().length;
  c.local.front().rank = (c.local.front().rank + 1) % cluster.world_size();
  c.tokens_per_rank[c.local.front().rank] += c.local.front().length;
  EXPECT_NE(c.StateDigest(), a.StateDigest());
}

TEST(StateDigestTest, QueueOrderInvariant) {
  const ClusterSpec cluster = MakeClusterA(2);
  const Batch batch = SampleBatch(DatasetByName("prolong64k"), 256, 0xabcd);
  SequencePartitioner partitioner(
      cluster, SequencePartitioner::Options{.token_capacity = SlackCapacity(batch, cluster)});
  const PartitionPlan a = partitioner.Partition(batch);
  PartitionPlan b = a;
  ASSERT_GE(b.local.size(), 2u);
  std::swap(b.local.front(), b.local.back());
  EXPECT_EQ(a.StateDigest(), b.StateDigest())
      << "digest must be invariant to queue permutation (delta plans reorder)";
}

// --- Delta application edge cases ----------------------------------------------

TEST(DeltaPlannerTest, EmptyDeltaIsIdentity) {
  const ClusterSpec cluster = MakeClusterA(4);
  const Batch batch = SampleBatch(DatasetByName("github"), 512, 1);
  DeltaPlanner dp(cluster, MakeOptions(batch, cluster));
  dp.Rebase(batch);
  const PartitionPlan before = dp.plan();
  EXPECT_EQ(dp.Apply(BatchDelta{}), DeltaOutcome::kApplied);
  EXPECT_EQ(dp.plan(), before) << "an empty delta must leave the plan byte-identical";
  EXPECT_EQ(dp.plan().StateDigest(), before.StateDigest());
  EXPECT_EQ(dp.stats().applied, 1);
}

TEST(DeltaPlannerTest, FirstApplyWithoutBaseRebases) {
  const ClusterSpec cluster = MakeClusterA(2);
  const Batch batch = SampleBatch(DatasetByName("github"), 128, 2);
  DeltaPlanner dp(cluster, MakeOptions(batch, cluster));
  // No Rebase(): Apply must refuse to patch thin air. Seed the batch through
  // a rebase-with-delta: start from the batch itself via Rebase, invalidate,
  // then apply.
  dp.Rebase(batch);
  dp.Invalidate();
  BatchDelta delta;
  delta.resized.emplace_back(0, batch.seq_lens[0] + 64);
  EXPECT_EQ(dp.Apply(delta), DeltaOutcome::kRebasedNoBase);
  EXPECT_TRUE(dp.has_base());
  EXPECT_EQ(dp.batch().seq_lens[0], batch.seq_lens[0] + 64);
  EXPECT_EQ(dp.stats().rebase_no_base, 1);
}

TEST(DeltaPlannerTest, ChurnAboveThresholdFallsBackToByteIdenticalReplan) {
  const ClusterSpec cluster = MakeClusterA(4);
  const Batch batch = SampleBatch(DatasetByName("github"), 512, 3);
  DeltaPlanner dp(cluster, MakeOptions(batch, cluster, /*threshold=*/0.01));
  dp.Rebase(batch);

  WorkloadStream stream(DatasetByName("github"), batch, StreamOptions{.churn_fraction = 0.2},
                        99);
  const BatchDelta delta = stream.Next();
  EXPECT_EQ(dp.Apply(delta), DeltaOutcome::kRebasedChurn);
  EXPECT_EQ(dp.stats().rebase_churn, 1);

  // A fallback is a full re-plan: byte-identical to partitioning the new
  // batch directly with the same engine and capacity.
  SequencePartitioner ref(cluster,
                          SequencePartitioner::Options{.token_capacity = dp.token_capacity()});
  PlannerScratch scratch;
  PartitionPlan expected;
  ref.Partition(dp.batch(), &scratch, &expected);
  EXPECT_EQ(dp.plan(), expected);
  EXPECT_EQ(dp.plan().StateDigest(), expected.StateDigest());
}

TEST(DeltaPlannerTest, InterZoneChurnFallsBack) {
  const ClusterSpec cluster = MakeClusterA(4);
  // Hand-built batch with a genuine z2 sequence: one 131072-token sequence
  // against 64 x 2048 fillers at L = 10240 exceeds node capacity 8L = 81920,
  // so it chunks across nodes (capacity is sized so Rebase keeps it pinned:
  // total 262144 <= 32 * 10240).
  Batch batch;
  batch.seq_lens.assign(64, 2048);
  batch.seq_lens.push_back(131072);
  DeltaPlannerOptions options;
  options.token_capacity = 10240;
  options.replan_threshold = kThreshold;
  DeltaPlanner dp(cluster, options);
  dp.Rebase(batch);
  ASSERT_EQ(dp.token_capacity(), 10240) << "capacity must stay pinned for this construction";
  ASSERT_FALSE(dp.plan().inter_node.empty()) << "the long sequence must form an inter-node ring";
  const int z2_slot = 64;

  // Removing the z2 sequence invalidates the whole inter-node stage.
  BatchDelta remove_z2;
  remove_z2.removed.push_back(z2_slot);
  remove_z2.added.push_back(2048);
  EXPECT_EQ(dp.Apply(remove_z2), DeltaOutcome::kRebasedZone);

  // Resizing a short sequence into the z2 zone does too (checked before any
  // patching, so capacity pressure never builds up).
  BatchDelta grow;
  grow.resized.emplace_back(3, 90000);
  EXPECT_EQ(dp.Apply(grow), DeltaOutcome::kRebasedZone);
  EXPECT_EQ(dp.stats().rebase_zone, 2);
}

TEST(DeltaPlannerTest, ImbalanceDriftFallsBack) {
  // One sequence per device, perfectly balanced. Tombstoning k of 32 slots
  // drives the patched imbalance to 32/(32-k) - 1 ~ k/32 + (k/32)^2 — always
  // above the churn fraction k/32 — so a threshold between the two admits
  // the churn but must trip the drift guard.
  const ClusterSpec cluster = MakeClusterA(4);
  Batch batch;
  for (int i = 0; i < cluster.world_size(); ++i) {
    batch.seq_lens.push_back(4096);
  }
  DeltaPlannerOptions options;
  options.token_capacity = 8192;
  options.replan_threshold = 0.28;  // Churn 8/32 = 0.25; drift 32/24-1 = 0.33.
  DeltaPlanner dp(cluster, options);
  dp.Rebase(batch);
  ASSERT_DOUBLE_EQ(dp.plan().TokenImbalance(), 1.0);

  BatchDelta delta;
  delta.removed = {0, 1, 2, 3, 4, 5, 6, 7};  // No refills: tombstones.
  EXPECT_EQ(dp.Apply(delta), DeltaOutcome::kRebasedImbalance);
  EXPECT_EQ(dp.stats().rebase_imbalance, 1);
  // The fallback re-plan heals the hole exactly.
  EXPECT_EQ(dp.plan().total_tokens(), dp.batch().total_tokens());
}

TEST(DeltaPlannerTest, CapacityOverflowFallsBackAndRaisesCapacity) {
  const ClusterSpec cluster = MakeClusterA(2);
  Batch batch;
  for (int i = 0; i < 128; ++i) {
    batch.seq_lens.push_back(4096);
  }
  DeltaPlannerOptions options;
  options.token_capacity = (batch.total_tokens() + 15) / 16 + 2048;  // Tight.
  options.replan_threshold = 0.5;  // Let the capacity check, not churn, decide.
  DeltaPlanner dp(cluster, options);
  dp.Rebase(batch);
  const int64_t pinned = dp.token_capacity();

  // Grow several sequences so the batch no longer fits world * L: the
  // incremental pack must overflow, fall back, and auto-raise the capacity.
  BatchDelta grow;
  for (int i = 0; i < 20; ++i) {
    grow.resized.emplace_back(i, 4096 + 32768);
  }
  const DeltaOutcome outcome = dp.Apply(grow);
  EXPECT_EQ(outcome, DeltaOutcome::kRebasedCapacity);
  EXPECT_GT(dp.token_capacity(), pinned);
  EXPECT_EQ(dp.plan().total_tokens(), dp.batch().total_tokens());
}

TEST(DeltaPlannerTest, TombstonesAndRefillsKeepCoverage) {
  const ClusterSpec cluster = MakeClusterA(2);
  const Batch batch = SampleBatch(DatasetByName("fineweb"), 256, 4);
  DeltaPlanner dp(cluster, MakeOptions(batch, cluster));
  dp.Rebase(batch);

  // More removals than additions: surplus removals tombstone their slots.
  BatchDelta shrink;
  shrink.removed = {3, 17, 42, 99};
  shrink.added = {1024};
  ASSERT_EQ(dp.Apply(shrink), DeltaOutcome::kApplied);
  EXPECT_EQ(dp.batch().seq_lens[3], 1024);  // Lowest freed slot refilled.
  EXPECT_EQ(dp.batch().seq_lens[17], 0);
  EXPECT_EQ(dp.batch().seq_lens[42], 0);
  EXPECT_EQ(dp.batch().seq_lens[99], 0);
  EXPECT_EQ(dp.batch().size(), batch.size());

  // More additions than removals: tombstones refill, surplus extends.
  BatchDelta regrow;
  regrow.removed = {17};
  regrow.resized.emplace_back(42, 512);
  regrow.added = {2048, 4096, 8192};
  ASSERT_EQ(dp.Apply(regrow), DeltaOutcome::kApplied);
  EXPECT_EQ(dp.batch().seq_lens[17], 2048);
  EXPECT_EQ(dp.batch().seq_lens[42], 512);
  EXPECT_EQ(dp.batch().size(), batch.size() + 2);

  SequencePartitioner ref(cluster,
                          SequencePartitioner::Options{.token_capacity = dp.token_capacity()});
  PlannerScratch scratch;
  PartitionPlan replan;
  FullReplan(dp, &ref, &scratch, &replan);
  const DeltaEquivalenceResult eq = CheckDeltaEquivalence(dp.plan(), replan, dp.batch(), kEps);
  EXPECT_TRUE(eq.ok) << eq.failure;
}

// --- Randomized churn soak ------------------------------------------------------

struct SoakConfig {
  const char* dataset;
  int num_seqs;
  int nodes;
  double churn;
  double resize_fraction;
  double drop_fraction;
};

void RunSoak(const SoakConfig& config) {
  const ClusterSpec cluster = MakeClusterA(config.nodes);
  const LengthDistribution dist = DatasetByName(config.dataset);
  const Batch initial = SampleBatch(dist, config.num_seqs, 0x50ac ^ config.num_seqs);

  DeltaPlanner dp(cluster, MakeOptions(initial, cluster));
  dp.Rebase(initial);
  // Determinism witness: an identical second planner fed the identical
  // stream must produce identical plans at every step.
  DeltaPlanner twin(cluster, MakeOptions(initial, cluster));
  twin.Rebase(initial);

  SequencePartitioner ref(cluster,
                          SequencePartitioner::Options{.token_capacity = dp.token_capacity()});
  PlannerScratch scratch;
  PartitionPlan replan;

  StreamOptions sopts;
  sopts.churn_fraction = config.churn;
  sopts.resize_fraction = config.resize_fraction;
  sopts.drop_fraction = config.drop_fraction;
  WorkloadStream stream(dist, initial, sopts, 0xc0ffee);
  WorkloadStream twin_stream(dist, initial, sopts, 0xc0ffee);

  int applied = 0;
  for (int it = 0; it < 200; ++it) {
    const BatchDelta delta = stream.Next();
    const DeltaOutcome outcome = dp.Apply(delta);
    applied += outcome == DeltaOutcome::kApplied ? 1 : 0;

    const BatchDelta twin_delta = twin_stream.Next();
    ASSERT_EQ(twin.Apply(twin_delta), outcome) << "iteration " << it;
    ASSERT_EQ(dp.plan().StateDigest(), twin.plan().StateDigest())
        << "delta path nondeterminism at iteration " << it;

    FullReplan(dp, &ref, &scratch, &replan);
    const DeltaEquivalenceResult eq = CheckDeltaEquivalence(dp.plan(), replan, dp.batch(), kEps);
    ASSERT_TRUE(eq.ok) << config.dataset << " iteration " << it << ": " << eq.failure
                       << " (ratio " << eq.max_load_ratio << ")";
  }
  // The soak must actually exercise the patch path, not just fall back.
  EXPECT_GT(applied, 100) << "delta path barely exercised: " << applied << "/200 applied";
  EXPECT_EQ(dp.stats().applied, applied);
}

TEST(DeltaPlannerSoakTest, LocalDominatedChurn) {
  // Large S relative to the cluster: everything is z0 locals (the bench
  // regime); add/remove/resize mix with occasional tombstones.
  RunSoak({.dataset = "github",
           .num_seqs = 2048,
           .nodes = 2,
           .churn = 0.02,
           .resize_fraction = 0.4,
           .drop_fraction = 0.1});
}

TEST(DeltaPlannerSoakTest, RingHeavyChurn) {
  // Small S on a large cluster: github's 64-256k tail lands above s0, so
  // churn exercises ring eviction, dirty-node Alg. 2 re-runs, and span
  // recycling alongside the local path.
  RunSoak({.dataset = "github",
           .num_seqs = 512,
           .nodes = 16,
           .churn = 0.02,
           .resize_fraction = 0.5,
           .drop_fraction = 0.0});
}

TEST(DeltaPlannerSoakTest, ResizeOnlyChurn) {
  RunSoak({.dataset = "arxiv",
           .num_seqs = 1024,
           .nodes = 4,
           .churn = 0.03,
           .resize_fraction = 1.0,
           .drop_fraction = 0.0});
}

// --- Arena recycling / compaction ----------------------------------------------

TEST(DeltaPlannerTest, RingChurnRecyclesAndCompactsArena) {
  // Ring-heavy config churned hard enough that evicted spans accumulate and
  // recycling/compaction engage; live spans must stay valid throughout.
  const ClusterSpec cluster = MakeClusterA(16);
  const LengthDistribution dist = DatasetByName("github");
  const Batch initial = SampleBatch(dist, 512, 77);
  DeltaPlanner dp(cluster, MakeOptions(initial, cluster));
  dp.Rebase(initial);
  ASSERT_GT(dp.plan().intra_node.size(), 0u) << "config must produce rings";

  SequencePartitioner ref(cluster,
                          SequencePartitioner::Options{.token_capacity = dp.token_capacity()});
  PlannerScratch scratch;
  PartitionPlan replan;

  WorkloadStream stream(dist, initial, StreamOptions{.churn_fraction = 0.02}, 31337);
  for (int it = 0; it < 300; ++it) {
    dp.Apply(stream.Next());
    FullReplan(dp, &ref, &scratch, &replan);
    const DeltaEquivalenceResult eq = CheckDeltaEquivalence(dp.plan(), replan, dp.batch(), kEps);
    ASSERT_TRUE(eq.ok) << "iteration " << it << ": " << eq.failure;
  }
  const DeltaStats& stats = dp.stats();
  EXPECT_GT(stats.evicted_rings, 0);
  EXPECT_GT(stats.repacked_nodes, 0);
  // Dead space stays bounded by the compaction policy: less than half the
  // arena (plus the small-plan floor the trigger tolerates).
  EXPECT_LE(dp.arena_free_slots(),
            std::max<size_t>(64, dp.plan().rank_arena.size() / 2 + 1));
}

// --- Strategy-level integration -------------------------------------------------

TEST(ZeppelinPlanDeltaTest, StreamedPlansExecuteAndConserveTokens) {
  const TransformerConfig model = MakeLlama3B();
  const ClusterSpec cluster = MakeClusterA(2);
  const Trainer trainer(model, cluster);
  const LengthDistribution dist = DatasetByName("github");
  const Batch initial = SampleBatch(dist, 512, 5);

  ZeppelinOptions zopts;
  zopts.delta_replan_threshold = kThreshold;
  ZeppelinStrategy strategy(zopts);
  strategy.PlanDelta(initial, BatchDelta{}, trainer.cost_model(), trainer.fabric());
  ASSERT_EQ(strategy.last_delta_outcome(), DeltaOutcome::kRebasedNoBase);

  WorkloadStream stream(dist, initial, StreamOptions{.churn_fraction = 0.01}, 6);
  int applied = 0;
  for (int it = 0; it < 20; ++it) {
    const BatchDelta delta = stream.Next();
    strategy.PlanDelta(stream.batch(), delta, trainer.cost_model(), trainer.fabric());
    applied += strategy.last_delta_outcome() == DeltaOutcome::kApplied ? 1 : 0;
    EXPECT_EQ(strategy.partition_plan().total_tokens(), stream.batch().total_tokens());

    // The streamed plan must execute: emit one forward layer.
    TaskGraph graph;
    const std::vector<TaskId> done = strategy.EmitLayer(graph, Direction::kForward);
    EXPECT_EQ(static_cast<int>(done.size()), cluster.world_size());

    // The linear-stage layout stays token-conserving through remapping.
    int64_t linear_total = 0;
    for (int64_t tokens : strategy.LinearTokensPerRank()) {
      linear_total += tokens;
    }
    EXPECT_EQ(linear_total, stream.batch().total_tokens());
  }
  EXPECT_GT(applied, 0) << "strategy-level delta path never engaged";
  ASSERT_NE(strategy.delta_stats(), nullptr);
  EXPECT_EQ(strategy.delta_stats()->applied, applied);

  // Plan() invalidates the streamed state; the next PlanDelta re-bases.
  strategy.Plan(stream.batch(), trainer.cost_model(), trainer.fabric());
  strategy.PlanDelta(stream.batch(), BatchDelta{}, trainer.cost_model(), trainer.fabric());
  EXPECT_EQ(strategy.last_delta_outcome(), DeltaOutcome::kRebasedNoBase);
}

TEST(ZeppelinPlanDeltaTest, BaselineDefaultPlansFully) {
  // The Strategy default PlanDelta ignores the delta and re-plans: the CLI's
  // stream mode must work for every registered strategy.
  const TransformerConfig model = MakeLlama3B();
  const ClusterSpec cluster = MakeClusterA(2);
  const Trainer trainer(model, cluster);
  const Batch batch = SampleBatch(DatasetByName("github"), 64, 8);

  ZeppelinOptions zopts;
  zopts.planner_fast_path = false;  // Forces the PlanDelta -> Plan fallback.
  ZeppelinStrategy strategy(zopts);
  strategy.PlanDelta(batch, BatchDelta{}, trainer.cost_model(), trainer.fabric());
  EXPECT_EQ(strategy.partition_plan().total_tokens(), batch.total_tokens());
}

}  // namespace
}  // namespace zeppelin
