// Parallel/sharded planner engine: the determinism contract and the bulk
// packing kernel.
//
// The contract (partitioner.h): plans are byte-identical across the naive
// reference, the PR-1 serial fast path, and the parallel engine at ANY thread
// count — including batches that force overflow restarts and degenerate
// clusters. These tests pin the contract and the GreedyPacker's placement-
// for-placement equivalence with LoadTracker::pack_min.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/greedy_packer.h"
#include "src/common/load_tracker.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/partitioner.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/topology/cluster.h"

namespace zeppelin {
namespace {

// --- GreedyPacker vs LoadTracker -----------------------------------------------

struct PackTrace {
  std::vector<int> buckets;
  int stop = 0;
};

PackTrace ReferencePack(const std::vector<int64_t>& loads, const std::vector<int64_t>& weights,
                        int64_t cap) {
  LoadTracker tracker;
  tracker.Assign(loads);
  PackTrace trace;
  for (size_t i = 0; i < weights.size(); ++i) {
    const int bucket = tracker.pack_min(weights[i], cap);
    if (bucket < 0) {
      trace.stop = static_cast<int>(i);
      return trace;
    }
    trace.buckets.push_back(bucket);
  }
  trace.stop = static_cast<int>(weights.size());
  return trace;
}

PackTrace PackerPack(const std::vector<int64_t>& loads, const std::vector<int64_t>& weights,
                     int64_t cap, GreedyPacker* packer) {
  packer->Assign(loads);
  PackTrace trace;
  trace.buckets.resize(weights.size(), -1);
  trace.stop = packer->Pack(
      static_cast<int>(weights.size()), cap, [&](int i) { return weights[i]; },
      [&](int i, int bucket, int64_t w) {
        EXPECT_EQ(w, weights[i]);
        trace.buckets[i] = bucket;
      });
  trace.buckets.resize(trace.stop);
  return trace;
}

// Random non-increasing weight streams with heavy duplication (uniform runs),
// random starting loads, and caps from "never binds" to "binds early".
TEST(GreedyPackerTest, MatchesLoadTrackerOnRandomStreams) {
  Rng rng(20260728);
  for (int n : {1, 2, 7, 8, 64, 100}) {
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<int64_t> loads(n);
      for (int64_t& l : loads) {
        l = static_cast<int64_t>(rng.NextBounded(5000));
      }
      const int count = 1 + static_cast<int>(rng.NextBounded(2000));
      std::vector<int64_t> weights(count);
      int64_t w = 64 * (1 + static_cast<int64_t>(rng.NextBounded(512)));
      int64_t total = 0;
      for (int i = 0; i < count; ++i) {
        // Decay in runs: ~30% chance to drop, quantized to 64.
        if (rng.NextBounded(10) < 3 && w > 64) {
          w -= 64 * (1 + static_cast<int64_t>(rng.NextBounded(4)));
          w = std::max<int64_t>(w, 64);
        }
        weights[i] = w;
        total += w;
      }
      for (int cap_case = 0; cap_case < 3; ++cap_case) {
        int64_t cap = INT64_MAX / 4;
        if (cap_case == 1) {
          cap = total / n + weights[0];  // Tight: may or may not bind.
        } else if (cap_case == 2) {
          cap = total / (2 * n) + weights[0];  // Binds partway through.
        }
        GreedyPacker packer;
        const PackTrace ref = ReferencePack(loads, weights, cap);
        const PackTrace got = PackerPack(loads, weights, cap, &packer);
        ASSERT_EQ(got.stop, ref.stop) << "n=" << n << " trial=" << trial << " cap=" << cap_case;
        ASSERT_EQ(got.buckets, ref.buckets)
            << "n=" << n << " trial=" << trial << " cap=" << cap_case;
        if (ref.stop == count) {
          // Final loads must match the reference too.
          LoadTracker tracker;
          tracker.Assign(loads);
          for (int i = 0; i < count; ++i) {
            tracker.add(ref.buckets[i], weights[i]);
          }
          std::vector<int64_t> got_loads;
          packer.Loads(&got_loads);
          for (int b = 0; b < n; ++b) {
            ASSERT_EQ(got_loads[b], tracker.load(b)) << "bucket " << b;
          }
        }
      }
    }
  }
}

// Valley regime: a few huge weights spread the loads far beyond the following
// tiny weights, forcing the round condition to fail and the packer into its
// heap fallback — placements must still match exactly.
TEST(GreedyPackerTest, MatchesLoadTrackerInValleyRegime) {
  for (int n : {8, 64}) {
    std::vector<int64_t> loads(n, 0);
    std::vector<int64_t> weights;
    for (int i = 0; i < n / 2; ++i) {
      weights.push_back(1 << 20);  // Cliff: half the buckets get huge loads.
    }
    for (int i = 0; i < 4000; ++i) {
      weights.push_back(64);  // Tiny items must fill the valleys one by one.
    }
    GreedyPacker packer;
    const PackTrace ref = ReferencePack(loads, weights, INT64_MAX / 4);
    const PackTrace got = PackerPack(loads, weights, INT64_MAX / 4, &packer);
    ASSERT_EQ(got.stop, ref.stop);
    ASSERT_EQ(got.buckets, ref.buckets) << "n=" << n;
  }
}

// Bulk behavior: on a quantized descending stream the op counter must stay
// near the item count — a per-item O(log n) walk would show up as a multiple.
TEST(GreedyPackerTest, BulkCommitsKeepOpsNearItemCount) {
  const int n = 64;
  const int count = 65536;
  Rng rng(7);
  std::vector<int64_t> weights(count);
  for (int i = 0; i < count; ++i) {
    weights[i] = 64 * (1 + static_cast<int64_t>(rng.NextBounded(4096)));
  }
  std::sort(weights.begin(), weights.end(), std::greater<>());
  GreedyPacker packer;
  packer.Assign(std::vector<int64_t>(n, 0));
  packer.ResetOps();
  const int stop = packer.Pack(count, INT64_MAX / 4, [&](int i) { return weights[i]; },
                               [](int, int, int64_t) {});
  ASSERT_EQ(stop, count);
  EXPECT_LE(packer.ops(), static_cast<int64_t>(8) * count)
      << "round batching degraded to per-item work";
}

// --- Plan equivalence across engines and thread counts -------------------------

void ExpectPlansIdentical(const PartitionPlan& got, const PartitionPlan& want,
                          const std::string& context) {
  ASSERT_EQ(got.inter_node.size(), want.inter_node.size()) << context;
  ASSERT_EQ(got.intra_node.size(), want.intra_node.size()) << context;
  ASSERT_EQ(got.local.size(), want.local.size()) << context;
  EXPECT_EQ(got.rank_arena, want.rank_arena) << context;
  EXPECT_EQ(got.tokens_per_rank, want.tokens_per_rank) << context;
  EXPECT_EQ(got.threshold_s1, want.threshold_s1) << context;
  EXPECT_EQ(got.threshold_s0, want.threshold_s0) << context;
  // The defaulted operator== covers every field byte-for-byte.
  EXPECT_TRUE(got == want) << context;
}

// Runs naive, serial-fast, and the parallel engine at threads {1, 2, 3, 8};
// every plan must be byte-identical.
void CheckAllEngines(const ClusterSpec& cluster, const Batch& batch, int64_t capacity,
                     const std::string& context) {
  SequencePartitioner naive(cluster,
                            {.token_capacity = capacity, .fast_path = false});
  const PartitionPlan naive_plan = naive.Partition(batch);

  SequencePartitioner fast(cluster, {.token_capacity = capacity, .fast_path = true});
  const PartitionPlan fast_plan = fast.Partition(batch);
  ExpectPlansIdentical(fast_plan, naive_plan, context + " [fast vs naive]");

  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    SequencePartitioner parallel(
        cluster, {.token_capacity = capacity, .fast_path = true, .pool = &pool});
    PlannerScratch scratch;
    PartitionPlan parallel_plan;
    // Two runs through the same scratch: steady-state reuse must not leak.
    parallel.Partition(batch, &scratch, &parallel_plan);
    parallel.Partition(batch, &scratch, &parallel_plan);
    ExpectPlansIdentical(parallel_plan, naive_plan,
                         context + " [parallel T=" + std::to_string(threads) + "]");
  }
}

TEST(ParallelPlannerTest, IdenticalOnEvaluationDatasets) {
  const std::vector<ClusterSpec> clusters = {MakeClusterA(2), MakeClusterA(8), MakeClusterC(4)};
  for (const auto& dist : EvaluationDatasets()) {
    for (const ClusterSpec& cluster : clusters) {
      const int world = cluster.num_nodes * cluster.gpus_per_node;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        BatchSampler sampler(dist, static_cast<int64_t>(world) * 4096, seed);
        const Batch batch = sampler.NextBatch();
        CheckAllEngines(cluster, batch, 4096,
                        dist.name() + " " + cluster.name + " seed " + std::to_string(seed));
      }
    }
  }
}

// Zero-slack capacity forces overflow restarts in both stages; the parallel
// engine's restart path (boundary advance + full replay) must land on the
// same thresholds and placements as the incremental serial paths.
TEST(ParallelPlannerTest, IdenticalUnderForcedOverflowRestarts) {
  const std::vector<ClusterSpec> clusters = {MakeClusterA(4), MakeClusterC(8)};
  for (const auto& dist : EvaluationDatasets()) {
    for (const ClusterSpec& cluster : clusters) {
      const int world = cluster.num_nodes * cluster.gpus_per_node;
      for (uint64_t seed = 11; seed <= 13; ++seed) {
        BatchSampler sampler(dist, static_cast<int64_t>(world) * 8192, seed);
        const Batch batch = sampler.NextBatch();
        const int64_t tight = (batch.total_tokens() + world - 1) / world;
        // The tight capacity must actually shrink a threshold somewhere.
        SequencePartitioner probe(cluster, {.token_capacity = tight, .fast_path = false});
        const PartitionPlan plan = probe.Partition(batch);
        bool restarted = plan.threshold_s1 < tight * cluster.gpus_per_node;
        for (int64_t s0 : plan.threshold_s0) {
          restarted = restarted || (s0 > 0 && s0 < tight);
        }
        EXPECT_TRUE(restarted) << dist.name() << " seed " << seed;
        CheckAllEngines(cluster, batch, tight,
                        dist.name() + " tight " + cluster.name + " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(ParallelPlannerTest, IdenticalWithZoneThresholdCaps) {
  const ClusterSpec cluster = MakeClusterA(4);
  for (const auto& dist : EvaluationDatasets()) {
    BatchSampler sampler(dist, 32 * 8192, 99);
    const Batch batch = sampler.NextBatch();
    SequencePartitioner::Options base{.token_capacity = 8192,
                                      .max_inter_threshold = 8192,
                                      .max_local_threshold = 2048,
                                      .fast_path = false};
    const PartitionPlan naive_plan = SequencePartitioner(cluster, base).Partition(batch);
    for (int threads : {1, 3}) {
      ThreadPool pool(threads);
      SequencePartitioner::Options opts = base;
      opts.fast_path = true;
      opts.pool = &pool;
      const PartitionPlan got = SequencePartitioner(cluster, opts).Partition(batch);
      ExpectPlansIdentical(got, naive_plan,
                           dist.name() + " capped T=" + std::to_string(threads));
      // The caps force nonempty z2 / z1 zones — make sure rings exist so the
      // ring-merge path is actually exercised.
      EXPECT_FALSE(got.inter_node.empty() && got.intra_node.empty()) << dist.name();
    }
  }
}

TEST(ParallelPlannerTest, IdenticalOnEdgeBatches) {
  const ClusterSpec one_node = MakeClusterA(1);
  const ClusterSpec cluster = MakeClusterA(2);
  auto make = [](std::vector<int64_t> lens) {
    Batch b;
    b.seq_lens = std::move(lens);
    return b;
  };
  // Degenerate 1-node cluster: every z2 sequence is a single-node ring.
  CheckAllEngines(one_node, make({16384, 8192, 2048, 512, 512}), 4096, "one node");
  // Fewer sequences than pool contexts.
  CheckAllEngines(cluster, make({4096, 64}), 4096, "tiny batch");
  // Single sequence filling the cluster exactly.
  CheckAllEngines(cluster, make({16 * 4096}), 4096, "single full");
  // All-equal lengths: pure tie-breaking through the uniform-block path.
  CheckAllEngines(cluster, make(std::vector<int64_t>(64, 1024)), 4096, "uniform");
  // Duplicates around the promotion boundary.
  CheckAllEngines(cluster, make({8192, 8192, 8192, 4096, 4096, 4096, 4096, 64, 64, 64}), 4096,
                  "duplicates");
}

// The parallel engine must route its packing through GreedyPacker in bulk:
// ops near the sequence count, not S log P.
TEST(ParallelPlannerTest, PackerOpCountStaysBulk) {
  const int kSeqs = 8192;
  const ClusterSpec cluster = MakeClusterA(32);  // P = 256.
  const int world = cluster.num_nodes * cluster.gpus_per_node;
  for (const auto& dist : EvaluationDatasets()) {
    Rng rng(7);
    Batch batch;
    for (int i = 0; i < kSeqs; ++i) {
      batch.seq_lens.push_back(dist.Sample(rng));
    }
    const int64_t average = (batch.total_tokens() + world - 1) / world;
    ThreadPool pool(2);
    SequencePartitioner partitioner(
        cluster,
        {.token_capacity = average + average / 4, .fast_path = true, .pool = &pool});
    PlannerScratch scratch;
    const PartitionPlan plan = partitioner.Partition(batch, &scratch);
    EXPECT_EQ(plan.total_tokens(), batch.total_tokens());
    EXPECT_GT(scratch.packer_ops(), 0) << "parallel path must route through GreedyPacker";
    EXPECT_LE(scratch.packer_ops(), static_cast<int64_t>(10) * (kSeqs + world))
        << dist.name() << ": packing degraded to per-item heap walks";
  }
}

}  // namespace
}  // namespace zeppelin
