// PlannerService (src/core/plan_service.h): stateless plans byte-identical
// to the direct partitioner at every engine/thread setting, immutable handle
// semantics (stable across later requests, storage recycling never aliases a
// live handle), the multi-stream session table (independent per-stream
// state and fallback policies, per-stream twin-digest determinism), and the
// concurrency contract (N streams driven from N threads through one service
// over a shared pool — the TSAN target, see the sanitizer recipe in
// CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/delta_planner.h"
#include "src/core/plan_io.h"
#include "src/core/plan_service.h"
#include "src/core/zeppelin.h"
#include "src/data/datasets.h"
#include "src/data/stream.h"
#include "src/model/transformer.h"
#include "src/sim/graph.h"
#include "src/topology/cluster.h"
#include "src/topology/path.h"

namespace zeppelin {
namespace {

constexpr double kThreshold = 0.08;
constexpr double kEps = kThreshold + 0.05;

Batch SampleBatch(int num_seqs, uint64_t seed) {
  const LengthDistribution dist = DatasetByName("github");
  Rng rng(seed);
  Batch batch;
  batch.seq_lens.reserve(num_seqs);
  for (int i = 0; i < num_seqs; ++i) {
    batch.seq_lens.push_back(dist.Sample(rng));
  }
  return batch;
}

int64_t SlackCapacity(const Batch& batch, const ClusterSpec& cluster) {
  const int64_t world = cluster.world_size();
  const int64_t average = (batch.total_tokens() + world - 1) / world;
  return average + average / 4;
}

struct TestRig {
  ClusterSpec cluster = MakeClusterA(2);
  FabricResources fabric{cluster};
  CostModel cost_model{MakeLlama3B(), cluster};

  PlanRequest Request(const Batch& batch) const {
    PlanRequest request;
    request.batch = &batch;
    request.cost_model = &cost_model;
    request.fabric = &fabric;
    return request;
  }
};

TEST(PlanServiceTest, StatelessByteIdenticalToDirectPartitionerAtEverySetting) {
  TestRig rig;
  const Batch batch = SampleBatch(1024, 0xa11);
  const int64_t capacity = SlackCapacity(batch, rig.cluster);

  SequencePartitioner direct(rig.cluster,
                             SequencePartitioner::Options{.token_capacity = capacity});
  const PartitionPlan reference = direct.Partition(batch);

  struct Setting {
    int threads;
    bool fast_path;
    PlanEngine expect;
  };
  const std::vector<Setting> settings = {
      {0, false, PlanEngine::kNaive},          {0, true, PlanEngine::kSerialFast},
      {1, true, PlanEngine::kParallelSharded}, {2, true, PlanEngine::kParallelSharded},
      {4, true, PlanEngine::kParallelSharded},
  };
  for (const Setting& setting : settings) {
    PlannerService service(PlanServiceOptions{.num_planner_threads = setting.threads});
    PlanRequest request = rig.Request(batch);
    request.options.token_capacity = capacity;
    request.options.planner_fast_path = setting.fast_path;
    const PlanResponse response = service.Plan(request);
    ASSERT_NE(response.plan, nullptr);
    EXPECT_TRUE(*response.plan == reference)
        << "threads=" << setting.threads << " fast=" << setting.fast_path;
    EXPECT_EQ(response.stats.engine, setting.expect);
    EXPECT_EQ(response.digest, reference.StateDigest());
    EXPECT_EQ(response.stats.token_capacity, capacity);
    EXPECT_GT(response.stats.partition_time_us, 0);
  }
}

TEST(PlanServiceTest, GlobalRingLayout) {
  TestRig rig;
  Batch batch;
  batch.seq_lens = {16384, 16384, 16384, 16384};
  PlannerService service;
  PlanRequest request = rig.Request(batch);
  request.options.hierarchical_partitioning = false;
  const PlanResponse response = service.Plan(request);
  EXPECT_EQ(response.stats.engine, PlanEngine::kGlobalRing);
  EXPECT_EQ(response.plan->inter_node.size(), 4u);
  EXPECT_TRUE(response.plan->intra_node.empty());
  EXPECT_EQ(response.plan->total_tokens(), batch.total_tokens());
  for (const RingRef& ring : response.plan->inter_node) {
    EXPECT_EQ(ring.group_size(), rig.cluster.world_size());
  }
}

TEST(PlanServiceTest, HandlesAreImmutableAcrossLaterRequestsAndRecycling) {
  TestRig rig;
  PlannerService service(PlanServiceOptions{.num_planner_threads = 0, .plan_pool_limit = 2});
  const Batch first = SampleBatch(512, 1);
  PlanResponse kept = service.Plan(rig.Request(first));
  const uint64_t kept_digest = kept.digest;
  const PartitionPlan kept_copy = *kept.plan;

  // Churn through more plans than the recycling pool holds, dropping each
  // handle immediately — storage reuse must never touch the live handle.
  for (int i = 0; i < 8; ++i) {
    const Batch other = SampleBatch(512, 100 + i);
    const PlanResponse response = service.Plan(rig.Request(other));
    ASSERT_NE(response.plan, kept.plan);
  }
  EXPECT_EQ(kept.plan->StateDigest(), kept_digest);
  EXPECT_TRUE(*kept.plan == kept_copy);
}

TEST(PlanServiceTest, HandleOutlivesTheService) {
  TestRig rig;
  std::shared_ptr<const PartitionPlan> survivor;
  uint64_t digest = 0;
  {
    PlannerService service;
    const Batch batch = SampleBatch(256, 2);
    PlanResponse response = service.Plan(rig.Request(batch));
    survivor = response.plan;
    digest = response.digest;
  }
  EXPECT_EQ(survivor->StateDigest(), digest);
}

TEST(PlanServiceTest, SessionPatchesAndStaysEquivalent) {
  TestRig rig;
  PlannerService service;
  const Batch initial = SampleBatch(1024, 0xbee);
  WorkloadStream stream(DatasetByName("github"), initial,
                        StreamOptions{.stream_id = "s0", .churn_fraction = 0.01}, 0x11);

  PlanRequest base = rig.Request(stream.batch());
  base.stream_id = stream.stream_id();
  base.options.delta_replan_threshold = kThreshold;
  const PlanResponse base_response = service.Plan(base);
  EXPECT_EQ(base_response.stats.delta_outcome, DeltaOutcome::kRebasedNoBase);
  ASSERT_TRUE(service.HasSession("s0"));

  SequencePartitioner ref(
      rig.cluster,
      SequencePartitioner::Options{.token_capacity = SlackCapacity(initial, rig.cluster)});
  PlannerScratch ref_scratch;
  PartitionPlan ref_plan;
  int applied = 0;
  for (int it = 0; it < 30; ++it) {
    const BatchDelta delta = stream.Next();
    PlanRequest request = rig.Request(stream.batch());
    request.stream_id = "s0";
    request.options.delta_replan_threshold = kThreshold;
    request.delta = &delta;
    const PlanResponse response = service.Plan(request);
    applied += response.stats.delta_outcome == DeltaOutcome::kApplied ? 1 : 0;
    if (response.stats.engine == PlanEngine::kDeltaPatch) {
      EXPECT_EQ(response.stats.delta_outcome, DeltaOutcome::kApplied);
    }

    ref.set_options(
        SequencePartitioner::Options{.token_capacity = response.stats.token_capacity});
    ref.Partition(stream.batch(), &ref_scratch, &ref_plan);
    const DeltaEquivalenceResult eq =
        CheckDeltaEquivalence(*response.plan, ref_plan, stream.batch(), kEps);
    ASSERT_TRUE(eq.ok) << "iter " << it << ": " << eq.failure;
  }
  EXPECT_GT(applied, 0);

  DeltaStats stats;
  ASSERT_TRUE(service.GetSessionStats("s0", &stats));
  EXPECT_EQ(stats.applied, applied);
}

TEST(PlanServiceTest, SessionsHaveIndependentFallbackPolicies) {
  TestRig rig;
  PlannerService service;
  const Batch initial = SampleBatch(1024, 0xcafe);

  // Same churn stream twice; the strict session re-plans every iteration
  // (threshold 0 => any churn falls back), the lenient one patches.
  for (const char* id : {"strict", "lenient"}) {
    PlanRequest base = rig.Request(initial);
    base.stream_id = id;
    base.options.delta_replan_threshold = std::string(id) == "strict" ? 0.0 : 0.5;
    service.Plan(base);
  }
  EXPECT_EQ(service.session_count(), 2u);

  WorkloadStream strict_stream(DatasetByName("github"), initial,
                               StreamOptions{.churn_fraction = 0.01}, 0x77);
  WorkloadStream lenient_stream(DatasetByName("github"), initial,
                                StreamOptions{.churn_fraction = 0.01}, 0x77);
  int strict_applied = 0;
  int lenient_applied = 0;
  for (int it = 0; it < 10; ++it) {
    const BatchDelta strict_delta = strict_stream.Next();
    PlanRequest request = rig.Request(strict_stream.batch());
    request.stream_id = "strict";
    request.options.delta_replan_threshold = 0.0;
    request.delta = &strict_delta;
    strict_applied +=
        service.Plan(request).stats.delta_outcome == DeltaOutcome::kApplied ? 1 : 0;

    const BatchDelta lenient_delta = lenient_stream.Next();
    PlanRequest lenient = rig.Request(lenient_stream.batch());
    lenient.stream_id = "lenient";
    lenient.options.delta_replan_threshold = 0.5;
    lenient.delta = &lenient_delta;
    lenient_applied +=
        service.Plan(lenient).stats.delta_outcome == DeltaOutcome::kApplied ? 1 : 0;
  }
  // Threshold 0 turns any churn into a fallback; the lenient stream patches.
  EXPECT_EQ(strict_applied, 0);
  EXPECT_GT(lenient_applied, 0);
  DeltaStats strict_stats;
  ASSERT_TRUE(service.GetSessionStats("strict", &strict_stats));
  EXPECT_EQ(strict_stats.rebase_churn, 10);
}

TEST(PlanServiceTest, SessionLifecycle) {
  TestRig rig;
  PlannerService service;
  const Batch batch = SampleBatch(256, 9);

  PlanRequest base = rig.Request(batch);
  base.stream_id = "life";
  service.Plan(base);
  EXPECT_TRUE(service.HasSession("life"));
  EXPECT_EQ(service.SessionLastOutcome("life"), DeltaOutcome::kRebasedNoBase);

  // A few streamed steps (patched or fallen back per policy — either way the
  // session keeps a base), then invalidation: the next request must re-base.
  WorkloadStream stream(DatasetByName("github"), batch, StreamOptions{.churn_fraction = 0.01},
                        0x3);
  for (int it = 0; it < 3; ++it) {
    const BatchDelta delta = stream.Next();
    PlanRequest step = rig.Request(stream.batch());
    step.stream_id = "life";
    step.options.delta_replan_threshold = 0.5;
    step.delta = &delta;
    service.Plan(step);
  }
  EXPECT_NE(service.SessionLastOutcome("life"), DeltaOutcome::kRebasedNoBase);

  service.InvalidateSession("life");
  const BatchDelta empty;
  PlanRequest after = rig.Request(stream.batch());
  after.stream_id = "life";
  after.delta = &empty;
  EXPECT_EQ(service.Plan(after).stats.delta_outcome, DeltaOutcome::kRebasedNoBase);

  EXPECT_TRUE(service.CloseSession("life"));
  EXPECT_FALSE(service.HasSession("life"));
  EXPECT_FALSE(service.CloseSession("life"));
  EXPECT_EQ(service.session_count(), 0u);
}

// Runs `streams` WorkloadStreams through `service`, one thread per stream
// when `threaded`, recording every iteration's response digest per stream.
std::vector<std::vector<uint64_t>> DriveStreams(PlannerService& service, const TestRig& rig,
                                                int streams, int iters, bool threaded) {
  std::vector<std::vector<uint64_t>> digests(streams);
  auto drive = [&](int s) {
    const Batch initial = SampleBatch(768, 0x1000 + s);
    WorkloadStream stream(DatasetByName("github"), initial,
                          StreamOptions{.stream_id = "soak-" + std::to_string(s),
                                        .churn_fraction = 0.01},
                          0x2000 + s);
    PlanRequest base = rig.Request(stream.batch());
    base.stream_id = stream.stream_id();
    base.options.delta_replan_threshold = kThreshold;
    digests[s].push_back(service.Plan(base).digest);
    for (int it = 0; it < iters; ++it) {
      const BatchDelta delta = stream.Next();
      PlanRequest request = rig.Request(stream.batch());
      request.stream_id = stream.stream_id();
      request.options.delta_replan_threshold = kThreshold;
      request.delta = &delta;
      digests[s].push_back(service.Plan(request).digest);
    }
  };
  if (threaded) {
    std::vector<std::thread> workers;
    workers.reserve(streams);
    for (int s = 0; s < streams; ++s) {
      workers.emplace_back(drive, s);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  } else {
    for (int s = 0; s < streams; ++s) {
      drive(s);
    }
  }
  return digests;
}

TEST(PlanServiceTest, ConcurrentMultiStreamSoakIsDeterministicPerStream) {
  // The headline contract: N interleaved streams from N threads through one
  // service (sharing its pool for fallback re-plans) produce, per stream,
  // exactly the digest sequence a serial twin run produces. Run under TSAN
  // via the sanitizer recipe (plan_service is in the regex).
  constexpr int kStreams = 4;
  constexpr int kIters = 25;
  TestRig rig;

  PlannerService concurrent(PlanServiceOptions{.num_planner_threads = 2});
  const std::vector<std::vector<uint64_t>> threaded =
      DriveStreams(concurrent, rig, kStreams, kIters, /*threaded=*/true);
  EXPECT_EQ(concurrent.session_count(), static_cast<size_t>(kStreams));

  PlannerService serial(PlanServiceOptions{.num_planner_threads = 0});
  const std::vector<std::vector<uint64_t>> reference =
      DriveStreams(serial, rig, kStreams, kIters, /*threaded=*/false);

  for (int s = 0; s < kStreams; ++s) {
    ASSERT_EQ(threaded[s].size(), reference[s].size());
    for (size_t it = 0; it < threaded[s].size(); ++it) {
      EXPECT_EQ(threaded[s][it], reference[s][it]) << "stream " << s << " iter " << it;
    }
  }
}

TEST(PlanServiceTest, ConcurrentStatelessAndSessionTrafficCoexist) {
  TestRig rig;
  PlannerService service(PlanServiceOptions{.num_planner_threads = 2});
  const Batch batch = SampleBatch(512, 0xd00d);
  const uint64_t expect = service.Plan(rig.Request(batch)).digest;

  std::vector<std::thread> workers;
  std::vector<uint64_t> stateless_digests(3, 0);
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        stateless_digests[t] = service.Plan(rig.Request(batch)).digest;
      }
    });
  }
  workers.emplace_back([&] {
    DriveStreams(service, rig, /*streams=*/1, /*iters=*/10, /*threaded=*/false);
  });
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (uint64_t digest : stateless_digests) {
    EXPECT_EQ(digest, expect);
  }
}

TEST(PlanServiceTest, ZeppelinStrategyIsAThinAdapter) {
  // The strategy surface (Plan / PlanDelta / plan_handle / partition_plan)
  // now rides on the service; its plans must match a direct service request
  // and survive the strategy re-planning.
  TestRig rig;
  const Batch batch = SampleBatch(768, 0xf00);

  ZeppelinStrategy strategy;
  strategy.Plan(batch, rig.cost_model, rig.fabric);
  const std::shared_ptr<const PartitionPlan> handle = strategy.plan_handle();
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(*handle == strategy.partition_plan());
  const uint64_t first_digest = handle->StateDigest();

  PlannerService service(PlanServiceOptions{.num_planner_threads = 1});
  PlanRequest request = rig.Request(batch);
  const PlanResponse response = service.Plan(request);
  EXPECT_TRUE(*response.plan == *handle);

  // Handle stability: re-planning a different batch must not mutate it.
  strategy.Plan(SampleBatch(768, 0xf01), rig.cost_model, rig.fabric);
  EXPECT_EQ(handle->StateDigest(), first_digest);
  EXPECT_NE(strategy.plan_handle(), handle);
}

TEST(PlanServiceTest, SharedServiceAcrossStrategiesWithDistinctStreams) {
  TestRig rig;
  auto shared = std::make_shared<PlannerService>(PlanServiceOptions{.num_planner_threads = 1});
  ZeppelinOptions a_opts;
  a_opts.service = shared;
  a_opts.stream_id = "a";
  ZeppelinOptions b_opts;
  b_opts.service = shared;
  b_opts.stream_id = "b";
  ZeppelinStrategy a(a_opts);
  ZeppelinStrategy b(b_opts);

  WorkloadStream sa(DatasetByName("github"), SampleBatch(512, 1), StreamOptions{}, 10);
  WorkloadStream sb(DatasetByName("github"), SampleBatch(512, 2), StreamOptions{}, 20);
  a.PlanDelta(sa.batch(), BatchDelta{}, rig.cost_model, rig.fabric);
  b.PlanDelta(sb.batch(), BatchDelta{}, rig.cost_model, rig.fabric);
  EXPECT_EQ(shared->session_count(), 2u);
  for (int it = 0; it < 5; ++it) {
    const BatchDelta da = sa.Next();
    a.PlanDelta(sa.batch(), da, rig.cost_model, rig.fabric);
    const BatchDelta db = sb.Next();
    b.PlanDelta(sb.batch(), db, rig.cost_model, rig.fabric);
  }
  EXPECT_EQ(a.partition_plan().total_tokens(), sa.batch().total_tokens());
  EXPECT_EQ(b.partition_plan().total_tokens(), sb.batch().total_tokens());
  EXPECT_NE(a.delta_stats(), nullptr);
  EXPECT_NE(b.delta_stats(), nullptr);
}

TEST(PlanServiceTest, AdoptedSerializedPlanDrivesEmitLayer) {
  // Cross-process distribution in miniature: plan -> wire bytes -> fresh
  // strategy -> EmitLayer, without re-planning.
  TestRig rig;
  const Batch batch = SampleBatch(512, 0xace);
  ZeppelinStrategy producer;
  producer.Plan(batch, rig.cost_model, rig.fabric);
  const std::string bytes = producer.plan_handle()->Serialize();

  PartitionPlan decoded;
  ASSERT_TRUE(decoded.Deserialize(bytes));
  auto plan = std::make_shared<const PartitionPlan>(std::move(decoded));

  ZeppelinStrategy consumer;
  consumer.AdoptPlan(plan, rig.cost_model, rig.fabric);
  EXPECT_EQ(consumer.plan_handle(), plan);
  TaskGraph graph;
  const std::vector<TaskId> done = consumer.EmitLayer(graph, Direction::kForward);
  EXPECT_EQ(static_cast<int>(done.size()), rig.cluster.world_size());
  EXPECT_GT(graph.size(), 0);
  EXPECT_EQ(consumer.LinearTokensPerRank(), producer.LinearTokensPerRank());
}

}  // namespace
}  // namespace zeppelin
