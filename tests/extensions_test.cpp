// Tests for the library extensions beyond the paper's headline system:
// GQA models, MoE expert-parallel dispatch costs, and the zone-aware
// partitioner threshold initialization (design ablation D6).
#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/core/zeppelin.h"
#include "src/core/zones.h"
#include "src/data/datasets.h"
#include "src/model/transformer.h"

namespace zeppelin {
namespace {

TEST(GqaTest, PresetShape) {
  const TransformerConfig gqa = MakeLlama8BGqa();
  EXPECT_EQ(gqa.num_kv_heads, 8);
  EXPECT_EQ(gqa.kv_hidden(), 8 * 128);
  EXPECT_NEAR(static_cast<double>(gqa.NumParams()), 8.0e9, 0.8e9);
  EXPECT_EQ(ModelByName("8B-GQA").name, gqa.name);
}

TEST(GqaTest, QuartersRingAttentionTraffic) {
  const ClusterSpec cluster = MakeClusterA(2);
  const CostModel mha(MakeLlama7B(), cluster);
  const CostModel gqa(MakeLlama8BGqa(), cluster);
  EXPECT_EQ(gqa.KvBytesPerToken() * 4, mha.KvBytesPerToken());
}

TEST(GqaTest, ShrinksZoneBoundaries) {
  // Cheaper KV transfers mean even shorter sequences can hide their ring
  // communication: the local/intra zones shrink vs an MHA model of the same
  // compute scale.
  const ClusterSpec cluster = MakeClusterA(2);
  const CostModel mha(MakeLlama7B(), cluster);
  const CostModel gqa(MakeLlama8BGqa(), cluster);
  const ZoneBoundaries zb_mha = ZoneClassifier(mha).Compute();
  const ZoneBoundaries zb_gqa = ZoneClassifier(gqa).Compute();
  EXPECT_LE(zb_gqa.local_max, zb_mha.local_max);
  EXPECT_LE(zb_gqa.intra_max, zb_mha.intra_max);
}

TEST(GqaTest, EndToEndRuns) {
  const Trainer trainer(MakeLlama8BGqa(), MakeClusterA(2));
  ZeppelinStrategy zep;
  BatchSampler sampler(MakeGithubDistribution(), 65536, 3);
  const IterationResult r = trainer.Run(zep, sampler.NextBatch());
  EXPECT_GT(r.tokens_per_second, 0);
}

TEST(MoeDispatchTest, ExpertAllToAllChargedInLinearTime) {
  const ClusterSpec cluster = MakeClusterA(1);
  const TransformerConfig moe = MakeMoe8x550M();
  const CostModel moe_cm(moe, cluster);
  // A dense model with identical *active* FLOPs per token (2 experts' worth
  // of FFN) but no dispatch traffic.
  TransformerConfig dense = moe;
  dense.num_experts = 1;
  dense.experts_per_token = 1;
  dense.ffn_hidden = moe.ffn_hidden * 2;
  const CostModel dense_cm(dense, cluster);
  ASSERT_NEAR(moe_cm.LinearFlopsPerToken() / dense_cm.LinearFlopsPerToken(), 1.0, 0.01);
  // The MoE model's linear stage is strictly slower: it pays for the
  // dispatch/combine all-to-all.
  EXPECT_GT(moe_cm.LinearTime(8192), dense_cm.LinearTime(8192));
}

TEST(MoeDispatchTest, SingleGpuNodeHasNoDispatchCost) {
  ClusterSpec tiny = MakeClusterA(1);
  tiny.gpus_per_node = 1;
  tiny.gpu_to_nic = {0};
  const CostModel cm(MakeMoe8x550M(), tiny);
  TransformerConfig dense = MakeMoe8x550M();
  dense.num_experts = 1;
  dense.experts_per_token = 1;
  dense.ffn_hidden = MakeMoe8x550M().ffn_hidden * 2;
  const CostModel dense_cm(dense, tiny);
  // EP group of 1: all experts local, no all-to-all.
  EXPECT_NEAR(cm.LinearTime(4096), dense_cm.LinearTime(4096),
              dense_cm.LinearTime(4096) * 0.02);
}

TEST(ZoneAwareThresholdsTest, CapsAreApplied) {
  const ClusterSpec cluster = MakeClusterA(2);
  SequencePartitioner::Options opts;
  opts.token_capacity = 8192;
  opts.max_inter_threshold = 16384;
  opts.max_local_threshold = 2048;
  SequencePartitioner partitioner(cluster, opts);
  Batch batch;
  batch.seq_lens = {20480, 4096, 4096, 1024, 1024, 1024, 1024};
  const PartitionPlan plan = partitioner.Partition(batch);
  // 20480 >= 16384 (capped s1): inter-node even though it fits a node.
  ASSERT_EQ(plan.inter_node.size(), 1u);
  EXPECT_EQ(plan.inter_node[0].length, 20480);
  // 4096 >= 2048 (capped s0): intra rings; 1024 sequences stay local.
  EXPECT_EQ(plan.intra_node.size(), 2u);
  EXPECT_EQ(plan.local.size(), 4u);
  EXPECT_LE(plan.threshold_s1, 16384);
}

TEST(ZoneAwareThresholdsTest, ZeppelinOptionProducesDifferentPlan) {
  const ClusterSpec cluster = MakeClusterA(2);
  const FabricResources fabric(cluster);
  const CostModel cost_model(MakeLlama7B(), cluster);
  Batch batch;
  batch.seq_lens = {16384, 16384, 16384, 16384};

  ZeppelinStrategy plain;
  ZeppelinOptions zopts;
  zopts.zone_aware_thresholds = true;
  ZeppelinStrategy zone_aware(zopts);
  plain.Plan(batch, cost_model, fabric);
  zone_aware.Plan(batch, cost_model, fabric);
  // Zone-aware init pushes these 16k sequences (above this fabric's ~12k
  // intra_max) into the z2 zone, where each gets a full-node ring (8 ranks);
  // capacity-driven thresholds fragment them into smaller intra rings.
  auto max_ring = [](const PartitionPlan& plan) {
    int g = 0;
    for (const auto& ring : plan.intra_node) {
      g = std::max(g, ring.group_size());
    }
    for (const auto& ring : plan.inter_node) {
      g = std::max(g, ring.group_size());
    }
    return g;
  };
  EXPECT_GT(max_ring(zone_aware.partition_plan()), max_ring(plain.partition_plan()));
}

TEST(ZoneAwareThresholdsTest, ConservesTokens) {
  const ClusterSpec cluster = MakeClusterA(4);
  const FabricResources fabric(cluster);
  const CostModel cost_model(MakeLlama7B(), cluster);
  BatchSampler sampler(MakeGithubDistribution(), 131072, 17);
  ZeppelinOptions zopts;
  zopts.zone_aware_thresholds = true;
  for (int i = 0; i < 5; ++i) {
    const Batch batch = sampler.NextBatch();
    ZeppelinStrategy zep(zopts);
    zep.Plan(batch, cost_model, fabric);
    EXPECT_EQ(zep.partition_plan().total_tokens(), batch.total_tokens());
  }
}

}  // namespace
}  // namespace zeppelin
